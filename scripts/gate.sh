#!/usr/bin/env bash
# CI gate driver. Every determinism, regression and budget check is one
# named gate, so wiring a new family into ci.yml is a one-line step:
#
#   scripts/gate.sh <gate>
#
# Determinism gates (byte compare; writes the *_PR artifact):
#   micro          engine microbenchmarks + allocation gate (>10% B/op or allocs/op)
#   micro-diff     hot-path benches (cluster window sync, engine scheduling,
#                  metro shard scaling) with the ns/op gate ON (>25% fails;
#                  override with MICRO_NS_BUDGET) -> BENCH_MICRODIFF_PR.txt
#   smoke-det      smoke matrix, workers 1 vs 8           -> BENCH_PR.json
#   metro-det      metro slice, shards 1 vs 4             -> BENCH_METRO_PR.json
#   obs-det        metro slice, -obs vs plain             -> metro_obs.json
#   scorecard-det  robustness scorecard, workers 1 vs 8   -> BENCH_SCORECARD_PR.json
#   nation-det     nation slice, shards 1 vs 8            -> BENCH_NATION_PR.json
#   series-det     trajectory slice, workers 1 vs 8       -> BENCH_TRAJ_PR.json
#   report-det     pbereport figure, two renders + docs/  -> report_run.svg
#
# Regression gates (against the committed baselines):
#   smoke-diff     BENCH_baseline.json           vs BENCH_PR.json        (>10% fails)
#   metro-diff     BENCH_metro_baseline.json     vs BENCH_METRO_PR.json  (>10% fails)
#   nation-diff    BENCH_nation_baseline.json    vs BENCH_NATION_PR.json (>10% fails)
#   scorecard-diff BENCH_scorecard_baseline.json vs BENCH_SCORECARD_PR.json (>5 points fails)
#   traj-diff      BENCH_traj_baseline.json      vs BENCH_TRAJ_PR.json   (>10% fails)
#
# Timing budget:
#   budget         sum the wall-clock of every gate run so far and fail
#                  if the total exceeds GATE_BUDGET_SECONDS - a new slice
#                  cannot silently balloon CI.
#
# Every gate appends "<name> <seconds>" to gate_times.txt and a row to
# the GitHub job summary when $GITHUB_STEP_SUMMARY is set. The simulator
# runs on a virtual clock, so each gate's *results* are machine-
# independent; only these wall-clock numbers vary with the runner.
set -euo pipefail
cd "$(dirname "$0")/.."

TIMES_FILE="${GATE_TIMES_FILE:-gate_times.txt}"
# Committed total gate budget (seconds). Generous for a cold module cache
# on a shared runner; the per-gate rows in the job summary show where the
# time goes when this trips.
BUDGET_SECONDS="${GATE_BUDGET_SECONDS:-1200}"

sweep() { go run ./cmd/pbesweep "$@"; }

gate_micro() {
  go test -bench . -benchmem -run '^$' ./internal/sim/ | tee BENCH_MICRO_PR.txt
  # B/op and allocs/op are deterministic per op, so they gate even on
  # shared runners; ns/op stays informational (no -max-regress-ns).
  sweep -benchdiff -max-regress 10 -allow-missing BENCH_micro_baseline.txt BENCH_MICRO_PR.txt
}

# Hot-path speed gate: unlike gate_micro, this one gates ns/op too (25%
# budget, MICRO_NS_BUDGET overrides) on the benches whose per-op time is
# long or tight enough to be stable across runs of the same runner class:
# the cluster window loop, the engine scheduling core, and the metro
# shard-scaling family (one full iteration each; a 2+ second simulated
# run amortizes scheduler noise). A slower runner generation can trip
# this - loosen with MICRO_NS_BUDGET=-1 and regenerate the baseline.
gate_micro_diff() {
  go test -bench 'ClusterWindowSync|ScheduleRun' -benchmem -run '^$' ./internal/sim/ | tee BENCH_MICRODIFF_PR.txt
  # One iteration of each multi-second metro bench; ten of the ~60 ms
  # smoke slice, where a single sample is scheduler-noise dominated.
  go test -bench 'Metro[0-9]' -benchmem -benchtime 1x -run '^$' . | tee -a BENCH_MICRODIFF_PR.txt
  go test -bench 'MetroSmokeSlice' -benchmem -benchtime 10x -run '^$' . | tee -a BENCH_MICRODIFF_PR.txt
  sweep -benchdiff -max-regress 25 -max-regress-ns "${MICRO_NS_BUDGET:-25}" -allow-missing BENCH_micro_baseline.txt BENCH_MICRODIFF_PR.txt
}

gate_smoke_det() {
  sweep -smoke -workers 1 -out run1.json
  sweep -smoke -workers 8 -out BENCH_PR.json
  cmp run1.json BENCH_PR.json
}

gate_metro_det() {
  sweep -metro-smoke -shards 1 -out metro1.json
  sweep -metro-smoke -shards 4 -out BENCH_METRO_PR.json
  cmp metro1.json BENCH_METRO_PR.json
}

# Observability must never feed back into the simulation: the same slice
# with the metrics registry enabled has to reproduce the untraced bytes
# exactly. The snapshot lands in metro_obs.json.obs.json.
gate_obs_det() {
  sweep -metro-smoke -shards 4 -obs -out metro_obs.json
  cmp BENCH_METRO_PR.json metro_obs.json
}

gate_scorecard_det() {
  sweep -scorecard -workers 1 -out score1.json
  sweep -scorecard -workers 8 -out BENCH_SCORECARD_PR.json
  cmp score1.json BENCH_SCORECARD_PR.json
}

# The fluid tier's contract: 64k modeled cells / 1M+ users advanced by
# per-shard chunks must produce the same bytes at any parallel width.
gate_nation_det() {
  sweep -nation-smoke -shards 1 -out nation1.json
  sweep -nation-smoke -shards 8 -out BENCH_NATION_PR.json
  cmp nation1.json BENCH_NATION_PR.json
}

# The trajectory slice gates the series layer end to end: every row's
# convergence/tracking-lag/recovery fields are derived from the recorded
# series, so byte equality across worker widths proves the series merge
# order is deterministic. (Shard-width determinism of the raw series CSV
# is the TestSeriesByteIdenticalAcrossShards property test.)
gate_series_det() {
  sweep -traj-smoke -workers 1 -out traj1.json
  sweep -traj-smoke -workers 8 -out BENCH_TRAJ_PR.json
  cmp traj1.json BENCH_TRAJ_PR.json
}

# The report figure must be a pure function of the scenario: two renders
# byte-identical, and both identical to the committed docs/ example (a
# drifting example means the docs lie about what the code produces).
gate_report_det() {
  go run ./cmd/pbereport -schemes pbe,cubic,pbertc -out report_run.svg -csv report_run.csv
  go run ./cmd/pbereport -schemes pbe,cubic,pbertc -out report_run2.svg
  cmp report_run.svg report_run2.svg
  cmp report_run.svg docs/report_steady.svg
  cmp report_run.csv docs/report_steady.csv
}

gate_smoke_diff()  { sweep -diff -max-regress 10 BENCH_baseline.json BENCH_PR.json; }
gate_metro_diff()  { sweep -diff -max-regress 10 BENCH_metro_baseline.json BENCH_METRO_PR.json; }
gate_nation_diff() { sweep -diff -max-regress 10 BENCH_nation_baseline.json BENCH_NATION_PR.json; }
# Budget is percentage points of mean fault degradation per scheme (and
# percent for the clean throughput it is normalized against).
gate_scorecard_diff() { sweep -scorecard-diff -max-regress 5 BENCH_scorecard_baseline.json BENCH_SCORECARD_PR.json; }
gate_traj_diff()      { sweep -diff -max-regress 10 BENCH_traj_baseline.json BENCH_TRAJ_PR.json; }

gate_budget() {
  if [ ! -f "$TIMES_FILE" ]; then
    echo "gate budget: no $TIMES_FILE (no gates ran?)" >&2
    exit 1
  fi
  local total=0
  while read -r _name secs; do
    total=$((total + secs))
  done <"$TIMES_FILE"
  {
    echo "### Gate timing"
    echo ""
    echo "| gate | seconds |"
    echo "|---|---|"
    awk '{printf "| %s | %s |\n", $1, $2}' "$TIMES_FILE"
    echo "| **total** | **${total}** (budget ${BUDGET_SECONDS}) |"
  } | tee -a "${GITHUB_STEP_SUMMARY:-/dev/null}"
  if [ "$total" -gt "$BUDGET_SECONDS" ]; then
    echo "FAIL: total gate time ${total}s exceeds the ${BUDGET_SECONDS}s budget" >&2
    exit 1
  fi
}

main() {
  if [ $# -ne 1 ]; then
    echo "usage: scripts/gate.sh <gate>" >&2
    grep -o '^gate_[a-z_]*' "$0" | sed 's/^gate_/  /;s/_/-/g' | sort -u >&2
    exit 2
  fi
  local name=$1
  local fn=gate_${name//-/_}
  if ! declare -F "$fn" >/dev/null; then
    echo "unknown gate \"$name\"" >&2
    exit 2
  fi
  if [ "$name" = budget ]; then
    "$fn"
    return
  fi
  local start end rc=0
  start=$(date +%s)
  "$fn" || rc=$?
  end=$(date +%s)
  echo "$name $((end - start))" >>"$TIMES_FILE"
  echo "gate $name: $((end - start))s (exit $rc)"
  return "$rc"
}

main "$@"
