package pbecc

// One benchmark per table and figure of the paper's evaluation: each
// regenerates the experiment through the same code path as cmd/pbebench
// (quick mode keeps -bench=. tractable; run `pbebench -exp <id>` for the
// full grid and printed rows). Reported metric: wall time to regenerate
// the experiment.

import (
	"testing"
	"time"

	"pbecc/internal/harness"
	"pbecc/internal/netsim"
	"pbecc/internal/nr"
	"pbecc/internal/phy"
	"pbecc/internal/sim"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := harness.RunExperiment(id, true)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("%s produced no output", id)
		}
	}
}

func BenchmarkTable1(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkFigure2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFigure3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFigure5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFigure6a(b *testing.B)  { benchExperiment(b, "fig6a") }
func BenchmarkFigure6b(b *testing.B)  { benchExperiment(b, "fig6b") }
func BenchmarkFigure7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFigure8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFigure9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFigure11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFigure12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFigure13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFigure14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFigure15(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkFigure16(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkFigure17(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkFigure18(b *testing.B)  { benchExperiment(b, "fig18") }
func BenchmarkFigure19(b *testing.B)  { benchExperiment(b, "fig19") }
func BenchmarkFigure20(b *testing.B)  { benchExperiment(b, "fig20") }
func BenchmarkFigure21a(b *testing.B) { benchExperiment(b, "fig21a") }
func BenchmarkFigure21b(b *testing.B) { benchExperiment(b, "fig21b") }
func BenchmarkFigure21c(b *testing.B) { benchExperiment(b, "fig21c") }
func BenchmarkFigure21d(b *testing.B) { benchExperiment(b, "fig21d") }

// 5G NR benches: the nr-* experiments added with internal/nr.

func BenchmarkNRTput(b *testing.B)             { benchExperiment(b, "nr-tput") }
func BenchmarkNRBlockage(b *testing.B)         { benchExperiment(b, "nr-blockage") }
func BenchmarkNRDualConnectivity(b *testing.B) { benchExperiment(b, "nr-dc") }
func BenchmarkNRCompete(b *testing.B)          { benchExperiment(b, "nr-compete") }

// BenchmarkNRSlotScheduling isolates the NR cell's slot loop from the
// transport stack: four saturated users on a µ=3 mmWave carrier, 8000
// scheduling slots per simulated second.
func BenchmarkNRSlotScheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.New(1)
		cell := nr.NewCell(eng, nr.Config{ID: 1, Mu: 3, BandwidthMHz: 100})
		for u := 0; u < 4; u++ {
			ue := nr.NewUE(eng, u, uint16(61+u))
			ue.AddCell(cell, phy.NewStaticChannel(-85, cell.Table, nil))
			ue.SetDefaultHandler(&netsim.Sink{Pool: netsim.PoolOf(eng)})
			netsim.NewCrossTraffic(eng, ue, 400e6, u+1).Start()
		}
		eng.RunUntil(time.Second)
		if cell.Slot() != 8000 {
			b.Fatalf("ran %d slots, want 8000", cell.Slot())
		}
	}
}

// RTC benches: the frame-level media subsystem. BenchmarkRTCCall is the
// one-to-one adaptive call; BenchmarkSFUFanout is the 32-subscriber
// fan-out across LTE and NR cells, the heaviest scenario the sweep's
// regression gate tracks.

func benchFamily(b *testing.B, family, scheme string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		sc, err := harness.BuildScenario(family, scheme, harness.Params{Seed: 1, Duration: time.Second})
		if err != nil {
			b.Fatal(err)
		}
		res := harness.Run(sc)
		if res.Flows[0].Frames == nil || res.Flows[0].Frames.Released == 0 {
			b.Fatalf("%s/%s released no frames", family, scheme)
		}
	}
}

func BenchmarkRTCCallPBE(b *testing.B)   { benchFamily(b, "rtc", "pbe") }
func BenchmarkRTCCallGCC(b *testing.B)   { benchFamily(b, "rtc", "gcc") }
func BenchmarkSFUFanoutPBE(b *testing.B) { benchFamily(b, "sfu", "pbe") }
func BenchmarkSFUFanoutGCC(b *testing.B) { benchFamily(b, "sfu", "gcc") }

// Metro benches: the acceptance scale of the sharded engine - 128 cells
// (64 LTE + 64 NR), 2048 UEs, mixed bulk/rtc/sfu flows with background
// churn, one simulated second. The only difference between the variants
// is the parallel shard width, so their ratio is the intra-scenario
// speedup (expect >=2x at 4 shards on a 4-core runner; on a single core
// they should be within a few percent of each other, the window-barrier
// overhead). Byte-identity across widths is enforced by the harness
// property test and CI's metro determinism gate; here the reported
// measured-Mbit/s metric makes a divergence visible at a glance.

func benchMetro(b *testing.B, shards int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		sc, err := harness.BuildScenario("metro", "pbe", harness.Params{
			Seed: 1, Duration: time.Second, Shards: shards})
		if err != nil {
			b.Fatal(err)
		}
		res := harness.Run(sc)
		f := res.Flows[0]
		if f.Received == 0 {
			b.Fatal("measured flow received nothing")
		}
		b.ReportMetric(f.AvgTputMbps, "measured-Mbit/s")
	}
}

func BenchmarkMetro1Shard(b *testing.B)  { benchMetro(b, 1) }
func BenchmarkMetro2Shards(b *testing.B) { benchMetro(b, 2) }
func BenchmarkMetro4Shards(b *testing.B) { benchMetro(b, 4) }
func BenchmarkMetro8Shards(b *testing.B) { benchMetro(b, 8) }

// BenchmarkMetroSmokeSlice is the CI-sized metro (8 cells, 128 UEs), the
// unit the metro determinism gate and BENCH_metro_baseline.json track.
func BenchmarkMetroSmokeSlice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc, err := harness.BuildScenario("metro", "pbe", harness.Params{
			Seed: 1, Cells: 8, Duration: 500 * time.Millisecond, Shards: 4})
		if err != nil {
			b.Fatal(err)
		}
		if harness.Run(sc).Flows[0].Received == 0 {
			b.Fatal("measured flow received nothing")
		}
	}
}

// Ablation benches: the design-choice studies DESIGN.md calls out.

func BenchmarkAblationSuite(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkAblationDecode compares the oracle monitor path against the
// bit-level PDCCH blind-decode path on the same scenario, reporting the
// cost of real decoding.
func BenchmarkAblationDecode(b *testing.B) {
	for _, mode := range []struct {
		name   string
		decode bool
	}{{"oracle", false}, {"pdcch", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				loc := harness.Location{Index: 300, Name: "decode", Indoor: true,
					CCs: 1, Busy: false, RSSI: -91}
				sc := harness.LocationScenario(loc, "pbe", 500e6) // 500 ms
				sc.MonitorDecodesPDCCH = mode.decode
				r := harness.Run(sc)
				if r.Flows[0].Received == 0 {
					b.Fatal("no packets")
				}
			}
		})
	}
}

// BenchmarkAblationFilter quantifies the §4.2.1 control-traffic filter on
// a busy cell: disabling it inflates N and shrinks the fair share.
func BenchmarkAblationFilter(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"filter-on", false}, {"filter-off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var tput float64
			for i := 0; i < b.N; i++ {
				loc := harness.Location{Index: 301, Name: "filter", Indoor: true,
					CCs: 1, Busy: true, RSSI: -91}
				sc := harness.LocationScenario(loc, "pbe", 3e9) // 3 s
				sc.DisableUserFilter = mode.disable
				tput = harness.Run(sc).Flows[0].AvgTputMbps
			}
			b.ReportMetric(tput, "Mbit/s")
		})
	}
}
