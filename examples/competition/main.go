// Competition: reproduce the §6.3.3 drill-down. A PBE-CC flow shares a
// cell with an on-off 60 Mbit/s competitor; the example prints the PBE
// flow's rate and delay timeline and the same run with BBR, showing PBE
// quenching instantly when the competitor appears and grabbing the freed
// capacity the millisecond it leaves (the paper's Figure 19).
package main

import (
	"fmt"
	"time"

	"pbecc/internal/harness"
	"pbecc/internal/trace"
)

func scenario(scheme string) *harness.Scenario {
	return &harness.Scenario{
		Name: "competition-" + scheme, Seed: 18, Duration: 16 * time.Second,
		Cells: []harness.CellSpec{{ID: 1, NPRB: 100, Control: trace.Idle()}},
		UEs: []harness.UESpec{
			{ID: 1, RNTI: 61, CellIDs: []int{1}, RSSI: -90},
			{ID: 2, RNTI: 62, CellIDs: []int{1}, RSSI: -90},
		},
		Flows: []harness.FlowSpec{
			{ID: 1, UE: 1, Scheme: scheme, Start: 0, RTTBase: 40 * time.Millisecond},
			{ID: 2, UE: 2, Scheme: "fixed", FixedRate: 60e6,
				Start: 4 * time.Second, OnPeriod: 4 * time.Second, OffPeriod: 4 * time.Second},
		},
	}
}

func main() {
	pbe := harness.Run(scenario("pbe")).Flows[0]
	bbr := harness.Run(scenario("bbr")).Flows[0]

	fmt.Println("competitor: 60 Mbit/s, ON during [4,8)s and [12,16)s")
	fmt.Println("t(s)   pbe(Mbit/s)  bbr(Mbit/s)  competitor")
	for i, tm := range pbe.TimelineT {
		if i%5 != 0 {
			continue
		}
		comp := "off"
		phase := (tm - 4*time.Second) % (8 * time.Second)
		if tm >= 4*time.Second && phase < 4*time.Second {
			comp = "ON"
		}
		var bbrRate float64
		if i < len(bbr.TimelineR) {
			bbrRate = bbr.TimelineR[i]
		}
		fmt.Printf("%5.1f  %11.1f  %11.1f  %s\n", tm.Seconds(), pbe.TimelineR[i], bbrRate, comp)
	}
	fmt.Printf("\nsummary:       avg tput   avg delay   p95 delay\n")
	fmt.Printf("  pbe         %7.1f    %7.1f ms  %7.1f ms\n",
		pbe.AvgTputMbps, pbe.Delay.Mean(), pbe.Delay.Percentile(95))
	fmt.Printf("  bbr         %7.1f    %7.1f ms  %7.1f ms\n",
		bbr.AvgTputMbps, bbr.Delay.Mean(), bbr.Delay.Percentile(95))
	fmt.Println("\npaper Figure 18: PBE 57 Mbit/s @ 61/71 ms; BBR 62 Mbit/s @ 147/227 ms")
}
