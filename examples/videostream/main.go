// Videostream: the application the paper's introduction motivates. A
// 25 Mbit/s video plays while the viewer walks through the -85 -> -105 dBm
// trajectory; the rtc.StreamPlayer models the client buffer draining at
// the video bitrate. Startup delay and rebuffering time depend directly on
// how well the transport tracks the capacity dip - PBE-CC's fine-grained
// feedback keeps the buffer fed through the trough.
package main

import (
	"fmt"
	"time"

	"pbecc/internal/harness"
	"pbecc/internal/phy"
	"pbecc/internal/rtc"
	"pbecc/internal/trace"
)

const videoMbps = 25.0

func scenario(scheme string) *harness.Scenario {
	return &harness.Scenario{
		Name: "video-" + scheme, Seed: 33, Duration: 40 * time.Second,
		Cells: []harness.CellSpec{{ID: 1, NPRB: 50, Control: trace.Idle()}},
		UEs: []harness.UESpec{{
			ID: 1, RNTI: 61, CellIDs: []int{1},
			Trajectory:  phy.PaperMobilityTrajectory(),
			FadingSigma: 2,
		}},
		Flows: []harness.FlowSpec{{
			ID: 1, UE: 1, Scheme: scheme, Start: 0, RTTBase: 40 * time.Millisecond,
		}},
	}
}

func main() {
	fmt.Printf("25 Mbit/s video over a 10 MHz cell, walking -85 -> -105 -> -85 dBm\n\n")
	fmt.Printf("%-8s %-14s %-16s %-12s %-10s\n",
		"scheme", "startup(ms)", "rebuffering(ms)", "tput(Mbit/s)", "p95 delay")
	player := rtc.StreamPlayer{
		BitrateMbps: videoMbps,
		StartupSecs: 1, // one buffered second before playback starts
		// The buffer cap keeps players from prefetching the movie; the
		// transport cannot ride through a long capacity trough on
		// prefetched data.
		MaxBufferSecs: 2,
	}
	for _, scheme := range []string{"pbe", "bbr", "cubic", "sprout"} {
		f := harness.Run(scenario(scheme)).Flows[0]
		startup, rebuffer := player.Play(100*time.Millisecond, f.TimelineT, f.TimelineR)
		fmt.Printf("%-8s %-14d %-16d %-12.1f %-10.1f\n",
			scheme, startup.Milliseconds(), rebuffer.Milliseconds(),
			f.AvgTputMbps, f.Delay.Percentile(95))
	}
	fmt.Println("\nin the -105 dBm trough capacity falls below the video rate, so some")
	fmt.Println("rebuffering is physics - every transport pays it. The difference is")
	fmt.Println("what the viewer pays the rest of the time: PBE-CC delivers the same")
	fmt.Println("video with interactive-grade latency (p95 ~37 ms) while BBR/CUBIC")
	fmt.Println("hold 130-470 ms of queue, which live or interactive video cannot use.")
}
