// Realudp: run the PBE-CC wire protocol over real UDP sockets on
// loopback. A rate-shaped relay stands in for the cellular link; its
// shaped rate is stepped down and up mid-run, and the PBE-CC sender
// follows the capacity feedback within a round trip. This is the
// deployable sender/receiver path of §5 - only the endpoints participate.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pbecc/internal/transport"
)

func main() {
	// The "cell": a relay shaping to a varying rate. Its current rate is
	// what the mobile's monitor would estimate from the control channel.
	var relay *transport.Relay
	client, err := transport.NewUDPClient(func() float64 {
		if relay == nil {
			return 0
		}
		return relay.Rate()
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	relay, err = transport.NewRelay(30e6, 128*1024, client.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer relay.Close()

	sender, err := transport.NewUDPSender(relay.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer sender.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	go client.Run(ctx)
	go sender.Run(ctx)

	// Capacity steps: 30 -> 8 -> 45 Mbit/s.
	go func() {
		time.Sleep(time.Second)
		relay.SetRate(8e6)
		time.Sleep(time.Second)
		relay.SetRate(45e6)
	}()

	fmt.Println("t(ms)  link(Mbit/s)  pacing(Mbit/s)  acked")
	start := time.Now()
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			cs := client.Stats()
			ss := sender.Stats()
			fmt.Printf("\ndone: sent=%d acked=%d received=%d (%.1f Mbit over 3s)\n",
				ss.Sent, ss.Acked, cs.Received, float64(cs.Bytes)*8/1e6)
			return
		case <-tick.C:
			ss := sender.Stats()
			fmt.Printf("%5d  %12.1f  %14.1f  %5d\n",
				time.Since(start).Milliseconds(), relay.Rate()/1e6, ss.Rate/1e6, ss.Acked)
		}
	}
}
