// Quickstart: run one PBE-CC flow over a simulated LTE cell and print the
// headline statistics. This is the smallest complete use of the library:
// build a scenario, run it, read the flow result.
package main

import (
	"fmt"
	"time"

	"pbecc/internal/harness"
)

func main() {
	sc := &harness.Scenario{
		Name:     "quickstart",
		Seed:     1,
		Duration: 8 * time.Second,
		// One 20 MHz cell (100 PRBs).
		Cells: []harness.CellSpec{{ID: 1, NPRB: 100}},
		// One phone at good signal strength (-93 dBm), no carrier
		// aggregation configured.
		UEs: []harness.UESpec{{ID: 1, RNTI: 61, CellIDs: []int{1}, RSSI: -93}},
		// One PBE-CC flow from a server 40 ms away.
		Flows: []harness.FlowSpec{{
			ID: 1, UE: 1, Scheme: "pbe", Start: 0,
			RTTBase: 40 * time.Millisecond,
		}},
	}

	r := harness.Run(sc)
	f := r.Flows[0]
	fmt.Println("PBE-CC on an idle 100-PRB cell, 40 ms RTT:")
	fmt.Printf("  average throughput : %.1f Mbit/s\n", f.AvgTputMbps)
	fmt.Printf("  one-way delay      : avg %.1f ms, p95 %.1f ms\n",
		f.Delay.Mean(), f.Delay.Percentile(95))
	fmt.Printf("  packets            : %d acked, %d lost\n", f.Received, f.Lost)
	fmt.Printf("  internet-state time: %.1f%%\n", 100*f.InternetFrac)

	// Compare against BBR under identical conditions (same seed).
	sc2 := *sc
	sc2.Flows = []harness.FlowSpec{{
		ID: 1, UE: 1, Scheme: "bbr", Start: 0, RTTBase: 40 * time.Millisecond,
	}}
	b := harness.Run(&sc2).Flows[0]
	fmt.Println("BBR, same cell and seed:")
	fmt.Printf("  average throughput : %.1f Mbit/s\n", b.AvgTputMbps)
	fmt.Printf("  one-way delay      : avg %.1f ms, p95 %.1f ms\n",
		b.Delay.Mean(), b.Delay.Percentile(95))
	fmt.Printf("\nPBE-CC delay reduction vs BBR: %.2fx (p95), at %.2fx the throughput\n",
		b.Delay.Percentile(95)/f.Delay.Percentile(95), f.AvgTputMbps/b.AvgTputMbps)
}
