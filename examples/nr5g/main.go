// 5G NR walkthrough: the three scenarios the internal/nr subsystem adds
// on top of the paper's LTE testbed.
//
//  1. A standalone NR cell (µ=1, 100 MHz, 273 PRBs, 256-QAM): PBE-CC
//     reads per-slot grants off the control channel - 2000 slots/s
//     instead of LTE's 1000 subframes/s - and fills the carrier without
//     queueing delay.
//  2. An mmWave cell (µ=3, 120 kHz SCS, 0.125 ms slots) hit by an abrupt
//     blockage: capacity collapses ~90x within 10 ms. PBE-CC sees the
//     collapse in the next few slots and paces down before the queue
//     builds; a loss-based sender keeps pushing until drops force it off.
//  3. An EN-DC device (LTE anchor + NR secondary): sustained demand
//     activates the NR leg and the monitor aggregates capacity across the
//     two RATs' different slot clocks.
package main

import (
	"fmt"
	"time"

	"pbecc/internal/harness"
	"pbecc/internal/nr"
	"pbecc/internal/trace"
)

func main() {
	standalone()
	blockage()
	dualConnectivity()
}

func standalone() {
	fmt.Println("1. Standalone NR cell: µ=1, 100 MHz, idle")
	for _, scheme := range []string{"pbe", "bbr"} {
		sc := harness.NRScenario(scheme, 1, 100, -88, false, 4*time.Second)
		f := harness.Run(sc).Flows[0]
		fmt.Printf("   %-4s: %6.1f Mbit/s, delay p50 %5.1f ms, p95 %5.1f ms\n",
			scheme, f.AvgTputMbps, f.Delay.Percentile(50), f.Delay.Percentile(95))
	}
	fmt.Println()
}

func blockage() {
	fmt.Println("2. mmWave blockage: µ=3, 100 MHz, 35 dB blockage at t=1.5..2.5s")
	for _, scheme := range []string{"pbe", "cubic"} {
		sc := &harness.Scenario{
			Name: "nr5g-blockage-" + scheme, Seed: 42, Duration: 4 * time.Second,
			NRCells: []harness.NRCellSpec{{ID: 101, Mu: 3, BandwidthMHz: 100,
				Control: trace.Idle()}},
			UEs: []harness.UESpec{{ID: 1, RNTI: 61, NRCellIDs: []int{101},
				NRTrajectory: nr.BlockageTrajectory(-80, 35,
					1500*time.Millisecond, 2500*time.Millisecond)}},
			Flows: []harness.FlowSpec{{ID: 1, UE: 1, Scheme: scheme,
				RTTBase: 20 * time.Millisecond}},
		}
		f := harness.Run(sc).Flows[0]
		fmt.Printf("   %-5s: %6.1f Mbit/s avg, delay avg %5.1f ms, p95 %5.1f ms\n",
			scheme, f.AvgTputMbps, f.Delay.Mean(), f.Delay.Percentile(95))
	}
	fmt.Println()
}

func dualConnectivity() {
	fmt.Println("3. EN-DC: 20 MHz LTE anchor + µ=1 100 MHz NR secondary")
	sc := &harness.Scenario{
		Name: "nr5g-endc", Seed: 7, Duration: 4 * time.Second,
		Cells:   []harness.CellSpec{{ID: 1, NPRB: 100, Control: trace.Idle()}},
		NRCells: []harness.NRCellSpec{{ID: 101, Mu: 1, BandwidthMHz: 100, Control: trace.Idle()}},
		UEs: []harness.UESpec{{ID: 1, RNTI: 61, CellIDs: []int{1},
			NRCellIDs: []int{101}, RSSI: -90}},
		Flows: []harness.FlowSpec{{ID: 1, UE: 1, Scheme: "pbe",
			RTTBase: 40 * time.Millisecond}},
	}
	r := harness.Run(sc)
	f := r.Flows[0]
	fmt.Printf("   pbe  : %6.1f Mbit/s, NR secondary activated: %v\n",
		f.AvgTputMbps, r.NRActivated)
	fmt.Println("   (the LTE anchor alone tops out near 75 Mbit/s at this signal strength)")
}
