// Rtcall: frame-level interactive video over a cellular last hop - the
// workload class PBE-CC's low-latency claim is about. Part one runs a
// one-to-one adaptive call on an LTE cell and compares schemes on
// frame-level QoE (what a video call feels like) rather than throughput.
// Part two stands up an SFU fan-out: one simulcast ingest serving 32
// subscribers spread across LTE and NR cells, each leg picking its own
// rate-ladder layer from its congestion controller.
package main

import (
	"fmt"

	"pbecc/internal/harness"
)

func main() {
	fmt.Println("one-to-one 30 fps call, 4 s, single LTE cell")
	fmt.Printf("%-8s %-12s %-12s %-12s %-10s %-10s\n",
		"scheme", "tput(Mbit/s)", "p50(ms)", "p95(ms)", "late(%)", "freeze(ms)")
	for _, scheme := range []string{"pbe", "gcc", "bbr", "cubic"} {
		sc, err := harness.BuildScenario("rtc", scheme, harness.Params{Seed: 21})
		if err != nil {
			panic(err)
		}
		f := harness.Run(sc).Flows[0]
		fmt.Printf("%-8s %-12.2f %-12.1f %-12.1f %-10.1f %-10d\n",
			scheme, f.AvgTputMbps,
			f.Frames.Delay.Percentile(50), f.Frames.Delay.Percentile(95),
			f.Frames.LatePct(), f.Frames.FreezeTime.Milliseconds())
	}

	fmt.Printf("\nSFU fan-out: 1 ingest -> %d subscribers across LTE and NR cells\n", harness.SFUSubscribers)
	fmt.Printf("%-8s %-14s %-12s %-12s %-10s\n",
		"scheme", "sub0 p95(ms)", "sub0 late%", "legs>=1Mbps", "total(Mbit/s)")
	for _, scheme := range []string{"pbe", "gcc", "bbr"} {
		sc, err := harness.BuildScenario("sfu", scheme, harness.Params{Seed: 21})
		if err != nil {
			panic(err)
		}
		res := harness.Run(sc)
		var total float64
		healthy := 0
		for _, f := range res.Flows {
			total += f.AvgTputMbps
			if f.AvgTputMbps >= 1 {
				healthy++
			}
		}
		f0 := res.Flows[0]
		fmt.Printf("%-8s %-14.1f %-12.1f %-12d %-10.1f\n",
			scheme, f0.Frames.Delay.Percentile(95), f0.Frames.LatePct(), healthy, total)
	}

	fmt.Println("\nthe frame metrics, not the throughput column, are the story: every")
	fmt.Println("scheme can move the bits, but only capacity-tracking control keeps")
	fmt.Println("capture-to-play delay flat enough for interactive video. The GCC")
	fmt.Println("baseline probes its way to the right ladder rung in seconds; PBE-CC")
	fmt.Println("reads the rung straight off the physical layer.")
}
