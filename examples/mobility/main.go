// Mobility: reproduce the §6.3.2 drive test. The phone starts at
// -85 dBm, walks to -105 dBm over 13 s, returns quickly, and sits still;
// the example compares how PBE-CC and BBR track the capacity swing
// (the paper's Figures 16-17).
package main

import (
	"fmt"
	"time"

	"pbecc/internal/harness"
	"pbecc/internal/phy"
	"pbecc/internal/trace"
)

func scenario(scheme string) *harness.Scenario {
	return &harness.Scenario{
		Name: "mobility-" + scheme, Seed: 16, Duration: 40 * time.Second,
		Cells: []harness.CellSpec{{ID: 1, NPRB: 100, Control: trace.Idle()}},
		UEs: []harness.UESpec{{
			ID: 1, RNTI: 61, CellIDs: []int{1},
			Trajectory:  phy.PaperMobilityTrajectory(),
			FadingSigma: 2,
		}},
		Flows: []harness.FlowSpec{{
			ID: 1, UE: 1, Scheme: scheme, Start: 0, RTTBase: 40 * time.Millisecond,
		}},
	}
}

func avgWindow(f *harness.FlowResult, from, to time.Duration) float64 {
	var sum float64
	n := 0
	for i, tm := range f.TimelineT {
		if tm >= from && tm < to {
			sum += f.TimelineR[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func main() {
	pbe := harness.Run(scenario("pbe")).Flows[0]
	bbr := harness.Run(scenario("bbr")).Flows[0]

	fmt.Println("trajectory: -85 dBm, move to -105 dBm over [13,26)s, back by 30s")
	fmt.Println("t(s)   pbe(Mbit/s)  bbr(Mbit/s)")
	for from := time.Duration(0); from < 40*time.Second; from += 2 * time.Second {
		fmt.Printf("%5.0f  %11.1f  %11.1f\n", from.Seconds(),
			avgWindow(pbe, from, from+2*time.Second),
			avgWindow(bbr, from, from+2*time.Second))
	}
	fmt.Printf("\nsummary:      avg tput    p95 delay\n")
	fmt.Printf("  pbe        %7.1f    %7.1f ms\n", pbe.AvgTputMbps, pbe.Delay.Percentile(95))
	fmt.Printf("  bbr        %7.1f    %7.1f ms\n", bbr.AvgTputMbps, bbr.Delay.Percentile(95))
	fmt.Println("\npaper Figure 16: PBE 55 Mbit/s @ p95 64 ms; BBR ~55 Mbit/s @ 156 ms")
}
