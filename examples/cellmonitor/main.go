// Cellmonitor: watch a busy cell through PBE-CC's eyes. The example runs
// a cell with calibrated control-plane chatter and one competing data
// user, attaches the capacity monitor, and prints what the monitor
// extracts each 200 ms: detected users, filtered active users N, the
// Eqn 3 capacity estimate and the Eqn 2 fair share.
//
// The first few subframes additionally run through the bit-level PDCCH
// pipeline (encode -> blind decode) to show that the monitor's input
// really is recoverable from coded control-channel bits.
package main

import (
	"fmt"
	"time"

	"pbecc/internal/core"
	"pbecc/internal/lte"
	"pbecc/internal/netsim"
	"pbecc/internal/pdcch"
	"pbecc/internal/phy"
	"pbecc/internal/sim"
	"pbecc/internal/trace"
)

func main() {
	eng := sim.New(7)
	cell := lte.NewCell(eng, 1, 100, phy.Table64QAM, trace.Busy())

	// The monitored phone.
	me := lte.NewUE(eng, 1, 61)
	myChannel := phy.NewStaticChannel(-91, phy.Table64QAM, nil)
	me.AddCell(cell, myChannel)
	me.SetCarrierAggregation(false)
	me.SetDefaultHandler(&netsim.Sink{})
	me.Start()

	// A competing data user.
	other := lte.NewUE(eng, 2, 62)
	other.AddCell(cell, phy.NewStaticChannel(-95, phy.Table64QAM, nil))
	other.SetCarrierAggregation(false)
	other.SetDefaultHandler(&netsim.Sink{})
	other.Start()
	comp := netsim.NewCrossTraffic(eng, other, 15e6, 2)
	eng.At(time.Second, comp.Start)
	eng.At(3*time.Second, comp.Stop)

	mine := netsim.NewCrossTraffic(eng, me, 20e6, 1)
	mine.Start()

	mon := core.NewMonitor(61)
	mon.AttachCell(core.CellInfo{
		ID: 1, NPRB: 100,
		Rate: func() float64 { return myChannel.MCS().BitsPerPRB() },
		BER:  func() float64 { return myChannel.BER() },
	})

	decoder := pdcch.NewDecoder(0)
	decodedSubframes := 0
	cell.AttachMonitor(func(rep *lte.SubframeReport) {
		// Demonstrate the coded path on the first 5 non-empty subframes.
		if decodedSubframes < 5 && len(rep.Allocs) > 0 {
			decodedSubframes++
			region := lte.EncodeReport(rep, 3)
			if region != nil {
				got := lte.DecodeReport(region, 1, phy.Table64QAM, decoder)
				fmt.Printf("subframe %4d: %d DCIs on the air, blind-decoded %d (PRBs %d vs %d)\n",
					rep.Subframe, len(rep.Allocs), len(got.Allocs),
					rep.AllocatedPRBs(), got.AllocatedPRBs())
				mon.OnSubframe(got)
				return
			}
		}
		mon.OnSubframe(rep)
	})

	fmt.Println("t(s)  detected  N  capacity(Mbit/s)  fair-share(Mbit/s)")
	eng.Every(200*time.Millisecond, func() {
		fmt.Printf("%4.1f  %8d  %d  %16.1f  %18.1f\n",
			eng.Now().Seconds(),
			mon.DetectedUsers(1),
			mon.ActiveUsers(1),
			core.BitsPerSubframeToBps(mon.CapacityBits())/1e6,
			core.BitsPerSubframeToBps(mon.FairShareBits())/1e6)
	})
	eng.RunUntil(4 * time.Second)
	fmt.Println("\nnote the competitor entering at 1s (N: 1->2, capacity drops)")
	fmt.Println("and leaving at 3s (idle PRBs reappear, capacity recovers).")
}
