module pbecc

go 1.22
