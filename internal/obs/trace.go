package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"
)

// Trace event phases, a subset of the Chrome trace-event format that
// Perfetto renders natively: complete spans, counter series and instant
// markers.
const (
	PhaseComplete = 'X'
	PhaseCounter  = 'C'
	PhaseInstant  = 'i'
)

// TraceEvent is one virtual-time trace record. TS and Dur are virtual
// simulation time; Pid is the shard that produced the event (Perfetto
// groups tracks by pid) and Tid subdivides a shard's tracks (0 for
// shard-level events, the flow ID for per-flow timelines). V carries the
// sample of a counter event.
type TraceEvent struct {
	Name string
	Cat  string
	Ph   byte
	TS   time.Duration
	Dur  time.Duration
	Pid  int
	Tid  int
	V    float64

	// seq orders events with equal (TS, Pid): it is assigned per shard
	// buffer in emission order, which inside one shard is execution
	// order. (TS, Pid, seq) is therefore a total order independent of
	// which OS thread advanced the shard.
	seq uint64
}

// Buffer is one shard's trace ring: only that shard's goroutine appends
// during a window, and the recorder drains it serially at the window
// barrier, so no synchronization is needed. When a single window emits
// more events than the ring holds, the oldest events of that window are
// overwritten (Dropped counts them).
type Buffer struct {
	pid     int
	ring    []TraceEvent
	next    int
	fill    int
	seq     uint64
	Dropped uint64

	// Windowed-counter aggregates (CounterWindowed), keyed by track name,
	// flushed as one counter event per 40 ms window. aggOrder keeps the
	// end-of-run FlushCounters deterministic.
	aggs     map[string]*counterAgg
	aggOrder []string
}

type counterAgg struct {
	win int64
	sum float64
	n   int
}

// DefaultBufferCap is the per-shard ring capacity. Rings are drained at
// every synchronization window barrier, so the cap bounds one window's
// emission, not the whole run's.
const DefaultBufferCap = 1 << 15

// Pid returns the shard id the buffer belongs to.
func (b *Buffer) Pid() int { return b.pid }

func (b *Buffer) emit(ev TraceEvent) {
	b.seq++
	ev.Pid, ev.seq = b.pid, b.seq
	if b.fill == len(b.ring) {
		b.Dropped++
	} else {
		b.fill++
	}
	b.ring[b.next] = ev
	b.next = (b.next + 1) % len(b.ring)
}

// Complete emits a span covering [ts, ts+dur).
func (b *Buffer) Complete(name, cat string, ts, dur time.Duration, tid int) {
	b.emit(TraceEvent{Name: name, Cat: cat, Ph: PhaseComplete, TS: ts, Dur: dur, Tid: tid})
}

// CounterEvent emits one sample of a counter series. Perfetto plots one
// track per (pid, name), so per-flow series bake the flow into the name.
func (b *Buffer) CounterEvent(name string, ts time.Duration, v float64) {
	b.emit(TraceEvent{Name: name, Cat: "counter", Ph: PhaseCounter, TS: ts, V: v})
}

// CounterWindowed batches a counter track per 40 ms SeriesWindow: samples
// accumulate per track name and one event carrying the window mean is
// emitted at the window's start time when a sample lands in a later
// window. Dense decision tracks (one sample per ACK) collapse ~1000x, so
// Perfetto loads metro traces without stalling; the merged trace stays
// deterministic because flushed events sort by (TS, Pid, seq) and TS is
// the window start. Call FlushCounters at end of run to close open
// windows.
func (b *Buffer) CounterWindowed(name string, ts time.Duration, v float64) {
	if b.aggs == nil {
		b.aggs = map[string]*counterAgg{}
	}
	a := b.aggs[name]
	if a == nil {
		a = &counterAgg{}
		b.aggs[name] = a
		b.aggOrder = append(b.aggOrder, name)
	}
	w := int64(ts / SeriesWindow)
	if a.n > 0 && w != a.win {
		b.flushAgg(name, a)
	}
	if a.n == 0 {
		a.win = w
	}
	a.sum += v
	a.n++
}

func (b *Buffer) flushAgg(name string, a *counterAgg) {
	b.emit(TraceEvent{Name: name, Cat: "counter", Ph: PhaseCounter,
		TS: time.Duration(a.win) * SeriesWindow, V: a.sum / float64(a.n)})
	a.n, a.sum = 0, 0
}

// FlushCounters emits every open windowed-counter aggregate, in track
// creation order. Call only at end of run, from a serial phase.
func (b *Buffer) FlushCounters() {
	if b == nil {
		return
	}
	for _, name := range b.aggOrder {
		if a := b.aggs[name]; a.n > 0 {
			b.flushAgg(name, a)
		}
	}
}

// Instant emits a point marker.
func (b *Buffer) Instant(name, cat string, ts time.Duration, tid int) {
	b.emit(TraceEvent{Name: name, Cat: cat, Ph: PhaseInstant, TS: ts, Tid: tid})
}

// Recorder collects the trace of one simulation run: it owns one ring
// buffer per shard and accumulates drained events. Buffers are created
// and drained only from the cluster's serial phases, in shard order, so
// the accumulated sequence - like everything else in a sharded run - is
// independent of the worker count.
type Recorder struct {
	bufCap  int
	events  []TraceEvent
	Dropped uint64 // events lost to ring overwrites across all shards
}

// NewRecorder returns a recorder whose shard buffers hold DefaultBufferCap
// events each.
func NewRecorder() *Recorder { return &Recorder{bufCap: DefaultBufferCap} }

// SetBufferCap overrides the per-shard ring capacity for buffers created
// afterwards (tests use tiny rings to exercise overwrite).
func (r *Recorder) SetBufferCap(n int) {
	if n < 1 {
		n = 1
	}
	r.bufCap = n
}

// NewBuffer creates the ring buffer for shard pid.
func (r *Recorder) NewBuffer(pid int) *Buffer {
	return &Buffer{pid: pid, ring: make([]TraceEvent, r.bufCap)}
}

// Drain moves the buffer's events (oldest first) into the recorder and
// resets the ring. Call only from a serial phase.
func (r *Recorder) Drain(b *Buffer) {
	if b == nil || b.fill == 0 {
		r.drainDropped(b)
		return
	}
	start := b.next - b.fill
	if start < 0 {
		start += len(b.ring)
	}
	for i := 0; i < b.fill; i++ {
		r.events = append(r.events, b.ring[(start+i)%len(b.ring)])
	}
	b.next, b.fill = 0, 0
	r.drainDropped(b)
}

func (r *Recorder) drainDropped(b *Buffer) {
	if b != nil && b.Dropped > 0 {
		r.Dropped += b.Dropped
		b.Dropped = 0
	}
}

// Events returns the merged trace sorted by (TS, Pid, seq) - a total
// order, so the result is deterministic no matter how the run's windows
// interleaved across workers.
func (r *Recorder) Events() []TraceEvent {
	sort.SliceStable(r.events, func(i, j int) bool {
		a, b := &r.events[i], &r.events[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		return a.seq < b.seq
	})
	return r.events
}

// Len returns the number of drained events held by the recorder.
func (r *Recorder) Len() int { return len(r.events) }

// WriteChromeTrace renders the merged trace as Chrome trace-event JSON,
// viewable in Perfetto (ui.perfetto.dev) or chrome://tracing. Virtual
// nanoseconds map to trace microseconds with three decimals, so one
// trace millisecond is one simulated millisecond. The encoder is
// hand-rolled to keep field order (and therefore bytes) deterministic.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range r.Events() {
		sep := ","
		if i == len(r.events)-1 {
			sep = ""
		}
		ts := float64(ev.TS) / float64(time.Microsecond)
		switch ev.Ph {
		case PhaseComplete:
			dur := float64(ev.Dur) / float64(time.Microsecond)
			fmt.Fprintf(bw, "{\"name\":%q,\"cat\":%q,\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d}%s\n",
				ev.Name, ev.Cat, ts, dur, ev.Pid, ev.Tid, sep)
		case PhaseCounter:
			fmt.Fprintf(bw, "{\"name\":%q,\"cat\":%q,\"ph\":\"C\",\"ts\":%.3f,\"pid\":%d,\"args\":{\"v\":%g}}%s\n",
				ev.Name, ev.Cat, ts, ev.Pid, ev.V, sep)
		case PhaseInstant:
			fmt.Fprintf(bw, "{\"name\":%q,\"cat\":%q,\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d}%s\n",
				ev.Name, ev.Cat, ts, ev.Pid, ev.Tid, sep)
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
