package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// withMetrics runs f with collection enabled and a clean slate, restoring
// the disabled default afterwards so other tests see zero-cost mode.
func withMetrics(t *testing.T, f func()) {
	t.Helper()
	Reset()
	Enable()
	defer func() {
		Disable()
		Reset()
	}()
	f()
}

func TestDisabledMetricsRecordNothing(t *testing.T) {
	c := NewCounter("test.disabled_counter")
	w := NewWatermark("test.disabled_watermark")
	h := NewHistogram("test.disabled_histogram")
	Disable()
	c.Inc()
	c.Add(41)
	w.Observe(7)
	h.Observe(9)
	if c.Value() != 0 || w.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled metrics recorded: counter=%d watermark=%d hist=%d",
			c.Value(), w.Value(), h.Count())
	}
}

func TestCounterWatermarkHistogram(t *testing.T) {
	c := NewCounter("test.counter")
	w := NewWatermark("test.watermark")
	h := NewHistogram("test.histogram")
	withMetrics(t, func() {
		c.Inc()
		c.Add(9)
		for _, v := range []int64{5, 12, 3, 12, 7} {
			w.Observe(v)
		}
		for _, v := range []int64{0, 1, 2, 3, 4, -8} {
			h.Observe(v)
		}
		if c.Value() != 10 {
			t.Fatalf("counter = %d, want 10", c.Value())
		}
		if w.Value() != 12 {
			t.Fatalf("watermark = %d, want 12", w.Value())
		}
		// -8 clamps to 0.
		if h.Count() != 6 || h.Sum() != 10 {
			t.Fatalf("histogram count=%d sum=%d, want 6/10", h.Count(), h.Sum())
		}
	})
	// Reset (run by withMetrics on exit) must zero everything.
	if c.Value() != 0 || w.Value() != 0 || h.Count() != 0 {
		t.Fatalf("Reset left state: counter=%d watermark=%d hist=%d",
			c.Value(), w.Value(), h.Count())
	}
}

// TestWatermarkConcurrentMax: max is order-independent, the property that
// makes watermarks (unlike gauges) safe under parallel shards.
func TestWatermarkConcurrentMax(t *testing.T) {
	w := NewWatermark("test.watermark_concurrent")
	withMetrics(t, func() {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					w.Observe(int64(g*1000 + i))
				}
			}(g)
		}
		wg.Wait()
		if w.Value() != 7999 {
			t.Fatalf("concurrent watermark = %d, want 7999", w.Value())
		}
	})
}

func TestDuplicateNamePanics(t *testing.T) {
	NewCounter("test.dup")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	NewHistogram("test.dup")
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("test.buckets")
	withMetrics(t, func() {
		// 0 -> bucket le=0; 1 -> le=1; 2,3 -> le=3; 4..7 -> le=7.
		for _, v := range []int64{0, 1, 2, 3, 4, 7} {
			h.Observe(v)
		}
		s := TakeSnapshot()
		hs := s.Histograms["test.buckets"]
		want := []HistBucket{{0, 1}, {1, 1}, {3, 2}, {7, 2}}
		if len(hs.Buckets) != len(want) {
			t.Fatalf("buckets = %+v, want %+v", hs.Buckets, want)
		}
		for i, b := range want {
			if hs.Buckets[i] != b {
				t.Fatalf("bucket %d = %+v, want %+v", i, hs.Buckets[i], b)
			}
		}
	})
}

func TestSnapshotDeterministicBytes(t *testing.T) {
	c := NewCounter("test.snap_counter")
	withMetrics(t, func() {
		c.Add(3)
		var a, b bytes.Buffer
		if err := WriteSnapshot(&a); err != nil {
			t.Fatal(err)
		}
		if err := WriteSnapshot(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatal("two snapshots of the same state differ")
		}
		var s Snapshot
		if err := json.Unmarshal(a.Bytes(), &s); err != nil {
			t.Fatalf("snapshot is not valid JSON: %v", err)
		}
		if s.Counters["test.snap_counter"] != 3 {
			t.Fatalf("snapshot counter = %d, want 3", s.Counters["test.snap_counter"])
		}
	})
}

func TestMetricNamesSortedAndComplete(t *testing.T) {
	NewCounter("test.names_a")
	NewWatermark("test.names_b")
	names := MetricNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not strictly sorted at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"test.names_a", "test.names_b"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("MetricNames missing %q", want)
		}
	}
}

func TestDiffSnapshotsRejectsSpecMismatch(t *testing.T) {
	base := Snapshot{SpecHash: "aaa", Counters: map[string]uint64{"x": 1}}
	cur := Snapshot{SpecHash: "bbb", Counters: map[string]uint64{"x": 1}}
	if _, err := DiffSnapshots(base, cur); err == nil {
		t.Fatal("differing spec hashes not rejected")
	}
	// A legacy snapshot without a header must not silently compare
	// against a stamped one either.
	if _, err := DiffSnapshots(Snapshot{}, cur); err == nil {
		t.Fatal("missing spec hash on one side not rejected")
	}
	cur.SpecHash = "aaa"
	cur.Counters["y"] = 3
	deltas, err := DiffSnapshots(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 2 || deltas[0].Name != "x" || deltas[1].Name != "y" {
		t.Fatalf("deltas = %+v, want sorted union x,y", deltas)
	}
	if deltas[1].Base != 0 || deltas[1].Cur != 3 {
		t.Fatalf("one-sided metric delta = %+v", deltas[1])
	}
}
