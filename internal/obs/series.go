package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// The series layer is the registry's virtual-time sibling: where a
// Counter folds every sample into one order-independent total, a series
// keeps the sample stream's shape over time - downsampled into fixed
// 40 ms windows (the monitor's smoothing window, so one series point
// aligns with one capacity-estimation window) as (count, min, mean, max,
// last) aggregates. Like the trace recorder, series points land in
// per-shard ring buffers that only their shard's goroutine touches
// during a window and that the cluster drains serially at every window
// barrier; the merged stream sorts by (window, shard, seq), a total
// order, so the bytes are identical for any shard or worker width.
//
// Series definitions are registered once, at package init time of the
// instrumented package, through Series(name). Instrumented sites hold a
// *SeriesTrack that is nil when the run records no series; Sample on a
// nil track is a single predictable branch - the series analog of the
// registry's atomic-load gate - so an unrecorded run pays nothing else.

// SeriesWindow is the fixed downsampling window: one point per track per
// 40 ms, matching the PBE monitor's capacity-smoothing window so series
// points and capacity estimates describe the same time slices.
const SeriesWindow = 40 * time.Millisecond

// SeriesDef is one registered series type (a signal name, e.g.
// "cc.rate"). Concrete tracks are (def, tid) pairs created against a
// shard's SeriesBuffer.
type SeriesDef struct {
	name string
}

// Name returns the registered signal name.
func (d *SeriesDef) Name() string { return d.name }

var seriesRegistry = struct {
	sync.Mutex
	defs map[string]*SeriesDef
}{defs: map[string]*SeriesDef{}}

// Series registers a series definition under a unique signal name, at
// package init time of the instrumented package.
func Series(name string) *SeriesDef {
	seriesRegistry.Lock()
	defer seriesRegistry.Unlock()
	if name == "" {
		panic("obs: empty series name")
	}
	if _, ok := seriesRegistry.defs[name]; ok {
		panic(fmt.Sprintf("obs: duplicate series %q", name))
	}
	d := &SeriesDef{name: name}
	seriesRegistry.defs[name] = d
	return d
}

// SeriesNames returns every registered series name, sorted (for pbesim's
// -series-filter validation and the -list output).
func SeriesNames() []string {
	seriesRegistry.Lock()
	defer seriesRegistry.Unlock()
	names := make([]string, 0, len(seriesRegistry.defs))
	for n := range seriesRegistry.defs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SeriesPoint is one downsampled window of one track: the aggregate of
// every Sample that landed in window Win (virtual time [Win*40ms,
// (Win+1)*40ms)).
type SeriesPoint struct {
	Name  string
	Tid   int   // track instance: flow ID, UE ID, ... per the signal's docs
	Win   int64 // window index; start time is Win * SeriesWindow
	Count int
	Min   float64
	Mean  float64
	Max   float64
	Last  float64

	// pid/seq mirror the trace recorder's merge key: pid is the shard
	// that produced the point and seq its per-shard flush order, so
	// (Win, pid, seq) is a total order independent of worker scheduling.
	pid int
	seq uint64
}

// Time returns the window's start in virtual time.
func (p SeriesPoint) Time() time.Duration { return time.Duration(p.Win) * SeriesWindow }

// Pid returns the shard that produced the point.
func (p SeriesPoint) Pid() int { return p.pid }

// Sum returns the window's sample sum (Mean * Count), the building block
// for volume-style signals such as acked bytes per window.
func (p SeriesPoint) Sum() float64 { return p.Mean * float64(p.Count) }

// DefaultSeriesCap is the per-shard series ring capacity. Rings drain at
// every synchronization window barrier, so the cap bounds one barrier
// interval's flushed points, not the whole run's.
const DefaultSeriesCap = 1 << 14

// SeriesBuffer is one shard's series ring plus its live track aggregates.
// Only the shard's goroutine samples during a window; the recorder drains
// the ring serially at the barrier. On overflow the oldest points of the
// interval are overwritten (Dropped counts them).
type SeriesBuffer struct {
	pid     int
	ring    []SeriesPoint
	next    int
	fill    int
	seq     uint64
	Dropped uint64

	tracks map[seriesKey]*SeriesTrack
	order  []*SeriesTrack // creation order, for the deterministic final flush
}

type seriesKey struct {
	def *SeriesDef
	tid int
}

// Pid returns the shard id the buffer belongs to.
func (b *SeriesBuffer) Pid() int { return b.pid }

// Track returns the buffer's track for (def, tid), creating it on first
// use. Callers cache the pointer; repeated calls return the same track,
// so several instrumentation sites may feed one signal.
func (b *SeriesBuffer) Track(def *SeriesDef, tid int) *SeriesTrack {
	if b == nil {
		return nil
	}
	k := seriesKey{def, tid}
	if t, ok := b.tracks[k]; ok {
		return t
	}
	t := &SeriesTrack{buf: b, def: def, tid: tid}
	b.tracks[k] = t
	b.order = append(b.order, t)
	return t
}

// Flush closes every track's open window, emitting its aggregate as a
// point. Call only at end of run (from a serial phase): mid-run windows
// close themselves when a later sample arrives.
func (b *SeriesBuffer) Flush() {
	if b == nil {
		return
	}
	for _, t := range b.order {
		if t.count > 0 {
			t.flush()
		}
	}
}

func (b *SeriesBuffer) emit(p SeriesPoint) {
	b.seq++
	p.pid, p.seq = b.pid, b.seq
	if b.fill == len(b.ring) {
		b.Dropped++
	} else {
		b.fill++
	}
	b.ring[b.next] = p
	b.next = (b.next + 1) % len(b.ring)
}

// SeriesTrack accumulates one signal instance's samples into the current
// 40 ms window; the aggregate flushes into the shard's ring when a sample
// lands in a later window (or at the end-of-run Flush).
type SeriesTrack struct {
	buf *SeriesBuffer
	def *SeriesDef
	tid int

	win      int64
	count    int
	min, max float64
	sum      float64
	last     float64
}

// Sample folds one (virtual time, value) observation into the track. A
// nil track (the run records no series) is a single branch and returns.
func (t *SeriesTrack) Sample(ts time.Duration, v float64) {
	if t == nil {
		return
	}
	w := int64(ts / SeriesWindow)
	if t.count > 0 && w != t.win {
		t.flush()
	}
	if t.count == 0 {
		t.win, t.min, t.max = w, v, v
	} else {
		if v < t.min {
			t.min = v
		}
		if v > t.max {
			t.max = v
		}
	}
	t.sum += v
	t.last = v
	t.count++
}

func (t *SeriesTrack) flush() {
	t.buf.emit(SeriesPoint{
		Name:  t.def.name,
		Tid:   t.tid,
		Win:   t.win,
		Count: t.count,
		Min:   t.min,
		Mean:  t.sum / float64(t.count),
		Max:   t.max,
		Last:  t.last,
	})
	t.count, t.sum = 0, 0
}

// SeriesRecorder collects one run's series: one buffer per shard, drained
// at the cluster's serial phases, merged into a deterministic stream.
type SeriesRecorder struct {
	bufCap  int
	points  []SeriesPoint
	Dropped uint64 // points lost to ring overwrites across all shards
}

// NewSeriesRecorder returns a recorder whose shard buffers hold
// DefaultSeriesCap points each.
func NewSeriesRecorder() *SeriesRecorder { return &SeriesRecorder{bufCap: DefaultSeriesCap} }

// SetBufferCap overrides the per-shard ring capacity for buffers created
// afterwards (tests use tiny rings to exercise overwrite).
func (r *SeriesRecorder) SetBufferCap(n int) {
	if n < 1 {
		n = 1
	}
	r.bufCap = n
}

// NewBuffer creates the series buffer for shard pid.
func (r *SeriesRecorder) NewBuffer(pid int) *SeriesBuffer {
	return &SeriesBuffer{
		pid:    pid,
		ring:   make([]SeriesPoint, r.bufCap),
		tracks: map[seriesKey]*SeriesTrack{},
	}
}

// Drain moves the buffer's flushed points (oldest first) into the
// recorder and resets the ring. Call only from a serial phase. Open
// window aggregates stay in their tracks - a window may span barriers.
func (r *SeriesRecorder) Drain(b *SeriesBuffer) {
	if b == nil {
		return
	}
	if b.fill > 0 {
		start := b.next - b.fill
		if start < 0 {
			start += len(b.ring)
		}
		for i := 0; i < b.fill; i++ {
			r.points = append(r.points, b.ring[(start+i)%len(b.ring)])
		}
		b.next, b.fill = 0, 0
	}
	if b.Dropped > 0 {
		r.Dropped += b.Dropped
		b.Dropped = 0
	}
}

// Points returns the merged series sorted by (Win, Pid, seq) - a total
// order, so the result is byte-identical for any shard/worker width.
func (r *SeriesRecorder) Points() []SeriesPoint {
	sort.SliceStable(r.points, func(i, j int) bool {
		a, b := &r.points[i], &r.points[j]
		if a.Win != b.Win {
			return a.Win < b.Win
		}
		if a.pid != b.pid {
			return a.pid < b.pid
		}
		return a.seq < b.seq
	})
	return r.points
}

// Len returns the number of drained points held by the recorder.
func (r *SeriesRecorder) Len() int { return len(r.points) }

// TrackPoints returns the merged points of one (name, tid) track, in
// window order.
func (r *SeriesRecorder) TrackPoints(name string, tid int) []SeriesPoint {
	var out []SeriesPoint
	for _, p := range r.Points() {
		if p.Name == name && p.Tid == tid {
			out = append(out, p)
		}
	}
	return out
}

// SeriesKeyID identifies one recorded track.
type SeriesKeyID struct {
	Name string
	Tid  int
}

// Keys returns the distinct (name, tid) tracks present in the recorder,
// sorted by name then tid.
func (r *SeriesRecorder) Keys() []SeriesKeyID {
	seen := map[SeriesKeyID]bool{}
	var keys []SeriesKeyID
	for _, p := range r.points {
		k := SeriesKeyID{p.Name, p.Tid}
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Name != keys[j].Name {
			return keys[i].Name < keys[j].Name
		}
		return keys[i].Tid < keys[j].Tid
	})
	return keys
}

// fmtG renders a float with the shortest round-trip representation -
// deterministic bytes for a given value.
func fmtG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCSV renders the merged series as CSV: one row per point, sorted by
// (window, shard, seq), with shortest-round-trip float formatting, so the
// bytes are deterministic for any shard/worker width.
func (r *SeriesRecorder) WriteCSV(w io.Writer) error {
	return r.WriteCSVFiltered(w, nil)
}

// WriteCSVFiltered is WriteCSV restricted to the named signals (nil or
// empty keeps everything).
func (r *SeriesRecorder) WriteCSVFiltered(w io.Writer, names []string) error {
	keep := map[string]bool{}
	for _, n := range names {
		keep[n] = true
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("series,tid,t_ms,count,min,mean,max,last\n"); err != nil {
		return err
	}
	for _, p := range r.Points() {
		if len(keep) > 0 && !keep[p.Name] {
			continue
		}
		fmt.Fprintf(bw, "%s,%d,%d,%d,%s,%s,%s,%s\n",
			p.Name, p.Tid, p.Time().Milliseconds(), p.Count,
			fmtG(p.Min), fmtG(p.Mean), fmtG(p.Max), fmtG(p.Last))
	}
	return bw.Flush()
}
