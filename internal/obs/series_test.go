package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

var (
	tsA = Series("test.a")
	tsB = Series("test.b")
)

func TestSeriesWindowAggregation(t *testing.T) {
	r := NewSeriesRecorder()
	b := r.NewBuffer(0)
	tr := b.Track(tsA, 7)
	// Three samples in window 0, one in window 2: the window-0 aggregate
	// flushes when the window-2 sample arrives; window 2 needs Flush.
	tr.Sample(1*time.Millisecond, 10)
	tr.Sample(20*time.Millisecond, 30)
	tr.Sample(39*time.Millisecond, 20)
	tr.Sample(85*time.Millisecond, 5)
	b.Flush()
	r.Drain(b)
	pts := r.Points()
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	p := pts[0]
	if p.Name != "test.a" || p.Tid != 7 || p.Win != 0 {
		t.Fatalf("first point identity wrong: %+v", p)
	}
	if p.Count != 3 || p.Min != 10 || p.Max != 30 || p.Mean != 20 || p.Last != 20 {
		t.Fatalf("window 0 aggregate wrong: %+v", p)
	}
	if got := pts[1]; got.Win != 2 || got.Count != 1 || got.Mean != 5 {
		t.Fatalf("window 2 aggregate wrong: %+v", got)
	}
	if pts[0].Time() != 0 || pts[1].Time() != 80*time.Millisecond {
		t.Fatalf("window start times wrong: %v %v", pts[0].Time(), pts[1].Time())
	}
}

func TestSeriesNilTrackIsNoop(t *testing.T) {
	var tr *SeriesTrack
	tr.Sample(time.Millisecond, 1) // must not panic
	var b *SeriesBuffer
	if b.Track(tsA, 0) != nil {
		t.Fatal("nil buffer must yield a nil track")
	}
	b.Flush()
}

func TestSeriesTrackReuseAcrossSites(t *testing.T) {
	r := NewSeriesRecorder()
	b := r.NewBuffer(0)
	if b.Track(tsA, 1) != b.Track(tsA, 1) {
		t.Fatal("same (def, tid) must return the same track")
	}
	if b.Track(tsA, 1) == b.Track(tsA, 2) || b.Track(tsA, 1) == b.Track(tsB, 1) {
		t.Fatal("distinct (def, tid) must return distinct tracks")
	}
}

func TestSeriesMergeTotalOrder(t *testing.T) {
	// Two shards emitting interleaved windows: the merge must order by
	// (window, shard, seq) regardless of drain order.
	r := NewSeriesRecorder()
	b0, b1 := r.NewBuffer(0), r.NewBuffer(1)
	t0, t1 := b0.Track(tsA, 0), b1.Track(tsA, 0)
	for w := 0; w < 3; w++ {
		ts := time.Duration(w) * SeriesWindow
		t1.Sample(ts, float64(10+w))
		t0.Sample(ts, float64(w))
	}
	b1.Flush()
	r.Drain(b1) // drain shard 1 first: sort must still put shard 0 first
	b0.Flush()
	r.Drain(b0)
	pts := r.Points()
	if len(pts) != 6 {
		t.Fatalf("got %d points, want 6", len(pts))
	}
	for i, p := range pts {
		wantWin, wantPid := int64(i/2), i%2
		if p.Win != wantWin || p.Pid() != wantPid {
			t.Fatalf("point %d: got (win %d, pid %d), want (%d, %d)", i, p.Win, p.Pid(), wantWin, wantPid)
		}
	}
}

func TestSeriesRingOverflowCountsDropped(t *testing.T) {
	r := NewSeriesRecorder()
	r.SetBufferCap(2)
	b := r.NewBuffer(0)
	tr := b.Track(tsA, 0)
	for w := 0; w < 5; w++ {
		tr.Sample(time.Duration(w)*SeriesWindow, 1)
	}
	b.Flush()
	r.Drain(b)
	if r.Dropped != 3 {
		t.Fatalf("Dropped = %d, want 3", r.Dropped)
	}
	pts := r.Points()
	if len(pts) != 2 || pts[0].Win != 3 || pts[1].Win != 4 {
		t.Fatalf("ring must keep the newest windows, got %+v", pts)
	}
}

func TestSeriesCSVDeterministicAndFiltered(t *testing.T) {
	build := func() *SeriesRecorder {
		r := NewSeriesRecorder()
		b := r.NewBuffer(0)
		a, c := b.Track(tsA, 3), b.Track(tsB, 0)
		a.Sample(time.Millisecond, 1.5)
		a.Sample(50*time.Millisecond, 2.25)
		c.Sample(time.Millisecond, 7)
		b.Flush()
		r.Drain(b)
		return r
	}
	var w1, w2 bytes.Buffer
	if err := build().WriteCSV(&w1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteCSV(&w2); err != nil {
		t.Fatal(err)
	}
	if w1.String() != w2.String() {
		t.Fatal("CSV bytes differ across identical builds")
	}
	if !strings.HasPrefix(w1.String(), "series,tid,t_ms,count,min,mean,max,last\n") {
		t.Fatalf("missing header: %q", w1.String())
	}
	if !strings.Contains(w1.String(), "test.a,3,0,1,1.5,1.5,1.5,1.5\n") {
		t.Fatalf("unexpected CSV body:\n%s", w1.String())
	}
	var fw bytes.Buffer
	if err := build().WriteCSVFiltered(&fw, []string{"test.b"}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(fw.String(), "test.a") || !strings.Contains(fw.String(), "test.b") {
		t.Fatalf("filter failed:\n%s", fw.String())
	}
}

func TestSeriesDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate series registration must panic")
		}
	}()
	Series("test.a")
}

func TestSeriesNamesSorted(t *testing.T) {
	names := SeriesNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not strictly sorted: %v", names)
		}
	}
	found := false
	for _, n := range names {
		if n == "test.a" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered series missing from SeriesNames")
	}
}

func TestCounterWindowedBatchesPerWindow(t *testing.T) {
	r := NewRecorder()
	b := r.NewBuffer(0)
	// 100 samples inside window 0 collapse to one event; the window-1
	// sample opens a new aggregate that FlushCounters closes.
	for i := 0; i < 100; i++ {
		b.CounterWindowed("cc/x", time.Duration(i)*100*time.Microsecond, float64(i))
	}
	b.CounterWindowed("cc/x", 45*time.Millisecond, 7)
	b.FlushCounters()
	r.Drain(b)
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].TS != 0 || evs[0].V != 49.5 {
		t.Fatalf("window 0 event wrong: ts=%v v=%v", evs[0].TS, evs[0].V)
	}
	if evs[1].TS != SeriesWindow || evs[1].V != 7 {
		t.Fatalf("window 1 event wrong: ts=%v v=%v", evs[1].TS, evs[1].V)
	}
}
