package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// ProfileFlags bundles the standard runtime-profiling flags the pbe
// commands share: CPU, heap and mutex profiles plus a runtime/trace
// capture. Register them on a FlagSet before flag.Parse, then bracket
// the workload with Start and the returned stop function.
type ProfileFlags struct {
	CPU   string
	Mem   string
	Mutex string
	Trace string
}

// RegisterProfileFlags adds -cpuprofile, -memprofile, -mutexprofile and
// -trace to fs (use flag.CommandLine for a command's top level).
func RegisterProfileFlags(fs *flag.FlagSet) *ProfileFlags {
	p := &ProfileFlags{}
	fs.StringVar(&p.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.Mem, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&p.Mutex, "mutexprofile", "", "write a mutex-contention profile to this file at exit")
	fs.StringVar(&p.Trace, "trace", "", "write a runtime execution trace to this file")
	return p
}

// Start begins the requested captures and returns the function that
// finalizes them (stop CPU/trace capture, write heap and mutex
// profiles). Call stop on the normal exit path; it is safe to call when
// no flag was set.
func (p *ProfileFlags) Start() (stop func() error, err error) {
	var cpuF, traceF *os.File
	if p.CPU != "" {
		if cpuF, err = os.Create(p.CPU); err != nil {
			return nil, err
		}
		if err = pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if p.Trace != "" {
		if traceF, err = os.Create(p.Trace); err != nil {
			return nil, err
		}
		if err = trace.Start(traceF); err != nil {
			traceF.Close()
			return nil, fmt.Errorf("trace: %w", err)
		}
	}
	if p.Mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	return func() error {
		var firstErr error
		keep := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if cpuF != nil {
			pprof.StopCPUProfile()
			keep(cpuF.Close())
		}
		if traceF != nil {
			trace.Stop()
			keep(traceF.Close())
		}
		if p.Mem != "" {
			keep(writeProfile(p.Mem, func(f *os.File) error {
				runtime.GC() // materialize the final live set
				return pprof.WriteHeapProfile(f)
			}))
		}
		if p.Mutex != "" {
			keep(writeProfile(p.Mutex, func(f *os.File) error {
				return pprof.Lookup("mutex").WriteTo(f, 0)
			}))
		}
		return firstErr
	}, nil
}

func writeProfile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
