// Package obs is the simulation-native observability layer: a typed
// metrics registry, a virtual-time trace recorder, and runtime-profiling
// helpers, shared by the sim engine, the network model, the congestion
// controllers and the media subsystem.
//
// Two invariants shape every type here:
//
//   - Deterministic: nothing in this package draws randomness, schedules
//     events, or otherwise feeds back into the simulation. Enabling
//     metrics or tracing must leave every sweep row byte-identical -
//     CI gates on exactly that. Counter totals, watermarks and histogram
//     buckets are order-independent reductions (sums and maxes), so even
//     a snapshot taken after a parallel sweep is the same for any worker
//     or shard count.
//
//   - Zero-cost when disabled: every metric write starts with one atomic
//     flag load and a predictable branch; no allocation, no lock, no map
//     lookup. Instrumented hot paths (the event engine schedules in
//     ~100 ns) stay within the CI benchmark budget with metrics off.
//
// Metrics are registered once, at package init time of the instrumented
// package, through NewCounter / NewWatermark / NewHistogram. Snapshot
// renders the registry as deterministic JSON (sorted names, integer
// values).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled is the global metrics switch. Off by default: a plain library
// user or a CI determinism gate pays one atomic load per instrumented
// site and nothing else.
var enabled atomic.Bool

// Enable turns metric collection on.
func Enable() { enabled.Store(true) }

// Disable turns metric collection off. Recorded values are kept until
// Reset.
func Disable() { enabled.Store(false) }

// Enabled reports whether metric collection is on.
func Enabled() bool { return enabled.Load() }

// registry holds every metric ever registered. Registration happens at
// package init time (and in tests), so a mutex-guarded map is fine; the
// write path never touches it.
var registry = struct {
	sync.Mutex
	counters   map[string]*Counter
	watermarks map[string]*Watermark
	histograms map[string]*Histogram
}{
	counters:   map[string]*Counter{},
	watermarks: map[string]*Watermark{},
	histograms: map[string]*Histogram{},
}

func registerName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	if _, ok := registry.counters[name]; ok {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	if _, ok := registry.watermarks[name]; ok {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	if _, ok := registry.histograms[name]; ok {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
}

// Counter is a monotonically increasing event count. Concurrent
// increments from parallel shards sum to the same total regardless of
// interleaving, so counters are safe to snapshot deterministically.
type Counter struct {
	name string
	v    atomic.Uint64
}

// NewCounter registers a counter under a unique name.
func NewCounter(name string) *Counter {
	registry.Lock()
	defer registry.Unlock()
	registerName(name)
	c := &Counter{name: name}
	registry.counters[name] = c
	return c
}

// Inc adds one.
func (c *Counter) Inc() {
	if enabled.Load() {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Value returns the current total.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Watermark tracks the maximum observed value. Max is commutative, so -
// like a counter - the final value is independent of the order in which
// parallel shards observe. (A last-write-wins gauge would not be; that
// is why the registry has no plain gauge type.)
type Watermark struct {
	name string
	v    atomic.Int64
}

// NewWatermark registers a high-watermark metric under a unique name.
func NewWatermark(name string) *Watermark {
	registry.Lock()
	defer registry.Unlock()
	registerName(name)
	w := &Watermark{name: name}
	registry.watermarks[name] = w
	return w
}

// Observe folds in one sample, keeping the maximum.
func (w *Watermark) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	for {
		cur := w.v.Load()
		if v <= cur {
			return
		}
		if w.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the highest observed value.
func (w *Watermark) Value() int64 { return w.v.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts samples v with bits.Len64(v) == i, i.e. 0, 1, 2-3, 4-7, ... up
// to the full uint64 range.
const histBuckets = 65

// Histogram is a fixed-bucket power-of-two histogram of non-negative
// integer samples (bytes, counts, microseconds). Bucket assignment is a
// bit-length computation - no float math, no allocation - and bucket
// counts are order-independent sums.
type Histogram struct {
	name    string
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// NewHistogram registers a histogram under a unique name.
func NewHistogram(name string) *Histogram {
	registry.Lock()
	defer registry.Unlock()
	registerName(name)
	h := &Histogram{name: name}
	registry.histograms[name] = h
	return h
}

// Observe folds in one sample; negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(v))
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Reset zeroes every registered metric (between sweep runs, and in
// tests). It does not change the enabled flag.
func Reset() {
	registry.Lock()
	defer registry.Unlock()
	for _, c := range registry.counters {
		c.v.Store(0)
	}
	for _, w := range registry.watermarks {
		w.v.Store(0)
	}
	for _, h := range registry.histograms {
		h.count.Store(0)
		h.sum.Store(0)
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
	}
}

// HistBucket is one non-empty histogram bucket in a snapshot: Le is the
// inclusive upper bound of the bucket's value range.
type HistBucket struct {
	Le uint64 `json:"le"`
	N  uint64 `json:"n"`
}

// HistSnapshot is one histogram's state in a snapshot.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of the registry, suitable for
// deterministic JSON encoding (encoding/json sorts map keys). SpecHash
// is an optional header identifying the sweep spec the snapshot was
// recorded under (sweep.SpecHash); DiffSnapshots rejects a comparison
// when the hashes differ, so a stale .obs.json from an older matrix
// cannot masquerade as a regression or an improvement.
type Snapshot struct {
	SpecHash   string                  `json:"spec_hash,omitempty"`
	Counters   map[string]uint64       `json:"counters"`
	Watermarks map[string]int64        `json:"watermarks"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// bucketUpperBound returns the inclusive upper bound of bucket i.
func bucketUpperBound(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// TakeSnapshot copies every registered metric's current value.
func TakeSnapshot() Snapshot {
	registry.Lock()
	defer registry.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(registry.counters)),
		Watermarks: make(map[string]int64, len(registry.watermarks)),
		Histograms: make(map[string]HistSnapshot, len(registry.histograms)),
	}
	for name, c := range registry.counters {
		s.Counters[name] = c.v.Load()
	}
	for name, w := range registry.watermarks {
		s.Watermarks[name] = w.v.Load()
	}
	for name, h := range registry.histograms {
		hs := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
		for i := range h.buckets {
			if n := h.buckets[i].Load(); n > 0 {
				hs.Buckets = append(hs.Buckets, HistBucket{Le: bucketUpperBound(i), N: n})
			}
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteSnapshot renders the registry as indented JSON. Map keys encode
// sorted, so the bytes are deterministic for a given registry state.
func WriteSnapshot(w io.Writer) error { return WriteSnapshotSpec(w, "") }

// WriteSnapshotSpec is WriteSnapshot with the spec-hash header set.
func WriteSnapshotSpec(w io.Writer, specHash string) error {
	s := TakeSnapshot()
	s.SpecHash = specHash
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot loads a snapshot file written by WriteSnapshot.
func ReadSnapshot(path string) (Snapshot, error) {
	var s Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// SnapshotDelta is one metric's value compared between two snapshots.
type SnapshotDelta struct {
	Name      string
	Base, Cur float64
}

// DiffSnapshots compares two snapshots metric by metric (counters,
// watermarks, and histogram counts), the union of both sides sorted by
// name. It refuses to compare snapshots whose spec-hash headers differ:
// the metric totals of different sweep matrices are incommensurable, so
// a stale file must be regenerated, not diffed around.
func DiffSnapshots(base, cur Snapshot) ([]SnapshotDelta, error) {
	if base.SpecHash != cur.SpecHash {
		return nil, fmt.Errorf("snapshots come from different sweep specs (spec_hash %q vs %q): regenerate the stale one",
			base.SpecHash, cur.SpecHash)
	}
	vals := map[string][2]float64{}
	put := func(name string, side int, v float64) {
		pair := vals[name]
		pair[side] = v
		vals[name] = pair
	}
	for side, s := range []Snapshot{base, cur} {
		for n, v := range s.Counters {
			put(n, side, float64(v))
		}
		for n, v := range s.Watermarks {
			put(n, side, float64(v))
		}
		for n, h := range s.Histograms {
			put(n+".count", side, float64(h.Count))
		}
	}
	names := make([]string, 0, len(vals))
	for n := range vals {
		names = append(names, n)
	}
	sort.Strings(names)
	deltas := make([]SnapshotDelta, 0, len(names))
	for _, n := range names {
		deltas = append(deltas, SnapshotDelta{Name: n, Base: vals[n][0], Cur: vals[n][1]})
	}
	return deltas, nil
}

// MetricNames returns every registered metric name, sorted (for tests
// and the pbesweep -list output).
func MetricNames() []string {
	registry.Lock()
	defer registry.Unlock()
	names := make([]string, 0, len(registry.counters)+len(registry.watermarks)+len(registry.histograms))
	for n := range registry.counters {
		names = append(names, n)
	}
	for n := range registry.watermarks {
		names = append(names, n)
	}
	for n := range registry.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
