package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestBufferDrainPreservesOrder(t *testing.T) {
	r := NewRecorder()
	b := r.NewBuffer(0)
	for i := 0; i < 5; i++ {
		b.CounterEvent("x", time.Duration(i)*time.Millisecond, float64(i))
	}
	r.Drain(b)
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("drained %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.V != float64(i) {
			t.Fatalf("event %d has value %v, want %d", i, ev.V, i)
		}
	}
}

func TestRingOverwriteKeepsNewestAndCountsDropped(t *testing.T) {
	r := NewRecorder()
	r.SetBufferCap(4)
	b := r.NewBuffer(0)
	for i := 0; i < 10; i++ {
		b.CounterEvent("x", time.Duration(i), float64(i))
	}
	r.Drain(b)
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("kept %d events, want 4", len(evs))
	}
	for i, want := range []float64{6, 7, 8, 9} {
		if evs[i].V != want {
			t.Fatalf("event %d = %v, want %v (newest must survive)", i, evs[i].V, want)
		}
	}
	if r.Dropped != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped)
	}
}

// TestMergeTotalOrder: events from several shards merge into the
// (TS, Pid, seq) total order regardless of drain interleaving.
func TestMergeTotalOrder(t *testing.T) {
	r := NewRecorder()
	b0, b1 := r.NewBuffer(0), r.NewBuffer(1)
	// Same timestamps on both shards; shard order must break the tie.
	for i := 0; i < 3; i++ {
		b1.Instant("b", "t", time.Duration(i)*time.Millisecond, 0)
		b0.Instant("a", "t", time.Duration(i)*time.Millisecond, 0)
	}
	// Drain in "wrong" order; the sort must not care.
	r.Drain(b1)
	r.Drain(b0)
	evs := r.Events()
	want := []struct {
		name string
		pid  int
	}{{"a", 0}, {"b", 1}, {"a", 0}, {"b", 1}, {"a", 0}, {"b", 1}}
	for i, w := range want {
		if evs[i].Name != w.name || evs[i].Pid != w.pid {
			t.Fatalf("merged[%d] = %s/pid%d, want %s/pid%d",
				i, evs[i].Name, evs[i].Pid, w.name, w.pid)
		}
	}
}

func TestWriteChromeTraceValidAndDeterministic(t *testing.T) {
	build := func() *Recorder {
		r := NewRecorder()
		b := r.NewBuffer(2)
		b.Complete("window", "shard", 10*time.Millisecond, 5*time.Millisecond, 0)
		b.CounterEvent("rate", 12*time.Millisecond, 3.25)
		b.Instant("shed", "rtc", 13*time.Millisecond, 7)
		r.Drain(b)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical recorders produced different trace bytes")
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Args map[string]float64
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, a.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("trace has %d events, want 3", len(doc.TraceEvents))
	}
	span := doc.TraceEvents[0]
	// Virtual nanoseconds render as microsecond ts: 10 ms -> 10000 µs.
	if span.Ph != "X" || span.TS != 10000 || span.Dur != 5000 || span.Pid != 2 {
		t.Fatalf("span event wrong: %+v", span)
	}
	if doc.TraceEvents[1].Args["v"] != 3.25 {
		t.Fatalf("counter args = %v, want v=3.25", doc.TraceEvents[1].Args)
	}
	if doc.TraceEvents[2].Tid != 7 {
		t.Fatalf("instant tid = %d, want 7", doc.TraceEvents[2].Tid)
	}
}
