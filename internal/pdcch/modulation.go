package pdcch

import "math/rand"

// QPSK modulation as used by the PDCCH: pairs of bits map to I/Q symbol
// components at +-1/sqrt(2). The synthetic channel adds white Gaussian
// noise; the demodulator emits per-bit log-likelihood ratios with the
// convention positive = bit 0 more likely.

// Symbol is one complex QPSK symbol.
type Symbol struct {
	I, Q float64
}

const qpskAmp = 0.7071067811865476 // 1/sqrt(2)

// modulateQPSK maps bits (even length; a trailing odd bit is zero-padded)
// to symbols: bit 0 -> +amp, bit 1 -> -amp on each component.
func modulateQPSK(bits Bits) []Symbol {
	n := (len(bits) + 1) / 2
	syms := make([]Symbol, n)
	for i := 0; i < n; i++ {
		b0 := bits[2*i]
		var b1 uint8
		if 2*i+1 < len(bits) {
			b1 = bits[2*i+1]
		}
		s := Symbol{qpskAmp, qpskAmp}
		if b0 == 1 {
			s.I = -qpskAmp
		}
		if b1 == 1 {
			s.Q = -qpskAmp
		}
		syms[i] = s
	}
	return syms
}

// addNoise corrupts symbols in place with AWGN of standard deviation sigma
// per component. A nil rng leaves the symbols untouched.
func addNoise(syms []Symbol, sigma float64, rng *rand.Rand) {
	if rng == nil || sigma <= 0 {
		return
	}
	for i := range syms {
		syms[i].I += rng.NormFloat64() * sigma
		syms[i].Q += rng.NormFloat64() * sigma
	}
}

// demodulateQPSK converts symbols back to 2*len(syms) soft LLRs, scaled by
// 2/sigma^2 (for sigma <= 0 a unit scale is used, appropriate for
// noiseless loopback).
func demodulateQPSK(syms []Symbol, sigma float64) []float64 {
	scale := 1.0
	if sigma > 0 {
		scale = 2 / (sigma * sigma)
	}
	llr := make([]float64, 2*len(syms))
	for i, s := range syms {
		llr[2*i] = scale * s.I
		llr[2*i+1] = scale * s.Q
	}
	return llr
}

// symbolEnergy returns the mean per-symbol energy, used by the blind
// decoder to skip unoccupied candidate locations.
func symbolEnergy(syms []Symbol) float64 {
	if len(syms) == 0 {
		return 0
	}
	var e float64
	for _, s := range syms {
		e += s.I*s.I + s.Q*s.Q
	}
	return e / float64(len(syms))
}
