package pdcch

import (
	"math"
	"math/rand"
	"sort"
)

// The PDCCH occupies the first CFI OFDM symbols of each subframe. Its
// resource is organized in control channel elements (CCEs) of 9 resource
// element groups (36 REs, 72 coded bits under QPSK). A DCI is transmitted
// on an aggregation of 1, 2, 4 or 8 consecutive CCEs; the UE does not know
// where, so it blind-decodes a bounded set of candidate locations (the
// common and UE-specific search spaces) trying every payload size.

// BitsPerCCE is the number of coded bits one CCE carries (36 QPSK symbols).
const BitsPerCCE = 72

// SymbolsPerCCE is the number of QPSK symbols per CCE.
const SymbolsPerCCE = BitsPerCCE / 2

// AggregationLevels lists the valid CCE aggregation levels.
var AggregationLevels = []int{1, 2, 4, 8}

// NumCCEs returns the number of CCEs in the control region of a cell with
// nPRB resource blocks and a control format indicator of cfi symbols:
// roughly 2 REGs per PRB in the first symbol and 3 in later symbols, minus
// PCFICH (4 REGs) and PHICH (12 REGs) overhead, 9 REGs per CCE.
func NumCCEs(nPRB, cfi int) int {
	if cfi < 1 {
		cfi = 1
	}
	if cfi > 3 {
		cfi = 3
	}
	regs := 2 * nPRB
	if cfi >= 2 {
		regs += 3 * nPRB
	}
	if cfi >= 3 {
		regs += 3 * nPRB
	}
	regs -= 16 // PCFICH + PHICH
	if regs < 0 {
		regs = 0
	}
	return regs / 9
}

// searchSeed advances the UE-specific search-space hash Y_k of TS 36.213
// §9.1.1: Y_k = (A * Y_{k-1}) mod D with A = 39827, D = 65537 and
// Y_{-1} = RNTI.
func searchSeed(rnti uint16, subframe int) uint32 {
	const (
		a = 39827
		d = 65537
	)
	y := uint32(rnti)
	if y == 0 {
		y = 1
	}
	for k := 0; k <= subframe%10; k++ {
		y = y * a % d
	}
	return y
}

// Candidate is one blind-decoding location: an aggregation level and a
// starting CCE index.
type Candidate struct {
	Level    int
	FirstCCE int
}

// numCandidates[level] is the number of UE-specific candidates monitored
// per aggregation level (TS 36.213 Table 9.1.1-1).
func numCandidates(level int) int {
	switch level {
	case 1, 2:
		return 6
	case 4, 8:
		return 2
	}
	return 0
}

// UESearchSpace returns the UE-specific candidates of a given RNTI in a
// subframe, for a control region of nCCE CCEs.
func UESearchSpace(rnti uint16, subframe, nCCE int) []Candidate {
	var out []Candidate
	y := searchSeed(rnti, subframe)
	for _, level := range AggregationLevels {
		slots := nCCE / level
		if slots == 0 {
			continue
		}
		m := numCandidates(level)
		if m > slots {
			m = slots
		}
		for i := 0; i < m; i++ {
			first := level * int((y+uint32(i))%uint32(slots))
			out = append(out, Candidate{Level: level, FirstCCE: first})
		}
	}
	return out
}

// CommonSearchSpace returns the common candidates (aggregation levels 4
// and 8 from CCE 0) every UE monitors.
func CommonSearchSpace(nCCE int) []Candidate {
	var out []Candidate
	for _, level := range []int{4, 8} {
		m := 4
		if level == 8 {
			m = 2
		}
		for i := 0; i < m; i++ {
			first := level * i
			if first+level > nCCE {
				break
			}
			out = append(out, Candidate{Level: level, FirstCCE: first})
		}
	}
	return out
}

// AllCandidateStarts enumerates every possible candidate location in a
// control region (for a monitor that scans exhaustively like OWL, which
// cannot precompute other users' search spaces without their RNTIs).
func AllCandidateStarts(nCCE int) []Candidate {
	var out []Candidate
	for _, level := range AggregationLevels {
		for first := 0; first+level <= nCCE; first += level {
			out = append(out, Candidate{Level: level, FirstCCE: first})
		}
	}
	return out
}

// Region is the encoded control region of one subframe: the QPSK symbols
// of every CCE.
type Region struct {
	Bandwidth Bandwidth
	Subframe  int
	NCCE      int
	Symbols   []Symbol // NCCE * SymbolsPerCCE
	occupied  []bool   // per CCE, encoder-side bookkeeping
}

// NewRegion returns an empty control region (all-zero symbols) for the
// given bandwidth and CFI.
func NewRegion(bw Bandwidth, cfi, subframe int) *Region {
	n := NumCCEs(bw.NPRB, cfi)
	return &Region{
		Bandwidth: bw,
		Subframe:  subframe,
		NCCE:      n,
		Symbols:   make([]Symbol, n*SymbolsPerCCE),
		occupied:  make([]bool, n),
	}
}

// Place encodes one DCI onto the region at an unoccupied candidate of the
// owner's UE-specific search space with the requested aggregation level,
// falling back to higher levels if needed. It reports whether a location
// was found. Levels below 2 are raised to 2: a third-party monitor cannot
// validate aggregation-level-1 candidates (their code redundancy is too
// small to separate codewords from noise without knowing the RNTI), so the
// synthesized base station, like conservatively configured eNBs, starts at
// level 2.
func (r *Region) Place(d *DCI, level int) bool {
	if level < 2 {
		level = 2
	}
	payload := d.Pack(r.Bandwidth)
	block := attachCRC(payload, d.RNTI)
	coded := encodeConv(block)
	cands := UESearchSpace(d.RNTI, r.Subframe, r.NCCE)
	// Try the requested level first, then anything larger.
	sort.SliceStable(cands, func(i, j int) bool {
		pi := cands[i].Level
		pj := cands[j].Level
		di := pi - level
		dj := pj - level
		if di < 0 {
			di += 16 // below-requested levels go last
		}
		if dj < 0 {
			dj += 16
		}
		return di < dj
	})
	for _, c := range cands {
		if c.FirstCCE+c.Level > r.NCCE || !r.free(c) {
			continue
		}
		tx := rateMatch(coded, c.Level*BitsPerCCE)
		syms := modulateQPSK(tx)
		copy(r.Symbols[c.FirstCCE*SymbolsPerCCE:], syms)
		for i := 0; i < c.Level; i++ {
			r.occupied[c.FirstCCE+i] = true
		}
		return true
	}
	return false
}

func (r *Region) free(c Candidate) bool {
	for i := 0; i < c.Level; i++ {
		if r.occupied[c.FirstCCE+i] {
			return false
		}
	}
	return true
}

// AddNoise corrupts the whole region with AWGN of the given per-component
// standard deviation.
func (r *Region) AddNoise(sigma float64, rng *rand.Rand) {
	addNoise(r.Symbols, sigma, rng)
}

// Decoded is one blind-decoding result.
type Decoded struct {
	DCI       DCI
	Candidate Candidate
	// ReencodeErrors is the Hamming distance between the received hard
	// decisions and the re-encoded codeword, the decoder's confidence
	// measure (0 on a clean channel).
	ReencodeErrors int
}

// Decoder blind-decodes control regions the way the paper's monitor does:
// scan every candidate location and payload size, Viterbi-decode, recover
// the RNTI from the scrambled CRC, and validate by re-encoding. Because the
// monitor does not know other users' RNTIs, the 16-bit CRC alone cannot
// reject false candidates (any pattern implies *some* RNTI); validation
// instead requires the re-encoded codeword to match the received hard
// decisions much more closely than the best noise-fitting codeword could.
type Decoder struct {
	// Sigma is the assumed noise level for LLR scaling (0 = noiseless).
	Sigma float64
	// MinRedundancyBits skips (location, size) hypotheses whose coded
	// length exceeds the block length by less than this, since such
	// near-uncoded candidates validate on noise.
	MinRedundancyBits int
	// MinEnergy skips candidates whose mean symbol energy is below this
	// threshold (unoccupied CCEs in a synthesized region are silent).
	MinEnergy float64
}

// NewDecoder returns a decoder with validation thresholds suited to the
// given channel noise sigma.
func NewDecoder(sigma float64) *Decoder {
	return &Decoder{Sigma: sigma, MinRedundancyBits: 64, MinEnergy: 0.1}
}

// acceptThreshold returns the maximum acceptable re-encode mismatch
// fraction for a hypothesis with k block bits in n coded bits. The best
// codeword of a ~2^k codebook fitted to n random bits mismatches about
// 0.5 - sqrt(k ln2 / 2n) of them; accepting at half that keeps noise out
// while true transmissions (mismatch = channel BER, a few percent) pass.
// On a noiseless channel an exact match is required.
func (dec *Decoder) acceptThreshold(n, k int) float64 {
	if dec.Sigma == 0 {
		return 0
	}
	fp := 0.5 - math.Sqrt(float64(k)*math.Ln2/(2*float64(n)))
	thr := 0.5 * fp
	if thr > 0.15 {
		thr = 0.15
	}
	if thr < 0 {
		thr = 0
	}
	return thr
}

// Decode scans the region and returns every validated DCI, deduplicated so
// that each CCE contributes to at most one message (preferring candidates
// with fewer re-encode errors).
func (dec *Decoder) Decode(r *Region) []Decoded {
	var results []Decoded
	for _, c := range AllCandidateStarts(r.NCCE) {
		syms := r.Symbols[c.FirstCCE*SymbolsPerCCE : (c.FirstCCE+c.Level)*SymbolsPerCCE]
		if symbolEnergy(syms) < dec.MinEnergy {
			continue
		}
		llr := demodulateQPSK(syms, dec.Sigma)
		for _, size := range r.Bandwidth.PayloadSizes() {
			if d, ok := dec.tryCandidate(llr, size, c, r.Bandwidth); ok {
				results = append(results, d)
			}
		}
	}
	return dedupe(results)
}

// tryCandidate attempts one (location, payload size) hypothesis.
func (dec *Decoder) tryCandidate(llr []float64, payloadBits int, c Candidate, bw Bandwidth) (Decoded, bool) {
	blockBits := payloadBits + 16
	if c.Level*BitsPerCCE-blockBits < dec.MinRedundancyBits {
		return Decoded{}, false
	}
	coded := deRateMatch(llr, blockBits)
	block := viterbiTailBiting(coded, blockBits)
	if block == nil {
		return Decoded{}, false
	}
	payload, rnti, ok := recoverRNTI(block)
	if !ok || rnti == 0 {
		return Decoded{}, false
	}
	d, ok := UnpackDCI(payload, bw)
	if !ok {
		return Decoded{}, false
	}
	d.RNTI = rnti
	// Validate by re-encoding and comparing with the received hard
	// decisions; this is what separates true messages from CRC-coincident
	// noise, since the blind decoder cannot check against a known RNTI.
	reenc := rateMatch(encodeConv(block), c.Level*BitsPerCCE)
	hard := make(Bits, len(llr))
	for i, v := range llr {
		if v < 0 {
			hard[i] = 1
		}
	}
	errs := hammingDistance(reenc, hard)
	if float64(errs) > dec.acceptThreshold(len(hard), blockBits)*float64(len(hard)) {
		return Decoded{}, false
	}
	return Decoded{DCI: d, Candidate: c, ReencodeErrors: errs}, true
}

// dedupe keeps at most one decoded message per CCE span, preferring lower
// re-encode error and, at a tie, larger aggregation (a legitimate AL-2
// message also decodes at each constituent AL-1 position on clean
// channels; the full-span candidate is the true one).
func dedupe(in []Decoded) []Decoded {
	sort.SliceStable(in, func(i, j int) bool {
		fi := float64(in[i].ReencodeErrors) / float64(in[i].Candidate.Level*BitsPerCCE)
		fj := float64(in[j].ReencodeErrors) / float64(in[j].Candidate.Level*BitsPerCCE)
		if fi != fj {
			return fi < fj
		}
		return in[i].Candidate.Level > in[j].Candidate.Level
	})
	used := map[int]bool{}
	var out []Decoded
	for _, d := range in {
		clash := false
		for i := 0; i < d.Candidate.Level; i++ {
			if used[d.Candidate.FirstCCE+i] {
				clash = true
				break
			}
		}
		if clash {
			continue
		}
		for i := 0; i < d.Candidate.Level; i++ {
			used[d.Candidate.FirstCCE+i] = true
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Candidate.FirstCCE < out[j].Candidate.FirstCCE
	})
	return out
}
