package pdcch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDCIPackUnpackProperty quick-checks pack/unpack round trips for
// randomly generated DCIs across bandwidths.
func TestDCIPackUnpackProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bws := []Bandwidth{{NPRB: 25}, {NPRB: 50}, {NPRB: 75}, {NPRB: 100}}
		bw := bws[rng.Intn(len(bws))]
		var d DCI
		switch rng.Intn(4) {
		case 0:
			d.Format = Format0
		case 1:
			d.Format = Format1A
		case 2:
			d.Format = Format1
		default:
			d.Format = Format2
		}
		switch d.Format {
		case Format0, Format1A:
			d.RIVStart = rng.Intn(bw.NPRB)
			d.RIVLen = 1 + rng.Intn(bw.NPRB-d.RIVStart)
		default:
			d.RBGBitmap = rng.Uint32() & (1<<uint(bw.NumRBGs()) - 1)
		}
		d.MCS = uint8(rng.Intn(32))
		d.HARQ = uint8(rng.Intn(8))
		d.NDI = rng.Intn(2) == 0
		d.RV = uint8(rng.Intn(4))
		d.TPC = uint8(rng.Intn(4))
		if d.Format == Format2 {
			d.MCS2 = uint8(rng.Intn(32))
			d.NDI2 = rng.Intn(2) == 0
			d.RV2 = uint8(rng.Intn(4))
			d.Precode = uint8(rng.Intn(8))
		}
		got, ok := UnpackDCI(d.Pack(bw), bw)
		if !ok {
			return false
		}
		got.RNTI = d.RNTI
		return got == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestCodingChainProperty quick-checks the full chain - CRC, tail-biting
// convolutional code, rate matching to a random aggregation level, QPSK -
// recovers random blocks noiselessly.
func TestCodingChainProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		payloadBits := 20 + rng.Intn(50)
		rnti := uint16(1 + rng.Intn(65534))
		payload := make(Bits, payloadBits)
		for i := range payload {
			payload[i] = uint8(rng.Intn(2))
		}
		level := AggregationLevels[1+rng.Intn(3)] // 2..8: enough redundancy
		block := attachCRC(payload, rnti)
		tx := rateMatch(encodeConv(block), level*BitsPerCCE)
		syms := modulateQPSK(tx)
		llr := demodulateQPSK(syms, 0)
		coded := deRateMatch(llr, len(block))
		dec := viterbiTailBiting(coded, len(block))
		gotPayload, gotRNTI, ok := recoverRNTI(dec)
		return ok && gotRNTI == rnti && equalBits(gotPayload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeReportAlwaysDecodable quick-checks that any subframe worth of
// grants that fits in the control region survives the blind decoder.
func TestSearchSpaceDeterministic(t *testing.T) {
	f := func(rnti uint16, sf uint8) bool {
		a := UESearchSpace(rnti, int(sf), 50)
		b := UESearchSpace(rnti, int(sf), 50)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
