// Package pdcch implements the LTE physical downlink control channel
// processing chain that PBE-CC's capacity monitor depends on: DCI payload
// packing, CRC attachment scrambled by RNTI, rate-1/3 tail-biting
// convolutional coding with Viterbi decoding, sub-block interleaving and
// circular-buffer rate matching, QPSK modulation with soft demodulation,
// CCE search spaces, and the OWL-style blind decoder that recovers every
// user's control messages (including their RNTIs) from a subframe's control
// region.
//
// The paper's prototype implements this on USRP software-defined radios in
// 3,317 lines of C reusing srsLTE blocks; here the same pipeline operates on
// synthesized baseband symbols, so the rest of the system can consume
// control messages that really were recovered from coded bits rather than
// oracle structs.
package pdcch

// Bits is a slice of bit values (each element 0 or 1). The unpacked
// representation keeps the coding-chain code straightforward; the hot
// simulation paths bypass bit-level processing entirely (see DESIGN.md).
type Bits []uint8

// appendUint appends the low n bits of v most-significant-bit first.
func appendUint(b Bits, v uint32, n int) Bits {
	for i := n - 1; i >= 0; i-- {
		b = append(b, uint8((v>>uint(i))&1))
	}
	return b
}

// readUint reads n bits MSB-first starting at offset off, returning the
// value and the next offset.
func readUint(b Bits, off, n int) (uint32, int) {
	var v uint32
	for i := 0; i < n; i++ {
		v = v<<1 | uint32(b[off+i])
	}
	return v, off + n
}

// xorInto XORs the low n bits of v (MSB-first) into b starting at off.
func xorInto(b Bits, off int, v uint32, n int) {
	for i := 0; i < n; i++ {
		bit := uint8((v >> uint(n-1-i)) & 1)
		b[off+i] ^= bit
	}
}

// equalBits reports whether two bit slices have identical contents.
func equalBits(a, b Bits) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hammingDistance counts positions where a and b differ; slices must have
// equal length.
func hammingDistance(a, b Bits) int {
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}
