package pdcch

// Rate matching for convolutionally coded control channels (TS 36.212
// §5.1.4.2): each of the three coded-bit streams passes through a sub-block
// interleaver with 32 columns and a fixed column permutation; the three
// interleaved streams are concatenated into a circular buffer from which
// exactly E output bits are read, skipping <NULL> padding and wrapping as
// needed (repetition when E exceeds the buffer, puncturing when it is
// smaller).

// subBlockColumns is the interleaver width.
const subBlockColumns = 32

// columnPermutation is the inter-column permutation pattern for the
// convolutional-code sub-block interleaver.
var columnPermutation = [subBlockColumns]int{
	1, 17, 9, 25, 5, 21, 13, 29, 3, 19, 11, 27, 7, 23, 15, 31,
	0, 16, 8, 24, 4, 20, 12, 28, 2, 18, 10, 26, 6, 22, 14, 30,
}

// interleaveIndices returns, for a stream of length d, the read order of
// the sub-block interleaver as indices into the stream; -1 marks <NULL>
// padding positions.
func interleaveIndices(d int) []int {
	rows := (d + subBlockColumns - 1) / subBlockColumns
	pad := rows*subBlockColumns - d
	out := make([]int, 0, rows*subBlockColumns)
	for _, col := range columnPermutation {
		for r := 0; r < rows; r++ {
			pos := r*subBlockColumns + col // position in padded matrix, row-major write
			idx := pos - pad               // original stream index
			if idx < 0 {
				out = append(out, -1)
			} else {
				out = append(out, idx)
			}
		}
	}
	return out
}

// circularBufferIndices returns the indices (into the 3*d coded bits, in
// stream-major order d0|d1|d2) of the e rate-matched output bits.
func circularBufferIndices(d, e int) []int {
	per := interleaveIndices(d)
	buf := make([]int, 0, 3*len(per))
	for s := 0; s < convRate; s++ {
		for _, idx := range per {
			if idx < 0 {
				buf = append(buf, -1)
			} else {
				buf = append(buf, s*d+idx)
			}
		}
	}
	out := make([]int, 0, e)
	for k := 0; len(out) < e; k++ {
		v := buf[k%len(buf)]
		if v >= 0 {
			out = append(out, v)
		}
	}
	return out
}

// rateMatch maps 3*d coded bits (bit-interleaved d0[0] d1[0] d2[0] d0[1]...)
// onto exactly e transmitted bits.
func rateMatch(coded Bits, e int) Bits {
	d := len(coded) / convRate
	// Convert to stream-major order for the circular buffer.
	streams := make(Bits, convRate*d)
	for i := 0; i < d; i++ {
		for s := 0; s < convRate; s++ {
			streams[s*d+i] = coded[convRate*i+s]
		}
	}
	idx := circularBufferIndices(d, e)
	out := make(Bits, e)
	for k, v := range idx {
		out[k] = streams[v]
	}
	return out
}

// deRateMatch accumulates e received LLRs back into 3*d coded-bit positions
// (bit-interleaved order), combining repeated transmissions and leaving
// punctured positions at zero (erasure).
func deRateMatch(llr []float64, d int) []float64 {
	streams := make([]float64, convRate*d)
	idx := circularBufferIndices(d, len(llr))
	for k, v := range idx {
		streams[v] += llr[k]
	}
	out := make([]float64, convRate*d)
	for i := 0; i < d; i++ {
		for s := 0; s < convRate; s++ {
			out[convRate*i+s] = streams[s*d+i]
		}
	}
	return out
}
