package pdcch

import "sort"

// Message fusion aligns the control messages decoded from multiple
// component carriers by subframe index, the role of the paper's Message
// Fusion module (Figure 10a): one decoder instance runs per aggregated
// cell, and the congestion-control monitor consumes a single time-aligned
// stream.

// CellMessages is the decoded control channel of one cell in one subframe.
type CellMessages struct {
	CellID   int
	Subframe int
	Messages []Decoded
}

// FusedSubframe groups the decoded messages of all aggregated cells for
// one subframe index.
type FusedSubframe struct {
	Subframe int
	Cells    []CellMessages // sorted by CellID
}

// Fusion buffers per-cell decoder output until every registered cell has
// reported a subframe, then releases the aligned result in subframe order.
type Fusion struct {
	cellIDs map[int]bool
	pending map[int]map[int]CellMessages // subframe -> cellID -> messages
	next    int
	started bool
}

// NewFusion returns a fusion stage expecting reports from the given cells.
func NewFusion(cellIDs ...int) *Fusion {
	f := &Fusion{
		cellIDs: make(map[int]bool, len(cellIDs)),
		pending: make(map[int]map[int]CellMessages),
	}
	for _, id := range cellIDs {
		f.cellIDs[id] = true
	}
	return f
}

// Push adds one cell's decoded subframe and returns any subframes that
// became complete and in-order as a result (usually zero or one).
func (f *Fusion) Push(m CellMessages) []FusedSubframe {
	if !f.cellIDs[m.CellID] {
		return nil
	}
	if !f.started {
		// Decoders may come up mid-stream: align on the first subframe
		// index observed.
		f.next = m.Subframe
		f.started = true
	}
	if m.Subframe < f.next {
		return nil
	}
	byCell, ok := f.pending[m.Subframe]
	if !ok {
		byCell = make(map[int]CellMessages, len(f.cellIDs))
		f.pending[m.Subframe] = byCell
	}
	byCell[m.CellID] = m

	var out []FusedSubframe
	for {
		byCell, ok := f.pending[f.next]
		if !ok || len(byCell) < len(f.cellIDs) {
			break
		}
		fs := FusedSubframe{Subframe: f.next}
		for _, cm := range byCell {
			fs.Cells = append(fs.Cells, cm)
		}
		sort.Slice(fs.Cells, func(i, j int) bool { return fs.Cells[i].CellID < fs.Cells[j].CellID })
		out = append(out, fs)
		delete(f.pending, f.next)
		f.next++
	}
	return out
}

// PendingSubframes returns how many incomplete subframes are buffered.
func (f *Fusion) PendingSubframes() int { return len(f.pending) }
