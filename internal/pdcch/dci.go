package pdcch

import "fmt"

// Downlink control information (DCI) messages carry, per subframe and per
// user, exactly the metadata PBE-CC's monitor needs: which PRBs are
// allocated, at what modulation and coding scheme, over how many spatial
// streams, and whether the transport block is new or a retransmission (the
// new-data indicator).

// Format identifies the DCI format. The base station does not signal the
// format; the blind decoder infers it from payload size plus the
// format-0/1A flag bit, as real UEs do.
type Format uint8

// Supported DCI formats.
const (
	Format0  Format = iota // uplink grant (same payload size as 1A)
	Format1A               // compact downlink, contiguous allocation (RIV)
	Format1                // downlink, RBG-bitmap allocation, one stream
	Format2                // downlink MIMO, RBG bitmap, two transport blocks
)

// String returns the conventional name of the format.
func (f Format) String() string {
	switch f {
	case Format0:
		return "0"
	case Format1A:
		return "1A"
	case Format1:
		return "1"
	case Format2:
		return "2"
	}
	return fmt.Sprintf("Format(%d)", uint8(f))
}

// DCI is one decoded control message.
type DCI struct {
	RNTI   uint16
	Format Format

	// Allocation: Format1/Format2 use an RBG bitmap (bit i = RBG i,
	// LSB = RBG 0); Format0/Format1A use a contiguous allocation coded
	// as a resource indication value.
	RBGBitmap uint32
	RIVStart  int // first PRB (formats 0/1A)
	RIVLen    int // number of PRBs (formats 0/1A)

	MCS  uint8 // 5 bits
	HARQ uint8 // 3 bits
	NDI  bool  // new-data indicator
	RV   uint8 // 2 bits
	TPC  uint8 // 2 bits

	// Second transport block (Format2 only).
	MCS2    uint8
	NDI2    bool
	RV2     uint8
	Precode uint8 // 3 bits, >0 implies two spatial streams in this model
}

// Streams returns the number of spatial streams the DCI grants.
func (d *DCI) Streams() int {
	if d.Format == Format2 && d.Precode > 0 {
		return 2
	}
	return 1
}

// Bandwidth describes the cell bandwidth parameters that determine DCI
// payload sizes.
type Bandwidth struct {
	NPRB int // number of PRBs (25, 50, 75, 100)
}

// RBGSize returns the resource block group size P per TS 36.213 Table
// 7.1.6.1-1.
func (bw Bandwidth) RBGSize() int {
	switch {
	case bw.NPRB <= 10:
		return 1
	case bw.NPRB <= 26:
		return 2
	case bw.NPRB <= 63:
		return 3
	default:
		return 4
	}
}

// NumRBGs returns the number of resource block groups.
func (bw Bandwidth) NumRBGs() int {
	p := bw.RBGSize()
	return (bw.NPRB + p - 1) / p
}

// PRBsInRBG returns the number of PRBs in RBG i (the last group may be
// smaller than P).
func (bw Bandwidth) PRBsInRBG(i int) int {
	p := bw.RBGSize()
	if i == bw.NumRBGs()-1 {
		if rem := bw.NPRB % p; rem != 0 {
			return rem
		}
	}
	return p
}

// rivBits returns the bit width of the resource indication value field.
func (bw Bandwidth) rivBits() int {
	maxRIV := bw.NPRB * (bw.NPRB + 1) / 2
	n := 0
	for (1 << n) < maxRIV {
		n++
	}
	return n
}

// PayloadBits returns the DCI payload size (before CRC) of a format at
// this bandwidth. Formats 0 and 1A share a size by design.
func (bw Bandwidth) PayloadBits(f Format) int {
	switch f {
	case Format0, Format1A:
		// flag(1) + RIV + MCS(5) + HARQ(3) + NDI(1) + RV(2) + TPC(2)
		return 1 + bw.rivBits() + 13
	case Format1:
		// bitmap + MCS(5) + HARQ(3) + NDI(1) + RV(2) + TPC(2)
		return bw.NumRBGs() + 13
	case Format2:
		// bitmap + 2x(MCS(5)+NDI(1)+RV(2)) + precode(3) + HARQ(3) + TPC(2)
		return bw.NumRBGs() + 16 + 8
	}
	return 0
}

// PayloadSizes returns the distinct payload sizes a blind decoder must try
// at this bandwidth, smallest first.
func (bw Bandwidth) PayloadSizes() []int {
	sizes := []int{
		bw.PayloadBits(Format1A),
		bw.PayloadBits(Format1),
		bw.PayloadBits(Format2),
	}
	// Deduplicate while preserving order (sizes are increasing here).
	out := sizes[:1]
	for _, s := range sizes[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

// EncodeRIV codes a contiguous allocation of length l starting at PRB s
// into a resource indication value (TS 36.213 §7.1.6.3).
func EncodeRIV(nPRB, start, length int) uint32 {
	if length-1 <= nPRB/2 {
		return uint32(nPRB*(length-1) + start)
	}
	return uint32(nPRB*(nPRB-length+1) + (nPRB - 1 - start))
}

// DecodeRIV inverts EncodeRIV, returning start and length. It reports
// ok=false for values that do not correspond to a valid allocation.
func DecodeRIV(nPRB int, riv uint32) (start, length int, ok bool) {
	v := int(riv)
	l := v/nPRB + 1
	s := v % nPRB
	if l-1 <= nPRB/2 && s+l <= nPRB {
		return s, l, true
	}
	// Inverted branch.
	l = nPRB - (v/nPRB - 1)
	s = nPRB - 1 - v%nPRB
	if l >= 1 && s >= 0 && s+l <= nPRB {
		return s, l, true
	}
	return 0, 0, false
}

// AllocatedPRBs returns the number of PRBs the DCI grants at the given
// bandwidth.
func (d *DCI) AllocatedPRBs(bw Bandwidth) int {
	switch d.Format {
	case Format1, Format2:
		n := 0
		for i := 0; i < bw.NumRBGs(); i++ {
			if d.RBGBitmap&(1<<uint(i)) != 0 {
				n += bw.PRBsInRBG(i)
			}
		}
		return n
	case Format1A:
		return d.RIVLen
	}
	return 0 // uplink grants do not consume downlink PRBs
}

// Pack serializes the DCI payload (without CRC) for its format at the
// given bandwidth.
func (d *DCI) Pack(bw Bandwidth) Bits {
	var b Bits
	switch d.Format {
	case Format0, Format1A:
		flag := uint32(0) // 0 = format 0
		if d.Format == Format1A {
			flag = 1
		}
		b = appendUint(b, flag, 1)
		b = appendUint(b, EncodeRIV(bw.NPRB, d.RIVStart, d.RIVLen), bw.rivBits())
		b = appendUint(b, uint32(d.MCS), 5)
		b = appendUint(b, uint32(d.HARQ), 3)
		b = appendUint(b, boolBit(d.NDI), 1)
		b = appendUint(b, uint32(d.RV), 2)
		b = appendUint(b, uint32(d.TPC), 2)
	case Format1:
		b = appendUint(b, d.RBGBitmap, bw.NumRBGs())
		b = appendUint(b, uint32(d.MCS), 5)
		b = appendUint(b, uint32(d.HARQ), 3)
		b = appendUint(b, boolBit(d.NDI), 1)
		b = appendUint(b, uint32(d.RV), 2)
		b = appendUint(b, uint32(d.TPC), 2)
	case Format2:
		b = appendUint(b, d.RBGBitmap, bw.NumRBGs())
		b = appendUint(b, uint32(d.MCS), 5)
		b = appendUint(b, boolBit(d.NDI), 1)
		b = appendUint(b, uint32(d.RV), 2)
		b = appendUint(b, uint32(d.MCS2), 5)
		b = appendUint(b, boolBit(d.NDI2), 1)
		b = appendUint(b, uint32(d.RV2), 2)
		b = appendUint(b, uint32(d.Precode), 3)
		b = appendUint(b, uint32(d.HARQ), 3)
		b = appendUint(b, uint32(d.TPC), 2)
	}
	return b
}

// UnpackDCI parses a payload of the given size, inferring the format from
// the size and (for the shared 0/1A size) the flag bit. It reports ok=false
// if the size matches no format or the contents are invalid.
func UnpackDCI(payload Bits, bw Bandwidth) (DCI, bool) {
	var d DCI
	switch len(payload) {
	case bw.PayloadBits(Format1A):
		off := 0
		var flag, riv, v uint32
		flag, off = readUint(payload, off, 1)
		riv, off = readUint(payload, off, bw.rivBits())
		start, length, ok := DecodeRIV(bw.NPRB, riv)
		if !ok {
			return d, false
		}
		d.RIVStart, d.RIVLen = start, length
		if flag == 1 {
			d.Format = Format1A
		} else {
			d.Format = Format0
		}
		v, off = readUint(payload, off, 5)
		d.MCS = uint8(v)
		v, off = readUint(payload, off, 3)
		d.HARQ = uint8(v)
		v, off = readUint(payload, off, 1)
		d.NDI = v == 1
		v, off = readUint(payload, off, 2)
		d.RV = uint8(v)
		v, _ = readUint(payload, off, 2)
		d.TPC = uint8(v)
		return d, true
	case bw.PayloadBits(Format1):
		d.Format = Format1
		off := 0
		var v uint32
		v, off = readUint(payload, off, bw.NumRBGs())
		d.RBGBitmap = v
		v, off = readUint(payload, off, 5)
		d.MCS = uint8(v)
		v, off = readUint(payload, off, 3)
		d.HARQ = uint8(v)
		v, off = readUint(payload, off, 1)
		d.NDI = v == 1
		v, off = readUint(payload, off, 2)
		d.RV = uint8(v)
		v, _ = readUint(payload, off, 2)
		d.TPC = uint8(v)
		return d, true
	case bw.PayloadBits(Format2):
		d.Format = Format2
		off := 0
		var v uint32
		v, off = readUint(payload, off, bw.NumRBGs())
		d.RBGBitmap = v
		v, off = readUint(payload, off, 5)
		d.MCS = uint8(v)
		v, off = readUint(payload, off, 1)
		d.NDI = v == 1
		v, off = readUint(payload, off, 2)
		d.RV = uint8(v)
		v, off = readUint(payload, off, 5)
		d.MCS2 = uint8(v)
		v, off = readUint(payload, off, 1)
		d.NDI2 = v == 1
		v, off = readUint(payload, off, 2)
		d.RV2 = uint8(v)
		v, off = readUint(payload, off, 3)
		d.Precode = uint8(v)
		v, off = readUint(payload, off, 3)
		d.HARQ = uint8(v)
		v, _ = readUint(payload, off, 2)
		d.TPC = uint8(v)
		return d, true
	}
	return d, false
}

func boolBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// ContiguousRBGBitmap builds an RBG bitmap covering n RBGs starting at
// RBG index start.
func ContiguousRBGBitmap(start, n int) uint32 {
	var m uint32
	for i := 0; i < n; i++ {
		m |= 1 << uint(start+i)
	}
	return m
}
