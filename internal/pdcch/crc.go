package pdcch

// LTE attaches a 16-bit CRC (generator gCRC16, x^16 + x^12 + x^5 + 1,
// i.e. the CCITT polynomial 0x1021) to each DCI payload and scrambles the
// CRC with the target user's RNTI. A receiver that blind-decodes a
// candidate can therefore recover the RNTI of *any* user by XORing the
// recomputed CRC with the received one — the mechanism OWL and PBE-CC's
// monitor rely on to observe other users' allocations.

const crcPoly = 0x1021

// crc16 computes the 16-bit CRC of the given bits with zero initial state,
// processing one bit at a time (the payloads are tens of bits, so a table
// is unnecessary).
func crc16(payload Bits) uint16 {
	var reg uint16
	for _, bit := range payload {
		fb := (reg>>15)&1 ^ uint16(bit)
		reg <<= 1
		if fb != 0 {
			reg ^= crcPoly
		}
	}
	return reg
}

// attachCRC appends the payload's CRC, XOR-scrambled with rnti, producing
// the coded block input.
func attachCRC(payload Bits, rnti uint16) Bits {
	out := make(Bits, 0, len(payload)+16)
	out = append(out, payload...)
	out = appendUint(out, uint32(crc16(payload)^rnti), 16)
	return out
}

// recoverRNTI splits a decoded block into payload and the RNTI implied by
// its scrambled CRC. Any 16-bit pattern yields *some* RNTI; callers must
// validate the candidate (e.g. by re-encoding) before trusting it.
func recoverRNTI(block Bits) (payload Bits, rnti uint16, ok bool) {
	if len(block) < 17 {
		return nil, 0, false
	}
	payload = block[:len(block)-16]
	rx, _ := readUint(block, len(block)-16, 16)
	return payload, uint16(rx) ^ crc16(payload), true
}

// checkCRC reports whether block carries a CRC scrambled with exactly rnti.
func checkCRC(block Bits, rnti uint16) bool {
	payload, got, ok := recoverRNTI(block)
	_ = payload
	return ok && got == rnti
}
