package pdcch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var bw100 = Bandwidth{NPRB: 100}
var bw50 = Bandwidth{NPRB: 50}
var bw25 = Bandwidth{NPRB: 25}

// --- CRC ---

func TestCRC16KnownProperties(t *testing.T) {
	// CRC of the empty message is 0; appending a true (unscrambled) CRC
	// yields a block whose CRC is 0.
	if crc16(nil) != 0 {
		t.Fatal("crc16(empty) != 0")
	}
	payload := Bits{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0}
	block := attachCRC(payload, 0)
	if crc16(block) != 0 {
		t.Fatalf("crc16(payload||crc) = %#x, want 0", crc16(block))
	}
}

func TestCRCRNTIRecovery(t *testing.T) {
	f := func(seed int64, rnti uint16) bool {
		if rnti == 0 {
			rnti = 1
		}
		rng := rand.New(rand.NewSource(seed))
		payload := make(Bits, 40)
		for i := range payload {
			payload[i] = uint8(rng.Intn(2))
		}
		block := attachCRC(payload, rnti)
		got, rec, ok := recoverRNTI(block)
		return ok && rec == rnti && equalBits(got, payload) && checkCRC(block, rnti)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCRCDetectsCorruption(t *testing.T) {
	payload := make(Bits, 40)
	block := attachCRC(payload, 0x1234)
	block[3] ^= 1
	if checkCRC(block, 0x1234) {
		t.Fatal("single-bit corruption not detected")
	}
}

func TestRecoverRNTITooShort(t *testing.T) {
	if _, _, ok := recoverRNTI(make(Bits, 16)); ok {
		t.Fatal("16-bit block must be rejected (no payload)")
	}
}

// --- Convolutional code ---

func TestConvEncodeRate(t *testing.T) {
	in := make(Bits, 43)
	out := encodeConv(in)
	if len(out) != 3*len(in) {
		t.Fatalf("coded length = %d, want %d", len(out), 3*len(in))
	}
}

func TestConvTailBitingProperty(t *testing.T) {
	// A tail-biting codeword of the all-zero message is all zero, and a
	// cyclic shift of the input produces a cyclic shift of the output.
	in := make(Bits, 30)
	out := encodeConv(in)
	for _, b := range out {
		if b != 0 {
			t.Fatal("all-zero input must give all-zero codeword")
		}
	}

	rng := rand.New(rand.NewSource(5))
	msg := make(Bits, 30)
	for i := range msg {
		msg[i] = uint8(rng.Intn(2))
	}
	shifted := append(Bits{}, msg[3:]...)
	shifted = append(shifted, msg[:3]...)
	a := encodeConv(msg)
	b := encodeConv(shifted)
	// a shifted by 3 input positions = 9 output bits.
	rot := append(Bits{}, a[9:]...)
	rot = append(rot, a[:9]...)
	if !equalBits(rot, b) {
		t.Fatal("tail-biting cyclic-shift property violated")
	}
}

func TestViterbiNoiselessRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{20, 43, 54, 66} {
		for trial := 0; trial < 20; trial++ {
			msg := make(Bits, n)
			for i := range msg {
				msg[i] = uint8(rng.Intn(2))
			}
			got := viterbiTailBiting(hardLLR(encodeConv(msg)), n)
			if !equalBits(got, msg) {
				t.Fatalf("n=%d trial=%d: decode mismatch", n, trial)
			}
		}
	}
}

func TestViterbiCorrectsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 43
	ok := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		msg := make(Bits, n)
		for i := range msg {
			msg[i] = uint8(rng.Intn(2))
		}
		coded := encodeConv(msg)
		llr := hardLLR(coded)
		// Flip 6 random coded bits (~4.7% BER) - well within the power
		// of a rate-1/3 K=7 code.
		for k := 0; k < 6; k++ {
			llr[rng.Intn(len(llr))] *= -1
		}
		if equalBits(viterbiTailBiting(llr, n), msg) {
			ok++
		}
	}
	if ok < trials*9/10 {
		t.Fatalf("corrected only %d/%d blocks with 6 bit flips", ok, trials)
	}
}

func TestViterbiBadInput(t *testing.T) {
	if viterbiTailBiting(make([]float64, 10), 4) != nil {
		t.Fatal("length mismatch must return nil")
	}
	if viterbiTailBiting(nil, 0) != nil {
		t.Fatal("empty input must return nil")
	}
}

// --- Rate matching ---

func TestInterleaveIndicesPermutation(t *testing.T) {
	for _, d := range []int{10, 32, 59, 64, 177} {
		idx := interleaveIndices(d)
		seen := make([]bool, d)
		nulls := 0
		for _, v := range idx {
			if v == -1 {
				nulls++
				continue
			}
			if v < 0 || v >= d || seen[v] {
				t.Fatalf("d=%d: invalid or repeated index %d", d, v)
			}
			seen[v] = true
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("d=%d: index %d never produced", d, i)
			}
		}
		if len(idx)-nulls != d {
			t.Fatalf("d=%d: wrong null count", d)
		}
	}
}

func TestRateMatchRoundTripExact(t *testing.T) {
	// With e = 3*d (no puncturing and no repetition beyond nulls) the
	// de-rate-matcher must recover every coded bit.
	rng := rand.New(rand.NewSource(13))
	d := 59
	coded := make(Bits, 3*d)
	for i := range coded {
		coded[i] = uint8(rng.Intn(2))
	}
	tx := rateMatch(coded, 3*d)
	llr := deRateMatch(hardLLR(tx), d)
	for i, want := range coded {
		got := uint8(0)
		if llr[i] < 0 {
			got = 1
		}
		if llr[i] == 0 {
			t.Fatalf("position %d erased with e=3d", i)
		}
		if got != want {
			t.Fatalf("position %d: got %d want %d", i, got, want)
		}
	}
}

func TestRateMatchRepetitionAddsEnergy(t *testing.T) {
	d := 20
	coded := make(Bits, 3*d)
	tx := rateMatch(coded, 9*d) // 3x repetition
	llr := deRateMatch(hardLLR(tx), d)
	for i, v := range llr {
		if v != 3 {
			t.Fatalf("position %d accumulated %v, want 3 (3x repetition)", i, v)
		}
	}
}

func TestRateMatchPuncturedStillDecodable(t *testing.T) {
	// A DCI block rate-matched into a single CCE (72 bits) from a 59-bit
	// block (177 coded bits punctured to 72) must still Viterbi-decode.
	rng := rand.New(rand.NewSource(17))
	n := 43 + 16
	for trial := 0; trial < 20; trial++ {
		msg := make(Bits, n)
		for i := range msg {
			msg[i] = uint8(rng.Intn(2))
		}
		tx := rateMatch(encodeConv(msg), BitsPerCCE)
		if len(tx) != BitsPerCCE {
			t.Fatalf("tx length %d", len(tx))
		}
		got := viterbiTailBiting(deRateMatch(hardLLR(tx), n), n)
		if !equalBits(got, msg) {
			t.Fatalf("trial %d: punctured decode failed", trial)
		}
	}
}

// --- Modulation ---

func TestQPSKRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	bits := make(Bits, 144)
	for i := range bits {
		bits[i] = uint8(rng.Intn(2))
	}
	llr := demodulateQPSK(modulateQPSK(bits), 0)
	for i, b := range bits {
		got := uint8(0)
		if llr[i] < 0 {
			got = 1
		}
		if got != b {
			t.Fatalf("bit %d: got %d want %d", i, got, b)
		}
	}
}

func TestQPSKOddLengthPadded(t *testing.T) {
	syms := modulateQPSK(make(Bits, 7))
	if len(syms) != 4 {
		t.Fatalf("symbols = %d, want 4", len(syms))
	}
}

func TestSymbolEnergy(t *testing.T) {
	syms := modulateQPSK(make(Bits, 72))
	e := symbolEnergy(syms)
	if e < 0.99 || e > 1.01 {
		t.Fatalf("unit-power QPSK energy = %v", e)
	}
	if symbolEnergy(nil) != 0 {
		t.Fatal("empty energy must be 0")
	}
}

// --- DCI pack/unpack ---

func TestRIVRoundTrip(t *testing.T) {
	for _, n := range []int{25, 50, 100} {
		for start := 0; start < n; start += 7 {
			for length := 1; start+length <= n; length += 5 {
				riv := EncodeRIV(n, start, length)
				s, l, ok := DecodeRIV(n, riv)
				if !ok || s != start || l != length {
					t.Fatalf("RIV round trip n=%d start=%d len=%d: got %d %d %v",
						n, start, length, s, l, ok)
				}
			}
		}
	}
}

func TestRBGSizes(t *testing.T) {
	cases := []struct{ nprb, p, rbgs int }{
		{25, 2, 13}, {50, 3, 17}, {75, 4, 19}, {100, 4, 25}, {6, 1, 6},
	}
	for _, c := range cases {
		bw := Bandwidth{NPRB: c.nprb}
		if bw.RBGSize() != c.p {
			t.Fatalf("RBGSize(%d) = %d, want %d", c.nprb, bw.RBGSize(), c.p)
		}
		if bw.NumRBGs() != c.rbgs {
			t.Fatalf("NumRBGs(%d) = %d, want %d", c.nprb, bw.NumRBGs(), c.rbgs)
		}
	}
}

func TestPRBsInLastRBG(t *testing.T) {
	// 50 PRB, P=3: last of 17 RBGs has 50-16*3 = 2 PRBs.
	if got := bw50.PRBsInRBG(16); got != 2 {
		t.Fatalf("last RBG of 50-PRB cell = %d PRBs, want 2", got)
	}
	if got := bw100.PRBsInRBG(24); got != 4 {
		t.Fatalf("last RBG of 100-PRB cell = %d PRBs, want 4", got)
	}
}

func TestAllocatedPRBs(t *testing.T) {
	d := DCI{Format: Format1, RBGBitmap: ContiguousRBGBitmap(0, 25)}
	if got := d.AllocatedPRBs(bw100); got != 100 {
		t.Fatalf("full bitmap = %d PRBs, want 100", got)
	}
	d = DCI{Format: Format1A, RIVStart: 10, RIVLen: 7}
	if got := d.AllocatedPRBs(bw100); got != 7 {
		t.Fatalf("RIV alloc = %d PRBs, want 7", got)
	}
	d = DCI{Format: Format0, RIVLen: 7}
	if got := d.AllocatedPRBs(bw100); got != 0 {
		t.Fatalf("uplink grant consumes %d DL PRBs, want 0", got)
	}
}

func TestDCIPackUnpackAllFormats(t *testing.T) {
	cases := []DCI{
		{Format: Format0, RIVStart: 3, RIVLen: 10, MCS: 11, HARQ: 2, NDI: true, RV: 1, TPC: 3},
		{Format: Format1A, RIVStart: 0, RIVLen: 4, MCS: 5, HARQ: 7, NDI: false, RV: 2, TPC: 1},
		{Format: Format1, RBGBitmap: 0x155_5555, MCS: 20, HARQ: 1, NDI: true, RV: 0, TPC: 2},
		{Format: Format2, RBGBitmap: 0xAAAA, MCS: 25, MCS2: 24, NDI: true, NDI2: false,
			RV: 1, RV2: 2, Precode: 5, HARQ: 4, TPC: 0},
	}
	for _, bw := range []Bandwidth{bw25, bw50, bw100} {
		for _, want := range cases {
			mask := uint32(1)<<uint(bw.NumRBGs()) - 1
			want.RBGBitmap &= mask
			payload := want.Pack(bw)
			if len(payload) != bw.PayloadBits(want.Format) {
				t.Fatalf("%v at %d PRB: payload %d bits, want %d",
					want.Format, bw.NPRB, len(payload), bw.PayloadBits(want.Format))
			}
			got, ok := UnpackDCI(payload, bw)
			if !ok {
				t.Fatalf("%v at %d PRB: unpack failed", want.Format, bw.NPRB)
			}
			got.RNTI = want.RNTI
			if got != want {
				t.Fatalf("%v at %d PRB:\n got %+v\nwant %+v", want.Format, bw.NPRB, got, want)
			}
		}
	}
}

func TestUnpackDCIUnknownSize(t *testing.T) {
	if _, ok := UnpackDCI(make(Bits, 99), bw100); ok {
		t.Fatal("unknown payload size must fail")
	}
}

func TestPayloadSizesDistinct(t *testing.T) {
	sizes := bw100.PayloadSizes()
	if len(sizes) != 3 {
		t.Fatalf("expected 3 distinct sizes at 100 PRB, got %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatalf("sizes not increasing: %v", sizes)
		}
	}
}

func TestStreams(t *testing.T) {
	if (&DCI{Format: Format2, Precode: 1}).Streams() != 2 {
		t.Fatal("Format2 with precoding must be 2 streams")
	}
	if (&DCI{Format: Format1}).Streams() != 1 {
		t.Fatal("Format1 must be 1 stream")
	}
	if (&DCI{Format: Format2, Precode: 0}).Streams() != 1 {
		t.Fatal("Format2 without precoding must be 1 stream")
	}
}

// --- Search spaces and region ---

func TestNumCCEs(t *testing.T) {
	if got := NumCCEs(100, 3); got != (800-16)/9 {
		t.Fatalf("NumCCEs(100,3) = %d", got)
	}
	if got := NumCCEs(50, 1); got != (100-16)/9 {
		t.Fatalf("NumCCEs(50,1) = %d", got)
	}
	if NumCCEs(100, 0) != NumCCEs(100, 1) || NumCCEs(100, 5) != NumCCEs(100, 3) {
		t.Fatal("CFI clamping broken")
	}
}

func TestUESearchSpaceWithinRegion(t *testing.T) {
	nCCE := NumCCEs(100, 2)
	for _, rnti := range []uint16{1, 61, 1000, 65535} {
		for sf := 0; sf < 10; sf++ {
			for _, c := range UESearchSpace(rnti, sf, nCCE) {
				if c.FirstCCE < 0 || c.FirstCCE+c.Level > nCCE {
					t.Fatalf("candidate out of region: %+v (nCCE=%d)", c, nCCE)
				}
				if c.FirstCCE%c.Level != 0 {
					t.Fatalf("candidate not level-aligned: %+v", c)
				}
			}
		}
	}
}

func TestSearchSpaceVariesWithSubframe(t *testing.T) {
	nCCE := NumCCEs(100, 2)
	a := UESearchSpace(777, 0, nCCE)
	b := UESearchSpace(777, 5, nCCE)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("search space must hop across subframes")
	}
}

func TestCommonSearchSpace(t *testing.T) {
	cands := CommonSearchSpace(NumCCEs(100, 2))
	if len(cands) == 0 {
		t.Fatal("empty common search space")
	}
	for _, c := range cands {
		if c.Level != 4 && c.Level != 8 {
			t.Fatalf("common candidate at level %d", c.Level)
		}
	}
}

func TestAllCandidateStartsAligned(t *testing.T) {
	for _, c := range AllCandidateStarts(20) {
		if c.FirstCCE%c.Level != 0 || c.FirstCCE+c.Level > 20 {
			t.Fatalf("bad candidate %+v", c)
		}
	}
}

// --- End-to-end encode/blind-decode ---

func placeAndDecode(t *testing.T, bw Bandwidth, sigma float64, rng *rand.Rand, dcis []DCI, levels []int) []Decoded {
	t.Helper()
	r := NewRegion(bw, 2, 4)
	for i := range dcis {
		if !r.Place(&dcis[i], levels[i]) {
			t.Fatalf("failed to place DCI %d", i)
		}
	}
	r.AddNoise(sigma, rng)
	return NewDecoder(sigma).Decode(r)
}

func TestBlindDecodeSingleClean(t *testing.T) {
	want := DCI{RNTI: 4321, Format: Format1, RBGBitmap: ContiguousRBGBitmap(0, 10),
		MCS: 17, HARQ: 3, NDI: true, RV: 0, TPC: 1}
	got := placeAndDecode(t, bw100, 0, nil, []DCI{want}, []int{2})
	if len(got) != 1 {
		t.Fatalf("decoded %d messages, want 1", len(got))
	}
	if got[0].DCI != want {
		t.Fatalf("decoded %+v, want %+v", got[0].DCI, want)
	}
	if got[0].ReencodeErrors != 0 {
		t.Fatalf("clean decode with %d re-encode errors", got[0].ReencodeErrors)
	}
}

func TestBlindDecodeRecoversUnknownRNTIs(t *testing.T) {
	// The monitor does not know these RNTIs; it must still recover all
	// three messages and their RNTIs (the OWL capability PBE-CC needs).
	dcis := []DCI{
		{RNTI: 100, Format: Format1, RBGBitmap: ContiguousRBGBitmap(0, 8), MCS: 10, NDI: true},
		{RNTI: 2000, Format: Format2, RBGBitmap: ContiguousRBGBitmap(8, 9), MCS: 20, MCS2: 19, Precode: 1},
		{RNTI: 30000, Format: Format1A, RIVStart: 90, RIVLen: 4, MCS: 4},
	}
	got := placeAndDecode(t, bw100, 0, nil, dcis, []int{2, 4, 1})
	if len(got) != 3 {
		t.Fatalf("decoded %d messages, want 3", len(got))
	}
	found := map[uint16]DCI{}
	for _, d := range got {
		found[d.DCI.RNTI] = d.DCI
	}
	for _, want := range dcis {
		if got, ok := found[want.RNTI]; !ok || got != want {
			t.Fatalf("RNTI %d: got %+v want %+v (ok=%v)", want.RNTI, got, want, ok)
		}
	}
}

func TestBlindDecodeUnderNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	okCount := 0
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		want := DCI{RNTI: 5555, Format: Format1, RBGBitmap: ContiguousRBGBitmap(0, 12),
			MCS: 15, NDI: trial%2 == 0}
		got := placeAndDecode(t, bw100, 0.35, rng, []DCI{want}, []int{8})
		if len(got) == 1 && got[0].DCI == want {
			okCount++
		}
	}
	if okCount < trials*8/10 {
		t.Fatalf("decoded only %d/%d under sigma=0.35 at AL8", okCount, trials)
	}
}

func TestBlindDecodeEmptyRegionSilent(t *testing.T) {
	r := NewRegion(bw100, 2, 0)
	got := NewDecoder(0).Decode(r)
	if len(got) != 0 {
		t.Fatalf("decoded %d messages from an empty region", len(got))
	}
}

func TestBlindDecodeNoiseOnlyRejectsFalsePositives(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	r := NewRegion(bw100, 2, 0)
	r.AddNoise(1.0, rng) // pure noise, full energy
	got := NewDecoder(0.5).Decode(r)
	if len(got) != 0 {
		t.Fatalf("decoded %d messages from pure noise (false positives)", len(got))
	}
}

func TestRegionPlaceExhaustion(t *testing.T) {
	// A tiny region cannot host unlimited level-8 messages.
	r := NewRegion(bw25, 1, 0) // (50-16)/9 = 3 CCEs
	placed := 0
	for rnti := uint16(1); rnti < 20; rnti++ {
		d := DCI{RNTI: rnti, Format: Format1A, RIVLen: 1}
		if r.Place(&d, 1) {
			placed++
		}
	}
	if placed == 0 || placed > 3 {
		t.Fatalf("placed %d messages in a 3-CCE region", placed)
	}
}

// --- Fusion ---

func TestFusionAlignsSubframes(t *testing.T) {
	f := NewFusion(1, 2)
	out := f.Push(CellMessages{CellID: 1, Subframe: 0})
	if len(out) != 0 {
		t.Fatal("premature release with one of two cells")
	}
	out = f.Push(CellMessages{CellID: 2, Subframe: 0})
	if len(out) != 1 || out[0].Subframe != 0 || len(out[0].Cells) != 2 {
		t.Fatalf("fusion release = %+v", out)
	}
	if out[0].Cells[0].CellID != 1 || out[0].Cells[1].CellID != 2 {
		t.Fatal("cells not sorted by id")
	}
}

func TestFusionInOrderRelease(t *testing.T) {
	f := NewFusion(1, 2)
	f.Push(CellMessages{CellID: 1, Subframe: 5}) // aligns the stream at 5
	f.Push(CellMessages{CellID: 1, Subframe: 6})
	f.Push(CellMessages{CellID: 2, Subframe: 6}) // complete but out of order
	if f.PendingSubframes() != 2 {
		t.Fatalf("pending = %d, want 2 (waiting for subframe 5)", f.PendingSubframes())
	}
	out := f.Push(CellMessages{CellID: 2, Subframe: 5})
	if len(out) != 2 || out[0].Subframe != 5 || out[1].Subframe != 6 {
		t.Fatalf("release order wrong: %+v", out)
	}
}

func TestFusionAlignsOnFirstSubframe(t *testing.T) {
	f := NewFusion(1, 2)
	f.Push(CellMessages{CellID: 1, Subframe: 10})
	out := f.Push(CellMessages{CellID: 2, Subframe: 10})
	if len(out) != 1 || out[0].Subframe != 10 {
		t.Fatalf("mid-stream alignment broken: %+v", out)
	}
	// Earlier subframes arriving after alignment are stale.
	if out := f.Push(CellMessages{CellID: 1, Subframe: 9}); len(out) != 0 {
		t.Fatal("stale pre-alignment subframe accepted")
	}
}

func TestFusionIgnoresUnknownCellAndStale(t *testing.T) {
	f := NewFusion(1)
	if out := f.Push(CellMessages{CellID: 9, Subframe: 0}); len(out) != 0 {
		t.Fatal("unknown cell accepted")
	}
	f.Push(CellMessages{CellID: 1, Subframe: 0})
	if out := f.Push(CellMessages{CellID: 1, Subframe: 0}); len(out) != 0 {
		t.Fatal("stale subframe accepted")
	}
}

// --- Benchmarks ---

func BenchmarkViterbiDecode59(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	msg := make(Bits, 59)
	for i := range msg {
		msg[i] = uint8(rng.Intn(2))
	}
	llr := hardLLR(encodeConv(msg))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		viterbiTailBiting(llr, 59)
	}
}

func BenchmarkBlindDecodeSubframe(b *testing.B) {
	r := NewRegion(bw100, 2, 0)
	for i, rnti := range []uint16{100, 200, 300, 400} {
		d := DCI{RNTI: rnti, Format: Format1, RBGBitmap: ContiguousRBGBitmap(i*6, 6), MCS: 12}
		r.Place(&d, 2)
	}
	dec := NewDecoder(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Decode(r)
	}
}
