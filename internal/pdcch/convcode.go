package pdcch

import "math"

// LTE control channels use a rate-1/3 tail-biting convolutional code with
// constraint length 7 (64 states) and generator polynomials 133, 171, 165
// (octal). Tail-biting means the encoder's initial shift-register state is
// the last six input bits, so the trellis is circular and no tail bits are
// transmitted.

const (
	convK      = 7  // constraint length
	convStates = 64 // 2^(K-1)
	convRate   = 3  // output bits per input bit
)

// Generator polynomials, one bit per tap over [s_in, s1..s6].
var convGen = [convRate]uint32{0o133, 0o171, 0o165}

// parity32 returns the parity of x.
func parity32(x uint32) uint8 {
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return uint8(x & 1)
}

// convOutputs[state][input] packs the 3 output bits produced when the
// encoder in `state` consumes `input`.
var convOutputs [convStates][2]uint8

// convNext[state][input] is the successor state.
var convNext [convStates][2]uint8

func init() {
	for s := 0; s < convStates; s++ {
		for in := 0; in < 2; in++ {
			// Register layout: bit6 = newest input, bits5..0 = state
			// (state bit5 is the most recent past input).
			reg := uint32(in)<<6 | uint32(s)
			var out uint8
			for g := 0; g < convRate; g++ {
				out = out<<1 | parity32(reg&convGen[g])
			}
			convOutputs[s][in] = out
			convNext[s][in] = uint8((s >> 1) | in<<5)
		}
	}
}

// encodeConv tail-biting-encodes the block, producing 3*len(in) bits in the
// order d0[0] d1[0] d2[0] d0[1] ... (bit-interleaved streams).
func encodeConv(in Bits) Bits {
	n := len(in)
	out := make(Bits, 0, convRate*n)
	// Tail-biting initialization: state = last 6 input bits, with in[n-1]
	// as the most recently shifted-in bit.
	var state uint8
	for i := n - convK + 1; i < n; i++ {
		state = state>>1 | in[i]<<5
	}
	for i := 0; i < n; i++ {
		b := in[i]
		o := convOutputs[state][b]
		out = append(out, (o>>2)&1, (o>>1)&1, o&1)
		state = convNext[state][b]
	}
	return out
}

// viterbiTailBiting decodes 3n soft LLRs (positive = bit 0 more likely)
// into the most likely n-bit tail-biting codeword. It uses the wrap-around
// Viterbi algorithm: the trellis is processed twice with carried-over path
// metrics and the traceback taken from the second pass, which is a
// near-maximum-likelihood standard for short TBCC blocks.
func viterbiTailBiting(llr []float64, n int) Bits {
	if len(llr) != convRate*n || n == 0 {
		return nil
	}
	// branchMetric computes the correlation metric of the 3 coded bits at
	// step i against their LLRs (higher is better).
	branch := func(i int, out uint8) float64 {
		var m float64
		for g := 0; g < convRate; g++ {
			bit := (out >> uint(convRate-1-g)) & 1
			if bit == 0 {
				m += llr[convRate*i+g]
			} else {
				m -= llr[convRate*i+g]
			}
		}
		return m
	}

	const passes = 2
	metric := make([]float64, convStates) // all-zero init: every start state allowed
	next := make([]float64, convStates)
	// decisions[p*n+i][s] = input bit chosen entering state s at step i of pass p.
	decisions := make([][convStates]uint8, passes*n)

	for p := 0; p < passes; p++ {
		for i := 0; i < n; i++ {
			for s := range next {
				next[s] = math.Inf(-1)
			}
			for s := 0; s < convStates; s++ {
				if math.IsInf(metric[s], -1) {
					continue
				}
				for in := uint8(0); in < 2; in++ {
					ns := convNext[s][in]
					m := metric[s] + branch(i, convOutputs[s][in])
					if m > next[ns] {
						next[ns] = m
						decisions[p*n+i][ns] = in<<7 | uint8(s) // pack input and predecessor
					}
				}
			}
			metric, next = next, metric
		}
	}

	// Traceback from the best final state through the last pass.
	best := 0
	for s := 1; s < convStates; s++ {
		if metric[s] > metric[best] {
			best = s
		}
	}
	out := make(Bits, n)
	state := best
	for i := n - 1; i >= 0; i-- {
		d := decisions[(passes-1)*n+i][state]
		out[i] = d >> 7
		state = int(d & 0x3f)
	}
	return out
}

// hardLLR converts hard bits to confident LLRs (bit 0 -> +1, bit 1 -> -1),
// for loopback testing and re-encoding checks.
func hardLLR(bits Bits) []float64 {
	llr := make([]float64, len(bits))
	for i, b := range bits {
		if b == 0 {
			llr[i] = 1
		} else {
			llr[i] = -1
		}
	}
	return llr
}
