package harness

import (
	"fmt"
	"math/rand"
	"time"

	"pbecc/internal/rtc"
	"pbecc/internal/trace"
)

// The metro family is the city-scale workload the sharded engine exists
// for: half LTE and half NR cells (64-256 total), sixteen UEs per cell,
// and a flow mix that stresses every subsystem at once - bulk downloads
// under several competing schemes, frame-level RTC calls, one SFU fan-out
// spread across the metro, and a large churning background population
// whose rates and session lengths are calibrated from the paper's
// measured user populations (Figure 11(b) rates, Figure 7-style
// short-session dominance via trace.SessionOnOff, busy-cell control
// chatter on every third cell).
//
// Per-cell user slots (UE i sits on cell i%cells in slot k = i/cells):
//
//	k 0     bulk flow: the scheme under test on the measured cell,
//	        competitors cycling bbr/cubic/pbe elsewhere
//	k 1     frame-level RTC call on the GCC baseline
//	k 2     SFU subscriber leg (on every ~cells/32nd cell)
//	k 3     EN-DC device (LTE anchor + NR secondary) with background load
//	k 4-15  churning background users (on/off fixed-rate sessions)
const (
	MetroUEsPerCell  = 16
	metroDefaultCell = 128
	metroSFULegs     = 32
)

// metroCompetitors are the bulk schemes that share the metro with the
// scheme under test.
var metroCompetitors = []string{"bbr", "cubic", "pbe"}

// MetroScenario builds the metro scenario. Params.Cells picks the total
// cell count (default 128 -> 2048 UEs), Params.RAT the RAT of the
// measured flow's UE, Params.Shards the parallel width. The scenario is
// always sharded and always streams per-flow statistics.
func MetroScenario(scheme string, p Params) *Scenario {
	// BuildScenario enforces the family's 2-cell floor, so an explicit
	// Params.Cells is always honored exactly (never rounded up).
	cells := p.cellCount(metroDefaultCell)
	nLTE := (cells + 1) / 2
	nNR := cells - nLTE
	dur := p.dur(2 * time.Second)
	seed := p.Seed
	if seed == 0 {
		seed = 4242
	}
	// Build-time draws (background rates, session churn, start offsets)
	// come from a scenario-seeded source, so the topology is a pure
	// function of (params, seed) before any engine exists.
	rng := rand.New(rand.NewSource(seed * 7919))

	sc := &Scenario{
		Name:        fmt.Sprintf("metro-%dc-%s-%s", cells, p.rat(), scheme),
		Seed:        seed,
		Duration:    dur,
		Sharded:     true,
		StreamStats: true,
		SFU: &SFUSpec{
			IngestRTT:   20 * time.Millisecond,
			IngestRate:  100e6,
			IngestQueue: 128 * 1500,
		},
	}

	control := func(idx int) *trace.ControlTraffic {
		if p.Busy || idx%3 == 0 {
			return trace.Busy()
		}
		return trace.Idle()
	}
	for c := 0; c < nLTE; c++ {
		sc.Cells = append(sc.Cells, CellSpec{ID: 1 + c, NPRB: 100, Control: control(c)})
	}
	for c := 0; c < nNR; c++ {
		sc.NRCells = append(sc.NRCells, NRCellSpec{
			ID: 101 + c, Mu: 1, BandwidthMHz: 100, Control: control(nLTE + c),
		})
	}

	// The measured UE sits in slot 0 of cell 0 (LTE) or cell nLTE (the
	// first NR cell) depending on the RAT axis.
	measuredCell := 0
	if p.rat() == RATNR {
		measuredCell = nLTE
	}

	sfuStep := cells / metroSFULegs
	if sfuStep < 1 {
		sfuStep = 1
	}

	total := cells * MetroUEsPerCell
	var measured FlowSpec
	var flows []FlowSpec
	for i := 0; i < total; i++ {
		cellIdx := i % cells
		k := i / cells
		id := i + 1
		ue := UESpec{ID: id, RNTI: uint16(61 + k), RSSI: p.rssi(-80 - float64(i%13))}
		if cellIdx < nLTE {
			ue.CellIDs = []int{1 + cellIdx}
		} else {
			ue.NRCellIDs = []int{101 + (cellIdx - nLTE)}
		}
		if k == 3 && cellIdx < nLTE && cellIdx < nNR {
			// EN-DC device: LTE anchor j entangled with NR secondary j.
			// A dedicated RNTI range keeps it collision-free on the NR
			// cell, whose native users also count 61 upward.
			ue.RNTI = uint16(300 + k)
			ue.NRCellIDs = []int{101 + cellIdx}
		}
		if p.FluidBackground && k >= 4 {
			// Fluid tier: slots 4-15 become per-cell rate envelopes
			// instead of packet-level on/off flows. The three draws below
			// mirror the packet path's default case exactly (same rng,
			// same order), so both modes model the same population; slot
			// 3 stays packet-level to keep EN-DC activation dynamics.
			rate := trace.SampleUserRate(rng) * 2e6
			on, off := trace.SessionOnOff(rng)
			start := time.Duration(rng.Int63n(int64(dur/4 + 1)))
			addFluidSession(sc, &ue, rate, on, off, start)
			continue
		}
		sc.UEs = append(sc.UEs, ue)

		fl := FlowSpec{ID: id, UE: id, Start: 0,
			RTTBase: time.Duration(30+10*(i%4)) * time.Millisecond}
		switch {
		case k == 0 && cellIdx == measuredCell:
			fl.Scheme = scheme
			fl.RTTBase = 40 * time.Millisecond
			// Cap the content server like a real CDN edge so one bulk
			// flow cannot monopolize a wide NR carrier, which would
			// drown the metro in packet events without adding contrast.
			fl.InternetRate = 60e6
			fl.InternetQueue = 256 * 1500
			measured = fl
			continue
		case k == 0:
			fl.Scheme = metroCompetitors[cellIdx%len(metroCompetitors)]
			fl.InternetRate = 60e6
			fl.InternetQueue = 256 * 1500
		case k == 1:
			fl.Scheme = "gcc"
			fl.Media = &rtc.MediaSpec{}
		case k == 2 && cellIdx%sfuStep == 0 && cellIdx/sfuStep < metroSFULegs:
			fl.Scheme = "gcc"
			fl.SFULeg = true
		default:
			// Churning background population: rates from the Figure
			// 11(b) user-rate distribution (two PRBs' worth), sessions
			// arriving and departing per trace.SessionOnOff.
			fl.Scheme = "fixed"
			fl.FixedRate = trace.SampleUserRate(rng) * 2e6
			fl.OnPeriod, fl.OffPeriod = trace.SessionOnOff(rng)
			fl.Start = time.Duration(rng.Int63n(int64(dur/4 + 1)))
		}
		flows = append(flows, fl)
	}
	sc.Flows = append([]FlowSpec{measured}, flows...)
	return p.apply(sc)
}
