package harness

import (
	"testing"
	"time"
)

// TestGCCRunsInEveryFamily is the scheme-coverage gate for the new
// baseline: gcc must build and carry traffic in every scenario family on
// every RAT the family supports.
func TestGCCRunsInEveryFamily(t *testing.T) {
	for _, f := range Families() {
		for _, rat := range f.RATs {
			f, rat := f, rat
			t.Run(f.ID+"/"+rat, func(t *testing.T) {
				t.Parallel()
				sc, err := BuildScenario(f.ID, "gcc", Params{Seed: 5, RAT: rat, Duration: time.Second})
				if err != nil {
					t.Fatal(err)
				}
				res := Run(sc)
				fr := res.Flows[0]
				if fr.Scheme != "gcc" {
					t.Fatalf("flow 0 runs %q, want gcc", fr.Scheme)
				}
				if fr.Received == 0 {
					t.Fatal("gcc delivered no packets")
				}
			})
		}
	}
}

func TestRTCFamilyFrameMetrics(t *testing.T) {
	for _, rat := range []string{RATLTE, RATNR} {
		rat := rat
		t.Run(rat, func(t *testing.T) {
			t.Parallel()
			sc, err := BuildScenario("rtc", "pbe", Params{Seed: 3, RAT: rat, Duration: 2 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			fr := Run(sc).Flows[0]
			if fr.Frames == nil {
				t.Fatal("rtc flow has no frame metrics")
			}
			if fr.Frames.Released < 40 {
				t.Fatalf("released %d frames in 2 s at 30 fps", fr.Frames.Released)
			}
			// PBE-CC feedback must hold the call at interactive latency.
			if p95 := fr.Frames.Delay.Percentile(95); p95 > 150 {
				t.Fatalf("p95 frame delay %.1f ms under pbe", p95)
			}
		})
	}
}

func TestRTCFamilyHonorsCellsAxis(t *testing.T) {
	sc, err := BuildScenario("rtc", "pbe", Params{Seed: 3, Cells: 2, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Cells) != 2 {
		t.Fatalf("rtc with Cells=2 built %d LTE cells", len(sc.Cells))
	}
}

func TestSFUScenarioFansOutToEveryUE(t *testing.T) {
	sc, err := BuildScenario("sfu", "pbe", Params{Seed: 9, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Flows) != SFUSubscribers {
		t.Fatalf("sfu scenario has %d flows, want %d", len(sc.Flows), SFUSubscribers)
	}
	// Subscribers must span both RATs.
	lte, nr := 0, 0
	for _, ue := range sc.UEs {
		if len(ue.CellIDs) > 0 {
			lte++
		}
		if len(ue.NRCellIDs) > 0 {
			nr++
		}
	}
	if lte == 0 || nr == 0 {
		t.Fatalf("subscribers not spread across RATs: %d LTE, %d NR", lte, nr)
	}
	res := Run(sc)
	for _, fr := range res.Flows {
		if fr.Frames == nil {
			t.Fatalf("subscriber %d has no frame metrics", fr.ID)
		}
		if fr.Frames.Released == 0 {
			t.Fatalf("subscriber %d released no frames", fr.ID)
		}
	}
	if res.Flows[0].Scheme != "pbe" {
		t.Fatalf("measured subscriber runs %q, want pbe", res.Flows[0].Scheme)
	}
	for _, fr := range res.Flows[1:] {
		if fr.Scheme != "gcc" {
			t.Fatalf("background subscriber %d runs %q, want gcc", fr.ID, fr.Scheme)
		}
	}
}

// TestMediaFlowPaddingExcludedFromGoodput checks that probe padding never
// counts toward the flow's throughput metric: a starved encoder on an
// idle cell must report only media goodput.
func TestMediaFlowPaddingExcludedFromGoodput(t *testing.T) {
	sc, err := BuildScenario("rtc", "gcc", Params{Seed: 4, Duration: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	fr := Run(sc).Flows[0]
	// The top ladder rung is 8 Mbit/s; goodput beyond ~9 means padding
	// leaked into the metric.
	if fr.AvgTputMbps > 9 {
		t.Fatalf("media goodput %.1f Mbit/s exceeds the encoder ladder", fr.AvgTputMbps)
	}
	if fr.Frames.Released == 0 {
		t.Fatal("no frames released")
	}
}
