package harness

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"

	"pbecc/internal/fluid"
)

// nationFingerprint extends the metro fingerprint with the fluid tier's
// accounting, so shard-width comparisons also cover the modeled
// population's chunked advancement.
func nationFingerprint(t *testing.T, res *Result) []byte {
	t.Helper()
	if res.Fluid == nil {
		t.Fatal("nation run produced no fluid stats")
	}
	b, err := json.Marshal(struct {
		Flows []byte
		Fluid fluid.Stats
	}{metroFingerprint(t, res), *res.Fluid})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func runNation(t *testing.T, shards int) []byte {
	t.Helper()
	sc, err := BuildScenario("nation", "pbe", Params{
		Seed: 3, Cells: 2, Duration: 200 * time.Millisecond, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return nationFingerprint(t, Run(sc))
}

// TestNationByteIdenticalAcrossShards is the fluid tier's determinism
// contract: the nation family - including the 65536-cell modeled
// population advanced by per-shard chunks - produces byte-identical
// results for any parallel width.
func TestNationByteIdenticalAcrossShards(t *testing.T) {
	base := runNation(t, 1)
	for _, shards := range []int{4, 8} {
		if got := runNation(t, shards); !bytes.Equal(base, got) {
			t.Fatalf("results differ between -shards 1 and -shards %d", shards)
		}
	}
}

// TestNationComposition: the family must deliver what its registry entry
// promises - a metro-style packet foreground with fluid background on
// every real cell, plus the fixed >=64k-cell / >=1M-user modeled tier.
func TestNationComposition(t *testing.T) {
	sc, err := BuildScenario("nation", "pbe", Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Fluid == nil {
		t.Fatal("nation scenario has no fluid spec")
	}
	if sc.Fluid.ModeledCells < 1<<16 {
		t.Fatalf("modeled cells = %d, want >= 65536", sc.Fluid.ModeledCells)
	}
	if users := sc.Fluid.ModeledCells * sc.Fluid.ModeledUsersPerCell; users < 1_000_000 {
		t.Fatalf("modeled users = %d, want >= 1M", users)
	}
	// Every real cell carries cell-bound fluid sessions (slots 4-15).
	realCells := len(sc.Cells) + len(sc.NRCells)
	if got := len(sc.Fluid.Sessions); got != realCells {
		t.Fatalf("fluid sessions on %d cells, want all %d real cells", got, realCells)
	}
	if got, want := sc.Fluid.FluidSessions(), sc.Fluid.ModeledCells*sc.Fluid.ModeledUsersPerCell+realCells*12; got != want {
		t.Fatalf("total fluid sessions = %d, want %d", got, want)
	}
}

// metroEquivalenceTolerancePct is the documented fluid-vs-packet
// equivalence bound: converting the metro churn population (slots 4-15)
// from packet flows to rate envelopes moves the measured flow's
// throughput and p95 delay by at most this much. Measured headroom at
// the gate's parameters is ~12% worst-case across seeds and RATs.
const metroEquivalenceTolerancePct = 15

// TestMetroFluidEquivalence runs the metro-smoke job twice - packet
// background and fluid background - and holds the measured flow's
// throughput and p95 delay within the documented tolerance. This is the
// fidelity boundary of the hybrid: the fluid tier must load the cell
// like the packet population it replaces.
func TestMetroFluidEquivalence(t *testing.T) {
	for _, rat := range []string{RATLTE, RATNR} {
		base := Params{Seed: 1, Cells: 8, RAT: rat, Duration: 500 * time.Millisecond, Shards: 4}
		pkt := base
		fl := base
		fl.FluidBackground = true

		scPkt, err := BuildScenario("metro", "pbe", pkt)
		if err != nil {
			t.Fatal(err)
		}
		scFl, err := BuildScenario("metro", "pbe", fl)
		if err != nil {
			t.Fatal(err)
		}
		// The conversion must actually shrink the packet population: 12
		// of 16 slots per cell move to the fluid tier.
		if got, want := len(scPkt.UEs)-len(scFl.UEs), 8*12; got != want {
			t.Fatalf("%s: fluid conversion removed %d UEs, want %d", rat, got, want)
		}
		resPkt, resFl := Run(scPkt), Run(scFl)
		if resFl.Fluid == nil || resFl.Fluid.Sessions != 8*12 {
			t.Fatalf("%s: fluid run stats = %+v, want 96 sessions", rat, resFl.Fluid)
		}
		if resFl.Fluid.ServedBits <= 0 {
			t.Fatalf("%s: fluid background was never served", rat)
		}
		fp, ff := resPkt.Flows[0], resFl.Flows[0]
		checkWithin := func(metric string, a, b float64) {
			if a == 0 {
				t.Fatalf("%s: packet %s is zero", rat, metric)
			}
			if d := 100 * math.Abs(b-a) / a; d > metroEquivalenceTolerancePct {
				t.Errorf("%s: %s packet=%.2f fluid=%.2f (%.1f%% > %d%%)",
					rat, metric, a, b, d, metroEquivalenceTolerancePct)
			}
		}
		checkWithin("tput", fp.AvgTputMbps, ff.AvgTputMbps)
		checkWithin("delay p95", fp.Delay.Percentile(95), ff.Delay.Percentile(95))
	}
}

// TestMetroFluidOffIsNoop: without the flag the metro scenario must not
// grow a fluid spec, and runs must not report fluid stats - the committed
// packet baselines stay authoritative.
func TestMetroFluidOffIsNoop(t *testing.T) {
	sc, err := BuildScenario("metro", "pbe", Params{Seed: 1, Cells: 2, Duration: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Fluid != nil {
		t.Fatalf("fluid spec present without the flag: %+v", sc.Fluid)
	}
	if res := Run(sc); res.Fluid != nil {
		t.Fatalf("fluid stats present without the flag: %+v", res.Fluid)
	}
}
