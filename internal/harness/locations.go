package harness

import (
	"fmt"
	"time"

	"pbecc/internal/trace"
)

// Location is one measurement spot of the §6.3.1 grid: the paper tests 40
// locations covering all combinations of indoor/outdoor, one/two/three
// aggregated cells, and busy/idle link conditions.
type Location struct {
	Index  int
	Name   string
	Indoor bool
	CCs    int // aggregated component carriers the device supports
	Busy   bool
	RSSI   float64
}

// LocationGrid returns the 40-location grid with the paper's proportions:
// 25 busy and 15 idle links, 10 locations per single-carrier device
// (Redmi 8) and 30 with carrier aggregation (MIX3, S8).
func LocationGrid() []Location {
	var locs []Location
	rssiSteps := []float64{-85, -91, -97, -103, -88}
	for i := 0; i < 40; i++ {
		ccs := 1
		if i >= 10 {
			ccs = 2 + (i % 2)
		}
		loc := Location{
			Index:  i,
			Indoor: i%2 == 0,
			CCs:    ccs,
			Busy:   i%8 < 5, // 25 of 40 busy
			RSSI:   rssiSteps[i%len(rssiSteps)],
		}
		kind := "outdoor"
		if loc.Indoor {
			kind = "indoor"
		}
		state := "idle"
		if loc.Busy {
			state = "busy"
		}
		loc.Name = fmt.Sprintf("loc%02d-%s-%dcc-%s", i, kind, ccs, state)
		locs = append(locs, loc)
	}
	return locs
}

// RepresentativeLocations returns the six spots of Figures 13-14: four
// indoor (1/2/3 CCs busy, 3 CCs idle) and two outdoor (2 CCs busy/idle).
func RepresentativeLocations() []Location {
	return []Location{
		{Index: 100, Name: "indoor-1cc-busy", Indoor: true, CCs: 1, Busy: true, RSSI: -91},
		{Index: 101, Name: "indoor-2cc-busy", Indoor: true, CCs: 2, Busy: true, RSSI: -91},
		{Index: 102, Name: "indoor-3cc-busy", Indoor: true, CCs: 3, Busy: true, RSSI: -88},
		{Index: 103, Name: "indoor-3cc-idle", Indoor: true, CCs: 3, Busy: false, RSSI: -88},
		{Index: 104, Name: "outdoor-2cc-busy", Indoor: false, CCs: 2, Busy: true, RSSI: -97},
		{Index: 105, Name: "outdoor-2cc-idle", Indoor: false, CCs: 2, Busy: false, RSSI: -97},
	}
}

// LocationScenario builds the end-to-end experiment for one scheme at one
// location. Busy locations add the calibrated control-plane chatter plus
// two background data users; the test flow always runs on UE 1.
func LocationScenario(loc Location, scheme string, dur time.Duration) *Scenario {
	sc := &Scenario{
		Name:     loc.Name + "-" + scheme,
		Seed:     int64(1000 + loc.Index), // same conditions across schemes
		Duration: dur,
	}
	for c := 1; c <= loc.CCs; c++ {
		cs := CellSpec{ID: c, NPRB: 100}
		if loc.Busy {
			cs.Control = trace.Busy()
		} else {
			cs.Control = trace.Idle()
		}
		sc.Cells = append(sc.Cells, cs)
	}
	var cellIDs []int
	for c := 1; c <= loc.CCs; c++ {
		cellIDs = append(cellIDs, c)
	}
	fading := 2.5
	if loc.Indoor {
		fading = 1.5
	}
	sc.UEs = append(sc.UEs, UESpec{
		ID: 1, RNTI: 61, CellIDs: cellIDs, RSSI: loc.RSSI,
		FadingSigma: fading, CA: loc.CCs > 1,
	})
	rtt := 50 * time.Millisecond
	if loc.Indoor {
		rtt = 40 * time.Millisecond
	}
	flow := FlowSpec{ID: 1, UE: 1, Scheme: scheme, Start: 0, RTTBase: rtt}
	if loc.Busy && loc.Index%3 == 0 {
		// A third of the busy locations are Internet-bottlenecked part of
		// the time (congested transit), reproducing the paper's §6.3.1
		// observation that busy-hour connections spend ~18% of time in
		// the Internet-bottleneck state.
		flow.InternetRate = 25e6
		flow.InternetQueue = 1 << 18
	}
	sc.Flows = append(sc.Flows, flow)
	if loc.Busy {
		// Background data users sharing the primary cell.
		sc.UEs = append(sc.UEs,
			UESpec{ID: 2, RNTI: 62, CellIDs: []int{1}, RSSI: loc.RSSI + 3},
			UESpec{ID: 3, RNTI: 63, CellIDs: []int{1}, RSSI: loc.RSSI - 4},
		)
		sc.Flows = append(sc.Flows,
			FlowSpec{ID: 2, UE: 2, Scheme: "fixed", FixedRate: 8e6, Start: 0},
			FlowSpec{ID: 3, UE: 3, Scheme: "fixed", FixedRate: 4e6,
				Start: dur / 4, OnPeriod: dur / 4, OffPeriod: dur / 8},
		)
	}
	return sc
}
