package harness

import (
	"fmt"
	"time"
)

// The nation family is the million-user workload the fluid tier exists
// for: a small metro-style packet foreground (the measured flow, its
// competitors, RTC calls, an SFU fan-out and fluid background on every
// real cell) riding on top of a modeled-only population of 64k fluid
// cells and over a million background users. Modeled cells never
// instantiate a scheduler or tick per slot - their aggregate rate
// envelopes advance once per monitor window on the existing shards - so
// the event volume still scales with the packet foreground and a nation
// run fits the CI smoke budget.
const (
	// NationModeledCells x NationModeledUsersPerCell is the modeled-only
	// population: 65536 cells, 1,048,576 users.
	NationModeledCells        = 1 << 16
	NationModeledUsersPerCell = 16

	nationDefaultCells = 4 // packet-foreground cells (Params.Cells axis)
)

// NationScenario builds the nation scenario. Params.Cells sizes the
// packet foreground (default 4 cells, 64 UEs); the modeled tier is fixed
// at NationModeledCells regardless, so every nation run models >=64k
// cells total. FluidBackground is forced on: a nation without the fluid
// tier would be a mislabeled metro.
func NationScenario(scheme string, p Params) *Scenario {
	fg := p
	fg.FluidBackground = true
	fg.Cells = p.cellCount(nationDefaultCells)
	fg.Duration = p.dur(1 * time.Second)
	if fg.Seed == 0 {
		fg.Seed = 52525
	}
	sc := MetroScenario(scheme, fg)
	sc.Name = fmt.Sprintf("nation-%dfg-%dm-%s-%s", fg.Cells, NationModeledCells, p.rat(), scheme)
	if sc.Fluid == nil {
		sc.Fluid = &FluidSpec{}
	}
	sc.Fluid.ModeledCells = NationModeledCells
	sc.Fluid.ModeledUsersPerCell = NationModeledUsersPerCell
	return sc
}
