package harness

import (
	"fmt"

	"pbecc/internal/obs"
	"pbecc/internal/sim"
)

// placement pins every scenario entity to a shard of one sim.Cluster.
//
// The shard topology is a pure function of the scenario: cells that any
// single device spans (LTE carrier aggregation, EN-DC dual connectivity)
// are entangled into one shard by union-find, every UE, monitor, sender
// and receiver is pinned to the shard of its (first) cell, and the wired
// core - the SFU relay and its ingest - gets a shard of its own. Because
// the topology never depends on the worker count, a sharded scenario's
// output is byte-identical for any Scenario.Shards value; the knob only
// sets how many shards advance concurrently inside each window.
//
// An unsharded scenario is the degenerate one-shard cluster, which the
// sim layer guarantees is bit-compatible with the bare engine the
// harness used before sharding existed.
type placement struct {
	cluster *sim.Cluster
	byCell  map[int]*sim.Shard
	core    *sim.Shard
}

func newPlacement(sc *Scenario) *placement {
	cl := sim.NewCluster(sc.Seed)
	workers := sc.Shards
	if workers < 1 {
		workers = 1
	}
	cl.SetWorkers(workers)
	if sc.Trace {
		cl.SetRecorder(obs.NewRecorder())
	}
	if sc.Series {
		cl.SetSeriesRecorder(obs.NewSeriesRecorder())
	}
	pl := &placement{cluster: cl, byCell: map[int]*sim.Shard{}}

	if !sc.Sharded {
		s := cl.AddShard()
		for _, cs := range sc.Cells {
			pl.byCell[cs.ID] = s
		}
		for _, ns := range sc.NRCells {
			pl.byCell[ns.ID] = s
		}
		pl.core = s
		return pl
	}

	// Union-find over cell IDs: each device merges every carrier it
	// touches, so no device ever spans a shard boundary.
	parent := map[int]int{}
	for _, cs := range sc.Cells {
		parent[cs.ID] = cs.ID
	}
	for _, ns := range sc.NRCells {
		parent[ns.ID] = ns.ID
	}
	var find func(int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok {
			panic(fmt.Sprintf("harness: UE references unknown cell %d", x))
		}
		if p != x {
			p = find(p)
			parent[x] = p
		}
		return p
	}
	for _, us := range sc.UEs {
		ids := make([]int, 0, len(us.CellIDs)+len(us.NRCellIDs))
		ids = append(ids, us.CellIDs...)
		ids = append(ids, us.NRCellIDs...)
		for i := 1; i < len(ids); i++ {
			ra, rb := find(ids[0]), find(ids[i])
			if ra != rb {
				parent[rb] = ra
			}
		}
	}

	// One shard per connected group, assigned in cell declaration order
	// so the topology (and with it every shard engine seed) is
	// deterministic.
	roots := map[int]*sim.Shard{}
	assign := func(id int) {
		r := find(id)
		if roots[r] == nil {
			roots[r] = cl.AddShard()
		}
		pl.byCell[id] = roots[r]
	}
	for _, cs := range sc.Cells {
		assign(cs.ID)
	}
	for _, ns := range sc.NRCells {
		assign(ns.ID)
	}

	if sc.SFU != nil {
		// The relay fans out to subscribers on many cell shards; giving
		// it a dedicated wired-core shard keeps every leg a true
		// cross-shard boundary instead of serializing on one cell.
		pl.core = cl.AddShard()
	} else {
		pl.core = cl.Shards()[0]
	}
	return pl
}

// cell returns the shard that owns the given cell.
func (pl *placement) cell(id int) *sim.Shard {
	s, ok := pl.byCell[id]
	if !ok {
		panic(fmt.Sprintf("harness: no shard for cell %d", id))
	}
	return s
}

// ueShard returns the shard a UE (and everything terminating on it) is
// pinned to: the shard of its primary cell.
func (pl *placement) ueShard(us *UESpec) *sim.Shard {
	if len(us.CellIDs) > 0 {
		return pl.cell(us.CellIDs[0])
	}
	if len(us.NRCellIDs) > 0 {
		return pl.cell(us.NRCellIDs[0])
	}
	panic(fmt.Sprintf("harness: UE %d has no cells", us.ID))
}

// ShardCount reports how many shards a scenario's topology yields,
// exposed for tests and capacity planning.
func (sc *Scenario) ShardCount() int {
	return len(newPlacement(sc).cluster.Shards())
}
