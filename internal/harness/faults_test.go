package harness

import (
	"testing"
	"time"

	"pbecc/internal/faults"
	"pbecc/internal/obs"
)

// faultCounterNames are the injection counters the property tests watch.
var faultCounterNames = []string{
	"faults.stale_windows",
	"faults.stale_subframes",
	"faults.miss_delays",
	"faults.handover_bursts",
	"faults.onoff_flows",
}

// TestFaultCountersZeroWhenAxesOff is the off-is-really-off property:
// with every fault axis at zero, nothing in the fault layer runs, so
// every injection counter in the obs snapshot stays zero.
func TestFaultCountersZeroWhenAxesOff(t *testing.T) {
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	sc, err := BuildScenario("steady", "pbe", Params{Seed: 3, Duration: 400 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	Run(sc)
	snap := obs.TakeSnapshot()
	for _, name := range faultCounterNames {
		if v := snap.Counters[name]; v != 0 {
			t.Errorf("counter %s = %d on a clean run, want 0", name, v)
		}
	}
}

// TestFaultAxesRecordActivity: each monitor axis at full intensity must
// register injections in the obs snapshot, and the OnOff axis must stand
// up its competitor flow.
func TestFaultAxesRecordActivity(t *testing.T) {
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	sc, err := BuildScenario("steady", "pbe", Params{
		Seed: 3, Duration: 600 * time.Millisecond,
		FaultStale: 1, FaultMiss: 1, FaultHandover: 1, FaultOnOff: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	Run(sc)
	snap := obs.TakeSnapshot()
	for _, name := range faultCounterNames {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s stayed zero with every axis active", name)
		}
	}
}

// TestOnOffCompetitorAssembly: the OnOff axis adds exactly one
// fixed-rate square-wave flow on the measured UE's primary cell, with
// the half-period tuned to the monitor window.
func TestOnOffCompetitorAssembly(t *testing.T) {
	sc, err := BuildScenario("steady", "pbe", Params{
		Seed: 3, Duration: 400 * time.Millisecond, FaultOnOff: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.UEs) != 2 || len(sc.Flows) != 2 {
		t.Fatalf("got %d UEs / %d flows, want 2/2", len(sc.UEs), len(sc.Flows))
	}
	adv := sc.Flows[1]
	if adv.Scheme != "fixed" || adv.FixedRate <= 0 {
		t.Fatalf("competitor flow = %+v, want a fixed-rate source", adv)
	}
	if adv.OnPeriod != faults.OnOffHalfPeriod || adv.OffPeriod != faults.OnOffHalfPeriod {
		t.Fatalf("competitor cadence on=%v off=%v, want %v", adv.OnPeriod, adv.OffPeriod, faults.OnOffHalfPeriod)
	}
	if got, want := sc.UEs[1].CellIDs[0], sc.UEs[0].CellIDs[0]; got != want {
		t.Fatalf("competitor on cell %d, want the measured UE's primary cell %d", got, want)
	}
}

// TestFaultsGrowEstimationError: the structured fault axes must move the
// PBEErrPct needle against the fault-free oracle - the signal the
// robustness scorecard ranks schemes by.
func TestFaultsGrowEstimationError(t *testing.T) {
	run := func(p Params) float64 {
		p.Seed, p.Duration = 4, 800*time.Millisecond
		sc, err := BuildScenario("steady", "pbe", p)
		if err != nil {
			t.Fatal(err)
		}
		return Run(sc).Flows[0].PBEErrPct
	}
	clean := run(Params{})
	faulted := run(Params{FaultStale: 1, FaultHandover: 1})
	if faulted <= clean {
		t.Fatalf("PBEErrPct did not grow under faults: clean=%v faulted=%v", clean, faulted)
	}
}

// TestFaultedRunsAreDeterministic: identical fault parameters reproduce
// identical results run-to-run (the injector draws only from its own
// seeded stream).
func TestFaultedRunsAreDeterministic(t *testing.T) {
	run := func() (float64, float64, uint64) {
		sc, err := BuildScenario("steady", "pbe", Params{
			Seed: 9, Duration: 600 * time.Millisecond,
			FaultStale: 0.7, FaultMiss: 0.5, FaultHandover: 0.8, FaultOnOff: 0.3,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := Run(sc)
		f := res.Flows[0]
		return f.AvgTputMbps, f.PBEErrPct, f.Received
	}
	t1, e1, r1 := run()
	t2, e2, r2 := run()
	if t1 != t2 || e1 != e2 || r1 != r2 {
		t.Fatalf("faulted run diverged: (%v,%v,%d) vs (%v,%v,%d)", t1, e1, r1, t2, e2, r2)
	}
}

// TestPbertcRunsEndToEnd: the hybrid scheme must carry an rtc-family
// call through the full harness - monitor attached, frames delivered.
func TestPbertcRunsEndToEnd(t *testing.T) {
	sc, err := BuildScenario("rtc", "pbertc", Params{Seed: 6, Duration: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(sc)
	fr := res.Flows[0]
	if fr.AvgTputMbps <= 0 {
		t.Fatal("pbertc media flow carried no traffic")
	}
	if fr.Frames == nil || fr.Frames.Released == 0 {
		t.Fatal("pbertc media flow delivered no frames")
	}
	if fr.PBEErrPct < 0 || fr.PBEErrPct > 100 {
		t.Fatalf("pbertc estimation error out of range: %v", fr.PBEErrPct)
	}
}

// TestPbertcFaultAxesApply: monitor faults must reach a pbertc flow's
// monitor (SchemeUsesMonitor gates the injector wiring).
func TestPbertcFaultAxesApply(t *testing.T) {
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	sc, err := BuildScenario("rtc", "pbertc", Params{
		Seed: 6, Duration: 600 * time.Millisecond, FaultStale: 1})
	if err != nil {
		t.Fatal(err)
	}
	Run(sc)
	if obs.TakeSnapshot().Counters["faults.stale_windows"] == 0 {
		t.Fatal("stale axis never fired for a pbertc flow")
	}
}
