package harness

import (
	"fmt"
	"os"
	"testing"
)

// TestRunAllExperimentsQuick is table-driven over every registered
// experiment ID - including the nr-* additions - so a new experiment is
// covered the moment it is registered and none can silently rot: each must
// produce at least one table with at least one row, with every row matching
// its header width.
func TestRunAllExperimentsQuick(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := RunExperiment(e.ID, true)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("%s/%s has no rows", e.ID, tb.ID)
				}
				for i, r := range tb.Rows {
					if len(r) != len(tb.Header) {
						t.Fatalf("%s/%s row %d has %d cells, header has %d",
							e.ID, tb.ID, i, len(r), len(tb.Header))
					}
				}
				if testing.Verbose() {
					tb.Fprint(os.Stdout)
				}
			}
		})
	}
}

func TestTable1Shape(t *testing.T) {
	tables := Table1(true)
	tb := tables[0]
	if len(tb.Rows) != 6 {
		t.Fatalf("table1 rows = %d, want 6 (3 baselines x busy/idle)", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if len(r) != 5 {
			t.Fatalf("row %v has %d cells", r, len(r))
		}
	}
}

func TestFigure6bMonotone(t *testing.T) {
	tb := Figure6b(true)[0]
	prev := -1.0
	for _, row := range tb.Rows {
		var v float64
		if _, err := fmt.Sscanf(row[4], "%f", &v); err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatalf("error rate not monotone in TB size: %v", tb.Rows)
		}
		prev = v
	}
}

func TestFigure7FilterEffect(t *testing.T) {
	tb := Figure7(true)[0]
	last := tb.Rows[len(tb.Rows)-1] // mean row
	var raw, filtered float64
	fmt.Sscanf(last[1], "%f", &raw)
	fmt.Sscanf(last[2], "%f", &filtered)
	if filtered >= raw {
		t.Fatalf("filter did not reduce user count: %.1f -> %.1f", raw, filtered)
	}
	if raw < 8 {
		t.Fatalf("raw user count %.1f too low for a busy cell (paper ~15.8)", raw)
	}
	if filtered > 4 {
		t.Fatalf("filtered count %.1f too high (paper ~1.3)", filtered)
	}
}

func TestFigure2Activates(t *testing.T) {
	tb := Figure2(true)[0]
	foundSecondary := false
	for _, row := range tb.Rows {
		var s2 float64
		fmt.Sscanf(row[2], "%f", &s2)
		if s2 > 5 {
			foundSecondary = true
		}
	}
	if !foundSecondary {
		t.Fatal("secondary cell never carried PRBs in the Figure 2 trace")
	}
}

func TestFigure8MinDelayStable(t *testing.T) {
	tb := Figure8(true)[0]
	// The minimum delay must stay near propagation at every load (the
	// paper's observation enabling D_prop estimation).
	var mins []float64
	for _, row := range tb.Rows {
		var v float64
		fmt.Sscanf(row[1], "%f", &v)
		mins = append(mins, v)
	}
	for _, m := range mins {
		if m > mins[0]*1.5+1 {
			t.Fatalf("min delay drifted with load: %v", mins)
		}
	}
}
