package harness

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"pbecc/internal/obs"
)

// obsFingerprint extends the metro fingerprint with the probe's
// estimation-error metric, so the determinism checks cover everything the
// sweep rows read.
func obsFingerprint(t *testing.T, res *Result) []byte {
	t.Helper()
	errs := make([]float64, len(res.Flows))
	for i, f := range res.Flows {
		errs[i] = f.PBEErrPct
	}
	b, err := json.Marshal(struct {
		Base   json.RawMessage
		PBEErr []float64
	}{metroFingerprint(t, res), errs})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func runMetroObs(t *testing.T, shards int, metrics, trace bool) ([]byte, *Result) {
	t.Helper()
	return runMetroObsSeries(t, shards, metrics, trace, false)
}

func runMetroObsSeries(t *testing.T, shards int, metrics, trace, series bool) ([]byte, *Result) {
	t.Helper()
	sc, err := BuildScenario("metro", "pbe", Params{
		Seed: 5, Cells: 4, Duration: 300 * time.Millisecond, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	sc.Trace = trace
	sc.Series = series
	if metrics {
		obs.Reset()
		obs.Enable()
		defer func() {
			obs.Disable()
			obs.Reset()
		}()
	}
	res := Run(sc)
	return obsFingerprint(t, res), res
}

// TestObservabilityDoesNotChangeResults is the layer's central contract:
// a metro slice is byte-identical with metrics and tracing off, with both
// on, and for any parallel shard width - observation never feeds back
// into the simulation.
func TestObservabilityDoesNotChangeResults(t *testing.T) {
	base, baseRes := runMetroObs(t, 1, false, false)
	if baseRes.Trace != nil {
		t.Fatal("untraced run returned a recorder")
	}
	cases := []struct {
		name           string
		shards         int
		metrics, trace bool
	}{
		{"metrics on", 1, true, false},
		{"metrics+trace on", 1, true, true},
		{"metrics+trace on, shards 4", 4, true, true},
	}
	for _, c := range cases {
		got, res := runMetroObs(t, c.shards, c.metrics, c.trace)
		if !bytes.Equal(base, got) {
			t.Fatalf("%s: results differ from the plain run", c.name)
		}
		if c.trace && (res.Trace == nil || res.Trace.Len() == 0) {
			t.Fatalf("%s: traced run produced no events", c.name)
		}
	}
}

// TestTraceByteIdenticalAcrossShards: the merged trace itself - not just
// the simulation results - is independent of the parallel width, because
// rings drain serially in shard order and (TS, Pid, seq) is a total
// order.
func TestTraceByteIdenticalAcrossShards(t *testing.T) {
	render := func(shards int) []byte {
		_, res := runMetroObs(t, shards, false, true)
		var buf bytes.Buffer
		if err := res.Trace.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(1), render(4)) {
		t.Fatal("trace bytes differ between -shards 1 and -shards 4")
	}
}

// TestSeriesDoesNotChangeResults: recording series is as passive as
// tracing - the metro fingerprint is byte-identical whether the series
// layer is off, on, or on across a parallel shard split.
func TestSeriesDoesNotChangeResults(t *testing.T) {
	base, _ := runMetroObs(t, 1, false, false)
	for _, shards := range []int{1, 4} {
		got, res := runMetroObsSeries(t, shards, false, false, true)
		if !bytes.Equal(base, got) {
			t.Fatalf("shards %d: series recording changed the results", shards)
		}
		if res.Series == nil || res.Series.Len() == 0 {
			t.Fatalf("shards %d: series run recorded no points", shards)
		}
	}
}

// TestSeriesByteIdenticalAcrossShards: the merged series CSV - window
// aggregates and all - is independent of the parallel width, because
// buffers drain serially in shard order and (Win, Pid, seq) is a total
// order.
func TestSeriesByteIdenticalAcrossShards(t *testing.T) {
	render := func(shards int) []byte {
		_, res := runMetroObsSeries(t, shards, false, false, true)
		var buf bytes.Buffer
		if err := res.Series.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		if res.Series.Dropped != 0 {
			t.Fatalf("shards %d: dropped %d series points", shards, res.Series.Dropped)
		}
		return buf.Bytes()
	}
	one := render(1)
	if !bytes.Equal(one, render(8)) {
		t.Fatal("series bytes differ between -shards 1 and -shards 8")
	}
	for _, name := range []string{"cc.rate", "cc.ack_bits", "monitor.truth", "monitor.est", "net.queue"} {
		if !bytes.Contains(one, []byte(name)) {
			t.Errorf("metro series missing signal %s", name)
		}
	}
}

// TestMetricsCountMetroActivity: with metrics on, the instrumented
// subsystems all register activity in a metro run.
func TestMetricsCountMetroActivity(t *testing.T) {
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	sc, err := BuildScenario("metro", "pbe", Params{
		Seed: 2, Cells: 2, Duration: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	Run(sc)
	snap := obs.TakeSnapshot()
	for _, name := range []string{
		"sim.events_scheduled",
		"cluster.window_barriers",
		"cluster.cross_events",
		"netsim.packets_delivered",
		"cc.acks",
		"cc.rate_decisions",
		"rtc.frames_sent",
		"pbe.probe_samples",
	} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s stayed zero across a metro run", name)
		}
	}
	if snap.Watermarks["sim.heap_len_max"] == 0 {
		t.Error("heap watermark stayed zero")
	}
}

// TestPBEErrProbeRespondsToNoise: the estimation-error metric must grow
// with injected measurement noise - the signal the sweep's accuracy
// column exists to expose.
func TestPBEErrProbeRespondsToNoise(t *testing.T) {
	run := func(noise float64) float64 {
		sc, err := BuildScenario("steady", "pbe", Params{
			Seed: 1, Duration: 400 * time.Millisecond, CapacityNoise: noise})
		if err != nil {
			t.Fatal(err)
		}
		res := Run(sc)
		return res.Flows[0].PBEErrPct
	}
	clean, noisy := run(0), run(0.2)
	if noisy <= clean {
		t.Fatalf("PBEErrPct did not grow with noise: clean=%v noisy=%v", clean, noisy)
	}
	if clean < 0 || clean > 100 {
		t.Fatalf("clean-run error out of range: %v", clean)
	}
}
