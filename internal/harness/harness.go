// Package harness assembles end-to-end experiments: content servers
// running a congestion-control scheme, an optional Internet bottleneck,
// cellular cells with background control traffic, UEs with carrier
// aggregation, and per-flow statistics over 100 ms windows - the role
// Pantheon plays in the paper's methodology (§6.1).
package harness

import (
	"fmt"
	"time"

	"pbecc/internal/cc"
	"pbecc/internal/cc/bbr"
	"pbecc/internal/cc/copa"
	"pbecc/internal/cc/cubic"
	"pbecc/internal/cc/gcc"
	"pbecc/internal/cc/pbertc"
	"pbecc/internal/cc/pcc"
	"pbecc/internal/cc/sprout"
	"pbecc/internal/cc/verus"
	"pbecc/internal/cc/vivace"
	"pbecc/internal/core"
	"pbecc/internal/faults"
	"pbecc/internal/fluid"
	"pbecc/internal/lte"
	"pbecc/internal/netsim"
	"pbecc/internal/nr"
	"pbecc/internal/obs"
	"pbecc/internal/pdcch"
	"pbecc/internal/phy"
	"pbecc/internal/rtc"
	"pbecc/internal/sim"
	"pbecc/internal/stats"
)

// Schemes lists every congestion-control algorithm under test: the
// paper's order (§6.1) plus the GCC/REMB real-time baseline added with
// the rtc subsystem and the pbertc physical-layer/GCC hybrid.
var Schemes = []string{"pbe", "bbr", "cubic", "verus", "sprout", "copa", "pcc", "vivace", "gcc", "pbertc"}

// SchemeUsesMonitor reports whether a scheme consumes the PBE monitor's
// physical-layer capacity feed. Only these schemes react to the
// measurement-noise and monitor-fault axes; for the rest, faulted jobs
// would duplicate the clean run exactly.
func SchemeUsesMonitor(scheme string) bool { return scheme == "pbe" || scheme == "pbertc" }

// CellSpec describes one LTE component carrier.
type CellSpec struct {
	ID      int
	NPRB    int
	Table   phy.CQITable
	Control lte.ControlSource // nil = no control-plane chatter
}

// NRCellSpec describes one 5G NR carrier. Cell IDs share a namespace with
// the LTE cells (the monitor tracks both RATs in one table), so NR cells
// conventionally number from 101.
type NRCellSpec struct {
	ID           int
	Mu           int // numerology µ: 0..3
	NPRB         int // 0 = derive from BandwidthMHz
	BandwidthMHz int
	Table        phy.CQITable      // 0 = 256-QAM
	Control      lte.ControlSource // nil = no control-plane chatter
}

// UESpec describes one mobile device. A UE with only CellIDs is an LTE
// device, one with only NRCellIDs is a standalone 5G device, and one with
// both is an EN-DC dual-connectivity device whose first NR cell is the
// secondary cell group behind the LTE anchor.
type UESpec struct {
	ID          int
	RNTI        uint16
	CellIDs     []int // LTE carriers, primary first
	RSSI        float64
	Trajectory  phy.Trajectory // overrides RSSI when non-nil
	FadingSigma float64
	CA          bool // LTE carrier aggregation enabled

	NRCellIDs    []int          // NR carriers
	NRRSSI       float64        // 0 = use RSSI
	NRTrajectory phy.Trajectory // overrides NRRSSI when non-nil
}

// FlowSpec describes one end-to-end flow from a content server to a UE.
type FlowSpec struct {
	ID     int
	UE     int
	Scheme string // one of Schemes, or "fixed" with FixedRate set
	Start  time.Duration
	Stop   time.Duration // 0 = run to scenario end

	RTTBase time.Duration // server<->tower round-trip propagation

	// Optional Internet bottleneck on the data path.
	InternetRate  float64
	InternetQueue int

	// FixedRate drives a constant-rate source instead of a controller.
	FixedRate float64

	// OnPeriod/OffPeriod, when set with Scheme "fixed", gate the source
	// on and off (the §6.3.3 controlled competitor).
	OnPeriod  time.Duration
	OffPeriod time.Duration

	// Media, when non-nil, replaces the full-buffer sender with the
	// frame-level RTC pipeline (encoder -> packetizer/pacer -> jitter
	// buffer); Scheme still chooses the congestion controller. Ignored
	// for "fixed" flows and SFU legs.
	Media *rtc.MediaSpec

	// SFULeg makes this flow one subscriber leg of the scenario's SFU
	// fan-out: the relay forwards the selected simulcast layer to the
	// UE, paced by the leg's own congestion controller. In sharded runs
	// the leg's two wired hops are cross-shard links between the wired
	// core and the UE's cell shard. Requires Scenario.SFU.
	SFULeg bool
}

// Scenario is a complete experiment.
type Scenario struct {
	Name     string
	Seed     int64
	Duration time.Duration
	Cells    []CellSpec
	NRCells  []NRCellSpec
	UEs      []UESpec
	Flows    []FlowSpec

	// PRBSampleEvery, when positive, samples each UE's primary-cell PRB
	// allocation (averaged over the interval) for the fairness figures.
	PRBSampleEvery time.Duration

	// MonitorDecodesPDCCH routes monitor input through the bit-level
	// PDCCH encode/blind-decode path instead of scheduler structs (the
	// decode-versus-oracle ablation). Slower; used by dedicated benches.
	MonitorDecodesPDCCH bool

	// DisableUserFilter turns off PBE-CC's control-traffic filter
	// (ablation of §4.2.1).
	DisableUserFilter bool

	// MisreportGuard configures the §7 server-side feedback validator.
	MisreportGuard float64

	// CapacityNoise, when positive, applies zero-mean Gaussian
	// multiplicative noise with this standard deviation (as a fraction of
	// the estimate) to the PBE monitor's capacity feedback - the sweep
	// runner's measurement-robustness axis, after Zhu et al.'s methodology
	// for stress-testing measurement-based congestion control.
	CapacityNoise float64

	// SFU, when non-nil, stands up an SFU fan-out: one simulcast ingest
	// stream enters a frame-level relay over a wired path, and every
	// flow marked SFULeg becomes a subscriber leg from the relay through
	// the cellular network to its UE.
	SFU *SFUSpec

	// Sharded partitions the scenario across shard-local event engines:
	// one shard per group of cells entangled by multi-carrier devices,
	// plus a wired-core shard for the SFU relay. The shard topology is a
	// pure function of the scenario, so results are byte-identical for
	// any Shards value; unsharded scenarios run on the degenerate
	// one-shard cluster, bit-compatible with the pre-sharding engine.
	Sharded bool

	// Shards bounds how many shards advance concurrently inside each
	// synchronization window (0 or 1 = serial). Wall-clock only - never
	// results.
	Shards int

	// StreamStats records per-flow delay percentiles through
	// constant-size P² digests instead of exact per-packet sample
	// series, keeping memory O(flows) at metro scale.
	StreamStats bool

	// Trace records a virtual-time execution trace of the run: shard
	// window spans, per-flow congestion-control decision tracks, and
	// PBE estimation-error tracks, merged deterministically at window
	// barriers and exported through Result.Trace as Chrome trace-event
	// JSON. Tracing changes what is observed, never what happens.
	Trace bool

	// Series records the run's downsampled virtual-time series (40 ms
	// windows): ground-truth versus estimated capacity, every cc flow's
	// rate/cwnd/acked-volume trajectory, bottleneck queue depth, frame
	// delay and freeze onsets, and fault-injection markers - exported
	// through Result.Series. Like Trace, recording changes what is
	// observed, never what happens: the sweep runner keeps it on for
	// every job, and rows are byte-identical either way.
	Series bool

	// Faults selects the structured measurement-fault axes injected
	// between the cells and each monitor-using flow's PBE monitor (see
	// internal/faults). The zero value is the clean channel; the OnOff
	// axis is assembled at scenario-build time (Params.apply), not here.
	Faults faults.Spec

	// Fluid, when non-nil, stands up the fluid background tier: per-cell
	// aggregate rate-envelope sessions competing in the schedulers'
	// water-fill (visible to PBE monitors through the control channel),
	// plus an optional modeled-only nation-scale population. Nil keeps
	// every cell byte-identical to the pre-fluid scheduler.
	Fluid *FluidSpec
}

// SFUSpec configures the fan-out relay and its ingest leg.
type SFUSpec struct {
	// Media describes the ingest stream; Simulcast is forced on (an SFU
	// needs every ladder rung to select from).
	Media rtc.MediaSpec

	// IngestScheme is the ingest leg's congestion controller. The
	// default "provisioned" paces at twice the simulcast bundle rate
	// without adapting - a production SFU's dedicated uplink - so the
	// scenario's congestion dynamics live on the subscriber legs. Any
	// scheme name (e.g. "gcc") puts a real controller on the ingest.
	IngestScheme string

	// Ingest path shape: server -> SFU over a wired link.
	IngestRTT   time.Duration // round-trip propagation (default 20 ms)
	IngestRate  float64       // bottleneck rate (0 = unconstrained)
	IngestQueue int           // drop-tail queue bytes (0 = unbounded)
}

// NominalCapacityMbps returns the scenario's aggregate peak physical
// capacity: every cell at its top CQI with two spatial streams. It is the
// denominator of the sweep runner's utilization metric.
func (sc *Scenario) NominalCapacityMbps() float64 {
	var bps float64
	for _, cs := range sc.Cells {
		table := cs.Table
		if table == 0 {
			table = phy.Table64QAM
		}
		peak := phy.MCS{CQI: 15, Table: table, Streams: 2}
		bps += peak.BitsPerPRB() * float64(cs.NPRB) * 1000
	}
	for _, ns := range sc.NRCells {
		table := ns.Table
		if table == 0 {
			table = phy.Table256QAM
		}
		nprb := ns.NPRB
		if nprb == 0 {
			nprb = phy.NRCarrierPRBs(ns.Mu, ns.BandwidthMHz)
		}
		peak := phy.MCS{CQI: 15, Table: table, Streams: 2}
		bps += phy.NRCellRateBps(peak, ns.Mu, nprb)
	}
	return bps / 1e6
}

// FlowResult is one flow's measured performance.
type FlowResult struct {
	ID     int
	Scheme string

	Tput *stats.Series // Mbit/s per 100 ms window

	// Delay holds one-way delay per packet in ms: an exact
	// DurationSeries normally, a streaming P² digest when the scenario
	// sets StreamStats.
	Delay stats.DelayDist

	AvgTputMbps float64
	Received    uint64
	Lost        uint64

	// PBE-only statistics.
	InternetFrac float64

	// PBEErrPct is the mean absolute relative error of the capacity
	// estimate the transport acted on versus a noise-free oracle monitor,
	// in percent (PBE flows only; see pbeProbe).
	PBEErrPct float64

	// Timeline series sampled every 100 ms (rate in Mbit/s, delay ms).
	TimelineT []time.Duration
	TimelineR []float64
	TimelineD []float64

	// Frames holds frame-level QoE metrics for media flows (nil for
	// bulk flows).
	Frames *rtc.FrameStats

	snd     *cc.Sender
	msnd    *rtc.Sender
	windows *stats.Windowed
	start   time.Duration
	stop    time.Duration
	pbe     *core.Client
}

// Result is a completed scenario.
type Result struct {
	Scenario *Scenario
	Flows    []*FlowResult

	// CATriggered reports whether any UE activated a secondary carrier
	// (an LTE secondary cell or an EN-DC NR secondary cell group).
	CATriggered bool

	// NRActivated reports whether any EN-DC UE activated its NR leg.
	NRActivated bool

	// PRBSamples[ueIndex] holds the sampled primary-cell PRB shares.
	PRBTimes   []time.Duration
	PRBSamples map[int][]float64

	// Trace is the run's merged virtual-time trace when Scenario.Trace
	// was set (nil otherwise); export with Trace.WriteChromeTrace.
	Trace *obs.Recorder

	// Series is the run's merged virtual-time series when Scenario.Series
	// was set (nil otherwise); export with Series.WriteCSV or feed it to
	// the sweep trajectory analytics.
	Series *obs.SeriesRecorder

	// Fluid aggregates the fluid background tier's offered/served load
	// when Scenario.Fluid was set (nil otherwise).
	Fluid *fluid.Stats
}

// Run executes the scenario and collects per-flow statistics.
func Run(sc *Scenario) *Result {
	pl := newPlacement(sc)
	res := &Result{Scenario: sc, PRBSamples: map[int][]float64{}}

	cells := map[int]*lte.Cell{}
	for _, cs := range sc.Cells {
		table := cs.Table
		if table == 0 {
			table = phy.Table64QAM
		}
		cells[cs.ID] = lte.NewCell(pl.cell(cs.ID).Engine, cs.ID, cs.NPRB, table, cs.Control)
	}

	nrCells := map[int]*nr.Cell{}
	for _, ns := range sc.NRCells {
		nrCells[ns.ID] = nr.NewCell(pl.cell(ns.ID).Engine, nr.Config{
			ID: ns.ID, Mu: ns.Mu, NPRB: ns.NPRB, BandwidthMHz: ns.BandwidthMHz,
			Table: ns.Table, Control: ns.Control,
		})
	}

	var flRT *fluidRuntime
	if sc.Fluid != nil {
		flRT = setupFluid(sc, pl, cells, nrCells)
	}

	ues := map[int]*lte.UE{}              // LTE-only devices
	endcs := map[int]*nr.ENDC{}           // dual-connectivity devices
	devices := map[int]device{}           // every device, by UE ID
	channels := map[[2]int]*phy.Channel{} // (ueID, cellID) -> channel
	for _, us := range sc.UEs {
		us := us
		ueEng := pl.ueShard(&us).Engine
		mkChannel := func(rssi float64, traj phy.Trajectory, table phy.CQITable) *phy.Channel {
			var fading *phy.Fading
			if us.FadingSigma > 0 {
				fading = phy.NewFading(us.FadingSigma, 50*time.Millisecond, ueEng.Rand())
			}
			if traj != nil {
				return phy.NewMobileChannel(traj, table, fading)
			}
			return phy.NewStaticChannel(rssi, table, fading)
		}
		var anchor *lte.UE
		if len(us.CellIDs) > 0 {
			anchor = lte.NewUE(ueEng, us.ID, us.RNTI)
			for _, cid := range us.CellIDs {
				cell := cells[cid]
				ch := mkChannel(us.RSSI, us.Trajectory, cell.Table)
				channels[[2]int{us.ID, cid}] = ch
				anchor.AddCell(cell, ch)
			}
			anchor.SetCarrierAggregation(us.CA)
		}
		nrRSSI := us.NRRSSI
		if nrRSSI == 0 {
			nrRSSI = us.RSSI
		}
		switch {
		case anchor != nil && len(us.NRCellIDs) > 0:
			// EN-DC: LTE anchor plus one NR secondary cell group.
			if len(us.NRCellIDs) > 1 {
				panic("harness: EN-DC supports one NR secondary cell")
			}
			cell := nrCells[us.NRCellIDs[0]]
			ch := mkChannel(nrRSSI, us.NRTrajectory, cell.Table)
			channels[[2]int{us.ID, us.NRCellIDs[0]}] = ch
			endc := nr.NewENDC(ueEng, us.ID, us.RNTI, anchor, cell, ch)
			endc.Start()
			endcs[us.ID] = endc
			devices[us.ID] = endc
		case anchor != nil:
			anchor.Start()
			ues[us.ID] = anchor
			devices[us.ID] = anchor
		case len(us.NRCellIDs) > 0:
			// Standalone 5G device.
			ue := nr.NewUE(ueEng, us.ID, us.RNTI)
			for _, cid := range us.NRCellIDs {
				cell := nrCells[cid]
				ch := mkChannel(nrRSSI, us.NRTrajectory, cell.Table)
				channels[[2]int{us.ID, cid}] = ch
				ue.AddCell(cell, ch)
			}
			devices[us.ID] = ue
		default:
			panic(fmt.Sprintf("harness: UE %d has no cells", us.ID))
		}
	}

	// UE specs by ID, looked up once per flow below (a linear scan per
	// flow would be O(flows x UEs) at metro scale).
	specs := make(map[int]*UESpec, len(sc.UEs))
	for i := range sc.UEs {
		specs[sc.UEs[i].ID] = &sc.UEs[i]
	}
	spec := func(ueID int) *UESpec {
		us, ok := specs[ueID]
		if !ok {
			panic(fmt.Sprintf("harness: unknown UE %d", ueID))
		}
		return us
	}

	// PBE monitors: one per UE hosting at least one PBE flow, fed by every
	// configured cell but tracking only the active set. Each monitor gets
	// a measurement-accuracy probe whose oracle mirrors every attach and
	// detach but takes the direct (noise-free, decode-free) feed.
	monitors := map[int]*core.Monitor{}
	probes := map[int]*pbeProbe{}
	clientGroups := map[int]*clientGroup{}
	for _, fs := range sc.Flows {
		if !SchemeUsesMonitor(fs.Scheme) {
			continue
		}
		us := spec(fs.UE)
		if _, ok := monitors[fs.UE]; ok {
			continue
		}
		mon := core.NewMonitor(us.RNTI)
		mon.UseFilter = !sc.DisableUserFilter
		if sigma := sc.CapacityNoise; sigma > 0 {
			// The monitor runs on the UE's shard; its noise stream draws
			// from that shard's engine.
			rng := pl.ueShard(us).Rand()
			mon.Noise = func(v float64) float64 {
				return v * (1 + sigma*rng.NormFloat64())
			}
		}
		probe := newPBEProbe(mon, us.RNTI)
		monitors[fs.UE] = mon
		probes[fs.UE] = probe
		clientGroups[fs.UE] = &clientGroup{}

		// Monitor-fault axes interpose an injector on every attach,
		// detach and control feed. The probe's oracle stays on the
		// direct path: it is the fault-free reference PBEErrPct is
		// measured against. With no axes active the injector is never
		// constructed and the clean path is byte-identical to before.
		var inj *faults.Injector
		if sc.Faults.MonitorAxes() {
			inj = faults.New(pl.ueShard(us).Engine, mon, sc.Faults, sc.Seed, us.RNTI)
		}
		attach := func(info core.CellInfo) {
			if inj != nil {
				inj.AttachCell(info)
			} else {
				mon.AttachCell(info)
			}
			probe.oracle.AttachCell(info)
		}
		detach := func(id int) {
			if inj != nil {
				inj.DetachCell(id)
			} else {
				mon.DetachCell(id)
			}
			probe.oracle.DetachCell(id)
		}
		wrap := func(m lte.Monitor) lte.Monitor {
			if inj != nil {
				return inj.WrapFeed(m)
			}
			return m
		}

		// attachNR registers one NR carrier with its slot clock.
		attachNR := func(cid int) {
			cell := nrCells[cid]
			ch := channels[[2]int{fs.UE, cid}]
			attach(core.CellInfo{
				ID:               cell.ID,
				NPRB:             cell.NPRB,
				SlotsPerSubframe: cell.SlotsPerSubframe(),
				CBGBits:          nr.CodeBlockBits,
				Rate:             func() float64 { return ch.MCS().BitsPerPRB() },
				BER:              func() float64 { return ch.BER() },
			})
		}
		// attachLTE tracks the anchor's active LTE carrier set, preserving
		// any NR cells already attached to the monitor. The oracle's cell
		// set is the source of truth for "already attached": under the
		// Miss axis the monitor itself lags the desired set.
		attachLTE := func(active []*lte.Cell) {
			activeSet := map[int]bool{}
			for _, cid := range us.NRCellIDs {
				activeSet[cid] = true // NR attach/detach is handled separately
			}
			for _, c := range active {
				activeSet[c.ID] = true
				already := false
				for _, id := range probe.oracle.ActiveCellIDs() {
					if id == c.ID {
						already = true
					}
				}
				if !already {
					ch := channels[[2]int{fs.UE, c.ID}]
					attach(core.CellInfo{
						ID:   c.ID,
						NPRB: c.NPRB,
						Rate: func() float64 { return ch.MCS().BitsPerPRB() },
						BER:  func() float64 { return ch.BER() },
					})
				}
			}
			for _, id := range append([]int(nil), probe.oracle.ActiveCellIDs()...) {
				if !activeSet[id] {
					detach(id)
				}
			}
		}

		switch dev := devices[fs.UE].(type) {
		case *lte.UE:
			attachLTE(dev.ActiveCells())
			dev.OnActiveChange(attachLTE)
		case *nr.ENDC:
			anchor := dev.AnchorUE()
			attachLTE(anchor.ActiveCells())
			anchor.OnActiveChange(attachLTE)
			nrID := us.NRCellIDs[0]
			dev.OnSecondaryChange(func(active bool) {
				if active {
					attachNR(nrID)
				} else {
					detach(nrID)
				}
			})
		case *nr.UE:
			for _, cid := range us.NRCellIDs {
				attachNR(cid)
			}
		}
		for _, cid := range us.CellIDs {
			cells[cid].AttachMonitor(wrap(monitorFeed(sc, cells[cid], mon)))
			cells[cid].AttachMonitor(probe.oracle.OnSubframe)
		}
		for _, cid := range us.NRCellIDs {
			// NR control information feeds the monitor directly; the
			// bit-level PDCCH encode/decode path models the LTE control
			// channel only.
			nrCells[cid].AttachMonitor(wrap(mon.OnSubframe))
			nrCells[cid].AttachMonitor(probe.oracle.OnSubframe)
		}
		// The accuracy sampler runs once per primary-cell slot, attached
		// after both feeds so it observes fully ingested windows.
		sample := probe.sampler(pl.ueShard(us).Engine, us.ID)
		if len(us.CellIDs) > 0 {
			cells[us.CellIDs[0]].AttachMonitor(sample)
		} else {
			nrCells[us.NRCellIDs[0]].AttachMonitor(sample)
		}
	}

	// Truth-only capacity oracle for the measured flow when its scheme
	// never reads the monitor: series analytics need the ground-truth
	// trajectory for every scheme, not just the monitor-consuming ones.
	if sc.Series && len(sc.Flows) > 0 {
		fs := sc.Flows[0]
		if fs.Scheme != "fixed" && !SchemeUsesMonitor(fs.Scheme) {
			us := spec(fs.UE)
			attachTruthOracle(sc, pl.ueShard(us).Engine, us, devices[fs.UE], cells, nrCells, channels)
		}
	}

	// Flows.
	end := sc.Duration
	var sfu *rtc.SFU
	if sc.SFU != nil {
		sfu = buildSFUIngest(pl.core.Engine, sc)
	}
	for i := range sc.Flows {
		fs := &sc.Flows[i]
		stop := fs.Stop
		if stop == 0 {
			stop = end
		}
		var delay stats.DelayDist = &stats.DurationSeries{}
		if sc.StreamStats {
			delay = stats.NewDurationP2()
		}
		fr := &FlowResult{ID: fs.ID, Scheme: fs.Scheme,
			Tput: &stats.Series{}, Delay: delay}
		res.Flows = append(res.Flows, fr)
		if fs.SFULeg && sc.SFU == nil {
			panic(fmt.Sprintf("harness: flow %d is marked SFULeg but the scenario has no SFU", fs.ID))
		}
		dev := devices[fs.UE]
		ueSh := pl.ueShard(spec(fs.UE))
		ueEng := ueSh.Engine

		if fs.Scheme == "fixed" {
			ct := netsim.NewCrossTraffic(ueEng, dev, fs.FixedRate, fs.ID)
			// The OnOff fault competitor's on-transitions are injection
			// events for the recovery analytics; the competition family's
			// deliberate competitor is workload, not a fault.
			mark := sc.Faults.OnOff > 0 && fs.OnPeriod == faults.OnOffHalfPeriod &&
				fs.OffPeriod == faults.OnOffHalfPeriod
			scheduleOnOff(ueEng, ct, fs, stop, mark)
			continue
		}

		ctrl := newController(fs.Scheme)
		if p, ok := ctrl.(*core.Sender); ok && sc.MisreportGuard > 0 {
			p.MisreportGuard = sc.MisreportGuard
		}
		fb := flowFeedback(fs, fr, monitors, clientGroups)

		windows := stats.NewWindowed(100 * time.Millisecond)
		start := fs.Start
		fr.windows = windows
		fr.start, fr.stop = start, stop
		onData := func(now time.Duration, p *netsim.Packet, owd time.Duration) {
			if now < start || now > stop || p.Padding {
				return
			}
			windows.Add(now, p.Size)
			fr.Delay.AddDuration(owd)
		}

		switch {
		case sfu != nil && fs.SFULeg:
			attachSubscriber(ueSh, pl.core, sfu, fs, fr, dev, ctrl, fb, onData, end)
		case fs.Media != nil:
			attachMediaFlow(ueEng, fs, fr, dev, ctrl, fb, onData, end)
		default:
			var snd *cc.Sender
			ackLink := netsim.NewLink(ueEng, 0, fs.RTTBase/2, 0,
				netsim.HandlerFunc(func(now time.Duration, p *netsim.Packet) {
					snd.HandlePacket(now, p)
				}))
			rcv := cc.NewReceiver(ueEng, fs.ID, ackLink)
			rcv.Feedback = fb
			rcv.OnData = onData
			dev.RegisterFlow(fs.ID, rcv)

			// Data path: sender -> (internet bottleneck) -> tower -> UE.
			// The content server is pinned to its UE's cell shard, so the
			// whole loop is shard-local.
			bottleneck := netsim.NewLink(ueEng, fs.InternetRate, fs.RTTBase/2, fs.InternetQueue, dev)
			bottleneck.EnableQueueSeries(fs.ID)
			snd = cc.NewSender(ueEng, fs.ID, bottleneck, ctrl)
			fr.snd = snd
			ueEng.At(start, snd.Start)
			if stop < end {
				ueEng.At(stop, snd.Stop)
			}
		}
	}

	// PRB sampling for the fairness figures, on the primary cell's shard.
	if sc.PRBSampleEvery > 0 && len(sc.Cells) > 0 {
		eng := pl.cell(sc.Cells[0].ID).Engine
		primary := cells[sc.Cells[0].ID]
		acc := map[uint16]int{}
		subframes := 0
		rnti2ue := map[uint16]int{}
		for _, us := range sc.UEs {
			rnti2ue[us.RNTI] = us.ID
		}
		primary.AttachMonitor(func(rep *lte.SubframeReport) {
			for _, a := range rep.Allocs {
				if _, ok := rnti2ue[a.RNTI]; ok {
					acc[a.RNTI] += a.PRBs
				}
			}
			subframes++
		})
		eng.Every(sc.PRBSampleEvery, func() {
			res.PRBTimes = append(res.PRBTimes, eng.Now())
			for rnti, ueID := range rnti2ue {
				avg := 0.0
				if subframes > 0 {
					avg = float64(acc[rnti]) / float64(subframes)
				}
				res.PRBSamples[ueID] = append(res.PRBSamples[ueID], avg)
				acc[rnti] = 0
			}
			subframes = 0
		})
	}

	pl.cluster.RunUntil(sc.Duration)
	res.Trace = pl.cluster.Recorder()
	res.Series = pl.cluster.SeriesRecorder()
	if flRT != nil {
		res.Fluid = flRT.stats()
	}

	for i, fr := range res.Flows {
		if fr.windows != nil {
			fr.Tput = fr.windows.RatesMbps(fr.start, fr.stop)
			span := (fr.stop - fr.start).Seconds()
			var bytes float64
			for _, b := range fr.windows.Buckets() {
				bytes += b
			}
			if span > 0 {
				fr.AvgTputMbps = bytes * 8 / span / 1e6
			}
			fr.buildTimeline()
		}
		if fr.snd != nil {
			fr.Lost = fr.snd.LostPackets
			fr.Received = fr.snd.AckedPackets
		}
		if fr.msnd != nil && fr.Frames != nil {
			fr.Frames.SenderDrop = fr.msnd.FramesDropped
		}
		if fr.pbe != nil {
			fr.InternetFrac = fr.pbe.InternetFraction()
		}
		if SchemeUsesMonitor(fr.Scheme) {
			if pr := probes[sc.Flows[i].UE]; pr != nil {
				fr.PBEErrPct = pr.ErrPct()
			}
		}
	}
	for _, ue := range ues {
		if ue.Activations > 0 {
			res.CATriggered = true
		}
	}
	for _, e := range endcs {
		if e.Activations > 0 {
			res.CATriggered = true
			res.NRActivated = true
		}
		if e.AnchorUE().Activations > 0 {
			res.CATriggered = true
		}
	}
	return res
}

// device is the UE-side endpoint a flow terminates on, regardless of RAT:
// an LTE UE, a standalone 5G UE, or an EN-DC dual-connectivity UE.
type device interface {
	netsim.Handler
	RegisterFlow(flowID int, h netsim.Handler)
	SetDefaultHandler(h netsim.Handler)
}

func (fr *FlowResult) buildTimeline() {
	buckets := fr.windows.Buckets()
	// Pad to the flow's stop time so silent periods (a starved sender)
	// appear as zero-rate windows rather than a truncated series.
	n := int(fr.stop / fr.windows.Window)
	for i := 0; i < n; i++ {
		t := time.Duration(i) * fr.windows.Window
		if t < fr.start || t >= fr.stop {
			continue
		}
		var b float64
		if i < len(buckets) {
			b = buckets[i]
		}
		fr.TimelineT = append(fr.TimelineT, t)
		fr.TimelineR = append(fr.TimelineR, b*8/fr.windows.Window.Seconds()/1e6)
	}
}

// clientGroup shares one UE's capacity estimate across its concurrent PBE
// flows (§6.3.4: the client fairly allocates estimated capacity to its
// own connections).
type clientGroup struct {
	clients []*core.Client
}

type sharedFeedback struct {
	c   *core.Client
	grp *clientGroup
}

// Feedback divides the client's capacity feedback by the number of local
// PBE flows.
func (s *sharedFeedback) Feedback(now time.Duration, owd time.Duration, dataBytes int) (float64, bool) {
	rate, btl := s.c.Feedback(now, owd, dataBytes)
	n := len(s.grp.clients)
	if n > 1 {
		rate /= float64(n)
	}
	return rate, btl
}

// monitorFeed returns the lte.Monitor feeding rep into mon, optionally
// routing it through the PDCCH encode/blind-decode pipeline.
func monitorFeed(sc *Scenario, cell *lte.Cell, mon *core.Monitor) lte.Monitor {
	if !sc.MonitorDecodesPDCCH {
		return mon.OnSubframe
	}
	dec := pdcch.NewDecoder(0)
	return func(rep *lte.SubframeReport) {
		region := lte.EncodeReport(rep, 3)
		if region == nil {
			mon.OnSubframe(rep) // control region overflow: fall back
			return
		}
		mon.OnSubframe(lte.DecodeReport(region, rep.CellID, cell.Table, dec))
	}
}

func scheduleOnOff(eng *sim.Engine, ct *netsim.CrossTraffic, fs *FlowSpec, stop time.Duration, mark bool) {
	if fs.OnPeriod <= 0 {
		eng.At(fs.Start, ct.Start)
		eng.At(stop, ct.Stop)
		return
	}
	start := ct.Start
	if mark {
		// Same single event per on-transition; the series sample is a
		// passive observation inside it.
		start = func() {
			faults.MarkInjection(eng)
			ct.Start()
		}
	}
	var cycle func(at time.Duration)
	cycle = func(at time.Duration) {
		if at >= stop {
			return
		}
		eng.At(at, start)
		off := at + fs.OnPeriod
		if off > stop {
			off = stop
		}
		eng.At(off, ct.Stop)
		cycle(at + fs.OnPeriod + fs.OffPeriod)
	}
	cycle(fs.Start)
}

// flowFeedback builds the receiver-side feedback source a scheme needs:
// the PBE client (shared across the UE's PBE flows) or the GCC REMB
// estimator; nil for schemes without receiver feedback.
func flowFeedback(fs *FlowSpec, fr *FlowResult, monitors map[int]*core.Monitor, clientGroups map[int]*clientGroup) cc.FeedbackSource {
	switch fs.Scheme {
	case "pbe":
		client := core.NewClient(monitors[fs.UE])
		grp := clientGroups[fs.UE]
		grp.clients = append(grp.clients, client)
		fr.pbe = client
		return &sharedFeedback{c: client, grp: grp}
	case "gcc":
		return gcc.NewREMB()
	case "pbertc":
		return pbertc.NewFeedback(monitors[fs.UE])
	}
	return nil
}

// newController builds a controller by scheme name.
func newController(name string) cc.Controller {
	switch name {
	case "pbe":
		return core.NewSender()
	case "gcc":
		return gcc.New()
	case "pbertc":
		return pbertc.New()
	case "bbr":
		return bbr.New()
	case "cubic":
		return cubic.New()
	case "copa":
		return copa.New()
	case "verus":
		return verus.New()
	case "sprout":
		return sprout.New()
	case "pcc":
		return pcc.New()
	case "vivace":
		return vivace.New()
	}
	panic(fmt.Sprintf("harness: unknown scheme %q", name))
}
