// Package harness assembles end-to-end experiments: content servers
// running a congestion-control scheme, an optional Internet bottleneck,
// cellular cells with background control traffic, UEs with carrier
// aggregation, and per-flow statistics over 100 ms windows - the role
// Pantheon plays in the paper's methodology (§6.1).
package harness

import (
	"fmt"
	"time"

	"pbecc/internal/cc"
	"pbecc/internal/cc/bbr"
	"pbecc/internal/cc/copa"
	"pbecc/internal/cc/cubic"
	"pbecc/internal/cc/pcc"
	"pbecc/internal/cc/sprout"
	"pbecc/internal/cc/verus"
	"pbecc/internal/cc/vivace"
	"pbecc/internal/core"
	"pbecc/internal/lte"
	"pbecc/internal/netsim"
	"pbecc/internal/pdcch"
	"pbecc/internal/phy"
	"pbecc/internal/sim"
	"pbecc/internal/stats"
)

// Schemes lists every congestion-control algorithm under test, in the
// paper's order (§6.1).
var Schemes = []string{"pbe", "bbr", "cubic", "verus", "sprout", "copa", "pcc", "vivace"}

// CellSpec describes one component carrier.
type CellSpec struct {
	ID      int
	NPRB    int
	Table   phy.CQITable
	Control lte.ControlSource // nil = no control-plane chatter
}

// UESpec describes one mobile device.
type UESpec struct {
	ID          int
	RNTI        uint16
	CellIDs     []int // primary first
	RSSI        float64
	Trajectory  phy.Trajectory // overrides RSSI when non-nil
	FadingSigma float64
	CA          bool // carrier aggregation enabled
}

// FlowSpec describes one end-to-end flow from a content server to a UE.
type FlowSpec struct {
	ID     int
	UE     int
	Scheme string // one of Schemes, or "fixed" with FixedRate set
	Start  time.Duration
	Stop   time.Duration // 0 = run to scenario end

	RTTBase time.Duration // server<->tower round-trip propagation

	// Optional Internet bottleneck on the data path.
	InternetRate  float64
	InternetQueue int

	// FixedRate drives a constant-rate source instead of a controller.
	FixedRate float64

	// OnPeriod/OffPeriod, when set with Scheme "fixed", gate the source
	// on and off (the §6.3.3 controlled competitor).
	OnPeriod  time.Duration
	OffPeriod time.Duration
}

// Scenario is a complete experiment.
type Scenario struct {
	Name     string
	Seed     int64
	Duration time.Duration
	Cells    []CellSpec
	UEs      []UESpec
	Flows    []FlowSpec

	// PRBSampleEvery, when positive, samples each UE's primary-cell PRB
	// allocation (averaged over the interval) for the fairness figures.
	PRBSampleEvery time.Duration

	// MonitorDecodesPDCCH routes monitor input through the bit-level
	// PDCCH encode/blind-decode path instead of scheduler structs (the
	// decode-versus-oracle ablation). Slower; used by dedicated benches.
	MonitorDecodesPDCCH bool

	// DisableUserFilter turns off PBE-CC's control-traffic filter
	// (ablation of §4.2.1).
	DisableUserFilter bool

	// MisreportGuard configures the §7 server-side feedback validator.
	MisreportGuard float64
}

// FlowResult is one flow's measured performance.
type FlowResult struct {
	ID     int
	Scheme string

	Tput  *stats.Series         // Mbit/s per 100 ms window
	Delay *stats.DurationSeries // one-way delay per packet, ms

	AvgTputMbps float64
	Received    uint64
	Lost        uint64

	// PBE-only statistics.
	InternetFrac float64

	// Timeline series sampled every 100 ms (rate in Mbit/s, delay ms).
	TimelineT []time.Duration
	TimelineR []float64
	TimelineD []float64

	snd     *cc.Sender
	windows *stats.Windowed
	start   time.Duration
	stop    time.Duration
	pbe     *core.Client
}

// Result is a completed scenario.
type Result struct {
	Scenario *Scenario
	Flows    []*FlowResult

	// CATriggered reports whether any UE activated a secondary carrier.
	CATriggered bool

	// PRBSamples[ueIndex] holds the sampled primary-cell PRB shares.
	PRBTimes   []time.Duration
	PRBSamples map[int][]float64
}

// Run executes the scenario and collects per-flow statistics.
func Run(sc *Scenario) *Result {
	eng := sim.New(sc.Seed)
	res := &Result{Scenario: sc, PRBSamples: map[int][]float64{}}

	cells := map[int]*lte.Cell{}
	for _, cs := range sc.Cells {
		table := cs.Table
		if table == 0 {
			table = phy.Table64QAM
		}
		cells[cs.ID] = lte.NewCell(eng, cs.ID, cs.NPRB, table, cs.Control)
	}

	ues := map[int]*lte.UE{}
	channels := map[[2]int]*phy.Channel{} // (ueID, cellID) -> channel
	for _, us := range sc.UEs {
		ue := lte.NewUE(eng, us.ID, us.RNTI)
		for _, cid := range us.CellIDs {
			cell := cells[cid]
			var fading *phy.Fading
			if us.FadingSigma > 0 {
				fading = phy.NewFading(us.FadingSigma, 50*time.Millisecond, eng.Rand())
			}
			var ch *phy.Channel
			if us.Trajectory != nil {
				ch = phy.NewMobileChannel(us.Trajectory, cell.Table, fading)
			} else {
				ch = phy.NewStaticChannel(us.RSSI, cell.Table, fading)
			}
			channels[[2]int{us.ID, cid}] = ch
			ue.AddCell(cell, ch)
		}
		ue.SetCarrierAggregation(us.CA)
		ue.Start()
		ues[us.ID] = ue
	}

	// PBE monitors: one per UE hosting at least one PBE flow, fed by every
	// configured cell but tracking only the active set.
	monitors := map[int]*core.Monitor{}
	clientGroups := map[int]*clientGroup{}
	for _, fs := range sc.Flows {
		if fs.Scheme != "pbe" {
			continue
		}
		us := ueSpec(sc, fs.UE)
		if _, ok := monitors[fs.UE]; ok {
			continue
		}
		mon := core.NewMonitor(us.RNTI)
		mon.UseFilter = !sc.DisableUserFilter
		monitors[fs.UE] = mon
		clientGroups[fs.UE] = &clientGroup{}
		ue := ues[fs.UE]
		attach := func(active []*lte.Cell) {
			activeSet := map[int]bool{}
			for _, c := range active {
				activeSet[c.ID] = true
				already := false
				for _, id := range mon.ActiveCellIDs() {
					if id == c.ID {
						already = true
					}
				}
				if !already {
					ch := channels[[2]int{fs.UE, c.ID}]
					mon.AttachCell(core.CellInfo{
						ID:   c.ID,
						NPRB: c.NPRB,
						Rate: func() float64 { return ch.MCS().BitsPerPRB() },
						BER:  func() float64 { return ch.BER() },
					})
				}
			}
			for _, id := range append([]int(nil), mon.ActiveCellIDs()...) {
				if !activeSet[id] {
					mon.DetachCell(id)
				}
			}
		}
		attach(ue.ActiveCells())
		ue.OnActiveChange(attach)
		for _, cid := range us.CellIDs {
			cells[cid].AttachMonitor(monitorFeed(sc, cells[cid], mon))
		}
	}

	// Flows.
	end := sc.Duration
	for i := range sc.Flows {
		fs := &sc.Flows[i]
		stop := fs.Stop
		if stop == 0 {
			stop = end
		}
		fr := &FlowResult{ID: fs.ID, Scheme: fs.Scheme,
			Tput: &stats.Series{}, Delay: &stats.DurationSeries{}}
		res.Flows = append(res.Flows, fr)
		ue := ues[fs.UE]

		if fs.Scheme == "fixed" {
			ct := netsim.NewCrossTraffic(eng, ue, fs.FixedRate, fs.ID)
			scheduleOnOff(eng, ct, fs, stop)
			continue
		}

		ctrl := newController(fs.Scheme)
		if p, ok := ctrl.(*core.Sender); ok && sc.MisreportGuard > 0 {
			p.MisreportGuard = sc.MisreportGuard
		}

		var snd *cc.Sender
		ackLink := netsim.NewLink(eng, 0, fs.RTTBase/2, 0,
			netsim.HandlerFunc(func(now time.Duration, p *netsim.Packet) {
				snd.HandlePacket(now, p)
			}))
		rcv := cc.NewReceiver(eng, fs.ID, ackLink)
		if fs.Scheme == "pbe" {
			client := core.NewClient(monitors[fs.UE])
			grp := clientGroups[fs.UE]
			grp.clients = append(grp.clients, client)
			rcv.Feedback = &sharedFeedback{c: client, grp: grp}
			fr.pbe = client
		}
		windows := stats.NewWindowed(100 * time.Millisecond)
		start := fs.Start
		rcv.OnData = func(now time.Duration, p *netsim.Packet, owd time.Duration) {
			if now < start || now > stop {
				return
			}
			windows.Add(now, p.Size)
			fr.Delay.AddDuration(owd)
		}
		ue.RegisterFlow(fs.ID, rcv)

		// Data path: sender -> (internet bottleneck) -> tower -> UE.
		var dataPath netsim.Handler = ue
		dataPath = netsim.NewLink(eng, fs.InternetRate, fs.RTTBase/2, fs.InternetQueue, dataPath)
		snd = cc.NewSender(eng, fs.ID, dataPath, ctrl)
		fr.snd = snd
		fr.windows = windows
		fr.start, fr.stop = start, stop
		eng.At(start, snd.Start)
		if stop < end {
			eng.At(stop, snd.Stop)
		}
	}

	// PRB sampling for the fairness figures.
	if sc.PRBSampleEvery > 0 && len(sc.Cells) > 0 {
		primary := cells[sc.Cells[0].ID]
		acc := map[uint16]int{}
		subframes := 0
		rnti2ue := map[uint16]int{}
		for _, us := range sc.UEs {
			rnti2ue[us.RNTI] = us.ID
		}
		primary.AttachMonitor(func(rep *lte.SubframeReport) {
			for _, a := range rep.Allocs {
				if _, ok := rnti2ue[a.RNTI]; ok {
					acc[a.RNTI] += a.PRBs
				}
			}
			subframes++
		})
		eng.Every(sc.PRBSampleEvery, func() {
			res.PRBTimes = append(res.PRBTimes, eng.Now())
			for rnti, ueID := range rnti2ue {
				avg := 0.0
				if subframes > 0 {
					avg = float64(acc[rnti]) / float64(subframes)
				}
				res.PRBSamples[ueID] = append(res.PRBSamples[ueID], avg)
				acc[rnti] = 0
			}
			subframes = 0
		})
	}

	eng.RunUntil(sc.Duration)

	for _, fr := range res.Flows {
		if fr.windows != nil {
			fr.Tput = fr.windows.RatesMbps(fr.start, fr.stop)
			span := (fr.stop - fr.start).Seconds()
			var bytes float64
			for _, b := range fr.windows.Buckets() {
				bytes += b
			}
			if span > 0 {
				fr.AvgTputMbps = bytes * 8 / span / 1e6
			}
			fr.buildTimeline()
		}
		if fr.snd != nil {
			fr.Lost = fr.snd.LostPackets
			fr.Received = fr.snd.AckedPackets
		}
		if fr.pbe != nil {
			fr.InternetFrac = fr.pbe.InternetFraction()
		}
	}
	for _, ue := range ues {
		if ue.Activations > 0 {
			res.CATriggered = true
		}
	}
	return res
}

func (fr *FlowResult) buildTimeline() {
	buckets := fr.windows.Buckets()
	// Pad to the flow's stop time so silent periods (a starved sender)
	// appear as zero-rate windows rather than a truncated series.
	n := int(fr.stop / fr.windows.Window)
	for i := 0; i < n; i++ {
		t := time.Duration(i) * fr.windows.Window
		if t < fr.start || t >= fr.stop {
			continue
		}
		var b float64
		if i < len(buckets) {
			b = buckets[i]
		}
		fr.TimelineT = append(fr.TimelineT, t)
		fr.TimelineR = append(fr.TimelineR, b*8/fr.windows.Window.Seconds()/1e6)
	}
}

// clientGroup shares one UE's capacity estimate across its concurrent PBE
// flows (§6.3.4: the client fairly allocates estimated capacity to its
// own connections).
type clientGroup struct {
	clients []*core.Client
}

type sharedFeedback struct {
	c   *core.Client
	grp *clientGroup
}

// Feedback divides the client's capacity feedback by the number of local
// PBE flows.
func (s *sharedFeedback) Feedback(now time.Duration, owd time.Duration, dataBytes int) (float64, bool) {
	rate, btl := s.c.Feedback(now, owd, dataBytes)
	n := len(s.grp.clients)
	if n > 1 {
		rate /= float64(n)
	}
	return rate, btl
}

// monitorFeed returns the lte.Monitor feeding rep into mon, optionally
// routing it through the PDCCH encode/blind-decode pipeline.
func monitorFeed(sc *Scenario, cell *lte.Cell, mon *core.Monitor) lte.Monitor {
	if !sc.MonitorDecodesPDCCH {
		return mon.OnSubframe
	}
	dec := pdcch.NewDecoder(0)
	return func(rep *lte.SubframeReport) {
		region := lte.EncodeReport(rep, 3)
		if region == nil {
			mon.OnSubframe(rep) // control region overflow: fall back
			return
		}
		mon.OnSubframe(lte.DecodeReport(region, rep.CellID, cell.Table, dec))
	}
}

func scheduleOnOff(eng *sim.Engine, ct *netsim.CrossTraffic, fs *FlowSpec, stop time.Duration) {
	if fs.OnPeriod <= 0 {
		eng.At(fs.Start, ct.Start)
		eng.At(stop, ct.Stop)
		return
	}
	var cycle func(at time.Duration)
	cycle = func(at time.Duration) {
		if at >= stop {
			return
		}
		eng.At(at, ct.Start)
		off := at + fs.OnPeriod
		if off > stop {
			off = stop
		}
		eng.At(off, ct.Stop)
		cycle(at + fs.OnPeriod + fs.OffPeriod)
	}
	cycle(fs.Start)
}

// newController builds a controller by scheme name.
func newController(name string) cc.Controller {
	switch name {
	case "pbe":
		return core.NewSender()
	case "bbr":
		return bbr.New()
	case "cubic":
		return cubic.New()
	case "copa":
		return copa.New()
	case "verus":
		return verus.New()
	case "sprout":
		return sprout.New()
	case "pcc":
		return pcc.New()
	case "vivace":
		return vivace.New()
	}
	panic(fmt.Sprintf("harness: unknown scheme %q", name))
}

func ueSpec(sc *Scenario, id int) *UESpec {
	for i := range sc.UEs {
		if sc.UEs[i].ID == id {
			return &sc.UEs[i]
		}
	}
	panic(fmt.Sprintf("harness: unknown UE %d", id))
}
