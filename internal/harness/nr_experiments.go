package harness

import (
	"fmt"
	"time"

	"pbecc/internal/nr"
	"pbecc/internal/trace"
)

// The nr-* experiments exercise the 5G NR subsystem: single-cell
// throughput across schemes, the mmWave blockage scenario, EN-DC dual
// connectivity, and competition on an NR cell. They have no counterpart
// figure in the paper - the paper's testbed was LTE-only - but reproduce
// the behaviours its 5G discussion predicts: the same endpoint capacity
// measurement works per slot instead of per subframe, and reacting at
// physical-layer timescales matters even more when mmWave capacity
// collapses in milliseconds.

// NRScenario builds a single-UE, single-NR-cell scenario: the 5G analogue
// of LocationScenario. A busy cell adds control-plane chatter and two
// background data users.
func NRScenario(scheme string, mu, bwMHz int, rssi float64, busy bool, dur time.Duration) *Scenario {
	sc := &Scenario{
		Name:     fmt.Sprintf("nr-mu%d-%dmhz-%s", mu, bwMHz, scheme),
		Seed:     int64(3000 + mu),
		Duration: dur,
	}
	cell := NRCellSpec{ID: 101, Mu: mu, BandwidthMHz: bwMHz}
	if busy {
		cell.Control = trace.Busy()
	} else {
		cell.Control = trace.Idle()
	}
	sc.NRCells = []NRCellSpec{cell}
	sc.UEs = append(sc.UEs, UESpec{ID: 1, RNTI: 61, NRCellIDs: []int{101}, RSSI: rssi, FadingSigma: 1.5})
	sc.Flows = append(sc.Flows, FlowSpec{ID: 1, UE: 1, Scheme: scheme, Start: 0, RTTBase: 30 * time.Millisecond})
	if busy {
		sc.UEs = append(sc.UEs,
			UESpec{ID: 2, RNTI: 62, NRCellIDs: []int{101}, RSSI: rssi + 3},
			UESpec{ID: 3, RNTI: 63, NRCellIDs: []int{101}, RSSI: rssi - 4},
		)
		sc.Flows = append(sc.Flows,
			FlowSpec{ID: 2, UE: 2, Scheme: "fixed", FixedRate: 60e6, Start: 0},
			FlowSpec{ID: 3, UE: 3, Scheme: "fixed", FixedRate: 30e6,
				Start: dur / 4, OnPeriod: dur / 4, OffPeriod: dur / 8},
		)
	}
	return sc
}

// NRTput measures every scheme on a wide sub-6 NR cell (µ=1, 100 MHz,
// 273 PRBs), idle and busy.
func NRTput(quick bool) []Table {
	dur := 6 * time.Second
	schemes := Schemes
	if quick {
		dur = 2 * time.Second
		schemes = []string{"pbe", "bbr", "cubic"}
	}
	t := &Table{ID: "nr-tput", Title: "5G NR µ=1 100 MHz cell: throughput and delay per scheme",
		Header: []string{"scheme", "links", "avg tput(Mbit/s)", "p50 delay(ms)", "p95 delay(ms)"}}
	for _, busy := range []bool{false, true} {
		label := "idle"
		if busy {
			label = "busy"
		}
		for _, s := range schemes {
			f := Run(NRScenario(s, 1, 100, -88, busy, dur)).Flows[0]
			t.Rows = append(t.Rows, []string{s, label, f1(f.AvgTputMbps),
				f1(f.Delay.Percentile(50)), f1(f.Delay.Percentile(95))})
		}
	}
	t.Notes = append(t.Notes,
		"273 PRBs at 2000 slots/s, 256-QAM: several hundred Mbit/s of carrier capacity",
		"PBE-CC's per-slot capacity feedback needs no 5G-specific changes (the paper's §8 claim)")
	return []Table{*t}
}

// nrBlockageScenario is the mmWave profile: µ=3 (120 kHz SCS, 0.125 ms
// slots) at 100 MHz with an abrupt 35 dB blockage window.
func nrBlockageScenario(scheme string, dur, blockStart, blockEnd time.Duration) *Scenario {
	sc := &Scenario{
		Name:     "nr-blockage-" + scheme,
		Seed:     3100,
		Duration: dur,
		NRCells:  []NRCellSpec{{ID: 101, Mu: 3, BandwidthMHz: 100, Control: trace.Idle()}},
		UEs: []UESpec{{ID: 1, RNTI: 61, NRCellIDs: []int{101},
			NRTrajectory: nr.BlockageTrajectory(-80, 35, blockStart, blockEnd)}},
		Flows: []FlowSpec{{ID: 1, UE: 1, Scheme: scheme, Start: 0, RTTBase: 20 * time.Millisecond}},
	}
	return sc
}

// NRBlockage runs PBE-CC and a loss-based baseline through an abrupt
// mmWave blockage: the carrier collapses from ~900 to ~10 Mbit/s within
// 10 ms, holds, and recovers.
func NRBlockage(quick bool) []Table {
	dur := 8 * time.Second
	blockStart, blockEnd := 3*time.Second, 5*time.Second
	if quick {
		dur = 4 * time.Second
		blockStart, blockEnd = 1500*time.Millisecond, 2500*time.Millisecond
	}
	res := map[string]*FlowResult{}
	for _, s := range []string{"pbe", "cubic", "bbr"} {
		res[s] = Run(nrBlockageScenario(s, dur, blockStart, blockEnd)).Flows[0]
	}
	timeline := &Table{ID: "nr-blockage", Title: "mmWave blockage timeline (250 ms averages, Mbit/s)",
		Header: []string{"t(s)", "pbe", "cubic", "bbr", "blocked"}}
	for from := time.Duration(0); from < dur; from += 250 * time.Millisecond {
		blocked := "-"
		if from >= blockStart && from < blockEnd {
			blocked = "BLOCKED"
		}
		timeline.Rows = append(timeline.Rows, []string{
			f1(from.Seconds()),
			f1(timelineAvg(res["pbe"], from, from+250*time.Millisecond)),
			f1(timelineAvg(res["cubic"], from, from+250*time.Millisecond)),
			f1(timelineAvg(res["bbr"], from, from+250*time.Millisecond)),
			blocked})
	}
	delays := &Table{ID: "nr-blockage-delay", Title: "mmWave blockage: one-way delay per scheme",
		Header: []string{"scheme", "avg delay(ms)", "p95 delay(ms)", "max delay(ms)"}}
	for _, s := range []string{"pbe", "cubic", "bbr"} {
		f := res[s]
		delays.Rows = append(delays.Rows, []string{s, f1(f.Delay.Mean()),
			f1(f.Delay.Percentile(95)), f1(f.Delay.Max())})
	}
	delays.Notes = append(delays.Notes,
		"PBE reads the collapse off the control channel within a few slots and paces down;",
		"loss-based senders keep pushing into the stalled queue until drops force them off")
	return []Table{*timeline, *delays}
}

// NRDualConnectivity compares an EN-DC device (LTE anchor + NR µ=1
// 100 MHz secondary) against the same device locked to LTE.
func NRDualConnectivity(quick bool) []Table {
	dur := 6 * time.Second
	schemes := []string{"pbe", "bbr"}
	if quick {
		dur = 3 * time.Second
		schemes = []string{"pbe"}
	}
	t := &Table{ID: "nr-dc", Title: "EN-DC: LTE anchor + NR secondary vs LTE-only",
		Header: []string{"scheme", "lte-only tput", "en-dc tput", "gain", "nr activated"}}
	for _, s := range schemes {
		lteOnly := &Scenario{
			Name: "nr-dc-lte-" + s, Seed: 3200, Duration: dur,
			Cells: []CellSpec{{ID: 1, NPRB: 100, Control: trace.Idle()}},
			UEs:   []UESpec{{ID: 1, RNTI: 61, CellIDs: []int{1}, RSSI: -90}},
			Flows: []FlowSpec{{ID: 1, UE: 1, Scheme: s, Start: 0, RTTBase: 40 * time.Millisecond}},
		}
		endc := &Scenario{
			Name: "nr-dc-" + s, Seed: 3200, Duration: dur,
			Cells:   []CellSpec{{ID: 1, NPRB: 100, Control: trace.Idle()}},
			NRCells: []NRCellSpec{{ID: 101, Mu: 1, BandwidthMHz: 100, Control: trace.Idle()}},
			UEs: []UESpec{{ID: 1, RNTI: 61, CellIDs: []int{1}, NRCellIDs: []int{101},
				RSSI: -90}},
			Flows: []FlowSpec{{ID: 1, UE: 1, Scheme: s, Start: 0, RTTBase: 40 * time.Millisecond}},
		}
		a := Run(lteOnly).Flows[0]
		r := Run(endc)
		b := r.Flows[0]
		gain := 0.0
		if a.AvgTputMbps > 0 {
			gain = b.AvgTputMbps / a.AvgTputMbps
		}
		t.Rows = append(t.Rows, []string{s, f1(a.AvgTputMbps), f1(b.AvgTputMbps),
			f2(gain) + "x", fmt.Sprint(r.NRActivated)})
	}
	t.Notes = append(t.Notes,
		"the NR leg activates after ~100 ms of sustained anchor demand (EN-DC, 3GPP option 3);",
		"the monitor aggregates the 1 ms LTE subframe clock with the 0.5 ms NR slot clock")
	return []Table{*t}
}

// NRCompete runs each scheme against an on-off 300 Mbit/s competitor on a
// shared NR cell - the §6.3.3 controlled-competition experiment scaled to
// NR rates.
func NRCompete(quick bool) []Table {
	dur := 16 * time.Second
	schemes := []string{"pbe", "bbr", "cubic", "copa"}
	if quick {
		dur = 6 * time.Second
		schemes = []string{"pbe", "bbr", "cubic"}
	}
	t := &Table{ID: "nr-compete", Title: "NR cell competition: on-off 300 Mbit/s competitor",
		Header: []string{"scheme", "avg tput(Mbit/s)", "avg delay(ms)", "p95 delay(ms)"}}
	for _, s := range schemes {
		f := Run(CompetitionScenario(s, Params{Duration: dur, RAT: RATNR})).Flows[0]
		t.Rows = append(t.Rows, []string{s, f1(f.AvgTputMbps), f1(f.Delay.Mean()),
			f1(f.Delay.Percentile(95))})
	}
	t.Notes = append(t.Notes,
		"PBE tracks the competitor's slot-level grants and concedes the fair share without queueing")
	return []Table{*t}
}
