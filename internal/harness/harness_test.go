package harness

import (
	"testing"
	"time"

	"pbecc/internal/stats"
)

// idleCellScenario: one UE alone on an idle 100-PRB cell at -93 dBm
// (~39.9 Mbit/s), no carrier aggregation, 40 ms base RTT.
func idleCellScenario(scheme string, seed int64) *Scenario {
	return &Scenario{
		Name: "idle-" + scheme, Seed: seed, Duration: 8 * time.Second,
		Cells: []CellSpec{{ID: 1, NPRB: 100}},
		UEs:   []UESpec{{ID: 1, RNTI: 61, CellIDs: []int{1}, RSSI: -93}},
		Flows: []FlowSpec{{ID: 1, UE: 1, Scheme: scheme, Start: 0, RTTBase: 40 * time.Millisecond}},
	}
}

func TestPBEIdleCellNearCapacityLowDelay(t *testing.T) {
	r := Run(idleCellScenario("pbe", 1))
	f := r.Flows[0]
	if f.AvgTputMbps < 30 {
		t.Fatalf("PBE avg throughput = %.1f Mbit/s on a ~40 Mbit/s cell", f.AvgTputMbps)
	}
	// One-way propagation is 20 ms + ~2 ms radio; PBE must keep queueing
	// minimal: p95 delay well under 60 ms.
	if p95 := f.Delay.Percentile(95); p95 > 60 {
		t.Fatalf("PBE p95 delay = %.1f ms, want < 60", p95)
	}
}

func TestBBRIdleCellHigherDelay(t *testing.T) {
	pbe := Run(idleCellScenario("pbe", 1)).Flows[0]
	bbr := Run(idleCellScenario("bbr", 1)).Flows[0]
	if bbr.AvgTputMbps < 30 {
		t.Fatalf("BBR avg throughput = %.1f", bbr.AvgTputMbps)
	}
	// The paper's headline: comparable throughput, PBE delay much lower
	// (Table 1: 95th-percentile reduction 1.5-2x).
	ratio := bbr.Delay.Percentile(95) / pbe.Delay.Percentile(95)
	if ratio < 1.2 {
		t.Fatalf("BBR/PBE p95 delay ratio = %.2f, want > 1.2 (paper: 1.5-2x)", ratio)
	}
	tputRatio := pbe.AvgTputMbps / bbr.AvgTputMbps
	if tputRatio < 0.85 {
		t.Fatalf("PBE/BBR throughput ratio = %.2f, want >= 0.85", tputRatio)
	}
}

func TestAllSchemesRunClean(t *testing.T) {
	for i, scheme := range Schemes {
		sc := idleCellScenario(scheme, int64(10+i))
		sc.Duration = 4 * time.Second
		r := Run(sc)
		f := r.Flows[0]
		if f.AvgTputMbps <= 0.05 {
			t.Fatalf("%s: throughput %.2f Mbit/s (starved)", scheme, f.AvgTputMbps)
		}
		if f.Delay.Len() == 0 {
			t.Fatalf("%s: no delay samples", scheme)
		}
	}
}

func TestPBEInternetBottleneck(t *testing.T) {
	sc := idleCellScenario("pbe", 3)
	sc.Flows[0].InternetRate = 10e6 // well below the ~40 Mbit/s cell
	sc.Flows[0].InternetQueue = 1 << 18
	r := Run(sc)
	f := r.Flows[0]
	if f.AvgTputMbps < 7 || f.AvgTputMbps > 10.5 {
		t.Fatalf("throughput = %.1f Mbit/s through a 10 Mbit/s Internet bottleneck", f.AvgTputMbps)
	}
	// The client must spend most of its time in the Internet-bottleneck
	// state.
	if f.InternetFrac < 0.5 {
		t.Fatalf("internet-state fraction = %.2f, want > 0.5", f.InternetFrac)
	}
}

func TestPBEWirelessBottleneckStateResidency(t *testing.T) {
	r := Run(idleCellScenario("pbe", 4))
	f := r.Flows[0]
	// §6.3.1: on idle links PBE spends ~4% of time in the Internet state.
	if f.InternetFrac > 0.15 {
		t.Fatalf("internet-state fraction = %.2f on a wireless-bottlenecked path", f.InternetFrac)
	}
}

func TestTwoPBEFlowsFairShare(t *testing.T) {
	sc := &Scenario{
		Name: "fair2", Seed: 5, Duration: 10 * time.Second,
		Cells: []CellSpec{{ID: 1, NPRB: 100}},
		UEs: []UESpec{
			{ID: 1, RNTI: 61, CellIDs: []int{1}, RSSI: -93},
			{ID: 2, RNTI: 62, CellIDs: []int{1}, RSSI: -93},
		},
		Flows: []FlowSpec{
			{ID: 1, UE: 1, Scheme: "pbe", Start: 0, RTTBase: 40 * time.Millisecond},
			{ID: 2, UE: 2, Scheme: "pbe", Start: 2 * time.Second, RTTBase: 40 * time.Millisecond},
		},
	}
	r := Run(sc)
	// Compare throughput over the contended span [3s,10s].
	var rates []float64
	for _, f := range r.Flows {
		var bytes float64
		buckets := f.windows.Buckets()
		for i, b := range buckets {
			if t := time.Duration(i) * 100 * time.Millisecond; t >= 3*time.Second {
				bytes += b
			}
		}
		rates = append(rates, bytes*8/7/1e6)
	}
	j := stats.Jain(rates)
	if j < 0.95 {
		t.Fatalf("Jain index = %.3f for two PBE flows (rates %.1f/%.1f), want > 0.95",
			j, rates[0], rates[1])
	}
	// And both keep low delay.
	for _, f := range r.Flows {
		if p95 := f.Delay.Percentile(95); p95 > 80 {
			t.Fatalf("flow %d p95 delay = %.1f ms under competition", f.ID, p95)
		}
	}
}

func TestControlledCompetitionTracking(t *testing.T) {
	// A PBE flow shares the cell with a 4s-on/4s-off 30 Mbit/s fixed-rate
	// competitor (the §6.3.3 structure, scaled). PBE must keep delay low
	// throughout and reclaim capacity during off periods.
	sc := &Scenario{
		Name: "competition", Seed: 6, Duration: 12 * time.Second,
		Cells: []CellSpec{{ID: 1, NPRB: 100}},
		UEs: []UESpec{
			{ID: 1, RNTI: 61, CellIDs: []int{1}, RSSI: -93},
			{ID: 2, RNTI: 62, CellIDs: []int{1}, RSSI: -93},
		},
		Flows: []FlowSpec{
			{ID: 1, UE: 1, Scheme: "pbe", Start: 0, RTTBase: 40 * time.Millisecond},
			{ID: 2, UE: 2, Scheme: "fixed", FixedRate: 30e6, Start: 2 * time.Second,
				OnPeriod: 4 * time.Second, OffPeriod: 4 * time.Second},
		},
	}
	r := Run(sc)
	f := r.Flows[0]
	if p95 := f.Delay.Percentile(95); p95 > 90 {
		t.Fatalf("PBE p95 delay = %.1f ms under on-off competition", p95)
	}
	// Rate during competitor-on (t in [3,5]s) must be well below the rate
	// during competitor-off (t in [7,9]s).
	onRate := timelineAvg(f, 3*time.Second, 5*time.Second)
	offRate := timelineAvg(f, 7*time.Second, 9*time.Second)
	if offRate < onRate*1.3 {
		t.Fatalf("PBE did not reclaim idle capacity: on=%.1f off=%.1f Mbit/s", onRate, offRate)
	}
}

func TestCarrierAggregationWithPBE(t *testing.T) {
	sc := &Scenario{
		Name: "ca", Seed: 7, Duration: 6 * time.Second,
		Cells: []CellSpec{{ID: 1, NPRB: 100}, {ID: 2, NPRB: 100}},
		UEs:   []UESpec{{ID: 1, RNTI: 61, CellIDs: []int{1, 2}, RSSI: -93, CA: true}},
		Flows: []FlowSpec{{ID: 1, UE: 1, Scheme: "pbe", Start: 0, RTTBase: 40 * time.Millisecond}},
	}
	r := Run(sc)
	if !r.CATriggered {
		t.Fatal("PBE never triggered carrier aggregation (Figure 15 expects it everywhere)")
	}
	f := r.Flows[0]
	// Aggregate capacity ~80 Mbit/s; PBE should exceed single-cell rate.
	if f.AvgTputMbps < 42 {
		t.Fatalf("aggregated throughput = %.1f Mbit/s, want > 42", f.AvgTputMbps)
	}
	if p95 := f.Delay.Percentile(95); p95 > 80 {
		t.Fatalf("p95 delay with CA = %.1f ms", p95)
	}
}

func TestConservativeSchemeNoCA(t *testing.T) {
	sc := &Scenario{
		Name: "noca", Seed: 8, Duration: 6 * time.Second,
		Cells: []CellSpec{{ID: 1, NPRB: 100}, {ID: 2, NPRB: 100}},
		UEs:   []UESpec{{ID: 1, RNTI: 61, CellIDs: []int{1, 2}, RSSI: -93, CA: true}},
		Flows: []FlowSpec{{ID: 1, UE: 1, Scheme: "sprout", Start: 0, RTTBase: 40 * time.Millisecond}},
	}
	r := Run(sc)
	_ = r // Sprout may or may not trigger; the assertion is on Copa below.
	sc2 := &Scenario{
		Name: "noca2", Seed: 8, Duration: 6 * time.Second,
		Cells: []CellSpec{{ID: 1, NPRB: 100}, {ID: 2, NPRB: 100}},
		UEs:   []UESpec{{ID: 1, RNTI: 61, CellIDs: []int{1, 2}, RSSI: -93, CA: true}},
		Flows: []FlowSpec{{ID: 1, UE: 1, Scheme: "copa", Start: 0, RTTBase: 40 * time.Millisecond}},
	}
	r2 := Run(sc2)
	if r2.Flows[0].AvgTputMbps > 40 && !r2.CATriggered {
		t.Fatal("copa exceeded one cell without CA - inconsistent")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := Run(idleCellScenario("pbe", 42)).Flows[0]
	b := Run(idleCellScenario("pbe", 42)).Flows[0]
	if a.AvgTputMbps != b.AvgTputMbps || a.Received != b.Received {
		t.Fatalf("nondeterministic: %.3f/%d vs %.3f/%d",
			a.AvgTputMbps, a.Received, b.AvgTputMbps, b.Received)
	}
}

func TestPRBSampling(t *testing.T) {
	sc := idleCellScenario("pbe", 9)
	sc.Duration = 2 * time.Second
	sc.PRBSampleEvery = 50 * time.Millisecond
	r := Run(sc)
	if len(r.PRBTimes) < 30 {
		t.Fatalf("PRB samples = %d, want ~40", len(r.PRBTimes))
	}
	samples := r.PRBSamples[1]
	peak := 0.0
	for _, v := range samples {
		if v > peak {
			peak = v
		}
	}
	if peak < 50 {
		t.Fatalf("peak PRB share = %.1f, want most of the 100-PRB cell", peak)
	}
}

func TestUnknownSchemePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown scheme did not panic")
		}
	}()
	newController("quic-magic")
}
