package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"pbecc/internal/core"
	"pbecc/internal/lte"
	"pbecc/internal/netsim"
	"pbecc/internal/phy"
	"pbecc/internal/sim"
	"pbecc/internal/stats"
	"pbecc/internal/trace"
)

// Table is one printable experiment output: the rows or series of a paper
// table or figure. The JSON tags serve cmd/pbebench's -json mode, so
// bench-trajectory tooling can consume rows without scraping text tables.
type Table struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintln(w, "  # "+n)
	}
	fmt.Fprintln(w)
}

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(quick bool) []Table
}

// Experiments returns the full per-figure registry (DESIGN.md §4).
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Summary speedup/delay-reduction vs BBR, Verus, Copa", Table1},
		{"fig2", "Secondary-carrier activation and deactivation trace", Figure2},
		{"fig3", "HARQ retransmission and reordering-buffer delay", Figure3},
		{"fig5", "Per-subframe PRB tracking across users", Figure5},
		{"fig6a", "Retransmission and protocol overhead vs offered load", Figure6a},
		{"fig6b", "Transport block error rate vs size", Figure6b},
		{"fig7", "Active-user counts and the control-traffic filter", Figure7},
		{"fig8", "One-way delay under increasing offered load", Figure8},
		{"fig9", "BBR's eight-phase pacing-gain cycle", Figure9},
		{"fig11", "Cell status micro-benchmark (users, physical rates)", Figure11},
		{"fig12", "Throughput / 95th-pct delay CDFs across locations", Figure12},
		{"fig13", "Order statistics at four indoor locations", Figure13},
		{"fig14", "Order statistics at two outdoor locations", Figure14},
		{"fig15", "Locations triggering carrier aggregation per scheme", Figure15},
		{"fig16", "Mobility: throughput and delay per scheme", Figure16},
		{"fig17", "Mobility timeline: PBE-CC vs BBR", Figure17},
		{"fig18", "Controlled competition: throughput and delay", Figure18},
		{"fig19", "Competition timeline: PBE-CC vs BBR", Figure19},
		{"fig20", "Two concurrent connections from one device", Figure20},
		{"fig21a", "Multi-user fairness (three PBE flows)", Figure21a},
		{"fig21b", "RTT fairness (52/64/297 ms flows)", Figure21b},
		{"fig21c", "TCP friendliness: two PBE flows + one BBR", Figure21c},
		{"fig21d", "TCP friendliness: two PBE flows + one CUBIC", Figure21d},
		{"ablation", "Design ablations: filter, drain, ramp, decode path, guard", Ablations},
		{"nr-tput", "5G NR single-cell throughput and delay per scheme", NRTput},
		{"nr-blockage", "mmWave blockage: PBE tracks the capacity collapse", NRBlockage},
		{"nr-dc", "EN-DC dual connectivity: LTE anchor + NR secondary", NRDualConnectivity},
		{"nr-compete", "NR cell competition: PBE vs on-off competitor", NRCompete},
	}
}

// RunExperiment runs one experiment by id.
func RunExperiment(id string, quick bool) ([]Table, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e.Run(quick), nil
		}
	}
	return nil, fmt.Errorf("unknown experiment %q", id)
}

func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func gridDuration(quick bool) time.Duration {
	if quick {
		return 2 * time.Second
	}
	return 6 * time.Second
}

func gridLocations(quick bool) []Location {
	locs := LocationGrid()
	if quick {
		return []Location{locs[0], locs[3], locs[11], locs[16]}
	}
	return locs
}

// runGrid measures one scheme across locations, returning per-location
// average throughput, average delay and 95th-percentile delay.
type gridPoint struct {
	loc      Location
	tput     float64
	avgDelay float64
	p95Delay float64
	caTrig   bool
	internet float64
}

func runGrid(scheme string, quick bool) []gridPoint {
	var pts []gridPoint
	dur := gridDuration(quick)
	for _, loc := range gridLocations(quick) {
		r := Run(LocationScenario(loc, scheme, dur))
		f := r.Flows[0]
		pts = append(pts, gridPoint{
			loc:      loc,
			tput:     f.AvgTputMbps,
			avgDelay: f.Delay.Mean(),
			p95Delay: f.Delay.Percentile(95),
			caTrig:   r.CATriggered,
			internet: f.InternetFrac,
		})
	}
	return pts
}

// Table1 reproduces the paper's Table 1: PBE-CC's throughput speedup and
// delay reduction versus BBR, Verus and Copa, averaged over busy and idle
// links separately.
func Table1(quick bool) []Table {
	schemes := []string{"pbe", "bbr", "verus", "copa"}
	grid := map[string][]gridPoint{}
	for _, s := range schemes {
		grid[s] = runGrid(s, quick)
	}
	t := &Table{
		ID:    "table1",
		Title: "PBE-CC speedup and delay reduction (paper Table 1)",
		Header: []string{"scheme", "links", "tput speedup",
			"p95 delay reduction", "avg delay reduction"},
	}
	var internetBusy, internetIdle stats.Series
	for _, base := range []string{"bbr", "verus", "copa"} {
		for _, busy := range []bool{true, false} {
			var speedup, p95red, avgred stats.Series
			for i, p := range grid["pbe"] {
				if p.loc.Busy != busy {
					continue
				}
				b := grid[base][i]
				if b.tput > 0 {
					speedup.Add(p.tput / b.tput)
				}
				if p.p95Delay > 0 {
					p95red.Add(b.p95Delay / p.p95Delay)
				}
				if p.avgDelay > 0 {
					avgred.Add(b.avgDelay / p.avgDelay)
				}
			}
			label := "idle"
			if busy {
				label = "busy"
			}
			t.Rows = append(t.Rows, []string{base, label,
				f2(speedup.Mean()) + "x", f2(p95red.Mean()) + "x", f2(avgred.Mean()) + "x"})
		}
	}
	for _, p := range grid["pbe"] {
		if p.loc.Busy {
			internetBusy.Add(p.internet)
		} else {
			internetIdle.Add(p.internet)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("PBE time in Internet-bottleneck state: busy %.1f%%, idle %.1f%% (paper: 18%%/4%%)",
			100*internetBusy.Mean(), 100*internetIdle.Mean()),
		"paper: vs BBR busy 1.04x/1.54x/1.39x, idle 1.10x/2.07x/1.84x;"+
			" vs Verus busy 1.25x/3.97x/2.53x; vs Copa busy 10.35x/0.80x/0.80x")
	return []Table{*t}
}

// Figure2 reproduces the carrier activation/deactivation trace: a fixed
// 40 Mbit/s offered load exceeding the primary cell, dropping to 6 Mbit/s.
func Figure2(quick bool) []Table {
	eng := sim.New(2)
	primary := lte.NewCell(eng, 1, 100, phy.Table64QAM, nil)
	secondary := lte.NewCell(eng, 2, 100, phy.Table64QAM, nil)
	ue := lte.NewUE(eng, 1, 61)
	ue.AddCell(primary, phy.NewStaticChannel(-93, phy.Table64QAM, nil))
	ue.AddCell(secondary, phy.NewStaticChannel(-93, phy.Table64QAM, nil))
	delays := map[int]*stats.DurationSeries{}
	ue.SetDefaultHandler(netsim.HandlerFunc(func(now time.Duration, p *netsim.Packet) {
		b := int(now / (200 * time.Millisecond))
		if delays[b] == nil {
			delays[b] = &stats.DurationSeries{}
		}
		delays[b].AddDuration(now - p.SentAt)
	}))
	ue.Start()
	var prb1, prb2 []int
	primary.AttachMonitor(func(rep *lte.SubframeReport) {
		s := 0
		for _, a := range rep.Allocs {
			if a.RNTI == 61 {
				s += a.PRBs
			}
		}
		prb1 = append(prb1, s)
	})
	secondary.AttachMonitor(func(rep *lte.SubframeReport) {
		s := 0
		for _, a := range rep.Allocs {
			if a.RNTI == 61 {
				s += a.PRBs
			}
		}
		prb2 = append(prb2, s)
	})
	high := netsim.NewCrossTraffic(eng, ue, 40e6, 1)
	low := netsim.NewCrossTraffic(eng, ue, 6e6, 1)
	eng.At(0, high.Start)
	eng.At(2*time.Second, high.Stop)
	eng.At(2*time.Second, low.Start)
	eng.RunUntil(4 * time.Second)

	t := &Table{ID: "fig2", Title: "Carrier activation at 40 Mbit/s, deactivation after drop to 6 Mbit/s",
		Header: []string{"t(s)", "primary PRBs", "secondary PRBs", "avg delay(ms)"}}
	step := 200
	for ms := 0; ms+step <= 4000; ms += step {
		var s1, s2 int
		for i := ms; i < ms+step && i < len(prb1); i++ {
			s1 += prb1[i]
			if i < len(prb2) {
				s2 += prb2[i]
			}
		}
		d := 0.0
		if ds := delays[ms/step]; ds != nil {
			d = ds.Mean()
		}
		t.Rows = append(t.Rows, []string{
			f1(float64(ms) / 1000),
			f1(float64(s1) / float64(step)), f1(float64(s2) / float64(step)), f1(d)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("activations=%d deactivations=%d (paper: activate ~0.13s, deactivate after rate drop)",
			ue.Activations, ue.Deactivations))
	return []Table{*t}
}

// Figure3 reproduces the HARQ retransmission/reordering delay: one failed
// transport block delays its packets by 8 ms and buffers later blocks.
func Figure3(quick bool) []Table {
	eng := sim.New(3)
	cell := lte.NewCell(eng, 1, 100, phy.Table64QAM, nil)
	cell.ErrorModel = func(rnti uint16, seq uint64, attempt, bits int, ber float64) bool {
		return seq == 2 && attempt == 0 // fail the third TB once
	}
	ue := lte.NewUE(eng, 1, 61)
	ue.AddCell(cell, phy.NewStaticChannel(-85, phy.Table64QAM, nil))
	ue.SetCarrierAggregation(false)
	type rel struct {
		seq     uint64
		sent    time.Duration
		release time.Duration
	}
	var rels []rel
	ue.SetDefaultHandler(netsim.HandlerFunc(func(now time.Duration, p *netsim.Packet) {
		rels = append(rels, rel{p.Seq, p.SentAt, now})
	}))
	ue.Start()
	for i := 0; i < 400; i++ {
		ue.HandlePacket(0, &netsim.Packet{FlowID: 1, Seq: uint64(i), Size: netsim.MSS})
	}
	eng.RunUntil(40 * time.Millisecond)

	t := &Table{ID: "fig3", Title: "Reordering-buffer release after one HARQ retransmission",
		Header: []string{"packet", "released(ms)", "extra delay(ms)"}}
	base := time.Duration(0)
	for i, r := range rels {
		if i == 0 {
			base = r.release
		}
		if i > 120 {
			break
		}
		if i%10 != 0 && r.release == base {
			continue
		}
		extra := float64(r.release-base)/1e6 - float64(i)*0.0 // per-packet release offset
		t.Rows = append(t.Rows, []string{fmt.Sprint(r.seq),
			f2(float64(r.release) / 1e6), f2(extra)})
		base = r.release
	}
	t.Notes = append(t.Notes, "the failed TB's packets and all buffered successors release together 8 ms late")
	return []Table{*t}
}

// Figure5 shows per-subframe PRB occupancy as flows start and stop.
func Figure5(quick bool) []Table {
	eng := sim.New(5)
	cell := lte.NewCell(eng, 1, 100, phy.Table64QAM, nil)
	var rows [][]string
	cell.AttachMonitor(func(rep *lte.SubframeReport) {
		per := map[uint16]int{}
		for _, a := range rep.Allocs {
			per[a.RNTI] += a.PRBs
		}
		if rep.Subframe%50 != 0 {
			return
		}
		rows = append(rows, []string{
			fmt.Sprint(rep.Subframe),
			fmt.Sprint(per[61]), fmt.Sprint(per[62]), fmt.Sprint(per[63]),
			fmt.Sprint(rep.IdlePRBs())})
	})
	mk := func(id int, rnti uint16) *lte.UE {
		u := lte.NewUE(eng, id, rnti)
		u.AddCell(cell, phy.NewStaticChannel(-93, phy.Table64QAM, nil))
		u.SetCarrierAggregation(false)
		u.SetDefaultHandler(&netsim.Sink{Pool: netsim.PoolOf(eng)})
		u.Start()
		return u
	}
	u1, u2, u3 := mk(1, 61), mk(2, 62), mk(3, 63)
	c1 := netsim.NewCrossTraffic(eng, u1, 60e6, 1)
	c2 := netsim.NewCrossTraffic(eng, u2, 60e6, 2)
	c3 := netsim.NewCrossTraffic(eng, u3, 10e6, 3) // rate-limited user
	eng.At(0, c1.Start)
	eng.At(0, c3.Start)
	eng.At(300*time.Millisecond, c2.Start)
	eng.At(600*time.Millisecond, c2.Stop)
	eng.RunUntil(time.Second)
	t := &Table{ID: "fig5", Title: "PRBs per user as flows start/stop (user2 active 0.3-0.6s)",
		Header: []string{"subframe", "user1", "user2", "user3", "idle"}, Rows: rows}
	t.Notes = append(t.Notes, "user3's offered load is limited; others absorb freed PRBs")
	return []Table{*t}
}

// Figure6a measures retransmission overhead and protocol overhead versus
// offered load at two signal strengths.
func Figure6a(quick bool) []Table {
	t := &Table{ID: "fig6a", Title: "Capacity overheads vs offered load",
		Header: []string{"rssi(dBm)", "load(Mbit/s)", "retx(%)", "protocol(%)"}}
	loads := []float64{5, 10, 20, 30, 40}
	if quick {
		loads = []float64{10, 40}
	}
	for _, rssi := range []float64{-98, -113} {
		for _, load := range loads {
			eng := sim.New(int64(60 + int(load)))
			cell := lte.NewCell(eng, 1, 100, phy.Table64QAM, nil)
			ue := lte.NewUE(eng, 1, 61)
			ue.AddCell(cell, phy.NewStaticChannel(rssi, phy.Table64QAM, nil))
			ue.SetCarrierAggregation(false)
			ue.SetDefaultHandler(&netsim.Sink{Pool: netsim.PoolOf(eng)})
			ue.Start()
			src := netsim.NewCrossTraffic(eng, ue, load*1e6, 1)
			src.Start()
			eng.RunUntil(3 * time.Second)
			total := cell.DataPRBs + cell.RetxPRBs
			retx := 0.0
			if total > 0 {
				retx = 100 * float64(cell.RetxPRBs) / float64(total)
			}
			t.Rows = append(t.Rows, []string{f1(rssi), f1(load), f2(retx),
				f2(100 * phy.ProtocolOverhead)})
		}
	}
	t.Notes = append(t.Notes, "retransmission overhead grows with load (larger TBs); protocol overhead constant 6.8%")
	return []Table{*t}
}

// Figure6b tabulates the transport-block error model against its BER fits.
func Figure6b(quick bool) []Table {
	t := &Table{ID: "fig6b", Title: "TB error rate vs size, 1-(1-p)^L",
		Header: []string{"TB size(kbit)", "p=1e-6", "p=2e-6", "p=3e-6", "p=5e-6"}}
	for _, kbit := range []int{10, 20, 30, 40, 50, 60, 70} {
		row := []string{fmt.Sprint(kbit)}
		for _, p := range []float64{1e-6, 2e-6, 3e-6, 5e-6} {
			row = append(row, f2(phy.TBErrorRate(p, kbit*1000)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{*t}
}

// Figure7 measures the detected-user population on a busy cell and the
// effect of PBE-CC's Ta/Pa filter.
func Figure7(quick bool) []Table {
	dur := 20 * time.Second
	if quick {
		dur = 5 * time.Second
	}
	eng := sim.New(7)
	cell := lte.NewCell(eng, 1, 100, phy.Table64QAM, trace.Busy())
	mon := core.NewMonitor(61)
	mon.AttachCell(core.CellInfo{ID: 1, NPRB: 100, Rate: func() float64 { return 400 }})
	cell.AttachMonitor(mon.OnSubframe)
	var raw, filtered stats.Series
	cell.AttachMonitor(func(rep *lte.SubframeReport) {
		if rep.Subframe%40 != 0 {
			return
		}
		raw.Add(float64(mon.DetectedUsers(1)))
		filtered.Add(float64(mon.ActiveUsers(1)))
	})
	eng.RunUntil(dur)

	t := &Table{ID: "fig7", Title: "Active users per 40 ms window, raw vs filtered (Ta>1, Pa>4)",
		Header: []string{"percentile", "all users", "after filter"}}
	for _, p := range []float64{10, 25, 50, 75, 90, 100} {
		t.Rows = append(t.Rows, []string{f1(p), f1(raw.Percentile(p)), f1(filtered.Percentile(p))})
	}
	t.Rows = append(t.Rows, []string{"mean", f2(raw.Mean()), f2(filtered.Mean())})
	t.Notes = append(t.Notes, "paper: mean 15.8 raw (max 28), 1.3 after filtering")
	return []Table{*t}
}

// Figure8 measures the one-way delay distribution under rising fixed loads
// at -98 dBm: more load, larger TBs, more 8 ms HARQ steps.
func Figure8(quick bool) []Table {
	t := &Table{ID: "fig8", Title: "One-way delay vs offered load (8 ms HARQ steps)",
		Header: []string{"load(Mbit/s)", "min(ms)", "median(ms)", "p95(ms)", ">=8ms late(%)"}}
	for _, load := range []float64{6, 24, 36} {
		eng := sim.New(int64(80 + int(load)))
		cell := lte.NewCell(eng, 1, 100, phy.Table64QAM, nil)
		ue := lte.NewUE(eng, 1, 61)
		ue.AddCell(cell, phy.NewStaticChannel(-98, phy.Table64QAM, nil))
		ue.SetCarrierAggregation(false)
		var d stats.DurationSeries
		late := 0
		total := 0
		ue.SetDefaultHandler(netsim.HandlerFunc(func(now time.Duration, p *netsim.Packet) {
			owd := now - p.SentAt
			d.AddDuration(owd)
			total++
			if owd >= 10*time.Millisecond {
				late++
			}
		}))
		ue.Start()
		src := netsim.NewCrossTraffic(eng, ue, load*1e6, 1)
		src.Start()
		eng.RunUntil(3 * time.Second)
		frac := 0.0
		if total > 0 {
			frac = 100 * float64(late) / float64(total)
		}
		t.Rows = append(t.Rows, []string{f1(load), f2(d.Min()),
			f2(d.Percentile(50)), f2(d.Percentile(95)), f2(frac)})
	}
	t.Notes = append(t.Notes, "minimum delay stays at propagation; the delayed fraction grows with load")
	return []Table{*t}
}

// Figure9 prints BBR's ProbeBW gain cycle (validated in the bbr tests).
func Figure9(quick bool) []Table {
	t := &Table{ID: "fig9", Title: "BBR ProbeBW pacing-gain cycle (one RTprop per phase)",
		Header: []string{"phase", "gain"}}
	gains := []float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}
	for i, g := range gains {
		t.Rows = append(t.Rows, []string{fmt.Sprint(i + 1), f2(g)})
	}
	return []Table{*t}
}

// Figure11 reports the cell-status micro-benchmark: diurnal user counts
// and the physical-rate population.
func Figure11(quick bool) []Table {
	users := Table{ID: "fig11a", Title: "Distinct users per hour of day",
		Header: []string{"hour", "20MHz cell", "10MHz cell"}}
	for h := 0; h < 24; h++ {
		users.Rows = append(users.Rows, []string{fmt.Sprint(h),
			fmt.Sprint(trace.DiurnalUsers(100, h)), fmt.Sprint(trace.DiurnalUsers(50, h))})
	}
	users.Notes = append(users.Notes, "paper: peak 233/135, 12-20h averages 181/97, 10MHz off 0-3h")

	rates := Table{ID: "fig11b", Title: "CDF of user physical data rate (Mbit/s/PRB)",
		Header: []string{"percentile", "rate"}}
	eng := sim.New(11)
	var s stats.Series
	for i := 0; i < 20000; i++ {
		s.Add(trace.SampleUserRate(eng.Rand()))
	}
	for _, p := range []float64{10, 25, 50, 71.9, 77.4, 90, 100} {
		rates.Rows = append(rates.Rows, []string{f1(p), f2(s.Percentile(p))})
	}
	rates.Notes = append(rates.Notes, "paper: 71.9-77.4% of users below 0.9 (half of the 1.8 max)")
	return []Table{users, rates}
}

// Figure12 compares the four high-throughput schemes across the location
// grid: distribution of average throughput and 95th-percentile delay.
func Figure12(quick bool) []Table {
	schemes := []string{"pbe", "bbr", "cubic", "verus"}
	tput := Table{ID: "fig12a", Title: "Average throughput across locations (Mbit/s)",
		Header: []string{"percentile", "pbe", "bbr", "cubic", "verus"}}
	delay := Table{ID: "fig12b", Title: "95th-percentile delay across locations (ms)",
		Header: []string{"percentile", "pbe", "bbr", "cubic", "verus"}}
	res := map[string][]gridPoint{}
	for _, s := range schemes {
		res[s] = runGrid(s, quick)
	}
	for _, p := range []float64{10, 25, 50, 75, 90} {
		rowT := []string{f1(p)}
		rowD := []string{f1(p)}
		for _, s := range schemes {
			var ts, ds stats.Series
			for _, g := range res[s] {
				ts.Add(g.tput)
				ds.Add(g.p95Delay)
			}
			rowT = append(rowT, f1(ts.Percentile(p)))
			rowD = append(rowD, f1(ds.Percentile(p)))
		}
		tput.Rows = append(tput.Rows, rowT)
		delay.Rows = append(delay.Rows, rowD)
	}
	tput.Notes = append(tput.Notes, "paper Fig 12: PBE highest throughput at most locations")
	delay.Notes = append(delay.Notes, "paper Fig 12: PBE delay CDF far left of BBR/Verus")
	return []Table{tput, delay}
}

// orderStatsAt runs all eight schemes at a set of locations and reports
// the 10/25/50/75/90th percentiles of windowed throughput and delay.
func orderStatsAt(id, title string, locs []Location, quick bool) []Table {
	dur := 5 * time.Second
	if quick {
		dur = 2 * time.Second
	}
	var out []Table
	for _, loc := range locs {
		t := Table{ID: id, Title: fmt.Sprintf("%s @ %s", title, loc.Name),
			Header: []string{"scheme", "tput p10/p25/p50/p75/p90 (Mbit/s)", "delay p10/p25/p50/p75/p90 (ms)"}}
		for _, s := range Schemes {
			r := Run(LocationScenario(loc, s, dur))
			f := r.Flows[0]
			t.Rows = append(t.Rows, []string{s,
				pct5(f.Tput), pct5(f.Delay)})
		}
		out = append(out, t)
	}
	return out
}

func pct5(s stats.Dist) string {
	return fmt.Sprintf("%.1f/%.1f/%.1f/%.1f/%.1f",
		s.Percentile(10), s.Percentile(25), s.Percentile(50),
		s.Percentile(75), s.Percentile(90))
}

// Figure13 details the four indoor representative locations.
func Figure13(quick bool) []Table {
	locs := RepresentativeLocations()[:4]
	if quick {
		locs = locs[:1]
	}
	return orderStatsAt("fig13", "indoor order statistics", locs, quick)
}

// Figure14 details the two outdoor representative locations.
func Figure14(quick bool) []Table {
	locs := RepresentativeLocations()[4:]
	if quick {
		locs = locs[:1]
	}
	return orderStatsAt("fig14", "outdoor order statistics", locs, quick)
}

// Figure15 counts at how many CA-capable locations each scheme causes the
// network to activate a secondary carrier.
func Figure15(quick bool) []Table {
	var locs []Location
	for _, l := range gridLocations(quick) {
		if l.CCs >= 2 {
			locs = append(locs, l)
		}
	}
	if quick && len(locs) > 2 {
		locs = locs[:2]
	}
	t := &Table{ID: "fig15", Title: fmt.Sprintf("CA triggered at N of %d locations", len(locs)),
		Header: []string{"scheme", "triggered", "of"}}
	dur := gridDuration(quick)
	for _, s := range Schemes {
		n := 0
		for _, loc := range locs {
			if Run(LocationScenario(loc, s, dur)).CATriggered {
				n++
			}
		}
		t.Rows = append(t.Rows, []string{s, fmt.Sprint(n), fmt.Sprint(len(locs))})
	}
	t.Notes = append(t.Notes, "paper Fig 15: PBE/BBR/Verus/CUBIC trigger CA almost everywhere; Copa/PCC/Vivace/Sprout rarely")
	return []Table{*t}
}

func mobilityScenario(scheme string, dur time.Duration) *Scenario {
	return MobilityScenario(scheme, Params{Duration: dur})
}

// Figure16 runs the mobility trajectory (-85 -> -105 -> -85 dBm) for all
// eight schemes.
func Figure16(quick bool) []Table {
	dur := 40 * time.Second
	if quick {
		dur = 8 * time.Second
	}
	t := &Table{ID: "fig16", Title: "Mobility: average throughput and delay",
		Header: []string{"scheme", "avg tput(Mbit/s)", "median delay(ms)", "p95 delay(ms)"}}
	for _, s := range Schemes {
		f := Run(mobilityScenario(s, dur)).Flows[0]
		t.Rows = append(t.Rows, []string{s, f1(f.AvgTputMbps),
			f1(f.Delay.Percentile(50)), f1(f.Delay.Percentile(95))})
	}
	t.Notes = append(t.Notes, "paper: PBE 55 Mbit/s at p95 64 ms; BBR similar rate at 156 ms")
	return []Table{*t}
}

// Figure17 compares PBE-CC and BBR per two-second interval along the
// trajectory.
func Figure17(quick bool) []Table {
	dur := 40 * time.Second
	if quick {
		dur = 10 * time.Second
	}
	res := map[string]*FlowResult{}
	for _, s := range []string{"pbe", "bbr"} {
		res[s] = Run(mobilityScenario(s, dur)).Flows[0]
	}
	t := &Table{ID: "fig17", Title: "Mobility timeline (2 s medians)",
		Header: []string{"t(s)", "pbe tput", "bbr tput"}}
	for from := time.Duration(0); from < dur; from += 2 * time.Second {
		t.Rows = append(t.Rows, []string{
			f0(from.Seconds()),
			f1(timelineAvg(res["pbe"], from, from+2*time.Second)),
			f1(timelineAvg(res["bbr"], from, from+2*time.Second))})
	}
	t.Notes = append(t.Notes, "paper Fig 17: PBE tracks the dip without queue buildup; BBR overshoots on recovery")
	return []Table{*t}
}

func competitionScenario(scheme string, dur time.Duration) *Scenario {
	return CompetitionScenario(scheme, Params{Duration: dur})
}

// Figure18 evaluates all schemes against the controlled on-off competitor.
func Figure18(quick bool) []Table {
	dur := 40 * time.Second
	if quick {
		dur = 8 * time.Second
	}
	t := &Table{ID: "fig18", Title: "Controlled competition: throughput and delay",
		Header: []string{"scheme", "avg tput(Mbit/s)", "avg delay(ms)", "p95 delay(ms)"}}
	for _, s := range Schemes {
		f := Run(competitionScenario(s, dur)).Flows[0]
		t.Rows = append(t.Rows, []string{s, f1(f.AvgTputMbps), f1(f.Delay.Mean()),
			f1(f.Delay.Percentile(95))})
	}
	t.Notes = append(t.Notes, "paper: PBE 57 Mbit/s at 61/71 ms vs BBR 62 Mbit/s at 147/227 ms")
	return []Table{*t}
}

// Figure19 prints the PBE/BBR reaction timeline around competitor on-off
// events.
func Figure19(quick bool) []Table {
	dur := 24 * time.Second
	if quick {
		dur = 12 * time.Second
	}
	res := map[string]*FlowResult{}
	for _, s := range []string{"pbe", "bbr"} {
		res[s] = Run(competitionScenario(s, dur)).Flows[0]
	}
	t := &Table{ID: "fig19", Title: "Competition timeline (200 ms averages)",
		Header: []string{"t(s)", "pbe tput", "bbr tput", "competitor"}}
	for from := 3 * time.Second; from < dur && from < 16*time.Second; from += 500 * time.Millisecond {
		comp := "off"
		phase := (from - 4*time.Second) % (8 * time.Second)
		if from >= 4*time.Second && phase < 4*time.Second {
			comp = "ON"
		}
		t.Rows = append(t.Rows, []string{
			f1(from.Seconds()),
			f1(timelineAvg(res["pbe"], from, from+500*time.Millisecond)),
			f1(timelineAvg(res["bbr"], from, from+500*time.Millisecond)),
			comp})
	}
	return []Table{*t}
}

// Figure20 runs two concurrent connections from one device per scheme.
func Figure20(quick bool) []Table {
	dur := 20 * time.Second
	if quick {
		dur = 5 * time.Second
	}
	t := &Table{ID: "fig20", Title: "Two concurrent flows, one device",
		Header: []string{"scheme", "flow1 tput", "flow2 tput", "flow1 p50 delay", "flow2 p50 delay", "jain"}}
	for _, s := range Schemes {
		r := Run(MultiflowScenario(s, Params{Duration: dur}))
		a, b := r.Flows[0], r.Flows[1]
		t.Rows = append(t.Rows, []string{s, f1(a.AvgTputMbps), f1(b.AvgTputMbps),
			f1(a.Delay.Percentile(50)), f1(b.Delay.Percentile(50)),
			f2(stats.Jain([]float64{a.AvgTputMbps, b.AvgTputMbps}))})
	}
	t.Notes = append(t.Notes, "paper: PBE 26/28 Mbit/s with 48/56 ms; BBR unbalanced 10/35")
	return []Table{*t}
}

// fairnessScenario builds the §6.4 experiments: three flows staggered
// 0/10/20 s to 60/50/40 s on a shared primary cell.
func fairnessScenario(schemes [3]string, rtts [3]time.Duration, dur time.Duration) *Scenario {
	scale := dur.Seconds() / 60
	at := func(sec float64) time.Duration {
		return time.Duration(sec * scale * float64(time.Second))
	}
	return &Scenario{
		Name: "fairness", Seed: 21, Duration: dur,
		Cells: []CellSpec{{ID: 1, NPRB: 100, Control: trace.Idle()}},
		UEs: []UESpec{
			{ID: 1, RNTI: 61, CellIDs: []int{1}, RSSI: -90},
			{ID: 2, RNTI: 62, CellIDs: []int{1}, RSSI: -90},
			{ID: 3, RNTI: 63, CellIDs: []int{1}, RSSI: -90},
		},
		Flows: []FlowSpec{
			{ID: 1, UE: 1, Scheme: schemes[0], Start: 0, Stop: at(60), RTTBase: rtts[0]},
			{ID: 2, UE: 2, Scheme: schemes[1], Start: at(10), Stop: at(50), RTTBase: rtts[1]},
			{ID: 3, UE: 3, Scheme: schemes[2], Start: at(20), Stop: at(40), RTTBase: rtts[2]},
		},
		PRBSampleEvery: 250 * time.Millisecond,
	}
}

// fairnessTable runs a fairness scenario and reports PRB shares plus Jain
// indices over the two- and three-flow phases.
func fairnessTable(id, title string, schemes [3]string, rtts [3]time.Duration, quick bool) []Table {
	dur := 30 * time.Second
	if quick {
		dur = 12 * time.Second
	}
	sc := fairnessScenario(schemes, rtts, dur)
	r := Run(sc)
	t := &Table{ID: id, Title: title,
		Header: []string{"t(s)", "ue1 PRBs", "ue2 PRBs", "ue3 PRBs"}}
	for i, tm := range r.PRBTimes {
		if i%4 != 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			f1(tm.Seconds()),
			f1(r.PRBSamples[1][i]), f1(r.PRBSamples[2][i]), f1(r.PRBSamples[3][i])})
	}
	// Jain over the three-flow phase [after flow3 start, before flow3 stop].
	start3 := sc.Flows[2].Start + dur/10
	stop3 := sc.Flows[2].Stop - dur/30
	var shares3 []float64
	for ue := 1; ue <= 3; ue++ {
		var sum float64
		n := 0
		for i, tm := range r.PRBTimes {
			if tm >= start3 && tm < stop3 {
				sum += r.PRBSamples[ue][i]
				n++
			}
		}
		if n > 0 {
			shares3 = append(shares3, sum/float64(n))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Jain index over 3-flow phase: %.4f (paper: 0.98-0.9997)", stats.Jain(shares3)))
	return []Table{*t}
}

// Figure21a: three PBE flows with similar RTTs.
func Figure21a(quick bool) []Table {
	return fairnessTable("fig21a", "Multi-user fairness: three PBE flows",
		[3]string{"pbe", "pbe", "pbe"},
		[3]time.Duration{52 * time.Millisecond, 64 * time.Millisecond, 56 * time.Millisecond}, quick)
}

// Figure21b: three PBE flows with very different RTTs (Singapore server).
func Figure21b(quick bool) []Table {
	return fairnessTable("fig21b", "RTT fairness: 52/297/64 ms PBE flows",
		[3]string{"pbe", "pbe", "pbe"},
		[3]time.Duration{52 * time.Millisecond, 297 * time.Millisecond, 64 * time.Millisecond}, quick)
}

// Figure21c: two PBE flows sharing with one BBR flow.
func Figure21c(quick bool) []Table {
	return fairnessTable("fig21c", "TCP friendliness: PBE + PBE + BBR",
		[3]string{"pbe", "bbr", "pbe"},
		[3]time.Duration{52 * time.Millisecond, 56 * time.Millisecond, 64 * time.Millisecond}, quick)
}

// Figure21d: two PBE flows sharing with one CUBIC flow.
func Figure21d(quick bool) []Table {
	return fairnessTable("fig21d", "TCP friendliness: PBE + PBE + CUBIC",
		[3]string{"pbe", "cubic", "pbe"},
		[3]time.Duration{52 * time.Millisecond, 56 * time.Millisecond, 64 * time.Millisecond}, quick)
}

// Ablations quantifies the design choices DESIGN.md calls out.
func Ablations(quick bool) []Table {
	dur := 6 * time.Second
	if quick {
		dur = 3 * time.Second
	}
	loc := Location{Index: 200, Name: "ablation", Indoor: true, CCs: 1, Busy: true, RSSI: -91}
	t := &Table{ID: "ablation", Title: "PBE-CC design ablations",
		Header: []string{"variant", "avg tput(Mbit/s)", "p95 delay(ms)"}}

	base := Run(LocationScenario(loc, "pbe", dur)).Flows[0]
	t.Rows = append(t.Rows, []string{"baseline", f1(base.AvgTputMbps), f1(base.Delay.Percentile(95))})

	noFilter := LocationScenario(loc, "pbe", dur)
	noFilter.DisableUserFilter = true
	f := Run(noFilter).Flows[0]
	t.Rows = append(t.Rows, []string{"no Ta/Pa filter", f1(f.AvgTputMbps), f1(f.Delay.Percentile(95))})

	decoded := LocationScenario(loc, "pbe", dur)
	decoded.MonitorDecodesPDCCH = true
	if !quick {
		f = Run(decoded).Flows[0]
		t.Rows = append(t.Rows, []string{"bit-level PDCCH decode", f1(f.AvgTputMbps), f1(f.Delay.Percentile(95))})
	}

	guard := LocationScenario(loc, "pbe", dur)
	guard.MisreportGuard = 2
	f = Run(guard).Flows[0]
	t.Rows = append(t.Rows, []string{"misreport guard 2x", f1(f.AvgTputMbps), f1(f.Delay.Percentile(95))})

	t.Notes = append(t.Notes,
		"without the filter, inflated N shrinks the fair share on busy cells",
		"the bit-level decode path must match the oracle path (identical control information)")
	return []Table{*t}
}

// SortTablesByID orders tables for stable output.
func SortTablesByID(ts []Table) {
	sort.SliceStable(ts, func(i, j int) bool { return ts[i].ID < ts[j].ID })
}

// timelineAvg averages a flow's 100 ms throughput timeline over [from, to).
func timelineAvg(f *FlowResult, from, to time.Duration) float64 {
	var sum float64
	n := 0
	for i, tm := range f.TimelineT {
		if tm >= from && tm < to {
			sum += f.TimelineR[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
