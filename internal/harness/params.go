package harness

import (
	"fmt"
	"time"

	"pbecc/internal/faults"
	"pbecc/internal/lte"
	"pbecc/internal/phy"
	"pbecc/internal/trace"
)

// Params are the knobs the sweep runner varies across jobs: the axes of
// the paper's evaluation matrix (Figs. 8-21) plus the measurement-noise
// robustness axis. Zero values keep each scenario family's defaults, so
// the figure experiments and the sweep share one set of builders.
type Params struct {
	Seed     int64         // engine seed; 0 = family default
	Duration time.Duration // scenario length; 0 = family default
	Cells    int           // component carriers / NR cells; 0 = family default
	RAT      string        // "lte" (default) or "nr"
	Busy     bool          // add calibrated control chatter + background users
	RSSI     float64       // signal strength in dBm; 0 = family default

	// CapacityNoise is the std (as a fraction of the estimate) of
	// multiplicative Gaussian noise on the PBE monitor's capacity
	// feedback.
	CapacityNoise float64

	// Fault axes (internal/faults), each an intensity in [0, 1]: the
	// structured measurement-fault counterpart to CapacityNoise's white
	// error. Stale/Miss/Handover perturb what monitor-using schemes
	// observe; OnOff adds an adversarial square-wave competitor every
	// scheme contends with.
	FaultStale    float64
	FaultMiss     float64
	FaultHandover float64
	FaultOnOff    float64

	// Shards bounds how many shards of a sharded scenario advance
	// concurrently (0 = family default, which is serial). Results are
	// byte-identical for any value; only wall-clock time changes.
	Shards int

	// FluidBackground converts a family's churning background population
	// to the fluid tier (internal/fluid): aggregate per-cell rate
	// envelopes in place of per-packet on/off flows, so event volume
	// scales with the measured flows. Families without a churn population
	// ignore it; the nation family forces it on.
	FluidBackground bool
}

// faultSpec collects the fault knobs into the faults vocabulary.
func (p Params) faultSpec() faults.Spec {
	return faults.Spec{Stale: p.FaultStale, Miss: p.FaultMiss,
		Handover: p.FaultHandover, OnOff: p.FaultOnOff}
}

// SetFaultAxis assigns one named fault axis: the sweep's string-keyed
// interface over the Fault* fields.
func (p *Params) SetFaultAxis(axis string, level float64) error {
	s := p.faultSpec()
	if err := s.Set(axis, level); err != nil {
		return err
	}
	p.FaultStale, p.FaultMiss, p.FaultHandover, p.FaultOnOff =
		s.Stale, s.Miss, s.Handover, s.OnOff
	return nil
}

// RATLTE and RATNR name the radio-access-technology axis values.
const (
	RATLTE = "lte"
	RATNR  = "nr"
)

func (p Params) rat() string {
	if p.RAT == "" {
		return RATLTE
	}
	return p.RAT
}

func (p Params) dur(def time.Duration) time.Duration {
	if p.Duration > 0 {
		return p.Duration
	}
	return def
}

func (p Params) rssi(def float64) float64 {
	if p.RSSI != 0 {
		return p.RSSI
	}
	return def
}

func (p Params) cellCount(def int) int {
	if p.Cells > 0 {
		return p.Cells
	}
	return def
}

// Validate rejects parameter values that a family builder would
// otherwise silently default or misinterpret. BuildScenario calls it
// before any family runs.
func (p Params) Validate() error {
	if p.Cells < 0 {
		return fmt.Errorf("negative cell count %d", p.Cells)
	}
	if p.CapacityNoise < 0 {
		return fmt.Errorf("negative capacity noise %v", p.CapacityNoise)
	}
	if p.Duration < 0 {
		return fmt.Errorf("negative duration %v", p.Duration)
	}
	if p.Shards < 0 {
		return fmt.Errorf("negative shard count %d", p.Shards)
	}
	if err := p.faultSpec().Validate(); err != nil {
		return err
	}
	switch p.RAT {
	case "", RATLTE, RATNR:
	default:
		return fmt.Errorf("unknown RAT %q (valid: %q, %q)", p.RAT, RATLTE, RATNR)
	}
	return nil
}

// apply overlays the cross-family knobs once a builder has produced its
// scenario.
func (p Params) apply(sc *Scenario) *Scenario {
	if p.Seed != 0 {
		sc.Seed = p.Seed
	}
	if p.CapacityNoise > 0 {
		sc.CapacityNoise = p.CapacityNoise
	}
	if p.Shards > 0 {
		sc.Shards = p.Shards
	}
	if fspec := p.faultSpec(); fspec.Any() {
		sc.Faults = fspec
		if fspec.OnOff > 0 {
			addOnOffCompetitor(sc, fspec.OnOff)
		}
	}
	return sc
}

// addOnOffCompetitor stands up the OnOff fault axis: a square-wave
// fixed-rate flow on the measured UE's primary cell whose half-period
// equals the monitor's smoothing window - the adversarial cadence for a
// windowed estimator, and a bursty competitor for every other scheme.
func addOnOffCompetitor(sc *Scenario, level float64) {
	var target *UESpec
	for _, fs := range sc.Flows {
		if fs.Scheme == "fixed" {
			continue
		}
		for i := range sc.UEs {
			if sc.UEs[i].ID == fs.UE {
				target = &sc.UEs[i]
			}
		}
		break
	}
	if target == nil {
		return
	}
	maxUE, maxRNTI, maxFlow := 0, uint16(0), 0
	for i := range sc.UEs {
		if sc.UEs[i].ID > maxUE {
			maxUE = sc.UEs[i].ID
		}
		if sc.UEs[i].RNTI > maxRNTI {
			maxRNTI = sc.UEs[i].RNTI
		}
	}
	for i := range sc.Flows {
		if sc.Flows[i].ID > maxFlow {
			maxFlow = sc.Flows[i].ID
		}
	}
	rssi := target.RSSI
	if rssi == 0 {
		rssi = -90 // target rides a trajectory: give the adversary a plain cell-center signal
	}
	adv := UESpec{ID: maxUE + 1, RNTI: maxRNTI + 1, RSSI: rssi, NRRSSI: target.NRRSSI}
	// Peak rate scaled by intensity: enough to claim most of the cell
	// during an on-phase (the §6.3.3 competitor's regime), per RAT.
	rate := level * 80e6
	if len(target.CellIDs) > 0 {
		adv.CellIDs = []int{target.CellIDs[0]}
	} else {
		adv.NRCellIDs = []int{target.NRCellIDs[0]}
		rate = level * 400e6
	}
	sc.UEs = append(sc.UEs, adv)
	sc.Flows = append(sc.Flows, FlowSpec{
		ID: maxFlow + 1, UE: adv.ID, Scheme: "fixed", FixedRate: rate,
		Start:    faults.OnOffHalfPeriod,
		OnPeriod: faults.OnOffHalfPeriod, OffPeriod: faults.OnOffHalfPeriod,
	})
	faults.CountOnOffFlow()
}

// controlFor returns the cell's control-plane source for the Busy knob:
// calibrated chatter on a busy cell, the idle trace otherwise. (The steady
// family additionally adds background data users on busy cells.)
func controlFor(p Params) lte.ControlSource {
	if p.Busy {
		return trace.Busy()
	}
	return trace.Idle()
}

// Family is one parameterizable scenario generator: where the figure
// experiments bake every choice into a closure, a family exposes the
// choices as Params so the sweep runner can expand a matrix over them.
type Family struct {
	ID    string
	Title string
	RATs  []string
	// CellsAxis reports whether the family honors Params.Cells; a
	// sweep listing cell counts over a family that ignores them would
	// run mislabeled duplicate jobs, so BuildScenario rejects that.
	CellsAxis bool
	// MinCells is the smallest explicit Params.Cells the family can
	// honor (0 = any positive value). A request below it is rejected
	// rather than silently rounded up, so a result row's cell count
	// always matches what actually ran.
	MinCells int
	Build    func(scheme string, p Params) *Scenario
}

// Families returns the sweepable scenario families.
func Families() []Family {
	return []Family{
		{"steady", "single flow in steady state at one location", []string{RATLTE, RATNR}, true, 0, SteadyScenario},
		{"mobility", "mobility trajectory (LTE) / mmWave blockage (NR)", []string{RATLTE, RATNR}, false, 0, MobilityScenario},
		{"competition", "on-off competitor sharing the cell", []string{RATLTE, RATNR}, false, 0, CompetitionScenario},
		{"multiflow", "two concurrent flows from one device", []string{RATLTE, RATNR}, false, 0, MultiflowScenario},
		{"rtc", "interactive frame-level video call (GoP source + jitter buffer)", []string{RATLTE, RATNR}, true, 0, RTCScenario},
		{"sfu", "SFU fan-out: one ingest to 32 subscribers across LTE and NR cells", []string{RATLTE, RATNR}, true, 0, SFUScenario},
		{"metro", "city-scale sharded mix: 64-256 cells, 16 UEs/cell, bulk+rtc+sfu flows with churn", []string{RATLTE, RATNR}, true, 2, MetroScenario},
		{"nation", "nation-scale hybrid: metro packet foreground + 64k fluid-modeled cells / 1M+ users", []string{RATLTE, RATNR}, true, 2, NationScenario},
	}
}

// BuildScenario builds one family's scenario for a scheme, validating the
// family ID, scheme name, and RAT support first.
func BuildScenario(family, scheme string, p Params) (*Scenario, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("invalid params: %w", err)
	}
	known := false
	for _, s := range Schemes {
		if s == scheme {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("unknown scheme %q (valid: %v)", scheme, Schemes)
	}
	for _, f := range Families() {
		if f.ID != family {
			continue
		}
		ratOK := false
		for _, r := range f.RATs {
			if r == p.rat() {
				ratOK = true
				break
			}
		}
		if !ratOK {
			return nil, fmt.Errorf("family %q does not support RAT %q", family, p.rat())
		}
		if p.Cells > 0 && !f.CellsAxis {
			return nil, fmt.Errorf("family %q does not support the cell-count axis", family)
		}
		if p.Cells > 0 && p.Cells < f.MinCells {
			return nil, fmt.Errorf("family %q needs at least %d cells (got %d)", family, f.MinCells, p.Cells)
		}
		return f.Build(scheme, p), nil
	}
	ids := make([]string, 0, len(Families()))
	for _, f := range Families() {
		ids = append(ids, f.ID)
	}
	return nil, fmt.Errorf("unknown scenario family %q (valid: %v)", family, ids)
}

// SteadyScenario is one flow downloading at a fixed location: the building
// block of the paper's location grid (Figs. 12-14). LTE supports 1-3
// aggregated carriers; NR builds a µ=1 wide cell per carrier.
func SteadyScenario(scheme string, p Params) *Scenario {
	if p.rat() == RATNR {
		dur := p.dur(4 * time.Second)
		sc := NRScenario(scheme, 1, 100, p.rssi(-88), p.Busy, dur)
		for c := 1; c < p.cellCount(1); c++ {
			// Each carrier needs its own control source: the trace
			// generators are stateful, so sharing one would bleed
			// control users across cells.
			cell := NRCellSpec{ID: 101 + c, Mu: 1, BandwidthMHz: 100, Control: controlFor(p)}
			sc.NRCells = append(sc.NRCells, cell)
			sc.UEs[0].NRCellIDs = append(sc.UEs[0].NRCellIDs, cell.ID)
		}
		return p.apply(sc)
	}
	loc := Location{
		Index:  1, // Index%3 != 0: no Internet bottleneck on the path
		Indoor: true,
		CCs:    p.cellCount(1),
		Busy:   p.Busy,
		RSSI:   p.rssi(-91),
	}
	state := "idle"
	if loc.Busy {
		state = "busy"
	}
	loc.Name = fmt.Sprintf("steady-%dcc-%s", loc.CCs, state)
	return p.apply(LocationScenario(loc, scheme, p.dur(4*time.Second)))
}

// MobilityScenario is the §6.3.2 walk for LTE (-85 -> -105 -> -85 dBm,
// Figs. 16-17); on NR it is the mmWave blockage profile, the 5G scenario
// where capacity collapses faster than any end-to-end signal.
func MobilityScenario(scheme string, p Params) *Scenario {
	if p.rat() == RATNR {
		dur := p.dur(8 * time.Second)
		sc := nrBlockageScenario(scheme, dur, dur*3/8, dur*5/8)
		sc.NRCells[0].Control = controlFor(p)
		return p.apply(sc)
	}
	sc := &Scenario{
		Name: "mobility-" + scheme, Seed: 16, Duration: p.dur(40 * time.Second),
		Cells: []CellSpec{{ID: 1, NPRB: 100, Control: controlFor(p)}},
		UEs: []UESpec{{ID: 1, RNTI: 61, CellIDs: []int{1},
			Trajectory: phy.PaperMobilityTrajectory(), FadingSigma: 2}},
		Flows: []FlowSpec{{ID: 1, UE: 1, Scheme: scheme, Start: 0, RTTBase: 40 * time.Millisecond}},
	}
	return p.apply(sc)
}

// CompetitionScenario is the §6.3.3 controlled competitor: the scheme
// under test shares the cell with an on-off fixed-rate flow (60 Mbit/s on
// LTE, 300 Mbit/s on an NR wide cell).
func CompetitionScenario(scheme string, p Params) *Scenario {
	if p.rat() == RATNR {
		dur := p.dur(16 * time.Second)
		sc := &Scenario{
			Name: "nr-compete-" + scheme, Seed: 3300, Duration: dur,
			NRCells: []NRCellSpec{{ID: 101, Mu: 1, BandwidthMHz: 100, Control: controlFor(p)}},
			UEs: []UESpec{
				{ID: 1, RNTI: 61, NRCellIDs: []int{101}, RSSI: p.rssi(-88)},
				{ID: 2, RNTI: 62, NRCellIDs: []int{101}, RSSI: p.rssi(-88)},
			},
			Flows: []FlowSpec{
				{ID: 1, UE: 1, Scheme: scheme, Start: 0, RTTBase: 30 * time.Millisecond},
				{ID: 2, UE: 2, Scheme: "fixed", FixedRate: 300e6, Start: dur / 8,
					OnPeriod: dur / 4, OffPeriod: dur / 4},
			},
		}
		return p.apply(sc)
	}
	dur := p.dur(40 * time.Second)
	// Every 8 s a 4 s on-phase of a 60 Mbit/s competitor (§6.3.3). The
	// paper's fixed cadence needs at least one full cycle; shorter sweep
	// jobs scale it with the duration so the competitor actually runs.
	start, on, off := 4*time.Second, 4*time.Second, 4*time.Second
	if dur < 8*time.Second {
		start, on, off = dur/8, dur/4, dur/4
	}
	sc := &Scenario{
		Name: "competition-" + scheme, Seed: 18, Duration: dur,
		Cells: []CellSpec{{ID: 1, NPRB: 100, Control: controlFor(p)}},
		UEs: []UESpec{
			{ID: 1, RNTI: 61, CellIDs: []int{1}, RSSI: p.rssi(-90)},
			{ID: 2, RNTI: 62, CellIDs: []int{1}, RSSI: p.rssi(-90)},
		},
		Flows: []FlowSpec{
			{ID: 1, UE: 1, Scheme: scheme, Start: 0, RTTBase: 40 * time.Millisecond},
			{ID: 2, UE: 2, Scheme: "fixed", FixedRate: 60e6, Start: start,
				OnPeriod: on, OffPeriod: off},
		},
	}
	return p.apply(sc)
}

// MultiflowScenario runs two concurrent connections from one device with
// different server RTTs (Fig. 20).
func MultiflowScenario(scheme string, p Params) *Scenario {
	dur := p.dur(20 * time.Second)
	if p.rat() == RATNR {
		sc := NRScenario(scheme, 1, 100, p.rssi(-88), p.Busy, dur)
		sc.Name = "nr-two-" + scheme
		sc.Flows = append(sc.Flows, FlowSpec{
			ID: len(sc.Flows) + 1, UE: 1, Scheme: scheme, Start: 0,
			RTTBase: 46 * time.Millisecond,
		})
		return p.apply(sc)
	}
	sc := &Scenario{
		Name: "two-" + scheme, Seed: 20, Duration: dur,
		Cells: []CellSpec{{ID: 1, NPRB: 100, Control: controlFor(p)}},
		UEs:   []UESpec{{ID: 1, RNTI: 61, CellIDs: []int{1}, RSSI: p.rssi(-90)}},
		Flows: []FlowSpec{
			{ID: 1, UE: 1, Scheme: scheme, Start: 0, RTTBase: 40 * time.Millisecond},
			{ID: 2, UE: 1, Scheme: scheme, Start: 0, RTTBase: 56 * time.Millisecond},
		},
	}
	return p.apply(sc)
}
