package harness

import (
	"bytes"
	"testing"

	"pbecc/internal/netsim"
)

// TestPoolingDoesNotChangeResults is the packet pool's safety property:
// recycling packet structs must be invisible to the simulation. A metro
// run (bulk + rtc + sfu flows over LTE and NR cells with background
// churn) with the pool kill switch thrown must produce a byte-identical
// fingerprint to the pooled default — any divergence means some handler
// read a packet after its release point and saw recycled contents.
func TestPoolingDoesNotChangeResults(t *testing.T) {
	pooled := runMetro(t, 4)
	prev := netsim.SetPooling(false)
	defer netsim.SetPooling(prev)
	bare := runMetro(t, 4)
	if !bytes.Equal(pooled, bare) {
		t.Fatalf("pooled run diverges from pooling-off run:\n pooled: %s\n    off: %s", pooled, bare)
	}
}
