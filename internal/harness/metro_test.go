package harness

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"pbecc/internal/stats"
)

// metroFingerprint serializes everything a sweep row could read from a
// completed run - every flow's throughput, delay percentiles, loss and
// frame statistics - so two runs compare byte-for-byte.
func metroFingerprint(t *testing.T, res *Result) []byte {
	t.Helper()
	type flowFP struct {
		ID       int
		Scheme   string
		Tput     float64
		P50, P95 float64
		Mean     float64
		Recv     uint64
		Lost     uint64
		Frames   uint64
		Late     float64
	}
	var fps []flowFP
	for _, f := range res.Flows {
		fp := flowFP{
			ID: f.ID, Scheme: f.Scheme,
			Tput: f.AvgTputMbps,
			P50:  f.Delay.Percentile(50), P95: f.Delay.Percentile(95),
			Mean: f.Delay.Mean(),
			Recv: f.Received, Lost: f.Lost,
		}
		if f.Frames != nil {
			fp.Frames = f.Frames.Released
			fp.Late = f.Frames.LatePct()
		}
		fps = append(fps, fp)
	}
	b, err := json.Marshal(struct {
		Flows []flowFP
		CA    bool
	}{fps, res.CATriggered})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func runMetro(t *testing.T, shards int) []byte {
	t.Helper()
	sc, err := BuildScenario("metro", "pbe", Params{
		Seed: 3, Cells: 8, Duration: 400 * time.Millisecond, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return metroFingerprint(t, Run(sc))
}

// TestMetroByteIdenticalAcrossShards is the sharding contract at the
// harness level: a sharded metro run produces byte-identical results for
// any parallel width.
func TestMetroByteIdenticalAcrossShards(t *testing.T) {
	base := runMetro(t, 1)
	for _, shards := range []int{2, 4} {
		if got := runMetro(t, shards); !bytes.Equal(base, got) {
			t.Fatalf("results differ between -shards 1 and -shards %d", shards)
		}
	}
}

// TestMetroComposition checks the family delivers what it promises: the
// measured flow first, both RATs populated, a mixed bulk/rtc/sfu flow
// set, churning background users, and a multi-shard topology with a
// dedicated wired-core shard.
func TestMetroComposition(t *testing.T) {
	sc, err := BuildScenario("metro", "gcc", Params{Seed: 1, Cells: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Sharded || !sc.StreamStats || sc.SFU == nil {
		t.Fatalf("metro must be sharded + streaming + SFU, got %+v", sc)
	}
	if len(sc.Cells) != 4 || len(sc.NRCells) != 4 {
		t.Fatalf("want 4 LTE + 4 NR cells, got %d + %d", len(sc.Cells), len(sc.NRCells))
	}
	if got := len(sc.UEs); got != 8*MetroUEsPerCell {
		t.Fatalf("want %d UEs, got %d", 8*MetroUEsPerCell, got)
	}
	if sc.Flows[0].Scheme != "gcc" {
		t.Fatalf("first flow must be the scheme under test, got %q", sc.Flows[0].Scheme)
	}
	var bulk, media, legs, fixed, endc int
	for i := range sc.Flows {
		fs := &sc.Flows[i]
		switch {
		case fs.SFULeg:
			legs++
		case fs.Media != nil:
			media++
		case fs.Scheme == "fixed":
			fixed++
		default:
			bulk++
		}
	}
	for _, us := range sc.UEs {
		if len(us.CellIDs) > 0 && len(us.NRCellIDs) > 0 {
			endc++
		}
	}
	if bulk != 8 || media != 8 || legs != 8 || endc != 4 || fixed == 0 {
		t.Fatalf("flow mix bulk=%d media=%d legs=%d endc=%d fixed=%d", bulk, media, legs, endc, fixed)
	}
	// 4 EN-DC-entangled LTE+NR pairs plus the wired-core shard.
	if got := sc.ShardCount(); got != 5 {
		t.Fatalf("shard topology: got %d shards, want 5", got)
	}
	// The topology must not depend on the parallel width.
	sc.Shards = 4
	if got := sc.ShardCount(); got != 5 {
		t.Fatalf("shard topology changed with Shards knob: %d", got)
	}
}

// TestMetroStreamStats: metro flows must record delay through the P²
// digest (O(1) memory per flow), not the exact series.
func TestMetroStreamStats(t *testing.T) {
	sc, err := BuildScenario("metro", "bbr", Params{
		Seed: 2, Cells: 2, Duration: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(sc)
	f := res.Flows[0]
	if _, ok := f.Delay.(*stats.DurationP2); !ok {
		t.Fatalf("metro delay dist is %T, want *stats.DurationP2", f.Delay)
	}
	if f.Delay.Len() == 0 || f.AvgTputMbps <= 0 {
		t.Fatalf("measured flow moved no traffic: len=%d tput=%v", f.Delay.Len(), f.AvgTputMbps)
	}
}

// TestMetroScale exercises the acceptance-scale topology (128 cells,
// 2048 UEs) briefly; -short skips the run but still checks the build.
func TestMetroScale(t *testing.T) {
	sc, err := BuildScenario("metro", "pbe", Params{Seed: 1, Shards: 4,
		Duration: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Cells)+len(sc.NRCells) != 128 || len(sc.UEs) != 2048 {
		t.Fatalf("default scale: %d cells, %d UEs", len(sc.Cells)+len(sc.NRCells), len(sc.UEs))
	}
	if testing.Short() {
		t.Skip("skipping 128-cell run in -short mode")
	}
	res := Run(sc)
	if res.Flows[0].Received == 0 {
		t.Fatal("measured flow received nothing at metro scale")
	}
}

// TestMetroRejectsTinyCellCounts: an explicit cell count below the
// family floor errors instead of silently running a different topology
// than the result row claims.
func TestMetroRejectsTinyCellCounts(t *testing.T) {
	if _, err := BuildScenario("metro", "pbe", Params{Cells: 1}); err == nil {
		t.Fatal("metro accepted cells=1")
	}
	if _, err := BuildScenario("metro", "pbe", Params{Cells: 2}); err != nil {
		t.Fatalf("metro rejected cells=2: %v", err)
	}
}

// TestSFULegWithoutSFUPanics: a leg-marked flow in a scenario with no
// relay is a misconfiguration, not a bulk flow.
func TestSFULegWithoutSFUPanics(t *testing.T) {
	sc, err := BuildScenario("steady", "gcc", Params{Seed: 1, Duration: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sc.Flows[0].SFULeg = true
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for SFULeg without Scenario.SFU")
		}
	}()
	Run(sc)
}
