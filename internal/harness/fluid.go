package harness

import (
	"math/rand"
	"time"

	"pbecc/internal/fluid"
	"pbecc/internal/lte"
	"pbecc/internal/nr"
	"pbecc/internal/phy"
)

// FluidSpec configures a scenario's fluid background tier (see
// internal/fluid): aggregate rate-envelope sessions bound to real cells
// through the scheduler's BackgroundSource hook, plus an optional
// modeled-only population with no packet-level counterpart at all.
type FluidSpec struct {
	// Sessions maps a real cell's ID to the background sessions bound to
	// it. They compete in the cell's water-fill and appear on its control
	// channel, but generate no packet events.
	Sessions map[int][]fluid.Session

	// Window is the envelope update cadence (0 = fluid.DefaultWindow,
	// the PBE monitor's smoothing window).
	Window time.Duration

	// MaxBacklogBits caps each cell-bound session's backlog (0 = the
	// owning RAT's per-user queue cap, the same bound a packet user has).
	MaxBacklogBits float64

	// ModeledCells x ModeledUsersPerCell sizes the modeled-only tier.
	// The population is drawn inside Run from ModeledSeed (0 = derived
	// from the scenario seed), so Scenario stays cheap to build: a
	// million-user population materializes only when the scenario runs.
	ModeledCells        int
	ModeledUsersPerCell int
	ModeledSeed         int64
}

// FluidSessions counts the spec's total background sessions (cell-bound
// plus modeled).
func (fl *FluidSpec) FluidSessions() int {
	n := fl.ModeledCells * fl.ModeledUsersPerCell
	for _, ss := range fl.Sessions {
		n += len(ss)
	}
	return n
}

// addFluidSession converts one would-be background UE into a fluid
// session on its primary cell: same RNTI, and the MCS the UE's static
// channel would report (the family default CQI tables - 64-QAM LTE,
// 256-QAM NR - so the control channel shows the grant a packet user at
// the same RSSI would get).
func addFluidSession(sc *Scenario, us *UESpec, rate float64, on, off, phase time.Duration) {
	if sc.Fluid == nil {
		sc.Fluid = &FluidSpec{Sessions: map[int][]fluid.Session{}}
	}
	table, cellID := phy.Table64QAM, 0
	if len(us.CellIDs) > 0 {
		cellID = us.CellIDs[0]
	} else {
		cellID = us.NRCellIDs[0]
		table = phy.Table256QAM
	}
	sc.Fluid.Sessions[cellID] = append(sc.Fluid.Sessions[cellID], fluid.Session{
		RNTI:    us.RNTI,
		MCS:     phy.MCSFromSINR(phy.SINRFromRSSI(us.RSSI), table),
		RateBps: rate,
		On:      on,
		Off:     off,
		Phase:   phase,
	})
}

// fluidRuntime holds a running scenario's fluid processes for post-run
// stats collection, in deterministic (cell declaration) order.
type fluidRuntime struct {
	procs   []*fluid.CellProcess
	modeled *fluid.Modeled
}

// setupFluid binds the spec's cell-bound sessions to their cells and
// stands up the modeled tier on the cluster's shards. Chunk-to-shard
// assignment depends only on the shard topology - itself a pure function
// of the scenario - so fluid output is byte-identical for any
// Scenario.Shards value.
func setupFluid(sc *Scenario, pl *placement, cells map[int]*lte.Cell, nrCells map[int]*nr.Cell) *fluidRuntime {
	spec := sc.Fluid
	w := spec.Window
	if w <= 0 {
		w = fluid.DefaultWindow
	}
	rt := &fluidRuntime{}
	bind := func(cellID int, maxBacklog float64, attach func(lte.BackgroundSource)) {
		ss := spec.Sessions[cellID]
		if len(ss) == 0 {
			return
		}
		if spec.MaxBacklogBits > 0 {
			maxBacklog = spec.MaxBacklogBits
		}
		p := fluid.NewCellProcess(ss, w, maxBacklog)
		attach(p)
		rt.procs = append(rt.procs, p)
	}
	for _, cs := range sc.Cells {
		cell := cells[cs.ID]
		bind(cs.ID, float64(lte.DefaultPerUserQueueBytes*8), cell.SetBackground)
	}
	for _, ns := range sc.NRCells {
		cell := nrCells[ns.ID]
		bind(ns.ID, float64(nr.DefaultPerUserQueueBytes*8), cell.SetBackground)
	}

	if spec.ModeledCells > 0 {
		seed := spec.ModeledSeed
		if seed == 0 {
			seed = sc.Seed*31337 + 17
		}
		perCell := spec.ModeledUsersPerCell
		if perCell <= 0 {
			perCell = 1
		}
		m := fluid.DrawModeled(spec.ModeledCells, perCell, rand.New(rand.NewSource(seed)), w)
		shards := pl.cluster.Shards()
		for i, ch := range m.Chunks(len(shards)) {
			ch, eng := ch, shards[i].Engine
			eng.Every(w, func() { ch.Advance(eng.Now()) })
		}
		rt.modeled = m
	}
	return rt
}

// stats sums every fluid process's accounting in deterministic order.
func (rt *fluidRuntime) stats() *fluid.Stats {
	s := &fluid.Stats{}
	for _, p := range rt.procs {
		s.Add(p.Stats())
	}
	if rt.modeled != nil {
		s.Add(rt.modeled.Stats())
	}
	return s
}
