package harness

import (
	"testing"
	"time"
)

func TestBuildScenarioValidation(t *testing.T) {
	if _, err := BuildScenario("nosuch", "pbe", Params{}); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, err := BuildScenario("steady", "nosuch", Params{}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := BuildScenario("steady", "pbe", Params{RAT: "wimax"}); err == nil {
		t.Fatal("unknown RAT accepted")
	}
	for _, f := range Families() {
		for _, rat := range f.RATs {
			sc, err := BuildScenario(f.ID, "pbe", Params{RAT: rat})
			if err != nil {
				t.Fatalf("%s/%s: %v", f.ID, rat, err)
			}
			if sc.Duration <= 0 {
				t.Fatalf("%s/%s: no default duration", f.ID, rat)
			}
			if len(sc.Flows) == 0 || sc.Flows[0].Scheme != "pbe" {
				t.Fatalf("%s/%s: first flow is not the scheme under test", f.ID, rat)
			}
		}
	}
}

// TestParamsOverrideKnobs checks the sweep axes actually land in the
// scenario.
func TestParamsOverrideKnobs(t *testing.T) {
	p := Params{Seed: 777, Duration: 3 * time.Second, Cells: 2, Busy: true,
		RSSI: -97, CapacityNoise: 0.2}
	sc, err := BuildScenario("steady", "pbe", p)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed != 777 {
		t.Fatalf("Seed = %d, want 777", sc.Seed)
	}
	if sc.Duration != 3*time.Second {
		t.Fatalf("Duration = %v, want 3s", sc.Duration)
	}
	if len(sc.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(sc.Cells))
	}
	if sc.CapacityNoise != 0.2 {
		t.Fatalf("CapacityNoise = %v, want 0.2", sc.CapacityNoise)
	}
	if sc.UEs[0].RSSI != -97 {
		t.Fatalf("RSSI = %v, want -97", sc.UEs[0].RSSI)
	}
	if len(sc.UEs) != 3 {
		t.Fatalf("busy steady scenario has %d UEs, want 3 (1 + 2 background)", len(sc.UEs))
	}

	nrSC, err := BuildScenario("steady", "pbe", Params{RAT: RATNR, Cells: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(nrSC.NRCells) != 2 || len(nrSC.UEs[0].NRCellIDs) != 2 {
		t.Fatalf("NR steady with Cells=2: %d cells, UE on %d",
			len(nrSC.NRCells), len(nrSC.UEs[0].NRCellIDs))
	}
}

// TestFamilyDefaultsMatchFigures pins that the families with zero Params
// reproduce the figure experiments' scenarios (the refactor from closed
// closures must not move the figures).
func TestFamilyDefaultsMatchFigures(t *testing.T) {
	m := MobilityScenario("pbe", Params{Duration: 40 * time.Second})
	if m.Seed != 16 || len(m.Cells) != 1 || m.UEs[0].Trajectory == nil {
		t.Fatalf("mobility defaults drifted: seed=%d cells=%d", m.Seed, len(m.Cells))
	}
	c := CompetitionScenario("pbe", Params{Duration: 40 * time.Second})
	if c.Seed != 18 || c.Flows[1].FixedRate != 60e6 || c.Flows[1].OnPeriod != 4*time.Second {
		t.Fatalf("competition defaults drifted: seed=%d rate=%v", c.Seed, c.Flows[1].FixedRate)
	}
	f := MultiflowScenario("pbe", Params{Duration: 20 * time.Second})
	if f.Seed != 20 || len(f.Flows) != 2 || f.Flows[1].RTTBase != 56*time.Millisecond {
		t.Fatalf("multiflow defaults drifted: seed=%d flows=%d", f.Seed, len(f.Flows))
	}
	n := CompetitionScenario("pbe", Params{Duration: 16 * time.Second, RAT: RATNR})
	if n.Seed != 3300 || n.Flows[1].FixedRate != 300e6 {
		t.Fatalf("nr competition defaults drifted: seed=%d rate=%v", n.Seed, n.Flows[1].FixedRate)
	}
}

// TestCompetitionScalesToShortSweeps pins that sweep-length competition
// jobs still run their competitor: the paper's fixed 4 s cadence scales
// down once it no longer fits the duration.
func TestCompetitionScalesToShortSweeps(t *testing.T) {
	short := CompetitionScenario("pbe", Params{Duration: time.Second})
	comp := short.Flows[1]
	if comp.Start >= short.Duration {
		t.Fatalf("competitor starts at %v, after the %v scenario ends", comp.Start, short.Duration)
	}
	if comp.OnPeriod <= 0 || comp.Start+comp.OnPeriod > short.Duration {
		t.Fatalf("competitor on-phase %v does not fit the scenario", comp.OnPeriod)
	}
}

// TestCapacityNoiseIsDeterministicPerSeed runs the same noisy scenario
// twice and a different noise level once: identical seeds must agree
// exactly, and noise must actually perturb behaviour.
func TestCapacityNoiseIsDeterministicPerSeed(t *testing.T) {
	build := func(noise float64) *FlowResult {
		sc, err := BuildScenario("steady", "pbe", Params{
			Seed: 42, Duration: 1500 * time.Millisecond, CapacityNoise: noise})
		if err != nil {
			t.Fatal(err)
		}
		return Run(sc).Flows[0]
	}
	a, b := build(0.3), build(0.3)
	if a.AvgTputMbps != b.AvgTputMbps || a.Received != b.Received {
		t.Fatalf("same seed+noise diverged: %v/%v vs %v/%v",
			a.AvgTputMbps, a.Received, b.AvgTputMbps, b.Received)
	}
	clean := build(0)
	if clean.AvgTputMbps == a.AvgTputMbps && clean.Received == a.Received {
		t.Fatal("30% capacity noise left the run byte-identical to the clean run")
	}
}

func TestNominalCapacityMbps(t *testing.T) {
	lte, err := BuildScenario("steady", "pbe", Params{})
	if err != nil {
		t.Fatal(err)
	}
	if got := lte.NominalCapacityMbps(); got < 100 || got > 400 {
		t.Fatalf("LTE 100-PRB nominal capacity = %.1f Mbit/s, want O(100)", got)
	}
	nr, err := BuildScenario("steady", "pbe", Params{RAT: RATNR})
	if err != nil {
		t.Fatal(err)
	}
	if got := nr.NominalCapacityMbps(); got < 800 {
		t.Fatalf("NR µ=1 100 MHz nominal capacity = %.1f Mbit/s, want near 1 Gbit/s", got)
	}
}

// TestParamsValidate: invalid axis values must be rejected with a clear
// error instead of silently collapsing to a family default.
func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Cells: -1},
		{CapacityNoise: -0.1},
		{RAT: "wimax"},
		{Shards: -2},
		{Duration: -time.Second},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", p)
		}
		if _, err := BuildScenario("steady", "pbe", p); err == nil {
			t.Errorf("BuildScenario accepted %+v", p)
		}
	}
	good := []Params{
		{},
		{RAT: RATNR, Cells: 2, Shards: 4, CapacityNoise: 0.1},
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate rejected %+v: %v", p, err)
		}
	}
}
