package harness

import (
	"time"

	"pbecc/internal/cc"
	"pbecc/internal/cc/gcc"
	"pbecc/internal/netsim"
	"pbecc/internal/rtc"
	"pbecc/internal/sim"
)

// sfuIngestFlowID keeps the ingest leg's flow ID out of the subscriber
// flows' namespace (subscriber IDs count up from 1).
const sfuIngestFlowID = 1000

// provisionedController paces at a fixed rate with a generous window:
// the SFU's dedicated ingest uplink.
type provisionedController struct{ rate float64 }

func (c *provisionedController) Name() string                                          { return "provisioned" }
func (c *provisionedController) OnSent(now time.Duration, seq uint64, bytes, infl int) {}
func (c *provisionedController) OnAck(s cc.AckSample)                                  {}
func (c *provisionedController) OnLoss(l cc.LossSample)                                {}
func (c *provisionedController) PacingRate() float64                                   { return c.rate }
func (c *provisionedController) CWND() int                                             { return 1 << 30 }

// attachMediaFlow wires one frame-level RTC flow: encoder ->
// packetizer/pacer -> (internet bottleneck) -> tower -> UE -> jitter
// buffer, with acknowledgements returning over the reverse path. The
// congestion controller paces the media packets and drives the encoder's
// rate-ladder adaptation.
func attachMediaFlow(eng *sim.Engine, fs *FlowSpec, fr *FlowResult, dev device,
	ctrl cc.Controller, fb cc.FeedbackSource,
	onData func(time.Duration, *netsim.Packet, time.Duration), end time.Duration) {
	spec := *fs.Media
	var msnd *rtc.Sender
	ackLink := netsim.NewLink(eng, 0, fs.RTTBase/2, 0,
		netsim.HandlerFunc(func(now time.Duration, p *netsim.Packet) {
			msnd.HandlePacket(now, p)
		}))
	mrcv := rtc.NewReceiver(eng, fs.ID, ackLink, spec)
	mrcv.Transport().Feedback = fb
	mrcv.OnData = onData
	mrcv.EnableSeries(fs.ID)
	dev.RegisterFlow(fs.ID, mrcv)

	bottleneck := netsim.NewLink(eng, fs.InternetRate, fs.RTTBase/2, fs.InternetQueue, dev)
	bottleneck.EnableQueueSeries(fs.ID)
	msnd = rtc.NewSender(eng, fs.ID, bottleneck, ctrl, spec)
	enc := rtc.NewEncoder(eng, spec, msnd.QueueFrame)
	enc.Available = msnd.AvailableRate

	fr.Frames = mrcv.Stats()
	fr.msnd = msnd
	fr.snd = msnd.Transport()
	eng.At(fr.start, func() { msnd.Start(); enc.Start() })
	if fr.stop < end {
		eng.At(fr.stop, func() { enc.Stop(); msnd.Stop() })
	}
}

// buildSFUIngest stands the relay up: a content server encodes every
// simulcast rung and streams them over a wired path into the SFU, whose
// jitter buffer reassembles frames and fans them out to the subscriber
// legs registered afterwards.
func buildSFUIngest(eng *sim.Engine, sc *Scenario) *rtc.SFU {
	sp := sc.SFU
	spec := sp.Media
	spec.Simulcast = true
	sfu := rtc.NewSFU(eng, spec)

	var ctrl cc.Controller
	scheme := sp.IngestScheme
	if scheme == "" || scheme == "provisioned" {
		// A dedicated uplink: pace at twice the full simulcast bundle so
		// the ingest never becomes the experiment's bottleneck.
		var bundle float64
		for _, r := range sfu.Spec().Ladder {
			bundle += r
		}
		ctrl = &provisionedController{rate: 2 * bundle}
	} else {
		ctrl = newController(scheme)
	}
	rtt := sp.IngestRTT
	if rtt == 0 {
		rtt = 20 * time.Millisecond
	}
	var isnd *rtc.Sender
	ackLink := netsim.NewLink(eng, 0, rtt/2, 0,
		netsim.HandlerFunc(func(now time.Duration, p *netsim.Packet) {
			isnd.HandlePacket(now, p)
		}))
	ircv := rtc.NewReceiver(eng, sfuIngestFlowID, ackLink, spec)
	if scheme == "gcc" {
		ircv.Transport().Feedback = gcc.NewREMB()
	}
	ircv.OnFrame = func(f rtc.Frame, _ time.Duration) { sfu.OnFrame(f) }
	path := netsim.NewLink(eng, sp.IngestRate, rtt/2, sp.IngestQueue, ircv)
	isnd = rtc.NewSender(eng, sfuIngestFlowID, path, ctrl, spec)
	enc := rtc.NewEncoder(eng, spec, isnd.QueueFrame)
	isnd.Start()
	enc.Start()
	return sfu
}

// attachSubscriber wires one SFU fan-out leg: the relay forwards the
// subscriber's selected simulcast layer through the cellular network to
// the UE's jitter buffer; the leg's own congestion controller paces the
// forwarding and drives layer selection. The forwarding pacer lives on
// the wired-core shard with the relay; the receiver lives on the UE's
// cell shard; the two wired hops between them are the scenario's
// cross-shard boundaries (plain links when both sides share a shard).
func attachSubscriber(ue, core *sim.Shard, sfu *rtc.SFU, fs *FlowSpec, fr *FlowResult, dev device,
	ctrl cc.Controller, fb cc.FeedbackSource,
	onData func(time.Duration, *netsim.Packet, time.Duration), end time.Duration) {
	var sub *rtc.Subscriber
	ackLink := netsim.NewCrossLink(ue, core, 0, fs.RTTBase/2, 0,
		netsim.HandlerFunc(func(now time.Duration, p *netsim.Packet) {
			sub.Send.HandlePacket(now, p)
		}))
	srcv := rtc.NewReceiver(ue.Engine, fs.ID, ackLink, sfu.LegSpec())
	srcv.Transport().Feedback = fb
	srcv.OnData = onData
	srcv.EnableSeries(fs.ID)
	dev.RegisterFlow(fs.ID, srcv)

	dataPath := netsim.NewCrossLink(core, ue, fs.InternetRate, fs.RTTBase/2, fs.InternetQueue, dev)
	dataPath.EnableQueueSeries(fs.ID)
	sub = sfu.AddSubscriber(fs.ID, dataPath, ctrl)

	fr.Frames = srcv.Stats()
	fr.msnd = sub.Send
	fr.snd = sub.Send.Transport()
	core.Engine.At(fr.start, sub.Send.Start)
	if fr.stop < end {
		core.Engine.At(fr.stop, sub.Send.Stop)
	}
}

// RTCScenario is the interactive-call family: the steady-state topology
// carrying a frame-level adaptive video stream instead of a bulk
// download, measured on frame-level QoE (p50/p95 frame delay, freeze
// time, frames past deadline). Supports both RATs and the Cells and
// CapacityNoise axes, like steady.
func RTCScenario(scheme string, p Params) *Scenario {
	sc := SteadyScenario(scheme, p)
	sc.Name = "rtc-" + p.rat() + "-" + scheme
	sc.Flows[0].Media = &rtc.MediaSpec{}
	return sc
}

// SFUSubscribers is the fan-out width of the sfu scenario family: the
// many-users scale axis.
const SFUSubscribers = 32

// SFUScenario fans one simulcast ingest out to SFUSubscribers UEs spread
// across both LTE and NR cells (Params.Cells selects cells per RAT,
// default 2). The first subscriber runs the scheme under test and sits on
// the RAT the rat axis names; the rest run the GCC baseline, alternating
// between the LTE and NR cell sets with a spread of signal strengths and
// server RTTs.
func SFUScenario(scheme string, p Params) *Scenario {
	cellsPerRAT := p.cellCount(2)
	sc := &Scenario{
		Name: "sfu-" + p.rat() + "-" + scheme, Seed: 77, Duration: p.dur(4 * time.Second),
		SFU: &SFUSpec{
			IngestRTT:   20 * time.Millisecond,
			IngestRate:  100e6,
			IngestQueue: 128 * 1500,
		},
	}
	for c := 0; c < cellsPerRAT; c++ {
		sc.Cells = append(sc.Cells, CellSpec{ID: 1 + c, NPRB: 100, Control: controlFor(p)})
		sc.NRCells = append(sc.NRCells, NRCellSpec{ID: 101 + c, Mu: 1, BandwidthMHz: 100, Control: controlFor(p)})
	}
	for i := 0; i < SFUSubscribers; i++ {
		onNR := i%2 == 1
		if i == 0 {
			onNR = p.rat() == RATNR
		}
		ue := UESpec{ID: i + 1, RNTI: uint16(61 + i), RSSI: p.rssi(-85 - float64(i%6)*3)}
		if onNR {
			ue.NRCellIDs = []int{101 + i%cellsPerRAT}
		} else {
			ue.CellIDs = []int{1 + i%cellsPerRAT}
		}
		sc.UEs = append(sc.UEs, ue)
		legScheme := "gcc"
		if i == 0 {
			legScheme = scheme
		}
		sc.Flows = append(sc.Flows, FlowSpec{
			ID: i + 1, UE: i + 1, Scheme: legScheme, Start: 0,
			RTTBase: time.Duration(30+10*(i%4)) * time.Millisecond,
			SFULeg:  true,
		})
	}
	return p.apply(sc)
}
