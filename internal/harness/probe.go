package harness

import (
	"fmt"

	"pbecc/internal/core"
	"pbecc/internal/lte"
	"pbecc/internal/nr"
	"pbecc/internal/obs"
	"pbecc/internal/phy"
	"pbecc/internal/sim"
)

// Probe metrics: sample volume and the distribution of the per-sample
// capacity estimation error (percent, power-of-two buckets).
var (
	mProbeSamples = obs.NewCounter("pbe.probe_samples")
	mProbeErrPct  = obs.NewHistogram("pbe.capacity_err_pct")
)

// Capacity series (40 ms windows, Mbit/s; tid = UE ID): the oracle
// monitor's ground-truth capacity, and the estimate the transport last
// acted on (monitor-consuming schemes only). For every other scheme the
// harness stands up a truth-only oracle for the measured UE, so the
// convergence and tracking analytics have the same reference trajectory
// for all ten schemes.
var (
	seriesTruth = obs.Series("monitor.truth")
	seriesEst   = obs.Series("monitor.est")
)

// pbeProbe measures how accurate PBE-CC's capacity estimate actually is,
// per UE: alongside the monitor the transport uses (which may see PDCCH
// decode errors and the measurement-noise hook), the probe runs a second
// "oracle" monitor fed the same control information directly, with no
// noise - the ground truth the paper's Figure 6 methodology compares
// against. Once per primary-cell scheduling slot it records the relative
// error between the estimate the transport last acted on and the oracle's
// current value.
//
// The probe is strictly passive and always on for PBE flows: it reads the
// transport monitor only through Monitor.LastCapacityBits (never calling
// CapacityBits, which would draw from the Noise hook's RNG and perturb
// the run it observes), and the oracle has no noise source, so its own
// CapacityBits calls are pure. Sweep rows are therefore byte-identical
// whether or not the obs layer is enabled.
type pbeProbe struct {
	mon    *core.Monitor
	oracle *core.Monitor

	sumAbs float64
	n      uint64
}

// newPBEProbe builds the probe for one UE's transport monitor. The caller
// must mirror every AttachCell/DetachCell on the oracle and feed it each
// cell's reports directly (bypassing any PDCCH decode path).
func newPBEProbe(mon *core.Monitor, rnti uint16) *pbeProbe {
	oracle := core.NewMonitor(rnti)
	oracle.UseFilter = mon.UseFilter
	return &pbeProbe{mon: mon, oracle: oracle}
}

// sampler returns the per-slot callback attached to the UE's primary
// cell, after both monitor feeds, so it observes a fully ingested slot.
// When the run is traced it also emits the error as a per-UE counter
// track (batched per 40 ms window), and when it records series it
// downsamples truth and estimate into the capacity tracks.
func (p *pbeProbe) sampler(eng *sim.Engine, ueID int) lte.Monitor {
	var track string
	var truthTrack, estTrack *obs.SeriesTrack
	seriesInit := false
	return func(rep *lte.SubframeReport) {
		if !seriesInit {
			seriesInit = true
			if sb := eng.SeriesBuffer(); sb != nil {
				truthTrack = sb.Track(seriesTruth, ueID)
				estTrack = sb.Track(seriesEst, ueID)
			}
		}
		est := p.mon.LastCapacityBits()
		truth := p.oracle.CapacityBits()
		if truth > 0 {
			truthTrack.Sample(eng.Now(), truth/1e3)
		}
		if est <= 0 || truth <= 0 {
			return // no feedback taken yet, or an empty window
		}
		estTrack.Sample(eng.Now(), est/1e3)
		e := (est - truth) / truth
		if e < 0 {
			e = -e
		}
		p.sumAbs += e
		p.n++
		if obs.Enabled() {
			mProbeSamples.Inc()
			mProbeErrPct.Observe(int64(e * 100))
		}
		if buf := eng.ObsBuffer(); buf != nil {
			if track == "" {
				track = fmt.Sprintf("pbe/ue%d/err_pct", ueID)
			}
			buf.CounterWindowed(track, eng.Now(), e*100)
		}
	}
}

// ErrPct returns the mean absolute relative estimation error in percent
// (0 when no sample was taken).
func (p *pbeProbe) ErrPct() float64 {
	if p.n == 0 {
		return 0
	}
	return 100 * p.sumAbs / float64(p.n)
}

// attachTruthOracle stands up a truth-only oracle monitor for a UE whose
// measured flow's scheme never reads the PBE monitor: the series layer
// still needs the ground-truth capacity trajectory so convergence time
// and tracking lag are defined for every scheme. The oracle mirrors the
// probe oracle's attach discipline (direct feeds, no noise, no decode
// path) and is strictly passive, so attaching it never changes the run.
func attachTruthOracle(sc *Scenario, eng *sim.Engine, us *UESpec, dev device,
	cells map[int]*lte.Cell, nrCells map[int]*nr.Cell, channels map[[2]int]*phy.Channel) {
	sb := eng.SeriesBuffer()
	if sb == nil {
		return
	}
	oracle := core.NewMonitor(us.RNTI)
	oracle.UseFilter = !sc.DisableUserFilter

	attachNR := func(cid int) {
		cell := nrCells[cid]
		ch := channels[[2]int{us.ID, cid}]
		oracle.AttachCell(core.CellInfo{
			ID:               cell.ID,
			NPRB:             cell.NPRB,
			SlotsPerSubframe: cell.SlotsPerSubframe(),
			CBGBits:          nr.CodeBlockBits,
			Rate:             func() float64 { return ch.MCS().BitsPerPRB() },
			BER:              func() float64 { return ch.BER() },
		})
	}
	attachLTE := func(active []*lte.Cell) {
		activeSet := map[int]bool{}
		for _, cid := range us.NRCellIDs {
			activeSet[cid] = true // NR attach/detach is handled separately
		}
		for _, c := range active {
			activeSet[c.ID] = true
			already := false
			for _, id := range oracle.ActiveCellIDs() {
				if id == c.ID {
					already = true
				}
			}
			if !already {
				ch := channels[[2]int{us.ID, c.ID}]
				oracle.AttachCell(core.CellInfo{
					ID:   c.ID,
					NPRB: c.NPRB,
					Rate: func() float64 { return ch.MCS().BitsPerPRB() },
					BER:  func() float64 { return ch.BER() },
				})
			}
		}
		for _, id := range append([]int(nil), oracle.ActiveCellIDs()...) {
			if !activeSet[id] {
				oracle.DetachCell(id)
			}
		}
	}

	switch dev := dev.(type) {
	case *lte.UE:
		attachLTE(dev.ActiveCells())
		dev.OnActiveChange(attachLTE)
	case *nr.ENDC:
		anchor := dev.AnchorUE()
		attachLTE(anchor.ActiveCells())
		anchor.OnActiveChange(attachLTE)
		nrID := us.NRCellIDs[0]
		dev.OnSecondaryChange(func(active bool) {
			if active {
				attachNR(nrID)
			} else {
				oracle.DetachCell(nrID)
			}
		})
	case *nr.UE:
		for _, cid := range us.NRCellIDs {
			attachNR(cid)
		}
	}
	for _, cid := range us.CellIDs {
		cells[cid].AttachMonitor(oracle.OnSubframe)
	}
	for _, cid := range us.NRCellIDs {
		nrCells[cid].AttachMonitor(oracle.OnSubframe)
	}

	track := sb.Track(seriesTruth, us.ID)
	sample := func(rep *lte.SubframeReport) {
		if truth := oracle.CapacityBits(); truth > 0 {
			track.Sample(eng.Now(), truth/1e3)
		}
	}
	if len(us.CellIDs) > 0 {
		cells[us.CellIDs[0]].AttachMonitor(sample)
	} else {
		nrCells[us.NRCellIDs[0]].AttachMonitor(sample)
	}
}
