package harness

import (
	"fmt"

	"pbecc/internal/core"
	"pbecc/internal/lte"
	"pbecc/internal/obs"
	"pbecc/internal/sim"
)

// Probe metrics: sample volume and the distribution of the per-sample
// capacity estimation error (percent, power-of-two buckets).
var (
	mProbeSamples = obs.NewCounter("pbe.probe_samples")
	mProbeErrPct  = obs.NewHistogram("pbe.capacity_err_pct")
)

// pbeProbe measures how accurate PBE-CC's capacity estimate actually is,
// per UE: alongside the monitor the transport uses (which may see PDCCH
// decode errors and the measurement-noise hook), the probe runs a second
// "oracle" monitor fed the same control information directly, with no
// noise - the ground truth the paper's Figure 6 methodology compares
// against. Once per primary-cell scheduling slot it records the relative
// error between the estimate the transport last acted on and the oracle's
// current value.
//
// The probe is strictly passive and always on for PBE flows: it reads the
// transport monitor only through Monitor.LastCapacityBits (never calling
// CapacityBits, which would draw from the Noise hook's RNG and perturb
// the run it observes), and the oracle has no noise source, so its own
// CapacityBits calls are pure. Sweep rows are therefore byte-identical
// whether or not the obs layer is enabled.
type pbeProbe struct {
	mon    *core.Monitor
	oracle *core.Monitor

	sumAbs float64
	n      uint64
}

// newPBEProbe builds the probe for one UE's transport monitor. The caller
// must mirror every AttachCell/DetachCell on the oracle and feed it each
// cell's reports directly (bypassing any PDCCH decode path).
func newPBEProbe(mon *core.Monitor, rnti uint16) *pbeProbe {
	oracle := core.NewMonitor(rnti)
	oracle.UseFilter = mon.UseFilter
	return &pbeProbe{mon: mon, oracle: oracle}
}

// sampler returns the per-slot callback attached to the UE's primary
// cell, after both monitor feeds, so it observes a fully ingested slot.
// When the run is traced it also emits the error as a per-UE counter
// track.
func (p *pbeProbe) sampler(eng *sim.Engine, ueID int) lte.Monitor {
	var track string
	return func(rep *lte.SubframeReport) {
		est := p.mon.LastCapacityBits()
		truth := p.oracle.CapacityBits()
		if est <= 0 || truth <= 0 {
			return // no feedback taken yet, or an empty window
		}
		e := (est - truth) / truth
		if e < 0 {
			e = -e
		}
		p.sumAbs += e
		p.n++
		if obs.Enabled() {
			mProbeSamples.Inc()
			mProbeErrPct.Observe(int64(e * 100))
		}
		if buf := eng.ObsBuffer(); buf != nil {
			if track == "" {
				track = fmt.Sprintf("pbe/ue%d/err_pct", ueID)
			}
			buf.CounterEvent(track, eng.Now(), e*100)
		}
	}
}

// ErrPct returns the mean absolute relative estimation error in percent
// (0 when no sample was taken).
func (p *pbeProbe) ErrPct() float64 {
	if p.n == 0 {
		return 0
	}
	return 100 * p.sumAbs / float64(p.n)
}
