package harness

import (
	"strconv"
	"testing"
	"time"
)

// findRow returns the first row whose first cell matches key.
func findRow(tb *Table, key string) []string {
	for _, r := range tb.Rows {
		if r[0] == key {
			return r
		}
	}
	return nil
}

func cellFloat(t *testing.T, row []string, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		t.Fatalf("cell %q not a float: %v", row[col], err)
	}
	return v
}

// TestNRTputPBELowDelay checks the headline NR behaviour: PBE-CC fills a
// wide NR carrier at a small fraction of the loss-based baselines' delay.
func TestNRTputPBELowDelay(t *testing.T) {
	tb := NRTput(true)[0]
	for _, links := range []string{"idle", "busy"} {
		var pbe, cubic []string
		for _, r := range tb.Rows {
			if r[1] != links {
				continue
			}
			switch r[0] {
			case "pbe":
				pbe = r
			case "cubic":
				cubic = r
			}
		}
		if pbe == nil || cubic == nil {
			t.Fatalf("missing pbe/cubic rows for %s links", links)
		}
		pbeTput, cubicTput := cellFloat(t, pbe, 2), cellFloat(t, cubic, 2)
		pbeP95, cubicP95 := cellFloat(t, pbe, 4), cellFloat(t, cubic, 4)
		if pbeTput < 100 {
			t.Errorf("%s: PBE NR throughput %.1f Mbit/s implausibly low", links, pbeTput)
		}
		if pbeTput < 0.6*cubicTput {
			t.Errorf("%s: PBE %.1f Mbit/s far below CUBIC %.1f", links, pbeTput, cubicTput)
		}
		if pbeP95 >= cubicP95 {
			t.Errorf("%s: PBE p95 delay %.1f ms not below CUBIC %.1f ms", links, pbeP95, cubicP95)
		}
	}
}

// TestNRBlockageTracking is the acceptance scenario: through an abrupt
// mmWave capacity collapse PBE must track the new capacity within a few
// RTTs and keep delay bounded, while the loss-based baseline overshoots
// into the stalled queue.
func TestNRBlockageTracking(t *testing.T) {
	tables := NRBlockage(true)
	timeline, delays := tables[0], tables[1]

	// During the steady blocked phase (skipping the transition bin) every
	// scheme is limited by the ~9 Mbit/s blocked carrier; PBE must be
	// there too, i.e. it tracked the collapse rather than stalling.
	var pbeBlocked []float64
	blockedBins := 0
	for _, r := range timeline.Rows {
		if r[4] != "BLOCKED" {
			continue
		}
		blockedBins++
		if blockedBins == 1 {
			continue // transition bin: drains pre-blockage flight
		}
		pbeBlocked = append(pbeBlocked, cellFloat(t, r, 1))
	}
	if len(pbeBlocked) == 0 {
		t.Fatal("no steady blocked bins in timeline")
	}
	for _, v := range pbeBlocked {
		if v <= 1 || v > 40 {
			t.Errorf("PBE rate %.1f Mbit/s in blocked phase, want ~9 (tracked collapse)", v)
		}
	}

	// After recovery PBE must ramp back up within the first 250 ms bin to
	// a large fraction of its pre-blockage rate (a few RTTs at 20 ms).
	var preRate, postRate float64
	seenBlocked := false
	for _, r := range timeline.Rows {
		if r[4] == "BLOCKED" {
			seenBlocked = true
			continue
		}
		v := cellFloat(t, r, 1)
		if !seenBlocked {
			preRate = v // last unblocked bin before the window
		} else if postRate == 0 {
			postRate = v // first bin after recovery
		}
	}
	if postRate < preRate/2 {
		t.Errorf("PBE recovered to %.1f of pre-blockage %.1f Mbit/s within 250 ms, want >50%%",
			postRate, preRate)
	}

	// The loss-based baseline pays for the overshoot in queueing delay.
	pbe, cubic := findRow(&delays, "pbe"), findRow(&delays, "cubic")
	if pbe == nil || cubic == nil {
		t.Fatal("missing delay rows")
	}
	if pbeAvg, cubicAvg := cellFloat(t, pbe, 1), cellFloat(t, cubic, 1); pbeAvg >= cubicAvg {
		t.Errorf("PBE avg delay %.1f ms not below CUBIC %.1f ms", pbeAvg, cubicAvg)
	}
}

// TestNRDualConnectivityGain checks the EN-DC UE activates its NR leg and
// clearly outperforms the same device locked to LTE.
func TestNRDualConnectivityGain(t *testing.T) {
	tb := NRDualConnectivity(true)[0]
	row := findRow(&tb, "pbe")
	if row == nil {
		t.Fatal("missing pbe row")
	}
	if row[4] != "true" {
		t.Fatal("EN-DC did not activate the NR secondary cell")
	}
	lteOnly, endc := cellFloat(t, row, 1), cellFloat(t, row, 2)
	if endc < 1.5*lteOnly {
		t.Fatalf("EN-DC %.1f Mbit/s not clearly above LTE-only %.1f Mbit/s", endc, lteOnly)
	}
}

// TestNRCompeteDelay checks PBE concedes to the on-off competitor without
// building a queue: comparable throughput at far lower p95 delay.
func TestNRCompeteDelay(t *testing.T) {
	tb := NRCompete(true)[0]
	pbe, bbr := findRow(&tb, "pbe"), findRow(&tb, "bbr")
	if pbe == nil || bbr == nil {
		t.Fatal("missing rows")
	}
	if pbeTput, bbrTput := cellFloat(t, pbe, 1), cellFloat(t, bbr, 1); pbeTput < 0.5*bbrTput {
		t.Errorf("PBE %.1f Mbit/s below half of BBR %.1f", pbeTput, bbrTput)
	}
	if pbeP95, bbrP95 := cellFloat(t, pbe, 3), cellFloat(t, bbr, 3); pbeP95 >= bbrP95 {
		t.Errorf("PBE p95 %.1f ms not below BBR %.1f ms", pbeP95, bbrP95)
	}
}

// TestNRScenarioBuilders covers the spec plumbing: NR cells derive PRB
// counts from bandwidth, EN-DC UEs need exactly one NR cell, and the
// harness rejects UEs with no cells.
func TestNRScenarioBuilders(t *testing.T) {
	sc := NRScenario("bbr", 1, 100, -88, false, 200*time.Millisecond)
	r := Run(sc)
	if len(r.Flows) != 1 || r.Flows[0].Received == 0 {
		t.Fatal("NR scenario moved no packets")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("UE with no cells did not panic")
		}
	}()
	Run(&Scenario{
		Name: "bad", Seed: 1, Duration: 10 * time.Millisecond,
		UEs:   []UESpec{{ID: 1, RNTI: 61}},
		Flows: []FlowSpec{{ID: 1, UE: 1, Scheme: "bbr"}},
	})
}

// TestExperimentIDsUnique guards the registry against duplicate IDs as
// nr-* experiments join the paper figures.
func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"nr-tput", "nr-blockage", "nr-dc", "nr-compete"} {
		if !seen[id] {
			t.Fatalf("experiment %q not registered", id)
		}
	}
}
