package trace

import (
	"math/rand"
	"testing"
	"time"

	"pbecc/internal/lte"
)

func TestControlPopulationCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := Busy()
	for sf := 0; sf < 200000; sf++ {
		c.Tick(sf, rng)
	}
	if c.TotalUsers < 60000 {
		t.Fatalf("only %d users spawned", c.TotalUsers)
	}
	one := 0
	for _, d := range c.Durations() {
		if d == 1 {
			one++
		}
	}
	frac := float64(one) / float64(len(c.Durations()))
	// Figure 7(b): 68.2% of users are active for exactly one subframe.
	if frac < 0.65 || frac < 0.60 || frac > 0.72 {
		t.Fatalf("1-subframe fraction = %.3f, want ~0.682", frac)
	}
	fourPRB := 0
	for _, r := range c.RBGs() {
		if r == 1 {
			fourPRB++
		}
	}
	pfrac := float64(fourPRB) / float64(len(c.RBGs()))
	// Figure 7(b): ~47.7% of users occupy exactly four PRBs (one RBG).
	if pfrac < 0.40 || pfrac > 0.56 {
		t.Fatalf("4-PRB fraction = %.3f, want ~0.48", pfrac)
	}
}

func TestBusyCellActiveUserWindow(t *testing.T) {
	// Distinct users inside a 40 ms window on the busy preset must be
	// around the paper's 15.8 average.
	rng := rand.New(rand.NewSource(2))
	c := Busy()
	var counts []int
	window := map[uint16]int{}
	var events [][]lte.ControlGrant
	for sf := 0; sf < 20000; sf++ {
		g := c.Tick(sf, rng)
		events = append(events, g)
		for _, u := range g {
			window[u.RNTI]++
		}
		if len(events) > 40 {
			for _, u := range events[len(events)-41] {
				window[u.RNTI]--
				if window[u.RNTI] == 0 {
					delete(window, u.RNTI)
				}
			}
		}
		if sf >= 40 && sf%40 == 0 {
			counts = append(counts, len(window))
		}
	}
	var sum float64
	for _, n := range counts {
		sum += float64(n)
	}
	avg := sum / float64(len(counts))
	if avg < 11 || avg > 21 {
		t.Fatalf("avg users per 40ms window = %.1f, want ~15.8", avg)
	}
}

func TestIdlePresetNearlyQuiet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := Idle()
	grants := 0
	for sf := 0; sf < 10000; sf++ {
		grants += len(c.Tick(sf, rng))
	}
	if grants > 1500 {
		t.Fatalf("idle cell produced %d grants in 10s", grants)
	}
}

func TestLongUsersFilterable(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := Busy()
	for sf := 0; sf < 50000; sf++ {
		c.Tick(sf, rng)
	}
	for i, d := range c.Durations() {
		if d > 1 && c.RBGs()[i] != 1 {
			t.Fatal("long-lived control user with >1 RBG would evade the Pa filter")
		}
		if d > longUserMaxDur {
			t.Fatalf("duration %d beyond cap", d)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var sum int
	n := 100000
	for i := 0; i < n; i++ {
		sum += poisson(rng, 0.37)
	}
	mean := float64(sum) / float64(n)
	if mean < 0.35 || mean > 0.39 {
		t.Fatalf("poisson mean = %.3f, want 0.37", mean)
	}
	if poisson(rng, 0) != 0 {
		t.Fatal("lambda 0 must give 0")
	}
}

func TestGeometricMean(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var sum int
	n := 100000
	for i := 0; i < n; i++ {
		sum += geometric(rng, 0.125)
	}
	mean := float64(sum) / float64(n)
	if mean < 6 || mean > 8.5 {
		t.Fatalf("geometric mean = %.2f, want ~7", mean)
	}
}

func TestDiurnalShape(t *testing.T) {
	// Peak hours dwarf night hours; the 10 MHz cell is off 1-3 am.
	if DiurnalUsers(100, 14) < 200 {
		t.Fatal("20 MHz peak too low")
	}
	if DiurnalUsers(100, 3) > 20 {
		t.Fatal("20 MHz night too high")
	}
	for h := 1; h <= 3; h++ {
		if DiurnalUsers(50, h) != 0 {
			t.Fatalf("10 MHz cell must be off at %dh", h)
		}
	}
	if DiurnalUsers(50, 14) < 100 {
		t.Fatal("10 MHz peak too low")
	}
	// Wrap-around hours.
	if DiurnalUsers(100, 26) != DiurnalUsers(100, 2) {
		t.Fatal("hour wrap broken")
	}
}

func TestRatePopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	below := 0
	n := 100000
	for i := 0; i < n; i++ {
		r := SampleUserRate(rng)
		if r <= 0 || r > 1.8 {
			t.Fatalf("rate %v out of range", r)
		}
		if r < 0.9 {
			below++
		}
	}
	frac := float64(below) / float64(n)
	// Figure 11(b): 71.9-77.4% of users below half the maximum.
	if frac < 0.68 || frac > 0.80 {
		t.Fatalf("below-half fraction = %.3f, want ~0.74", frac)
	}
}

func TestSessionOnOff(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var onSum, offSum time.Duration
	n := 50000
	for i := 0; i < n; i++ {
		on, off := SessionOnOff(rng)
		if on < 100*time.Millisecond || on > 4*time.Second {
			t.Fatalf("on-time %v outside clamp", on)
		}
		if off < 100*time.Millisecond || off > 4*time.Second {
			t.Fatalf("off-time %v outside clamp", off)
		}
		onSum += on
		offSum += off
	}
	onMean := onSum / time.Duration(n)
	offMean := offSum / time.Duration(n)
	// Clamping pulls the means toward the window slightly; both must
	// stay near their calibration and keep the ~40% duty cycle.
	duty := float64(onMean) / float64(onMean+offMean)
	if duty < 0.30 || duty > 0.50 {
		t.Fatalf("duty cycle %.3f, want ~0.4 (on %v, off %v)", duty, onMean, offMean)
	}
}
