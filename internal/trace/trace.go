// Package trace generates the workloads of the paper's evaluation:
// control-plane user populations calibrated to Figure 7, the diurnal
// active-user counts of Figure 11(a), and the physical-rate population of
// Figure 11(b). All generators are driven by the simulation engine's
// seeded randomness, so runs are reproducible.
package trace

import (
	"math"
	"math/rand"
	"time"

	"pbecc/internal/lte"
)

// Control-traffic population parameters matched to Figure 7(b):
// 68.2% of detected users are active for exactly one subframe; 47.7%
// occupy exactly four PRBs (one RBG at 20 MHz); longer-lived control users
// stay at one RBG so PBE-CC's P_a filter removes them.
const (
	oneSubframeFrac  = 0.682
	fourPRBShortFrac = 0.25 // short users with exactly one RBG
	twoRBGShortFrac  = 0.45
	longUserMeanDur  = 8
	longUserMaxDur   = 40
)

// Arrival presets: a busy 20 MHz cell shows ~15.8 distinct active users
// per 40 ms window (Figure 7a), an idle late-night cell close to none.
const (
	BusyArrivalPerMs = 0.37
	IdleArrivalPerMs = 0.015
)

// ControlTraffic is an lte.ControlSource producing the calibrated
// control-plane population.
type ControlTraffic struct {
	ArrivalPerMs float64

	active   []ctrlUser
	nextRNTI uint32

	// Counters for the Figure 7 reproduction.
	TotalUsers uint64
	durations  []int
	rbgCounts  []int
}

type ctrlUser struct {
	rnti      uint16
	rbgs      int
	remaining int
}

// NewControlTraffic returns a source with the given Poisson arrival rate
// of control users per subframe.
func NewControlTraffic(arrivalPerMs float64) *ControlTraffic {
	return &ControlTraffic{ArrivalPerMs: arrivalPerMs, nextRNTI: 0x4000}
}

// Busy returns a source calibrated to the paper's busy daytime cell.
func Busy() *ControlTraffic { return NewControlTraffic(BusyArrivalPerMs) }

// Idle returns a source calibrated to a late-night cell.
func Idle() *ControlTraffic { return NewControlTraffic(IdleArrivalPerMs) }

// Tick implements lte.ControlSource.
func (c *ControlTraffic) Tick(subframe int, rng *rand.Rand) []lte.ControlGrant {
	for n := poisson(rng, c.ArrivalPerMs); n > 0; n-- {
		c.spawn(rng)
	}
	grants := make([]lte.ControlGrant, 0, len(c.active))
	out := c.active[:0]
	for i := range c.active {
		u := &c.active[i]
		grants = append(grants, lte.ControlGrant{RNTI: u.rnti, RBGs: u.rbgs})
		u.remaining--
		if u.remaining > 0 {
			out = append(out, *u)
		}
	}
	c.active = out
	return grants
}

func (c *ControlTraffic) spawn(rng *rand.Rand) {
	c.TotalUsers++
	c.nextRNTI++
	if c.nextRNTI > 0xFFF0 {
		c.nextRNTI = 0x4000
	}
	u := ctrlUser{rnti: uint16(c.nextRNTI)}
	if rng.Float64() < oneSubframeFrac {
		u.remaining = 1
		r := rng.Float64()
		switch {
		case r < fourPRBShortFrac:
			u.rbgs = 1
		case r < fourPRBShortFrac+twoRBGShortFrac:
			u.rbgs = 2
		default:
			u.rbgs = 3
		}
	} else {
		// Longer-lived parameter-update users: small allocation so the
		// Ta/Pa filter removes them, geometric duration.
		u.rbgs = 1
		u.remaining = 2 + geometric(rng, 1.0/float64(longUserMeanDur))
		if u.remaining > longUserMaxDur {
			u.remaining = longUserMaxDur
		}
	}
	c.durations = append(c.durations, u.remaining)
	c.rbgCounts = append(c.rbgCounts, u.rbgs)
	c.active = append(c.active, u)
}

// Durations returns the spawned users' activity lengths in subframes.
func (c *ControlTraffic) Durations() []int { return c.durations }

// RBGs returns the spawned users' RBG counts.
func (c *ControlTraffic) RBGs() []int { return c.rbgCounts }

// poisson samples a Poisson variate by Knuth's method (lambda is small).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// geometric samples a geometric variate with success probability p
// (support 0,1,2,...).
func geometric(rng *rand.Rand, p float64) int {
	if p <= 0 || p >= 1 {
		return 0
	}
	return int(math.Log(1-rng.Float64()) / math.Log(1-p))
}

// diurnal20 and diurnal10 approximate Figure 11(a): distinct active users
// per hour of day for the 20 MHz and 10 MHz cells. The 10 MHz cell is
// switched off by the operator between midnight and 3 am.
var diurnal20 = [24]int{
	45, 30, 20, 13, 18, 32, 60, 92, 120, 150, 170, 181,
	195, 205, 233, 212, 195, 198, 203, 185, 150, 112, 80, 58,
}

var diurnal10 = [24]int{
	6, 0, 0, 0, 9, 18, 34, 50, 66, 80, 90, 97,
	100, 110, 135, 121, 104, 100, 106, 95, 78, 58, 34, 15,
}

// DiurnalUsers returns the expected number of distinct users communicating
// with a cell of the given bandwidth (in PRBs: 100 = 20 MHz, 50 = 10 MHz)
// during the given hour of day (0-23).
func DiurnalUsers(nprb, hour int) int {
	h := ((hour % 24) + 24) % 24
	if nprb >= 75 {
		return diurnal20[h]
	}
	return diurnal10[h]
}

// Session-churn parameters for the metro workload: data sessions arrive
// and depart continuously, with short-lived sessions dominating the
// population the way short control-plane users dominate Figure 7. Mean
// on-time is under a second; off-times are a little longer, so roughly
// 40% of background users transmit at any instant - the churn that makes
// a cell's free capacity move on PBE-CC's measurement timescale.
const (
	sessionOnMean  = 700 * time.Millisecond
	sessionOffMean = 1100 * time.Millisecond
	sessionMin     = 100 * time.Millisecond
	sessionMax     = 4 * time.Second
)

// SessionOnOff draws one background user's on/off cycle durations:
// exponentially distributed (memoryless arrivals/departures), clamped to
// keep a single user from either flapping every subframe or squatting
// for a whole scenario. Used by the metro family's churning population.
func SessionOnOff(rng *rand.Rand) (on, off time.Duration) {
	draw := func(mean time.Duration) time.Duration {
		d := time.Duration(rng.ExpFloat64() * float64(mean))
		if d < sessionMin {
			d = sessionMin
		}
		if d > sessionMax {
			d = sessionMax
		}
		return d
	}
	return draw(sessionOnMean), draw(sessionOffMean)
}

// SampleUserRate draws a user's physical data rate in Mbit/s/PRB from the
// population of Figure 11(b): a majority of low-rate users (77.4% and
// 71.9% below half the 1.8 Mbit/s/PRB maximum for the 10 and 20 MHz
// cells) with a high-rate tail.
func SampleUserRate(rng *rand.Rand) float64 {
	r := rng.Float64()
	switch {
	case r < 0.50:
		return 0.05 + rng.Float64()*0.45 // deep low-rate mass
	case r < 0.74:
		return 0.5 + rng.Float64()*0.4 // below half max
	default:
		return 0.9 + rng.Float64()*0.9 // high-rate tail up to 1.8
	}
}
