package transport

import (
	"time"

	"pbecc/internal/cc"
	"pbecc/internal/core"
)

// ccAck converts a wire acknowledgement into the controller's sample
// format. Delivery-rate sampling over real sockets uses the acked bytes
// per smoothed RTT as a coarse estimate.
func ccAck(now time.Duration, a Ack, rec sentRec, rtt, srtt time.Duration, inflight int) cc.AckSample {
	var rate float64
	if srtt > 0 {
		rate = float64(rec.bytes*8) / srtt.Seconds() * float64(inflight/rec.bytes+1)
	}
	return cc.AckSample{
		Now:                now,
		Seq:                a.AckSeq,
		AckedBytes:         rec.bytes,
		RTT:                rtt,
		SRTT:               srtt,
		OneWayDelay:        time.Duration(a.ReceivedNanos - a.DataSentNanos),
		DeliveryRate:       rate,
		InflightBytes:      inflight,
		FeedbackRate:       core.DecodeRate(a.RateWord),
		InternetBottleneck: a.InternetBottleneck,
	}
}
