package transport

import (
	"context"
	"net"
	"sync"
	"time"

	"pbecc/internal/core"
)

// This file provides the real-socket path: a PBE-CC sender and mobile
// client speaking the wire format over net.UDPConn, plus a rate-shaped
// relay standing in for the cellular bottleneck. The relay publishes its
// current rate to the client the way the PDCCH monitor would (the client
// of the paper learns capacity from decoded control messages; over
// loopback there is no radio, so the emulated link's rate plays that
// role).

// Relay forwards UDP datagrams from an ingress socket to a destination at
// a shaped rate with a drop-tail queue, emulating the cellular link.
type Relay struct {
	mu    sync.Mutex
	rate  float64 // bits/sec
	queue [][]byte
	bytes int
	max   int

	in   *net.UDPConn
	out  *net.UDPConn
	dst  *net.UDPAddr
	stop context.CancelFunc
	done chan struct{}

	peerMu sync.Mutex
	peer   *net.UDPAddr // last ingress sender, for the reverse (ack) path
}

// NewRelay creates a relay listening on a fresh loopback port, forwarding
// to dst at rateBps with a queue of queueBytes.
func NewRelay(rateBps float64, queueBytes int, dst *net.UDPAddr) (*Relay, error) {
	in, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	out, err := net.DialUDP("udp", nil, dst)
	if err != nil {
		in.Close()
		return nil, err
	}
	r := &Relay{rate: rateBps, max: queueBytes, in: in, out: out, dst: dst,
		done: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	r.stop = cancel
	go r.readLoop(ctx)
	go r.drainLoop(ctx)
	go r.reverseLoop(ctx)
	return r, nil
}

// reverseLoop carries acknowledgements from the destination back to the
// most recent ingress peer, unshaped (acks are tiny).
func (r *Relay) reverseLoop(ctx context.Context) {
	buf := make([]byte, 2048)
	for ctx.Err() == nil {
		r.out.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		n, err := r.out.Read(buf)
		if err != nil {
			continue
		}
		r.peerMu.Lock()
		peer := r.peer
		r.peerMu.Unlock()
		if peer != nil {
			r.in.WriteToUDP(buf[:n], peer)
		}
	}
}

// Addr returns the relay's ingress address.
func (r *Relay) Addr() *net.UDPAddr { return r.in.LocalAddr().(*net.UDPAddr) }

// SetRate changes the shaped rate (the capacity variation a cell shows).
func (r *Relay) SetRate(bps float64) {
	r.mu.Lock()
	r.rate = bps
	r.mu.Unlock()
}

// Rate returns the current shaped rate in bits/sec.
func (r *Relay) Rate() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rate
}

// Close stops the relay.
func (r *Relay) Close() {
	r.stop()
	r.in.Close()
	r.out.Close()
	<-r.done
}

func (r *Relay) readLoop(ctx context.Context) {
	buf := make([]byte, 2048)
	for ctx.Err() == nil {
		r.in.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		n, from, err := r.in.ReadFromUDP(buf)
		if err != nil {
			continue
		}
		r.peerMu.Lock()
		r.peer = from
		r.peerMu.Unlock()
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		r.mu.Lock()
		if r.bytes+n <= r.max || r.max == 0 {
			r.queue = append(r.queue, pkt)
			r.bytes += n
		}
		r.mu.Unlock()
	}
}

func (r *Relay) drainLoop(ctx context.Context) {
	defer close(r.done)
	for ctx.Err() == nil {
		r.mu.Lock()
		var pkt []byte
		rate := r.rate
		if len(r.queue) > 0 {
			pkt = r.queue[0]
			r.queue = r.queue[1:]
			r.bytes -= len(pkt)
		}
		r.mu.Unlock()
		if pkt == nil {
			time.Sleep(200 * time.Microsecond)
			continue
		}
		r.out.Write(pkt)
		if rate > 0 {
			time.Sleep(time.Duration(float64(len(pkt)*8) / rate * float64(time.Second)))
		}
	}
}

// ClientStats summarizes a UDP client run.
type ClientStats struct {
	Received  uint64
	Bytes     uint64
	MinOWD    time.Duration
	LastState bool
}

// UDPClient is the mobile-side endpoint: it receives data packets,
// estimates one-way delay, asks the capacity oracle for the current rate
// (standing in for the PDCCH monitor), runs the bottleneck detector, and
// returns acknowledgements.
type UDPClient struct {
	conn     *net.UDPConn
	detector *core.Detector
	capacity func() float64 // bits/sec
	start    time.Time

	mu    sync.Mutex
	stats ClientStats
}

// NewUDPClient listens on a fresh loopback port. capacity supplies the
// monitor's current transport-capacity estimate in bits/sec.
func NewUDPClient(capacity func() float64) (*UDPClient, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	return &UDPClient{conn: conn, detector: core.NewDetector(),
		capacity: capacity, start: time.Now()}, nil
}

// Addr returns the client's listening address.
func (c *UDPClient) Addr() *net.UDPAddr { return c.conn.LocalAddr().(*net.UDPAddr) }

// Stats returns a snapshot of the client's counters.
func (c *UDPClient) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close shuts the client socket.
func (c *UDPClient) Close() { c.conn.Close() }

// Run processes data packets until the context is cancelled, acking every
// packet back to its source.
func (c *UDPClient) Run(ctx context.Context) {
	buf := make([]byte, 2048)
	ackBuf := make([]byte, AckLen)
	for ctx.Err() == nil {
		c.conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		n, from, err := c.conn.ReadFromUDP(buf)
		if err != nil {
			continue
		}
		h, payload, err := UnmarshalData(buf[:n])
		if err != nil {
			continue
		}
		now := time.Since(c.start)
		owd := now - time.Duration(h.SentNanos)
		rate := c.capacity()
		npkt := int(core.NpktSubframes * (rate / 1000) / (8 * 1500))
		internet := c.detector.Observe(now, owd, npkt)

		c.mu.Lock()
		c.stats.Received++
		c.stats.Bytes += uint64(len(payload)) + DataHeaderLen
		if c.stats.MinOWD == 0 || owd < c.stats.MinOWD {
			c.stats.MinOWD = owd
		}
		c.stats.LastState = internet
		c.mu.Unlock()

		ack := Ack{
			AckSeq:             h.Seq,
			DataSentNanos:      h.SentNanos,
			ReceivedNanos:      int64(now),
			RateWord:           core.EncodeRate(rate),
			InternetBottleneck: internet,
		}
		an, _ := MarshalAck(ackBuf, ack)
		c.conn.WriteToUDP(ackBuf[:an], from)
	}
}

// SenderStats summarizes a UDP sender run.
type SenderStats struct {
	Sent  uint64
	Acked uint64
	Rate  float64 // last pacing rate
}

// UDPSender drives a core.Sender over a real socket: it paces MSS-sized
// datagrams at the controller's rate, bounded by its window, and feeds
// acknowledgements back into the controller. The controller itself is
// single-threaded by contract (in the simulator it runs on the event
// loop), so every access here is serialized through ctrlMu.
type UDPSender struct {
	conn  *net.UDPConn
	ctrl  *core.Sender
	start time.Time

	ctrlMu sync.Mutex // serializes all ctrl method calls

	mu       sync.Mutex
	inflight map[uint64]sentRec
	stats    SenderStats
}

type sentRec struct {
	at    time.Duration
	bytes int
}

// NewUDPSender dials the destination (typically a relay ingress).
func NewUDPSender(dst *net.UDPAddr) (*UDPSender, error) {
	conn, err := net.DialUDP("udp", nil, dst)
	if err != nil {
		return nil, err
	}
	return &UDPSender{conn: conn, ctrl: core.NewSender(), start: time.Now(),
		inflight: make(map[uint64]sentRec)}, nil
}

// Controller exposes the PBE controller (for inspection). Callers must
// not invoke its methods while Run is active.
func (s *UDPSender) Controller() *core.Sender { return s.ctrl }

// Target returns the controller's current feedback target (thread-safe).
func (s *UDPSender) Target() float64 {
	s.ctrlMu.Lock()
	defer s.ctrlMu.Unlock()
	return s.ctrl.Target()
}

// Stats returns a snapshot of the sender's counters.
func (s *UDPSender) Stats() SenderStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close shuts the sender socket.
func (s *UDPSender) Close() { s.conn.Close() }

// Run transmits until the context is cancelled.
func (s *UDPSender) Run(ctx context.Context) {
	go s.ackLoop(ctx)
	payload := make([]byte, 1500-DataHeaderLen)
	buf := make([]byte, 1500)
	var seq uint64
	var srtt time.Duration
	_ = srtt
	for ctx.Err() == nil {
		now := time.Since(s.start)
		s.mu.Lock()
		var inflightBytes int
		for _, r := range s.inflight {
			inflightBytes += r.bytes
		}
		s.mu.Unlock()

		s.ctrlMu.Lock()
		cwnd := s.ctrl.CWND()
		s.ctrlMu.Unlock()
		if inflightBytes+1500 > cwnd && inflightBytes > 0 {
			time.Sleep(500 * time.Microsecond)
			continue
		}
		seq++
		n, _ := MarshalData(buf, DataHeader{Seq: seq, SentNanos: int64(now)}, payload)
		s.mu.Lock()
		s.inflight[seq] = sentRec{at: now, bytes: n}
		s.stats.Sent++
		s.mu.Unlock()
		s.ctrlMu.Lock()
		s.ctrl.OnSent(now, seq, n, inflightBytes+n)
		rate := s.ctrl.PacingRate()
		s.ctrlMu.Unlock()
		s.conn.Write(buf[:n])
		s.mu.Lock()
		s.stats.Rate = rate
		s.mu.Unlock()
		if rate > 0 {
			time.Sleep(time.Duration(float64(n*8) / rate * float64(time.Second)))
		} else {
			time.Sleep(200 * time.Microsecond)
		}
	}
}

func (s *UDPSender) ackLoop(ctx context.Context) {
	buf := make([]byte, 256)
	var srtt time.Duration
	for ctx.Err() == nil {
		s.conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		n, err := s.conn.Read(buf)
		if err != nil {
			continue
		}
		a, err := UnmarshalAck(buf[:n])
		if err != nil {
			continue
		}
		now := time.Since(s.start)
		s.mu.Lock()
		rec, ok := s.inflight[a.AckSeq]
		if ok {
			delete(s.inflight, a.AckSeq)
			s.stats.Acked++
		}
		var inflightBytes int
		for _, r := range s.inflight {
			inflightBytes += r.bytes
		}
		s.mu.Unlock()
		if !ok {
			continue
		}
		rtt := now - rec.at
		if srtt == 0 {
			srtt = rtt
		} else {
			srtt = (7*srtt + rtt) / 8
		}
		s.ctrlMu.Lock()
		s.ctrl.OnAck(ccAck(now, a, rec, rtt, srtt, inflightBytes))
		s.ctrlMu.Unlock()
	}
}
