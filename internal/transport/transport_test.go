package transport

import (
	"context"
	"net"
	"testing"
	"testing/quick"
	"time"
)

func TestDataWireRoundTrip(t *testing.T) {
	f := func(seq uint64, nanos int64, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		buf := make([]byte, 2048)
		n, err := MarshalData(buf, DataHeader{Seq: seq, SentNanos: nanos}, payload)
		if err != nil {
			return false
		}
		h, p, err := UnmarshalData(buf[:n])
		if err != nil || h.Seq != seq || h.SentNanos != nanos || len(p) != len(payload) {
			return false
		}
		for i := range p {
			if p[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAckWireRoundTrip(t *testing.T) {
	f := func(seq uint64, sent, recv int64, rate uint32, state bool) bool {
		buf := make([]byte, AckLen)
		a := Ack{AckSeq: seq, DataSentNanos: sent, ReceivedNanos: recv,
			RateWord: rate, InternetBottleneck: state}
		n, err := MarshalAck(buf, a)
		if err != nil || n != AckLen {
			return false
		}
		got, err := UnmarshalAck(buf)
		return err == nil && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWireErrors(t *testing.T) {
	if _, _, err := UnmarshalData(make([]byte, 3)); err != ErrShortPacket {
		t.Fatalf("short data err = %v", err)
	}
	if _, err := UnmarshalAck(make([]byte, 3)); err != ErrShortPacket {
		t.Fatalf("short ack err = %v", err)
	}
	bad := make([]byte, 64)
	bad[0] = 0x7F
	if _, _, err := UnmarshalData(bad); err != ErrBadType {
		t.Fatalf("bad data type err = %v", err)
	}
	if _, err := UnmarshalAck(bad); err != ErrBadType {
		t.Fatalf("bad ack type err = %v", err)
	}
	if _, err := MarshalAck(make([]byte, 4), Ack{}); err != ErrShortPacket {
		t.Fatal("marshal into short buffer must fail")
	}
	if _, err := MarshalData(make([]byte, 4), DataHeader{}, make([]byte, 100)); err != ErrShortPacket {
		t.Fatal("marshal data into short buffer must fail")
	}
	// Truncated payload length.
	buf := make([]byte, 2048)
	n, _ := MarshalData(buf, DataHeader{Seq: 1, SentNanos: 2}, make([]byte, 500))
	if _, _, err := UnmarshalData(buf[:n-10]); err != ErrShortPacket {
		t.Fatal("truncated payload must fail")
	}
}

// TestLoopbackEndToEnd runs the full real-socket path for a short burst:
// sender -> relay (shaped to 20 Mbit/s) -> client -> acks -> sender.
func TestLoopbackEndToEnd(t *testing.T) {
	client, err := NewUDPClient(func() float64 { return 20e6 })
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	relay, err := NewRelay(20e6, 256*1024, client.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	sender, err := NewUDPSender(relay.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 700*time.Millisecond)
	defer cancel()
	go client.Run(ctx)
	go sender.Run(ctx)
	<-ctx.Done()
	time.Sleep(50 * time.Millisecond)

	cs := client.Stats()
	ss := sender.Stats()
	if cs.Received == 0 {
		t.Fatal("client received nothing over loopback")
	}
	if ss.Acked == 0 {
		t.Fatal("sender saw no acknowledgements")
	}
	// The controller must have picked up the capacity feedback.
	if sender.Target() <= 0 {
		t.Fatal("PBE controller never received capacity feedback")
	}
}

func TestRelayRateChange(t *testing.T) {
	dst, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	relay, err := NewRelay(10e6, 64*1024, dst.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	if relay.Rate() != 10e6 {
		t.Fatal("initial rate")
	}
	relay.SetRate(40e6)
	if relay.Rate() != 40e6 {
		t.Fatal("rate change not applied")
	}
}

func TestREMBWireRoundTrip(t *testing.T) {
	f := func(nanos int64, rate uint32) bool {
		buf := make([]byte, REMBLen)
		r := REMB{SentNanos: nanos, RateWord: rate}
		n, err := MarshalREMB(buf, r)
		if err != nil || n != REMBLen {
			return false
		}
		got, err := UnmarshalREMB(buf)
		return err == nil && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalREMB(make([]byte, 3)); err != ErrShortPacket {
		t.Fatalf("short remb err = %v", err)
	}
	bad := make([]byte, REMBLen)
	bad[0] = 0x7F
	if _, err := UnmarshalREMB(bad); err != ErrBadType {
		t.Fatalf("bad remb type err = %v", err)
	}
	if _, err := MarshalREMB(make([]byte, 4), REMB{}); err != ErrShortPacket {
		t.Fatal("marshal remb into short buffer must fail")
	}
}
