// Package transport implements PBE-CC's UDP wire protocol: the binary
// data-packet and acknowledgement formats of the paper's user-space
// prototype (§5), plus a runner that drives a PBE-CC sender and receiver
// over real net.UDPConn sockets through a rate-shaped relay emulating the
// cellular link. This is the deployable path: only content servers and
// mobile clients need it, exactly as the paper argues.
package transport

import (
	"encoding/binary"
	"errors"
	"time"
)

// Packet type discriminators.
const (
	TypeData = 0x01
	TypeAck  = 0x02
	TypeREMB = 0x03
)

// DataHeaderLen is the wire size of a data packet header.
const DataHeaderLen = 1 + 8 + 8 + 2 // type, seq, sentNanos, payloadLen

// AckLen is the wire size of an acknowledgement.
const AckLen = 1 + 8 + 8 + 8 + 4 + 1 // type, ackSeq, dataSent, recvNanos, rateWord, stateBit

// DataHeader is the header of a PBE-CC data packet.
type DataHeader struct {
	Seq        uint64
	SentNanos  int64 // sender clock, nanoseconds
	PayloadLen uint16
}

// Ack is the acknowledgement the mobile client returns for every data
// packet: echoed timestamps for RTT and one-way-delay estimation, the
// 32-bit capacity feedback word (a packet interval in microseconds, §5),
// and the one-bit bottleneck state.
type Ack struct {
	AckSeq             uint64
	DataSentNanos      int64
	ReceivedNanos      int64
	RateWord           uint32
	InternetBottleneck bool
}

// ErrShortPacket reports a buffer too small to parse.
var ErrShortPacket = errors.New("transport: short packet")

// ErrBadType reports an unexpected packet type byte.
var ErrBadType = errors.New("transport: unexpected packet type")

// MarshalData encodes a data header followed by payload into buf,
// returning the total length. buf must have room for DataHeaderLen +
// len(payload).
func MarshalData(buf []byte, h DataHeader, payload []byte) (int, error) {
	n := DataHeaderLen + len(payload)
	if len(buf) < n {
		return 0, ErrShortPacket
	}
	buf[0] = TypeData
	binary.BigEndian.PutUint64(buf[1:], h.Seq)
	binary.BigEndian.PutUint64(buf[9:], uint64(h.SentNanos))
	binary.BigEndian.PutUint16(buf[17:], uint16(len(payload)))
	copy(buf[DataHeaderLen:], payload)
	return n, nil
}

// UnmarshalData parses a data packet, returning the header and payload
// (aliasing buf).
func UnmarshalData(buf []byte) (DataHeader, []byte, error) {
	if len(buf) < DataHeaderLen {
		return DataHeader{}, nil, ErrShortPacket
	}
	if buf[0] != TypeData {
		return DataHeader{}, nil, ErrBadType
	}
	h := DataHeader{
		Seq:        binary.BigEndian.Uint64(buf[1:]),
		SentNanos:  int64(binary.BigEndian.Uint64(buf[9:])),
		PayloadLen: binary.BigEndian.Uint16(buf[17:]),
	}
	if len(buf) < DataHeaderLen+int(h.PayloadLen) {
		return DataHeader{}, nil, ErrShortPacket
	}
	return h, buf[DataHeaderLen : DataHeaderLen+int(h.PayloadLen)], nil
}

// MarshalAck encodes an acknowledgement into buf, returning AckLen.
func MarshalAck(buf []byte, a Ack) (int, error) {
	if len(buf) < AckLen {
		return 0, ErrShortPacket
	}
	buf[0] = TypeAck
	binary.BigEndian.PutUint64(buf[1:], a.AckSeq)
	binary.BigEndian.PutUint64(buf[9:], uint64(a.DataSentNanos))
	binary.BigEndian.PutUint64(buf[17:], uint64(a.ReceivedNanos))
	binary.BigEndian.PutUint32(buf[25:], a.RateWord)
	if a.InternetBottleneck {
		buf[29] = 1
	} else {
		buf[29] = 0
	}
	return AckLen, nil
}

// UnmarshalAck parses an acknowledgement.
func UnmarshalAck(buf []byte) (Ack, error) {
	if len(buf) < AckLen {
		return Ack{}, ErrShortPacket
	}
	if buf[0] != TypeAck {
		return Ack{}, ErrBadType
	}
	return Ack{
		AckSeq:             binary.BigEndian.Uint64(buf[1:]),
		DataSentNanos:      int64(binary.BigEndian.Uint64(buf[9:])),
		ReceivedNanos:      int64(binary.BigEndian.Uint64(buf[17:])),
		RateWord:           binary.BigEndian.Uint32(buf[25:]),
		InternetBottleneck: buf[29] == 1,
	}, nil
}

// NanosToDuration converts wire nanoseconds to a Duration since process
// start.
func NanosToDuration(n int64) time.Duration { return time.Duration(n) }

// REMBLen is the wire size of a receiver-estimated-max-bitrate message.
const REMBLen = 1 + 8 + 4 // type, sentNanos, rateWord

// REMB defines the standalone receiver-estimated-max-bitrate message of
// the wire format, mirroring RTCP's REMB: a delay-based estimate that
// can travel to the sender even when no data flows the other way to
// piggyback an Ack on. The rate is carried in the same 32-bit capacity
// word as Ack.RateWord. The simulator's GCC path carries the estimate in
// the Ack feedback field; the real-socket runner (udp.go) does not send
// standalone REMB messages yet - this type fixes the format it will use.
type REMB struct {
	SentNanos int64  // receiver clock when the estimate was computed
	RateWord  uint32 // encoded estimate (see core.EncodeRate)
}

// MarshalREMB encodes a REMB message into buf, returning REMBLen.
func MarshalREMB(buf []byte, r REMB) (int, error) {
	if len(buf) < REMBLen {
		return 0, ErrShortPacket
	}
	buf[0] = TypeREMB
	binary.BigEndian.PutUint64(buf[1:], uint64(r.SentNanos))
	binary.BigEndian.PutUint32(buf[9:], r.RateWord)
	return REMBLen, nil
}

// UnmarshalREMB parses a REMB message.
func UnmarshalREMB(buf []byte) (REMB, error) {
	if len(buf) < REMBLen {
		return REMB{}, ErrShortPacket
	}
	if buf[0] != TypeREMB {
		return REMB{}, ErrBadType
	}
	return REMB{
		SentNanos: int64(binary.BigEndian.Uint64(buf[1:])),
		RateWord:  binary.BigEndian.Uint32(buf[9:]),
	}, nil
}
