// Package netsim models the wired part of an end-to-end path on the
// discrete-event engine: links with finite rate, propagation delay and
// drop-tail queues, plus simple traffic sources and sinks. The cellular
// last hop is modeled separately by package lte; netsim carries packets
// between content servers and cell towers and carries acknowledgements
// back.
package netsim

import "time"

// MSS is the maximum segment size used by all senders, matching the
// 1500-byte packets of the paper's prototype.
const MSS = 1500

// Packet is one simulated datagram. Data packets flow server->mobile;
// acknowledgement packets carry receiver state back, including PBE-CC's
// capacity feedback.
type Packet struct {
	FlowID int
	Seq    uint64
	Size   int // bytes on the wire

	SentAt time.Duration // sender transmit timestamp (virtual time)

	IsAck bool
	Ack   AckInfo

	// Retransmitted marks loss-recovery transmissions.
	Retransmitted bool

	// Padding marks bandwidth-probe filler from media senders: it is
	// paced, carried and acknowledged like data but contains no frame
	// payload, so goodput accounting skips it.
	Padding bool

	// Media carries frame-level metadata for real-time media flows
	// (zero-valued for bulk flows): which encoded frame the packet
	// belongs to, the frame's total size for receiver-side reassembly,
	// and the capture timestamp for deadline metrics.
	Media MediaInfo

	// Pool bookkeeping (see pool.go). pool is the free list the packet
	// returns to on release, nil for packets allocated outside a pool
	// (their release is a no-op and the GC owns them). gen increments at
	// every release, invalidating outstanding PacketHandles; pooled
	// marks a packet currently sitting in a free list, making a double
	// release detectable.
	pool   *PacketPool
	gen    uint64
	pooled bool
}

// MediaInfo is the RTP-like per-packet media metadata. A packet is a media
// packet when FrameBytes is positive.
type MediaInfo struct {
	FrameSeq   uint64        // capture-tick index, shared across simulcast layers
	FrameBytes int           // total bytes of the frame (for reassembly)
	Offset     int           // byte offset of this packet within the frame
	Layer      int8          // simulcast rate-ladder layer index
	Keyframe   bool          // frame is a GoP-opening keyframe
	CapturedAt time.Duration // when the encoder produced the frame
}

// AckInfo is the acknowledgement payload: which data packet is being
// acknowledged, its timestamps, and the PBE-CC feedback fields (§5: the
// capacity is described as an interval between 1500-byte packets; here it
// is carried in bits per second, plus the one-bit bottleneck state).
type AckInfo struct {
	AckSeq     uint64        // sequence of the data packet being acked
	DataSentAt time.Duration // echo of the data packet's SentAt
	ReceivedAt time.Duration // when the receiver got the data packet
	DataSize   int           // bytes of the acked data packet

	// PBE-CC feedback (zero for other schemes).
	FeedbackRate       float64 // target transport-layer rate, bits/sec; 0 = none
	InternetBottleneck bool    // receiver-detected bottleneck state bit
}

// Handler consumes packets delivered by a link or radio.
type Handler interface {
	HandlePacket(now time.Duration, p *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(now time.Duration, p *Packet)

// HandlePacket calls f.
func (f HandlerFunc) HandlePacket(now time.Duration, p *Packet) { f(now, p) }
