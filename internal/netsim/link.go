package netsim

import (
	"time"

	"pbecc/internal/obs"
	"pbecc/internal/sim"
)

// Link metrics, aggregated over every link in the process: delivery and
// drop volume plus queue-occupancy distribution and high watermark.
var (
	mDelivered  = obs.NewCounter("netsim.packets_delivered")
	mDropped    = obs.NewCounter("netsim.packets_dropped")
	mQueueBytes = obs.NewHistogram("netsim.queue_bytes")
	mQueueMax   = obs.NewWatermark("netsim.queue_bytes_max")
)

// Per-link queue-depth series (40 ms windows, kB; tid = the measured
// flow's ID): sampled at every enqueue and dequeue of the instrumented
// bottleneck link, opt-in through EnableQueueSeries.
var seriesQueue = obs.Series("net.queue")

// Link is a fixed-rate, fixed-propagation-delay link with a drop-tail
// queue, the standard model for an Internet bottleneck. A zero RateBps
// means infinite rate (pure delay); a zero QueueBytes means an unbounded
// queue.
type Link struct {
	eng *sim.Engine

	RateBps    float64       // serialization rate in bits/sec (0 = infinite)
	Delay      time.Duration // one-way propagation delay
	QueueBytes int           // drop-tail queue capacity (0 = unbounded)

	dst Handler

	// Cross-shard wiring (nil for an ordinary link): the queue and
	// serialization run on xsrc's engine and the propagation hop carries
	// the packet into xdst's shard through the cluster mailbox.
	xsrc, xdst *sim.Shard

	queue       []*Packet
	queuedBytes int
	busy        bool

	// Counters for reporting.
	Delivered  uint64
	Drops      uint64
	SentBytes  uint64
	DropsBytes uint64

	// queueTrack, when non-nil, downsamples the queue depth into the
	// run's series (EnableQueueSeries); nil costs one branch per sample.
	queueTrack *obs.SeriesTrack
}

// NewLink returns a link that delivers packets to dst.
func NewLink(eng *sim.Engine, rateBps float64, delay time.Duration, queueBytes int, dst Handler) *Link {
	return &Link{eng: eng, RateBps: rateBps, Delay: delay, QueueBytes: queueBytes, dst: dst}
}

// NewCrossLink returns a link whose endpoints live on different shards of
// one cluster: the drop-tail queue and serialization run on src's engine
// and the propagation hop crosses into dst's shard. Wired links are the
// only legal shard boundary, and the link's propagation delay is what it
// contributes as lookahead: the constructor declares it on the cluster,
// so the synchronization window can never exceed the fastest boundary
// crossing. A same-shard pair degenerates to an ordinary link.
func NewCrossLink(src, dst *sim.Shard, rateBps float64, delay time.Duration, queueBytes int, h Handler) *Link {
	if src == nil || dst == nil {
		panic("netsim: cross link needs both shards")
	}
	if src == dst {
		return NewLink(src.Engine, rateBps, delay, queueBytes, h)
	}
	if delay <= 0 {
		panic("netsim: a cross-shard link needs positive propagation delay (its lookahead)")
	}
	l := NewLink(src.Engine, rateBps, delay, queueBytes, h)
	l.xsrc, l.xdst = src, dst
	src.Cluster().DeclareLookahead(delay)
	return l
}

// propagate carries a transmitted packet over the propagation delay to
// the destination handler, crossing the shard boundary when the link is
// a cross link.
func (l *Link) propagate(p *Packet) {
	if l.xdst != nil {
		dst := l.xdst
		l.xsrc.Send(dst, l.Delay, func() { l.dst.HandlePacket(dst.Now(), p) })
		return
	}
	l.eng.Schedule(l.Delay, func() { l.dst.HandlePacket(l.eng.Now(), p) })
}

// EnableQueueSeries marks this link as the measured bottleneck of flow
// tid: its drop-tail queue depth is downsampled into the run's "net.queue"
// series. A no-op when the run records no series.
func (l *Link) EnableQueueSeries(tid int) {
	if sb := l.eng.SeriesBuffer(); sb != nil {
		l.queueTrack = sb.Track(seriesQueue, tid)
	}
}

// SetDestination rewires the link's receiving end.
func (l *Link) SetDestination(dst Handler) { l.dst = dst }

// QueuedBytes returns the bytes currently waiting in the queue (not
// counting the packet in transmission).
func (l *Link) QueuedBytes() int { return l.queuedBytes }

// HandlePacket lets links be chained after other links or radios.
func (l *Link) HandlePacket(now time.Duration, p *Packet) { l.Send(p) }

// Send enqueues a packet for transmission, dropping it if the queue is
// full.
func (l *Link) Send(p *Packet) {
	if l.RateBps <= 0 {
		// Pure-delay link: no queueing.
		l.Delivered++
		l.SentBytes += uint64(p.Size)
		mDelivered.Inc()
		l.propagate(p)
		return
	}
	if l.QueueBytes > 0 && l.queuedBytes+p.Size > l.QueueBytes {
		l.Drops++
		l.DropsBytes += uint64(p.Size)
		mDropped.Inc()
		return
	}
	l.queue = append(l.queue, p)
	l.queuedBytes += p.Size
	if obs.Enabled() {
		mQueueBytes.Observe(int64(l.queuedBytes))
		mQueueMax.Observe(int64(l.queuedBytes))
	}
	l.queueTrack.Sample(l.eng.Now(), float64(l.queuedBytes)/1e3)
	if !l.busy {
		l.transmitNext()
	}
}

func (l *Link) transmitNext() {
	if len(l.queue) == 0 {
		l.busy = false
		return
	}
	l.busy = true
	p := l.queue[0]
	copy(l.queue, l.queue[1:])
	l.queue = l.queue[:len(l.queue)-1]
	l.queuedBytes -= p.Size
	l.queueTrack.Sample(l.eng.Now(), float64(l.queuedBytes)/1e3)

	txTime := time.Duration(float64(p.Size*8) / l.RateBps * float64(time.Second))
	l.eng.Schedule(txTime, func() {
		l.Delivered++
		l.SentBytes += uint64(p.Size)
		mDelivered.Inc()
		l.propagate(p)
		l.transmitNext()
	})
}

// Sink counts delivered packets and optionally forwards them to a callback,
// for tests and simple receivers.
type Sink struct {
	Count uint64
	Bytes uint64
	Fn    func(now time.Duration, p *Packet)
}

// HandlePacket implements Handler.
func (s *Sink) HandlePacket(now time.Duration, p *Packet) {
	s.Count++
	s.Bytes += uint64(p.Size)
	if s.Fn != nil {
		s.Fn(now, p)
	}
}

// CrossTraffic injects fixed-rate packets into a destination, modeling
// competing load (the controlled competition of §6.3.3 or background flows
// sharing an Internet bottleneck).
type CrossTraffic struct {
	eng     *sim.Engine
	dst     Handler
	rateBps float64
	flowID  int
	seq     uint64
	ticker  *sim.Ticker
}

// NewCrossTraffic returns a stopped cross-traffic source; call Start.
func NewCrossTraffic(eng *sim.Engine, dst Handler, rateBps float64, flowID int) *CrossTraffic {
	return &CrossTraffic{eng: eng, dst: dst, rateBps: rateBps, flowID: flowID}
}

// Start begins emitting MSS-sized packets at the configured rate.
func (c *CrossTraffic) Start() {
	if c.ticker != nil || c.rateBps <= 0 {
		return
	}
	interval := time.Duration(float64(MSS*8) / c.rateBps * float64(time.Second))
	if interval <= 0 {
		interval = time.Microsecond
	}
	c.ticker = c.eng.Every(interval, func() {
		c.seq++
		c.dst.HandlePacket(c.eng.Now(), &Packet{
			FlowID: c.flowID,
			Seq:    c.seq,
			Size:   MSS,
			SentAt: c.eng.Now(),
		})
	})
}

// Stop halts the source; it can be restarted.
func (c *CrossTraffic) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
		c.ticker = nil
	}
}
