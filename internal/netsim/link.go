package netsim

import (
	"time"

	"pbecc/internal/obs"
	"pbecc/internal/sim"
)

// Link metrics, aggregated over every link in the process: delivery and
// drop volume plus queue-occupancy distribution and high watermark.
var (
	mDelivered  = obs.NewCounter("netsim.packets_delivered")
	mDropped    = obs.NewCounter("netsim.packets_dropped")
	mQueueBytes = obs.NewHistogram("netsim.queue_bytes")
	mQueueMax   = obs.NewWatermark("netsim.queue_bytes_max")
)

// Per-link queue-depth series (40 ms windows, kB; tid = the measured
// flow's ID): sampled at every enqueue and dequeue of the instrumented
// bottleneck link, opt-in through EnableQueueSeries.
var seriesQueue = obs.Series("net.queue")

// Link is a fixed-rate, fixed-propagation-delay link with a drop-tail
// queue, the standard model for an Internet bottleneck. A zero RateBps
// means infinite rate (pure delay); a zero QueueBytes means an unbounded
// queue.
type Link struct {
	eng *sim.Engine

	RateBps    float64       // serialization rate in bits/sec (0 = infinite)
	Delay      time.Duration // one-way propagation delay
	QueueBytes int           // drop-tail queue capacity (0 = unbounded)

	dst Handler

	// Cross-shard wiring (nil for an ordinary link): the queue and
	// serialization run on xsrc's engine and the propagation hop carries
	// the packet into xdst's shard through the cluster mailbox.
	xsrc, xdst *sim.Shard

	// Drop-tail queue, indexed from qHead (head-index dequeue with
	// amortized compaction instead of an O(n) shift per packet).
	queue       []*Packet
	qHead       int
	queuedBytes int
	busy        bool

	// Serialization and propagation state for the pre-bound event
	// functions: exactly one packet serializes at a time (txPkt), and
	// same-shard propagation is FIFO (constant delay), so deliveries pop
	// the pending ring in schedule order. Pre-binding txDone/deliver
	// once removes the two per-packet closures that dominated the metro
	// allocation profile.
	txPkt   *Packet
	txDone  func()
	pending []*Packet
	pHead   int
	deliver func()
	pool    *PacketPool // src-engine pool: owns queue-full drops

	// Counters for reporting.
	Delivered  uint64
	Drops      uint64
	SentBytes  uint64
	DropsBytes uint64

	// queueTrack, when non-nil, downsamples the queue depth into the
	// run's series (EnableQueueSeries); nil costs one branch per sample.
	queueTrack *obs.SeriesTrack
}

// NewLink returns a link that delivers packets to dst.
func NewLink(eng *sim.Engine, rateBps float64, delay time.Duration, queueBytes int, dst Handler) *Link {
	l := &Link{eng: eng, RateBps: rateBps, Delay: delay, QueueBytes: queueBytes, dst: dst}
	l.pool = PoolOf(eng)
	l.txDone = func() {
		p := l.txPkt
		l.txPkt = nil
		l.Delivered++
		l.SentBytes += uint64(p.Size)
		mDelivered.Inc()
		l.propagate(p)
		l.transmitNext()
	}
	l.deliver = func() {
		l.dst.HandlePacket(l.eng.Now(), l.popPending())
	}
	return l
}

// NewCrossLink returns a link whose endpoints live on different shards of
// one cluster: the drop-tail queue and serialization run on src's engine
// and the propagation hop crosses into dst's shard. Wired links are the
// only legal shard boundary, and the link's propagation delay is what it
// contributes as lookahead: the constructor declares it on the cluster,
// so the synchronization window can never exceed the fastest boundary
// crossing. A same-shard pair degenerates to an ordinary link.
func NewCrossLink(src, dst *sim.Shard, rateBps float64, delay time.Duration, queueBytes int, h Handler) *Link {
	if src == nil || dst == nil {
		panic("netsim: cross link needs both shards")
	}
	if src == dst {
		return NewLink(src.Engine, rateBps, delay, queueBytes, h)
	}
	if delay <= 0 {
		panic("netsim: a cross-shard link needs positive propagation delay (its lookahead)")
	}
	l := NewLink(src.Engine, rateBps, delay, queueBytes, h)
	l.xsrc, l.xdst = src, dst
	src.Cluster().DeclareLookahead(delay)
	return l
}

// propagate carries a transmitted packet over the propagation delay to
// the destination handler, crossing the shard boundary when the link is
// a cross link.
//
// Same-shard propagation is FIFO - the delay is constant per link, so
// deliveries fire in transmit order - which lets one pre-bound deliver
// function pop a pending ring instead of allocating a closure per
// packet. The cross-shard hop keeps its closure: the pending ring would
// be shared between the sending and receiving shard's windows, which
// run concurrently.
func (l *Link) propagate(p *Packet) {
	if l.xdst != nil {
		dst := l.xdst
		l.xsrc.Send(dst, l.Delay, func() { l.dst.HandlePacket(dst.Now(), p) })
		return
	}
	l.pending = append(l.pending, p)
	l.eng.Schedule(l.Delay, l.deliver)
}

// popPending dequeues the oldest in-flight packet, compacting the ring's
// consumed head once it dominates the slice (amortized O(1), retained
// capacity).
func (l *Link) popPending() *Packet {
	p := l.pending[l.pHead]
	l.pending[l.pHead] = nil
	l.pHead++
	if l.pHead == len(l.pending) {
		l.pending = l.pending[:0]
		l.pHead = 0
	} else if l.pHead > 32 && l.pHead*2 >= len(l.pending) {
		n := copy(l.pending, l.pending[l.pHead:])
		clearTail(l.pending, n)
		l.pending = l.pending[:n]
		l.pHead = 0
	}
	return p
}

// clearTail nils ps[n:] so compacted slots do not retain packets.
func clearTail(ps []*Packet, n int) {
	for i := n; i < len(ps); i++ {
		ps[i] = nil
	}
}

// EnableQueueSeries marks this link as the measured bottleneck of flow
// tid: its drop-tail queue depth is downsampled into the run's "net.queue"
// series. A no-op when the run records no series.
func (l *Link) EnableQueueSeries(tid int) {
	if sb := l.eng.SeriesBuffer(); sb != nil {
		l.queueTrack = sb.Track(seriesQueue, tid)
	}
}

// SetDestination rewires the link's receiving end.
func (l *Link) SetDestination(dst Handler) { l.dst = dst }

// QueuedBytes returns the bytes currently waiting in the queue (not
// counting the packet in transmission).
func (l *Link) QueuedBytes() int { return l.queuedBytes }

// HandlePacket lets links be chained after other links or radios.
func (l *Link) HandlePacket(now time.Duration, p *Packet) { l.Send(p) }

// Send enqueues a packet for transmission, dropping it if the queue is
// full.
func (l *Link) Send(p *Packet) {
	if l.RateBps <= 0 {
		// Pure-delay link: no queueing.
		l.Delivered++
		l.SentBytes += uint64(p.Size)
		mDelivered.Inc()
		l.propagate(p)
		return
	}
	if l.QueueBytes > 0 && l.queuedBytes+p.Size > l.QueueBytes {
		l.Drops++
		l.DropsBytes += uint64(p.Size)
		mDropped.Inc()
		l.pool.Release(p) // drop-tail: the link is the packet's last owner
		return
	}
	l.queue = append(l.queue, p)
	l.queuedBytes += p.Size
	if obs.Enabled() {
		mQueueBytes.Observe(int64(l.queuedBytes))
		mQueueMax.Observe(int64(l.queuedBytes))
	}
	l.queueTrack.Sample(l.eng.Now(), float64(l.queuedBytes)/1e3)
	if !l.busy {
		l.transmitNext()
	}
}

func (l *Link) transmitNext() {
	if l.qHead == len(l.queue) {
		l.queue = l.queue[:0]
		l.qHead = 0
		l.busy = false
		return
	}
	l.busy = true
	p := l.queue[l.qHead]
	l.queue[l.qHead] = nil
	l.qHead++
	if l.qHead > 32 && l.qHead*2 >= len(l.queue) {
		n := copy(l.queue, l.queue[l.qHead:])
		clearTail(l.queue, n)
		l.queue = l.queue[:n]
		l.qHead = 0
	}
	l.queuedBytes -= p.Size
	l.queueTrack.Sample(l.eng.Now(), float64(l.queuedBytes)/1e3)

	txTime := time.Duration(float64(p.Size*8) / l.RateBps * float64(time.Second))
	l.txPkt = p
	l.eng.Schedule(txTime, l.txDone)
}

// Sink counts delivered packets and optionally forwards them to a callback,
// for tests and simple receivers. A Sink with Pool set is a terminal
// consumer: it releases each pooled packet after Fn returns, so Fn must
// not retain the packet past the call (hold a PacketHandle instead).
type Sink struct {
	Count uint64
	Bytes uint64
	Fn    func(now time.Duration, p *Packet)
	Pool  *PacketPool
}

// HandlePacket implements Handler.
func (s *Sink) HandlePacket(now time.Duration, p *Packet) {
	s.Count++
	s.Bytes += uint64(p.Size)
	if s.Fn != nil {
		s.Fn(now, p)
	}
	if s.Pool != nil {
		s.Pool.Release(p)
	}
}

// CrossTraffic injects fixed-rate packets into a destination, modeling
// competing load (the controlled competition of §6.3.3 or background flows
// sharing an Internet bottleneck).
type CrossTraffic struct {
	eng     *sim.Engine
	dst     Handler
	rateBps float64
	flowID  int
	seq     uint64
	ticker  *sim.Ticker
}

// NewCrossTraffic returns a stopped cross-traffic source; call Start.
func NewCrossTraffic(eng *sim.Engine, dst Handler, rateBps float64, flowID int) *CrossTraffic {
	return &CrossTraffic{eng: eng, dst: dst, rateBps: rateBps, flowID: flowID}
}

// Start begins emitting MSS-sized packets at the configured rate.
func (c *CrossTraffic) Start() {
	if c.ticker != nil || c.rateBps <= 0 {
		return
	}
	interval := time.Duration(float64(MSS*8) / c.rateBps * float64(time.Second))
	if interval <= 0 {
		interval = time.Microsecond
	}
	pool := PoolOf(c.eng)
	c.ticker = c.eng.Every(interval, func() {
		c.seq++
		p := pool.Get()
		p.FlowID = c.flowID
		p.Seq = c.seq
		p.Size = MSS
		p.SentAt = c.eng.Now()
		c.dst.HandlePacket(c.eng.Now(), p)
	})
}

// Stop halts the source; it can be restarted.
func (c *CrossTraffic) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
		c.ticker = nil
	}
}
