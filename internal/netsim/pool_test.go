package netsim

import (
	"testing"

	"pbecc/internal/sim"
)

// TestPacketPoolReuse: released packets come back zeroed, and the pool
// actually reuses them instead of allocating.
func TestPacketPoolReuse(t *testing.T) {
	eng := sim.New(1)
	pool := PoolOf(eng)
	if PoolOf(eng) != pool {
		t.Fatal("PoolOf must return the engine's one pool")
	}
	p := pool.Get()
	p.FlowID, p.Seq, p.Size, p.IsAck = 7, 42, MSS, true
	pool.Release(p)
	q := pool.Get()
	if q != p {
		t.Fatal("expected the released packet back")
	}
	if q.FlowID != 0 || q.Seq != 0 || q.Size != 0 || q.IsAck {
		t.Fatalf("reused packet not zeroed: %+v", q)
	}
}

// TestPacketHandleGoesStale is the generation guard: a handle taken
// before release must deterministically report dead afterwards - even
// once the packet has been recycled into an unrelated transmission - so
// a holder can never alias the new owner's packet.
func TestPacketHandleGoesStale(t *testing.T) {
	eng := sim.New(1)
	pool := PoolOf(eng)
	p := pool.Get()
	h := HandleOf(p)
	if !h.Live() || h.Packet() != p {
		t.Fatal("fresh handle must be live")
	}
	pool.Release(p)
	if h.Live() || h.Packet() != nil {
		t.Fatal("handle must go stale at release")
	}
	q := pool.Get() // recycles p under a new generation
	if q != p {
		t.Fatal("expected recycled packet")
	}
	if h.Live() || h.Packet() != nil {
		t.Fatal("stale handle must not resurrect on reuse")
	}
	if h2 := HandleOf(q); !h2.Live() {
		t.Fatal("new owner's handle must be live")
	}
}

// TestPacketPoolDoubleReleasePanics: releasing the same packet twice is
// a hard ownership bug and must fail loudly and deterministically.
func TestPacketPoolDoubleReleasePanics(t *testing.T) {
	eng := sim.New(1)
	pool := PoolOf(eng)
	p := pool.Get()
	pool.Release(p)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double release")
		}
	}()
	pool.Release(p)
}

// TestPacketPoolUnpooledNoop: packets allocated outside a pool (tests,
// pooling disabled) release as no-ops and their handles never go stale.
func TestPacketPoolUnpooledNoop(t *testing.T) {
	eng := sim.New(1)
	pool := PoolOf(eng)
	p := &Packet{Seq: 9}
	h := HandleOf(p)
	pool.Release(p)
	pool.Release(p) // no double-release panic for unpooled packets
	if !h.Live() || h.Packet() != p {
		t.Fatal("unpooled handle must stay live")
	}
	if got := pool.Get(); got == p {
		t.Fatal("unpooled packet must not enter the free list")
	}
}

// TestPacketPoolKillSwitch: with pooling off, Get allocates unpooled
// packets, so release becomes a no-op and nothing is ever reused.
func TestPacketPoolKillSwitch(t *testing.T) {
	prev := SetPooling(false)
	defer SetPooling(prev)
	eng := sim.New(1)
	pool := PoolOf(eng)
	p := pool.Get()
	pool.Release(p)
	if q := pool.Get(); q == p {
		t.Fatal("pooling disabled: packets must not be reused")
	}
}

// TestPacketPoolCrossPoolAdoption: releasing into a different engine's
// pool (the cross-shard case) migrates the packet there.
func TestPacketPoolCrossPoolAdoption(t *testing.T) {
	a, b := PoolOf(sim.New(1)), PoolOf(sim.New(2))
	p := a.Get()
	b.Release(p)
	if got := b.Get(); got != p {
		t.Fatal("releasing pool must adopt the packet")
	}
	if got := a.Get(); got == p {
		t.Fatal("origin pool must not also hold the packet")
	}
}
