package netsim

import (
	"testing"
	"time"

	"pbecc/internal/sim"
)

func TestPureDelayLink(t *testing.T) {
	eng := sim.New(1)
	var at time.Duration
	sink := &Sink{Fn: func(now time.Duration, p *Packet) { at = now }}
	l := NewLink(eng, 0, 25*time.Millisecond, 0, sink)
	l.Send(&Packet{Size: MSS})
	eng.Run()
	if at != 25*time.Millisecond {
		t.Fatalf("delivery at %v, want 25ms", at)
	}
	if sink.Count != 1 || l.Delivered != 1 {
		t.Fatalf("count = %d/%d, want 1/1", sink.Count, l.Delivered)
	}
}

func TestSerializationDelay(t *testing.T) {
	eng := sim.New(1)
	var times []time.Duration
	sink := &Sink{Fn: func(now time.Duration, p *Packet) { times = append(times, now) }}
	// 12 Mbit/s: one 1500-byte packet takes exactly 1 ms to serialize.
	l := NewLink(eng, 12e6, 0, 0, sink)
	for i := 0; i < 3; i++ {
		l.Send(&Packet{Seq: uint64(i), Size: MSS})
	}
	eng.Run()
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("packet %d delivered at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestDropTail(t *testing.T) {
	eng := sim.New(1)
	sink := &Sink{}
	// Tiny queue: room for exactly 2 queued packets.
	l := NewLink(eng, 12e6, 0, 2*MSS, sink)
	for i := 0; i < 10; i++ {
		l.Send(&Packet{Seq: uint64(i), Size: MSS})
	}
	// One packet may be in transmission plus 2 queued; the rest drop.
	eng.Run()
	if l.Drops == 0 {
		t.Fatal("no drops with full queue")
	}
	if sink.Count+l.Drops != 10 {
		t.Fatalf("delivered %d + dropped %d != 10", sink.Count, l.Drops)
	}
	if sink.Count < 2 || sink.Count > 4 {
		t.Fatalf("delivered %d, want 2-4", sink.Count)
	}
}

func TestQueueDrainsAfterBurst(t *testing.T) {
	eng := sim.New(1)
	sink := &Sink{}
	l := NewLink(eng, 12e6, 0, 100*MSS, sink)
	for i := 0; i < 50; i++ {
		l.Send(&Packet{Seq: uint64(i), Size: MSS})
	}
	eng.Run()
	if sink.Count != 50 {
		t.Fatalf("delivered %d, want 50", sink.Count)
	}
	if l.QueuedBytes() != 0 {
		t.Fatalf("queue not drained: %d bytes", l.QueuedBytes())
	}
	if eng.Now() != 50*time.Millisecond {
		t.Fatalf("drain completed at %v, want 50ms", eng.Now())
	}
}

func TestFIFOOrder(t *testing.T) {
	eng := sim.New(1)
	var seqs []uint64
	sink := &Sink{Fn: func(now time.Duration, p *Packet) { seqs = append(seqs, p.Seq) }}
	l := NewLink(eng, 10e6, 5*time.Millisecond, 0, sink)
	for i := 0; i < 20; i++ {
		l.Send(&Packet{Seq: uint64(i), Size: MSS})
	}
	eng.Run()
	for i := range seqs {
		if seqs[i] != uint64(i) {
			t.Fatalf("out of order delivery: %v", seqs)
		}
	}
}

func TestLinkChaining(t *testing.T) {
	eng := sim.New(1)
	var at time.Duration
	sink := &Sink{Fn: func(now time.Duration, p *Packet) { at = now }}
	l2 := NewLink(eng, 0, 10*time.Millisecond, 0, sink)
	l1 := NewLink(eng, 12e6, 10*time.Millisecond, 0, l2)
	l1.Send(&Packet{Size: MSS})
	eng.Run()
	// 1 ms serialization + 10 ms + 10 ms propagation.
	if at != 21*time.Millisecond {
		t.Fatalf("chained delivery at %v, want 21ms", at)
	}
}

func TestCrossTrafficRate(t *testing.T) {
	eng := sim.New(1)
	sink := &Sink{}
	ct := NewCrossTraffic(eng, sink, 12e6, 7)
	ct.Start()
	eng.RunUntil(time.Second)
	// 12 Mbit/s = 1000 packets/sec of 1500 bytes.
	if sink.Count < 995 || sink.Count > 1005 {
		t.Fatalf("cross traffic delivered %d packets in 1s, want ~1000", sink.Count)
	}
	ct.Stop()
	before := sink.Count
	eng.RunUntil(2 * time.Second)
	if sink.Count != before {
		t.Fatal("cross traffic kept sending after Stop")
	}
}

func TestCrossTrafficRestart(t *testing.T) {
	eng := sim.New(1)
	sink := &Sink{}
	ct := NewCrossTraffic(eng, sink, 12e6, 7)
	ct.Start()
	ct.Start() // double start must not double rate
	eng.RunUntil(time.Second)
	if sink.Count > 1005 {
		t.Fatalf("double Start doubled the rate: %d", sink.Count)
	}
	ct.Stop()
	ct.Start()
	eng.RunUntil(2 * time.Second)
	if sink.Count < 1990 || sink.Count > 2010 {
		t.Fatalf("restart broken: %d packets after 2s", sink.Count)
	}
}

func TestSetDestination(t *testing.T) {
	eng := sim.New(1)
	a, b := &Sink{}, &Sink{}
	l := NewLink(eng, 0, 0, 0, a)
	l.Send(&Packet{Size: 100})
	eng.Run()
	l.SetDestination(b)
	l.Send(&Packet{Size: 100})
	eng.Run()
	if a.Count != 1 || b.Count != 1 {
		t.Fatalf("rewire failed: a=%d b=%d", a.Count, b.Count)
	}
}

func TestHandlerFunc(t *testing.T) {
	called := false
	HandlerFunc(func(now time.Duration, p *Packet) { called = true }).HandlePacket(0, nil)
	if !called {
		t.Fatal("HandlerFunc did not call through")
	}
}
