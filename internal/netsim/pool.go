package netsim

import (
	"os"
	"sync/atomic"

	"pbecc/internal/obs"
	"pbecc/internal/sim"
)

// mPktReuse counts packets served from a free list instead of the heap,
// the packet-path twin of sim.event_pool_reuse.
var mPktReuse = obs.NewCounter("sim.packet_pool_reuse")

// poolingOff is the global packet-pool kill switch. Pooling is a pure
// memory optimization - a pooled run and an unpooled run are
// byte-identical (the property tests in internal/harness enforce it) -
// so the switch exists for bisecting and for those tests, not for
// correctness. Set PBECC_PACKET_POOL=off or call SetPooling(false).
var poolingOff atomic.Bool

func init() {
	if os.Getenv("PBECC_PACKET_POOL") == "off" {
		poolingOff.Store(true)
	}
}

// SetPooling enables or disables packet pooling process-wide and returns
// the previous setting. With pooling off, Get returns ordinary heap
// packets and Release is a no-op, so the garbage collector owns every
// packet - the reference behavior pooled runs must match byte-for-byte.
func SetPooling(on bool) (prev bool) {
	prev = !poolingOff.Load()
	poolingOff.Store(!on)
	return prev
}

// PacketPool is a per-engine packet free list, mirroring the engine's
// event pool: single-threaded by construction (one pool per shard
// engine, only that shard's events touch it), generation-guarded so
// stale references are detectable, and strictly optional - a pooled
// packet that is never released is simply collected by the GC, costing a
// reuse, never correctness.
//
// Ownership rule (DESIGN.md section 12): a *Packet passed to
// HandlePacket is valid only for the duration of the call unless the
// handler is the packet's designated consumer (the cc receiver for data,
// the cc sender for acks, the UE reorder buffer in between). The
// consumer - and only the consumer - releases it, into the pool of the
// engine it is running on; cross-shard packets thereby migrate between
// shard pools without synchronization, because release rewrites the
// packet's pool binding while holding the only live reference.
type PacketPool struct {
	free []*Packet
}

// PoolOf returns eng's packet pool, installing one on first use. The
// engine owns the slot, so every subsystem sharing an engine shares one
// free list.
func PoolOf(eng *sim.Engine) *PacketPool {
	if p, ok := eng.PacketPool().(*PacketPool); ok {
		return p
	}
	p := &PacketPool{}
	eng.SetPacketPool(p)
	return p
}

// Get returns a zeroed packet, reusing a released one when possible.
func (pp *PacketPool) Get() *Packet {
	if poolingOff.Load() {
		return &Packet{}
	}
	n := len(pp.free)
	if n == 0 {
		return &Packet{pool: pp}
	}
	p := pp.free[n-1]
	pp.free[n-1] = nil
	pp.free = pp.free[:n-1]
	mPktReuse.Inc()
	gen := p.gen
	*p = Packet{}
	p.pool, p.gen = pp, gen
	return p
}

// Release returns a consumed packet to this pool (not necessarily the
// one that created it: a cross-shard packet is adopted by the releasing
// shard's pool, keeping every free list single-threaded). Releasing a
// nil or unpooled packet is a no-op; releasing the same packet twice
// panics - deterministically, since pool state is engine-local.
func (pp *PacketPool) Release(p *Packet) {
	if p == nil || p.pool == nil {
		return
	}
	if p.pooled {
		panic("netsim: double release of pooled packet")
	}
	p.gen++
	p.pooled = true
	p.pool = pp
	pp.free = append(pp.free, p)
}

// ReleaseAll releases every packet in ps and zeroes the slice's
// backing entries, for bulk drop points (queue flushes, detach).
func (pp *PacketPool) ReleaseAll(ps []*Packet) {
	for i, p := range ps {
		pp.Release(p)
		ps[i] = nil
	}
}

// PacketHandle is a generation-stamped reference to a packet, for
// holders that may outlive the packet's consumption (diagnostics,
// tests). Once the packet is released - and possibly reused for an
// unrelated transmission - the handle goes stale: Live reports false and
// Packet returns nil, deterministically, instead of aliasing the
// recycled packet.
type PacketHandle struct {
	p   *Packet
	gen uint64
}

// HandleOf stamps a handle for p. Handles of unpooled packets never go
// stale (the GC keeps them valid).
func HandleOf(p *Packet) PacketHandle {
	return PacketHandle{p: p, gen: p.gen}
}

// Live reports whether the handle still refers to its original packet.
func (h PacketHandle) Live() bool {
	return h.p != nil && !h.p.pooled && h.p.gen == h.gen
}

// Packet returns the referenced packet, or nil once the handle is stale.
func (h PacketHandle) Packet() *Packet {
	if h.Live() {
		return h.p
	}
	return nil
}
