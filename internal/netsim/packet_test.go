package netsim

import (
	"testing"
	"time"

	"pbecc/internal/sim"
)

// TestMediaMetadataSurvivesLinkChain drives a media packet through a
// three-hop chain (pure delay -> rate-limited -> pure delay) and checks
// that the frame metadata and padding flag arrive untouched: the RTC
// subsystem's reassembly depends on links never mutating packets.
func TestMediaMetadataSurvivesLinkChain(t *testing.T) {
	eng := sim.New(1)
	var got *Packet
	var at time.Duration
	sink := &Sink{Fn: func(now time.Duration, p *Packet) { got, at = p, now }}
	last := NewLink(eng, 0, 5*time.Millisecond, 0, sink)
	mid := NewLink(eng, 12e6, 2*time.Millisecond, 64*1500, last)
	first := NewLink(eng, 0, 3*time.Millisecond, 0, mid)

	want := &Packet{
		FlowID: 7, Seq: 42, Size: 1500, SentAt: 0,
		Media: MediaInfo{
			FrameSeq:   9,
			FrameBytes: 4500,
			Offset:     1500,
			Layer:      2,
			Keyframe:   true,
			CapturedAt: 123 * time.Millisecond,
		},
	}
	first.Send(want)
	eng.RunUntil(time.Second)

	if got == nil {
		t.Fatal("packet never arrived")
	}
	if got != want {
		t.Fatal("links must forward the same packet, not a copy")
	}
	if got.Media != want.Media {
		t.Fatalf("media metadata changed in flight: %+v", got.Media)
	}
	// 3 + 2 + 5 ms propagation plus 1 ms serialization at 12 Mbit/s.
	if wantAt := 11 * time.Millisecond; at != wantAt {
		t.Fatalf("arrival at %v, want %v", at, wantAt)
	}
}

func TestPaddingFlagAndMediaPredicate(t *testing.T) {
	pad := &Packet{FlowID: 1, Seq: 1, Size: MSS, Padding: true}
	if pad.Media.FrameBytes != 0 {
		t.Fatal("padding must not look like a media packet")
	}
	media := &Packet{FlowID: 1, Seq: 2, Size: MSS,
		Media: MediaInfo{FrameSeq: 1, FrameBytes: MSS}}
	if media.Media.FrameBytes == 0 {
		t.Fatal("media packet lost its frame size")
	}
}

// TestAckInfoSurvivesReversePath checks the acknowledgement payload
// through a pure-delay reverse link.
func TestAckInfoSurvivesReversePath(t *testing.T) {
	eng := sim.New(1)
	var got *Packet
	sink := &Sink{Fn: func(now time.Duration, p *Packet) { got = p }}
	back := NewLink(eng, 0, 10*time.Millisecond, 0, sink)

	ack := &Packet{
		FlowID: 3, Seq: 5, Size: 60, IsAck: true,
		Ack: AckInfo{
			AckSeq: 5, DataSentAt: time.Millisecond, ReceivedAt: 9 * time.Millisecond,
			DataSize: 1500, FeedbackRate: 42e6, InternetBottleneck: true,
		},
	}
	back.Send(ack)
	eng.RunUntil(time.Second)

	if got == nil || !got.IsAck {
		t.Fatal("ack never arrived")
	}
	if got.Ack != ack.Ack {
		t.Fatalf("ack payload changed in flight: %+v", got.Ack)
	}
}

// TestLinkCountersAcrossChain checks the delivery/drop accounting on a
// chain whose middle hop overflows: upstream counts every packet as
// delivered, the bottleneck splits them between Delivered and Drops, and
// byte counters stay consistent with packet counters.
func TestLinkCountersAcrossChain(t *testing.T) {
	eng := sim.New(1)
	sink := &Sink{}
	// 1.2 Mbit/s bottleneck with a two-packet queue.
	bottleneck := NewLink(eng, 1.2e6, time.Millisecond, 2*MSS, sink)
	front := NewLink(eng, 0, time.Millisecond, 0, bottleneck)

	const n = 20
	for i := 0; i < n; i++ {
		front.Send(&Packet{FlowID: 1, Seq: uint64(i + 1), Size: MSS})
	}
	eng.RunUntil(time.Second)

	if front.Delivered != n || front.Drops != 0 {
		t.Fatalf("front delivered=%d drops=%d, want %d/0", front.Delivered, front.Drops, n)
	}
	if bottleneck.Delivered+bottleneck.Drops != n {
		t.Fatalf("bottleneck delivered=%d + drops=%d != %d",
			bottleneck.Delivered, bottleneck.Drops, n)
	}
	if bottleneck.Drops == 0 {
		t.Fatal("burst into a two-packet queue dropped nothing")
	}
	if bottleneck.SentBytes != bottleneck.Delivered*MSS {
		t.Fatalf("SentBytes=%d for %d delivered MSS packets",
			bottleneck.SentBytes, bottleneck.Delivered)
	}
	if bottleneck.DropsBytes != bottleneck.Drops*MSS {
		t.Fatalf("DropsBytes=%d for %d drops", bottleneck.DropsBytes, bottleneck.Drops)
	}
	if sink.Count != bottleneck.Delivered || sink.Bytes != bottleneck.SentBytes {
		t.Fatalf("sink %d/%dB disagrees with bottleneck %d/%dB",
			sink.Count, sink.Bytes, bottleneck.Delivered, bottleneck.SentBytes)
	}
}

// TestQueuedBytesTracksOccupancy checks the queue gauge during a burst.
func TestQueuedBytesTracksOccupancy(t *testing.T) {
	eng := sim.New(1)
	l := NewLink(eng, 12e6, 0, 10*MSS, &Sink{})
	for i := 0; i < 5; i++ {
		l.Send(&Packet{Seq: uint64(i + 1), Size: MSS})
	}
	// One packet is in serialization; four wait in the queue.
	if got := l.QueuedBytes(); got != 4*MSS {
		t.Fatalf("QueuedBytes = %d, want %d", got, 4*MSS)
	}
	eng.RunUntil(time.Second)
	if got := l.QueuedBytes(); got != 0 {
		t.Fatalf("QueuedBytes = %d after drain, want 0", got)
	}
}
