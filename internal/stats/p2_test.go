package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestP2SmallN: below five samples the estimator answers exactly.
func TestP2SmallN(t *testing.T) {
	e := NewP2(0.5)
	if e.Value() != 0 {
		t.Fatalf("empty estimator: got %v", e.Value())
	}
	e.Add(7)
	if e.Value() != 7 {
		t.Fatalf("one sample: got %v", e.Value())
	}
	e.Add(1)
	e.Add(9)
	// Samples {1,7,9}: the median is 7.
	if e.Value() != 7 {
		t.Fatalf("three samples: got %v, want 7", e.Value())
	}
}

// TestP2Accuracy compares streaming estimates against exact order
// statistics across distributions with different shapes: uniform, normal,
// and a heavy-tailed exponential (the shape of network delay).
func TestP2Accuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := []struct {
		name   string
		sample func() float64
	}{
		{"uniform", func() float64 { return rng.Float64() * 100 }},
		{"normal", func() float64 { return 50 + 12*rng.NormFloat64() }},
		{"exponential", func() float64 { return rng.ExpFloat64() * 30 }},
	}
	quantiles := []float64{10, 50, 90, 95, 99}
	const n = 50000
	for _, d := range dists {
		exact := &Series{}
		digest := NewP2Digest(0.10, 0.50, 0.90, 0.95, 0.99)
		for i := 0; i < n; i++ {
			v := d.sample()
			exact.Add(v)
			digest.Add(v)
		}
		for _, q := range quantiles {
			want := exact.Percentile(q)
			got := digest.Percentile(q)
			// Tolerance: 2% of the distribution's spread.
			tol := 0.02 * (exact.Max() - exact.Min())
			if math.Abs(got-want) > tol {
				t.Errorf("%s p%.0f: got %.3f, exact %.3f (tol %.3f)", d.name, q, got, want, tol)
			}
		}
		if got, want := digest.Mean(), exact.Mean(); math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Errorf("%s mean: got %v, exact %v", d.name, got, want)
		}
		if digest.Min() != exact.Min() || digest.Max() != exact.Max() {
			t.Errorf("%s min/max: got %v/%v, exact %v/%v",
				d.name, digest.Min(), digest.Max(), exact.Min(), exact.Max())
		}
		if digest.Len() != n {
			t.Errorf("%s len: got %d, want %d", d.name, digest.Len(), n)
		}
	}
}

// TestP2DigestExtremes: percentile 0/100 answer exactly from min/max, and
// untracked interior percentiles panic rather than silently answering
// with the wrong quantile.
func TestP2DigestExtremes(t *testing.T) {
	d := NewP2Digest()
	for _, v := range []float64{5, 1, 9, 3, 7, 2, 8} {
		d.Add(v)
	}
	if d.Percentile(0) != 1 || d.Percentile(100) != 9 {
		t.Fatalf("extremes: got %v/%v, want 1/9", d.Percentile(0), d.Percentile(100))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for untracked percentile")
		}
	}()
	d.Percentile(33)
}

// TestDurationP2 checks the duration adapter converts to milliseconds
// like DurationSeries and satisfies the shared DelayDist interface.
func TestDurationP2(t *testing.T) {
	var exact DelayDist = &DurationSeries{}
	var stream DelayDist = NewDurationP2()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		v := time.Duration(rng.ExpFloat64() * float64(40*time.Millisecond))
		exact.AddDuration(v)
		stream.AddDuration(v)
	}
	for _, q := range []float64{50, 95} {
		want, got := exact.Percentile(q), stream.Percentile(q)
		if math.Abs(got-want) > 0.05*want+0.5 {
			t.Errorf("p%.0f: stream %v, exact %v", q, got, want)
		}
	}
}

// BenchmarkP2Add measures the per-sample cost of the full default digest,
// the hot-path price a metro flow pays per delivered packet.
func BenchmarkP2Add(b *testing.B) {
	d := NewP2Digest()
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = rng.ExpFloat64() * 30
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Add(vals[i&4095])
	}
}
