// Package stats provides the statistics the paper's evaluation reports:
// order statistics (10th/25th/50th/75th/90th/95th percentiles) of
// throughput and delay measured over 100-millisecond windows, CDFs across
// locations, and Jain's fairness index.
package stats

import (
	"math"
	"sort"
	"time"
)

// Dist is the query surface shared by the exact Series and the streaming
// P2Digest, so consumers (sweep rows, experiment tables) need not know
// whether a flow recorded every sample or a constant-size digest.
type Dist interface {
	Percentile(p float64) float64
	Mean() float64
	Len() int
	Min() float64
	Max() float64
}

// DelayDist is a Dist that records delay samples natively in
// time.Duration. DurationSeries is the exact implementation, DurationP2
// the O(1)-memory streaming one used by metro-scale runs.
type DelayDist interface {
	Dist
	AddDuration(v time.Duration)
}

// Series accumulates samples and answers percentile queries.
type Series struct {
	vals   []float64
	sorted bool
}

// Add appends a sample.
func (s *Series) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.vals) }

// Mean returns the arithmetic mean (0 for an empty series).
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between order statistics; 0 for an empty series.
func (s *Series) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 100 {
		return s.vals[len(s.vals)-1]
	}
	pos := p / 100 * float64(len(s.vals)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s.vals) {
		return s.vals[i]
	}
	d := s.vals[i+1] - s.vals[i]
	if math.IsInf(d, 0) {
		// The difference overflowed (values near +-MaxFloat64 of opposite
		// sign); interpolate in the weighted form, which stays finite.
		return s.vals[i]*(1-frac) + s.vals[i+1]*frac
	}
	return s.vals[i] + frac*d
}

// Min returns the smallest sample (0 for an empty series).
func (s *Series) Min() float64 { return s.Percentile(0) }

// Max returns the largest sample (0 for an empty series).
func (s *Series) Max() float64 { return s.Percentile(100) }

// Values returns the samples in sorted order; the slice is shared, do not
// modify it.
func (s *Series) Values() []float64 {
	s.Percentile(50) // force sort
	return s.vals
}

// Windowed accumulates byte arrivals into fixed-duration windows, the
// 100 ms granularity of the paper's throughput order statistics.
type Windowed struct {
	Window  time.Duration
	buckets []float64 // bytes per window
}

// NewWindowed returns an accumulator with the given window (100 ms if
// zero).
func NewWindowed(window time.Duration) *Windowed {
	if window <= 0 {
		window = 100 * time.Millisecond
	}
	return &Windowed{Window: window}
}

// Add records bytes arriving at virtual time at.
func (w *Windowed) Add(at time.Duration, bytes int) {
	i := int(at / w.Window)
	for len(w.buckets) <= i {
		w.buckets = append(w.buckets, 0)
	}
	w.buckets[i] += float64(bytes)
}

// RatesMbps converts the windows observed so far into Mbit/s samples.
// Windows before from or after to are excluded; pass 0,0 for all.
func (w *Windowed) RatesMbps(from, to time.Duration) *Series {
	s := &Series{}
	for i, b := range w.buckets {
		t := time.Duration(i) * w.Window
		if t < from || (to > 0 && t >= to) {
			continue
		}
		s.Add(b * 8 / w.Window.Seconds() / 1e6)
	}
	return s
}

// Buckets returns the raw per-window byte counts.
func (w *Windowed) Buckets() []float64 { return w.buckets }

// Jain computes Jain's fairness index: (sum x)^2 / (n * sum x^2).
// It is 1.0 for a perfectly equal allocation and 1/n in the worst case;
// 0 is returned for empty or all-zero input.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// CDF returns (value, cumulative fraction) points for plotting a
// distribution, one point per sample.
func CDF(s *Series) (xs, ys []float64) {
	v := s.Values()
	n := len(v)
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := range v {
		xs[i] = v[i]
		ys[i] = float64(i+1) / float64(n)
	}
	return xs, ys
}

// DurationSeries adapts delay samples in time.Duration to a Series in
// milliseconds.
type DurationSeries struct{ Series }

// AddDuration appends a delay sample converted to milliseconds.
func (d *DurationSeries) AddDuration(v time.Duration) {
	d.Add(float64(v) / float64(time.Millisecond))
}

// Round2 rounds to two decimals, for stable report output.
func Round2(v float64) float64 { return math.Round(v*100) / 100 }
