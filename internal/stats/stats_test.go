package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestPercentileBasics(t *testing.T) {
	s := &Series{}
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 100}, {50, 50.5}, {95, 95.05}, {25, 25.75},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	s := &Series{}
	if s.Percentile(50) != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty series must report zeros")
	}
}

func TestPercentileSingle(t *testing.T) {
	s := &Series{}
	s.Add(7)
	for _, p := range []float64{0, 50, 100} {
		if s.Percentile(p) != 7 {
			t.Fatalf("P%v of single = %v", p, s.Percentile(p))
		}
	}
}

func TestAddAfterQueryResorts(t *testing.T) {
	s := &Series{}
	s.Add(5)
	_ = s.Percentile(50)
	s.Add(1)
	if s.Min() != 1 {
		t.Fatal("sort flag not reset after Add")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		s := &Series{}
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s.Add(v)
			}
		}
		if s.Len() == 0 {
			return true
		}
		prev := s.Percentile(0)
		for p := 5.0; p <= 100; p += 5 {
			cur := s.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	s := &Series{}
	s.Add(2)
	s.Add(4)
	s.Add(9)
	if got := s.Mean(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("mean = %v, want 5", got)
	}
}

func TestWindowedThroughput(t *testing.T) {
	w := NewWindowed(100 * time.Millisecond)
	// 125 kB in window 0 => 10 Mbit/s; 250 kB in window 3 => 20 Mbit/s.
	w.Add(10*time.Millisecond, 62500)
	w.Add(90*time.Millisecond, 62500)
	w.Add(350*time.Millisecond, 250000)
	rates := w.RatesMbps(0, 0)
	if rates.Len() != 4 {
		t.Fatalf("windows = %d, want 4", rates.Len())
	}
	if got := rates.Max(); math.Abs(got-20) > 1e-9 {
		t.Fatalf("max rate = %v, want 20", got)
	}
	vals := rates.Values()
	if math.Abs(vals[0]-0) > 1e-9 || math.Abs(vals[3]-20) > 1e-9 {
		t.Fatalf("rates = %v", vals)
	}
}

func TestWindowedRange(t *testing.T) {
	w := NewWindowed(100 * time.Millisecond)
	for i := 0; i < 10; i++ {
		w.Add(time.Duration(i)*100*time.Millisecond, 12500) // 1 Mbit/s each
	}
	all := w.RatesMbps(0, 0)
	if all.Len() != 10 {
		t.Fatalf("all windows = %d", all.Len())
	}
	mid := w.RatesMbps(200*time.Millisecond, 500*time.Millisecond)
	if mid.Len() != 3 {
		t.Fatalf("windows in [200,500) = %d, want 3", mid.Len())
	}
}

func TestWindowedDefault(t *testing.T) {
	w := NewWindowed(0)
	if w.Window != 100*time.Millisecond {
		t.Fatalf("default window = %v", w.Window)
	}
}

func TestJain(t *testing.T) {
	if got := Jain([]float64{10, 10, 10}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("equal allocation Jain = %v, want 1", got)
	}
	if got := Jain([]float64{30, 0, 0}); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("single-user Jain = %v, want 1/3", got)
	}
	if Jain(nil) != 0 || Jain([]float64{0, 0}) != 0 {
		t.Fatal("degenerate Jain must be 0")
	}
	// Paper values are ~0.98-0.9997 for near-fair allocations.
	got := Jain([]float64{33, 33, 34})
	if got < 0.999 {
		t.Fatalf("near-equal Jain = %v", got)
	}
}

func TestJainBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		allZero := true
		for i, v := range raw {
			xs[i] = float64(v)
			if v != 0 {
				allZero = false
			}
		}
		j := Jain(xs)
		if allZero {
			return j == 0
		}
		return j >= 1/float64(len(xs))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	s := &Series{}
	for _, v := range []float64{3, 1, 2} {
		s.Add(v)
	}
	xs, ys := CDF(s)
	if xs[0] != 1 || xs[2] != 3 {
		t.Fatalf("CDF xs = %v", xs)
	}
	if math.Abs(ys[0]-1.0/3) > 1e-9 || ys[2] != 1 {
		t.Fatalf("CDF ys = %v", ys)
	}
}

func TestDurationSeries(t *testing.T) {
	var d DurationSeries
	d.AddDuration(150 * time.Millisecond)
	if got := d.Mean(); math.Abs(got-150) > 1e-9 {
		t.Fatalf("duration sample = %v ms, want 150", got)
	}
}

func TestRound2(t *testing.T) {
	if Round2(1.2345) != 1.23 || Round2(1.235) != 1.24 {
		t.Fatalf("Round2 broken: %v %v", Round2(1.2345), Round2(1.235))
	}
}
