package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// P2 is the Jain & Chlamtac P-squared streaming estimator for a single
// quantile: five markers track the running quantile with O(1) memory and
// O(1) work per sample, against the O(samples) cost of keeping the full
// series. Metro-scale runs record millions of per-packet delays per flow;
// P2 keeps per-flow statistics at constant size.
type P2 struct {
	p     float64    // target quantile in (0, 1)
	n     int        // observations so far
	q     [5]float64 // marker heights
	pos   [5]float64 // actual marker positions (1-based)
	want  [5]float64 // desired marker positions
	delta [5]float64 // desired position increments per observation
}

// NewP2 returns an estimator for quantile p in (0, 1).
func NewP2(p float64) *P2 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: P2 quantile %v outside (0,1)", p))
	}
	e := &P2{p: p}
	e.pos = [5]float64{1, 2, 3, 4, 5}
	e.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	e.delta = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// Quantile returns the target quantile.
func (e *P2) Quantile() float64 { return e.p }

// Count returns the number of observations.
func (e *P2) Count() int { return e.n }

// Add feeds one observation.
func (e *P2) Add(v float64) {
	if e.n < 5 {
		e.q[e.n] = v
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
		}
		return
	}
	e.n++

	// Find the cell the observation falls into and stretch the extreme
	// markers when it lies outside the current range.
	var k int
	switch {
	case v < e.q[0]:
		e.q[0] = v
		k = 0
	case v >= e.q[4]:
		e.q[4] = v
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if v < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.want {
		e.want[i] += e.delta[i]
	}

	// Adjust the three interior markers toward their desired positions,
	// by parabolic interpolation when it keeps the heights ordered,
	// linearly otherwise.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			qp := e.parabolic(i, s)
			if e.q[i-1] < qp && qp < e.q[i+1] {
				e.q[i] = qp
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

func (e *P2) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+s)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-s)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

func (e *P2) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it answers exactly from the buffered samples.
func (e *P2) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		buf := make([]float64, e.n)
		copy(buf, e.q[:e.n])
		sort.Float64s(buf)
		idx := int(math.Ceil(e.p*float64(e.n))) - 1
		if idx < 0 {
			idx = 0
		}
		return buf[idx]
	}
	return e.q[2]
}

// P2Digest bundles P2 estimators for a fixed set of quantiles plus exact
// running mean/min/max/count, presenting the same query surface as a
// Series at O(1) memory. It is the streaming backend behind per-flow
// percentiles in metro-scale runs.
type P2Digest struct {
	targets []float64
	ests    []*P2
	n       int
	sum     float64
	min     float64
	max     float64
}

// DefaultQuantiles are the order statistics the paper's evaluation (and
// the sweep rows) report.
var DefaultQuantiles = []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}

// NewP2Digest returns a digest tracking the given quantiles
// (DefaultQuantiles when none are passed).
func NewP2Digest(quantiles ...float64) *P2Digest {
	if len(quantiles) == 0 {
		quantiles = DefaultQuantiles
	}
	d := &P2Digest{targets: quantiles}
	for _, q := range quantiles {
		d.ests = append(d.ests, NewP2(q))
	}
	return d
}

// Add feeds one observation to every tracked quantile.
func (d *P2Digest) Add(v float64) {
	if d.n == 0 || v < d.min {
		d.min = v
	}
	if d.n == 0 || v > d.max {
		d.max = v
	}
	d.n++
	d.sum += v
	for _, e := range d.ests {
		e.Add(v)
	}
}

// Len returns the number of observations.
func (d *P2Digest) Len() int { return d.n }

// Mean returns the exact running mean (0 when empty).
func (d *P2Digest) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Min returns the exact minimum (0 when empty).
func (d *P2Digest) Min() float64 { return d.min }

// Max returns the exact maximum (0 when empty).
func (d *P2Digest) Max() float64 { return d.max }

// Percentile answers with the estimator of the nearest tracked quantile
// (percentiles at or beyond the extremes answer exactly from min/max).
// Asking for an untracked interior percentile is a programming error in
// deterministic pipelines, so the tolerance is strict: the nearest target
// must be within 2.5 percentage points.
func (d *P2Digest) Percentile(p float64) float64 {
	if p <= 0 {
		return d.Min()
	}
	if p >= 100 {
		return d.Max()
	}
	q := p / 100
	best := -1
	for i, t := range d.targets {
		if best < 0 || math.Abs(t-q) < math.Abs(d.targets[best]-q) {
			best = i
		}
	}
	if best < 0 || math.Abs(d.targets[best]-q) > 0.025 {
		panic(fmt.Sprintf("stats: percentile %.4g not tracked by digest %v", p, d.targets))
	}
	return d.ests[best].Value()
}

// DurationP2 adapts a P2Digest to duration samples recorded in
// milliseconds, mirroring DurationSeries over Series.
type DurationP2 struct{ P2Digest }

// NewDurationP2 returns a streaming duration digest over the default
// quantile set.
func NewDurationP2() *DurationP2 {
	return &DurationP2{P2Digest: *NewP2Digest()}
}

// AddDuration appends a delay sample converted to milliseconds.
func (d *DurationP2) AddDuration(v time.Duration) {
	d.Add(float64(v) / float64(time.Millisecond))
}
