package rtc

import (
	"math/rand"
	"testing"
	"time"

	"pbecc/internal/netsim"
	"pbecc/internal/sim"
)

// TestJitterBufferNeverReleasesOutOfOrder is the ordering property: under
// random packetization, random delivery order, random duplication and
// random loss, the jitter buffer must release frames with strictly
// increasing sequence numbers and never release a frame it has not fully
// received.
func TestJitterBufferNeverReleasesOutOfOrder(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		eng := sim.New(int64(trial))
		jb := NewJitterBuffer(eng, MediaSpec{})

		var released []Frame
		jb.OnFrame = func(f Frame, delay time.Duration) { released = append(released, f) }

		const frames = 40
		sizes := make([]int, frames)
		type delivery struct {
			at time.Duration
			p  *netsim.Packet
		}
		var sched []delivery
		for seq := 0; seq < frames; seq++ {
			sizes[seq] = 200 + rng.Intn(6000)
			if rng.Float64() < 0.15 {
				continue // whole frame lost
			}
			captured := time.Duration(seq) * 33 * time.Millisecond
			for off := 0; off < sizes[seq]; off += netsim.MSS {
				size := netsim.MSS
				if sizes[seq]-off < size {
					size = sizes[seq] - off
				}
				if rng.Float64() < 0.05 {
					continue // packet lost
				}
				copies := 1
				if rng.Float64() < 0.05 {
					copies = 2 // duplicated
				}
				for c := 0; c < copies; c++ {
					jitter := time.Duration(rng.Intn(120)) * time.Millisecond
					sched = append(sched, delivery{captured + jitter, &netsim.Packet{
						Size: size,
						Media: netsim.MediaInfo{
							FrameSeq:   uint64(seq),
							FrameBytes: sizes[seq],
							Offset:     off,
							CapturedAt: captured,
						},
					}})
				}
			}
		}
		for _, d := range sched {
			d := d
			eng.At(d.at, func() { jb.Add(eng.Now(), d.p) })
		}
		eng.RunUntil(10 * time.Second)

		for i := 1; i < len(released); i++ {
			if released[i].Seq <= released[i-1].Seq {
				t.Fatalf("trial %d: released %d after %d", trial, released[i].Seq, released[i-1].Seq)
			}
		}
		for _, f := range released {
			if f.Bytes != sizes[f.Seq] {
				t.Fatalf("trial %d: frame %d released with %d bytes, want %d",
					trial, f.Seq, f.Bytes, sizes[f.Seq])
			}
		}
		st := jb.Stats()
		if st.Released != uint64(len(released)) {
			t.Fatalf("trial %d: stats released %d, callback saw %d", trial, st.Released, len(released))
		}
	}
}

// TestJitterBufferDuplicatesDoNotInflate checks that duplicated packets
// cannot complete a frame that is still missing data.
func TestJitterBufferDuplicatesDoNotInflate(t *testing.T) {
	eng := sim.New(1)
	jb := NewJitterBuffer(eng, MediaSpec{})
	var released int
	jb.OnFrame = func(f Frame, delay time.Duration) { released++ }

	first := &netsim.Packet{Size: 1500, Media: netsim.MediaInfo{FrameSeq: 0, FrameBytes: 3000, Offset: 0}}
	jb.Add(time.Millisecond, first)
	jb.Add(2*time.Millisecond, first) // duplicate of the same half
	if released != 0 {
		t.Fatal("a duplicated packet completed a half-received frame")
	}
	second := &netsim.Packet{Size: 1500, Media: netsim.MediaInfo{FrameSeq: 0, FrameBytes: 3000, Offset: 1500}}
	jb.Add(3*time.Millisecond, second)
	if released != 1 {
		t.Fatalf("released = %d after the real second half, want 1", released)
	}
}
