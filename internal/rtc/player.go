package rtc

import "time"

// StreamPlayer models a buffered streaming client (the videostream
// example's viewer): bytes arrive on a throughput timeline, buffer until
// the startup threshold, then drain at the video bitrate; shortfalls are
// rebuffering. This is the buffered-video counterpart to the
// jitter-buffer path — latency-tolerant, but throughput-sensitive.
type StreamPlayer struct {
	// BitrateMbps is the video encoding rate the player drains at.
	BitrateMbps float64
	// StartupSecs is how many seconds of video must buffer before
	// playback starts.
	StartupSecs float64
	// MaxBufferSecs caps the client buffer (players do not prefetch the
	// whole movie), limiting how long a capacity trough can be ridden
	// out on prefetched data. Zero means unbounded.
	MaxBufferSecs float64
}

// Play simulates the buffer over a fixed-window throughput timeline
// (rates in Mbit/s per window, as harness.FlowResult.TimelineR provides)
// and returns the startup delay and total rebuffering time.
func (pl StreamPlayer) Play(window time.Duration, times []time.Duration, ratesMbps []float64) (startup, rebuffer time.Duration) {
	segment := pl.BitrateMbps * pl.StartupSecs // Mbit needed to start
	bufferMbit := 0.0
	started := false
	for i := range times {
		bufferMbit += ratesMbps[i] * window.Seconds() // Mbit this window
		if pl.MaxBufferSecs > 0 {
			if max := pl.BitrateMbps * pl.MaxBufferSecs; bufferMbit > max {
				bufferMbit = max
			}
		}
		if !started {
			if bufferMbit >= segment {
				started = true
				startup = times[i]
			}
			continue
		}
		need := pl.BitrateMbps * window.Seconds()
		if bufferMbit >= need {
			bufferMbit -= need
		} else {
			// Stall: consume what is there, count the shortfall as
			// rebuffering time.
			short := (need - bufferMbit) / pl.BitrateMbps
			rebuffer += time.Duration(short * float64(time.Second))
			bufferMbit = 0
		}
	}
	return startup, rebuffer
}
