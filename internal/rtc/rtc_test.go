package rtc

import (
	"testing"
	"time"

	"pbecc/internal/cc"
	"pbecc/internal/cc/gcc"
	"pbecc/internal/netsim"
	"pbecc/internal/sim"
)

func TestEncoderGoPStructureAndRate(t *testing.T) {
	eng := sim.New(1)
	var frames []Frame
	enc := NewEncoder(eng, MediaSpec{FPS: 30, GoP: 30}, func(f Frame) { frames = append(frames, f) })
	enc.Available = func() float64 { return 8e6 } // top rung at default headroom? 8e6*0.85=6.8M -> layer 5e6
	enc.Start()
	eng.RunUntil(2 * time.Second)

	if len(frames) != 61 { // t=0 plus 60 ticks
		t.Fatalf("produced %d frames, want 61", len(frames))
	}
	keyframes := 0
	var bytes int
	for _, f := range frames[:60] {
		if f.Keyframe {
			keyframes++
		}
		bytes += f.Bytes
	}
	if keyframes != 2 {
		t.Fatalf("%d keyframes in 2 s with a 1 s GoP, want 2", keyframes)
	}
	// 60 frames at the 5 Mbit/s rung: about 10 Mbit total.
	rate := float64(bytes) * 8 / 2
	if rate < 4.5e6 || rate > 5.5e6 {
		t.Fatalf("encoded rate %.0f bit/s, want ~5e6", rate)
	}
	// Keyframes are boosted relative to delta frames.
	if frames[0].Bytes <= frames[1].Bytes*3 {
		t.Fatalf("keyframe %dB not boosted vs delta %dB", frames[0].Bytes, frames[1].Bytes)
	}
}

func TestEncoderAdaptsDownTheLadder(t *testing.T) {
	eng := sim.New(1)
	rate := 8e6
	var layers []int
	enc := NewEncoder(eng, MediaSpec{}, func(f Frame) { layers = append(layers, f.Layer) })
	enc.Available = func() float64 { return rate }
	enc.Start()
	eng.At(time.Second, func() { rate = 500e3 })
	eng.RunUntil(2 * time.Second)
	if layers[0] != 3 { // 8e6*0.85 = 6.8M -> 5 Mbit/s rung (index 3)
		t.Fatalf("start layer %d, want 3", layers[0])
	}
	if last := layers[len(layers)-1]; last != 0 {
		t.Fatalf("layer after rate collapse = %d, want 0", last)
	}
}

func TestSimulcastProducesEveryRung(t *testing.T) {
	eng := sim.New(1)
	perLayer := map[int]int{}
	enc := NewEncoder(eng, MediaSpec{Simulcast: true}, func(f Frame) { perLayer[f.Layer]++ })
	enc.Start()
	eng.RunUntil(time.Second)
	if len(perLayer) != len(DefaultLadder) {
		t.Fatalf("saw %d layers, want %d", len(perLayer), len(DefaultLadder))
	}
	for l, n := range perLayer {
		if n != 31 {
			t.Fatalf("layer %d produced %d frames, want 31", l, n)
		}
	}
}

func TestSenderShedsStaleFrames(t *testing.T) {
	eng := sim.New(1)
	sink := &netsim.Sink{}
	// A starved controller: 100 kbit/s pacing against a 2.5 Mbit/s stream.
	ctrl := &fixedRateController{rate: 100e3}
	snd := NewSender(eng, 1, sink, ctrl, MediaSpec{})
	snd.Start()
	enc := NewEncoder(eng, MediaSpec{}, snd.QueueFrame)
	enc.Available = func() float64 { return 2.5e6 / 0.85 }
	enc.Start()
	eng.RunUntil(4 * time.Second)
	if snd.FramesDropped == 0 {
		t.Fatal("overloaded sender never shed a frame")
	}
	// The queue must stay near the MaxQueueDelay bound, not grow without
	// limit: at 2.5 Mbit/s in and 0.1 Mbit/s out, an unbounded queue
	// would hold dozens of frames.
	if q := snd.QueuedFrames(); q > 16 {
		t.Fatalf("queue holds %d frames despite deadline shedding", q)
	}
}

// fixedRateController paces at a constant rate with a generous window.
type fixedRateController struct{ rate float64 }

func (c *fixedRateController) Name() string                                          { return "fixed" }
func (c *fixedRateController) OnSent(now time.Duration, seq uint64, bytes, infl int) {}
func (c *fixedRateController) OnAck(s cc.AckSample)                                  {}
func (c *fixedRateController) OnLoss(l cc.LossSample)                                {}
func (c *fixedRateController) PacingRate() float64                                   { return c.rate }
func (c *fixedRateController) CWND() int                                             { return 1 << 30 }

func TestJitterBufferReassemblyAndOrder(t *testing.T) {
	eng := sim.New(1)
	jb := NewJitterBuffer(eng, MediaSpec{})
	var released []uint64
	jb.OnFrame = func(f Frame, delay time.Duration) { released = append(released, f.Seq) }

	mk := func(seq uint64, frameBytes, off, size int) *netsim.Packet {
		return &netsim.Packet{Size: size, Media: netsim.MediaInfo{
			FrameSeq: seq, FrameBytes: frameBytes, Offset: off,
		}}
	}
	// Frame 0 in two packets; frame 1 complete before frame 0 finishes.
	jb.Add(10*time.Millisecond, mk(0, 3000, 0, 1500))
	jb.Add(11*time.Millisecond, mk(1, 1500, 0, 1500))
	if len(released) != 0 {
		t.Fatal("released a frame before an older frame completed")
	}
	jb.Add(12*time.Millisecond, mk(0, 3000, 1500, 1500))
	if len(released) != 2 || released[0] != 0 || released[1] != 1 {
		t.Fatalf("release order %v, want [0 1]", released)
	}
}

func TestJitterBufferSkipsLostFrame(t *testing.T) {
	eng := sim.New(1)
	jb := NewJitterBuffer(eng, MediaSpec{})
	var released []uint64
	jb.OnFrame = func(f Frame, delay time.Duration) { released = append(released, f.Seq) }

	mk := func(seq uint64) *netsim.Packet {
		return &netsim.Packet{Size: 1000, Media: netsim.MediaInfo{FrameSeq: seq, FrameBytes: 1000}}
	}
	eng.At(10*time.Millisecond, func() { jb.Add(eng.Now(), mk(0)) })
	// Frame 1 is lost; frames 2 and 3 arrive.
	eng.At(20*time.Millisecond, func() { jb.Add(eng.Now(), mk(2)) })
	eng.At(30*time.Millisecond, func() { jb.Add(eng.Now(), mk(3)) })
	eng.RunUntil(time.Second)

	want := []uint64{0, 2, 3}
	if len(released) != 3 {
		t.Fatalf("released %v, want %v", released, want)
	}
	for i, s := range want {
		if released[i] != s {
			t.Fatalf("released %v, want %v", released, want)
		}
	}
	if jb.Stats().Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", jb.Stats().Skipped)
	}
}

// runCall drives an end-to-end adaptive call over a fixed-rate bottleneck.
func runCall(t *testing.T, ctrl cc.Controller, feedback cc.FeedbackSource, linkBps float64, dur time.Duration) (*FrameStats, *Sender) {
	t.Helper()
	eng := sim.New(11)
	spec := MediaSpec{}
	var snd *Sender
	ackLink := netsim.NewLink(eng, 0, 20*time.Millisecond, 0, netsim.HandlerFunc(func(now time.Duration, p *netsim.Packet) {
		snd.HandlePacket(now, p)
	}))
	rcv := NewReceiver(eng, 1, ackLink, spec)
	rcv.Transport().Feedback = feedback
	fwd := netsim.NewLink(eng, linkBps, 20*time.Millisecond, 100*1500, rcv)
	snd = NewSender(eng, 1, fwd, ctrl, spec)
	snd.Start()
	enc := NewEncoder(eng, spec, snd.QueueFrame)
	enc.Available = snd.AvailableRate
	enc.Start()
	eng.RunUntil(dur)
	return rcv.Stats(), snd
}

func TestCallOverBottleneckWithGCC(t *testing.T) {
	st, snd := runCall(t, gcc.New(), gcc.NewREMB(), 4e6, 10*time.Second)
	if st.Released < 200 {
		t.Fatalf("only %d frames released in 10 s", st.Released)
	}
	// On a 4 Mbit/s link the adaptive encoder must settle on a rung the
	// link carries with interactive delay.
	if p95 := st.Delay.Percentile(95); p95 > 200 {
		t.Fatalf("p95 frame delay %.1f ms", p95)
	}
	if st.LatePct() > 20 {
		t.Fatalf("%.1f%% of frames late", st.LatePct())
	}
	_ = snd
}

func TestSFUFanoutLayerSelection(t *testing.T) {
	eng := sim.New(5)
	spec := MediaSpec{Simulcast: true}
	sfu := NewSFU(eng, spec)

	// Two subscribers: one wide link, one narrow link.
	type leg struct {
		rcv  *Receiver
		link *netsim.Link
	}
	mkLeg := func(id int, bps float64) *leg {
		l := &leg{}
		var sub *Subscriber
		ackLink := netsim.NewLink(eng, 0, 10*time.Millisecond, 0, netsim.HandlerFunc(func(now time.Duration, p *netsim.Packet) {
			sub.Send.HandlePacket(now, p)
		}))
		l.rcv = NewReceiver(eng, id, ackLink, sfu.LegSpec())
		l.rcv.Transport().Feedback = gcc.NewREMB()
		l.link = netsim.NewLink(eng, bps, 10*time.Millisecond, 60*1500, l.rcv)
		sub = sfu.AddSubscriber(id, l.link, gcc.New())
		return l
	}
	wide := mkLeg(1, 20e6)
	narrow := mkLeg(2, 600e3)
	sfu.Start()

	enc := NewEncoder(eng, spec, sfu.OnFrame)
	enc.Start()
	eng.RunUntil(10 * time.Second)

	ws, ns := wide.rcv.Stats(), narrow.rcv.Stats()
	if ws.Released < 200 || ns.Released < 100 {
		t.Fatalf("released wide=%d narrow=%d", ws.Released, ns.Released)
	}
	if sfu.Subscribers()[0].Layer() <= sfu.Subscribers()[1].Layer() {
		t.Fatalf("wide leg layer %d not above narrow leg layer %d",
			sfu.Subscribers()[0].Layer(), sfu.Subscribers()[1].Layer())
	}
	if ns.LatePct() > 30 {
		t.Fatalf("narrow leg %.1f%% late despite layer-down", ns.LatePct())
	}
}

func TestStreamPlayer(t *testing.T) {
	window := 100 * time.Millisecond
	var times []time.Duration
	var rates []float64
	// 40 windows at 10 Mbit/s, then 20 at 0, then 40 at 10.
	for i := 0; i < 100; i++ {
		times = append(times, time.Duration(i)*window)
		switch {
		case i < 40:
			rates = append(rates, 10)
		case i < 60:
			rates = append(rates, 0)
		default:
			rates = append(rates, 10)
		}
	}
	p := StreamPlayer{BitrateMbps: 5, StartupSecs: 1, MaxBufferSecs: 2}
	startup, rebuffer := p.Play(window, times, rates)
	// 5 Mbit buffers in 0.5 s at 10 Mbit/s.
	if startup != 400*time.Millisecond {
		t.Fatalf("startup %v, want 400ms", startup)
	}
	// The 2 s outage is partially covered by the 2 s buffer cap minus
	// drain; some rebuffering is inevitable.
	if rebuffer <= 0 || rebuffer > 2*time.Second {
		t.Fatalf("rebuffer %v out of range", rebuffer)
	}
}
