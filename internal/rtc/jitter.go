package rtc

import (
	"time"

	"pbecc/internal/netsim"
	"pbecc/internal/obs"
	"pbecc/internal/sim"
	"pbecc/internal/stats"
)

// Frame-level virtual-time series (40 ms windows; tid = flow ID):
// capture-to-release delay of released frames (ms), and freeze onsets -
// each sample is one stall's length beyond the 1.5-frame-interval
// allowance (ms), so a window's Count is its number of freeze onsets.
var (
	seriesFrameDelay = obs.Series("rtc.frame_delay")
	seriesFreeze     = obs.Series("rtc.freeze")
)

// skipWait is how long the jitter buffer waits for an incomplete frame
// once a newer frame is ready before giving up on the gap and moving on.
const skipWait = 100 * time.Millisecond

// FrameStats are the per-flow frame-level QoE metrics the rtc scenario
// family reports: the numbers an interactive application actually feels,
// as opposed to bulk throughput.
type FrameStats struct {
	Released     uint64 // frames delivered to the decoder, in order
	Skipped      uint64 // frames abandoned (lost or hopelessly late)
	PastDeadline uint64 // released, but after the play deadline
	SenderDrop   uint64 // shed by the sender pacer before transmission

	// FreezeTime accumulates display stall: any gap between consecutive
	// releases beyond 1.5 frame intervals counts as frozen video.
	FreezeTime time.Duration

	// Delay is the capture-to-release latency of every released frame.
	Delay stats.DurationSeries
}

// LatePct is the percentage of frames that missed their deadline or never
// played at all. A flow that played nothing missed everything: reporting
// 0 would make total collapse indistinguishable from perfection in the
// sweep's regression gate.
func (fs *FrameStats) LatePct() float64 {
	total := fs.Released + fs.Skipped
	if total == 0 {
		return 100
	}
	return 100 * float64(fs.PastDeadline+fs.Skipped) / float64(total)
}

// JitterBuffer reassembles media packets into frames and releases frames
// strictly in capture order: frame n+1 never plays before frame n. A gap
// (frame lost in flight or shed by the sender) blocks playout until a
// newer frame has been complete for skipWait, at which point the missing
// frames are abandoned and playout resumes — mirroring how a video
// decoder must wait for, then give up on, missing references.
type JitterBuffer struct {
	eng  *sim.Engine
	spec MediaSpec

	next    uint64 // next frame seq to release
	started bool
	pending map[uint64]*pendingFrame

	lastRelease time.Duration

	// OnFrame, when set, observes every released frame with its
	// capture-to-release delay.
	OnFrame func(f Frame, delay time.Duration)

	// Series tracks (EnableSeries); nil when the run records no series.
	delayTrack, freezeTrack *obs.SeriesTrack

	stats FrameStats
}

type pendingFrame struct {
	frame    Frame
	got      int
	seen     map[int]bool // packet offsets received, so duplicates cannot complete a frame
	complete bool
}

// NewJitterBuffer returns a buffer for one media flow.
func NewJitterBuffer(eng *sim.Engine, spec MediaSpec) *JitterBuffer {
	return &JitterBuffer{eng: eng, spec: spec.withDefaults(), pending: map[uint64]*pendingFrame{}}
}

// Stats exposes the accumulated frame metrics.
func (jb *JitterBuffer) Stats() *FrameStats { return &jb.stats }

// EnableSeries downsamples the buffer's frame delay and freeze onsets
// into the run's series under flow tid. Simulcast layers of one flow
// share the (signal, tid) tracks. A no-op when the run records no series.
func (jb *JitterBuffer) EnableSeries(tid int) {
	if sb := jb.eng.SeriesBuffer(); sb != nil {
		jb.delayTrack = sb.Track(seriesFrameDelay, tid)
		jb.freezeTrack = sb.Track(seriesFreeze, tid)
	}
}

// Add folds one received media packet in, releasing any frames that
// become playable.
func (jb *JitterBuffer) Add(now time.Duration, p *netsim.Packet) {
	m := p.Media
	if m.FrameBytes == 0 {
		return // not a media packet
	}
	if jb.started && m.FrameSeq < jb.next {
		return // packet of an already released or abandoned frame
	}
	if !jb.started {
		// First packet pins the playout origin: everything older than the
		// first frame seen was never sent to us.
		jb.next = m.FrameSeq
		jb.started = true
	}
	pf := jb.pending[m.FrameSeq]
	if pf == nil {
		pf = &pendingFrame{
			frame: Frame{
				Seq:        m.FrameSeq,
				Layer:      int(m.Layer),
				Bytes:      m.FrameBytes,
				Keyframe:   m.Keyframe,
				CapturedAt: m.CapturedAt,
			},
			seen: map[int]bool{},
		}
		jb.pending[m.FrameSeq] = pf
	}
	if pf.complete || pf.seen[m.Offset] {
		return
	}
	pf.seen[m.Offset] = true
	pf.got += p.Size
	if pf.got < m.FrameBytes {
		return
	}
	pf.complete = true
	jb.releaseReady(now)
	if jb.pending[pf.frame.Seq] != nil && pf.frame.Seq > jb.next {
		// This frame is ready but an older gap blocks it: give the gap
		// skipWait to fill, then abandon it.
		seq := pf.frame.Seq
		jb.eng.Schedule(skipWait, func() { jb.skipTo(seq) })
	}
}

// releaseReady plays every consecutive complete frame starting at next.
func (jb *JitterBuffer) releaseReady(now time.Duration) {
	for {
		pf := jb.pending[jb.next]
		if pf == nil || !pf.complete {
			return
		}
		jb.release(now, pf)
	}
}

func (jb *JitterBuffer) release(now time.Duration, pf *pendingFrame) {
	delay := now - pf.frame.CapturedAt
	jb.stats.Released++
	jb.stats.Delay.AddDuration(delay)
	if delay > jb.spec.Deadline {
		jb.stats.PastDeadline++
	}
	jb.delayTrack.Sample(now, float64(delay.Microseconds())/1000)
	if jb.stats.Released > 1 {
		if gap, allowed := now-jb.lastRelease, 3*jb.spec.FrameInterval()/2; gap > allowed {
			jb.stats.FreezeTime += gap - allowed
			jb.freezeTrack.Sample(now, float64((gap-allowed).Microseconds())/1000)
		}
	}
	jb.lastRelease = now
	delete(jb.pending, pf.frame.Seq)
	jb.next = pf.frame.Seq + 1
	if jb.OnFrame != nil {
		jb.OnFrame(pf.frame, delay)
	}
}

// skipTo abandons the frames blocking seq (releasing any complete ones on
// the way — order is still preserved) so playout can resume at seq.
func (jb *JitterBuffer) skipTo(seq uint64) {
	if jb.next > seq {
		return // the gap filled in time
	}
	if pf := jb.pending[seq]; pf == nil || !pf.complete {
		return // the trigger frame itself has been abandoned meanwhile
	}
	now := jb.eng.Now()
	for jb.next < seq {
		if pf := jb.pending[jb.next]; pf != nil && pf.complete {
			jb.release(now, pf)
			continue
		}
		delete(jb.pending, jb.next)
		jb.stats.Skipped++
		jb.next++
	}
	jb.releaseReady(now)
}
