package rtc

import (
	"time"

	"pbecc/internal/cc"
	"pbecc/internal/netsim"
	"pbecc/internal/sim"
)

// Receiver is the media endpoint on the mobile side: the bulk transport's
// receiver (per-packet acknowledgements with timestamp echo and optional
// congestion feedback) composed with a jitter buffer that turns the
// packet stream back into an ordered frame stream. A simulcast receiver
// (the SFU's ingest side) keeps one jitter buffer per ladder layer, since
// the layers share capture sequence numbers but are independent streams.
type Receiver struct {
	tr  *cc.Receiver
	jbs []*JitterBuffer

	// JB is the single-stream jitter buffer (layer 0 under simulcast):
	// its Stats are the flow's frame metrics.
	JB *JitterBuffer

	// OnFrame, when set, observes every released frame of every layer
	// with its capture-to-release delay.
	OnFrame func(f Frame, delay time.Duration)

	// OnData, when set, observes every received data packet with its
	// one-way delay (after the jitter buffer has consumed it).
	OnData func(now time.Duration, p *netsim.Packet, owd time.Duration)
}

// NewReceiver wires a media receiver whose ACKs travel through ackPath.
func NewReceiver(eng *sim.Engine, flowID int, ackPath netsim.Handler, spec MediaSpec) *Receiver {
	spec = spec.withDefaults()
	r := &Receiver{tr: cc.NewReceiver(eng, flowID, ackPath)}
	buffers := 1
	if spec.Simulcast {
		buffers = len(spec.Ladder)
	}
	for i := 0; i < buffers; i++ {
		jb := NewJitterBuffer(eng, spec)
		jb.OnFrame = func(f Frame, delay time.Duration) {
			if r.OnFrame != nil {
				r.OnFrame(f, delay)
			}
		}
		r.jbs = append(r.jbs, jb)
	}
	r.JB = r.jbs[0]
	r.tr.OnData = func(now time.Duration, p *netsim.Packet, owd time.Duration) {
		jb := r.jbs[0] // a single-stream flow may switch layers over time
		if spec.Simulcast {
			if l := int(p.Media.Layer); l >= 0 && l < len(r.jbs) {
				jb = r.jbs[l]
			}
		}
		jb.Add(now, p)
		if r.OnData != nil {
			r.OnData(now, p, owd)
		}
	}
	return r
}

// Transport exposes the underlying cc.Receiver (to attach a feedback
// source such as the PBE client or the GCC REMB estimator).
func (r *Receiver) Transport() *cc.Receiver { return r.tr }

// Stats exposes the frame metrics of the single-stream jitter buffer.
func (r *Receiver) Stats() *FrameStats { return r.JB.Stats() }

// EnableSeries downsamples every layer's frame delay and freeze onsets
// into the run's series under flow tid (layers share the tracks).
func (r *Receiver) EnableSeries(tid int) {
	for _, jb := range r.jbs {
		jb.EnableSeries(tid)
	}
}

// HandlePacket implements netsim.Handler for packets released by the UE.
func (r *Receiver) HandlePacket(now time.Duration, p *netsim.Packet) {
	r.tr.HandlePacket(now, p)
}
