package rtc

import (
	"time"

	"pbecc/internal/cc"
	"pbecc/internal/netsim"
	"pbecc/internal/obs"
	"pbecc/internal/sim"
)

// Media metrics, aggregated over every media sender and SFU leg.
var (
	mFramesSent = obs.NewCounter("rtc.frames_sent")
	mFramesShed = obs.NewCounter("rtc.frames_shed")
	mPadding    = obs.NewCounter("rtc.padding_packets")
)

// Sender is the media transport: it packetizes queued frames into
// MSS-sized packets carrying frame metadata and ships them through a
// cc.Sender, so pacing, windowing, RTT estimation and loss detection are
// exactly the bulk transport's — only the payload source differs. Frames
// that have waited past MaxQueueDelay since capture are dropped — even
// mid-transmission — because an RTC sender sheds load instead of
// building latency and a past-deadline frame is useless to the decoder.
// When the frame queue is empty the pacer emits padding packets at the
// controller's rate (WebRTC's bandwidth-probing behavior): without them
// a delay-based estimator serving an application-limited source would
// never see enough traffic to raise its estimate, and an SFU subscriber
// could never earn a higher simulcast layer.
type Sender struct {
	eng  *sim.Engine
	spec MediaSpec
	snd  *cc.Sender
	pool *netsim.PacketPool

	queue []*queuedFrame

	// DisablePadding turns off bandwidth-probe padding (for sources that
	// should stay strictly application-limited).
	DisablePadding bool

	deliveryMax cc.WindowedMax

	// Counters.
	FramesQueued  uint64
	FramesSent    uint64
	FramesDropped uint64 // dropped in-queue past MaxQueueDelay
	BytesDropped  uint64
	PaddingSent   uint64
}

type queuedFrame struct {
	frame Frame
	pkts  []*netsim.Packet
	sent  int
}

// NewSender wires a media sender for flowID transmitting into out under
// ctrl. Call Start, then QueueFrame (typically as an Encoder's sink).
func NewSender(eng *sim.Engine, flowID int, out netsim.Handler, ctrl cc.Controller, spec MediaSpec) *Sender {
	s := &Sender{eng: eng, spec: spec.withDefaults(), pool: netsim.PoolOf(eng)}
	s.snd = cc.NewSender(eng, flowID, out, ctrl)
	s.snd.Source = s.next
	s.snd.AppLimited = true
	s.deliveryMax.Window = 2 * time.Second
	s.snd.OnAckHook = func(a cc.AckSample) {
		if a.DeliveryRate > 0 && !a.AppLimited {
			s.deliveryMax.Update(a.Now, a.DeliveryRate)
		}
	}
	return s
}

// AvailableRate is the transport rate the encoder (or an SFU layer
// selector) may target: the controller's pacing rate when it paces, else
// the windowed-max delivery rate — window-based schemes like CUBIC
// express capacity through deliveries, not a rate.
func (s *Sender) AvailableRate() float64 {
	if r := s.snd.Controller().PacingRate(); r > 0 {
		return r
	}
	return s.deliveryMax.Get()
}

// Transport exposes the underlying cc.Sender (ACKs are delivered to it;
// counters and SRTT live there).
func (s *Sender) Transport() *cc.Sender { return s.snd }

// Controller returns the congestion controller driving this sender.
func (s *Sender) Controller() cc.Controller { return s.snd.Controller() }

// Start begins transmission and loss detection.
func (s *Sender) Start() { s.snd.Start() }

// Stop halts transmission.
func (s *Sender) Stop() { s.snd.Stop() }

// HandlePacket feeds acknowledgements through to the transport.
func (s *Sender) HandlePacket(now time.Duration, p *netsim.Packet) {
	s.snd.HandlePacket(now, p)
}

// QueuedFrames returns the frames waiting (or partially sent) in the
// pacer queue.
func (s *Sender) QueuedFrames() int { return len(s.queue) }

// QueueFrame packetizes one frame onto the pacer queue.
func (s *Sender) QueueFrame(f Frame) {
	n := (f.Bytes + netsim.MSS - 1) / netsim.MSS
	qf := &queuedFrame{frame: f, pkts: make([]*netsim.Packet, 0, n)}
	for off := 0; off < f.Bytes; off += netsim.MSS {
		size := netsim.MSS
		if f.Bytes-off < size {
			size = f.Bytes - off
		}
		p := s.pool.Get()
		p.Size = size
		p.Media = netsim.MediaInfo{
			FrameSeq:   f.Seq,
			FrameBytes: f.Bytes,
			Offset:     off,
			Layer:      int8(f.Layer),
			Keyframe:   f.Keyframe,
			CapturedAt: f.CapturedAt,
		}
		qf.pkts = append(qf.pkts, p)
	}
	s.queue = append(s.queue, qf)
	s.FramesQueued++
	s.snd.Pump()
}

// next implements the cc.Sender source: the pacer pulls the next packet,
// shedding frames that have already waited past MaxQueueDelay and
// falling back to padding when no frame is queued.
func (s *Sender) next(now time.Duration) *netsim.Packet {
	for len(s.queue) > 0 {
		head := s.queue[0]
		if now-head.frame.CapturedAt > s.spec.MaxQueueDelay {
			s.FramesDropped++
			mFramesShed.Inc()
			if buf := s.eng.ObsBuffer(); buf != nil {
				buf.Instant("frame_shed", "rtc", now, s.snd.FlowID)
			}
			// Only the untransmitted remainder counts as dropped bytes;
			// the sent prefix is already in the transport's SentBytes. The
			// remainder never reaches the wire, so the pacer is its last
			// owner and releases it here.
			for _, p := range head.pkts[head.sent:] {
				s.BytesDropped += uint64(p.Size)
			}
			s.pool.ReleaseAll(head.pkts[head.sent:])
			s.queue = s.queue[1:]
			continue
		}
		p := head.pkts[head.sent]
		head.sent++
		if head.sent == len(head.pkts) {
			s.FramesSent++
			mFramesSent.Inc()
			s.queue = s.queue[1:]
		}
		// Delivery-rate samples reflect network capacity only while more
		// data is backlogged behind this packet.
		s.snd.AppLimited = len(s.queue) == 0
		return p
	}
	if s.DisablePadding {
		return nil
	}
	// Padding probe: sent at the controller's full pacing rate, so the
	// receiver-side estimator keeps measuring the path even when the
	// encoder uses less than the transport offers.
	s.PaddingSent++
	mPadding.Inc()
	s.snd.AppLimited = false
	p := s.pool.Get()
	p.Size = netsim.MSS
	p.Padding = true
	return p
}
