package rtc

import (
	"pbecc/internal/cc"
	"pbecc/internal/netsim"
	"pbecc/internal/obs"
	"pbecc/internal/sim"
)

// SFU metrics: committed layer changes, and frames a leg spent waiting
// for the keyframe that lets a pending switch commit (a decoder cannot
// join a simulcast stream mid-GoP, so this gate is the switch latency).
var (
	mLayerSwitches = obs.NewCounter("sfu.layer_switches")
	mKeyframeGated = obs.NewCounter("sfu.keyframe_gated_frames")
)

// compile-time check: a Sender terminates the SFU's ack paths.
var _ netsim.Handler = (*Sender)(nil)

// SFU is a frame-level selective forwarding unit: one simulcast ingest
// stream fans out to many subscribers, each of which receives exactly one
// rate-ladder layer chosen from its own congestion controller's current
// rate — the architecture that lets one uplink serve a large call while
// every downlink adapts independently. Feed released ingest frames into
// OnFrame (typically as the ingest jitter buffer's release hook).
type SFU struct {
	eng  *sim.Engine
	spec MediaSpec
	subs []*Subscriber
}

// Subscriber is one fan-out leg: a media sender paced by its own
// controller, plus the layer-selection state.
type Subscriber struct {
	ID   int
	Send *Sender

	layer  int // layer currently forwarded
	target int // desired layer awaiting a keyframe to switch to

	// LayerSwitches counts committed layer changes.
	LayerSwitches uint64
}

// Layer returns the layer currently forwarded to this subscriber.
func (s *Subscriber) Layer() int { return s.layer }

// NewSFU returns a relay for an ingest stream described by spec (the
// ladder defines the selectable layers).
func NewSFU(eng *sim.Engine, spec MediaSpec) *SFU {
	return &SFU{eng: eng, spec: spec.withDefaults()}
}

// Subscribers returns the registered legs in registration order.
func (s *SFU) Subscribers() []*Subscriber { return s.subs }

// Spec returns the resolved ingest media spec.
func (s *SFU) Spec() MediaSpec { return s.spec }

// LegSpec returns the spec a subscriber leg uses: the ingest spec minus
// simulcast, since each leg carries exactly one layer at a time.
func (s *SFU) LegSpec() MediaSpec {
	sp := s.spec
	sp.Simulcast = false
	return sp
}

// AddSubscriber registers one leg sending into out under ctrl. New
// subscribers start on the lowest layer and climb as their controller
// finds rate.
func (s *SFU) AddSubscriber(flowID int, out netsim.Handler, ctrl cc.Controller) *Subscriber {
	sub := &Subscriber{
		ID:   flowID,
		Send: NewSender(s.eng, flowID, out, ctrl, s.spec),
	}
	s.subs = append(s.subs, sub)
	return sub
}

// Start begins transmission on every leg.
func (s *SFU) Start() {
	for _, sub := range s.subs {
		sub.Send.Start()
	}
}

// Stop halts every leg.
func (s *SFU) Stop() {
	for _, sub := range s.subs {
		sub.Send.Stop()
	}
}

// OnFrame relays one ingest frame: each subscriber re-evaluates its
// desired layer against its transport's available rate, commits a
// pending switch at a keyframe tick (a decoder cannot join a simulcast
// stream mid-GoP), and receives the frame if it belongs to the
// subscriber's current layer. Because the simulcast GoPs are aligned and
// the rungs of one capture tick arrive lowest-first, committing on the
// first keyframe of the tick - before the target layer's copy passes -
// guarantees the leg's first frame on the new layer is that layer's
// keyframe and that no capture seq is ever forwarded twice.
func (s *SFU) OnFrame(f Frame) {
	for _, sub := range s.subs {
		sub.target = s.spec.LayerFor(sub.Send.AvailableRate())
		if sub.target != sub.layer {
			if f.Keyframe {
				sub.layer = sub.target
				sub.LayerSwitches++
				mLayerSwitches.Inc()
			} else if f.Layer == sub.layer {
				mKeyframeGated.Inc()
			}
		}
		if f.Layer == sub.layer {
			sub.Send.QueueFrame(f)
		}
	}
}
