// Package rtc is the frame-level real-time media subsystem: the workload
// class the paper's headline latency claim is about. It models a video
// encoder with GoP structure and a simulcast rate ladder, a
// packetizer/pacer that ships frames through any cc.Controller, a
// receiver-side jitter buffer that reassembles frames in strict order and
// records per-frame deadline metrics, and an SFU-style fan-out relay that
// serves one ingest stream to many subscribers with per-subscriber layer
// selection. Congestion control plugs in through the cc.Controller
// interface, so PBE-CC, the GCC baseline and the bulk-transfer schemes
// can all carry the same call and be compared on frame-level QoE.
package rtc

import (
	"time"

	"pbecc/internal/sim"
)

// Frame is one encoded video frame as handed from encoder to transport
// and from jitter buffer to decoder.
type Frame struct {
	Seq        uint64 // capture-tick index, shared across simulcast layers
	Layer      int    // rate-ladder layer the frame was encoded at
	Bytes      int
	Keyframe   bool
	CapturedAt time.Duration
}

// DefaultLadder is the simulcast rate ladder in bits per second, a
// conventional WebRTC-style spread from audio-grade video to full HD.
var DefaultLadder = []float64{300e3, 1e6, 2.5e6, 5e6, 8e6}

// MediaSpec describes one media stream. The zero value of every field
// selects the default noted on it.
type MediaSpec struct {
	FPS int // frames per second (default 30)
	GoP int // frames per group-of-pictures (default 30: one keyframe/s)

	// Ladder is the ascending encoder rate ladder in bits/sec (default
	// DefaultLadder). The adaptive encoder moves along it; a simulcast
	// encoder produces every rung.
	Ladder []float64

	// KeyframeBoost is the keyframe size relative to the GoP's average
	// frame (default 4). Delta frames shrink so the GoP hits the target
	// rate on average.
	KeyframeBoost float64

	// Headroom is the fraction of the transport's offered rate the
	// encoder (or the SFU's layer selector) dares to use (default 0.85).
	Headroom float64

	// Deadline is the per-frame play deadline measured from capture; a
	// frame released later counts as past-deadline (default 200 ms,
	// interactive-grade).
	Deadline time.Duration

	// MaxQueueDelay bounds how long a frame may wait in the sender queue
	// before the pacer drops it instead of building latency (default
	// 400 ms).
	MaxQueueDelay time.Duration

	// Simulcast makes the encoder produce every ladder rung each tick
	// (the SFU ingest configuration) instead of adapting a single stream.
	Simulcast bool
}

// withDefaults fills the zero fields.
func (m MediaSpec) withDefaults() MediaSpec {
	if m.FPS == 0 {
		m.FPS = 30
	}
	if m.GoP == 0 {
		m.GoP = 30
	}
	if len(m.Ladder) == 0 {
		m.Ladder = DefaultLadder
	}
	if m.KeyframeBoost == 0 {
		m.KeyframeBoost = 4
	}
	if m.Headroom == 0 {
		m.Headroom = 0.85
	}
	if m.Deadline == 0 {
		m.Deadline = 200 * time.Millisecond
	}
	if m.MaxQueueDelay == 0 {
		m.MaxQueueDelay = 400 * time.Millisecond
	}
	return m
}

// FrameInterval is the capture period.
func (m MediaSpec) FrameInterval() time.Duration {
	return time.Second / time.Duration(m.FPS)
}

// LayerFor returns the highest ladder index whose rate fits within
// headroom times the available rate (the lowest rung when nothing fits).
func (m MediaSpec) LayerFor(availableBps float64) int {
	layer := 0
	for i, r := range m.Ladder {
		if r <= m.Headroom*availableBps {
			layer = i
		}
	}
	return layer
}

// Encoder is the frame-pattern traffic source: it ticks at the frame
// rate and produces frames with GoP structure (a keyframe burst opening
// every group). In adaptive mode it re-reads Available each tick and
// moves along the rate ladder, forcing a keyframe on every layer change
// (a decoder cannot switch streams mid-GoP); in simulcast mode it
// produces every rung with aligned GoPs and leaves selection to the SFU.
type Encoder struct {
	eng  *sim.Engine
	spec MediaSpec
	sink func(Frame)

	// Available supplies the transport rate the encoder may use in
	// bits/sec (typically the congestion controller's pacing rate);
	// nil pins the encoder to the top rung.
	Available func() float64

	seq    uint64
	layer  int
	gopIdx int
	ticker *sim.Ticker

	FramesProduced uint64
	LayerSwitches  uint64
}

// NewEncoder returns a stopped encoder delivering frames to sink; call
// Start.
func NewEncoder(eng *sim.Engine, spec MediaSpec, sink func(Frame)) *Encoder {
	return &Encoder{eng: eng, spec: spec.withDefaults(), sink: sink}
}

// Spec returns the encoder's resolved (defaulted) spec.
func (e *Encoder) Spec() MediaSpec { return e.spec }

// Layer returns the current adaptive layer.
func (e *Encoder) Layer() int { return e.layer }

// Start begins producing frames, the first immediately.
func (e *Encoder) Start() {
	if e.ticker != nil {
		return
	}
	e.tick()
	e.ticker = e.eng.Every(e.spec.FrameInterval(), e.tick)
}

// Stop halts the encoder; it can be restarted.
func (e *Encoder) Stop() {
	if e.ticker != nil {
		e.ticker.Stop()
		e.ticker = nil
	}
}

func (e *Encoder) tick() {
	now := e.eng.Now()
	seq := e.seq
	e.seq++
	if e.spec.Simulcast {
		key := e.gopIdx == 0
		for layer := range e.spec.Ladder {
			e.emit(now, seq, layer, key)
		}
		e.advanceGoP()
		return
	}
	if e.Available != nil {
		if want := e.spec.LayerFor(e.Available()); want != e.layer {
			e.layer = want
			e.gopIdx = 0 // layer switch requires a fresh keyframe
			e.LayerSwitches++
		}
	} else {
		e.layer = len(e.spec.Ladder) - 1
	}
	e.emit(now, seq, e.layer, e.gopIdx == 0)
	e.advanceGoP()
}

func (e *Encoder) advanceGoP() {
	e.gopIdx++
	if e.gopIdx >= e.spec.GoP {
		e.gopIdx = 0
	}
}

// emit produces one frame at the layer's ladder rate: the keyframe gets
// KeyframeBoost times the GoP-average size, delta frames shrink to keep
// the long-run rate on target.
func (e *Encoder) emit(now time.Duration, seq uint64, layer int, key bool) {
	avg := e.spec.Ladder[layer] / float64(e.spec.FPS) / 8 // bytes/frame
	var bytes float64
	if key {
		bytes = e.spec.KeyframeBoost * avg
	} else {
		g, b := float64(e.spec.GoP), e.spec.KeyframeBoost
		bytes = avg * (g - b) / (g - 1)
	}
	if bytes < 1 {
		bytes = 1
	}
	e.FramesProduced++
	e.sink(Frame{
		Seq:        seq,
		Layer:      layer,
		Bytes:      int(bytes),
		Keyframe:   key,
		CapturedAt: now,
	})
}
