// Package vivace implements PCC Vivace (Dong et al., NSDI 2018):
// online-learning rate control by gradient ascent on the utility
//
//	u(x) = x^0.9 - b*x*max(0, dRTT/dt) - c*x*L
//
// with b = 900, c = 11.35 and x in Mbit/s. The sender alternates monitor
// intervals at rate x(1+eps) and x(1-eps), estimates the utility gradient
// from the pair, and steps the rate along it with a confidence-amplified,
// change-bounded step.
package vivace

import (
	"math"
	"time"

	"pbecc/internal/cc"
)

const (
	mss        = 1500
	eps        = 0.05
	utilExp    = 0.9
	latCoeff   = 900.0
	lossCoeff  = 11.35
	minRate    = 0.3e6
	thetaScale = 0.05e6 // converts utility gradient to bits/sec step
	maxChange  = 0.25   // per-update rate change bound (fraction)
)

// miRecord is one monitor interval's measurements.
type miRecord struct {
	rate     float64
	start    time.Duration
	end      time.Duration
	acked    int
	lost     int
	firstRTT time.Duration
	lastRTT  time.Duration
}

// Vivace is the controller. Create with New.
type Vivace struct {
	rate float64
	mi   miRecord
	half int // 0 = testing +eps, 1 = testing -eps
	uUp  float64

	confidence int
	lastDir    int

	miDur time.Duration
	srtt  time.Duration
}

// New returns a Vivace controller.
func New() *Vivace {
	return &Vivace{rate: 2 * minRate, miDur: 20 * time.Millisecond, confidence: 1}
}

// Name implements cc.Controller.
func (v *Vivace) Name() string { return "vivace" }

// Rate returns the current base rate in bits/sec.
func (v *Vivace) Rate() float64 { return v.rate }

func (v *Vivace) trialRate() float64 {
	if v.half == 0 {
		return v.rate * (1 + eps)
	}
	return v.rate * (1 - eps)
}

// utility computes Vivace's latency-gradient utility for a closed MI.
func (v *Vivace) utility(m *miRecord) float64 {
	total := m.acked + m.lost
	var l float64
	if total > 0 {
		l = float64(m.lost) / float64(total)
	}
	x := m.rate / 1e6
	grad := 0.0
	if dur := m.end - m.start; dur > 0 && m.firstRTT > 0 {
		grad = (m.lastRTT - m.firstRTT).Seconds() / dur.Seconds()
		if grad < 0 {
			grad = 0
		}
	}
	return math.Pow(x, utilExp) - latCoeff*x*grad - lossCoeff*x*l
}

// OnSent implements cc.Controller.
func (v *Vivace) OnSent(now time.Duration, seq uint64, bytes, inflight int) {}

// OnAck implements cc.Controller.
func (v *Vivace) OnAck(s cc.AckSample) {
	v.srtt = s.SRTT
	if v.srtt > 0 {
		v.miDur = v.srtt
		if v.miDur < 10*time.Millisecond {
			v.miDur = 10 * time.Millisecond
		}
	}
	if v.mi.end == 0 {
		v.startMI(s.Now)
		return
	}
	v.mi.acked++
	if v.mi.firstRTT == 0 {
		v.mi.firstRTT = s.RTT
	}
	v.mi.lastRTT = s.RTT
	if s.Now >= v.mi.end {
		v.closeMI(s.Now)
	}
}

// OnLoss implements cc.Controller.
func (v *Vivace) OnLoss(l cc.LossSample) {
	v.mi.lost++
}

func (v *Vivace) startMI(now time.Duration) {
	v.mi = miRecord{rate: v.trialRate(), start: now, end: now + v.miDur}
}

func (v *Vivace) closeMI(now time.Duration) {
	u := v.utility(&v.mi)
	if v.half == 0 {
		v.uUp = u
		v.half = 1
		v.startMI(now)
		return
	}
	v.half = 0
	uDown := u

	// Gradient estimate over the pair.
	theta := (v.uUp - uDown) / (2 * eps * (v.rate / 1e6))
	dir := +1
	if theta < 0 {
		dir = -1
	}
	if dir == v.lastDir {
		v.confidence++
		if v.confidence > 8 {
			v.confidence = 8
		}
	} else {
		v.confidence = 1
	}
	v.lastDir = dir

	step := float64(v.confidence) * thetaScale * math.Abs(theta)
	if max := maxChange * v.rate; step > max {
		step = max
	}
	v.rate += float64(dir) * step
	if v.rate < minRate {
		v.rate = minRate
	}
	v.startMI(now)
}

// PacingRate implements cc.Controller.
func (v *Vivace) PacingRate() float64 { return v.trialRate() }

// CWND implements cc.Controller: inflight guard of two seconds at rate.
func (v *Vivace) CWND() int {
	w := int(v.trialRate() * 2 / 8)
	if w < cc.MinCwnd {
		w = cc.MinCwnd
	}
	return w
}
