package vivace

import (
	"testing"
	"time"

	"pbecc/internal/cc/cctest"
)

func TestUtilityPenalizesLatencyGradient(t *testing.T) {
	v := New()
	flat := miRecord{rate: 10e6, start: 0, end: 100 * time.Millisecond,
		acked: 100, firstRTT: 50 * time.Millisecond, lastRTT: 50 * time.Millisecond}
	rising := flat
	rising.lastRTT = 80 * time.Millisecond // +0.3 s/s gradient
	if v.utility(&rising) >= v.utility(&flat) {
		t.Fatal("rising RTT must lower utility")
	}
}

func TestUtilityIgnoresFallingRTT(t *testing.T) {
	v := New()
	flat := miRecord{rate: 10e6, start: 0, end: 100 * time.Millisecond,
		acked: 100, firstRTT: 50 * time.Millisecond, lastRTT: 50 * time.Millisecond}
	falling := flat
	falling.lastRTT = 30 * time.Millisecond
	if v.utility(&falling) != v.utility(&flat) {
		t.Fatal("negative gradients are clamped to zero in Vivace's utility")
	}
}

func TestUtilityPenalizesLoss(t *testing.T) {
	v := New()
	clean := miRecord{rate: 10e6, start: 0, end: 100 * time.Millisecond, acked: 100,
		firstRTT: 50 * time.Millisecond, lastRTT: 50 * time.Millisecond}
	lossy := clean
	lossy.acked, lossy.lost = 80, 20
	if v.utility(&lossy) >= v.utility(&clean) {
		t.Fatal("loss must lower utility")
	}
}

func TestStepBounded(t *testing.T) {
	v := New()
	v.rate = 10e6
	v.half = 1
	v.uUp = 1e12 // absurd gradient
	v.mi = miRecord{rate: v.rate * (1 - eps), start: 0, end: time.Millisecond, acked: 10,
		firstRTT: 50 * time.Millisecond, lastRTT: 50 * time.Millisecond}
	v.closeMI(2 * time.Millisecond)
	if v.rate > 10e6*(1+maxChange)+1 {
		t.Fatalf("rate change exceeded bound: %v", v.rate)
	}
}

func TestConfidenceGrowsSameDirection(t *testing.T) {
	v := New()
	v.rate = 10e6
	for i := 0; i < 5; i++ {
		v.half = 1
		v.uUp = 100 // up always better
		v.mi = miRecord{rate: v.rate * (1 - eps), start: 0, end: time.Millisecond, acked: 10,
			firstRTT: 50 * time.Millisecond, lastRTT: 50 * time.Millisecond}
		v.closeMI(time.Duration(i+1) * 10 * time.Millisecond)
	}
	if v.confidence < 3 {
		t.Fatalf("confidence = %d after 5 consistent updates", v.confidence)
	}
}

func TestConvergesReasonably(t *testing.T) {
	v := New()
	r := cctest.Run(1, v, 20e6, 60*time.Millisecond, 64*1500, 15*time.Second)
	if r.ThroughputMbps < 4 {
		t.Fatalf("Vivace got %.1f Mbit/s of 20", r.ThroughputMbps)
	}
	if v.Rate() > 60e6 {
		t.Fatalf("Vivace rate runaway: %.1f Mbit/s", v.Rate()/1e6)
	}
}

func TestRateFloorHolds(t *testing.T) {
	v := New()
	v.rate = minRate
	v.half = 1
	v.uUp = -1e12
	v.mi = miRecord{rate: v.rate, start: 0, end: time.Millisecond, acked: 1, lost: 99,
		firstRTT: 50 * time.Millisecond, lastRTT: 500 * time.Millisecond}
	v.closeMI(2 * time.Millisecond)
	if v.rate < minRate {
		t.Fatalf("rate below floor: %v", v.rate)
	}
}

func TestName(t *testing.T) {
	if New().Name() != "vivace" {
		t.Fatal("name")
	}
}
