package cc

import (
	"time"

	"pbecc/internal/netsim"
	"pbecc/internal/sim"
)

// AckBytes is the size of an acknowledgement packet on the wire.
const AckBytes = 60

// FeedbackSource supplies the receiver-side congestion feedback PBE-CC
// carries in every ACK: the capacity-derived target rate and the
// bottleneck-state bit (§5). Schemes without receiver feedback use a nil
// source.
type FeedbackSource interface {
	Feedback(now time.Duration, owd time.Duration, dataBytes int) (rateBps float64, internetBottleneck bool)
}

// Receiver acknowledges every data packet, echoing the send timestamp and
// its own receive timestamp so the sender can compute RTT and one-way
// delay, and attaching feedback when a source is configured.
type Receiver struct {
	eng      *sim.Engine
	FlowID   int
	ackPath  netsim.Handler
	Feedback FeedbackSource
	pool     *netsim.PacketPool

	// OnData observes every received data packet with its one-way delay
	// (used by experiment instrumentation).
	OnData func(now time.Duration, p *netsim.Packet, owd time.Duration)

	// Counters.
	Received      uint64
	ReceivedBytes uint64
}

// NewReceiver wires a receiver whose ACKs travel through ackPath back to
// the sender.
func NewReceiver(eng *sim.Engine, flowID int, ackPath netsim.Handler) *Receiver {
	return &Receiver{eng: eng, FlowID: flowID, ackPath: ackPath, pool: netsim.PoolOf(eng)}
}

// HandlePacket implements netsim.Handler for data packets released by the
// UE.
func (r *Receiver) HandlePacket(now time.Duration, p *netsim.Packet) {
	if p.IsAck || p.FlowID != r.FlowID {
		return
	}
	r.Received++
	r.ReceivedBytes += uint64(p.Size)
	owd := now - p.SentAt
	if r.OnData != nil {
		r.OnData(now, p, owd)
	}
	ack := r.pool.Get()
	ack.FlowID = r.FlowID
	ack.Seq = p.Seq
	ack.Size = AckBytes
	ack.SentAt = now
	ack.IsAck = true
	ack.Ack = netsim.AckInfo{
		AckSeq:     p.Seq,
		DataSentAt: p.SentAt,
		ReceivedAt: now,
		DataSize:   p.Size,
	}
	if r.Feedback != nil {
		rate, btl := r.Feedback.Feedback(now, owd, p.Size)
		ack.Ack.FeedbackRate = rate
		ack.Ack.InternetBottleneck = btl
	}
	// The receiver consumes the data packet: OnData observers have
	// returned and the jitter-buffer path copies what it keeps, so this
	// is the release point for the downstream data path.
	r.pool.Release(p)
	r.ackPath.HandlePacket(now, ack)
}
