package verus

import (
	"testing"
	"time"

	"pbecc/internal/cc"
	"pbecc/internal/cc/cctest"
)

func TestThroughputWithQueueing(t *testing.T) {
	r := cctest.Run(1, New(), 20e6, 60*time.Millisecond, 1<<21, 10*time.Second)
	if r.ThroughputMbps < 12 {
		t.Fatalf("Verus got %.1f Mbit/s of 20", r.ThroughputMbps)
	}
	// Verus trades delay for rate: its target delay ratio (2-6x Dmin)
	// means standing queues well above propagation.
	if r.AvgOWDms < 32 {
		t.Fatalf("avg OWD = %.1f ms: Verus should hold a standing queue", r.AvgOWDms)
	}
}

func TestProfileInversionRespectsTarget(t *testing.T) {
	v := New()
	v.dMinMs = 50
	for b := 2; b < 100; b++ {
		v.profile[b] = 50 + float64(b) // delay grows with window
	}
	// Largest bucket with profile <= 100 is b=50, but growth from the
	// current window is bounded (5% or two segments per epoch).
	v.ratio = 2
	v.cwnd = 10
	if got := v.invertProfile(100); got != 12 {
		t.Fatalf("inverted window = %v, want 12 (bounded growth)", got)
	}
	// From a window already at the known-good frontier the result shrinks
	// to the largest bucket meeting the target.
	v.cwnd = 80
	if got := v.invertProfile(100); got != 50 {
		t.Fatalf("inverted window = %v, want 50 (shrink to evidence)", got)
	}
}

func TestProfileInversionExploresBeyondKnown(t *testing.T) {
	v := New()
	v.cwnd = 10
	v.dMinMs = 50
	for b := 2; b <= 10; b++ {
		v.profile[b] = 55
	}
	// All known delays below target: the window may step past known
	// territory by a couple of buckets.
	got := v.invertProfile(200)
	if got < 10 || got > 13 {
		t.Fatalf("exploration window = %v, want 10-13", got)
	}
}

func TestRatioBounds(t *testing.T) {
	v := New()
	v.dMinMs = 10
	v.lastDelay = 10
	// Repeated rising delay drives the ratio to its floor, not below.
	for i := 0; i < 50; i++ {
		v.epochAcks = 1
		v.epochDelay = float64(100 + i)
		v.epochEnd = time.Duration(i) * epoch
		v.OnAck(cc.AckSample{Now: time.Duration(i)*epoch + epoch, RTT: 100 * time.Millisecond, SRTT: 100 * time.Millisecond, AckedBytes: 1500})
	}
	if v.ratio < ratioMin-1e-9 {
		t.Fatalf("ratio fell below floor: %v", v.ratio)
	}
}

func TestLossHalves(t *testing.T) {
	v := New()
	v.cwnd = 64
	v.OnLoss(cc.LossSample{})
	if v.cwnd != 32 {
		t.Fatalf("cwnd after loss = %v", v.cwnd)
	}
}

func TestName(t *testing.T) {
	if New().Name() != "verus" {
		t.Fatal("name")
	}
}
