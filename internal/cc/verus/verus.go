// Package verus implements Verus congestion control (Zaki et al., SIGCOMM
// 2015) from its published description: the sender learns a delay profile
// (a mapping from congestion window to expected end-to-end delay), tracks
// the delay gradient each epoch, and chooses the next window by inverting
// the profile at a target delay that is lowered when delay rises and
// raised when the channel looks underused. Loss halves the window.
//
// The profile captures Verus's characteristic behaviour in cellular
// evaluations - high throughput bought with standing queues (the paper's
// Figures 13-14 show Verus with multi-hundred-ms delays).
package verus

import (
	"time"

	"pbecc/internal/cc"
)

const (
	mss         = 1500
	epoch       = 5 * time.Millisecond
	maxBuckets  = 4096 // window buckets of one MSS each
	deltaUp     = 1.0  // target delay multiplier increment (epochs of falling delay)
	deltaDown   = 2.0  // decrement on rising delay
	ratioMin    = 2.0  // minimum target delay ratio over Dmin
	ratioMax    = 6.0  // maximum
	profileEWMA = 0.2
)

// Verus is the controller. Create with New.
type Verus struct {
	cwnd float64 // in MSS

	profile [maxBuckets]float64 // expected delay (ms) per window bucket

	dMinMs     float64
	lastDelay  float64
	epochEnd   time.Duration
	epochDelay float64
	epochAcks  int
	ratio      float64 // current target delay ratio over dMin

	srtt time.Duration
}

// New returns a Verus controller.
func New() *Verus {
	return &Verus{cwnd: float64(cc.InitialCwnd) / mss, ratio: ratioMax}
}

// Name implements cc.Controller.
func (v *Verus) Name() string { return "verus" }

// WindowMSS returns the window in segments.
func (v *Verus) WindowMSS() float64 { return v.cwnd }

// OnSent implements cc.Controller.
func (v *Verus) OnSent(now time.Duration, seq uint64, bytes, inflight int) {}

// OnAck implements cc.Controller.
func (v *Verus) OnAck(s cc.AckSample) {
	v.srtt = s.SRTT
	d := float64(s.RTT) / float64(time.Millisecond)
	if v.dMinMs == 0 || d < v.dMinMs {
		v.dMinMs = d
	}
	// Update the delay profile at the current window bucket.
	b := int(v.cwnd)
	if b >= maxBuckets {
		b = maxBuckets - 1
	}
	if v.profile[b] == 0 {
		v.profile[b] = d
	} else {
		v.profile[b] = profileEWMA*d + (1-profileEWMA)*v.profile[b]
	}
	v.epochDelay += d
	v.epochAcks++

	if v.epochEnd == 0 {
		v.epochEnd = s.Now + epoch
		return
	}
	if s.Now < v.epochEnd {
		return
	}
	v.epochEnd = s.Now + epoch
	if v.epochAcks == 0 {
		return
	}
	avg := v.epochDelay / float64(v.epochAcks)
	v.epochDelay, v.epochAcks = 0, 0

	// Delay gradient steers the target delay ratio.
	if v.lastDelay > 0 {
		if avg > v.lastDelay {
			v.ratio -= deltaDown
		} else {
			v.ratio += deltaUp
		}
		if v.ratio < ratioMin {
			v.ratio = ratioMin
		}
		if v.ratio > ratioMax {
			v.ratio = ratioMax
		}
	}
	v.lastDelay = avg

	// Invert the learned profile at the target delay.
	target := v.ratio * v.dMinMs
	v.cwnd = v.invertProfile(target)
}

// invertProfile finds the largest window whose *learned* delay stays below
// the target. When everything known is below target the window may grow a
// bounded step (5% or two segments, whichever is larger) beyond the
// current window - exploration is earned by evidence, never assumed for
// unexplored buckets.
func (v *Verus) invertProfile(targetMs float64) float64 {
	known := 2.0
	for b := 2; b < maxBuckets; b++ {
		p := v.profile[b]
		if p != 0 && p <= targetMs && float64(b) > known {
			known = float64(b)
		}
	}
	grow := v.cwnd * 0.05
	if grow < 2 {
		grow = 2
	}
	if known >= v.cwnd {
		limit := v.cwnd + grow
		if known < limit {
			return known + grow
		}
		return limit
	}
	return known
}

// OnLoss implements cc.Controller: multiplicative decrease.
func (v *Verus) OnLoss(l cc.LossSample) {
	v.cwnd /= 2
	if v.cwnd < 2 {
		v.cwnd = 2
	}
}

// PacingRate implements cc.Controller: Verus spreads the window over the
// smoothed RTT.
func (v *Verus) PacingRate() float64 {
	if v.srtt <= 0 {
		return 0
	}
	return 2 * v.cwnd * mss * 8 / v.srtt.Seconds()
}

// CWND implements cc.Controller.
func (v *Verus) CWND() int { return int(v.cwnd * mss) }
