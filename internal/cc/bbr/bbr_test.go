package bbr

import (
	"testing"
	"time"

	"pbecc/internal/cc"
	"pbecc/internal/cc/cctest"
)

// TestGainCyclePattern verifies the eight-phase ProbeBW pacing-gain cycle
// of the paper's Figure 9: one 1.25 probing phase, one 0.75 draining
// phase, six cruise phases at gain 1.
func TestGainCyclePattern(t *testing.T) {
	want := []float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}
	if len(probeBWGains) != 8 {
		t.Fatalf("gain cycle has %d phases, want 8", len(probeBWGains))
	}
	for i, g := range probeBWGains {
		if g != want[i] {
			t.Fatalf("phase %d gain = %v, want %v", i, g, want[i])
		}
	}
}

func TestStartupToProbeBW(t *testing.T) {
	b := New()
	if b.State() != Startup {
		t.Fatal("must start in Startup")
	}
	r := cctest.Run(1, b, 20e6, 80*time.Millisecond, 1<<20, 3*time.Second)
	if b.State() != ProbeBW && b.State() != ProbeRTT {
		t.Fatalf("state after 3s = %v, want ProbeBW", b.State())
	}
	if r.ThroughputMbps < 17 {
		t.Fatalf("throughput = %.1f Mbit/s on a 20 Mbit/s link", r.ThroughputMbps)
	}
}

func TestBtlBwConverges(t *testing.T) {
	b := New()
	cctest.Run(2, b, 40e6, 60*time.Millisecond, 1<<20, 3*time.Second)
	bw := b.BtlBw()
	if bw < 36e6 || bw > 46e6 {
		t.Fatalf("BtlBw = %.1f Mbit/s, want ~40", bw/1e6)
	}
}

func TestRTpropTracksPropagation(t *testing.T) {
	b := New()
	cctest.Run(3, b, 40e6, 60*time.Millisecond, 1<<20, 3*time.Second)
	if b.RTprop() < 59*time.Millisecond || b.RTprop() > 70*time.Millisecond {
		t.Fatalf("RTprop = %v, want ~60ms", b.RTprop())
	}
}

func TestBoundedQueueSteadyState(t *testing.T) {
	// BBR's cwnd cap of 2*BDP bounds standing queue near one BDP.
	b := New()
	r := cctest.Run(4, b, 20e6, 80*time.Millisecond, 1<<22, 6*time.Second)
	// One-way propagation is 40 ms; queueing adds at most ~1 BDP = 80 ms.
	if r.P95OWDms > 140 {
		t.Fatalf("p95 OWD = %.1f ms, want < 140 (bounded queue)", r.P95OWDms)
	}
	if r.ThroughputMbps < 17 {
		t.Fatalf("throughput = %.1f", r.ThroughputMbps)
	}
}

func TestProbeRTTEntered(t *testing.T) {
	b := New()
	// Long run with a stable path: RTprop never refreshes below its
	// initial min, so after 10 s BBR must dip into ProbeRTT.
	entered := false
	eng := cctest.Run(5, b, 10e6, 50*time.Millisecond, 1<<20, 12500*time.Millisecond)
	_ = eng
	// State may have already returned to ProbeBW; detect via the counter
	// of min-cwnd dips instead: rerun with a probe.
	if b.State() == ProbeRTT {
		entered = true
	}
	// Accept either being in ProbeRTT at cutoff or having a refreshed
	// rtPropStamp (i.e., ProbeRTT completed recently).
	if !entered && b.RTprop() <= 0 {
		t.Fatal("no RTprop estimate after 12.5s")
	}
}

func TestPacingGainCyclesDuringProbeBW(t *testing.T) {
	b := New()
	seen := map[float64]bool{}
	eng := newManualLoop(t, b, func() {
		if b.State() == ProbeBW {
			seen[b.PacingGain()] = true
		}
	})
	_ = eng
	if !seen[1.25] || !seen[0.75] || !seen[1.0] {
		t.Fatalf("gains seen in ProbeBW = %v, want 1.25, 0.75 and 1", seen)
	}
}

// newManualLoop runs a 6-second loop, invoking probe after each ack.
func newManualLoop(t *testing.T, b *BBR, probe func()) struct{} {
	t.Helper()
	orig := b
	_ = orig
	// Reuse cctest by wrapping the controller.
	w := &probeWrap{b: b, probe: probe}
	cctest.Run(6, w, 20e6, 60*time.Millisecond, 1<<20, 6*time.Second)
	return struct{}{}
}

type probeWrap struct {
	b     *BBR
	probe func()
}

func (w *probeWrap) Name() string { return w.b.Name() }
func (w *probeWrap) OnSent(now time.Duration, seq uint64, bytes, inflight int) {
	w.b.OnSent(now, seq, bytes, inflight)
}
func (w *probeWrap) OnAck(s cc.AckSample) {
	w.b.OnAck(s)
	w.probe()
}
func (w *probeWrap) OnLoss(l cc.LossSample) { w.b.OnLoss(l) }
func (w *probeWrap) PacingRate() float64    { return w.b.PacingRate() }
func (w *probeWrap) CWND() int              { return w.b.CWND() }

func TestName(t *testing.T) {
	if New().Name() != "bbr" {
		t.Fatal("name")
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{Startup: "Startup", Drain: "Drain", ProbeBW: "ProbeBW", ProbeRTT: "ProbeRTT"}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("State(%d).String() = %q", s, s.String())
		}
	}
	if State(99).String() != "?" {
		t.Fatal("unknown state string")
	}
}

func TestInitialUnpacedWindow(t *testing.T) {
	b := New()
	if b.PacingRate() != 0 {
		t.Fatal("must be unpaced before first sample")
	}
	if b.CWND() != cc.InitialCwnd {
		t.Fatalf("initial cwnd = %d", b.CWND())
	}
}
