// Package bbr implements BBR (v1) congestion control as described in
// Cardwell et al., "BBR: Congestion-Based Congestion Control" (ACM Queue,
// 2016) and the Linux implementation: a windowed-max filter over delivery
// rate estimates the bottleneck bandwidth (BtlBw), a windowed-min filter
// over RTT estimates the round-trip propagation time (RTprop), and the
// sender paces at gain-cycled multiples of BtlBw while capping inflight at
// a multiple of the bandwidth-delay product. The eight-phase ProbeBW gain
// cycle is the one shown in Figure 9 of the PBE-CC paper.
package bbr

import (
	"time"

	"pbecc/internal/cc"
)

// State is a BBR state machine phase.
type State int

// BBR states.
const (
	Startup State = iota
	Drain
	ProbeBW
	ProbeRTT
)

// String names the state.
func (s State) String() string {
	switch s {
	case Startup:
		return "Startup"
	case Drain:
		return "Drain"
	case ProbeBW:
		return "ProbeBW"
	case ProbeRTT:
		return "ProbeRTT"
	}
	return "?"
}

// Gain constants from the BBR paper.
const (
	highGain      = 2.885 // 2/ln(2): fills the pipe in O(log BDP) rounds
	drainGain     = 1 / highGain
	cwndGain      = 2.0
	rtpropWindow  = 10 * time.Second
	btlbwRounds   = 10 // BtlBw filter window, in packet-timed round trips
	probeRTTTime  = 200 * time.Millisecond
	fullBwThresh  = 1.25 // growth required to keep startup going
	fullBwRounds  = 3
	minCwndProbe  = 4 * 1500 // ProbeRTT window
	initialRate   = 0        // unpaced until the first RTT sample
	probeBWPhases = 8
)

// probeBWGains is the eight-phase pacing-gain cycle of ProbeBW (the
// paper's Figure 9).
var probeBWGains = [probeBWPhases]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// BBR is the controller. Create with New.
type BBR struct {
	state State

	btlBw  cc.WindowedMax // bits/sec, windowed by round count
	rtProp cc.WindowedMin // seconds

	rtPropStamp     time.Duration // when rtProp was last refreshed
	probeRTTDoneAt  time.Duration
	probeRTTRoundOk bool

	round              uint64
	nextRoundDelivered uint64
	delivered          uint64

	fullBw       float64
	fullBwRounds int

	phase      int
	phaseStart time.Duration

	pacingGain float64
	cwnd       int
	inflight   int
}

// New returns a BBR controller.
func New() *BBR {
	b := &BBR{
		state:      Startup,
		pacingGain: highGain,
		cwnd:       cc.InitialCwnd,
	}
	b.btlBw.Window = btlbwRounds
	b.rtProp.Window = rtpropWindow
	return b
}

// Name implements cc.Controller.
func (b *BBR) Name() string { return "bbr" }

// State returns the current state machine phase (exported for tests and
// instrumentation).
func (b *BBR) State() State { return b.state }

// PacingGain returns the current pacing gain.
func (b *BBR) PacingGain() float64 { return b.pacingGain }

// BtlBw returns the current bottleneck bandwidth estimate in bits/sec.
func (b *BBR) BtlBw() float64 { return b.btlBw.Get() }

// RTprop returns the current propagation-delay estimate.
func (b *BBR) RTprop() time.Duration { return time.Duration(b.rtProp.Get()) }

// OnSent implements cc.Controller.
func (b *BBR) OnSent(now time.Duration, seq uint64, bytes, inflight int) {
	b.inflight = inflight
}

// OnLoss implements cc.Controller. BBRv1 ignores individual losses except
// for inflight bookkeeping.
func (b *BBR) OnLoss(l cc.LossSample) { b.inflight = l.InflightBytes }

// OnAck implements cc.Controller.
func (b *BBR) OnAck(s cc.AckSample) {
	now := s.Now
	b.inflight = s.InflightBytes
	b.delivered += uint64(s.AckedBytes)

	// Round accounting: one round per delivered window of data.
	newRound := false
	if b.delivered >= b.nextRoundDelivered {
		b.round++
		b.nextRoundDelivered = b.delivered + uint64(b.inflight)
		newRound = true
	}

	if s.DeliveryRate > 0 {
		b.btlBw.Update(time.Duration(b.round), s.DeliveryRate)
	}
	if s.RTT > 0 {
		old := b.RTprop()
		b.rtProp.Update(now, float64(s.RTT))
		if b.RTprop() < old || old == 0 || s.RTT <= b.RTprop() {
			b.rtPropStamp = now
		}
	}

	switch b.state {
	case Startup:
		if newRound {
			b.checkFullPipe()
		}
		if b.state == Drain && float64(b.inflight) <= b.bdp(1.0) {
			b.enterProbeBW(now)
		}
	case Drain:
		if float64(b.inflight) <= b.bdp(1.0) {
			b.enterProbeBW(now)
		}
	case ProbeBW:
		b.advanceCycle(now)
	case ProbeRTT:
		if b.probeRTTDoneAt == 0 && b.inflight <= minCwndProbe {
			b.probeRTTDoneAt = now + probeRTTTime
		}
		if b.probeRTTDoneAt != 0 && now >= b.probeRTTDoneAt {
			b.rtPropStamp = now
			b.enterProbeBW(now)
		}
	}

	// ProbeRTT entry: RTprop stale for 10s.
	if b.state != ProbeRTT && b.rtPropStamp > 0 && now-b.rtPropStamp > rtpropWindow {
		b.state = ProbeRTT
		b.pacingGain = 1
		b.probeRTTDoneAt = 0
	}

	b.updateCwnd()
}

func (b *BBR) checkFullPipe() {
	bw := b.btlBw.Get()
	if bw > b.fullBw*fullBwThresh {
		b.fullBw = bw
		b.fullBwRounds = 0
		return
	}
	b.fullBwRounds++
	if b.fullBwRounds >= fullBwRounds {
		b.state = Drain
		b.pacingGain = drainGain
	}
}

func (b *BBR) enterProbeBW(now time.Duration) {
	b.state = ProbeBW
	// Start after the 1.25 phase so a fresh flow doesn't immediately
	// overshoot; the Linux implementation randomizes over phases 2-7.
	b.phase = 2
	b.phaseStart = now
	b.pacingGain = probeBWGains[b.phase]
}

func (b *BBR) advanceCycle(now time.Duration) {
	rtprop := b.RTprop()
	if rtprop <= 0 {
		rtprop = 10 * time.Millisecond
	}
	elapsed := now - b.phaseStart
	switch {
	case probeBWGains[b.phase] == 0.75:
		// Leave the drain phase early once the queue is gone.
		if elapsed >= rtprop || float64(b.inflight) <= b.bdp(1.0) {
			b.nextPhase(now)
		}
	default:
		if elapsed >= rtprop {
			b.nextPhase(now)
		}
	}
}

func (b *BBR) nextPhase(now time.Duration) {
	b.phase = (b.phase + 1) % probeBWPhases
	b.phaseStart = now
	b.pacingGain = probeBWGains[b.phase]
}

// bdp returns gain * BtlBw * RTprop in bytes.
func (b *BBR) bdp(gain float64) float64 {
	bw := b.btlBw.Get()
	rt := b.RTprop()
	if bw <= 0 || rt <= 0 {
		return float64(cc.InitialCwnd)
	}
	return gain * bw * rt.Seconds() / 8
}

func (b *BBR) updateCwnd() {
	if b.state == ProbeRTT {
		b.cwnd = minCwndProbe
		return
	}
	gain := cwndGain
	if b.state == Startup || b.state == Drain {
		gain = highGain // let the exponential ramp stay window-unconstrained
	}
	w := int(b.bdp(gain))
	if w < cc.MinCwnd {
		w = cc.MinCwnd
	}
	b.cwnd = w
}

// ForceProbeBW places the controller directly in the ProbeBW state - the
// entry point PBE-CC uses for its cellular-tailored BBR ("PBE-CC directly
// enters BBR's ProbeBW state", §4.2.3 of the PBE-CC paper).
func (b *BBR) ForceProbeBW(now time.Duration) {
	b.enterProbeBW(now)
	b.updateCwnd()
}

// PacingRate implements cc.Controller.
func (b *BBR) PacingRate() float64 {
	bw := b.btlBw.Get()
	if bw <= 0 {
		return initialRate
	}
	return b.pacingGain * bw
}

// CWND implements cc.Controller.
func (b *BBR) CWND() int { return b.cwnd }
