// Package cc defines the congestion-control framework shared by PBE-CC and
// the seven baseline algorithms the paper compares against: the Controller
// interface, per-ACK samples with BBR-style delivery-rate estimation, a
// paced, window-limited UDP-like Sender, a Receiver that echoes timestamps
// and attaches PBE-CC feedback, and the windowed min/max filters BBR-family
// algorithms rely on.
package cc

import "time"

// AckSample is everything a controller learns from one acknowledgement.
type AckSample struct {
	Now         time.Duration
	Seq         uint64
	AckedBytes  int
	RTT         time.Duration
	SRTT        time.Duration
	OneWayDelay time.Duration // receiver timestamp minus send timestamp

	// DeliveryRate is the BBR-style delivery-rate sample for the acked
	// packet, in bits per second (0 when not yet measurable).
	DeliveryRate float64
	// AppLimited marks samples taken while the sender was not limited by
	// the congestion controller; rate filters should not treat them as
	// evidence of reduced capacity.
	AppLimited bool

	InflightBytes int // bytes still in flight after this ACK

	// PBE-CC receiver feedback (zero for other schemes).
	FeedbackRate       float64 // target transport rate, bits/sec
	InternetBottleneck bool
}

// LossSample describes one packet declared lost.
type LossSample struct {
	Now           time.Duration
	Seq           uint64
	Bytes         int
	InflightBytes int
}

// Controller is a congestion-control algorithm. The sender consults
// PacingRate and CWND before each transmission; either may be the binding
// constraint (rate-based algorithms return a generous CWND, window-based
// ones return 0 for an unpaced flow).
type Controller interface {
	// Name returns the scheme's short name (used in reports).
	Name() string
	// OnSent is called when a data packet enters the network.
	OnSent(now time.Duration, seq uint64, bytes, inflightBytes int)
	// OnAck is called per acknowledgement.
	OnAck(s AckSample)
	// OnLoss is called per lost packet.
	OnLoss(l LossSample)
	// PacingRate returns the target pacing rate in bits/sec (0 = unpaced).
	PacingRate() float64
	// CWND returns the congestion window in bytes.
	CWND() int
}

// InitialCwnd is the conventional 10-segment initial window in bytes.
const InitialCwnd = 10 * 1500

// MinCwnd is the floor congestion window (4 segments).
const MinCwnd = 4 * 1500

// BDPBytes converts a rate (bits/sec) and an RTT into a byte window.
func BDPBytes(rateBps float64, rtt time.Duration) int {
	if rateBps <= 0 || rtt <= 0 {
		return 0
	}
	return int(rateBps * rtt.Seconds() / 8)
}
