// Package pbertc implements the PBE-RTC hybrid controller, registered as
// scheme "pbertc": GCC's delay-based machinery (arrival groups, trendline
// overuse detector, AIMD region) with the rate region driven by PBE-CC's
// physical-layer measurements when the cellular link is the bottleneck.
//
// The fusion rules, per packet at the receiver:
//
//   - The PBE internet-bottleneck detector (§4.2.2, Eqn 6) decides which
//     regime governs. In the Internet-bottleneck state the physical-layer
//     numbers describe a link that is not the constraint, so every hook is
//     cleared and the estimator degrades to plain delay-based GCC.
//   - In the wireless-bottleneck state the monitor's available capacity
//     C_t seeds the AIMD linkCapacity estimate - the region switches to
//     the additive near-max slope as throughput approaches measured
//     capacity instead of probing past it into the queue - and
//     max(C_t, C_f) caps the region outright, so a capacity drop
//     (handover, blockage) pulls the rate down before any queue builds.
//   - The filtered competing-user count (§4.2.1) selects the increase
//     mode: a sole occupant may run GCC's exponential startup ramp toward
//     the measured headroom; with competitors on the cell the ramp is
//     suppressed and the region grows at the conservative slopes only.
//
// The sender side is unchanged GCC (loss ceiling bounded by REMB): all
// fusion happens where the physical-layer monitor lives, and the fused
// estimate rides to the sender in the ordinary feedback word.
package pbertc

import (
	"time"

	"pbecc/internal/cc"
	"pbecc/internal/cc/gcc"
	"pbecc/internal/core"
	"pbecc/internal/netsim"
	"pbecc/internal/obs"
)

var (
	mFused    = obs.NewCounter("pbertc.fused_packets")
	mFallback = obs.NewCounter("pbertc.fallback_packets")
	mConserve = obs.NewCounter("pbertc.conservative_packets")
)

// Controller is the sender side: plain GCC under the scheme name
// "pbertc". Create with New and attach a NewFeedback as the flow's
// receiver-side feedback source; without one it degrades exactly as GCC
// does (loss ceiling bounded by measured delivery rate).
type Controller struct {
	*gcc.GCC
}

// New returns the sender-side controller.
func New() *Controller { return &Controller{GCC: gcc.New()} }

// Name implements cc.Controller.
func (c *Controller) Name() string { return "pbertc" }

// Feedback is the receiver side of the hybrid: a GCC REMB estimator
// whose region is steered by the PBE monitor through the gcc
// region-control hooks. It implements cc.FeedbackSource.
type Feedback struct {
	mon  *core.Monitor
	det  *core.Detector
	remb *gcc.REMB

	wasInternet bool
}

var _ cc.FeedbackSource = (*Feedback)(nil)

// NewFeedback wires the hybrid estimator around a physical-layer
// monitor. A nil monitor is legal and leaves a plain GCC estimator (the
// conformance suite runs without a cellular path).
func NewFeedback(mon *core.Monitor) *Feedback {
	return &Feedback{mon: mon, det: core.NewDetector(), remb: gcc.NewREMB()}
}

// REMB exposes the underlying estimator (tests and instrumentation).
func (f *Feedback) REMB() *gcc.REMB { return f.remb }

// InternetBottleneck reports the detector's current state.
func (f *Feedback) InternetBottleneck() bool { return f.det.InternetBottleneck() }

// Feedback implements cc.FeedbackSource: fold one received data packet
// into the estimator and return (rate, internet-bottleneck bit).
func (f *Feedback) Feedback(now, owd time.Duration, dataBytes int) (float64, bool) {
	var ct, cf float64
	if f.mon != nil {
		ct = f.mon.CapacityBits() // bits per subframe
		cf = f.mon.FairShareBits()
	}
	npkt := int(core.NpktSubframes * ct / (8 * netsim.MSS))
	internet := f.det.Observe(now, owd, npkt)
	if internet != f.wasInternet {
		// Regime flip: the estimator is on what is effectively a new
		// link, so it may re-probe at startup speed instead of crawling
		// up from the old regime's operating point.
		f.remb.RestartProbe()
		f.wasInternet = internet
	}

	if internet || ct <= 0 {
		// The cellular link is not the bottleneck (or the monitor has no
		// signal yet): clear every hook and run pure delay-based GCC.
		f.remb.SetRegionCeiling(0)
		f.remb.SetConservative(false)
		mFallback.Inc()
		return f.remb.Observe(now, owd, dataBytes), internet
	}

	// Wireless bottleneck: drive the region from the physical layer. The
	// entitled rate is max(C_t, C_f), as in the PBE client's own wireless
	// feedback (§4.1): C_f alone would forfeit idle PRBs the scheduler is
	// already granting us, C_t alone can settle below the fair share
	// against an always-backlogged competitor. It both seeds the capacity
	// estimate and caps the region, so the AIMD ramps toward the measured
	// entitlement and stops there instead of probing into the queue.
	entitled := ct
	if cf > entitled {
		entitled = cf
	}
	bps := core.BitsPerSubframeToBps(entitled)
	f.remb.SeedLinkCapacity(bps)
	f.remb.SetRegionCeiling(bps)
	shared := false
	for _, id := range f.mon.ActiveCellIDs() {
		if f.mon.ActiveUsers(id) > 1 {
			shared = true
			break
		}
	}
	f.remb.SetConservative(shared)
	if shared {
		mConserve.Inc()
	}
	mFused.Inc()
	return f.remb.Observe(now, owd, dataBytes), false
}
