// Package pbertc implements the PBE-RTC hybrid controller, registered as
// scheme "pbertc": GCC's delay-based machinery (arrival groups, trendline
// overuse detector, AIMD region) with the rate region driven by PBE-CC's
// physical-layer measurements when the cellular link is the bottleneck.
//
// The fusion rules, per packet at the receiver:
//
//   - The PBE internet-bottleneck detector (§4.2.2, Eqn 6) decides which
//     regime governs. In the Internet-bottleneck state the physical-layer
//     numbers describe a link that is not the constraint, so every hook is
//     cleared and the estimator degrades to plain delay-based GCC.
//   - In the wireless-bottleneck state the monitor's available capacity
//     C_t seeds the AIMD linkCapacity estimate - the region switches to
//     the additive near-max slope as throughput approaches measured
//     capacity instead of probing past it into the queue - and
//     max(C_t, C_f) caps the region outright, so a capacity drop
//     (handover, blockage) pulls the rate down before any queue builds.
//   - The filtered competing-user count (§4.2.1) selects the increase
//     mode: a sole occupant may run GCC's exponential startup ramp toward
//     the measured headroom; with competitors on the cell the ramp is
//     suppressed and the region grows at the conservative slopes only.
//
// The sender side is unchanged GCC (loss ceiling bounded by REMB): all
// fusion happens where the physical-layer monitor lives, and the fused
// estimate rides to the sender in the ordinary feedback word.
package pbertc

import (
	"time"

	"pbecc/internal/cc"
	"pbecc/internal/cc/gcc"
	"pbecc/internal/core"
	"pbecc/internal/netsim"
	"pbecc/internal/obs"
)

var (
	mFused    = obs.NewCounter("pbertc.fused_packets")
	mFallback = obs.NewCounter("pbertc.fallback_packets")
	mConserve = obs.NewCounter("pbertc.conservative_packets")
)

// Controller is the sender side: plain GCC under the scheme name
// "pbertc". Create with New and attach a NewFeedback as the flow's
// receiver-side feedback source; without one it degrades exactly as GCC
// does (loss ceiling bounded by measured delivery rate).
type Controller struct {
	*gcc.GCC
}

// New returns the sender-side controller.
func New() *Controller { return &Controller{GCC: gcc.New()} }

// Name implements cc.Controller.
func (c *Controller) Name() string { return "pbertc" }

// Feedback is the receiver side of the hybrid: a GCC REMB estimator
// whose region is steered by the PBE monitor through the gcc
// region-control hooks. It implements cc.FeedbackSource.
type Feedback struct {
	mon  *core.Monitor
	det  *core.Detector
	remb *gcc.REMB

	wasInternet bool

	// Fast-ramp arming (§4.3): the floor is a regime probe, not a steady
	// pressure. floorArmed starts true; the first packet whose one-way
	// delay crosses D_th while armed disarms it (the jump built a queue,
	// so the entitlement is not deliverable end-to-end - an Internet hop
	// is in the way). floorRef remembers the entitlement at disarm time:
	// the floor re-arms when the measurement moves at least 20% from it
	// (a genuine capacity step - handover, blockage edge - is exactly
	// when the paper's one-RTT re-convergence matters) or when the
	// bottleneck regime flips.
	floorArmed bool
	floorRef   float64
}

var _ cc.FeedbackSource = (*Feedback)(nil)

// NewFeedback wires the hybrid estimator around a physical-layer
// monitor. A nil monitor is legal and leaves a plain GCC estimator (the
// conformance suite runs without a cellular path).
func NewFeedback(mon *core.Monitor) *Feedback {
	return &Feedback{mon: mon, det: core.NewDetector(), remb: gcc.NewREMB(), floorArmed: true}
}

// REMB exposes the underlying estimator (tests and instrumentation).
func (f *Feedback) REMB() *gcc.REMB { return f.remb }

// InternetBottleneck reports the detector's current state.
func (f *Feedback) InternetBottleneck() bool { return f.det.InternetBottleneck() }

// Feedback implements cc.FeedbackSource: fold one received data packet
// into the estimator and return (rate, internet-bottleneck bit).
func (f *Feedback) Feedback(now, owd time.Duration, dataBytes int) (float64, bool) {
	var ct, cf float64
	if f.mon != nil {
		ct = f.mon.CapacityBits() // bits per subframe
		cf = f.mon.FairShareBits()
	}
	npkt := int(core.NpktSubframes * ct / (8 * netsim.MSS))
	internet := f.det.Observe(now, owd, npkt)
	if internet != f.wasInternet {
		// Regime flip: the estimator is on what is effectively a new
		// link, so it may re-probe at startup speed instead of crawling
		// up from the old regime's operating point. The fast-ramp floor
		// deliberately does NOT re-arm here: after a disarm the regimes
		// oscillate (the probe's queue flips Eqn 6 to Internet, the
		// drained queue flips it back), and re-arming on the flip would
		// re-fire the probe every cycle - a permanent standing queue.
		// Only the entitlement moving re-arms the floor.
		f.remb.RestartProbe()
		f.wasInternet = internet
	}

	if internet || ct <= 0 {
		// The cellular link is not the bottleneck (or the monitor has no
		// signal yet): clear every hook and run pure delay-based GCC.
		f.remb.SetRegionCeiling(0)
		f.remb.SetConservative(false)
		mFallback.Inc()
		return f.remb.Observe(now, owd, dataBytes), internet
	}

	// Wireless bottleneck: drive the region from the physical layer. The
	// entitled rate is max(C_t, C_f), as in the PBE client's own wireless
	// feedback (§4.1): C_f alone would forfeit idle PRBs the scheduler is
	// already granting us, C_t alone can settle below the fair share
	// against an always-backlogged competitor. It both seeds the capacity
	// estimate and caps the region, so the AIMD ramps toward the measured
	// entitlement and stops there instead of probing into the queue.
	entitled := ct
	if cf > entitled {
		entitled = cf
	}
	bps := core.BitsPerSubframeToBps(entitled)
	f.remb.SeedLinkCapacity(bps)
	f.remb.SetRegionCeiling(bps)
	shared := false
	for _, id := range f.mon.ActiveCellIDs() {
		if f.mon.ActiveUsers(id) > 1 {
			shared = true
			break
		}
	}
	f.remb.SetConservative(shared)
	if shared {
		mConserve.Inc()
	}
	mFused.Inc()
	// §4.3 fast ramp-up, the fusion's other half. The ceiling above pulls
	// the region down the moment measured capacity drops; symmetrically,
	// the measured entitlement is bandwidth the scheduler is granting us
	// right now, so while the fast ramp is armed it floors the AIMD
	// region - one RTT to capacity, the paper's convergence claim -
	// instead of waiting for the region to crawl there against its own
	// throughput-evidence limiter. The floor stops at fastRampFrac of the
	// entitlement (the same stopline the conservative slopes use): the
	// last stretch is the additive creep's job, so the jump itself never
	// fills a queue on the measured cell. A one-way delay past the PBE
	// threshold D_th while armed disarms the probe - the entitlement is
	// not deliverable end-to-end, so an unseen hop (an Internet
	// bottleneck Eqn 6 has not confirmed yet) owns the path and GCC's
	// delay machinery governs; because the region was lifted, the
	// backoff cuts from the real operating rate, not the pre-jump crawl
	// value. A 20% move in the measured entitlement re-arms it: a
	// capacity step is exactly when one-RTT re-convergence matters.
	if f.floorArmed {
		if owd > f.det.Threshold() {
			f.floorArmed = false
			f.floorRef = bps
		} else if !f.remb.Overusing() {
			f.remb.FloorRegion(fastRampFrac * bps)
		}
	} else if f.floorRef > 0 && (bps > 1.2*f.floorRef || bps < 0.8*f.floorRef) {
		f.floorArmed = true
	}
	return f.remb.Observe(now, owd, dataBytes), false
}

// fastRampFrac is how much of the measured entitlement the fast ramp
// claims outright; the remaining headroom is probed additively.
const fastRampFrac = 0.85
