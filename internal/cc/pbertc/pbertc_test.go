package pbertc

import (
	"testing"
	"time"

	"pbecc/internal/cc"
	"pbecc/internal/cc/cctest"
	"pbecc/internal/cc/gcc"
	"pbecc/internal/core"
	"pbecc/internal/lte"
	"pbecc/internal/netsim"
	"pbecc/internal/phy"
	"pbecc/internal/sim"
	"pbecc/internal/stats"
)

// TestConformance runs the sender side through the shared single-
// bottleneck suite: without a receiver-side estimator it must behave
// like GCC - bounded by delivery rate, not blasting open-loop.
func TestConformance(t *testing.T) {
	r := cctest.Run(1, New(), 20e6, 80*time.Millisecond, 1<<20, 3*time.Second)
	if r.ThroughputMbps < 5 || r.ThroughputMbps > 21 {
		t.Fatalf("throughput %.1f Mbit/s on a 20 Mbit/s link", r.ThroughputMbps)
	}
	if r.Received == 0 {
		t.Fatal("no packets delivered")
	}
}

// runLoop drives one controller+feedback pair over a single bottleneck
// and reports second-half goodput and one-way delay. feedMon, when
// non-nil, installs the synthetic physical-layer feed on the engine.
func runLoop(t *testing.T, ctrl cc.Controller, fb cc.FeedbackSource, feedMon func(eng *sim.Engine),
	rateBps float64, queuePkts int, dur time.Duration) (tputMbps, p95ms, minms float64) {
	t.Helper()
	eng := sim.New(7)
	rtt := 40 * time.Millisecond
	var snd *cc.Sender
	ackLink := netsim.NewLink(eng, 0, rtt/2, 0, netsim.HandlerFunc(func(now time.Duration, p *netsim.Packet) {
		snd.HandlePacket(now, p)
	}))
	rcv := cc.NewReceiver(eng, 1, ackLink)
	rcv.Feedback = fb

	delays := &stats.DurationSeries{}
	bytes := 0
	half := dur / 2
	rcv.OnData = func(now time.Duration, p *netsim.Packet, owd time.Duration) {
		if now >= half {
			delays.AddDuration(owd)
			bytes += p.Size
		}
	}
	if feedMon != nil {
		feedMon(eng)
	}
	fwd := netsim.NewLink(eng, rateBps, rtt/2, queuePkts*1500, rcv)
	snd = cc.NewSender(eng, 1, fwd, ctrl)
	snd.Start()
	eng.RunUntil(dur)
	return float64(bytes) * 8 / half.Seconds() / 1e6, delays.Percentile(95), delays.Min()
}

// TestConvergesOnBottleneck attaches the full hybrid feedback with no
// monitor (plain-GCC regime) and checks it converges with a controlled
// queue, exactly as the GCC conformance bounds require.
func TestConvergesOnBottleneck(t *testing.T) {
	tput, p95, min := runLoop(t, New(), NewFeedback(nil), nil, 20e6, 100, 16*time.Second)
	if tput < 12 || tput > 20.5 {
		t.Fatalf("throughput %.1f Mbit/s on a 20 Mbit/s link", tput)
	}
	if p95 > min+55 {
		t.Fatalf("p95 delay %.1f ms vs min %.1f ms: queue not controlled", p95, min)
	}
}

// monitorFeed installs a synthetic per-subframe control feed: every
// millisecond the monitor sees the mobile granted myPRBs and a
// competitor granted otherPRBs of a 100-PRB cell.
func monitorFeed(mon *core.Monitor, mcs phy.MCS, myPRBs, otherPRBs int) func(*sim.Engine) {
	mon.AttachCell(core.CellInfo{ID: 1, NPRB: 100,
		Rate: func() float64 { return mcs.BitsPerPRB() },
		BER:  func() float64 { return 1e-6 }})
	rep := &lte.SubframeReport{CellID: 1, NPRB: 100}
	rep.Allocs = append(rep.Allocs, lte.Alloc{RNTI: 61, PRBs: myPRBs, MCS: mcs})
	if otherPRBs > 0 {
		rep.Allocs = append(rep.Allocs, lte.Alloc{RNTI: 99, PRBs: otherPRBs, MCS: mcs})
	}
	return func(eng *sim.Engine) {
		eng.Every(time.Millisecond, func() {
			rep.Subframe++
			mon.OnSubframe(rep)
		})
	}
}

// TestWirelessStatePinsToEntitlement: on an overprovisioned path whose
// real constraint is the shared cell, the hybrid must settle at the
// physical-layer entitlement max(C_t, C_f) without building a queue,
// while plain GCC - blind to the cell - probes far past it.
func TestWirelessStatePinsToEntitlement(t *testing.T) {
	mcs := phy.MCS{CQI: 7, Table: phy.Table64QAM, Streams: 1}
	mon := core.NewMonitor(61)
	feed := monitorFeed(mon, mcs, 10, 90)
	hyTput, hyP95, hyMin := runLoop(t, New(), NewFeedback(mon), feed, 50e6, 400, 12*time.Second)

	// The entitled rate of the 2-user cell: C_f = R_w * NPRB/2.
	mon2 := core.NewMonitor(61)
	monitorFeed(mon2, mcs, 10, 90) // attach cell
	rep := &lte.SubframeReport{CellID: 1, NPRB: 100,
		Allocs: []lte.Alloc{{RNTI: 61, PRBs: 10, MCS: mcs}, {RNTI: 99, PRBs: 90, MCS: mcs}}}
	for i := 0; i < 2*core.DefaultWindow; i++ {
		mon2.OnSubframe(rep)
	}
	ct, cf := mon2.CapacityBits(), mon2.FairShareBits()
	entitled := core.BitsPerSubframeToBps(max(ct, cf)) / 1e6

	if hyTput < 0.4*entitled || hyTput > 1.1*entitled {
		t.Fatalf("hybrid throughput %.1f Mbit/s, want near the %.1f Mbit/s entitlement", hyTput, entitled)
	}
	if hyP95 > hyMin+10 {
		t.Fatalf("hybrid queued %.1f ms above min on an unconstrained path", hyP95-hyMin)
	}

	gcTput, _, _ := runLoop(t, gcc.New(), gcc.NewREMB(), nil, 50e6, 400, 12*time.Second)
	if gcTput < 2*hyTput {
		t.Fatalf("plain GCC (%.1f Mbit/s) should probe far past the entitlement the hybrid holds (%.1f)", gcTput, hyTput)
	}
}

// TestDegradesToGCCOnInternetBottleneck: with the cell overprovisioned
// and a 5 Mbit/s Internet bottleneck on the path, the one-way delay
// exceeds the PBE threshold, the internet-bottleneck bit must be set,
// and the hybrid must perform like plain GCC on the same path instead
// of pushing the (huge, irrelevant) physical-layer capacity into the
// queue.
func TestDegradesToGCCOnInternetBottleneck(t *testing.T) {
	mcs := phy.MCS{CQI: 13, Table: phy.Table64QAM, Streams: 2}
	mon := core.NewMonitor(61)
	feed := monitorFeed(mon, mcs, 50, 0) // sole user, capacity ~ 100 PRBs
	hyTput, hyP95, hyMin := runLoop(t, New(), NewFeedback(mon), feed, 5e6, 60, 12*time.Second)

	gcTput, gcP95, gcMin := runLoop(t, gcc.New(), gcc.NewREMB(), nil, 5e6, 60, 12*time.Second)

	if hyTput < 0.75*gcTput || hyTput > 1.25*gcTput {
		t.Fatalf("hybrid throughput %.2f Mbit/s vs plain GCC %.2f: did not degrade to delay-based behavior", hyTput, gcTput)
	}
	// The queue must stay controlled like GCC's, not pinned full by the
	// physical-layer rate (60 packets at 5 Mbit/s is 144 ms when full).
	if hyQ, gcQ := hyP95-hyMin, gcP95-gcMin; hyQ > gcQ+40 {
		t.Fatalf("hybrid standing queue %.1f ms vs plain GCC %.1f ms", hyQ, gcQ)
	}
}

// TestInternetBitClearsRegionHooks drives the detector deterministically:
// while the one-way delay is benign the region pins at the shared cell's
// entitlement; once the delay exceeds D_th = D_prop + 27 ms for Eqn 6's
// packet horizon, the internet-bottleneck bit must be set and the region
// must escape the physical ceiling (pure delay-based GCC).
func TestInternetBitClearsRegionHooks(t *testing.T) {
	mcs := phy.MCS{CQI: 7, Table: phy.Table64QAM, Streams: 1}
	mon := core.NewMonitor(61)
	mon.AttachCell(core.CellInfo{ID: 1, NPRB: 100,
		Rate: func() float64 { return mcs.BitsPerPRB() },
		BER:  func() float64 { return 1e-6 }})
	rep := &lte.SubframeReport{CellID: 1, NPRB: 100,
		Allocs: []lte.Alloc{{RNTI: 61, PRBs: 10, MCS: mcs}, {RNTI: 99, PRBs: 90, MCS: mcs}}}
	for i := 0; i < 2*core.DefaultWindow; i++ {
		mon.OnSubframe(rep)
	}
	entitledBps := core.BitsPerSubframeToBps(max(mon.CapacityBits(), mon.FairShareBits()))

	f := NewFeedback(mon)
	interval := 600 * time.Microsecond // 1500 B at 20 Mbit/s
	var rate float64
	var internet bool
	step := func(i int, owd time.Duration) {
		rate, internet = f.Feedback(time.Duration(i)*interval, owd, 1500)
	}
	n1 := int(4 * time.Second / interval)
	for i := 0; i < n1; i++ {
		step(i, 5*time.Millisecond)
	}
	if internet {
		t.Fatal("benign delay set the internet-bottleneck bit")
	}
	if rate > 1.1*entitledBps {
		t.Fatalf("wireless state: rate %.0f above the %.0f entitlement", rate, entitledBps)
	}
	for i := n1; i < 2*n1; i++ {
		step(i, 45*time.Millisecond)
	}
	if !internet {
		t.Fatal("sustained above-threshold delay did not set the internet-bottleneck bit")
	}
	if rate < 1.5*entitledBps {
		t.Fatalf("internet state: rate %.0f still pinned under the stale %.0f ceiling", rate, entitledBps)
	}
}

// TestSoleOccupantKeepsStartupRamp: with one user on the cell the
// hybrid keeps GCC's fast startup toward the measured headroom
// (conservative mode is for shared cells only).
func TestSoleOccupantKeepsStartupRamp(t *testing.T) {
	mon := core.NewMonitor(61)
	mcs := phy.MCS{CQI: 13, Table: phy.Table64QAM, Streams: 2}
	mon.AttachCell(core.CellInfo{ID: 1, NPRB: 100,
		Rate: func() float64 { return mcs.BitsPerPRB() },
		BER:  func() float64 { return 1e-6 }})
	rep := &lte.SubframeReport{CellID: 1, NPRB: 100,
		Allocs: []lte.Alloc{{RNTI: 61, PRBs: 30, MCS: mcs}}}
	for i := 0; i < 2*core.DefaultWindow; i++ {
		mon.OnSubframe(rep)
	}
	f := NewFeedback(mon)
	interval := 600 * time.Microsecond // 1500 B at 20 Mbit/s
	var rate float64
	for i := 0; i < int(2*time.Second/interval); i++ {
		rate, _ = f.Feedback(time.Duration(i)*interval, 5*time.Millisecond, 1500)
	}
	// Two seconds of sole occupancy must lift the region well above the
	// 1 Mbit/s start rate (startup ramp intact, bounded by 1.5x tput).
	if rate < 10e6 {
		t.Fatalf("sole occupant reached only %.0f bit/s after 2 s", rate)
	}
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
