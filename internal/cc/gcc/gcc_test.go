package gcc

import (
	"testing"
	"time"

	"pbecc/internal/cc"
	"pbecc/internal/netsim"
	"pbecc/internal/sim"
	"pbecc/internal/stats"
)

func TestInterArrivalGroupsBursts(t *testing.T) {
	var ia interArrival
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }

	// Three packets inside one 5 ms burst: no delta yet.
	for i, at := range []int{0, 2, 4} {
		if _, _, ok := ia.add(ms(at), ms(at+10), 1500); ok {
			t.Fatalf("packet %d completed a group prematurely", i)
		}
	}
	// Next burst at 10 ms closes the first group but there is no previous
	// complete group to diff against.
	if _, _, ok := ia.add(ms(10), ms(21), 1500); ok {
		t.Fatal("first group pair should not produce a delta")
	}
	// Third burst: now groups one and two are diffable. Send delta is
	// 10-4=6 ms; arrival delta 21-14=7 ms.
	sd, ad, ok := ia.add(ms(20), ms(30), 1500)
	if !ok {
		t.Fatal("expected a delta")
	}
	if sd != 6*time.Millisecond || ad != 7*time.Millisecond {
		t.Fatalf("deltas = %v/%v, want 6ms/7ms", sd, ad)
	}
}

func TestTrendlineSlopeSigns(t *testing.T) {
	var up trendline
	var slope float64
	for i := 1; i <= 30; i++ {
		// Every group arrives 1 ms later than it was sent relative to the
		// previous one: the queue grows linearly.
		slope = up.update(time.Duration(i*10)*time.Millisecond, 1.0)
	}
	if slope <= 0 {
		t.Fatalf("growing delay gave slope %v, want > 0", slope)
	}

	var flat trendline
	for i := 1; i <= 30; i++ {
		slope = flat.update(time.Duration(i*10)*time.Millisecond, 0)
	}
	if slope != 0 {
		t.Fatalf("flat delay gave slope %v, want 0", slope)
	}
}

func TestDetectorSustainedOveruse(t *testing.T) {
	d := newDetector()
	state := usageNormal
	// A strong positive trend sustained over many groups must trip the
	// detector; a single sample must not.
	if d.detect(1.0, 5*time.Millisecond, 2, 5*time.Millisecond) == usageOver {
		t.Fatal("a single sample tripped the detector")
	}
	for i := 2; i < 20; i++ {
		now := time.Duration(i*5) * time.Millisecond
		state = d.detect(1.0, 5*time.Millisecond, i+1, now)
	}
	if state != usageOver {
		t.Fatalf("sustained trend gave state %v, want overuse", state)
	}

	d2 := newDetector()
	for i := 0; i < 20; i++ {
		now := time.Duration(i*5) * time.Millisecond
		state = d2.detect(-1.0, 5*time.Millisecond, i+2, now)
	}
	if state != usageUnder {
		t.Fatalf("negative trend gave state %v, want underuse", state)
	}
}

func TestAIMDDecreaseTracksThroughput(t *testing.T) {
	a := newAIMD(10e6)
	a.decreased = true // past startup
	got := a.update(time.Second, usageOver, 8e6)
	want := beta * 8e6
	if got != want {
		t.Fatalf("overuse at 8 Mbit/s gave %v, want %v", got, want)
	}
	if a.state != rcHold {
		t.Fatal("decrease must land in hold")
	}
	// Normal signal resumes increase from hold.
	a.update(time.Second+100*time.Millisecond, usageNormal, 8e6)
	if a.state != rcIncrease {
		t.Fatalf("state = %v, want increase", a.state)
	}
	r := a.update(time.Second+600*time.Millisecond, usageNormal, 8e6)
	if r <= want {
		t.Fatalf("increase did not raise the rate: %v", r)
	}
}

func TestAIMDStartupRamp(t *testing.T) {
	a := newAIMD(StartRate)
	rate := a.rate
	for i := 1; i <= 10; i++ {
		rate = a.update(time.Duration(i)*100*time.Millisecond, usageNormal, rate)
	}
	// One second of startup should multiply the rate several times over.
	if rate < 4*StartRate {
		t.Fatalf("startup ramp reached only %.0f bit/s after 1 s", rate)
	}
}

// runBottleneck drives a GCC flow (REMB receiver attached) over a single
// fixed-rate bottleneck and reports second-half goodput and delay.
func runBottleneck(t *testing.T, rateBps float64, rtt time.Duration, queueBytes int, dur time.Duration) (tputMbps, p95ms, minms float64) {
	t.Helper()
	eng := sim.New(7)
	var snd *cc.Sender
	ackLink := netsim.NewLink(eng, 0, rtt/2, 0, netsim.HandlerFunc(func(now time.Duration, p *netsim.Packet) {
		snd.HandlePacket(now, p)
	}))
	rcv := cc.NewReceiver(eng, 1, ackLink)
	rcv.Feedback = NewREMB()

	delays := &stats.DurationSeries{}
	bytes := 0
	half := dur / 2
	rcv.OnData = func(now time.Duration, p *netsim.Packet, owd time.Duration) {
		if now >= half {
			delays.AddDuration(owd)
			bytes += p.Size
		}
	}
	fwd := netsim.NewLink(eng, rateBps, rtt/2, queueBytes, rcv)
	snd = cc.NewSender(eng, 1, fwd, New())
	snd.Start()
	eng.RunUntil(dur)
	return float64(bytes) * 8 / half.Seconds() / 1e6, delays.Percentile(95), delays.Min()
}

func TestGCCConvergesOnBottleneck(t *testing.T) {
	tput, p95, min := runBottleneck(t, 20e6, 40*time.Millisecond, 100*1500, 16*time.Second)
	if tput < 12 || tput > 20.5 {
		t.Fatalf("throughput %.1f Mbit/s on a 20 Mbit/s link", tput)
	}
	// Delay-based control must keep the standing queue well below full:
	// 100 packets at 20 Mbit/s is 60 ms of queue on top of 20 ms of
	// propagation.
	if p95 > min+55 {
		t.Fatalf("p95 delay %.1f ms vs min %.1f ms: queue not controlled", p95, min)
	}
}

func TestGCCStartupReachesCapacityQuickly(t *testing.T) {
	tput, _, _ := runBottleneck(t, 20e6, 40*time.Millisecond, 100*1500, 4*time.Second)
	// The startup probe must lift the flow well beyond the 1 Mbit/s start
	// rate within the first two seconds.
	if tput < 8 {
		t.Fatalf("second-half throughput %.1f Mbit/s: startup too slow", tput)
	}
}

func TestGCCWithoutREMBIsBounded(t *testing.T) {
	eng := sim.New(3)
	var snd *cc.Sender
	ackLink := netsim.NewLink(eng, 0, 20*time.Millisecond, 0, netsim.HandlerFunc(func(now time.Duration, p *netsim.Packet) {
		snd.HandlePacket(now, p)
	}))
	rcv := cc.NewReceiver(eng, 1, ackLink) // no feedback source
	fwd := netsim.NewLink(eng, 10e6, 20*time.Millisecond, 60*1500, rcv)
	g := New()
	snd = cc.NewSender(eng, 1, fwd, g)
	snd.Start()
	eng.RunUntil(4 * time.Second)
	// Without a receiver estimator the delivery-rate bound must keep the
	// pacing rate near the link rate, not at MaxRate.
	if r := g.PacingRate(); r > 40e6 {
		t.Fatalf("pacing rate %.0f without REMB: unbounded", r)
	}
	if rcv.Received == 0 {
		t.Fatal("no packets delivered")
	}
}

func TestREMBFeedbackInterface(t *testing.T) {
	r := NewREMB()
	var rate float64
	// A steady 5 Mbit/s stream with no queue growth: estimate must rise
	// above the start rate and the bottleneck bit must stay clear.
	interval := 2400 * time.Microsecond // 1500 B at 5 Mbit/s
	for i := 0; i < 2000; i++ {
		now := time.Duration(i) * interval
		var btl bool
		rate, btl = r.Feedback(now, 10*time.Millisecond, 1500)
		if btl {
			t.Fatal("REMB set the PBE bottleneck bit")
		}
	}
	if rate <= StartRate {
		t.Fatalf("estimate %.0f did not grow from the start rate", rate)
	}
}
