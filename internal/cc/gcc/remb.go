package gcc

import "time"

// REMB is the receiver side of GCC: it runs the arrival-time filter,
// overuse detector and AIMD rate region on every received data packet and
// publishes the resulting receiver-estimated maximum bitrate. It
// implements cc.FeedbackSource, so in the simulator the estimate rides in
// the acknowledgement's feedback-rate word exactly as a REMB message rides
// in RTCP; over real sockets the same word travels in the
// transport.REMB message.
type REMB struct {
	ia   interArrival
	tl   trendline
	det  *detector
	aimd *aimd
	in   *rateWindow

	lastSignal usage
}

// StartRate is the initial AIMD target before any measurement, matching
// the conservative WebRTC default.
const StartRate = 1e6

// incomingWindow sizes the R_hat throughput measurement.
const incomingWindow = 500 * time.Millisecond

// NewREMB returns a receiver-side estimator starting at StartRate.
func NewREMB() *REMB {
	return &REMB{
		det:  newDetector(),
		aimd: newAIMD(StartRate),
		in:   newRateWindow(incomingWindow),
	}
}

// Rate returns the current receiver-side estimate in bits per second.
func (r *REMB) Rate() float64 { return r.aimd.rate }

// State exposes the detector hypothesis (for tests and instrumentation):
// 0 normal, 1 overusing, 2 underusing.
func (r *REMB) State() int { return int(r.lastSignal) }

// Overusing reports whether the detector currently hypothesizes an
// overused (queue-building) bottleneck.
func (r *REMB) Overusing() bool { return r.lastSignal == usageOver }

// Observe folds one received data packet into the estimator. owd is the
// packet's one-way delay (arrival minus send timestamp), so send time is
// recovered as now-owd; in the simulator both clocks are the engine's
// virtual clock, mirroring the synchronized-enough timestamps real GCC
// gets from RTP.
func (r *REMB) Observe(now, owd time.Duration, bytes int) float64 {
	r.in.add(now, bytes)
	send := now - owd
	sd, ad, ok := r.ia.add(send, now, bytes)
	if !ok {
		return r.aimd.rate
	}
	deltaMs := float64((ad - sd).Microseconds()) / 1000
	trend := r.tl.update(now, deltaMs)
	r.lastSignal = r.det.detect(trend, sd, r.tl.numDeltas, now)
	r.aimd.update(now, r.lastSignal, r.in.rate(now))
	return r.aimd.rate
}

// Feedback implements cc.FeedbackSource: the estimate is attached to every
// acknowledgement; the Internet-bottleneck bit is PBE-specific and stays
// false.
func (r *REMB) Feedback(now time.Duration, owd time.Duration, dataBytes int) (float64, bool) {
	return r.Observe(now, owd, dataBytes), false
}

// Region-control hooks: a hybrid controller with an out-of-band capacity
// measurement (internal/cc/pbertc fusing the PBE physical-layer monitor)
// steers the AIMD region through these instead of reimplementing the
// arrival filter and detector. All three are cleared/neutral by default,
// leaving plain GCC behavior.

// SeedLinkCapacity installs an external link-capacity measurement in
// bits per second, as if an overuse backoff had already measured the
// link: the increase region switches from multiplicative probing to the
// additive near-max slope as the throughput approaches it. Non-positive
// values are ignored.
func (r *REMB) SeedLinkCapacity(bps float64) {
	if bps > 0 {
		r.aimd.capacity.seed(bps)
	}
}

// SetRegionCeiling caps the AIMD rate region at bps in every state (0
// removes the cap). Unlike the loss or delay signals the cap acts
// immediately, so a measured capacity drop pulls the rate down before
// any queue builds.
func (r *REMB) SetRegionCeiling(bps float64) { r.aimd.ceiling = bps }

// RestartProbe re-arms the pre-first-overuse startup ramp and forgets
// the capacity estimate. A hybrid controller calls it when the
// bottleneck regime flips (cellular link <-> Internet): the estimator
// is on what is effectively a new link and must re-find its capacity at
// startup speed, not creep at the old regime's operating point.
func (r *REMB) RestartProbe() {
	r.aimd.decreased = false
	r.aimd.capacity.reset()
}

// FloorRegion lifts the AIMD region to at least bps (bounded by the
// region ceiling). A hybrid controller calls it while an external
// measurement shows the headroom is already granted: the region then
// operates from the measured point, so a later overuse backoff cuts from
// the real operating rate instead of a stale crawl value.
func (r *REMB) FloorRegion(bps float64) {
	if bps <= 0 || bps <= r.aimd.rate {
		return
	}
	if r.aimd.ceiling > 0 && bps > r.aimd.ceiling {
		bps = r.aimd.ceiling
	}
	if bps > r.aimd.rate {
		r.aimd.rate = bps
	}
}

// SetConservative toggles the conservative increase mode: the
// pre-first-overuse exponential startup ramp is suppressed, so the
// region grows at the steady-state multiplicative (or near-max additive)
// slope only. Hybrid controllers enable it when the physical layer shows
// competing users sharing the cell - blasting a startup probe into a
// shared cell costs everyone's latency.
func (r *REMB) SetConservative(on bool) { r.aimd.conservative = on }
