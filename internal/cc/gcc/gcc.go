// Package gcc implements a GCC-style delay-based bandwidth estimator
// (Carlucci et al., "Analysis and Design of the Google Congestion Control
// for Web Real-time Communication", MMSys 2016): the WebRTC lineage of
// congestion control and the natural real-time baseline for PBE-CC to
// beat. The receiver runs an arrival-time filter (inter-group delay
// variation through a trendline slope estimator), an overuse detector
// with an adaptive threshold, and an AIMD rate region; the resulting
// receiver-estimated maximum bitrate (REMB) returns to the sender in the
// acknowledgement feedback word. The sender combines that delay-based
// estimate with a loss-based ceiling and paces at the minimum of the two.
package gcc

import (
	"time"

	"pbecc/internal/cc"
)

// Loss-based ceiling parameters (GCC draft §5): heavy loss cuts the
// ceiling multiplicatively, sustained low loss lets it recover.
const (
	lossUpdateInterval = 500 * time.Millisecond
	lossHighPct        = 0.10
	lossLowPct         = 0.02
	lossRecoverFactor  = 1.08
)

// GCC is the sender-side controller. Create with New; the receiver-side
// estimator (NewREMB) must be attached as the flow's feedback source for
// the delay-based path to operate — without it the controller degrades to
// its loss-based ceiling bounded by measured delivery rate.
type GCC struct {
	lossCeiling float64 // As: loss-based ceiling, bits/sec
	remb        float64 // Ar: latest receiver estimate, bits/sec
	srtt        time.Duration

	deliveryMax cc.WindowedMax

	acked, lost  int
	windowStart  time.Duration
	haveInterval bool
}

// New returns a GCC controller with the loss ceiling wide open (the
// delay-based REMB estimate is the governing signal until losses appear).
func New() *GCC {
	g := &GCC{lossCeiling: MaxRate}
	g.deliveryMax.Window = 2 * time.Second
	return g
}

// Name implements cc.Controller.
func (g *GCC) Name() string { return "gcc" }

// OnSent implements cc.Controller.
func (g *GCC) OnSent(now time.Duration, seq uint64, bytes, inflight int) {}

// OnAck implements cc.Controller.
func (g *GCC) OnAck(s cc.AckSample) {
	g.srtt = s.SRTT
	if s.FeedbackRate > 0 {
		g.remb = s.FeedbackRate
	}
	if s.DeliveryRate > 0 && !s.AppLimited {
		g.deliveryMax.Update(s.Now, s.DeliveryRate)
	}
	g.acked++
	g.updateLossCeiling(s.Now)
}

// OnLoss implements cc.Controller.
func (g *GCC) OnLoss(l cc.LossSample) {
	g.lost++
	g.updateLossCeiling(l.Now)
}

// updateLossCeiling recomputes the loss-based ceiling once per interval:
// above 10% loss the ceiling is cut below the current operating rate,
// under 2% it recovers multiplicatively.
func (g *GCC) updateLossCeiling(now time.Duration) {
	if !g.haveInterval {
		g.windowStart = now
		g.haveInterval = true
		return
	}
	if now-g.windowStart < lossUpdateInterval {
		return
	}
	total := g.acked + g.lost
	if total > 0 {
		p := float64(g.lost) / float64(total)
		switch {
		case p > lossHighPct:
			// Cut from the rate actually in use, not a stale ceiling.
			g.lossCeiling = g.target() * (1 - 0.5*p)
		case p < lossLowPct:
			g.lossCeiling *= lossRecoverFactor
		}
		if g.lossCeiling < MinRate {
			g.lossCeiling = MinRate
		}
		if g.lossCeiling > MaxRate {
			g.lossCeiling = MaxRate
		}
	}
	g.acked, g.lost = 0, 0
	g.windowStart = now
}

// target is min(loss-based ceiling, REMB). Before the first REMB arrives
// the measured delivery rate bounds the ceiling, so a flow without a
// receiver-side estimator cannot blast open-loop.
func (g *GCC) target() float64 {
	t := g.lossCeiling
	if g.remb > 0 {
		if g.remb < t {
			t = g.remb
		}
	} else if dm := g.deliveryMax.Get(); dm > 0 {
		if limit := 1.5 * dm; limit < t {
			t = limit
		}
	} else {
		// Nothing measured yet: start conservatively.
		t = StartRate
	}
	return t
}

// PacingRate implements cc.Controller: GCC is purely rate-based.
func (g *GCC) PacingRate() float64 { return g.target() }

// CWND implements cc.Controller: a generous two-BDP window so pacing is
// the binding constraint, as in the WebRTC pacer.
func (g *GCC) CWND() int {
	rtt := g.srtt
	if rtt <= 0 {
		rtt = 100 * time.Millisecond
	}
	w := 2 * cc.BDPBytes(g.target(), rtt)
	if w < cc.InitialCwnd {
		w = cc.InitialCwnd
	}
	return w
}
