package gcc

import (
	"math"
	"time"
)

// Rate-control constants, following the WebRTC AIMD controller: decrease
// to beta times the measured incoming rate on overuse, increase
// multiplicatively while far from the last known capacity and additively
// (about one packet per response time) near it.
const (
	beta = 0.85
	// etaPerSecond is the steady-state multiplicative increase factor per
	// second of increase state.
	etaPerSecond = 1.08
	// startupEtaPerSecond is the pre-first-overuse ramp, standing in for
	// WebRTC's probing clusters: until the controller has seen the link
	// saturate once it has no capacity estimate, and waiting at 8 %/s
	// would take minutes to find a cellular link's hundreds of Mbit/s.
	startupEtaPerSecond = 8.0
	// minIncreaseBps floors the additive term so low rates still move.
	minIncreaseBps = 4000.0

	// MinRate and MaxRate clamp the estimate.
	MinRate = 100e3
	MaxRate = 2e9

	// seedHeadroomFrac splits conservative mode's two slopes: below this
	// fraction of the externally seeded capacity the region may still
	// ramp multiplicatively (the measurement says the headroom is ours);
	// above it only the additive near-max creep remains.
	seedHeadroomFrac = 0.85
)

// rateWindow measures the incoming throughput over a sliding window, the
// R_hat input to the AIMD controller.
type rateWindow struct {
	window  time.Duration
	samples []rateSample
	bytes   int
}

type rateSample struct {
	at    time.Duration
	bytes int
}

func newRateWindow(window time.Duration) *rateWindow {
	return &rateWindow{window: window}
}

func (r *rateWindow) add(now time.Duration, bytes int) {
	r.samples = append(r.samples, rateSample{now, bytes})
	r.bytes += bytes
	r.expire(now)
}

func (r *rateWindow) expire(now time.Duration) {
	cut := 0
	for cut < len(r.samples) && r.samples[cut].at < now-r.window {
		r.bytes -= r.samples[cut].bytes
		cut++
	}
	if cut > 0 {
		r.samples = r.samples[cut:]
	}
}

// rate returns the windowed throughput in bits per second (0 until the
// window has data).
func (r *rateWindow) rate(now time.Duration) float64 {
	r.expire(now)
	if len(r.samples) == 0 {
		return 0
	}
	span := r.window
	if elapsed := now - r.samples[0].at; elapsed < span {
		// Window not yet full: avoid overestimating from a short span,
		// but never divide by less than one burst interval.
		if elapsed < burstInterval {
			elapsed = burstInterval
		}
		span = elapsed
	}
	return float64(r.bytes) * 8 / span.Seconds()
}

// linkCapacity tracks an exponentially weighted estimate of the
// throughput observed at overuse, with its normalized variance: the AIMD
// controller increases additively when the current throughput is within
// three standard deviations of this estimate (the link is near capacity)
// and multiplicatively otherwise.
type linkCapacity struct {
	estimate float64
	variance float64 // normalized by the estimate
	has      bool
}

const capacityAlpha = 0.05

func (lc *linkCapacity) onOveruse(tputBps float64) {
	if !lc.has {
		lc.estimate = tputBps
		lc.variance = 0.4
		lc.has = true
		return
	}
	err := tputBps - lc.estimate
	lc.estimate += capacityAlpha * err
	norm := lc.estimate
	if norm < 1 {
		norm = 1
	}
	lc.variance = (1-capacityAlpha)*lc.variance + capacityAlpha*err*err/norm
}

func (lc *linkCapacity) std() float64 {
	v := lc.variance * lc.estimate
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// nearMax reports whether tput is within three standard deviations of the
// capacity estimate.
func (lc *linkCapacity) nearMax(tputBps float64) bool {
	if !lc.has {
		return false
	}
	dev := 3 * lc.std()
	return tputBps > lc.estimate-dev && tputBps < lc.estimate+dev
}

// reset forgets the estimate (called when the throughput leaves the
// estimate's plausible band, e.g. after a handover).
func (lc *linkCapacity) reset() { lc.has = false }

// seed installs an externally measured estimate without waiting for an
// overuse backoff. The first seed starts at the onOveruse default
// variance; later seeds keep the learned variance so the near-max band
// stays calibrated to how stable the measurement actually is.
func (lc *linkCapacity) seed(bps float64) {
	if !lc.has {
		lc.variance = 0.4
		lc.has = true
	}
	lc.estimate = bps
}

type rcState int

const (
	rcHold rcState = iota
	rcIncrease
	rcDecrease
)

// aimd is the GCC rate region: the additive-increase /
// multiplicative-decrease state machine driven by the overuse detector's
// signal and the measured incoming rate.
type aimd struct {
	rate       float64
	state      rcState
	lastChange time.Duration
	capacity   linkCapacity
	rtt        time.Duration
	decreased  bool // true once the first overuse has been handled

	// Region-control hooks for hybrid controllers (REMB.SetRegionCeiling,
	// SetConservative): an external measurement source - in this repo the
	// PBE physical-layer monitor - can bound the rate region and disable
	// the blind startup probe when it already knows where capacity is.
	ceiling      float64 // > 0: upper bound on the rate region, bits/sec
	conservative bool    // suppress the pre-first-overuse exponential ramp
}

func newAIMD(startRate float64) *aimd {
	return &aimd{rate: startRate, state: rcHold, rtt: 100 * time.Millisecond}
}

// update advances the state machine on one detector signal and returns the
// new target rate. tputBps is the measured incoming rate (0 when the
// window is still empty).
func (a *aimd) update(now time.Duration, sig usage, tputBps float64) float64 {
	switch sig {
	case usageOver:
		if a.state != rcDecrease {
			a.state = rcDecrease
		}
	case usageUnder:
		// The queue is draining after an overuse: hold until it is empty
		// and the signal returns to normal.
		a.state = rcHold
	default:
		if a.state == rcHold {
			a.lastChange = now
			a.state = rcIncrease
		}
	}

	switch a.state {
	case rcIncrease:
		a.increase(now, tputBps)
	case rcDecrease:
		a.decrease(now, tputBps)
	}
	// The external ceiling binds in every state, not just increase: when
	// the measured capacity drops (handover, blockage) the region must
	// come down now, not after the queue has built enough for an overuse.
	if a.ceiling > 0 && a.rate > a.ceiling {
		a.rate = a.ceiling
		a.clamp()
	}
	return a.rate
}

func (a *aimd) increase(now time.Duration, tputBps float64) {
	if tputBps > 0 && a.capacity.has && tputBps > a.capacity.estimate+3*a.capacity.std() &&
		!a.conservative {
		// Throughput left the estimate's band upward: the link changed.
		// Not in conservative mode - there the estimate is an external
		// measurement re-seeded continuously, and throughput running past
		// it (another flow's traffic on the shared cell) says nothing
		// about our entitlement.
		a.capacity.reset()
	}
	dt := (now - a.lastChange).Seconds()
	if dt <= 0 {
		return
	}
	if dt > 1 {
		dt = 1
	}
	switch {
	case a.conservative && a.capacity.has:
		// Conservative mode (hybrid controllers, shared cell): the
		// externally seeded estimate is a stopline, not a hint. Below it
		// the measurement says the headroom is ours, so ramp at startup
		// speed (until the first overuse) or the steady multiplicative
		// slope; at it, creep additively instead of probing past it into
		// the competitors' queue.
		if a.rate < seedHeadroomFrac*a.capacity.estimate {
			if !a.decreased {
				a.rate *= math.Pow(startupEtaPerSecond, dt)
			} else {
				a.rate *= math.Pow(etaPerSecond, dt)
			}
		} else {
			a.additiveIncrease(dt)
		}
	case !a.decreased && !a.conservative:
		// Startup: exponential probe toward the first overuse.
		a.rate *= math.Pow(startupEtaPerSecond, dt)
	case a.capacity.has && a.capacity.nearMax(tputBps) &&
		a.rate > a.capacity.estimate-3*a.capacity.std():
		// Near capacity - both the measured throughput and the region
		// itself (a region far below the estimate must keep growing
		// multiplicatively, not creep): about one average packet per
		// response time.
		a.additiveIncrease(dt)
	default:
		a.rate *= math.Pow(etaPerSecond, dt)
	}
	// Never run more than 50% ahead of what actually arrives: an
	// application-limited source must not inflate the estimate without
	// evidence. (Media senders probe with padding to give the estimate
	// evidence to grow on, as WebRTC does.)
	if tputBps > 0 {
		if limit := 1.5*tputBps + 10e3; a.rate > limit {
			a.rate = limit
		}
	}
	a.clamp()
	a.lastChange = now
}

// additiveIncrease applies the near-max additive slope for dt seconds.
func (a *aimd) additiveIncrease(dt float64) {
	inc := a.nearMaxIncreaseBpsPerSecond() * dt
	if inc < minIncreaseBps*dt {
		inc = minIncreaseBps * dt
	}
	a.rate += inc
}

// nearMaxIncreaseBpsPerSecond is the additive slope: one average packet
// per response time (RTT plus 100 ms of detector latency).
func (a *aimd) nearMaxIncreaseBpsPerSecond() float64 {
	const framePerSecond = 30
	frameBits := a.rate / framePerSecond
	packets := frameBits / (1200 * 8)
	if packets < 1 {
		packets = 1
	}
	avgPacketBits := frameBits / packets
	response := a.rtt + 100*time.Millisecond
	return avgPacketBits / response.Seconds()
}

func (a *aimd) decrease(now time.Duration, tputBps float64) {
	if tputBps <= 0 {
		tputBps = a.rate
	}
	target := beta * tputBps
	if target < a.rate {
		a.rate = target
		// Only an overuse that actually moved the rate counts as the
		// first backoff: if the throughput is far above the region the
		// congestion is not of our making, and the startup ramp must
		// stay armed to find the real capacity.
		a.decreased = true
	}
	if a.capacity.has && tputBps < a.capacity.estimate-3*a.capacity.std() {
		a.capacity.reset()
	}
	a.capacity.onOveruse(tputBps)
	a.clamp()
	a.state = rcHold
	a.lastChange = now
}

func (a *aimd) clamp() {
	if a.rate < MinRate {
		a.rate = MinRate
	}
	if a.rate > MaxRate {
		a.rate = MaxRate
	}
}
