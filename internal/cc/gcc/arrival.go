package gcc

import "time"

// burstInterval groups packets sent within 5 ms of each other into one
// arrival group: WebRTC's inter-arrival filter compares groups rather than
// individual packets so that sender-side pacing bursts do not read as
// queue growth.
const burstInterval = 5 * time.Millisecond

// arrivalGroup is one burst of packets, identified by its send-time span.
type arrivalGroup struct {
	firstSend   time.Duration
	lastSend    time.Duration
	lastArrival time.Duration
	bytes       int
}

// interArrival turns per-packet (send, arrival) timestamp pairs into
// inter-group delay-variation samples
// d(i) = (a_i - a_{i-1}) - (s_i - s_{i-1}): positive when the path delayed
// group i more than group i-1, the raw congestion signal of the GCC
// arrival-time filter.
type interArrival struct {
	cur, prev arrivalGroup
}

// add folds one packet in. When the packet opens a new group and a
// previous complete group exists, it returns that pair's send and arrival
// deltas with ok=true.
func (ia *interArrival) add(send, arrival time.Duration, bytes int) (sendDelta, arrivalDelta time.Duration, ok bool) {
	if ia.cur.bytes == 0 {
		ia.cur = arrivalGroup{firstSend: send, lastSend: send, lastArrival: arrival, bytes: bytes}
		return 0, 0, false
	}
	if send < ia.cur.firstSend {
		// Out-of-order within the current burst: ignore.
		return 0, 0, false
	}
	if send-ia.cur.firstSend <= burstInterval {
		if send > ia.cur.lastSend {
			ia.cur.lastSend = send
		}
		ia.cur.lastArrival = arrival
		ia.cur.bytes += bytes
		return 0, 0, false
	}
	if ia.prev.bytes > 0 {
		sendDelta = ia.cur.lastSend - ia.prev.lastSend
		arrivalDelta = ia.cur.lastArrival - ia.prev.lastArrival
		ok = true
	}
	ia.prev = ia.cur
	ia.cur = arrivalGroup{firstSend: send, lastSend: send, lastArrival: arrival, bytes: bytes}
	return sendDelta, arrivalDelta, ok
}

// trendlineWindow is how many delay-variation samples the slope fit spans.
const trendlineWindow = 20

// trendlineSmoothing is the EWMA coefficient applied to the accumulated
// delay before fitting.
const trendlineSmoothing = 0.9

// trendline estimates the slope of the one-way queuing delay over the last
// trendlineWindow arrival groups by least squares, WebRTC's replacement
// for the original Kalman overuse estimator: a sustained positive slope
// means the bottleneck queue is filling.
type trendline struct {
	numDeltas     int
	accumDelayMs  float64
	smoothedDelay float64
	times         []float64 // group arrival time, ms
	delays        []float64 // smoothed accumulated delay, ms
	firstArrival  time.Duration
	haveFirst     bool
}

// update folds one inter-group delay-variation sample in and returns the
// current slope estimate in ms of delay per ms of time.
func (t *trendline) update(arrival time.Duration, deltaMs float64) float64 {
	if !t.haveFirst {
		t.firstArrival = arrival
		t.haveFirst = true
	}
	t.numDeltas++
	t.accumDelayMs += deltaMs
	if t.numDeltas == 1 {
		t.smoothedDelay = t.accumDelayMs
	} else {
		t.smoothedDelay = trendlineSmoothing*t.smoothedDelay + (1-trendlineSmoothing)*t.accumDelayMs
	}
	t.times = append(t.times, float64((arrival-t.firstArrival).Microseconds())/1000)
	t.delays = append(t.delays, t.smoothedDelay)
	if len(t.times) > trendlineWindow {
		t.times = t.times[1:]
		t.delays = t.delays[1:]
	}
	return t.slope()
}

// slope is the least-squares fit over the retained samples (0 until two
// samples exist).
func (t *trendline) slope() float64 {
	n := len(t.times)
	if n < 2 {
		return 0
	}
	var sumT, sumD float64
	for i := 0; i < n; i++ {
		sumT += t.times[i]
		sumD += t.delays[i]
	}
	meanT, meanD := sumT/float64(n), sumD/float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		num += (t.times[i] - meanT) * (t.delays[i] - meanD)
		den += (t.times[i] - meanT) * (t.times[i] - meanT)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// usage is the overuse detector's hypothesis about the bottleneck queue.
type usage int

const (
	usageNormal usage = iota
	usageOver
	usageUnder
)

// Detector thresholds (ms) and adaptation gains, from the WebRTC
// implementation: the threshold tracks the modified trend so that a
// concurrent loss-based flow cannot starve the delay-based estimator
// (Carlucci et al., MMSys 2016 §4).
const (
	thresholdGain    = 4.0
	initialThreshold = 12.5
	minThreshold     = 6.0
	maxThreshold     = 600.0
	thresholdKUp     = 0.0087
	thresholdKDown   = 0.039
	maxAdaptOffsetMs = 15.0
	maxNumDeltas     = 60
	// overusingTime is how long the modified trend must stay above the
	// threshold before the detector commits to the overuse hypothesis.
	overusingTime = 10 * time.Millisecond
)

// detector turns trendline slopes into the three-state overuse signal with
// an adaptive threshold.
type detector struct {
	threshold   float64
	state       usage
	overTime    time.Duration
	overCount   int
	prevTrend   float64
	lastUpdate  time.Duration
	haveUpdated bool
}

func newDetector() *detector {
	return &detector{threshold: initialThreshold}
}

// detect classifies one slope sample. sendDelta is the time between the
// two groups the sample spans, used to accumulate the sustained-overuse
// timer.
func (d *detector) detect(trend float64, sendDelta time.Duration, numDeltas int, now time.Duration) usage {
	if numDeltas < 2 {
		return usageNormal
	}
	scale := float64(numDeltas)
	if scale > maxNumDeltas {
		scale = maxNumDeltas
	}
	modified := scale * trend * thresholdGain
	switch {
	case modified > d.threshold:
		if d.overTime == 0 && d.overCount == 0 {
			d.overTime = sendDelta / 2
		} else {
			d.overTime += sendDelta
		}
		d.overCount++
		if d.overTime > overusingTime && d.overCount > 1 && trend >= d.prevTrend {
			d.overTime = 0
			d.overCount = 0
			d.state = usageOver
		}
	case modified < -d.threshold:
		d.overTime = 0
		d.overCount = 0
		d.state = usageUnder
	default:
		d.overTime = 0
		d.overCount = 0
		d.state = usageNormal
	}
	d.prevTrend = trend
	d.adaptThreshold(modified, now)
	return d.state
}

// adaptThreshold moves the threshold toward |modified| quickly when the
// signal is below it and slowly when above, clamped to sane bounds.
func (d *detector) adaptThreshold(modified float64, now time.Duration) {
	if !d.haveUpdated {
		d.lastUpdate = now
		d.haveUpdated = true
	}
	abs := modified
	if abs < 0 {
		abs = -abs
	}
	if abs > d.threshold+maxAdaptOffsetMs {
		// A single spike (route change, handover) must not blow the
		// threshold up.
		d.lastUpdate = now
		return
	}
	k := thresholdKUp
	if abs < d.threshold {
		k = thresholdKDown
	}
	dtMs := float64((now - d.lastUpdate).Microseconds()) / 1000
	if dtMs > 100 {
		dtMs = 100
	}
	d.threshold += k * (abs - d.threshold) * dtMs
	if d.threshold < minThreshold {
		d.threshold = minThreshold
	}
	if d.threshold > maxThreshold {
		d.threshold = maxThreshold
	}
	d.lastUpdate = now
}
