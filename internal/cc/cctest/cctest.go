// Package cctest provides a shared single-bottleneck test harness for
// congestion-control algorithms: a sender drives the controller under
// test through a fixed-rate link with a drop-tail queue and symmetric
// propagation delay, and the harness reports goodput and one-way delay
// statistics. The deterministic engine makes assertion bounds stable.
package cctest

import (
	"time"

	"pbecc/internal/cc"
	"pbecc/internal/netsim"
	"pbecc/internal/sim"
	"pbecc/internal/stats"
)

// Result summarizes one harness run.
type Result struct {
	ThroughputMbps float64 // receiver goodput over the second half of the run
	AvgOWDms       float64 // mean one-way delay, ms
	P95OWDms       float64 // 95th-percentile one-way delay, ms
	MinOWDms       float64
	Lost           uint64
	Received       uint64
	Sender         *cc.Sender
}

// Run drives ctrl over a single bottleneck of rateBps with the given
// round-trip propagation delay and queue, for dur of virtual time.
// Statistics exclude the first half of the run (startup transient).
func Run(seed int64, ctrl cc.Controller, rateBps float64, rtt time.Duration, queueBytes int, dur time.Duration) Result {
	eng := sim.New(seed)
	var snd *cc.Sender
	ackLink := netsim.NewLink(eng, 0, rtt/2, 0, netsim.HandlerFunc(func(now time.Duration, p *netsim.Packet) {
		snd.HandlePacket(now, p)
	}))
	rcv := cc.NewReceiver(eng, 1, ackLink)

	delays := &stats.DurationSeries{}
	bytesAfter := 0
	half := dur / 2
	rcv.OnData = func(now time.Duration, p *netsim.Packet, owd time.Duration) {
		if now >= half {
			delays.AddDuration(owd)
			bytesAfter += p.Size
		}
	}
	fwd := netsim.NewLink(eng, rateBps, rtt/2, queueBytes, rcv)
	snd = cc.NewSender(eng, 1, fwd, ctrl)
	snd.Start()
	eng.RunUntil(dur)

	return Result{
		ThroughputMbps: float64(bytesAfter) * 8 / (dur - half).Seconds() / 1e6,
		AvgOWDms:       delays.Mean(),
		P95OWDms:       delays.Percentile(95),
		MinOWDms:       delays.Min(),
		Lost:           snd.LostPackets,
		Received:       rcv.Received,
		Sender:         snd,
	}
}
