package pcc

import (
	"testing"
	"time"

	"pbecc/internal/cc/cctest"
)

func TestUtilityPenalizesLoss(t *testing.T) {
	clean := utility(10e6, 100, 0)
	lossy := utility(10e6, 90, 10) // 10% loss, past the 5% sigmoid cliff
	if lossy >= clean {
		t.Fatalf("utility with loss (%v) not below clean (%v)", lossy, clean)
	}
	if lossy > 0 {
		t.Fatalf("utility at 10%% loss = %v, want negative-ish", lossy)
	}
}

func TestUtilityMonotoneInRateWhenClean(t *testing.T) {
	prev := utility(1e6, 100, 0)
	for r := 2e6; r <= 100e6; r += 1e6 {
		u := utility(r, 100, 0)
		if u <= prev {
			t.Fatalf("clean utility not increasing at %v", r)
		}
		prev = u
	}
}

func TestSigmoidBounds(t *testing.T) {
	if s := sigmoid(-1000); s < 0.999 {
		t.Fatalf("sigmoid(-inf) = %v", s)
	}
	if s := sigmoid(1000); s > 0.001 {
		t.Fatalf("sigmoid(+inf) = %v", s)
	}
}

func TestConvergesNearCapacity(t *testing.T) {
	p := New()
	r := cctest.Run(1, p, 20e6, 60*time.Millisecond, 64*1500, 15*time.Second)
	if r.ThroughputMbps < 6 {
		t.Fatalf("PCC got %.1f Mbit/s of 20 after 15s", r.ThroughputMbps)
	}
	if p.Rate() > 40e6 {
		t.Fatalf("PCC rate %.1f Mbit/s runaway above capacity", p.Rate()/1e6)
	}
}

func TestRateFloor(t *testing.T) {
	p := New()
	p.rate = minRate
	p.haveUtil = true
	p.lastUtil = 1e9 // force the "utility decreased" branch
	p.applyUtility(&miRecord{rate: minRate, epoch: p.epoch, acked: 0, lost: 100}, utility(minRate, 0, 100))
	if p.rate < minRate {
		t.Fatalf("rate below floor: %v", p.rate)
	}
}

func TestDecisionPicksBetterDirection(t *testing.T) {
	p := New()
	p.rate = 10e6
	p.enterDeciding()
	// Four scored trials: up trials (slots 1,3) clean, down trials lossy.
	p.applyUtility(&miRecord{trial: 1, epoch: p.epoch}, utility(p.rate*(1+eps), 100, 0))
	p.applyUtility(&miRecord{trial: 2, epoch: p.epoch}, utility(p.rate*(1-eps), 50, 50))
	p.applyUtility(&miRecord{trial: 3, epoch: p.epoch}, utility(p.rate*(1+eps), 100, 0))
	p.applyUtility(&miRecord{trial: 4, epoch: p.epoch}, utility(p.rate*(1-eps), 50, 50))
	if p.state != moving || p.dir != +1 {
		t.Fatalf("state=%v dir=%d, want moving/+1", p.state, p.dir)
	}
}

func TestStaleEpochIgnored(t *testing.T) {
	p := New()
	p.applyUtility(&miRecord{epoch: p.epoch + 5}, 100)
	if p.haveUtil {
		t.Fatal("wrong-epoch MI advanced the state machine")
	}
	p.enterDeciding()
	p.applyUtility(&miRecord{trial: 0, epoch: p.epoch}, 5) // non-trial MI must not count
	if p.trialSeen != 0 {
		t.Fatalf("stale MI counted as trial: seen=%d", p.trialSeen)
	}
}

func TestStartingDoublesOnImprovement(t *testing.T) {
	p := New()
	r0 := p.rate
	p.applyUtility(&miRecord{epoch: p.epoch}, 1)
	p.applyUtility(&miRecord{epoch: p.epoch}, 2)
	if p.rate != r0*4 {
		t.Fatalf("rate after two improving MIs = %v, want %v", p.rate, r0*4)
	}
	if p.state != starting {
		t.Fatal("left starting too early")
	}
	p.applyUtility(&miRecord{epoch: p.epoch}, 1) // utility fell
	if p.state != deciding {
		t.Fatalf("state = %v, want deciding after utility drop", p.state)
	}
	if p.rate != r0*2 {
		t.Fatalf("rate after exit = %v, want %v (halved)", p.rate, r0*2)
	}
}

func TestSentSeqAttribution(t *testing.T) {
	p := New()
	p.miDur = 10 * time.Millisecond
	p.OnSent(0, 1, 1500, 1500)
	p.OnSent(time.Millisecond, 2, 1500, 3000)
	p.OnSent(11*time.Millisecond, 3, 1500, 4500) // rotates to a new MI
	if m := p.record(1); m == nil || m == p.cur {
		t.Fatal("seq 1 must belong to the first (closed) MI")
	}
	if m := p.record(3); m != p.cur {
		t.Fatal("seq 3 must belong to the current MI")
	}
	if p.record(99) != nil {
		t.Fatal("unknown seq must not match")
	}
}

func TestName(t *testing.T) {
	if New().Name() != "pcc" {
		t.Fatal("name")
	}
}
