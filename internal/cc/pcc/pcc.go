// Package pcc implements PCC Allegro (Dong et al., NSDI 2015): the sender
// runs randomized controlled micro-experiments, transmitting at perturbed
// rates r(1+eps) and r(1-eps) over consecutive monitor intervals,
// computing the empirical utility of each, and moving the rate in the
// direction that won. The utility is Allegro's throughput-versus-loss
// sigmoid: u(x) = T*Sigmoid_alpha(L-0.05) - x*L with T = x(1-L) and
// alpha = 100.
//
// Losses and acknowledgements are attributed to the monitor interval in
// which the packet was *sent* (as in the paper), so each experiment is
// scored by its own consequences; an interval is scored only after one
// extra RTT has passed for feedback to arrive.
package pcc

import (
	"math"
	"time"

	"pbecc/internal/cc"
)

const (
	eps       = 0.05
	alpha     = 100.0
	lossGuard = 0.05
	minRate   = 0.3e6 // 0.3 Mbit/s floor
	maxStep   = 8     // cap on the moving-state step multiplier
	miHistory = 16
)

type state int

const (
	starting state = iota
	deciding
	moving
)

// miRecord tracks one monitor interval.
type miRecord struct {
	rate     float64
	start    time.Duration
	end      time.Duration
	firstSeq uint64
	lastSeq  uint64
	acked    int
	lost     int
	scored   bool
	trial    int // decision-trial index+1, 0 if not a trial
	epoch    int // state-machine epoch the MI was emitted in
}

// PCC is the Allegro controller. Create with New.
type PCC struct {
	state state
	rate  float64 // base rate, bits/sec

	cur     *miRecord
	history []*miRecord

	miDur    time.Duration
	srtt     time.Duration
	lastUtil float64
	haveUtil bool

	trialsEmitted int
	trialUtils    [4]float64
	trialSeen     int

	dir   int
	step  int
	epoch int // bumped on every rate or state change
}

// New returns a PCC Allegro controller.
func New() *PCC {
	return &PCC{state: starting, rate: 2 * minRate, miDur: 20 * time.Millisecond}
}

// Name implements cc.Controller.
func (p *PCC) Name() string { return "pcc" }

// Rate returns the current base rate in bits/sec.
func (p *PCC) Rate() float64 { return p.rate }

// utility computes Allegro's utility for a monitor interval.
func utility(rate float64, acked, lost int) float64 {
	total := acked + lost
	var l float64
	if total > 0 {
		l = float64(lost) / float64(total)
	}
	x := rate / 1e6 // work in Mbit/s for numeric sanity
	t := x * (1 - l)
	return t*sigmoid(alpha*(l-lossGuard)) - x*l
}

func sigmoid(y float64) float64 { return 1 / (1 + math.Exp(y)) }

// trialRate returns the sending rate for trial slot t (1-4): odd slots
// probe up, even slots probe down; slot 0 is the base rate.
func (p *PCC) trialRate(t int) float64 {
	switch {
	case t == 0:
		return p.rate
	case t%2 == 1:
		return p.rate * (1 + eps)
	default:
		return p.rate * (1 - eps)
	}
}

// OnSent implements cc.Controller: attribute the packet to the current MI.
func (p *PCC) OnSent(now time.Duration, seq uint64, bytes, inflight int) {
	if p.cur == nil || now >= p.cur.end {
		p.rotateMI(now)
	}
	if p.cur.firstSeq == 0 {
		p.cur.firstSeq = seq
	}
	p.cur.lastSeq = seq
}

// rotateMI closes the current MI (it will be scored once feedback has had
// an RTT to arrive) and opens the next one at the state machine's rate.
func (p *PCC) rotateMI(now time.Duration) {
	if p.cur != nil {
		p.history = append(p.history, p.cur)
		if len(p.history) > miHistory {
			p.history = p.history[1:]
		}
	}
	trial := 0
	if p.state == deciding && p.trialsEmitted < 4 {
		p.trialsEmitted++
		trial = p.trialsEmitted
	}
	p.cur = &miRecord{rate: p.trialRate(trial), start: now, end: now + p.miDur, trial: trial, epoch: p.epoch}
}

// record finds the MI owning seq.
func (p *PCC) record(seq uint64) *miRecord {
	if p.cur != nil && seq >= p.cur.firstSeq && seq <= p.cur.lastSeq && p.cur.firstSeq != 0 {
		return p.cur
	}
	for i := len(p.history) - 1; i >= 0; i-- {
		m := p.history[i]
		if m.firstSeq != 0 && seq >= m.firstSeq && seq <= m.lastSeq {
			return m
		}
	}
	return nil
}

// OnAck implements cc.Controller.
func (p *PCC) OnAck(s cc.AckSample) {
	p.srtt = s.SRTT
	if p.srtt > 0 {
		p.miDur = p.srtt + p.srtt/5
		if p.miDur < 10*time.Millisecond {
			p.miDur = 10 * time.Millisecond
		}
	}
	if m := p.record(s.Seq); m != nil {
		m.acked++
	}
	p.scoreReady(s.Now)
}

// OnLoss implements cc.Controller.
func (p *PCC) OnLoss(l cc.LossSample) {
	if m := p.record(l.Seq); m != nil {
		m.lost++
	}
	p.scoreReady(l.Now)
}

// scoreReady evaluates history MIs whose feedback window has elapsed.
func (p *PCC) scoreReady(now time.Duration) {
	grace := p.srtt + 50*time.Millisecond
	for _, m := range p.history {
		if m.scored || now < m.end+grace {
			continue
		}
		m.scored = true
		p.applyUtility(m, utility(m.rate, m.acked, m.lost))
	}
}

// applyUtility advances the Allegro state machine with one scored MI.
// Intervals emitted before the most recent rate or state change carry an
// older epoch and are ignored: each experiment is judged only by traffic
// sent at the rate under test.
func (p *PCC) applyUtility(m *miRecord, u float64) {
	if m.epoch != p.epoch {
		return
	}
	switch p.state {
	case starting:
		if !p.haveUtil || u >= p.lastUtil {
			p.haveUtil = true
			p.lastUtil = u
			p.rate *= 2
			p.epoch++
		} else {
			p.rate /= 2
			p.enterDeciding()
		}
	case deciding:
		if m.trial == 0 {
			return // stale interval from a previous state
		}
		p.trialUtils[m.trial-1] = u
		p.trialSeen++
		if p.trialSeen >= 4 {
			up := p.trialUtils[0] + p.trialUtils[2]
			down := p.trialUtils[1] + p.trialUtils[3]
			if up > down {
				p.dir = +1
			} else {
				p.dir = -1
			}
			p.step = 1
			p.state = moving
			p.lastUtil = math.Max(up, down) / 2
			p.rate *= 1 + float64(p.dir)*eps
			p.epoch++
		}
	case moving:
		// Keep moving while utility does not get meaningfully worse
		// (a 2% tolerance prevents stalls at flat utility plateaus).
		if u >= p.lastUtil-0.02*math.Abs(p.lastUtil) {
			if u > p.lastUtil {
				p.lastUtil = u
			}
			if p.step < maxStep {
				p.step++
			}
			p.rate *= 1 + float64(p.dir)*eps*float64(p.step)
			p.epoch++
		} else {
			p.enterDeciding()
		}
	}
	if p.rate < minRate {
		p.rate = minRate
	}
}

func (p *PCC) enterDeciding() {
	p.state = deciding
	p.trialsEmitted = 0
	p.trialSeen = 0
	p.haveUtil = false
	p.epoch++
}

// PacingRate implements cc.Controller.
func (p *PCC) PacingRate() float64 {
	if p.cur != nil {
		return p.cur.rate
	}
	return p.trialRate(0)
}

// CWND implements cc.Controller: PCC is rate-based; the window only guards
// against runaway inflight (a half second at the current rate).
func (p *PCC) CWND() int {
	w := int(p.PacingRate() * 0.5 / 8)
	if w < cc.MinCwnd {
		w = cc.MinCwnd
	}
	return w
}
