// Package copa implements Copa congestion control (Arun & Balakrishnan,
// NSDI 2018) in its default mode: the sender targets the rate
// 1/(delta * d_q) where d_q is the queueing delay (standing RTT minus the
// minimum RTT), adjusting the window by v/(delta*cwnd) per ACK with a
// velocity parameter v that doubles when the window keeps moving in one
// direction for three RTTs.
package copa

import (
	"time"

	"pbecc/internal/cc"
)

const (
	mss          = 1500
	defaultDelta = 0.5
)

// Copa is the controller. Create with New.
type Copa struct {
	delta float64
	cwnd  float64 // in MSS

	rttMin      cc.WindowedMin // over 10 s
	rttStanding cc.WindowedMin // over srtt/2

	velocity      float64
	direction     int // +1 up, -1 down
	dirSince      time.Duration
	dirRTTs       int
	lastUpdate    time.Duration
	lastCwndOnDir float64

	srtt time.Duration
}

// New returns a Copa controller with the default delta of 0.5.
func New() *Copa {
	co := &Copa{delta: defaultDelta, cwnd: float64(cc.InitialCwnd) / mss, velocity: 1}
	co.rttMin.Window = 10 * time.Second
	co.rttStanding.Window = 100 * time.Millisecond
	return co
}

// Name implements cc.Controller.
func (co *Copa) Name() string { return "copa" }

// WindowMSS returns the window in segments.
func (co *Copa) WindowMSS() float64 { return co.cwnd }

// OnSent implements cc.Controller.
func (co *Copa) OnSent(now time.Duration, seq uint64, bytes, inflight int) {}

// OnAck implements cc.Controller.
func (co *Copa) OnAck(s cc.AckSample) {
	now := s.Now
	co.srtt = s.SRTT
	co.rttStanding.Window = s.SRTT / 2
	if co.rttStanding.Window < 10*time.Millisecond {
		co.rttStanding.Window = 10 * time.Millisecond
	}
	co.rttMin.Update(now, float64(s.RTT))
	co.rttStanding.Update(now, float64(s.RTT))

	dq := time.Duration(co.rttStanding.Get() - co.rttMin.Get())
	var targetRate float64 // MSS packets per second
	if dq <= 0 {
		targetRate = 1e12 // no queue: push up
	} else {
		targetRate = 1 / (co.delta * dq.Seconds())
	}
	standing := time.Duration(co.rttStanding.Get())
	if standing <= 0 {
		standing = s.SRTT
	}
	curRate := co.cwnd / standing.Seconds()

	dir := -1
	if curRate < targetRate {
		dir = +1
	}
	co.updateVelocity(now, dir)
	step := co.velocity / (co.delta * co.cwnd)
	co.cwnd += float64(dir) * step
	if co.cwnd < 2 {
		co.cwnd = 2
	}
}

// updateVelocity implements Copa's velocity doubling: the velocity doubles
// each RTT that the window keeps moving in the same direction (after an
// initial three), and resets on a direction change.
func (co *Copa) updateVelocity(now time.Duration, dir int) {
	if dir != co.direction {
		co.direction = dir
		co.velocity = 1
		co.dirSince = now
		co.dirRTTs = 0
		return
	}
	if co.srtt > 0 && now-co.dirSince >= co.srtt {
		co.dirSince = now
		co.dirRTTs++
		if co.dirRTTs >= 3 {
			co.velocity *= 2
			if co.velocity > 1<<16 {
				co.velocity = 1 << 16
			}
		}
	}
}

// OnLoss implements cc.Controller. Default-mode Copa reacts to loss only
// through the delay signal; a sharp decrease guards against buffer
// overflow regimes.
func (co *Copa) OnLoss(l cc.LossSample) {
	co.cwnd /= 2
	if co.cwnd < 2 {
		co.cwnd = 2
	}
	co.velocity = 1
	co.direction = 0
}

// PacingRate implements cc.Controller: Copa paces at 2*cwnd/RTTstanding to
// spread transmissions.
func (co *Copa) PacingRate() float64 {
	standing := time.Duration(co.rttStanding.Get())
	if standing <= 0 {
		return 0
	}
	return 2 * co.cwnd * mss * 8 / standing.Seconds()
}

// CWND implements cc.Controller.
func (co *Copa) CWND() int { return int(co.cwnd * mss) }
