package copa

import (
	"testing"
	"time"

	"pbecc/internal/cc"
	"pbecc/internal/cc/cctest"
)

func TestLowDelaySteadyState(t *testing.T) {
	r := cctest.Run(1, New(), 20e6, 60*time.Millisecond, 1<<20, 10*time.Second)
	// Copa targets ~1/(delta*dq): queueing stays tiny even in a deep
	// buffer. One-way propagation is 30 ms.
	if r.P95OWDms > 55 {
		t.Fatalf("p95 OWD = %.1f ms, want < 55 (low standing queue)", r.P95OWDms)
	}
	if r.ThroughputMbps < 10 {
		t.Fatalf("throughput = %.1f Mbit/s of 20", r.ThroughputMbps)
	}
}

func TestVelocityDoublesAfterThreeRTTs(t *testing.T) {
	co := New()
	co.srtt = 50 * time.Millisecond
	now := time.Duration(0)
	co.updateVelocity(now, +1)
	if co.velocity != 1 {
		t.Fatalf("initial velocity = %v", co.velocity)
	}
	for i := 0; i < 3; i++ {
		now += 51 * time.Millisecond
		co.updateVelocity(now, +1)
	}
	if co.velocity != 2 {
		t.Fatalf("velocity after 3 same-direction RTTs = %v, want 2", co.velocity)
	}
	now += 51 * time.Millisecond
	co.updateVelocity(now, +1)
	if co.velocity != 4 {
		t.Fatalf("velocity = %v, want 4", co.velocity)
	}
}

func TestVelocityResetsOnDirectionChange(t *testing.T) {
	co := New()
	co.srtt = 50 * time.Millisecond
	co.velocity = 8
	co.direction = +1
	co.updateVelocity(time.Second, -1)
	if co.velocity != 1 {
		t.Fatalf("velocity after direction flip = %v, want 1", co.velocity)
	}
}

func TestLossHalvesWindow(t *testing.T) {
	co := New()
	co.cwnd = 40
	co.OnLoss(cc.LossSample{})
	if co.cwnd != 20 {
		t.Fatalf("window after loss = %v, want 20", co.cwnd)
	}
}

func TestWindowFloor(t *testing.T) {
	co := New()
	co.cwnd = 2.5
	co.OnLoss(cc.LossSample{})
	if co.cwnd < 2 {
		t.Fatalf("window below floor: %v", co.cwnd)
	}
}

func TestName(t *testing.T) {
	if New().Name() != "copa" {
		t.Fatal("name")
	}
}
