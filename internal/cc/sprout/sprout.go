// Package sprout implements a Sprout-style stochastic-forecast controller
// (Winstein, Sivaraman, Balakrishnan, NSDI 2013). Sprout models the
// cellular link as a Poisson packet-delivery process whose rate drifts as
// Brownian motion; every tick it updates a belief over the current rate
// from observed deliveries and sends only as much as the cautious (5th
// percentile) forecast says the link will drain within the 100 ms target
// delay horizon.
//
// This implementation keeps the control law - cautious forecast of
// deliverable bytes over the horizon minus inflight - while replacing
// Sprout's full Bayesian inference with a mean/variance belief updated per
// tick, a substitution documented in DESIGN.md. Its evaluated behaviour
// matches the paper's: very low delay, conservative throughput.
package sprout

import (
	"math"
	"time"

	"pbecc/internal/cc"
)

const (
	mss           = 1500
	tick          = 20 * time.Millisecond
	horizon       = 100 * time.Millisecond // target queueing delay bound
	driftPerTick  = 0.2                    // std-dev growth of rate belief per tick (fraction)
	cautiousSigma = 1.65                   // ~5th percentile
	rateEWMA      = 0.25
)

// Sprout is the controller. Create with New.
type Sprout struct {
	rateMean float64 // delivery rate belief mean, bits/sec
	rateVar  float64 // variance of the belief (bits/sec)^2

	tickEnd    time.Duration
	tickBytes  int
	lastSample time.Duration

	inflight int
	cwnd     int
}

// New returns a Sprout controller.
func New() *Sprout {
	return &Sprout{cwnd: cc.InitialCwnd}
}

// Name implements cc.Controller.
func (sp *Sprout) Name() string { return "sprout" }

// ForecastRate returns the cautious rate estimate in bits/sec.
func (sp *Sprout) ForecastRate() float64 {
	r := sp.rateMean - cautiousSigma*math.Sqrt(sp.rateVar)
	if r < 0 {
		r = 0
	}
	return r
}

// OnSent implements cc.Controller.
func (sp *Sprout) OnSent(now time.Duration, seq uint64, bytes, inflight int) {
	sp.inflight = inflight
}

// OnAck implements cc.Controller.
func (sp *Sprout) OnAck(s cc.AckSample) {
	sp.inflight = s.InflightBytes
	sp.tickBytes += s.AckedBytes
	if sp.tickEnd == 0 {
		sp.tickEnd = s.Now + tick
		return
	}
	if s.Now < sp.tickEnd {
		return
	}
	// Close the tick: fold the observed delivery rate into the belief.
	observed := float64(sp.tickBytes) * 8 / tick.Seconds()
	sp.tickBytes = 0
	sp.tickEnd = s.Now + tick

	if sp.rateMean == 0 {
		sp.rateMean = observed
		sp.rateVar = observed * observed / 4
	} else {
		// Brownian drift widens the belief, the observation narrows it.
		sp.rateVar += (driftPerTick * sp.rateMean) * (driftPerTick * sp.rateMean)
		innov := observed - sp.rateMean
		sp.rateMean += rateEWMA * innov
		sp.rateVar = (1-rateEWMA)*sp.rateVar + rateEWMA*innov*innov
	}

	// Window: the bytes the forecast says the link drains within the
	// delay horizon - an absolute inflight cap, which is what bounds
	// queueing delay to roughly the horizon. The mean belief is used for
	// the budget (the Sprout-EWMA variant): the cautious percentile
	// starves at bootstrap, when the belief variance is of the order of
	// the mean itself.
	budget := int(sp.rateMean * horizon.Seconds() / 8)
	if budget < 2*mss {
		budget = 2 * mss
	}
	sp.cwnd = budget
}

// minRate floors the belief so repeated losses cannot kill the flow
// entirely (the probe above the mean needs a nonzero base to recover).
const minRate = 0.3e6

// OnLoss implements cc.Controller: loss marks a forecast failure; drop the
// belief sharply.
func (sp *Sprout) OnLoss(l cc.LossSample) {
	sp.inflight = l.InflightBytes
	sp.rateMean *= 0.5
	if sp.rateMean < minRate {
		sp.rateMean = minRate
	}
}

// PacingRate implements cc.Controller: pace slightly above the belief mean
// so the belief can track a link that is faster than the current estimate
// (the cautious forecast only bounds inflight, hence delay). Without this
// headroom a sender-limited flow would observe only its own rate and the
// belief would collapse.
func (sp *Sprout) PacingRate() float64 {
	if sp.rateMean <= 0 {
		return 0
	}
	return 1.25 * sp.rateMean
}

// CWND implements cc.Controller.
func (sp *Sprout) CWND() int { return sp.cwnd }
