package sprout

import (
	"testing"
	"time"

	"pbecc/internal/cc"
	"pbecc/internal/cc/cctest"
)

func TestConservativeLowDelay(t *testing.T) {
	r := cctest.Run(1, New(), 20e6, 60*time.Millisecond, 1<<20, 10*time.Second)
	// Sprout's cautious forecast bounds queueing to roughly its 100 ms
	// delay horizon (one-way propagation here is 30 ms).
	if r.P95OWDms > 140 {
		t.Fatalf("p95 OWD = %.1f ms, want < 140", r.P95OWDms)
	}
	if r.ThroughputMbps < 1 {
		t.Fatalf("throughput = %.2f Mbit/s: completely starved", r.ThroughputMbps)
	}
	// On a rock-stable link Sprout may reach full rate; its conservatism
	// shows on variable links (covered by the harness experiments).
	if r.ThroughputMbps > 21 {
		t.Fatalf("throughput = %.1f above link capacity", r.ThroughputMbps)
	}
}

func TestForecastBelowMean(t *testing.T) {
	sp := New()
	sp.rateMean = 10e6
	sp.rateVar = 1e12 // sigma = 1 Mbit/s
	f := sp.ForecastRate()
	if f >= sp.rateMean {
		t.Fatalf("cautious forecast %.1f not below mean %.1f", f/1e6, sp.rateMean/1e6)
	}
	if f < 8e6 {
		t.Fatalf("forecast %.1f too pessimistic for sigma=1", f/1e6)
	}
}

func TestForecastNonNegative(t *testing.T) {
	sp := New()
	sp.rateMean = 1e6
	sp.rateVar = 1e14
	if sp.ForecastRate() < 0 {
		t.Fatal("negative forecast")
	}
}

func TestLossHalvesBelief(t *testing.T) {
	sp := New()
	sp.rateMean = 10e6
	sp.OnLoss(cc.LossSample{})
	if sp.rateMean != 5e6 {
		t.Fatalf("belief after loss = %v", sp.rateMean)
	}
}

func TestBeliefTracksObservations(t *testing.T) {
	sp := New()
	now := time.Duration(0)
	// Feed a steady 12 Mbit/s of acks: 1500B each, 1 per ms.
	for i := 0; i < 2000; i++ {
		now += time.Millisecond
		sp.OnAck(cc.AckSample{Now: now, AckedBytes: 1500, SRTT: 50 * time.Millisecond})
	}
	if sp.rateMean < 9e6 || sp.rateMean > 15e6 {
		t.Fatalf("belief = %.1f Mbit/s, want ~12", sp.rateMean/1e6)
	}
}

func TestName(t *testing.T) {
	if New().Name() != "sprout" {
		t.Fatal("name")
	}
}
