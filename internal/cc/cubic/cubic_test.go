package cubic

import (
	"testing"
	"time"

	"pbecc/internal/cc"
	"pbecc/internal/cc/cctest"
)

func TestSlowStartDoubles(t *testing.T) {
	cu := New()
	if !cu.InSlowStart() {
		t.Fatal("must begin in slow start")
	}
	w0 := cu.WindowMSS()
	// Acking a window's worth of data in slow start doubles the window.
	for i := 0; i < 10; i++ {
		cu.OnAck(cc.AckSample{Now: time.Millisecond, Seq: uint64(i), AckedBytes: 1500, SRTT: 50 * time.Millisecond})
	}
	if got := cu.WindowMSS(); got < 2*w0-0.01 {
		t.Fatalf("window after 10 acks = %.1f, want ~%.1f", got, 2*w0)
	}
}

func TestLossMultiplicativeDecrease(t *testing.T) {
	cu := New()
	cu.cwnd = 100
	cu.OnSent(0, 500, 1500, 0)
	cu.OnLoss(cc.LossSample{Now: time.Second, Seq: 100})
	if got := cu.WindowMSS(); got < 69 || got > 71 {
		t.Fatalf("window after loss = %.1f, want 70 (beta=0.7)", got)
	}
	if cu.InSlowStart() {
		t.Fatal("must leave slow start after loss")
	}
}

func TestLossCoalescedPerWindow(t *testing.T) {
	cu := New()
	cu.cwnd = 100
	cu.OnSent(0, 500, 1500, 0)
	cu.OnLoss(cc.LossSample{Now: time.Second, Seq: 100})
	w := cu.WindowMSS()
	// More losses from the same window of data must not reduce again.
	cu.OnLoss(cc.LossSample{Now: time.Second, Seq: 101})
	cu.OnLoss(cc.LossSample{Now: time.Second, Seq: 499})
	if cu.WindowMSS() != w {
		t.Fatalf("window reduced twice in one episode: %.1f -> %.1f", w, cu.WindowMSS())
	}
	// A loss from data sent after recovery began does reduce.
	cu.OnSent(0, 600, 1500, 0)
	cu.OnAck(cc.AckSample{Now: time.Second, Seq: 501, AckedBytes: 1500, SRTT: 50 * time.Millisecond})
	cu.OnLoss(cc.LossSample{Now: 2 * time.Second, Seq: 600})
	if cu.WindowMSS() >= w {
		t.Fatal("new-episode loss did not reduce window")
	}
}

func TestFastConvergence(t *testing.T) {
	cu := New()
	cu.cwnd = 100
	cu.wMax = 120 // window is below the previous max: shrink wMax further
	cu.OnSent(0, 1, 1500, 0)
	cu.OnLoss(cc.LossSample{Now: time.Second, Seq: 1})
	want := 100 * (2 - beta) / 2
	if cu.wMax != want {
		t.Fatalf("fast convergence wMax = %.1f, want %.1f", cu.wMax, want)
	}
}

func TestCubicGrowthConcaveThenConvex(t *testing.T) {
	// After a loss the window approaches wMax (concave), plateaus, then
	// grows past it (convex) - the defining CUBIC shape.
	cu := New()
	cu.cwnd = 100
	cu.OnSent(0, 1, 1500, 0)
	cu.OnLoss(cc.LossSample{Now: 0, Seq: 1})
	base := cu.WindowMSS()
	var atK, late float64
	k := time.Duration(cu.kAfterEpochStart(base) * float64(time.Second))
	step := 10 * time.Millisecond
	for now := step; now <= 3*k; now += step {
		cu.OnAck(cc.AckSample{Now: now, Seq: 2, AckedBytes: 1500, SRTT: 50 * time.Millisecond})
		if now <= k {
			atK = cu.WindowMSS()
		}
		late = cu.WindowMSS()
	}
	if atK < base || atK > cu.wMax*1.1 {
		t.Fatalf("window at K = %.1f, want between %.1f and ~wMax %.1f", atK, base, cu.wMax)
	}
	if late <= cu.wMax {
		t.Fatalf("window after 3K = %.1f, must exceed wMax %.1f (convex phase)", late, cu.wMax)
	}
}

// kAfterEpochStart exposes K for the test above given the post-loss
// window.
func (cu *Cubic) kAfterEpochStart(w float64) float64 {
	return cbrt(cu.wMax * (1 - beta) / c)
}

func cbrt(x float64) float64 {
	if x < 0 {
		return 0
	}
	guess := x
	for i := 0; i < 60; i++ {
		guess = (2*guess + x/(guess*guess)) / 3
	}
	return guess
}

func TestUtilizationDeepBuffer(t *testing.T) {
	r := cctest.Run(1, New(), 20e6, 60*time.Millisecond, 1<<20, 10*time.Second)
	if r.ThroughputMbps < 15 {
		t.Fatalf("CUBIC got %.1f Mbit/s of 20 with a deep buffer", r.ThroughputMbps)
	}
	// CUBIC fills deep buffers: delay must be well above propagation.
	if r.AvgOWDms < 35 {
		t.Fatalf("avg OWD %.1f ms suspiciously low for CUBIC in deep buffer", r.AvgOWDms)
	}
}

func TestUtilizationShallowBuffer(t *testing.T) {
	r := cctest.Run(2, New(), 20e6, 60*time.Millisecond, 8*4500, 10*time.Second)
	if r.ThroughputMbps < 8 {
		t.Fatalf("CUBIC got %.1f Mbit/s of 20 with a shallow buffer", r.ThroughputMbps)
	}
	if r.Lost == 0 {
		t.Fatal("no losses in shallow buffer - detector broken?")
	}
}

func TestName(t *testing.T) {
	if New().Name() != "cubic" {
		t.Fatal("name")
	}
}

func TestPacingDisabled(t *testing.T) {
	if New().PacingRate() != 0 {
		t.Fatal("CUBIC must be unpaced")
	}
}
