// Package cubic implements CUBIC congestion control (Ha, Rhee, Xu, "CUBIC:
// A New TCP-Friendly High-Speed TCP Variant", SIGOPS OSR 2008; RFC 8312):
// slow start to the slow-start threshold, then window growth along the
// cubic function W(t) = C*(t-K)^3 + Wmax with beta = 0.7 multiplicative
// decrease, fast convergence, and the TCP-friendly region.
package cubic

import (
	"math"
	"time"

	"pbecc/internal/cc"
)

const (
	mss  = 1500
	beta = 0.7
	c    = 0.4
)

// Cubic is the controller. Create with New.
type Cubic struct {
	cwnd     float64 // in MSS
	ssthresh float64

	wMax       float64
	epochStart time.Duration
	k          float64
	ackCount   float64 // bytes acked since epoch, for TCP-friendly est.
	wTCP       float64

	highestSent    uint64
	recoveryEndSeq uint64
	inRecovery     bool

	lastRTT time.Duration
}

// New returns a CUBIC controller.
func New() *Cubic {
	return &Cubic{
		cwnd:     float64(cc.InitialCwnd) / mss,
		ssthresh: math.Inf(1),
	}
}

// Name implements cc.Controller.
func (cu *Cubic) Name() string { return "cubic" }

// WindowMSS returns the window in segments (for tests).
func (cu *Cubic) WindowMSS() float64 { return cu.cwnd }

// InSlowStart reports whether the window is below the slow-start
// threshold.
func (cu *Cubic) InSlowStart() bool { return cu.cwnd < cu.ssthresh }

// OnSent implements cc.Controller.
func (cu *Cubic) OnSent(now time.Duration, seq uint64, bytes, inflight int) {
	if seq > cu.highestSent {
		cu.highestSent = seq
	}
}

// OnAck implements cc.Controller.
func (cu *Cubic) OnAck(s cc.AckSample) {
	cu.lastRTT = s.SRTT
	if cu.inRecovery && s.Seq >= cu.recoveryEndSeq {
		cu.inRecovery = false
	}
	ackedMSS := float64(s.AckedBytes) / mss

	if cu.InSlowStart() {
		cu.cwnd += ackedMSS
		return
	}

	// Congestion avoidance: cubic update.
	if cu.epochStart == 0 {
		cu.epochStart = s.Now
		if cu.wMax < cu.cwnd {
			cu.wMax = cu.cwnd
		}
		cu.k = math.Cbrt(cu.wMax * (1 - beta) / c)
		cu.ackCount = 0
		cu.wTCP = cu.cwnd
	}
	t := (s.Now - cu.epochStart).Seconds()
	target := cu.wMax + c*math.Pow(t-cu.k, 3)

	// TCP-friendly region (RFC 8312 §4.2).
	cu.ackCount += ackedMSS
	cu.wTCP += 3 * (1 - beta) / (1 + beta) * ackedMSS / cu.cwnd
	if cu.wTCP > target {
		target = cu.wTCP
	}

	if target > cu.cwnd {
		cu.cwnd += (target - cu.cwnd) / cu.cwnd * ackedMSS
	} else {
		cu.cwnd += 0.01 * ackedMSS / cu.cwnd // minimal growth
	}
}

// OnLoss implements cc.Controller: multiplicative decrease once per
// window of data (losses within one recovery episode are coalesced).
func (cu *Cubic) OnLoss(l cc.LossSample) {
	if cu.inRecovery && l.Seq <= cu.recoveryEndSeq {
		return
	}
	cu.inRecovery = true
	cu.recoveryEndSeq = cu.highestSent

	// Fast convergence (RFC 8312 §4.6).
	if cu.cwnd < cu.wMax {
		cu.wMax = cu.cwnd * (2 - beta) / 2
	} else {
		cu.wMax = cu.cwnd
	}
	cu.cwnd *= beta
	if cu.cwnd < float64(cc.MinCwnd)/mss {
		cu.cwnd = float64(cc.MinCwnd) / mss
	}
	cu.ssthresh = cu.cwnd
	cu.epochStart = 0
}

// PacingRate implements cc.Controller: CUBIC is a pure window protocol.
func (cu *Cubic) PacingRate() float64 { return 0 }

// CWND implements cc.Controller.
func (cu *Cubic) CWND() int { return int(cu.cwnd * mss) }
