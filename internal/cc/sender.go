package cc

import (
	"fmt"
	"time"

	"pbecc/internal/netsim"
	"pbecc/internal/obs"
	"pbecc/internal/sim"
)

// Transport metrics, aggregated across flows and schemes. A "rate
// decision" is any ACK or loss event after which the controller's pacing
// rate or window actually changed.
var (
	mAcks          = obs.NewCounter("cc.acks")
	mLosses        = obs.NewCounter("cc.losses")
	mRateDecisions = obs.NewCounter("cc.rate_decisions")
	mPacingKbps    = obs.NewHistogram("cc.pacing_rate_kbps")
)

// Per-flow virtual-time series (40 ms windows; tid = flow ID): the
// controller's pacing-rate and cwnd decisions, and acked volume per
// window (bits per sample, so a window's Sum/40ms is the achieved
// delivery rate - the trajectory the convergence analytics track, well
// defined even for pure-window schemes whose PacingRate is 0).
var (
	seriesRate    = obs.Series("cc.rate")
	seriesCwnd    = obs.Series("cc.cwnd")
	seriesAckBits = obs.Series("cc.ack_bits")
)

// Sender is a full-buffer, UDP-based data sender driven by a Controller,
// the shape of the paper's user-space prototype: it paces packets at the
// controller's rate, respects the controller's congestion window, samples
// delivery rate per ACK (BBR-style), and declares losses with a
// reordering-tolerant time threshold that accounts for cellular HARQ
// delays (§3: up to three retransmissions of eight milliseconds).
type Sender struct {
	eng    *sim.Engine
	FlowID int
	out    netsim.Handler
	ctrl   Controller
	mss    int

	nextSeq       uint64
	sent          map[uint64]sentPkt
	order         []uint64
	inflightBytes int
	pool          *netsim.PacketPool

	delivered   uint64 // total bytes acked
	deliveredAt time.Duration

	srtt   time.Duration
	rttvar time.Duration

	nextRelease time.Duration
	pumpEv      sim.Event
	pumpFn      func() // bound once so re-pacing allocates no closure
	lossTicker  *sim.Ticker
	running     bool

	// OnAckHook, when set, observes every processed ACK sample (used by
	// experiment instrumentation).
	OnAckHook func(AckSample)

	// Source, when set, supplies the next application packet to transmit
	// (frame-level media from package rtc). Returning nil pauses
	// transmission until Pump is called; when unset, the sender generates
	// MSS-sized full-buffer packets. The sender assigns FlowID, Seq and
	// SentAt; the source provides Size and any media metadata.
	Source func(now time.Duration) *netsim.Packet

	// AppLimited marks packets sent while the application, not the
	// controller, is the binding constraint; their delivery-rate samples
	// must not be read as network capacity. Media sources maintain it.
	AppLimited bool

	// Counters.
	SentPackets  uint64
	AckedPackets uint64
	LostPackets  uint64
	SentBytes    uint64
	AckedBytes   uint64

	// Last observed controller decision, for change-triggered metric and
	// trace emission; trace track names are built once per flow.
	lastRate             float64
	lastCwnd             int
	traceRate, traceCwnd string

	// Series tracks, created lazily on the first ACK (nil when the run
	// records no series; Sample on nil is one branch).
	sRate, sCwnd, sAck *obs.SeriesTrack
	seriesInit         bool
}

type sentPkt struct {
	seq                 uint64
	bytes               int
	sentAt              time.Duration
	deliveredAtSend     uint64
	deliveredTimeAtSend time.Duration
	appLimited          bool
}

// lossSweepInterval is how often the in-flight list is scanned for
// timed-out packets.
const lossSweepInterval = 5 * time.Millisecond

// harqReorderAllowance is the extra one-way delay a packet can legally
// accumulate inside the cellular link from HARQ retransmissions (3 x 8 ms)
// plus jitter; the loss detector must not fire earlier.
const harqReorderAllowance = 27 * time.Millisecond

// NewSender wires a sender for flowID that transmits MSS-sized packets
// into out under ctrl's control. Call Start to begin.
func NewSender(eng *sim.Engine, flowID int, out netsim.Handler, ctrl Controller) *Sender {
	s := &Sender{
		eng:    eng,
		FlowID: flowID,
		out:    out,
		ctrl:   ctrl,
		mss:    netsim.MSS,
		sent:   make(map[uint64]sentPkt),
		pool:   netsim.PoolOf(eng),
	}
	s.pumpFn = s.pump
	return s
}

// Controller returns the congestion controller driving this sender.
func (s *Sender) Controller() Controller { return s.ctrl }

// SRTT returns the smoothed RTT estimate.
func (s *Sender) SRTT() time.Duration { return s.srtt }

// InflightBytes returns bytes sent but not yet acked or declared lost.
func (s *Sender) InflightBytes() int { return s.inflightBytes }

// Start begins transmission and loss detection.
func (s *Sender) Start() {
	if s.running {
		return
	}
	s.running = true
	s.lossTicker = s.eng.Every(lossSweepInterval, s.sweepLosses)
	s.pump()
}

// Stop halts transmission; in-flight packets may still be acked.
func (s *Sender) Stop() {
	if !s.running {
		return
	}
	s.running = false
	if s.lossTicker != nil {
		s.lossTicker.Stop()
		s.lossTicker = nil
	}
	s.pumpEv.Cancel()
}

// Running reports whether the sender is transmitting.
func (s *Sender) Running() bool { return s.running }

// Pump attempts transmission immediately; media sources call it when new
// frames arrive while the sender is source-starved.
func (s *Sender) Pump() {
	if s.running {
		s.pump()
	}
}

// pump transmits as permitted by the controller's window and pacing rate.
func (s *Sender) pump() {
	if !s.running {
		return
	}
	now := s.eng.Now()
	for {
		cwnd := s.ctrl.CWND()
		if s.inflightBytes+s.mss > cwnd && s.inflightBytes > 0 {
			return // window-limited: an ACK or loss will re-pump
		}
		rate := s.ctrl.PacingRate()
		if rate > 0 && now < s.nextRelease {
			s.schedulePump(s.nextRelease - now)
			return
		}
		sentBytes := s.sendOne(now)
		if sentBytes == 0 {
			return // source-starved: a Pump will restart transmission
		}
		if rate > 0 {
			gap := time.Duration(float64(sentBytes*8) / rate * float64(time.Second))
			if s.nextRelease < now-gap {
				// Idle restart: do not accumulate send credit.
				s.nextRelease = now
			}
			s.nextRelease += gap
		}
	}
}

func (s *Sender) schedulePump(d time.Duration) {
	s.pumpEv.Cancel()
	s.pumpEv = s.eng.Schedule(d, s.pumpFn)
}

// sendOne transmits the next packet and returns its size in bytes (0 when
// a media source has nothing queued).
func (s *Sender) sendOne(now time.Duration) int {
	var p *netsim.Packet
	if s.Source != nil {
		if p = s.Source(now); p == nil {
			return 0
		}
	} else {
		p = s.pool.Get()
		p.Size = s.mss
	}
	s.nextSeq++
	seq := s.nextSeq
	p.FlowID, p.Seq, p.SentAt = s.FlowID, seq, now
	s.sent[seq] = sentPkt{
		seq:                 seq,
		bytes:               p.Size,
		sentAt:              now,
		deliveredAtSend:     s.delivered,
		deliveredTimeAtSend: s.deliveredAt,
		appLimited:          s.AppLimited,
	}
	s.order = append(s.order, seq)
	s.inflightBytes += p.Size
	s.SentPackets++
	s.SentBytes += uint64(p.Size)
	s.ctrl.OnSent(now, seq, p.Size, s.inflightBytes)
	s.out.HandlePacket(now, p)
	return p.Size
}

// HandlePacket processes acknowledgements arriving from the receiver.
// The sender is the terminal owner of everything delivered to it, so the
// packet is released on every path.
func (s *Sender) HandlePacket(now time.Duration, p *netsim.Packet) {
	defer s.pool.Release(p)
	if !p.IsAck {
		return
	}
	info, ok := s.sent[p.Ack.AckSeq]
	if !ok {
		return // already declared lost or duplicate
	}
	delete(s.sent, p.Ack.AckSeq)
	s.inflightBytes -= info.bytes
	s.delivered += uint64(info.bytes)
	s.deliveredAt = now
	s.AckedPackets++
	s.AckedBytes += uint64(info.bytes)

	rtt := now - info.sentAt
	if s.srtt == 0 {
		s.srtt = rtt
		s.rttvar = rtt / 2
	} else {
		diff := s.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + rtt) / 8
	}

	var rate float64
	if dt := now - info.deliveredTimeAtSend; dt > 0 {
		rate = float64(s.delivered-info.deliveredAtSend) * 8 / dt.Seconds()
	}

	sample := AckSample{
		Now:                now,
		Seq:                info.seq,
		AckedBytes:         info.bytes,
		RTT:                rtt,
		SRTT:               s.srtt,
		OneWayDelay:        p.Ack.ReceivedAt - info.sentAt,
		DeliveryRate:       rate,
		AppLimited:         info.appLimited,
		InflightBytes:      s.inflightBytes,
		FeedbackRate:       p.Ack.FeedbackRate,
		InternetBottleneck: p.Ack.InternetBottleneck,
	}
	s.ctrl.OnAck(sample)
	mAcks.Inc()
	s.observeDecision(now)
	s.observeSeries(now, info.bytes)
	if s.OnAckHook != nil {
		s.OnAckHook(sample)
	}
	s.compactOrder()
	s.pump()
}

// observeDecision records the controller's post-event pacing rate and
// window when either changed: a counter plus a rate histogram in the
// metrics registry, and - when the run is traced - one counter track per
// flow for the Perfetto cc-decision timeline. Purely observational: it
// reads the controller, never drives it.
func (s *Sender) observeDecision(now time.Duration) {
	buf := s.eng.ObsBuffer()
	metricsOn := obs.Enabled()
	if buf == nil && !metricsOn {
		return
	}
	rate := s.ctrl.PacingRate()
	cwnd := s.ctrl.CWND()
	if rate == s.lastRate && cwnd == s.lastCwnd {
		return
	}
	if metricsOn {
		mRateDecisions.Inc()
		if rate > 0 {
			mPacingKbps.Observe(int64(rate / 1e3))
		}
	}
	if buf != nil {
		if s.traceRate == "" {
			s.traceRate = fmt.Sprintf("cc/%s/flow%d/rate_mbps", s.ctrl.Name(), s.FlowID)
			s.traceCwnd = fmt.Sprintf("cc/%s/flow%d/cwnd_kB", s.ctrl.Name(), s.FlowID)
		}
		// Decision tracks batch per 40 ms window: one ACK per packet
		// makes per-sample counter events the dominant trace volume at
		// metro scale, and Perfetto stalls loading them.
		if rate != s.lastRate {
			buf.CounterWindowed(s.traceRate, now, rate/1e6)
		}
		if cwnd != s.lastCwnd {
			buf.CounterWindowed(s.traceCwnd, now, float64(cwnd)/1e3)
		}
	}
	s.lastRate, s.lastCwnd = rate, cwnd
}

// sweepLosses declares packets lost when they have been in flight longer
// than srtt plus variance plus the HARQ reordering allowance.
func (s *Sender) sweepLosses() {
	if len(s.sent) == 0 || s.srtt == 0 {
		return
	}
	now := s.eng.Now()
	slack := 4 * s.rttvar
	if slack < 10*time.Millisecond {
		slack = 10 * time.Millisecond
	}
	threshold := s.srtt + slack + harqReorderAllowance
	for _, seq := range s.order {
		info, ok := s.sent[seq]
		if !ok {
			continue
		}
		if now-info.sentAt <= threshold {
			break // order holds sequences in send order
		}
		delete(s.sent, seq)
		s.inflightBytes -= info.bytes
		s.LostPackets++
		s.ctrl.OnLoss(LossSample{
			Now:           now,
			Seq:           seq,
			Bytes:         info.bytes,
			InflightBytes: s.inflightBytes,
		})
		mLosses.Inc()
	}
	s.observeDecision(now)
	s.observeSeries(now, 0)
	s.compactOrder()
	s.pump()
}

// observeSeries downsamples the controller's post-event state into the
// flow's series tracks: pacing rate (Mbit/s), cwnd (kB) and - on ACKs -
// the acked volume (bits). Purely observational, independent of the
// trace and metrics switches.
func (s *Sender) observeSeries(now time.Duration, ackedBytes int) {
	if !s.seriesInit {
		s.seriesInit = true
		if sb := s.eng.SeriesBuffer(); sb != nil {
			s.sRate = sb.Track(seriesRate, s.FlowID)
			s.sCwnd = sb.Track(seriesCwnd, s.FlowID)
			s.sAck = sb.Track(seriesAckBits, s.FlowID)
		}
	}
	if s.sRate == nil {
		return
	}
	s.sRate.Sample(now, s.ctrl.PacingRate()/1e6)
	s.sCwnd.Sample(now, float64(s.ctrl.CWND())/1e3)
	if ackedBytes > 0 {
		s.sAck.Sample(now, float64(ackedBytes)*8)
	}
}

// compactOrder drops the acked/lost prefix of the send-order list.
func (s *Sender) compactOrder() {
	i := 0
	for i < len(s.order) {
		if _, ok := s.sent[s.order[i]]; ok {
			break
		}
		i++
	}
	if i > 0 {
		s.order = s.order[i:]
	}
}
