package cc

import "time"

// WindowedMax tracks the maximum of a time series over a sliding window,
// as BBR's bottleneck-bandwidth filter does. Samples must arrive with
// non-decreasing timestamps.
type WindowedMax struct {
	Window  time.Duration
	samples []timedValue
}

// WindowedMin tracks the minimum over a sliding window, as BBR's RTprop
// filter does.
type WindowedMin struct {
	Window  time.Duration
	samples []timedValue
}

type timedValue struct {
	at time.Duration
	v  float64
}

// Update inserts a sample and evicts out-of-window or dominated entries.
func (w *WindowedMax) Update(at time.Duration, v float64) {
	cut := 0
	for cut < len(w.samples) && w.samples[cut].at < at-w.Window {
		cut++
	}
	w.samples = w.samples[cut:]
	for len(w.samples) > 0 && w.samples[len(w.samples)-1].v <= v {
		w.samples = w.samples[:len(w.samples)-1]
	}
	w.samples = append(w.samples, timedValue{at, v})
}

// Get returns the current windowed maximum (0 if empty).
func (w *WindowedMax) Get() float64 {
	if len(w.samples) == 0 {
		return 0
	}
	return w.samples[0].v
}

// Expire drops samples older than the window relative to now.
func (w *WindowedMax) Expire(now time.Duration) {
	cut := 0
	for cut < len(w.samples) && w.samples[cut].at < now-w.Window {
		cut++
	}
	w.samples = w.samples[cut:]
}

// Reset clears the filter.
func (w *WindowedMax) Reset() { w.samples = w.samples[:0] }

// Update inserts a sample and evicts out-of-window or dominated entries.
func (w *WindowedMin) Update(at time.Duration, v float64) {
	cut := 0
	for cut < len(w.samples) && w.samples[cut].at < at-w.Window {
		cut++
	}
	w.samples = w.samples[cut:]
	for len(w.samples) > 0 && w.samples[len(w.samples)-1].v >= v {
		w.samples = w.samples[:len(w.samples)-1]
	}
	w.samples = append(w.samples, timedValue{at, v})
}

// Get returns the current windowed minimum (0 if empty).
func (w *WindowedMin) Get() float64 {
	if len(w.samples) == 0 {
		return 0
	}
	return w.samples[0].v
}

// Expire drops samples older than the window relative to now.
func (w *WindowedMin) Expire(now time.Duration) {
	cut := 0
	for cut < len(w.samples) && w.samples[cut].at < now-w.Window {
		cut++
	}
	w.samples = w.samples[cut:]
}

// Reset clears the filter.
func (w *WindowedMin) Reset() { w.samples = w.samples[:0] }

// EWMA is an exponentially weighted moving average.
type EWMA struct {
	Alpha float64 // weight of the new sample
	val   float64
	init  bool
}

// Update folds in a sample and returns the new average.
func (e *EWMA) Update(v float64) float64 {
	if !e.init {
		e.val = v
		e.init = true
		return v
	}
	e.val = e.Alpha*v + (1-e.Alpha)*e.val
	return e.val
}

// Get returns the current average (0 before the first sample).
func (e *EWMA) Get() float64 { return e.val }

// Initialized reports whether any sample has been folded in.
func (e *EWMA) Initialized() bool { return e.init }
