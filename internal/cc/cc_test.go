package cc

import (
	"math"
	"testing"
	"time"

	"pbecc/internal/netsim"
	"pbecc/internal/sim"
)

// fakeCtrl is a programmable controller for framework tests.
type fakeCtrl struct {
	rate   float64
	cwnd   int
	acks   []AckSample
	losses []LossSample
	sent   int
}

func (f *fakeCtrl) Name() string                                   { return "fake" }
func (f *fakeCtrl) OnSent(now time.Duration, seq uint64, b, i int) { f.sent++ }
func (f *fakeCtrl) OnAck(s AckSample)                              { f.acks = append(f.acks, s) }
func (f *fakeCtrl) OnLoss(l LossSample)                            { f.losses = append(f.losses, l) }
func (f *fakeCtrl) PacingRate() float64                            { return f.rate }
func (f *fakeCtrl) CWND() int                                      { return f.cwnd }

// loop builds sender -> fwd link -> receiver -> ack link -> sender.
func loop(eng *sim.Engine, ctrl Controller, fwdRate float64, delay time.Duration, queue int) (*Sender, *Receiver, *netsim.Link) {
	var snd *Sender
	ackLink := netsim.NewLink(eng, 0, delay/2, 0, netsim.HandlerFunc(func(now time.Duration, p *netsim.Packet) {
		snd.HandlePacket(now, p)
	}))
	rcv := NewReceiver(eng, 1, ackLink)
	fwd := netsim.NewLink(eng, fwdRate, delay/2, queue, rcv)
	snd = NewSender(eng, 1, fwd, ctrl)
	return snd, rcv, fwd
}

func TestPacedRateThroughput(t *testing.T) {
	eng := sim.New(1)
	ctrl := &fakeCtrl{rate: 12e6, cwnd: 1 << 30}
	snd, rcv, _ := loop(eng, ctrl, 100e6, 40*time.Millisecond, 0)
	snd.Start()
	eng.RunUntil(2 * time.Second)
	// 12 Mbit/s = 1000 pps; over 2s minus startup ~ 2000 packets.
	if rcv.Received < 1900 || rcv.Received > 2050 {
		t.Fatalf("received %d packets, want ~2000", rcv.Received)
	}
}

func TestWindowLimitedThroughput(t *testing.T) {
	eng := sim.New(2)
	// cwnd = 10 packets, RTT 100 ms, ample link: ~100 packets/s.
	ctrl := &fakeCtrl{rate: 0, cwnd: 10 * netsim.MSS}
	snd, rcv, _ := loop(eng, ctrl, 1e9, 100*time.Millisecond, 0)
	snd.Start()
	eng.RunUntil(5 * time.Second)
	pps := float64(rcv.Received) / 5
	if pps < 85 || pps > 115 {
		t.Fatalf("window-limited rate %.1f pps, want ~100", pps)
	}
}

func TestRTTEstimate(t *testing.T) {
	eng := sim.New(3)
	ctrl := &fakeCtrl{rate: 6e6, cwnd: 1 << 30}
	snd, _, _ := loop(eng, ctrl, 100e6, 60*time.Millisecond, 0)
	snd.Start()
	eng.RunUntil(time.Second)
	if snd.SRTT() < 59*time.Millisecond || snd.SRTT() > 65*time.Millisecond {
		t.Fatalf("SRTT = %v, want ~60ms", snd.SRTT())
	}
	if len(ctrl.acks) == 0 {
		t.Fatal("no acks processed")
	}
	last := ctrl.acks[len(ctrl.acks)-1]
	if last.OneWayDelay < 29*time.Millisecond || last.OneWayDelay > 35*time.Millisecond {
		t.Fatalf("OWD = %v, want ~30ms", last.OneWayDelay)
	}
}

func TestDeliveryRateSample(t *testing.T) {
	eng := sim.New(4)
	// Push 50 Mbit/s into a 20 Mbit/s bottleneck: delivery-rate samples
	// must converge to the bottleneck rate.
	ctrl := &fakeCtrl{rate: 50e6, cwnd: 1 << 30}
	snd, _, _ := loop(eng, ctrl, 20e6, 40*time.Millisecond, 1<<20)
	snd.Start()
	eng.RunUntil(2 * time.Second)
	n := len(ctrl.acks)
	if n < 100 {
		t.Fatalf("too few acks: %d", n)
	}
	var avg float64
	for _, a := range ctrl.acks[n-50:] {
		avg += a.DeliveryRate
	}
	avg /= 50
	if avg < 18e6 || avg > 22e6 {
		t.Fatalf("delivery rate = %.1f Mbit/s, want ~20", avg/1e6)
	}
}

func TestLossDetection(t *testing.T) {
	eng := sim.New(5)
	// Overdrive a small-queue bottleneck: drops must surface as OnLoss.
	ctrl := &fakeCtrl{rate: 40e6, cwnd: 1 << 30}
	snd, _, fwd := loop(eng, ctrl, 10e6, 40*time.Millisecond, 20*netsim.MSS)
	snd.Start()
	eng.RunUntil(2 * time.Second)
	if fwd.Drops == 0 {
		t.Fatal("bottleneck never dropped")
	}
	if len(ctrl.losses) == 0 {
		t.Fatal("no losses reported to controller")
	}
	if snd.LostPackets != uint64(len(ctrl.losses)) {
		t.Fatalf("counter mismatch: %d vs %d", snd.LostPackets, len(ctrl.losses))
	}
}

func TestInflightAccounting(t *testing.T) {
	eng := sim.New(6)
	ctrl := &fakeCtrl{rate: 20e6, cwnd: 1 << 30}
	snd, _, _ := loop(eng, ctrl, 20e6, 40*time.Millisecond, 1<<20)
	snd.Start()
	eng.RunUntil(2 * time.Second)
	snd.Stop()
	eng.RunUntil(3 * time.Second)
	// After stopping and draining, all packets are acked or lost.
	if snd.InflightBytes() != 0 {
		t.Fatalf("inflight = %d after drain, want 0", snd.InflightBytes())
	}
	if snd.AckedPackets+snd.LostPackets != snd.SentPackets {
		t.Fatalf("acked %d + lost %d != sent %d",
			snd.AckedPackets, snd.LostPackets, snd.SentPackets)
	}
}

func TestNoLossOnHARQLikeReordering(t *testing.T) {
	eng := sim.New(7)
	// A 20 ms delay spike on one packet (under the 27 ms HARQ allowance)
	// must not trigger loss detection.
	var snd *Sender
	ackLink := netsim.NewLink(eng, 0, 5*time.Millisecond, 0,
		netsim.HandlerFunc(func(now time.Duration, p *netsim.Packet) { snd.HandlePacket(now, p) }))
	rcv := NewReceiver(eng, 1, ackLink)
	delayed := netsim.HandlerFunc(func(now time.Duration, p *netsim.Packet) {
		d := 5 * time.Millisecond
		if p.Seq == 50 {
			d += 20 * time.Millisecond
		}
		eng.Schedule(d, func() { rcv.HandlePacket(eng.Now(), p) })
	})
	ctrl := &fakeCtrl{rate: 12e6, cwnd: 1 << 30}
	snd = NewSender(eng, 1, delayed, ctrl)
	snd.Start()
	eng.RunUntil(time.Second)
	if snd.LostPackets != 0 {
		t.Fatalf("%d spurious losses on HARQ-like delay", snd.LostPackets)
	}
}

func TestStopHaltsTransmission(t *testing.T) {
	eng := sim.New(8)
	ctrl := &fakeCtrl{rate: 12e6, cwnd: 1 << 30}
	snd, _, _ := loop(eng, ctrl, 100e6, 20*time.Millisecond, 0)
	snd.Start()
	eng.RunUntil(500 * time.Millisecond)
	snd.Stop()
	sentAtStop := snd.SentPackets
	eng.RunUntil(time.Second)
	if snd.SentPackets != sentAtStop {
		t.Fatal("sender kept transmitting after Stop")
	}
	if snd.Running() {
		t.Fatal("Running() true after Stop")
	}
}

type feedbackStub struct {
	rate float64
	btl  bool
}

func (f *feedbackStub) Feedback(now time.Duration, owd time.Duration, dataBytes int) (float64, bool) {
	return f.rate, f.btl
}

func TestReceiverFeedbackAttached(t *testing.T) {
	eng := sim.New(9)
	ctrl := &fakeCtrl{rate: 6e6, cwnd: 1 << 30}
	snd, rcv, _ := loop(eng, ctrl, 100e6, 20*time.Millisecond, 0)
	rcv.Feedback = &feedbackStub{rate: 33e6, btl: true}
	snd.Start()
	eng.RunUntil(200 * time.Millisecond)
	if len(ctrl.acks) == 0 {
		t.Fatal("no acks")
	}
	a := ctrl.acks[len(ctrl.acks)-1]
	if a.FeedbackRate != 33e6 || !a.InternetBottleneck {
		t.Fatalf("feedback not carried: %+v", a)
	}
}

func TestReceiverIgnoresOtherFlows(t *testing.T) {
	eng := sim.New(10)
	rcv := NewReceiver(eng, 1, &netsim.Sink{})
	rcv.HandlePacket(0, &netsim.Packet{FlowID: 2, Size: netsim.MSS})
	if rcv.Received != 0 {
		t.Fatal("receiver accepted foreign flow")
	}
}

// --- Filters ---

func TestWindowedMax(t *testing.T) {
	w := WindowedMax{Window: 100 * time.Millisecond}
	w.Update(0, 10)
	w.Update(50*time.Millisecond, 5)
	if w.Get() != 10 {
		t.Fatalf("max = %v, want 10", w.Get())
	}
	w.Update(150*time.Millisecond, 7)
	if w.Get() != 7 {
		t.Fatalf("max after expiry = %v, want 7", w.Get())
	}
	w.Expire(400 * time.Millisecond)
	if w.Get() != 0 {
		t.Fatalf("max after full expiry = %v, want 0", w.Get())
	}
}

func TestWindowedMin(t *testing.T) {
	w := WindowedMin{Window: 100 * time.Millisecond}
	w.Update(0, 10)
	w.Update(10*time.Millisecond, 20)
	if w.Get() != 10 {
		t.Fatalf("min = %v, want 10", w.Get())
	}
	// At t=150ms the 100ms window has expired both earlier samples.
	w.Update(150*time.Millisecond, 30)
	if w.Get() != 30 {
		t.Fatalf("min after expiry = %v, want 30", w.Get())
	}
	w.Update(160*time.Millisecond, 25)
	if w.Get() != 25 {
		t.Fatalf("min = %v, want 25", w.Get())
	}
	w.Reset()
	if w.Get() != 0 {
		t.Fatal("reset failed")
	}
}

func TestWindowedMaxDominance(t *testing.T) {
	w := WindowedMax{Window: time.Second}
	for i := 0; i < 100; i++ {
		w.Update(time.Duration(i)*time.Millisecond, float64(100-i))
	}
	// Monotonically decreasing input keeps all samples; the max is the
	// first.
	if w.Get() != 100 {
		t.Fatalf("max = %v", w.Get())
	}
	w.Update(100*time.Millisecond, 1000)
	if w.Get() != 1000 {
		t.Fatalf("new max = %v", w.Get())
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	if e.Initialized() {
		t.Fatal("initialized before first sample")
	}
	e.Update(10)
	if e.Get() != 10 {
		t.Fatalf("first sample = %v", e.Get())
	}
	e.Update(20)
	if math.Abs(e.Get()-15) > 1e-9 {
		t.Fatalf("EWMA = %v, want 15", e.Get())
	}
}

func TestBDPBytes(t *testing.T) {
	// 80 Mbit/s x 100 ms = 1 MB.
	if got := BDPBytes(80e6, 100*time.Millisecond); got != 1000000 {
		t.Fatalf("BDP = %d, want 1000000", got)
	}
	if BDPBytes(0, time.Second) != 0 || BDPBytes(1e6, 0) != 0 {
		t.Fatal("degenerate BDP must be 0")
	}
}
