package sim

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// clusterTrace runs a randomized cross-shard workload on nShards shards
// with the given worker count and returns each shard's observation log.
// Every shard ticks once per millisecond and, driven by its own engine
// rng, sends events to other shards with delays at or above the
// lookahead; receivers log (virtual now, source, payload).
func clusterTrace(t *testing.T, seed int64, nShards, workers int, dur time.Duration) [][]string {
	t.Helper()
	la := 5 * time.Millisecond
	c := NewCluster(seed)
	c.SetWorkers(workers)
	shards := make([]*Shard, nShards)
	logs := make([][]string, nShards)
	for i := range shards {
		shards[i] = c.AddShard()
	}
	c.DeclareLookahead(la)
	for i, s := range shards {
		i, s := i, s
		s.Every(time.Millisecond, func() {
			// Shard-local work: consume randomness and log the tick.
			r := s.Rand().Intn(1000)
			logs[i] = append(logs[i], fmt.Sprintf("tick %v r=%d", s.Now(), r))
			if r%3 == 0 {
				dst := shards[r%nShards]
				delay := la + time.Duration(r%7)*time.Millisecond
				src, sentAt := i, s.Now()
				s.Send(dst, delay, func() {
					j := dst.ID()
					logs[j] = append(logs[j], fmt.Sprintf("recv %v from=%d sent=%v", dst.Now(), src, sentAt))
				})
			}
		})
	}
	c.RunUntil(dur)
	return logs
}

// TestClusterDeterministicAcrossWorkers is the core sharding contract:
// the same clustered program produces identical per-shard event logs for
// any worker count.
func TestClusterDeterministicAcrossWorkers(t *testing.T) {
	base := clusterTrace(t, 42, 8, 1, 200*time.Millisecond)
	for _, workers := range []int{2, 4, 8} {
		got := clusterTrace(t, 42, 8, workers, 200*time.Millisecond)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("logs differ between workers=1 and workers=%d", workers)
		}
	}
	var total int
	for _, l := range base {
		total += len(l)
	}
	if total < 1600 {
		t.Fatalf("workload too small to be meaningful: %d log lines", total)
	}
}

// TestClusterCrossShardTimeOrder checks conservative synchronization at
// the sim level: a cross-shard event never executes before the receiving
// shard's clock reaches its arrival time, never arrives earlier than
// sent-time plus delay, and each shard's observed event times are
// monotonically non-decreasing (global time order is never violated).
func TestClusterCrossShardTimeOrder(t *testing.T) {
	la := 4 * time.Millisecond
	c := NewCluster(7)
	c.SetWorkers(2)
	a, b := c.AddShard(), c.AddShard()
	c.DeclareLookahead(la)

	type obs struct{ now, want time.Duration }
	var seen []obs
	var last time.Duration
	b.Every(time.Millisecond, func() {
		if b.Now() < last {
			t.Errorf("shard B time ran backwards: %v after %v", b.Now(), last)
		}
		last = b.Now()
	})
	a.Every(700*time.Microsecond, func() {
		sent := a.Now()
		delay := la + time.Duration(a.Rand().Intn(3))*time.Millisecond
		want := sent + delay
		a.Send(b, delay, func() {
			seen = append(seen, obs{now: b.Now(), want: want})
			if b.Now() < last {
				t.Errorf("cross event at %v after local time %v", b.Now(), last)
			}
			last = b.Now()
		})
	})
	c.RunUntil(120 * time.Millisecond)

	if len(seen) < 100 {
		t.Fatalf("too few cross-shard deliveries: %d", len(seen))
	}
	for _, o := range seen {
		if o.now != o.want {
			t.Fatalf("cross event executed at %v, scheduled for %v", o.now, o.want)
		}
	}
}

// TestClusterBoundaryArrival: a cross-shard event arriving exactly at
// the RunUntil target must execute, matching Engine.RunUntil's
// "timestamps <= t" contract (it is delivered by the final barrier and
// needs the post-loop execution pass).
func TestClusterBoundaryArrival(t *testing.T) {
	la := 10 * time.Millisecond
	c := NewCluster(5)
	a, b := c.AddShard(), c.AddShard()
	c.DeclareLookahead(la)
	var fired []time.Duration
	// Sent at 90 ms, arriving exactly at the 100 ms target.
	a.Schedule(90*time.Millisecond, func() {
		a.Send(b, la, func() { fired = append(fired, b.Now()) })
	})
	// And one arriving past the target: it must stay queued, then fire
	// on the next RunUntil.
	a.Schedule(95*time.Millisecond, func() {
		a.Send(b, la, func() { fired = append(fired, b.Now()) })
	})
	c.RunUntil(100 * time.Millisecond)
	if len(fired) != 1 || fired[0] != 100*time.Millisecond {
		t.Fatalf("boundary arrival: fired=%v, want exactly [100ms]", fired)
	}
	c.RunUntil(200 * time.Millisecond)
	if len(fired) != 2 || fired[1] != 105*time.Millisecond {
		t.Fatalf("post-target arrival: fired=%v, want second at 105ms", fired)
	}
}

// TestClusterSendBelowLookaheadPanics ensures the conservative invariant
// is enforced, not assumed.
func TestClusterSendBelowLookaheadPanics(t *testing.T) {
	c := NewCluster(1)
	a, b := c.AddShard(), c.AddShard()
	c.DeclareLookahead(10 * time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for delay below lookahead")
		}
	}()
	a.Send(b, 5*time.Millisecond, func() {})
}

// TestClusterNoLookaheadSendPanics: with no declared lookahead the shards
// are independent and cross-shard traffic is illegal.
func TestClusterNoLookaheadSendPanics(t *testing.T) {
	c := NewCluster(1)
	a, b := c.AddShard(), c.AddShard()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for cross-shard send without lookahead")
		}
	}()
	a.Send(b, time.Second, func() {})
}

// TestOneShardClusterMatchesEngine: shard 0 keeps the cluster seed, so a
// one-shard cluster reproduces a bare engine's randomness and timing
// exactly - the property that keeps unsharded scenarios byte-identical
// after the harness moved onto clusters.
func TestOneShardClusterMatchesEngine(t *testing.T) {
	eng := New(99)
	var engLog []string
	eng.Every(time.Millisecond, func() {
		engLog = append(engLog, fmt.Sprintf("%v %d", eng.Now(), eng.Rand().Int63()))
	})
	eng.RunUntil(50 * time.Millisecond)

	c := NewCluster(99)
	s := c.AddShard()
	var shardLog []string
	s.Every(time.Millisecond, func() {
		shardLog = append(shardLog, fmt.Sprintf("%v %d", s.Now(), s.Rand().Int63()))
	})
	c.RunUntil(50 * time.Millisecond)

	if !reflect.DeepEqual(engLog, shardLog) {
		t.Fatal("one-shard cluster diverged from bare engine")
	}
}

// BenchmarkClusterWindowSync measures the pure synchronization overhead:
// 16 shards with near-empty windows, so the cost is dominated by the
// window barrier machinery rather than event execution.
func BenchmarkClusterWindowSync(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := NewCluster(1)
				var shards []*Shard
				for k := 0; k < 16; k++ {
					shards = append(shards, c.AddShard())
				}
				c.SetWorkers(workers)
				c.DeclareLookahead(5 * time.Millisecond)
				for _, s := range shards {
					s.Every(time.Millisecond, func() {})
				}
				c.RunUntil(time.Second)
			}
		})
	}
}

// TestClusterWindowSyncAllocs pins the fix for the historical
// workers=4 allocation blow-up (2762 allocs/op vs 356 at workers=1,
// from per-window goroutine spawns and mailbox reallocation): with
// persistent workers and retained inboxes, adding workers must not
// multiply allocations. The benchmark-derived bound asserts workers=4
// stays within 2x of workers=1 and under the 700 allocs/op budget.
func TestClusterWindowSyncAllocs(t *testing.T) {
	run := func(workers int) float64 {
		return testing.AllocsPerRun(5, func() {
			c := NewCluster(1)
			var shards []*Shard
			for k := 0; k < 16; k++ {
				shards = append(shards, c.AddShard())
			}
			c.SetWorkers(workers)
			c.DeclareLookahead(5 * time.Millisecond)
			for _, s := range shards {
				s.Every(time.Millisecond, func() {})
			}
			c.RunUntil(time.Second)
		})
	}
	a1 := run(1)
	a4 := run(4)
	t.Logf("allocs/op: workers=1 %.0f, workers=4 %.0f", a1, a4)
	if a4 > 700 {
		t.Errorf("workers=4 allocates %.0f/op, budget is 700", a4)
	}
	if a4 > 2*a1 {
		t.Errorf("workers=4 allocates %.0f/op, more than 2x workers=1 (%.0f/op)", a4, a1)
	}
}
