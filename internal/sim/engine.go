// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated subsystems (cellular MAC, wired links, congestion-control
// senders) schedule callbacks on a shared virtual clock. Events scheduled for
// the same instant run in scheduling order, which together with seeded
// randomness makes every simulation run exactly reproducible.
package sim

import (
	"math/rand"
	"time"
)

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Cancel prevents the event's callback from running. Cancelling an event
// that already fired (or was already cancelled) is a no-op.
func (ev *Event) Cancel() {
	if ev != nil {
		ev.cancelled = true
		ev.fn = nil
	}
}

// Cancelled reports whether Cancel was called on the event.
func (ev *Event) Cancelled() bool { return ev.cancelled }

// At returns the virtual time the event fires at.
func (ev *Event) At() time.Duration { return ev.at }

// Engine is a discrete-event simulator with a virtual clock.
// The zero value is not usable; construct with New.
type Engine struct {
	now     time.Duration
	queue   eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool
}

// New returns an engine whose random source is seeded with seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero. It returns the event so the caller may cancel it.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t. If t is in the past the event fires
// at the current time (events never run backwards).
func (e *Engine) At(t time.Duration, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.queue.push(ev)
	return ev
}

// Stop makes Run and RunUntil return after the currently executing event.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		e.step()
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to exactly t. It returns early if Stop is called.
func (e *Engine) RunUntil(t time.Duration) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped && e.queue[0].at <= t {
		e.step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// step pops and executes the earliest event.
func (e *Engine) step() {
	ev := e.queue.pop()
	if ev.cancelled {
		return
	}
	e.now = ev.at
	fn := ev.fn
	ev.fn = nil
	fn()
}

// Pending returns the number of events waiting in the queue, including
// cancelled events that have not yet been discarded.
func (e *Engine) Pending() int { return len(e.queue) }

// Ticker fires a callback at a fixed virtual-time interval until stopped.
type Ticker struct {
	engine   *Engine
	interval time.Duration
	fn       func()
	ev       *Event
	stopped  bool
}

// Every schedules fn to run every interval, with the first firing one
// interval from now. The interval must be positive.
func (e *Engine) Every(interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: Every interval must be positive")
	}
	t := &Ticker{engine: e, interval: interval, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.engine.Schedule(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future firings of the ticker.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}

// eventHeap is a binary min-heap ordered by (at, seq).
type eventHeap []*Event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev *Event) {
	*h = append(*h, ev)
	ev.index = len(*h) - 1
	h.up(ev.index)
}

func (h *eventHeap) pop() *Event {
	old := *h
	ev := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[0].index = 0
	old[n] = nil
	*h = old[:n]
	if n > 0 {
		h.down(0)
	}
	ev.index = -1
	return ev
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
