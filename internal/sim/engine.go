// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated subsystems (cellular MAC, wired links, congestion-control
// senders) schedule callbacks on a shared virtual clock. Events scheduled for
// the same instant run in scheduling order, which together with seeded
// randomness makes every simulation run exactly reproducible.
//
// The engine is built for the per-job hot path of large scenario sweeps:
// event objects are pooled through a free list (steady-state scheduling does
// not allocate), the priority queue is a 4-ary heap (shallower than a binary
// heap, fewer comparisons per sift), and cancelled events are removed lazily
// in bulk once they occupy a quarter of the heap rather than one heap fixup
// per cancellation.
package sim

import (
	"math/rand"
	"time"

	"pbecc/internal/obs"
)

// Engine metrics: registered once, no-op and allocation-free while the
// obs layer is disabled (the schedule/run hot path pays one atomic flag
// load per site).
var (
	mSched   = obs.NewCounter("sim.events_scheduled")
	mCancel  = obs.NewCounter("sim.events_cancelled")
	mReuse   = obs.NewCounter("sim.event_pool_reuse")
	mSweeps  = obs.NewCounter("sim.heap_sweeps")
	mHeapMax = obs.NewWatermark("sim.heap_len_max")
)

// event is the engine-internal representation of a scheduled callback.
// Events are pooled: once an event fires or a sweep discards it, the engine
// bumps its generation and recycles the struct through the free list.
type event struct {
	eng       *Engine
	at        time.Duration
	seq       uint64
	gen       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Event is a handle to a scheduled callback. The zero value is inert:
// Cancel and Cancelled on it are safe no-ops. The underlying event object
// may be recycled for a later Schedule call after it fires, but a stale
// handle can never cancel the recycled event (generation-checked).
type Event struct {
	ev        *event
	gen       uint64
	cancelled bool
}

// live reports whether the handle still refers to its original scheduling.
func (h *Event) live() bool { return h.ev != nil && h.ev.gen == h.gen }

// Cancel prevents the event's callback from running. Cancelling an event
// that already fired (or was already cancelled) is a no-op.
func (h *Event) Cancel() {
	if h == nil {
		return
	}
	h.cancelled = true
	if !h.live() {
		h.ev = nil
		return
	}
	ev := h.ev
	h.ev = nil
	if ev.cancelled {
		return
	}
	ev.cancelled = true
	ev.fn = nil
	mCancel.Inc()
	if ev.index >= 0 {
		ev.eng.dead++
		ev.eng.maybeSweep()
	}
}

// Cancelled reports whether Cancel was called through this handle.
func (h *Event) Cancelled() bool { return h != nil && h.cancelled }

// At returns the virtual time the event fires at, or 0 once the handle is
// stale (the event fired or was swept).
func (h Event) At() time.Duration {
	if h.live() {
		return h.ev.at
	}
	return 0
}

// Engine is a discrete-event simulator with a virtual clock.
// The zero value is not usable; construct with New.
type Engine struct {
	now      time.Duration
	queue    eventHeap
	seq      uint64
	rng      *rand.Rand
	stopped  bool
	free     []*event
	dead     int    // cancelled events still occupying heap slots
	executed uint64 // events run since construction

	// obsBuf, when non-nil, is the shard-local trace ring instrumented
	// subsystems (cc senders, the PBE probe) emit virtual-time trace
	// events into. Set by the cluster when a run is traced; nil costs
	// one pointer load at each emission site.
	obsBuf *obs.Buffer

	// seriesBuf, when non-nil, is the shard-local series ring the
	// instrumented subsystems downsample virtual-time signals into. Set
	// by the cluster when a run records series; nil costs one pointer
	// load at each track-creation site and one branch per sample.
	seriesBuf *obs.SeriesBuffer

	// pktPool is an opaque per-engine slot for netsim's packet free
	// list. The engine cannot name the concrete type (sim must not
	// import netsim), but owning the slot keeps the pool engine-local:
	// one single-threaded free list per shard, no locks, no global map.
	pktPool any
}

// New returns an engine whose random source is seeded with seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Executed returns the number of events the engine has run. The cluster
// reads it at window barriers to measure per-shard idle fraction.
func (e *Engine) Executed() uint64 { return e.executed }

// SetObsBuffer attaches (or detaches, with nil) the engine's trace ring.
func (e *Engine) SetObsBuffer(b *obs.Buffer) { e.obsBuf = b }

// ObsBuffer returns the engine's trace ring, nil when the run is not
// traced. Emission sites must nil-check.
func (e *Engine) ObsBuffer() *obs.Buffer { return e.obsBuf }

// PacketPool returns the engine's packet-pool slot (nil until netsim
// installs one). The slot is opaque at this layer; netsim.PoolOf does
// the typed access.
func (e *Engine) PacketPool() any { return e.pktPool }

// SetPacketPool installs the engine's packet pool. Like the engine's
// event free list, the pool is engine-local and therefore needs no
// synchronization: in a cluster every shard engine carries its own.
func (e *Engine) SetPacketPool(p any) { e.pktPool = p }

// SetSeriesBuffer attaches (or detaches, with nil) the engine's series
// ring.
func (e *Engine) SetSeriesBuffer(b *obs.SeriesBuffer) { e.seriesBuf = b }

// SeriesBuffer returns the engine's series ring, nil when the run
// records no series. Instrumentation sites must nil-check (a nil
// buffer's Track returns a nil track, whose Sample is a no-op branch).
func (e *Engine) SeriesBuffer() *obs.SeriesBuffer { return e.seriesBuf }

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero. It returns a handle so the caller may cancel the event.
func (e *Engine) Schedule(delay time.Duration, fn func()) Event {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t. If t is in the past the event fires
// at the current time (events never run backwards).
func (e *Engine) At(t time.Duration, fn func()) Event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		mReuse.Inc()
	} else {
		ev = &event{eng: e}
	}
	mSched.Inc()
	mHeapMax.Observe(int64(len(e.queue) + 1))
	ev.at, ev.seq, ev.fn = t, e.seq, fn
	e.queue.push(ev)
	return Event{ev: ev, gen: ev.gen}
}

// release returns a popped or swept event to the free list, invalidating
// every outstanding handle to it.
func (e *Engine) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.cancelled = false
	ev.index = -1
	e.free = append(e.free, ev)
}

// sweepMinDead is the floor below which cancelled events are simply left in
// the heap to be discarded at pop time; above it, once cancelled events
// occupy at least a quarter of the heap, one O(n) compaction removes them
// all.
const sweepMinDead = 64

func (e *Engine) maybeSweep() {
	if e.dead >= sweepMinDead && e.dead*4 >= len(e.queue) {
		e.sweep()
	}
}

// sweep compacts the heap in place, dropping every cancelled event and
// restoring the heap property. Pop order is unaffected: the (at, seq) key
// is a total order, so any valid heap over the surviving set pops
// identically.
func (e *Engine) sweep() {
	mSweeps.Inc()
	kept := e.queue[:0]
	for _, ev := range e.queue {
		if ev.cancelled {
			e.release(ev)
		} else {
			kept = append(kept, ev)
		}
	}
	for i := len(kept); i < len(e.queue); i++ {
		e.queue[i] = nil
	}
	for i, ev := range kept {
		ev.index = i
	}
	e.queue = kept
	e.queue.init()
	e.dead = 0
}

// Stop makes Run and RunUntil return after the currently executing event.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		e.step()
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to exactly t. It returns early if Stop is called.
func (e *Engine) RunUntil(t time.Duration) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped && e.queue[0].at <= t {
		e.step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// step pops and executes the earliest event.
func (e *Engine) step() {
	ev := e.queue.pop()
	if ev.cancelled {
		e.dead--
		e.release(ev)
		return
	}
	e.now = ev.at
	e.executed++
	fn := ev.fn
	e.release(ev)
	fn()
}

// Pending returns the number of events waiting in the queue, including
// cancelled events that have not yet been discarded.
func (e *Engine) Pending() int { return len(e.queue) }

// Ticker fires a callback at a fixed virtual-time interval until stopped.
type Ticker struct {
	engine   *Engine
	interval time.Duration
	fn       func()
	tick     func() // built once; re-arming allocates no fresh closure
	ev       Event
	stopped  bool
}

// Every schedules fn to run every interval, with the first firing one
// interval from now. The interval must be positive.
func (e *Engine) Every(interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: Every interval must be positive")
	}
	t := &Ticker{engine: e, interval: interval, fn: fn}
	t.tick = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.ev = t.engine.Schedule(t.interval, t.tick)
		}
	}
	t.ev = e.Schedule(interval, t.tick)
	return t
}

// Stop cancels future firings of the ticker.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}

// eventHeap is a 4-ary min-heap ordered by (at, seq). The wider node cuts
// the tree depth in half versus a binary heap, trading slightly more
// comparisons per level for far fewer levels (and cache misses) per sift.
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	ev.index = len(*h) - 1
	h.up(ev.index)
}

func (h *eventHeap) pop() *event {
	old := *h
	ev := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[0].index = 0
	old[n] = nil
	*h = old[:n]
	if n > 0 {
		h.down(0)
	}
	ev.index = -1
	return ev
}

// init heapifies the slice bottom-up (used after a sweep compaction).
func (h eventHeap) init() {
	for i := (len(h) - 2) / 4; i >= 0; i-- {
		h.down(i)
	}
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		smallest := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.less(c, smallest) {
				smallest = c
			}
		}
		if !h.less(smallest, i) {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
