package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := New(1)
	var at time.Duration
	e.Schedule(5*time.Millisecond, func() { at = e.Now() })
	e.Run()
	if at != 5*time.Millisecond {
		t.Fatalf("Now inside event = %v, want 5ms", at)
	}
	if e.Now() != 5*time.Millisecond {
		t.Fatalf("Now after run = %v, want 5ms", e.Now())
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := New(1)
	fired := false
	e.Schedule(-time.Second, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("event with negative delay did not fire")
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved backwards: %v", e.Now())
	}
}

func TestAtPastClamped(t *testing.T) {
	e := New(1)
	var at time.Duration
	e.Schedule(10*time.Millisecond, func() {
		e.At(time.Millisecond, func() { at = e.Now() })
	})
	e.Run()
	if at != 10*time.Millisecond {
		t.Fatalf("past event ran at %v, want clamped to 10ms", at)
	}
}

func TestCancel(t *testing.T) {
	e := New(1)
	fired := false
	ev := e.Schedule(time.Millisecond, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	e := New(1)
	fired := false
	ev := e.Schedule(2*time.Millisecond, func() { fired = true })
	e.Schedule(time.Millisecond, func() { ev.Cancel() })
	e.Run()
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	count := 0
	e.Every(time.Millisecond, func() { count++ })
	e.RunUntil(10 * time.Millisecond)
	if count != 10 {
		t.Fatalf("ticks = %d, want 10", count)
	}
	if e.Now() != 10*time.Millisecond {
		t.Fatalf("Now = %v, want 10ms", e.Now())
	}
	e.RunUntil(15 * time.Millisecond)
	if count != 15 {
		t.Fatalf("ticks after resume = %d, want 15", count)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New(1)
	e.RunUntil(time.Second)
	if e.Now() != time.Second {
		t.Fatalf("Now = %v, want 1s", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := New(1)
	count := 0
	e.Every(time.Millisecond, func() {
		count++
		if count == 5 {
			e.Stop()
		}
	})
	e.RunUntil(time.Second)
	if count != 5 {
		t.Fatalf("ticks = %d, want 5 (stopped)", count)
	}
}

func TestTickerStop(t *testing.T) {
	e := New(1)
	count := 0
	var tk *Ticker
	tk = e.Every(time.Millisecond, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.RunUntil(time.Second)
	if count != 3 {
		t.Fatalf("ticks = %d, want 3", count)
	}
}

func TestEveryPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	New(1).Every(0, func() {})
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		e := New(seed)
		var got []int
		for i := 0; i < 100; i++ {
			d := time.Duration(e.Rand().Intn(1000)) * time.Microsecond
			v := i
			e.Schedule(d, func() { got = append(got, v) })
		}
		e.Run()
		return got
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different order at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestHeapProperty checks via testing/quick that events pop in
// non-decreasing time order regardless of insertion order.
func TestHeapProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New(7)
		var fired []time.Duration
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Microsecond, func() {
				fired = append(fired, e.Now())
			})
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestPending(t *testing.T) {
	e := New(1)
	e.Schedule(time.Millisecond, func() {})
	e.Schedule(2*time.Millisecond, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending after run = %d, want 0", e.Pending())
	}
}

// TestStaleHandleCannotCancelRecycledEvent pins the safety property of the
// event pool: a handle kept past its event's firing must not cancel the
// recycled object when it is reused for a later scheduling.
func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	e := New(1)
	a := e.Schedule(time.Millisecond, func() {})
	e.Run() // a fires; its event object returns to the free list
	fired := false
	e.Schedule(time.Millisecond, func() { fired = true }) // reuses a's storage
	a.Cancel()
	e.Run()
	if !fired {
		t.Fatal("stale handle cancelled a recycled event")
	}
}

func TestCancelAfterFireStillReportsCancelled(t *testing.T) {
	e := New(1)
	ev := e.Schedule(time.Millisecond, func() {})
	e.Run()
	ev.Cancel()
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel on a fired event")
	}
}

// TestLazySweepBoundsHeap checks that a heap accumulating many cancelled
// events is compacted once they exceed the sweep fraction, instead of
// retaining every tombstone until its timestamp comes due.
func TestLazySweepBoundsHeap(t *testing.T) {
	e := New(1)
	const total = 10000
	events := make([]Event, 0, total)
	for i := 0; i < total; i++ {
		// Far-future events: without sweeping they would sit in the
		// queue for the whole run.
		events = append(events, e.Schedule(time.Duration(i+1)*time.Hour, func() {}))
	}
	live := 0
	for i := range events {
		if i%10 == 0 {
			live++
			continue
		}
		events[i].Cancel()
	}
	if e.Pending() >= total/2 {
		t.Fatalf("Pending = %d after cancelling 90%% of %d events, want sweep to bound it", e.Pending(), total)
	}
	fired := 0
	for i := range events {
		if !events[i].Cancelled() {
			fired++
		}
	}
	if fired != live {
		t.Fatalf("%d live handles, want %d", fired, live)
	}
	e.Run()
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending after run = %d, want 0", got)
	}
}

// TestSweepPreservesPopOrder cancels interleaved events under enough
// pressure to trigger compactions and checks the survivors still fire in
// non-decreasing time order, exactly once each.
func TestSweepPreservesPopOrder(t *testing.T) {
	e := New(3)
	var got []time.Duration
	var events []Event
	for i := 0; i < 2000; i++ {
		d := time.Duration(e.Rand().Intn(5000)) * time.Microsecond
		events = append(events, e.Schedule(d, func() { got = append(got, e.Now()) }))
	}
	survivors := 0
	for i := range events {
		if i%3 == 0 {
			events[i].Cancel()
		} else {
			survivors++
		}
	}
	e.Run()
	if len(got) != survivors {
		t.Fatalf("fired %d events, want %d", len(got), survivors)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("pop order violated at %d: %v after %v", i, got[i], got[i-1])
		}
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	e := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
		if e.Pending() > 1024 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkScheduleCancel measures the cancel-heavy churn of pacing senders
// that re-arm a pump timer on every ACK.
func BenchmarkScheduleCancel(b *testing.B) {
	e := New(1)
	noop := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(time.Duration(i%1000)*time.Microsecond, noop)
		ev.Cancel()
		if e.Pending() > 4096 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkTicker measures periodic re-arming (one tick per iteration).
func BenchmarkTicker(b *testing.B) {
	e := New(1)
	tk := e.Every(time.Millisecond, func() {})
	b.ReportAllocs()
	b.ResetTimer()
	e.RunUntil(time.Duration(b.N) * time.Millisecond)
	b.StopTimer()
	tk.Stop()
}
