package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pbecc/internal/obs"
)

// Cluster metrics. Window counts and cross-shard traffic are counters
// (order-independent sums), so a snapshot is identical for any worker
// count; the idle ratio is derivable as shard_windows_idle/shard_windows.
var (
	mBarriers     = obs.NewCounter("cluster.window_barriers")
	mShardWindows = obs.NewCounter("cluster.shard_windows")
	mIdleWindows  = obs.NewCounter("cluster.shard_windows_idle")
	mCrossEvents  = obs.NewCounter("cluster.cross_events")
	mMailboxMax   = obs.NewWatermark("cluster.mailbox_batch_max")
)

// Cluster coordinates a set of shard-local engines under conservative
// synchronization, the classic parallel-discrete-event recipe: every shard
// advances through the same bounded time window, and events that cross a
// shard boundary must be delayed by at least the cluster's lookahead (the
// minimum cross-shard link latency), so a window can never produce an
// event another shard should already have executed inside that window.
//
// Determinism contract: the shard topology and per-shard seeds are fixed
// by construction order, cross-shard events are merged into the receiving
// shard in (arrival time, source shard, source sequence) order at each
// window barrier, and workers only change which OS thread advances a
// shard, never the order of anything observable. Output is therefore
// byte-identical for any worker count - the same contract the sweep
// runner enforces across jobs, now held inside one scenario.
type Cluster struct {
	seed      int64
	shards    []*Shard
	lookahead time.Duration // min declared cross-shard latency; 0 = none
	clock     time.Duration // start of the current window
	workers   int

	// rec, when non-nil, collects the run's virtual-time trace: each
	// shard gets a ring buffer, drained into the recorder at every
	// window barrier (a serial phase, in shard order, so the merged
	// trace is byte-identical for any worker count).
	rec *obs.Recorder

	// srec, when non-nil, collects the run's downsampled virtual-time
	// series the same way: per-shard rings, drained at every window
	// barrier, merged by (window, shard, seq).
	srec *obs.SeriesRecorder
}

// NewCluster returns an empty cluster. Shard engine seeds derive from
// seed; shard 0 keeps seed itself, so a one-shard cluster is
// bit-compatible with a bare Engine created by New(seed).
func NewCluster(seed int64) *Cluster {
	return &Cluster{seed: seed, workers: 1}
}

// shardSeed derives shard id's engine seed from the cluster seed. The
// derivation depends only on (seed, id), never on the worker count.
func shardSeed(seed int64, id int) int64 {
	if id == 0 {
		return seed
	}
	return seed + int64(id)*2654435761 // Knuth's golden-ratio stride
}

// AddShard appends a shard whose engine is seeded deterministically from
// the cluster seed and the shard's index.
func (c *Cluster) AddShard() *Shard {
	id := len(c.shards)
	s := &Shard{Engine: New(shardSeed(c.seed, id)), id: id, cluster: c}
	if c.rec != nil {
		s.Engine.SetObsBuffer(c.rec.NewBuffer(id))
	}
	if c.srec != nil {
		s.Engine.SetSeriesBuffer(c.srec.NewBuffer(id))
	}
	c.shards = append(c.shards, s)
	return s
}

// SetRecorder attaches a trace recorder: every shard (existing and
// future) gets a ring buffer keyed by its id. Tracing changes what is
// observed, never what happens - the engines run identically with or
// without it.
func (c *Cluster) SetRecorder(r *obs.Recorder) {
	c.rec = r
	for _, s := range c.shards {
		if r != nil {
			s.Engine.SetObsBuffer(r.NewBuffer(s.id))
		} else {
			s.Engine.SetObsBuffer(nil)
		}
	}
}

// Recorder returns the attached trace recorder (nil when untraced).
func (c *Cluster) Recorder() *obs.Recorder { return c.rec }

// SetSeriesRecorder attaches a series recorder: every shard (existing
// and future) gets a series ring keyed by its id. Like tracing, series
// recording changes what is observed, never what happens.
func (c *Cluster) SetSeriesRecorder(r *obs.SeriesRecorder) {
	c.srec = r
	for _, s := range c.shards {
		if r != nil {
			s.Engine.SetSeriesBuffer(r.NewBuffer(s.id))
		} else {
			s.Engine.SetSeriesBuffer(nil)
		}
	}
}

// SeriesRecorder returns the attached series recorder (nil when the run
// records no series).
func (c *Cluster) SeriesRecorder() *obs.SeriesRecorder { return c.srec }

// Shards returns the cluster's shards in creation order.
func (c *Cluster) Shards() []*Shard { return c.shards }

// SetWorkers bounds how many shards advance concurrently during each
// window (1 = serial). The choice affects wall-clock time only: results
// are byte-identical for any value.
func (c *Cluster) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	c.workers = n
}

// Workers returns the configured parallel width.
func (c *Cluster) Workers() int { return c.workers }

// DeclareLookahead records a cross-shard latency; the cluster's window
// length is the minimum declared value. Cross-shard links declare their
// propagation delay here at construction time.
func (c *Cluster) DeclareLookahead(d time.Duration) {
	if d <= 0 {
		panic("sim: lookahead must be positive")
	}
	if c.lookahead == 0 || d < c.lookahead {
		c.lookahead = d
	}
}

// Lookahead returns the current window length (0 until a cross-shard
// latency is declared).
func (c *Cluster) Lookahead() time.Duration { return c.lookahead }

// Now returns the start of the current synchronization window, the time
// every shard has reached together.
func (c *Cluster) Now() time.Duration { return c.clock }

// RunUntil advances every shard to exactly time t. With no declared
// lookahead the shards are independent and each runs straight through;
// otherwise the cluster alternates bounded execution windows with
// deterministic mailbox barriers.
func (c *Cluster) RunUntil(t time.Duration) {
	if len(c.shards) == 0 {
		c.clock = t
		return
	}
	for c.clock < t {
		end := t
		if c.lookahead > 0 && c.clock+c.lookahead < t {
			end = c.clock + c.lookahead
		}
		c.each(func(s *Shard) { s.Engine.RunUntil(end) })
		if c.lookahead > 0 {
			c.each((*Shard).deliver)
		}
		c.observeWindow(c.clock, end)
		c.clock = end
	}
	if c.lookahead > 0 {
		// The final barrier may have delivered events whose arrival is
		// exactly t (a send at the last window's start with delay ==
		// lookahead); run them so the cluster honors Engine.RunUntil's
		// "events with timestamps <= t" contract. This converges in one
		// pass: anything those events send crosses with positive delay,
		// so it arrives strictly after t and stays queued for a later
		// RunUntil.
		c.each(func(s *Shard) { s.Engine.RunUntil(t) })
	}
	if c.rec != nil {
		// Collect anything emitted after the last barrier (the final
		// convergence pass above, or an unsharded straight-through run),
		// closing open windowed-counter aggregates first.
		for _, s := range c.shards {
			buf := s.Engine.ObsBuffer()
			buf.FlushCounters()
			c.rec.Drain(buf)
		}
	}
	if c.srec != nil {
		// Same for series: close every track's open window, then drain.
		for _, s := range c.shards {
			buf := s.Engine.SeriesBuffer()
			buf.Flush()
			c.srec.Drain(buf)
		}
	}
}

// observeWindow is the serial per-window bookkeeping: shard idle
// accounting, window-span trace emission, and ring drains. A shard that
// executed no events this window leaves a gap in its trace track - the
// visual form of the idle fraction the metrics count.
func (c *Cluster) observeWindow(start, end time.Duration) {
	metricsOn := obs.Enabled()
	if !metricsOn && c.rec == nil && c.srec == nil {
		return
	}
	if metricsOn {
		mBarriers.Inc()
	}
	for _, s := range c.shards {
		exec := s.Engine.Executed()
		idle := exec == s.prevExec
		s.prevExec = exec
		if metricsOn {
			mShardWindows.Inc()
			if idle {
				mIdleWindows.Inc()
			}
		}
		if c.rec != nil {
			buf := s.Engine.ObsBuffer()
			if buf != nil && !idle {
				buf.Complete("window", "shard", start, end-start, 0)
			}
			c.rec.Drain(buf)
		}
		if c.srec != nil {
			// Open window aggregates stay in their tracks (a 40 ms
			// window may span several barriers); only flushed points
			// move.
			c.srec.Drain(s.Engine.SeriesBuffer())
		}
	}
}

// each applies f to every shard, using up to c.workers goroutines. Shards
// are claimed through an atomic counter, so a slow shard never blocks the
// others from proceeding within the phase; the WaitGroup barrier is what
// publishes every shard's writes to the next phase.
func (c *Cluster) each(f func(*Shard)) {
	n := len(c.shards)
	w := c.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for _, s := range c.shards {
			f(s)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := next.Add(1)
				if k >= int64(n) {
					return
				}
				f(c.shards[k])
			}
		}()
	}
	wg.Wait()
}

// Shard is one partition of a clustered simulation: a full Engine (free
// list, 4-ary heap, seeded randomness) plus mailboxes for events that
// cross to other shards. All entities pinned to a shard schedule on its
// embedded engine exactly as they would on a standalone one.
type Shard struct {
	*Engine
	id      int
	cluster *Cluster

	// outbox[dst] buffers events sent to shard dst during the current
	// window. Only this shard's worker appends during execution; the
	// destination drains it at the barrier.
	outbox [][]crossEvent
	outSeq uint64

	// prevExec is the engine's executed count at the last window
	// barrier, maintained serially by observeWindow for the idle metric.
	prevExec uint64
}

// crossEvent is one mailbox entry. (at, src, seq) is a total order: seq is
// unique per source and sources are distinct, so the barrier merge is
// deterministic no matter how the window's execution interleaved.
type crossEvent struct {
	at  time.Duration
	src int
	seq uint64
	fn  func()
}

// ID returns the shard's index within its cluster.
func (s *Shard) ID() int { return s.id }

// Cluster returns the owning cluster.
func (s *Shard) Cluster() *Cluster { return s.cluster }

// Send schedules fn on dst's engine delay after the current shard-local
// time. A same-shard send degenerates to a plain Schedule. Cross-shard
// sends require a declared lookahead and a delay of at least that
// lookahead - the conservative-synchronization invariant that keeps every
// delivery inside a strictly later window.
func (s *Shard) Send(dst *Shard, delay time.Duration, fn func()) {
	if dst == s {
		s.Engine.Schedule(delay, fn)
		return
	}
	if dst.cluster != s.cluster {
		panic("sim: cross-shard send between different clusters")
	}
	la := s.cluster.lookahead
	if la <= 0 {
		panic("sim: cross-shard send without a declared lookahead")
	}
	if delay < la {
		panic(fmt.Sprintf("sim: cross-shard delay %v below lookahead %v", delay, la))
	}
	for len(s.outbox) <= dst.id {
		s.outbox = append(s.outbox, nil)
	}
	s.outSeq++
	s.outbox[dst.id] = append(s.outbox[dst.id], crossEvent{
		at: s.Engine.Now() + delay, src: s.id, seq: s.outSeq, fn: fn,
	})
}

// deliver merges every mailbox addressed to this shard into its local
// queue. Sorting by (arrival, source shard, source sequence) before
// scheduling fixes the local tie-break sequence numbers, making the merge
// independent of which worker ran which shard.
func (d *Shard) deliver() {
	var in []crossEvent
	for _, s := range d.cluster.shards {
		if d.id < len(s.outbox) && len(s.outbox[d.id]) > 0 {
			in = append(in, s.outbox[d.id]...)
			s.outbox[d.id] = s.outbox[d.id][:0]
		}
	}
	if len(in) == 0 {
		return
	}
	mCrossEvents.Add(uint64(len(in)))
	mMailboxMax.Observe(int64(len(in)))
	sort.Slice(in, func(i, j int) bool {
		if in[i].at != in[j].at {
			return in[i].at < in[j].at
		}
		if in[i].src != in[j].src {
			return in[i].src < in[j].src
		}
		return in[i].seq < in[j].seq
	})
	for _, ev := range in {
		d.Engine.At(ev.at, ev.fn)
	}
}
