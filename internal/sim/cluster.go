package sim

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"pbecc/internal/obs"
)

// Cluster metrics. Window counts and cross-shard traffic are counters
// (order-independent sums), so a snapshot is identical for any worker
// count; the idle ratio is derivable as shard_windows_idle/shard_windows.
var (
	mBarriers     = obs.NewCounter("cluster.window_barriers")
	mShardWindows = obs.NewCounter("cluster.shard_windows")
	mIdleWindows  = obs.NewCounter("cluster.shard_windows_idle")
	mCrossEvents  = obs.NewCounter("cluster.cross_events")
	mMailboxMax   = obs.NewWatermark("cluster.mailbox_batch_max")
)

// Cluster coordinates a set of shard-local engines under conservative
// synchronization, the classic parallel-discrete-event recipe: every shard
// advances through the same bounded time window, and events that cross a
// shard boundary must be delayed by at least the cluster's lookahead (the
// minimum cross-shard link latency), so a window can never produce an
// event another shard should already have executed inside that window.
//
// Determinism contract: the shard topology and per-shard seeds are fixed
// by construction order, cross-shard events are merged into the receiving
// shard in (arrival time, source shard, source sequence) order at each
// window barrier, and workers only change which OS thread advances a
// shard, never the order of anything observable. Output is therefore
// byte-identical for any worker count - the same contract the sweep
// runner enforces across jobs, now held inside one scenario.
//
// Hot-path shape (profiled at metro scale): each window is ONE parallel
// phase per shard - drain the shard's inbox, then advance its engine to
// the window end. Senders push cross-shard events directly into the
// destination shard's inbox under a small mutex, into the buffer of the
// current window's parity; the destination drains the opposite parity at
// the start of the next window, so the drained set is exactly what the
// previous window produced regardless of thread interleaving, and the
// (arrival, src, seq) sort restores one total order. Workers are
// persistent goroutines spawned once per RunUntil - not per window - fed
// by an atomic shard counter, and inbox/scratch buffers are retained
// across windows, so steady-state window synchronization allocates
// nothing.
type Cluster struct {
	seed      int64
	shards    []*Shard
	lookahead time.Duration // min declared cross-shard latency; 0 = none
	clock     time.Duration // start of the current window
	workers   int

	// parity selects which of each shard's two inbox buffers senders
	// append to during the current phase; receivers drain the other.
	// Flipped serially between phases.
	parity int

	// winEnd is the current window's end, read by the pre-bound phase
	// function so advancing a window allocates no closure.
	winEnd time.Duration
	runFn  func(*Shard) // bound once: drain inbox, run to winEnd

	// Persistent worker pool, alive for the duration of one RunUntil.
	// next is the shared shard-claim counter; a token on work releases
	// every worker into one claiming pass over the shards.
	next     atomic.Int64
	phaseWG  sync.WaitGroup
	work     chan struct{}
	workerWG sync.WaitGroup
	poolSize int

	// rec, when non-nil, collects the run's virtual-time trace: each
	// shard gets a ring buffer, drained into the recorder at every
	// window barrier (a serial phase, in shard order, so the merged
	// trace is byte-identical for any worker count).
	rec *obs.Recorder

	// srec, when non-nil, collects the run's downsampled virtual-time
	// series the same way: per-shard rings, drained at every window
	// barrier, merged by (window, shard, seq).
	srec *obs.SeriesRecorder
}

// NewCluster returns an empty cluster. Shard engine seeds derive from
// seed; shard 0 keeps seed itself, so a one-shard cluster is
// bit-compatible with a bare Engine created by New(seed).
func NewCluster(seed int64) *Cluster {
	c := &Cluster{seed: seed, workers: 1}
	c.runFn = func(s *Shard) {
		s.drainInbox()
		s.Engine.RunUntil(c.winEnd)
	}
	return c
}

// shardSeed derives shard id's engine seed from the cluster seed. The
// derivation depends only on (seed, id), never on the worker count.
func shardSeed(seed int64, id int) int64 {
	if id == 0 {
		return seed
	}
	return seed + int64(id)*2654435761 // Knuth's golden-ratio stride
}

// AddShard appends a shard whose engine is seeded deterministically from
// the cluster seed and the shard's index.
func (c *Cluster) AddShard() *Shard {
	id := len(c.shards)
	s := &Shard{Engine: New(shardSeed(c.seed, id)), id: id, cluster: c}
	if c.rec != nil {
		s.Engine.SetObsBuffer(c.rec.NewBuffer(id))
	}
	if c.srec != nil {
		s.Engine.SetSeriesBuffer(c.srec.NewBuffer(id))
	}
	c.shards = append(c.shards, s)
	return s
}

// SetRecorder attaches a trace recorder: every shard (existing and
// future) gets a ring buffer keyed by its id. Tracing changes what is
// observed, never what happens - the engines run identically with or
// without it.
func (c *Cluster) SetRecorder(r *obs.Recorder) {
	c.rec = r
	for _, s := range c.shards {
		if r != nil {
			s.Engine.SetObsBuffer(r.NewBuffer(s.id))
		} else {
			s.Engine.SetObsBuffer(nil)
		}
	}
}

// Recorder returns the attached trace recorder (nil when untraced).
func (c *Cluster) Recorder() *obs.Recorder { return c.rec }

// SetSeriesRecorder attaches a series recorder: every shard (existing
// and future) gets a series ring keyed by its id. Like tracing, series
// recording changes what is observed, never what happens.
func (c *Cluster) SetSeriesRecorder(r *obs.SeriesRecorder) {
	c.srec = r
	for _, s := range c.shards {
		if r != nil {
			s.Engine.SetSeriesBuffer(r.NewBuffer(s.id))
		} else {
			s.Engine.SetSeriesBuffer(nil)
		}
	}
}

// SeriesRecorder returns the attached series recorder (nil when the run
// records no series).
func (c *Cluster) SeriesRecorder() *obs.SeriesRecorder { return c.srec }

// Shards returns the cluster's shards in creation order.
func (c *Cluster) Shards() []*Shard { return c.shards }

// SetWorkers bounds how many shards advance concurrently during each
// window (1 = serial). The choice affects wall-clock time only: results
// are byte-identical for any value.
func (c *Cluster) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	c.workers = n
}

// Workers returns the configured parallel width.
func (c *Cluster) Workers() int { return c.workers }

// DeclareLookahead records a cross-shard latency; the cluster's window
// length is the minimum declared value. Cross-shard links declare their
// propagation delay here at construction time.
func (c *Cluster) DeclareLookahead(d time.Duration) {
	if d <= 0 {
		panic("sim: lookahead must be positive")
	}
	if c.lookahead == 0 || d < c.lookahead {
		c.lookahead = d
	}
}

// Lookahead returns the current window length (0 until a cross-shard
// latency is declared).
func (c *Cluster) Lookahead() time.Duration { return c.lookahead }

// Now returns the start of the current synchronization window, the time
// every shard has reached together.
func (c *Cluster) Now() time.Duration { return c.clock }

// RunUntil advances every shard to exactly time t. With no declared
// lookahead the shards are independent and each runs straight through;
// otherwise the cluster alternates bounded execution windows (each one
// parallel inbox-drain-plus-run phase) with serial barrier bookkeeping.
func (c *Cluster) RunUntil(t time.Duration) {
	if len(c.shards) == 0 {
		c.clock = t
		return
	}
	c.startWorkers()
	for c.clock < t {
		end := t
		if c.lookahead > 0 && c.clock+c.lookahead < t {
			end = c.clock + c.lookahead
		}
		c.runWindow(end)
		c.observeWindow(c.clock, end)
		c.clock = end
	}
	if c.lookahead > 0 {
		// The final window may have produced events whose arrival is
		// exactly t (a send at the last window's start with delay ==
		// lookahead); drain and run them so the cluster honors
		// Engine.RunUntil's "events with timestamps <= t" contract. This
		// converges in one pass: anything those events send crosses with
		// positive delay, so it arrives strictly after t and stays queued
		// for a later RunUntil.
		c.runWindow(t)
	}
	c.stopWorkers()
	if c.rec != nil {
		// Collect anything emitted after the last barrier (the final
		// convergence pass above, or an unsharded straight-through run),
		// closing open windowed-counter aggregates first.
		for _, s := range c.shards {
			buf := s.Engine.ObsBuffer()
			buf.FlushCounters()
			c.rec.Drain(buf)
		}
	}
	if c.srec != nil {
		// Same for series: close every track's open window, then drain.
		for _, s := range c.shards {
			buf := s.Engine.SeriesBuffer()
			buf.Flush()
			c.srec.Drain(buf)
		}
	}
}

// runWindow advances every shard through one window ending at end: each
// shard first merges the cross-shard events the previous window sent it
// (parity-selected, so the set is exactly last window's regardless of
// thread timing), then executes to the window end. The parity flip and
// winEnd store happen serially before workers are released; the phase
// barrier publishes every shard's writes to the next window.
func (c *Cluster) runWindow(end time.Duration) {
	c.parity ^= 1
	c.winEnd = end
	c.runPhase()
}

// startWorkers spawns the persistent claim-loop workers used by every
// window of one RunUntil. With one worker (or one shard) the phases run
// serially on the caller and no goroutines exist at all.
func (c *Cluster) startWorkers() {
	w := c.workers
	if w > len(c.shards) {
		w = len(c.shards)
	}
	if w <= 1 {
		c.poolSize = 0
		return
	}
	// The calling goroutine participates in every phase, so w workers
	// means w-1 spawned goroutines.
	c.poolSize = w - 1
	c.work = make(chan struct{}, c.poolSize)
	c.workerWG.Add(c.poolSize)
	for i := 0; i < c.poolSize; i++ {
		go func() {
			defer c.workerWG.Done()
			for range c.work {
				c.claimShards()
				c.phaseWG.Done()
			}
		}()
	}
}

// stopWorkers retires the pool at the end of RunUntil, so clusters never
// leak goroutines between runs.
func (c *Cluster) stopWorkers() {
	if c.poolSize == 0 {
		return
	}
	close(c.work)
	c.workerWG.Wait()
	c.work = nil
	c.poolSize = 0
}

// claimShards is one claiming pass: grab the next unclaimed shard index
// and apply the current phase function until none remain.
func (c *Cluster) claimShards() {
	n := int64(len(c.shards))
	for {
		k := c.next.Add(1)
		if k >= n {
			return
		}
		c.runFn(c.shards[k])
	}
}

// runPhase applies the bound window function to every shard, in parallel
// when the pool is live. Shards are claimed through an atomic counter, so
// a slow shard never blocks the others from proceeding within the phase;
// the WaitGroup barrier is what publishes every shard's writes to the
// next phase. The caller claims alongside the pool, so a phase costs
// poolSize channel wakeups and no allocation.
func (c *Cluster) runPhase() {
	if c.poolSize == 0 {
		for _, s := range c.shards {
			c.runFn(s)
		}
		return
	}
	c.next.Store(-1)
	c.phaseWG.Add(c.poolSize)
	for i := 0; i < c.poolSize; i++ {
		c.work <- struct{}{}
	}
	c.claimShards()
	c.phaseWG.Wait()
}

// observeWindow is the serial per-window bookkeeping: shard idle
// accounting, window-span trace emission, and ring drains. A shard that
// executed no events this window leaves a gap in its trace track - the
// visual form of the idle fraction the metrics count.
func (c *Cluster) observeWindow(start, end time.Duration) {
	metricsOn := obs.Enabled()
	if !metricsOn && c.rec == nil && c.srec == nil {
		return
	}
	if metricsOn {
		mBarriers.Inc()
	}
	for _, s := range c.shards {
		exec := s.Engine.Executed()
		idle := exec == s.prevExec
		s.prevExec = exec
		if metricsOn {
			mShardWindows.Inc()
			if idle {
				mIdleWindows.Inc()
			}
		}
		if c.rec != nil {
			buf := s.Engine.ObsBuffer()
			if buf != nil && !idle {
				buf.Complete("window", "shard", start, end-start, 0)
			}
			c.rec.Drain(buf)
		}
		if c.srec != nil {
			// Open window aggregates stay in their tracks (a 40 ms
			// window may span several barriers); only flushed points
			// move.
			c.srec.Drain(s.Engine.SeriesBuffer())
		}
	}
}

// Shard is one partition of a clustered simulation: a full Engine (free
// list, 4-ary heap, seeded randomness) plus mailboxes for events that
// cross to other shards. All entities pinned to a shard schedule on its
// embedded engine exactly as they would on a standalone one.
type Shard struct {
	*Engine
	id      int
	cluster *Cluster

	// inbox is the shard's double-buffered cross-shard mailbox. Senders
	// append directly into inbox[cluster.parity] under mu during a
	// window; the shard drains inbox[1-parity] - exactly the previous
	// window's sends - at the start of the next window. Both buffers
	// keep their capacity across windows.
	mu    [2]sync.Mutex
	inbox [2][]crossEvent

	outSeq uint64

	// prevExec is the engine's executed count at the last window
	// barrier, maintained serially by observeWindow for the idle metric.
	prevExec uint64
}

// crossEvent is one mailbox entry. (at, src, seq) is a total order: seq is
// unique per source and sources are distinct, so the barrier merge is
// deterministic no matter how the window's execution interleaved.
type crossEvent struct {
	at  time.Duration
	src int
	seq uint64
	fn  func()
}

// ID returns the shard's index within its cluster.
func (s *Shard) ID() int { return s.id }

// Cluster returns the owning cluster.
func (s *Shard) Cluster() *Cluster { return s.cluster }

// Send schedules fn on dst's engine delay after the current shard-local
// time. A same-shard send degenerates to a plain Schedule. Cross-shard
// sends require a declared lookahead and a delay of at least that
// lookahead - the conservative-synchronization invariant that keeps every
// delivery inside a strictly later window.
func (s *Shard) Send(dst *Shard, delay time.Duration, fn func()) {
	if dst == s {
		s.Engine.Schedule(delay, fn)
		return
	}
	if dst.cluster != s.cluster {
		panic("sim: cross-shard send between different clusters")
	}
	la := s.cluster.lookahead
	if la <= 0 {
		panic("sim: cross-shard send without a declared lookahead")
	}
	if delay < la {
		panic(fmt.Sprintf("sim: cross-shard delay %v below lookahead %v", delay, la))
	}
	s.outSeq++
	ev := crossEvent{at: s.Engine.Now() + delay, src: s.id, seq: s.outSeq, fn: fn}
	par := s.cluster.parity
	dst.mu[par].Lock()
	dst.inbox[par] = append(dst.inbox[par], ev)
	dst.mu[par].Unlock()
}

// drainInbox merges the cross-shard events the previous window sent this
// shard into its local queue. Sorting by (arrival, source shard, source
// sequence) before scheduling fixes the local tie-break sequence numbers,
// making the merge independent of how senders' appends interleaved. The
// buffer is resliced, not reallocated, so steady-state traffic reuses
// last window's capacity.
func (d *Shard) drainInbox() {
	par := d.cluster.parity ^ 1
	in := d.inbox[par]
	if len(in) == 0 {
		return
	}
	mCrossEvents.Add(uint64(len(in)))
	mMailboxMax.Observe(int64(len(in)))
	slices.SortFunc(in, func(a, b crossEvent) int {
		if a.at != b.at {
			if a.at < b.at {
				return -1
			}
			return 1
		}
		if a.src != b.src {
			return a.src - b.src
		}
		if a.seq < b.seq {
			return -1
		}
		return 1
	})
	for i := range in {
		d.Engine.At(in[i].at, in[i].fn)
		in[i].fn = nil
	}
	d.inbox[par] = in[:0]
}
