package lte

import (
	"time"

	"pbecc/internal/netsim"
	"pbecc/internal/phy"
	"pbecc/internal/sim"
)

// Carrier-aggregation policy constants, calibrated to the dynamics of the
// paper's Figure 2 (secondary cell activated about 130 ms after a
// high-rate flow starts; deactivated a few hundred ms after load drops).
const (
	caDecisionWindow  = 100 // subframes observed before activation
	caActivateFrac    = 0.8 // fraction of window that must show demand
	caOccupancyFrac   = 0.6 // user share of active-cell PRBs that signals demand
	caBacklogBits     = 12000
	caActivateHoldoff = 150 * time.Millisecond
	caDeactWindow     = 500 // subframes for the deactivation decision
	caDeactFrac       = 0.6 // load must fit in this fraction of n-1 cells
	caDeactHoldoff    = 500 * time.Millisecond
)

// UE is one mobile device: it dispatches arriving downlink packets across
// its active component carriers, reorders HARQ-delayed transport blocks
// per cell, releases packets in order to per-flow receivers, and runs the
// network side's carrier (de)activation policy.
type UE struct {
	eng  *sim.Engine
	ID   int
	RNTI uint16

	cells    []*Cell
	channels []*phy.Channel
	active   int
	pool     *netsim.PacketPool

	flows       map[int]netsim.Handler
	defaultFlow netsim.Handler

	reorder map[int]*reorderState

	onActiveChange []func(active []*Cell)

	// CA decision state.
	caEnabled    bool
	demandRing   []bool
	demandIdx    int
	demandFill   int
	servedRing   []int
	servedIdx    int
	servedFill   int
	servedSum    int64
	lastCAChange time.Duration
	ticker       *sim.Ticker

	// Counters.
	LostPackets   uint64
	Delivered     uint64
	Activations   uint64
	Deactivations uint64
}

type reorderState struct {
	next    uint64
	pending map[uint64]tbArrival
}

type tbArrival struct {
	packets []*netsim.Packet
	ok      bool
}

// NewUE creates a UE; add component carriers with AddCell (primary first),
// then Start.
func NewUE(eng *sim.Engine, id int, rnti uint16) *UE {
	return &UE{
		eng:        eng,
		ID:         id,
		RNTI:       rnti,
		pool:       netsim.PoolOf(eng),
		flows:      make(map[int]netsim.Handler),
		reorder:    make(map[int]*reorderState),
		caEnabled:  true,
		demandRing: make([]bool, caDecisionWindow),
		servedRing: make([]int, caDeactWindow),
	}
}

// AddCell configures a component carrier; the first call sets the primary
// cell. The UE attaches to the cell immediately, but packets are only
// dispatched to active carriers.
func (u *UE) AddCell(c *Cell, ch *phy.Channel) {
	if c.eng != u.eng {
		// Cells and their users share one event engine; in sharded runs a
		// UE spanning shards would race its own carriers. Only netsim
		// links may cross a shard boundary.
		panic("lte: UE and cell live on different engines (shard boundary)")
	}
	c.AttachUser(u, u.RNTI, ch)
	u.cells = append(u.cells, c)
	u.channels = append(u.channels, ch)
	u.reorder[c.ID] = &reorderState{pending: make(map[uint64]tbArrival)}
	if u.active == 0 {
		u.active = 1
	}
}

// SetCarrierAggregation enables or disables secondary-cell activation
// (disabled models a device like the paper's Redmi 8 with one carrier).
func (u *UE) SetCarrierAggregation(on bool) { u.caEnabled = on }

// Start begins the UE's per-subframe carrier-aggregation bookkeeping.
func (u *UE) Start() {
	if u.ticker != nil {
		return
	}
	u.ticker = u.eng.Every(time.Millisecond, u.tick)
}

// Stop halts the UE's ticker.
func (u *UE) Stop() {
	if u.ticker != nil {
		u.ticker.Stop()
		u.ticker = nil
	}
}

// ActiveCells returns the currently active component carriers, primary
// first. The returned slice must not be modified.
func (u *UE) ActiveCells() []*Cell { return u.cells[:u.active] }

// OnActiveChange registers a callback fired whenever the active carrier
// set changes (PBE-CC's monitor restarts its fair-share ramp on this
// event, §4.1).
func (u *UE) OnActiveChange(fn func(active []*Cell)) {
	u.onActiveChange = append(u.onActiveChange, fn)
}

// RegisterFlow routes released packets with the given flow ID to h.
func (u *UE) RegisterFlow(flowID int, h netsim.Handler) { u.flows[flowID] = h }

// SetDefaultHandler routes packets of unregistered flows.
func (u *UE) SetDefaultHandler(h netsim.Handler) { u.defaultFlow = h }

// HandlePacket dispatches an arriving downlink packet to the active cell
// with the smallest estimated drain time, implementing the network's
// bearer split across aggregated carriers.
func (u *UE) HandlePacket(now time.Duration, p *netsim.Packet) {
	best := -1
	bestDrain := 0.0
	for i := 0; i < u.active; i++ {
		c := u.cells[i]
		rate := c.UserRate(u.RNTI) * float64(c.NPRB) // bits per subframe if alone
		if rate <= 0 {
			continue
		}
		drain := float64(c.UserQueueBits(u.RNTI)) / rate
		if best < 0 || drain < bestDrain {
			best, bestDrain = i, drain
		}
	}
	if best < 0 {
		best = 0
	}
	u.cells[best].Enqueue(u.RNTI, p)
}

// deliverTB receives one transport block's completed packets from a cell
// (ok=false marks a block lost after exhausting HARQ retransmissions) and
// releases packets in per-cell order, modeling the reordering buffer of
// Figure 3.
func (u *UE) deliverTB(cellID int, seq uint64, packets []*netsim.Packet, ok bool) {
	st := u.reorder[cellID]
	if st == nil {
		return
	}
	st.pending[seq] = tbArrival{packets: packets, ok: ok}
	for {
		a, exists := st.pending[st.next]
		if !exists {
			return
		}
		delete(st.pending, st.next)
		st.next++
		for _, p := range a.packets {
			if !a.ok {
				// Lost after exhausting HARQ: the packets never reach a
				// flow handler, so the reorder buffer is their last owner.
				u.LostPackets++
				u.pool.Release(p)
				continue
			}
			u.Delivered++
			u.route(p)
		}
	}
}

func (u *UE) route(p *netsim.Packet) {
	h := u.flows[p.FlowID]
	if h == nil {
		h = u.defaultFlow
	}
	if h != nil {
		h.HandlePacket(u.eng.Now(), p)
		return
	}
	u.pool.Release(p) // no handler: dropped at the UE
}

// tick runs once per subframe after the cells have scheduled, sampling
// demand and served load for the carrier-aggregation policy.
func (u *UE) tick() {
	queued := 0
	userPRBs := 0
	totalPRBs := 0
	served := 0
	for i := 0; i < u.active; i++ {
		c := u.cells[i]
		queued += c.UserQueueBits(u.RNTI)
		userPRBs += c.LastUserPRBs(u.RNTI)
		totalPRBs += c.NPRB
		served += c.LastUserServedBits(u.RNTI)
	}
	demand := queued >= caBacklogBits ||
		float64(userPRBs) >= caOccupancyFrac*float64(totalPRBs)
	u.demandRing[u.demandIdx] = demand
	u.demandIdx = (u.demandIdx + 1) % len(u.demandRing)
	if u.demandFill < len(u.demandRing) {
		u.demandFill++
	}
	u.servedSum += int64(served) - int64(u.servedRing[u.servedIdx])
	u.servedRing[u.servedIdx] = served
	u.servedIdx = (u.servedIdx + 1) % len(u.servedRing)
	if u.servedFill < len(u.servedRing) {
		u.servedFill++
	}
	if !u.caEnabled {
		return
	}
	now := u.eng.Now()

	// Activation: sustained demand over the decision window.
	if u.active < len(u.cells) && u.demandFill == len(u.demandRing) &&
		now-u.lastCAChange >= caActivateHoldoff {
		cnt := 0
		for _, d := range u.demandRing {
			if d {
				cnt++
			}
		}
		if float64(cnt) >= caActivateFrac*float64(len(u.demandRing)) {
			u.active++
			u.Activations++
			u.lastCAChange = now
			u.resetCAWindows()
			u.notifyActiveChange()
			return
		}
	}

	// Deactivation: the served load of the last window would fit
	// comfortably in the active cells minus the last one.
	if u.active > 1 && u.servedFill == len(u.servedRing) &&
		now-u.lastCAChange >= caDeactHoldoff {
		var capMinusLast float64
		for i := 0; i < u.active-1; i++ {
			c := u.cells[i]
			capMinusLast += c.UserRate(u.RNTI) * float64(c.NPRB) * float64(len(u.servedRing))
		}
		if float64(u.servedSum) <= caDeactFrac*capMinusLast {
			u.active--
			u.Deactivations++
			u.lastCAChange = now
			u.resetCAWindows()
			u.notifyActiveChange()
		}
	}
}

func (u *UE) resetCAWindows() {
	for i := range u.demandRing {
		u.demandRing[i] = false
	}
	u.demandFill = 0
	for i := range u.servedRing {
		u.servedRing[i] = 0
	}
	u.servedSum = 0
	u.servedFill = 0
}

func (u *UE) notifyActiveChange() {
	act := u.ActiveCells()
	for _, fn := range u.onActiveChange {
		fn(act)
	}
}
