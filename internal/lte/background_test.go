package lte

import (
	"testing"
	"time"

	"pbecc/internal/phy"
	"pbecc/internal/sim"
)

// stubBG demands a fixed backlog every slot and records what the cell
// grants it.
type stubBG struct {
	bits   int
	served int
}

func (s *stubBG) Demand(now time.Duration) []BackgroundDemand {
	if s.bits <= 0 {
		return nil
	}
	return []BackgroundDemand{{
		RNTI: 900,
		MCS:  phy.MCS{CQI: 11, Table: phy.Table64QAM, Streams: 1},
		Bits: s.bits,
	}}
}

func (s *stubBG) Serve(i int, bits int) { s.served += bits }

// TestBackgroundAppearsInReports: a virtual background user must show up
// on the control channel exactly like a packet user - a data grant under
// its own RNTI and MCS - and be served through the Serve callback, with
// no packet ever delivered.
func TestBackgroundAppearsInReports(t *testing.T) {
	eng := sim.New(1)
	cell := NewCell(eng, 1, 100, phy.Table64QAM, nil)
	bg := &stubBG{bits: 1 << 30}
	cell.SetBackground(bg)
	bgPRBs, bgAllocs := 0, 0
	cell.AttachMonitor(func(rep *SubframeReport) {
		for _, a := range rep.Allocs {
			if a.RNTI != 900 {
				continue
			}
			bgAllocs++
			bgPRBs += a.PRBs
			if !a.NDI || a.Control {
				t.Fatalf("background alloc must look like a fresh data grant: %+v", a)
			}
			if a.TBBits <= 0 || a.PRBs <= 0 {
				t.Fatalf("empty background grant: %+v", a)
			}
		}
	})
	eng.RunUntil(40 * time.Millisecond)
	// Alone on the cell with unbounded demand: every subframe grants it
	// the full 100 PRBs.
	if bgAllocs != 40 || bgPRBs != 40*100 {
		t.Fatalf("background got %d allocs / %d PRBs in 40 subframes, want 40 / 4000", bgAllocs, bgPRBs)
	}
	if cell.FluidPRBs != uint64(bgPRBs) {
		t.Fatalf("FluidPRBs = %d, want %d", cell.FluidPRBs, bgPRBs)
	}
	if bg.served <= 0 {
		t.Fatal("Serve was never called")
	}
}

// TestBackgroundSharesWaterFill: a backlogged packet user and a
// backlogged virtual user split the cell like two packet users would.
func TestBackgroundSharesWaterFill(t *testing.T) {
	eng := sim.New(1)
	ue, cell, _ := newTestUE(eng, 100, -85)
	bg := &stubBG{bits: 1 << 30}
	cell.SetBackground(bg)
	fillQueue(ue, 10000)
	uePRBs, bgPRBs := 0, 0
	cell.AttachMonitor(func(rep *SubframeReport) {
		for _, a := range rep.Allocs {
			switch a.RNTI {
			case 61:
				uePRBs += a.PRBs
			case 900:
				bgPRBs += a.PRBs
			}
		}
	})
	eng.RunUntil(100 * time.Millisecond)
	if uePRBs == 0 || bgPRBs == 0 {
		t.Fatalf("starved: ue=%d bg=%d PRBs", uePRBs, bgPRBs)
	}
	ratio := float64(uePRBs) / float64(bgPRBs)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("PRB split ue/bg = %d/%d (ratio %.2f), want roughly even", uePRBs, bgPRBs, ratio)
	}
}

// TestNilBackgroundUnchanged: with no source attached the scheduler path
// must not touch the fluid hook at all.
func TestNilBackgroundUnchanged(t *testing.T) {
	eng := sim.New(1)
	cell := NewCell(eng, 1, 100, phy.Table64QAM, nil)
	eng.RunUntil(10 * time.Millisecond)
	if cell.FluidPRBs != 0 {
		t.Fatalf("FluidPRBs = %d on a cell with no background source", cell.FluidPRBs)
	}
}
