package lte

import (
	"math/rand"
	"time"

	"pbecc/internal/netsim"
	"pbecc/internal/phy"
	"pbecc/internal/sim"
)

// HARQ parameters of FDD LTE (§3 of the paper): an erroneous transport
// block is retransmitted eight subframes after the original transmission,
// at most three times.
const (
	HARQDelaySubframes = 8
	MaxRetransmissions = 3
)

// DefaultPerUserQueueBytes is the default cap on one user's downlink
// queue at a cell, modeling the finite RLC buffer of deployed base
// stations (roughly 250 ms at 50 Mbit/s). Loss-based senders fill it and
// see drops, as on real cells.
const DefaultPerUserQueueBytes = 1_500_000

// ControlGrant is a small allocation made to a user that is exchanging
// control-plane traffic (parameter updates, timers, security) rather than
// data - the population the paper's Figure 7 measures and PBE-CC filters.
type ControlGrant struct {
	RNTI uint16
	RBGs int
}

// ControlSource produces the control-plane grants of each subframe.
// Implementations keep their own state across subframes; package trace
// provides a population calibrated to Figure 7.
type ControlSource interface {
	Tick(subframe int, rng *rand.Rand) []ControlGrant
}

// Cell is one component carrier: a base station scheduler with per-user
// queues, HARQ, and control-channel emission.
type Cell struct {
	eng *sim.Engine

	ID    int
	NPRB  int
	Table phy.CQITable

	control    ControlSource
	background BackgroundSource
	users      []*cellUser
	byRNTI     map[uint16]*cellUser
	monitors   []Monitor

	subframe    int
	pendingRetx map[int][]*transportBlock
	rng         *rand.Rand
	ticker      *sim.Ticker

	nRBG    int
	rbgSize int

	// PerUserQueueBytes caps each user's downlink queue; packets beyond
	// it are dropped at enqueue (drop-tail). Zero means unbounded.
	PerUserQueueBytes int

	// ErrorModel, when non-nil, replaces random transport-block error
	// sampling: it is called per transmission attempt and returns whether
	// the block was received in error. Used by tests and the Figure 3
	// experiment to inject deterministic errors.
	ErrorModel func(rnti uint16, tbSeq uint64, attempt int, bits int, ber float64) bool

	// Counters for evaluation (Figure 6a and others).
	TotalTBs     uint64
	ErrorTBs     uint64
	LostTBs      uint64
	DataPRBs     uint64
	RetxPRBs     uint64
	ControlPRBs  uint64
	FluidPRBs    uint64 // PRBs granted to fluid background users
	QueueDropped uint64
}

type cellUser struct {
	rnti uint16
	ue   *UE
	ch   *phy.Channel

	queue      []*netsim.Packet
	headSent   int // bytes of queue[0] already carried in earlier TBs
	queuedBits int
	nextTB     uint64

	// Per-subframe scratch, read back by the UE's carrier-aggregation
	// manager after the cell ticks.
	lastPRBs       int
	lastServedBits int
}

type transportBlock struct {
	user      *cellUser
	seq       uint64
	rbgs      int
	prbs      int
	bits      int // allocated size (drives the error probability)
	completed []*netsim.Packet
	attempts  int
	mcs       phy.MCS
}

// NewCell creates a cell and starts its subframe ticker on the engine.
// control may be nil for a cell without control-plane chatter.
func NewCell(eng *sim.Engine, id, nprb int, table phy.CQITable, control ControlSource) *Cell {
	c := &Cell{
		eng:         eng,
		ID:          id,
		NPRB:        nprb,
		Table:       table,
		control:     control,
		byRNTI:      make(map[uint16]*cellUser),
		pendingRetx: make(map[int][]*transportBlock),
		rng:         eng.Rand(),
	}
	c.PerUserQueueBytes = DefaultPerUserQueueBytes
	c.rbgSize = rbgSizeFor(nprb)
	c.nRBG = (nprb + c.rbgSize - 1) / c.rbgSize
	c.ticker = eng.Every(time.Millisecond, c.tick)
	return c
}

func rbgSizeFor(nprb int) int {
	switch {
	case nprb <= 10:
		return 1
	case nprb <= 26:
		return 2
	case nprb <= 63:
		return 3
	default:
		return 4
	}
}

// Stop halts the cell's subframe ticker.
func (c *Cell) Stop() { c.ticker.Stop() }

// Subframe returns the index of the last processed subframe.
func (c *Cell) Subframe() int { return c.subframe }

// AttachMonitor registers a control-channel monitor; monitors run in
// registration order after each subframe is scheduled.
func (c *Cell) AttachMonitor(m Monitor) { c.monitors = append(c.monitors, m) }

// AttachUser connects a UE to this cell under the given RNTI with the
// given radio channel.
func (c *Cell) AttachUser(ue *UE, rnti uint16, ch *phy.Channel) {
	if _, dup := c.byRNTI[rnti]; dup {
		panic("lte: duplicate RNTI on cell")
	}
	u := &cellUser{rnti: rnti, ue: ue, ch: ch}
	c.users = append(c.users, u)
	c.byRNTI[rnti] = u
}

// DetachUser removes a user; queued packets are dropped.
func (c *Cell) DetachUser(rnti uint16) {
	u, ok := c.byRNTI[rnti]
	if !ok {
		return
	}
	delete(c.byRNTI, rnti)
	for i, v := range c.users {
		if v == u {
			c.users = append(c.users[:i], c.users[i+1:]...)
			break
		}
	}
}

// Enqueue adds a downlink packet to the user's queue at this cell. It
// reports false if the RNTI is not attached.
func (c *Cell) Enqueue(rnti uint16, p *netsim.Packet) bool {
	u, ok := c.byRNTI[rnti]
	if !ok {
		return false
	}
	if c.PerUserQueueBytes > 0 && u.queuedBits/8+p.Size > c.PerUserQueueBytes {
		c.QueueDropped++
		return false
	}
	u.queue = append(u.queue, p)
	u.queuedBits += p.Size * 8
	return true
}

// UserQueueBits returns the bits waiting in a user's queue.
func (c *Cell) UserQueueBits(rnti uint16) int {
	if u, ok := c.byRNTI[rnti]; ok {
		return u.queuedBits
	}
	return 0
}

// UserRate returns the user's current physical rate in bits per PRB.
func (c *Cell) UserRate(rnti uint16) float64 {
	if u, ok := c.byRNTI[rnti]; ok {
		return u.ch.MCS().BitsPerPRB()
	}
	return 0
}

// LastUserPRBs returns the PRBs granted to the user in the last subframe.
func (c *Cell) LastUserPRBs(rnti uint16) int {
	if u, ok := c.byRNTI[rnti]; ok {
		return u.lastPRBs
	}
	return 0
}

// LastUserServedBits returns the payload bits served to the user in the
// last subframe.
func (c *Cell) LastUserServedBits(rnti uint16) int {
	if u, ok := c.byRNTI[rnti]; ok {
		return u.lastServedBits
	}
	return 0
}

// prbsInRBGSpan counts PRBs in RBGs [first, first+n).
func (c *Cell) prbsInRBGSpan(first, n int) int {
	if n <= 0 {
		return 0
	}
	prbs := n * c.rbgSize
	if first+n == c.nRBG {
		if rem := c.NPRB % c.rbgSize; rem != 0 {
			prbs -= c.rbgSize - rem
		}
	}
	return prbs
}

// tick runs one subframe: advance channels, serve control users, serve
// HARQ retransmissions, water-fill the remaining RBGs over backlogged
// users, sample transport-block errors, and publish the control channel.
func (c *Cell) tick() {
	now := c.eng.Now()
	c.subframe++
	for _, u := range c.users {
		u.ch.Step(now, time.Millisecond)
		u.lastPRBs = 0
		u.lastServedBits = 0
	}

	rep := &SubframeReport{CellID: c.ID, Subframe: c.subframe, NPRB: c.NPRB}
	rbgLeft := c.nRBG
	cursor := 0

	// 1. Control-plane users occupy a few RBGs first.
	if c.control != nil {
		for _, g := range c.control.Tick(c.subframe, c.rng) {
			n := g.RBGs
			if n > rbgLeft {
				n = rbgLeft
			}
			if n == 0 {
				break
			}
			prbs := c.prbsInRBGSpan(cursor, n)
			mcs := phy.MCS{CQI: 5, Table: c.Table, Streams: 1}
			rep.Allocs = append(rep.Allocs, Alloc{
				RNTI: g.RNTI, FirstRBG: cursor, NumRBGs: n, PRBs: prbs,
				MCS: mcs, TBBits: int(float64(prbs) * mcs.BitsPerPRB()),
				NDI: true, Control: true,
			})
			c.ControlPRBs += uint64(prbs)
			cursor += n
			rbgLeft -= n
		}
	}

	// 2. HARQ retransmissions scheduled for this subframe.
	if due := c.pendingRetx[c.subframe]; len(due) > 0 {
		delete(c.pendingRetx, c.subframe)
		for i, tb := range due {
			if _, attached := c.byRNTI[tb.user.rnti]; !attached {
				continue
			}
			if tb.rbgs > rbgLeft {
				// Control region exhausted: postpone the rest by one
				// subframe.
				c.pendingRetx[c.subframe+1] = append(c.pendingRetx[c.subframe+1], due[i:]...)
				break
			}
			prbs := c.prbsInRBGSpan(cursor, tb.rbgs)
			rep.Allocs = append(rep.Allocs, Alloc{
				RNTI: tb.user.rnti, FirstRBG: cursor, NumRBGs: tb.rbgs, PRBs: prbs,
				MCS: tb.mcs, TBBits: tb.bits, NDI: false,
			})
			c.RetxPRBs += uint64(prbs)
			tb.user.lastPRBs += prbs
			cursor += tb.rbgs
			rbgLeft -= tb.rbgs
			c.transmit(tb)
		}
	}

	// 3. Water-fill the remaining RBGs over backlogged data users. Fluid
	// background users (virtual aggregate sessions, see SetBackground)
	// join the same water-fill after the packet users, so both tiers
	// share capacity under one fairness policy.
	var blUsers []*cellUser
	var wants []int
	for _, u := range c.users {
		if u.queuedBits <= 0 || !u.ch.MCS().Valid() {
			continue
		}
		perRBG := u.ch.MCS().BitsPerPRB() * float64(c.rbgSize)
		w := int(float64(u.queuedBits)/perRBG) + 1
		blUsers = append(blUsers, u)
		wants = append(wants, w)
	}
	var bg []BackgroundDemand
	if c.background != nil {
		bg = c.background.Demand(now)
		for i := range bg {
			perRBG := bg[i].MCS.BitsPerPRB() * float64(c.rbgSize)
			wants = append(wants, int(float64(bg[i].Bits)/perRBG)+1)
		}
	}
	grants := WaterFill(wants, rbgLeft, c.subframe)
	for i, u := range blUsers {
		n := grants[i]
		if n == 0 {
			continue
		}
		prbs := c.prbsInRBGSpan(cursor, n)
		mcs := u.ch.MCS()
		bits := int(float64(prbs) * mcs.BitsPerPRB())
		tb := c.buildTB(u, n, prbs, bits, mcs)
		rep.Allocs = append(rep.Allocs, Alloc{
			RNTI: u.rnti, FirstRBG: cursor, NumRBGs: n, PRBs: prbs,
			MCS: mcs, TBBits: bits, NDI: true,
		})
		c.DataPRBs += uint64(prbs)
		u.lastPRBs += prbs
		cursor += n
		rbgLeft -= n
		c.transmit(tb)
	}
	for i := range bg {
		n := grants[len(blUsers)+i]
		if n == 0 {
			continue
		}
		prbs := c.prbsInRBGSpan(cursor, n)
		bits := int(float64(prbs) * bg[i].MCS.BitsPerPRB())
		rep.Allocs = append(rep.Allocs, Alloc{
			RNTI: bg[i].RNTI, FirstRBG: cursor, NumRBGs: n, PRBs: prbs,
			MCS: bg[i].MCS, TBBits: bits, NDI: true,
		})
		c.FluidPRBs += uint64(prbs)
		cursor += n
		rbgLeft -= n
		c.background.Serve(i, bits)
	}

	for _, m := range c.monitors {
		m(rep)
	}
}

// buildTB drains up to the allocated bits from the user's queue into a new
// transport block.
func (c *Cell) buildTB(u *cellUser, rbgs, prbs, bits int, mcs phy.MCS) *transportBlock {
	tb := &transportBlock{user: u, seq: u.nextTB, rbgs: rbgs, prbs: prbs, bits: bits, mcs: mcs}
	u.nextTB++
	capBytes := bits / 8
	served := 0
	for capBytes > 0 && len(u.queue) > 0 {
		head := u.queue[0]
		rem := head.Size - u.headSent
		take := rem
		if take > capBytes {
			take = capBytes
		}
		u.headSent += take
		capBytes -= take
		served += take
		if u.headSent == head.Size {
			tb.completed = append(tb.completed, head)
			u.queue = u.queue[1:]
			u.headSent = 0
		}
	}
	u.queuedBits -= served * 8
	u.lastServedBits += served * 8
	return tb
}

// transmit samples the block error process for one attempt and schedules
// either in-order delivery at the next subframe boundary or a HARQ
// retransmission eight subframes later. After the maximum number of
// retransmissions the block is declared lost and the receiver's reordering
// buffer is released (its packets never arrive).
func (c *Cell) transmit(tb *transportBlock) {
	c.TotalTBs++
	ue := tb.user.ue
	var errored bool
	if c.ErrorModel != nil {
		errored = c.ErrorModel(tb.user.rnti, tb.seq, tb.attempts, tb.bits, tb.user.ch.BER())
	} else {
		errored = c.rng.Float64() < phy.TBErrorRate(tb.user.ch.BER(), tb.bits)
	}
	if !errored {
		c.eng.Schedule(time.Millisecond, func() {
			ue.deliverTB(c.ID, tb.seq, tb.completed, true)
		})
		return
	}
	c.ErrorTBs++
	tb.attempts++
	if tb.attempts > MaxRetransmissions {
		c.LostTBs++
		c.eng.Schedule(time.Millisecond, func() {
			ue.deliverTB(c.ID, tb.seq, tb.completed, false)
		})
		return
	}
	retxAt := c.subframe + HARQDelaySubframes
	c.pendingRetx[retxAt] = append(c.pendingRetx[retxAt], tb)
}

// WaterFill distributes capacity RBGs over users with the given demands,
// equalizing shares: users wanting less than the fair share are satisfied
// in full and the surplus is redistributed. Leftover odd RBGs rotate with
// the subframe (or NR slot) index so no user position is systematically
// favored. The NR scheduler in internal/nr shares this policy.
func WaterFill(wants []int, capacity, rotate int) []int {
	grants := make([]int, len(wants))
	unsat := make([]int, 0, len(wants))
	for i, w := range wants {
		if w > 0 {
			unsat = append(unsat, i)
		}
	}
	for capacity > 0 && len(unsat) > 0 {
		share := capacity / len(unsat)
		if share == 0 {
			// Fewer RBGs than users: hand out one each, rotating.
			off := rotate % len(unsat)
			for k := 0; k < capacity; k++ {
				grants[unsat[(off+k)%len(unsat)]]++
			}
			capacity = 0
			break
		}
		progress := false
		next := unsat[:0]
		for _, i := range unsat {
			need := wants[i] - grants[i]
			if need <= share {
				grants[i] = wants[i]
				capacity -= need
				progress = true
			} else {
				next = append(next, i)
			}
		}
		unsat = next
		if !progress {
			// Everyone needs more than the share: grant the share and
			// rotate the remainder.
			for _, i := range unsat {
				grants[i] += share
				capacity -= share
			}
			off := rotate % len(unsat)
			for k := 0; k < capacity; k++ {
				grants[unsat[(off+k)%len(unsat)]]++
			}
			capacity = 0
			break
		}
	}
	return grants
}
