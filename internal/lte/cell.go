package lte

import (
	"math/rand"
	"time"

	"pbecc/internal/netsim"
	"pbecc/internal/phy"
	"pbecc/internal/sim"
)

// HARQ parameters of FDD LTE (§3 of the paper): an erroneous transport
// block is retransmitted eight subframes after the original transmission,
// at most three times.
const (
	HARQDelaySubframes = 8
	MaxRetransmissions = 3
)

// DefaultPerUserQueueBytes is the default cap on one user's downlink
// queue at a cell, modeling the finite RLC buffer of deployed base
// stations (roughly 250 ms at 50 Mbit/s). Loss-based senders fill it and
// see drops, as on real cells.
const DefaultPerUserQueueBytes = 1_500_000

// ControlGrant is a small allocation made to a user that is exchanging
// control-plane traffic (parameter updates, timers, security) rather than
// data - the population the paper's Figure 7 measures and PBE-CC filters.
type ControlGrant struct {
	RNTI uint16
	RBGs int
}

// ControlSource produces the control-plane grants of each subframe.
// Implementations keep their own state across subframes; package trace
// provides a population calibrated to Figure 7.
type ControlSource interface {
	Tick(subframe int, rng *rand.Rand) []ControlGrant
}

// Cell is one component carrier: a base station scheduler with per-user
// queues, HARQ, and control-channel emission.
type Cell struct {
	eng *sim.Engine

	ID    int
	NPRB  int
	Table phy.CQITable

	control    ControlSource
	background BackgroundSource
	users      []*cellUser
	byRNTI     map[uint16]*cellUser
	monitors   []Monitor

	subframe    int
	pendingRetx map[int][]*transportBlock
	rng         *rand.Rand
	ticker      *sim.Ticker
	pool        *netsim.PacketPool

	nRBG    int
	rbgSize int

	// Per-subframe scratch, reused across ticks (DESIGN.md section 12):
	// one SubframeReport per cell whose Allocs slice is resliced each
	// subframe (monitor consumers copy what they keep), the water-fill
	// inputs, and a transport-block free list. deliveries is the
	// coalesced TB-delivery queue: instead of one event per transport
	// block, the cell schedules a single pre-bound delivery event per
	// subframe that drains the queue in transmit order at the next
	// subframe boundary.
	rep          *SubframeReport
	blUsers      []*cellUser
	wants        []int
	wf           WaterFiller
	tbFree       []*transportBlock
	deliveries   []tbDelivery
	deliverArmed bool
	deliverFn    func()

	// PerUserQueueBytes caps each user's downlink queue; packets beyond
	// it are dropped at enqueue (drop-tail). Zero means unbounded.
	PerUserQueueBytes int

	// ErrorModel, when non-nil, replaces random transport-block error
	// sampling: it is called per transmission attempt and returns whether
	// the block was received in error. Used by tests and the Figure 3
	// experiment to inject deterministic errors.
	ErrorModel func(rnti uint16, tbSeq uint64, attempt int, bits int, ber float64) bool

	// Counters for evaluation (Figure 6a and others).
	TotalTBs     uint64
	ErrorTBs     uint64
	LostTBs      uint64
	DataPRBs     uint64
	RetxPRBs     uint64
	ControlPRBs  uint64
	FluidPRBs    uint64 // PRBs granted to fluid background users
	QueueDropped uint64
}

type cellUser struct {
	rnti uint16
	ue   *UE
	ch   *phy.Channel

	// queue is the user's downlink queue, indexed from qHead (head-index
	// dequeue with amortized compaction, retained capacity).
	queue      []*netsim.Packet
	qHead      int
	headSent   int // bytes of the head packet already carried in earlier TBs
	queuedBits int
	nextTB     uint64

	// Per-subframe scratch, read back by the UE's carrier-aggregation
	// manager after the cell ticks.
	lastPRBs       int
	lastServedBits int
}

type transportBlock struct {
	user      *cellUser
	seq       uint64
	rbgs      int
	prbs      int
	bits      int // allocated size (drives the error probability)
	completed []*netsim.Packet
	attempts  int
	mcs       phy.MCS
}

// tbDelivery is one entry of the cell's coalesced delivery queue: the
// transport block's outcome, decoupled from the (recycled) block struct.
// The packets slice transfers to the UE's reorder buffer.
type tbDelivery struct {
	ue   *UE
	seq  uint64
	pkts []*netsim.Packet
	ok   bool
}

// NewCell creates a cell and starts its subframe ticker on the engine.
// control may be nil for a cell without control-plane chatter.
func NewCell(eng *sim.Engine, id, nprb int, table phy.CQITable, control ControlSource) *Cell {
	c := &Cell{
		eng:         eng,
		ID:          id,
		NPRB:        nprb,
		Table:       table,
		control:     control,
		byRNTI:      make(map[uint16]*cellUser),
		pendingRetx: make(map[int][]*transportBlock),
		rng:         eng.Rand(),
	}
	c.PerUserQueueBytes = DefaultPerUserQueueBytes
	c.rbgSize = rbgSizeFor(nprb)
	c.nRBG = (nprb + c.rbgSize - 1) / c.rbgSize
	c.pool = netsim.PoolOf(eng)
	c.rep = &SubframeReport{CellID: id, NPRB: nprb}
	c.deliverFn = c.deliverPending
	c.ticker = eng.Every(time.Millisecond, c.tick)
	return c
}

func rbgSizeFor(nprb int) int {
	switch {
	case nprb <= 10:
		return 1
	case nprb <= 26:
		return 2
	case nprb <= 63:
		return 3
	default:
		return 4
	}
}

// Stop halts the cell's subframe ticker.
func (c *Cell) Stop() { c.ticker.Stop() }

// Subframe returns the index of the last processed subframe.
func (c *Cell) Subframe() int { return c.subframe }

// AttachMonitor registers a control-channel monitor; monitors run in
// registration order after each subframe is scheduled.
func (c *Cell) AttachMonitor(m Monitor) { c.monitors = append(c.monitors, m) }

// AttachUser connects a UE to this cell under the given RNTI with the
// given radio channel.
func (c *Cell) AttachUser(ue *UE, rnti uint16, ch *phy.Channel) {
	if _, dup := c.byRNTI[rnti]; dup {
		panic("lte: duplicate RNTI on cell")
	}
	u := &cellUser{rnti: rnti, ue: ue, ch: ch}
	c.users = append(c.users, u)
	c.byRNTI[rnti] = u
}

// DetachUser removes a user; queued packets are dropped (and released:
// the cell was their last owner).
func (c *Cell) DetachUser(rnti uint16) {
	u, ok := c.byRNTI[rnti]
	if !ok {
		return
	}
	delete(c.byRNTI, rnti)
	for i, v := range c.users {
		if v == u {
			c.users = append(c.users[:i], c.users[i+1:]...)
			break
		}
	}
	c.pool.ReleaseAll(u.queue[u.qHead:])
	u.queue = u.queue[:0]
	u.qHead, u.headSent, u.queuedBits = 0, 0, 0
}

// Enqueue adds a downlink packet to the user's queue at this cell. It
// reports false if the RNTI is not attached. On either false path the
// packet is dropped - callers never retry a refused packet - so the cell
// releases it as its last owner.
func (c *Cell) Enqueue(rnti uint16, p *netsim.Packet) bool {
	u, ok := c.byRNTI[rnti]
	if !ok {
		c.pool.Release(p)
		return false
	}
	if c.PerUserQueueBytes > 0 && u.queuedBits/8+p.Size > c.PerUserQueueBytes {
		c.QueueDropped++
		c.pool.Release(p)
		return false
	}
	u.queue = append(u.queue, p)
	u.queuedBits += p.Size * 8
	return true
}

// UserQueueBits returns the bits waiting in a user's queue.
func (c *Cell) UserQueueBits(rnti uint16) int {
	if u, ok := c.byRNTI[rnti]; ok {
		return u.queuedBits
	}
	return 0
}

// UserRate returns the user's current physical rate in bits per PRB.
func (c *Cell) UserRate(rnti uint16) float64 {
	if u, ok := c.byRNTI[rnti]; ok {
		return u.ch.MCS().BitsPerPRB()
	}
	return 0
}

// LastUserPRBs returns the PRBs granted to the user in the last subframe.
func (c *Cell) LastUserPRBs(rnti uint16) int {
	if u, ok := c.byRNTI[rnti]; ok {
		return u.lastPRBs
	}
	return 0
}

// LastUserServedBits returns the payload bits served to the user in the
// last subframe.
func (c *Cell) LastUserServedBits(rnti uint16) int {
	if u, ok := c.byRNTI[rnti]; ok {
		return u.lastServedBits
	}
	return 0
}

// prbsInRBGSpan counts PRBs in RBGs [first, first+n).
func (c *Cell) prbsInRBGSpan(first, n int) int {
	if n <= 0 {
		return 0
	}
	prbs := n * c.rbgSize
	if first+n == c.nRBG {
		if rem := c.NPRB % c.rbgSize; rem != 0 {
			prbs -= c.rbgSize - rem
		}
	}
	return prbs
}

// tick runs one subframe: advance channels, serve control users, serve
// HARQ retransmissions, water-fill the remaining RBGs over backlogged
// users, sample transport-block errors, and publish the control channel.
func (c *Cell) tick() {
	now := c.eng.Now()
	c.subframe++
	for _, u := range c.users {
		u.ch.Step(now, time.Millisecond)
		u.lastPRBs = 0
		u.lastServedBits = 0
	}

	// The report struct and its Allocs slice are reused across subframes;
	// monitor consumers must copy whatever they keep past the callback
	// (core.Monitor and faults.WrapFeed both do).
	rep := c.rep
	rep.Subframe = c.subframe
	rep.Allocs = rep.Allocs[:0]
	rbgLeft := c.nRBG
	cursor := 0

	// 1. Control-plane users occupy a few RBGs first.
	if c.control != nil {
		for _, g := range c.control.Tick(c.subframe, c.rng) {
			n := g.RBGs
			if n > rbgLeft {
				n = rbgLeft
			}
			if n == 0 {
				break
			}
			prbs := c.prbsInRBGSpan(cursor, n)
			mcs := phy.MCS{CQI: 5, Table: c.Table, Streams: 1}
			rep.Allocs = append(rep.Allocs, Alloc{
				RNTI: g.RNTI, FirstRBG: cursor, NumRBGs: n, PRBs: prbs,
				MCS: mcs, TBBits: int(float64(prbs) * mcs.BitsPerPRB()),
				NDI: true, Control: true,
			})
			c.ControlPRBs += uint64(prbs)
			cursor += n
			rbgLeft -= n
		}
	}

	// 2. HARQ retransmissions scheduled for this subframe.
	if due := c.pendingRetx[c.subframe]; len(due) > 0 {
		delete(c.pendingRetx, c.subframe)
		for i, tb := range due {
			if _, attached := c.byRNTI[tb.user.rnti]; !attached {
				continue
			}
			if tb.rbgs > rbgLeft {
				// Control region exhausted: postpone the rest by one
				// subframe.
				c.pendingRetx[c.subframe+1] = append(c.pendingRetx[c.subframe+1], due[i:]...)
				break
			}
			prbs := c.prbsInRBGSpan(cursor, tb.rbgs)
			rep.Allocs = append(rep.Allocs, Alloc{
				RNTI: tb.user.rnti, FirstRBG: cursor, NumRBGs: tb.rbgs, PRBs: prbs,
				MCS: tb.mcs, TBBits: tb.bits, NDI: false,
			})
			c.RetxPRBs += uint64(prbs)
			tb.user.lastPRBs += prbs
			cursor += tb.rbgs
			rbgLeft -= tb.rbgs
			c.transmit(tb)
		}
	}

	// 3. Water-fill the remaining RBGs over backlogged data users. Fluid
	// background users (virtual aggregate sessions, see SetBackground)
	// join the same water-fill after the packet users, so both tiers
	// share capacity under one fairness policy.
	blUsers := c.blUsers[:0]
	wants := c.wants[:0]
	for _, u := range c.users {
		if u.queuedBits <= 0 || !u.ch.MCS().Valid() {
			continue
		}
		perRBG := u.ch.MCS().BitsPerPRB() * float64(c.rbgSize)
		w := int(float64(u.queuedBits)/perRBG) + 1
		blUsers = append(blUsers, u)
		wants = append(wants, w)
	}
	var bg []BackgroundDemand
	if c.background != nil {
		bg = c.background.Demand(now)
		for i := range bg {
			perRBG := bg[i].MCS.BitsPerPRB() * float64(c.rbgSize)
			wants = append(wants, int(float64(bg[i].Bits)/perRBG)+1)
		}
	}
	c.blUsers, c.wants = blUsers, wants
	grants := c.wf.Fill(wants, rbgLeft, c.subframe)
	for i, u := range blUsers {
		n := grants[i]
		if n == 0 {
			continue
		}
		prbs := c.prbsInRBGSpan(cursor, n)
		mcs := u.ch.MCS()
		bits := int(float64(prbs) * mcs.BitsPerPRB())
		tb := c.buildTB(u, n, prbs, bits, mcs)
		rep.Allocs = append(rep.Allocs, Alloc{
			RNTI: u.rnti, FirstRBG: cursor, NumRBGs: n, PRBs: prbs,
			MCS: mcs, TBBits: bits, NDI: true,
		})
		c.DataPRBs += uint64(prbs)
		u.lastPRBs += prbs
		cursor += n
		rbgLeft -= n
		c.transmit(tb)
	}
	for i := range bg {
		n := grants[len(blUsers)+i]
		if n == 0 {
			continue
		}
		prbs := c.prbsInRBGSpan(cursor, n)
		bits := int(float64(prbs) * bg[i].MCS.BitsPerPRB())
		rep.Allocs = append(rep.Allocs, Alloc{
			RNTI: bg[i].RNTI, FirstRBG: cursor, NumRBGs: n, PRBs: prbs,
			MCS: bg[i].MCS, TBBits: bits, NDI: true,
		})
		c.FluidPRBs += uint64(prbs)
		cursor += n
		rbgLeft -= n
		c.background.Serve(i, bits)
	}

	for _, m := range c.monitors {
		m(rep)
	}
}

// buildTB drains up to the allocated bits from the user's queue into a new
// transport block.
func (c *Cell) buildTB(u *cellUser, rbgs, prbs, bits int, mcs phy.MCS) *transportBlock {
	var tb *transportBlock
	if n := len(c.tbFree); n > 0 {
		tb = c.tbFree[n-1]
		c.tbFree[n-1] = nil
		c.tbFree = c.tbFree[:n-1]
	} else {
		tb = &transportBlock{}
	}
	tb.user, tb.seq, tb.rbgs, tb.prbs, tb.bits, tb.mcs = u, u.nextTB, rbgs, prbs, bits, mcs
	u.nextTB++
	capBytes := bits / 8
	served := 0
	for capBytes > 0 && u.qHead < len(u.queue) {
		head := u.queue[u.qHead]
		rem := head.Size - u.headSent
		take := rem
		if take > capBytes {
			take = capBytes
		}
		u.headSent += take
		capBytes -= take
		served += take
		if u.headSent == head.Size {
			tb.completed = append(tb.completed, head)
			u.queue[u.qHead] = nil
			u.qHead++
			u.headSent = 0
		}
	}
	if u.qHead == len(u.queue) {
		u.queue = u.queue[:0]
		u.qHead = 0
	} else if u.qHead > 32 && u.qHead*2 >= len(u.queue) {
		n := copy(u.queue, u.queue[u.qHead:])
		for i := n; i < len(u.queue); i++ {
			u.queue[i] = nil
		}
		u.queue = u.queue[:n]
		u.qHead = 0
	}
	u.queuedBits -= served * 8
	u.lastServedBits += served * 8
	return tb
}

// transmit samples the block error process for one attempt and schedules
// either in-order delivery at the next subframe boundary or a HARQ
// retransmission eight subframes later. After the maximum number of
// retransmissions the block is declared lost and the receiver's reordering
// buffer is released (its packets never arrive).
func (c *Cell) transmit(tb *transportBlock) {
	c.TotalTBs++
	ue := tb.user.ue
	var errored bool
	if c.ErrorModel != nil {
		errored = c.ErrorModel(tb.user.rnti, tb.seq, tb.attempts, tb.bits, tb.user.ch.BER())
	} else {
		errored = c.rng.Float64() < phy.TBErrorRate(tb.user.ch.BER(), tb.bits)
	}
	if !errored {
		c.queueDelivery(ue, tb, true)
		return
	}
	c.ErrorTBs++
	tb.attempts++
	if tb.attempts > MaxRetransmissions {
		c.LostTBs++
		c.queueDelivery(ue, tb, false)
		return
	}
	retxAt := c.subframe + HARQDelaySubframes
	c.pendingRetx[retxAt] = append(c.pendingRetx[retxAt], tb)
}

// queueDelivery appends the block's outcome to the coalesced delivery
// queue and recycles the block struct (its packets now belong to the
// queue entry, then to the UE's reorder buffer). The queue is drained by
// one pre-bound event at the next subframe boundary - scheduled on the
// first delivery of the tick, so a subframe costs one delivery event no
// matter how many blocks it carries. Order within the event equals
// transmit order, exactly the order the per-block events fired in before
// coalescing; the queue is only appended to during tick, never while
// draining.
func (c *Cell) queueDelivery(ue *UE, tb *transportBlock, ok bool) {
	c.deliveries = append(c.deliveries, tbDelivery{ue: ue, seq: tb.seq, pkts: tb.completed, ok: ok})
	if !c.deliverArmed {
		c.deliverArmed = true
		c.eng.Schedule(time.Millisecond, c.deliverFn)
	}
	*tb = transportBlock{}
	c.tbFree = append(c.tbFree, tb)
}

// deliverPending hands every queued transport-block outcome to its UE.
func (c *Cell) deliverPending() {
	c.deliverArmed = false
	ds := c.deliveries
	for i := range ds {
		d := &ds[i]
		d.ue.deliverTB(c.ID, d.seq, d.pkts, d.ok)
		*d = tbDelivery{}
	}
	c.deliveries = ds[:0]
}

// WaterFill distributes capacity RBGs over users with the given demands,
// equalizing shares: users wanting less than the fair share are satisfied
// in full and the surplus is redistributed. Leftover odd RBGs rotate with
// the subframe (or NR slot) index so no user position is systematically
// favored. The NR scheduler in internal/nr shares this policy.
//
// WaterFill allocates fresh result storage per call; schedulers on the
// per-subframe hot path hold a WaterFiller and use Fill, which reuses it.
func WaterFill(wants []int, capacity, rotate int) []int {
	var f WaterFiller
	return f.Fill(wants, capacity, rotate)
}

// WaterFiller is reusable scratch for WaterFill's policy: Fill returns a
// grants slice that stays valid until the next Fill call on the same
// WaterFiller. The zero value is ready to use.
type WaterFiller struct {
	grants []int
	unsat  []int
}

// Fill is WaterFill with retained storage; see WaterFill for the policy.
func (f *WaterFiller) Fill(wants []int, capacity, rotate int) []int {
	if cap(f.grants) < len(wants) {
		f.grants = make([]int, len(wants))
		f.unsat = make([]int, 0, len(wants))
	}
	grants := f.grants[:len(wants)]
	for i := range grants {
		grants[i] = 0
	}
	unsat := f.unsat[:0]
	for i, w := range wants {
		if w > 0 {
			unsat = append(unsat, i)
		}
	}
	f.unsat = unsat
	for capacity > 0 && len(unsat) > 0 {
		share := capacity / len(unsat)
		if share == 0 {
			// Fewer RBGs than users: hand out one each, rotating.
			off := rotate % len(unsat)
			for k := 0; k < capacity; k++ {
				grants[unsat[(off+k)%len(unsat)]]++
			}
			capacity = 0
			break
		}
		progress := false
		next := unsat[:0]
		for _, i := range unsat {
			need := wants[i] - grants[i]
			if need <= share {
				grants[i] = wants[i]
				capacity -= need
				progress = true
			} else {
				next = append(next, i)
			}
		}
		unsat = next
		if !progress {
			// Everyone needs more than the share: grant the share and
			// rotate the remainder.
			for _, i := range unsat {
				grants[i] += share
				capacity -= share
			}
			off := rotate % len(unsat)
			for k := 0; k < capacity; k++ {
				grants[unsat[(off+k)%len(unsat)]]++
			}
			capacity = 0
			break
		}
	}
	return grants
}
