// Package lte is a subframe-accurate simulator of the LTE/5G-NR MAC layer
// behaviours PBE-CC depends on: per-cell PRB scheduling with per-user
// queues, carrier aggregation with occupancy-driven secondary-cell
// activation (Figure 2 of the paper), HARQ retransmission eight
// subframes after an erroneous transport block with at most three retries,
// in-order delivery through a reordering buffer (Figure 3), and per-subframe
// emission of every user's control information, which is what the PBE-CC
// monitor decodes.
//
// It replaces the commercial cells and USRP radios of the paper's testbed;
// see DESIGN.md for the substitution argument.
package lte

import (
	"pbecc/internal/pdcch"
	"pbecc/internal/phy"
)

// Alloc describes one user's downlink grant in one subframe - the
// information content of one DCI message.
type Alloc struct {
	RNTI     uint16
	FirstRBG int
	NumRBGs  int
	PRBs     int     // PRBs covered by the RBG span
	MCS      phy.MCS // wireless physical rate of the user
	TBBits   int     // allocated transport block size
	NDI      bool    // true = new data, false = HARQ retransmission

	// Control marks grants of control-plane-only users. It is ground
	// truth for evaluation; the PBE-CC monitor must not read it (the
	// paper's monitor cannot observe it either, and filters such users
	// by activity time and PRB thresholds instead).
	Control bool
}

// SubframeReport is everything a control-channel monitor learns about one
// cell in one subframe.
type SubframeReport struct {
	CellID   int
	Subframe int
	NPRB     int
	Allocs   []Alloc
}

// AllocatedPRBs sums the PRBs granted in the subframe.
func (r *SubframeReport) AllocatedPRBs() int {
	n := 0
	for i := range r.Allocs {
		n += r.Allocs[i].PRBs
	}
	return n
}

// IdlePRBs returns the unallocated PRBs of the subframe (the paper's
// Eqn. 4 numerator contribution).
func (r *SubframeReport) IdlePRBs() int { return r.NPRB - r.AllocatedPRBs() }

// Monitor consumes per-subframe control information from one cell, the
// role of the PBE-CC client's decoder threads.
type Monitor func(rep *SubframeReport)

// EncodeReport renders a subframe report as an encoded PDCCH control
// region, so that monitors can consume control information recovered from
// coded bits rather than simulator structs. Control-plane grants become
// Format 1A, two-stream grants Format 2, and other data grants Format 1.
// The DCI MCS field carries the CQI index. It returns nil if any message
// fails to fit in the control region.
func EncodeReport(rep *SubframeReport, cfi int) *pdcch.Region {
	bw := pdcch.Bandwidth{NPRB: rep.NPRB}
	region := pdcch.NewRegion(bw, cfi, rep.Subframe)
	p := bw.RBGSize()
	for i := range rep.Allocs {
		a := &rep.Allocs[i]
		d := pdcch.DCI{RNTI: a.RNTI, MCS: uint8(a.MCS.CQI), NDI: a.NDI}
		level := 2
		switch {
		case a.Control:
			d.Format = pdcch.Format1A
			d.RIVStart = a.FirstRBG * p
			d.RIVLen = a.PRBs
		case a.MCS.Streams >= 2:
			d.Format = pdcch.Format2
			d.RBGBitmap = pdcch.ContiguousRBGBitmap(a.FirstRBG, a.NumRBGs)
			d.Precode = 1
			level = 4
		default:
			d.Format = pdcch.Format1
			d.RBGBitmap = pdcch.ContiguousRBGBitmap(a.FirstRBG, a.NumRBGs)
			level = 4
		}
		if !region.Place(&d, level) {
			return nil
		}
	}
	return region
}

// DecodeReport blind-decodes a control region back into a subframe report,
// reconstructing each user's PRB count, physical rate (from the CQI carried
// in the MCS field plus the format-implied stream count), and new-data
// indicator. The CQI table is cell configuration a real UE learns from
// system information. Grants decode in CCE order; the Control flag is not
// recoverable from the air interface and is always false.
func DecodeReport(region *pdcch.Region, cellID int, table phy.CQITable, dec *pdcch.Decoder) *SubframeReport {
	bw := region.Bandwidth
	rep := &SubframeReport{CellID: cellID, Subframe: region.Subframe, NPRB: bw.NPRB}
	for _, m := range dec.Decode(region) {
		d := m.DCI
		if d.Format == pdcch.Format0 {
			continue // uplink grant: no downlink PRBs
		}
		prbs := d.AllocatedPRBs(bw)
		firstRBG, numRBGs := rbgSpan(&d, bw)
		rep.Allocs = append(rep.Allocs, Alloc{
			RNTI:     d.RNTI,
			FirstRBG: firstRBG,
			NumRBGs:  numRBGs,
			PRBs:     prbs,
			MCS:      phy.MCS{CQI: int(d.MCS), Table: table, Streams: d.Streams()},
			TBBits:   int(float64(prbs) * phy.MCS{CQI: int(d.MCS), Table: table, Streams: d.Streams()}.BitsPerPRB()),
			NDI:      d.NDI,
		})
	}
	return rep
}

// rbgSpan recovers the covered RBG range of a decoded DCI.
func rbgSpan(d *pdcch.DCI, bw pdcch.Bandwidth) (first, num int) {
	switch d.Format {
	case pdcch.Format1, pdcch.Format2:
		first = -1
		for i := 0; i < bw.NumRBGs(); i++ {
			if d.RBGBitmap&(1<<uint(i)) != 0 {
				if first < 0 {
					first = i
				}
				num++
			}
		}
		if first < 0 {
			first = 0
		}
		return first, num
	case pdcch.Format1A:
		p := bw.RBGSize()
		first = d.RIVStart / p
		last := (d.RIVStart + d.RIVLen - 1) / p
		return first, last - first + 1
	}
	return 0, 0
}
