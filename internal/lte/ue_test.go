package lte

import (
	"testing"
	"time"

	"pbecc/internal/netsim"
	"pbecc/internal/pdcch"
	"pbecc/internal/phy"
	"pbecc/internal/sim"
)

// newCAUE builds a UE with two configured cells and a fixed-rate offered
// load source, reproducing the Figure 2 setup: a primary cell whose
// capacity the load exceeds, and a secondary that should activate.
func newCAUE(eng *sim.Engine) (*UE, *Cell, *Cell, *collector) {
	primary := NewCell(eng, 1, 100, phy.Table64QAM, nil)
	secondary := NewCell(eng, 2, 100, phy.Table64QAM, nil)
	ue := NewUE(eng, 1, 61)
	// -93 dBm: SINR 15.3, CQI 11 (eff 3.32), 1 stream => 398 bits/PRB,
	// ~39.9 Mbit/s full cell.
	ue.AddCell(primary, phy.NewStaticChannel(-93, phy.Table64QAM, nil))
	ue.AddCell(secondary, phy.NewStaticChannel(-93, phy.Table64QAM, nil))
	sink := &collector{}
	ue.SetDefaultHandler(sink)
	ue.Start()
	return ue, primary, secondary, sink
}

func TestCarrierActivationUnderLoad(t *testing.T) {
	eng := sim.New(20)
	ue, _, _, _ := newCAUE(eng)
	// 40 Mbit/s offered load exceeds the ~39.9 Mbit/s primary capacity.
	ct := netsim.NewCrossTraffic(eng, ue, 40e6, 1)
	ct.Start()
	eng.RunUntil(2 * time.Second)
	if ue.Activations == 0 {
		t.Fatal("secondary cell never activated under overload")
	}
	if len(ue.ActiveCells()) != 2 {
		t.Fatalf("active cells = %d, want 2", len(ue.ActiveCells()))
	}
}

func TestCarrierActivationTiming(t *testing.T) {
	eng := sim.New(21)
	ue, _, _, _ := newCAUE(eng)
	var activatedAt time.Duration
	ue.OnActiveChange(func(active []*Cell) {
		if len(active) == 2 && activatedAt == 0 {
			activatedAt = eng.Now()
		}
	})
	ct := netsim.NewCrossTraffic(eng, ue, 40e6, 1)
	ct.Start()
	eng.RunUntil(time.Second)
	// The paper's Figure 2 shows activation ~130 ms after flow start; our
	// policy needs the 100-subframe window plus the 150 ms holdoff.
	if activatedAt < 100*time.Millisecond || activatedAt > 400*time.Millisecond {
		t.Fatalf("activated at %v, want 100-400ms", activatedAt)
	}
}

func TestCarrierDeactivationAfterLoadDrop(t *testing.T) {
	eng := sim.New(22)
	ue, _, _, _ := newCAUE(eng)
	ct := netsim.NewCrossTraffic(eng, ue, 40e6, 1)
	ct.Start()
	eng.RunUntil(2 * time.Second)
	if len(ue.ActiveCells()) != 2 {
		t.Skip("activation did not happen; covered by other test")
	}
	// Drop to 6 Mbit/s, well below the primary's capacity (Figure 2).
	ct.Stop()
	ct2 := netsim.NewCrossTraffic(eng, ue, 6e6, 1)
	ct2.Start()
	eng.RunUntil(5 * time.Second)
	if ue.Deactivations == 0 {
		t.Fatal("secondary cell never deactivated after load drop")
	}
	if len(ue.ActiveCells()) != 1 {
		t.Fatalf("active cells = %d, want 1", len(ue.ActiveCells()))
	}
}

func TestNoActivationAtLowLoad(t *testing.T) {
	eng := sim.New(23)
	ue, _, _, _ := newCAUE(eng)
	ct := netsim.NewCrossTraffic(eng, ue, 6e6, 1)
	ct.Start()
	eng.RunUntil(3 * time.Second)
	if ue.Activations != 0 {
		t.Fatal("secondary activated for a 6 Mbit/s flow on a ~40 Mbit/s cell")
	}
}

func TestNoActivationWhenCADisabled(t *testing.T) {
	eng := sim.New(24)
	ue, _, _, _ := newCAUE(eng)
	ue.SetCarrierAggregation(false)
	ct := netsim.NewCrossTraffic(eng, ue, 40e6, 1)
	ct.Start()
	eng.RunUntil(2 * time.Second)
	if ue.Activations != 0 {
		t.Fatal("CA-disabled UE activated a secondary cell")
	}
}

func TestAggregateThroughputExceedsPrimary(t *testing.T) {
	eng := sim.New(25)
	ue, _, _, sink := newCAUE(eng)
	ct := netsim.NewCrossTraffic(eng, ue, 70e6, 1)
	ct.Start()
	eng.RunUntil(4 * time.Second)
	// Last-second throughput must exceed single-cell capacity.
	lastBytes := 0
	for i, at := range sink.times {
		if at > 3*time.Second {
			lastBytes += sink.packets[i].Size
		}
	}
	gotMbit := float64(lastBytes) * 8 / 1e6
	if gotMbit < 45 {
		t.Fatalf("aggregated throughput %.1f Mbit/s, want > primary-only ~40", gotMbit)
	}
}

func TestDispatcherBalancesCells(t *testing.T) {
	eng := sim.New(26)
	ue, primary, secondary, _ := newCAUE(eng)
	ct := netsim.NewCrossTraffic(eng, ue, 70e6, 1)
	ct.Start()
	eng.RunUntil(3 * time.Second)
	if len(ue.ActiveCells()) != 2 {
		t.Skip("needs both cells active")
	}
	p := primary.DataPRBs
	s := secondary.DataPRBs
	if s == 0 {
		t.Fatal("secondary cell never carried data")
	}
	ratio := float64(p) / float64(s)
	if ratio < 0.5 || ratio > 10 {
		t.Fatalf("extreme imbalance: primary %d vs secondary %d PRBs", p, s)
	}
}

func TestFlowRouting(t *testing.T) {
	eng := sim.New(27)
	ue, _, sink := func() (*UE, *Cell, *collector) {
		u, c, s := newTestUE(eng, 100, -85)
		return u, c, s
	}()
	flowSink := &collector{}
	ue.RegisterFlow(7, flowSink)
	ue.HandlePacket(0, &netsim.Packet{FlowID: 7, Seq: 1, Size: netsim.MSS})
	ue.HandlePacket(0, &netsim.Packet{FlowID: 8, Seq: 1, Size: netsim.MSS})
	eng.RunUntil(50 * time.Millisecond)
	if len(flowSink.packets) != 1 {
		t.Fatalf("flow 7 got %d packets, want 1", len(flowSink.packets))
	}
	if len(sink.packets) != 1 {
		t.Fatalf("default handler got %d packets, want 1", len(sink.packets))
	}
}

func TestUEStopIdempotent(t *testing.T) {
	eng := sim.New(28)
	ue, _, _ := newTestUE(eng, 100, -85)
	ue.Stop()
	ue.Stop()
	ue.Start()
	ue.Start() // must not double-tick
	eng.RunUntil(10 * time.Millisecond)
}

// --- Report encode/decode equivalence (struct mode vs coded mode) ---

func TestReportCodedRoundTrip(t *testing.T) {
	rep := &SubframeReport{
		CellID: 3, Subframe: 5, NPRB: 100,
		Allocs: []Alloc{
			{RNTI: 61, FirstRBG: 0, NumRBGs: 10, PRBs: 40,
				MCS: phy.MCS{CQI: 11, Table: phy.Table64QAM, Streams: 1}, NDI: true},
			{RNTI: 62, FirstRBG: 10, NumRBGs: 5, PRBs: 20,
				MCS: phy.MCS{CQI: 14, Table: phy.Table64QAM, Streams: 2}, NDI: false},
			{RNTI: 5000, FirstRBG: 15, NumRBGs: 1, PRBs: 4,
				MCS: phy.MCS{CQI: 5, Table: phy.Table64QAM, Streams: 1}, NDI: true, Control: true},
		},
	}
	for i := range rep.Allocs {
		a := &rep.Allocs[i]
		a.TBBits = int(float64(a.PRBs) * a.MCS.BitsPerPRB())
	}
	region := EncodeReport(rep, 3)
	if region == nil {
		t.Fatal("encode failed")
	}
	got := DecodeReport(region, 3, phy.Table64QAM, pdcch.NewDecoder(0))
	if got.Subframe != rep.Subframe || got.NPRB != rep.NPRB {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Allocs) != len(rep.Allocs) {
		t.Fatalf("decoded %d allocs, want %d", len(got.Allocs), len(rep.Allocs))
	}
	byRNTI := map[uint16]Alloc{}
	for _, a := range got.Allocs {
		byRNTI[a.RNTI] = a
	}
	for _, want := range rep.Allocs {
		g, ok := byRNTI[want.RNTI]
		if !ok {
			t.Fatalf("RNTI %d missing from decoded report", want.RNTI)
		}
		if g.PRBs != want.PRBs || g.NDI != want.NDI ||
			g.MCS.CQI != want.MCS.CQI || g.MCS.Streams != want.MCS.Streams {
			t.Fatalf("RNTI %d: decoded %+v, want %+v", want.RNTI, g, want)
		}
		if g.TBBits != want.TBBits {
			t.Fatalf("RNTI %d: TBBits %d, want %d", want.RNTI, g.TBBits, want.TBBits)
		}
	}
	// The idle-PRB computation (Eqn 4) must agree between modes.
	if got.AllocatedPRBs() != rep.AllocatedPRBs() {
		t.Fatalf("allocated PRBs: decoded %d, struct %d", got.AllocatedPRBs(), rep.AllocatedPRBs())
	}
}

func TestReportCodedRoundTripLiveCell(t *testing.T) {
	// End to end: run a real cell, encode each report, blind-decode it,
	// and compare the capacity-relevant fields.
	eng := sim.New(30)
	ue, cell, _ := newTestUE(eng, 100, -85)
	checked := 0
	cell.AttachMonitor(func(rep *SubframeReport) {
		if len(rep.Allocs) == 0 || rep.Subframe > 30 {
			return
		}
		region := EncodeReport(rep, 3)
		if region == nil {
			t.Errorf("subframe %d: encode failed", rep.Subframe)
			return
		}
		got := DecodeReport(region, cell.ID, phy.Table64QAM, pdcch.NewDecoder(0))
		if got.AllocatedPRBs() != rep.AllocatedPRBs() {
			t.Errorf("subframe %d: PRBs %d != %d", rep.Subframe, got.AllocatedPRBs(), rep.AllocatedPRBs())
		}
		if len(got.Allocs) != len(rep.Allocs) {
			t.Errorf("subframe %d: %d allocs != %d", rep.Subframe, len(got.Allocs), len(rep.Allocs))
		}
		checked++
	})
	fillQueue(ue, 3000)
	eng.RunUntil(32 * time.Millisecond)
	if checked < 10 {
		t.Fatalf("only %d subframes checked", checked)
	}
}

func TestSubframeReportHelpers(t *testing.T) {
	rep := &SubframeReport{NPRB: 100, Allocs: []Alloc{{PRBs: 30}, {PRBs: 20}}}
	if rep.AllocatedPRBs() != 50 || rep.IdlePRBs() != 50 {
		t.Fatalf("helpers wrong: %d/%d", rep.AllocatedPRBs(), rep.IdlePRBs())
	}
}
