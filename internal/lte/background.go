package lte

import (
	"time"

	"pbecc/internal/phy"
)

// BackgroundDemand is one virtual background user's demand for the
// current scheduling slot: the RNTI and physical rate its PDCCH grant
// would show, and the bits it wants served. Virtual users are the fluid
// background tier's interface to the scheduler (internal/fluid): they
// compete for RBGs in the same water-fill as packet-level users and
// appear in the subframe report exactly as a packet user would, but no
// packet, queue, HARQ process or delivery event ever exists for them.
type BackgroundDemand struct {
	RNTI uint16
	MCS  phy.MCS
	Bits int
}

// BackgroundSource supplies aggregate data-plane background demand to a
// cell, once per scheduling slot. Demand is called at the slot's virtual
// time and returns the currently backlogged virtual users; the cell then
// reports the granted capacity for entry i through Serve(i, bits). The
// returned slice is only read before the next Demand call, so
// implementations can reuse a buffer. A nil source (the default) leaves
// the cell byte-identical to the pre-fluid scheduler.
type BackgroundSource interface {
	Demand(now time.Duration) []BackgroundDemand
	Serve(i int, bits int)
}

// SetBackground attaches the cell's fluid background-traffic source.
func (c *Cell) SetBackground(b BackgroundSource) { c.background = b }
