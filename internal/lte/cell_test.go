package lte

import (
	"math/rand"
	"testing"
	"time"

	"pbecc/internal/netsim"
	"pbecc/internal/phy"
	"pbecc/internal/sim"
)

// collector gathers released packets with their delivery times.
type collector struct {
	packets []*netsim.Packet
	times   []time.Duration
	bytes   int
}

func (c *collector) HandlePacket(now time.Duration, p *netsim.Packet) {
	c.packets = append(c.packets, p)
	c.times = append(c.times, now)
	c.bytes += p.Size
}

// newTestUE wires a UE with one cell at the given RSSI and returns the
// pieces. Carrier aggregation is off unless enabled by the test.
func newTestUE(eng *sim.Engine, nprb int, rssi float64) (*UE, *Cell, *collector) {
	cell := NewCell(eng, 1, nprb, phy.Table64QAM, nil)
	cell.PerUserQueueBytes = 0 // tests prefill large queues
	ue := NewUE(eng, 1, 61)
	ch := phy.NewStaticChannel(rssi, phy.Table64QAM, nil)
	ue.AddCell(cell, ch)
	ue.SetCarrierAggregation(false)
	sink := &collector{}
	ue.SetDefaultHandler(sink)
	ue.Start()
	return ue, cell, sink
}

func fillQueue(ue *UE, n int) {
	for i := 0; i < n; i++ {
		ue.HandlePacket(0, &netsim.Packet{FlowID: 1, Seq: uint64(i), Size: netsim.MSS})
	}
}

func TestSingleUserGetsFullCell(t *testing.T) {
	eng := sim.New(1)
	ue, cell, sink := newTestUE(eng, 100, -85)
	_ = cell
	fillQueue(ue, 10000)
	eng.RunUntil(time.Second)

	// At -85 dBm (SINR 22.5, CQI 14 64QAM, 2 streams): 5.1152*120*2 =
	// 1227 bits/PRB, 100 PRB => ~122 Mbit/s. In 1 s minus ramp the UE
	// should receive on that order, less HARQ losses.
	gotMbit := float64(sink.bytes) * 8 / 1e6
	if gotMbit < 100 || gotMbit > 130 {
		t.Fatalf("single user got %.1f Mbit in 1s, want ~120", gotMbit)
	}
}

func TestTwoUsersShareEqually(t *testing.T) {
	eng := sim.New(2)
	cell := NewCell(eng, 1, 100, phy.Table64QAM, nil)
	cell.PerUserQueueBytes = 0
	sinks := [2]*collector{{}, {}}
	for i := 0; i < 2; i++ {
		ue := NewUE(eng, i+1, uint16(61+i))
		ue.AddCell(cell, phy.NewStaticChannel(-85, phy.Table64QAM, nil))
		ue.SetCarrierAggregation(false)
		ue.SetDefaultHandler(sinks[i])
		ue.Start()
		for k := 0; k < 20000; k++ {
			ue.HandlePacket(0, &netsim.Packet{FlowID: i, Seq: uint64(k), Size: netsim.MSS})
		}
	}
	eng.RunUntil(time.Second)
	a, b := float64(sinks[0].bytes), float64(sinks[1].bytes)
	if a == 0 || b == 0 {
		t.Fatal("a user starved")
	}
	ratio := a / b
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("unfair split: %.0f vs %.0f bytes (ratio %.3f)", a, b, ratio)
	}
}

func TestWeakUserGetsLowerRateSamePRBs(t *testing.T) {
	eng := sim.New(3)
	cell := NewCell(eng, 1, 100, phy.Table64QAM, nil)
	cell.PerUserQueueBytes = 0
	sinks := [2]*collector{{}, {}}
	rssi := []float64{-85, -105}
	var prbs [2]int
	cell.AttachMonitor(func(rep *SubframeReport) {
		for _, a := range rep.Allocs {
			if a.RNTI == 61 {
				prbs[0] += a.PRBs
			}
			if a.RNTI == 62 {
				prbs[1] += a.PRBs
			}
		}
	})
	for i := 0; i < 2; i++ {
		ue := NewUE(eng, i+1, uint16(61+i))
		ue.AddCell(cell, phy.NewStaticChannel(rssi[i], phy.Table64QAM, nil))
		ue.SetCarrierAggregation(false)
		ue.SetDefaultHandler(sinks[i])
		ue.Start()
		for k := 0; k < 20000; k++ {
			ue.HandlePacket(0, &netsim.Packet{FlowID: i, Seq: uint64(k), Size: netsim.MSS})
		}
	}
	eng.RunUntil(time.Second)
	// PRB-fair scheduler: equal PRBs, unequal throughput.
	pr := float64(prbs[0]) / float64(prbs[1])
	if pr < 0.9 || pr > 1.1 {
		t.Fatalf("PRB split not fair: %d vs %d", prbs[0], prbs[1])
	}
	if float64(sinks[0].bytes) < 2*float64(sinks[1].bytes) {
		t.Fatalf("strong user (%d B) should far out-run weak user (%d B)",
			sinks[0].bytes, sinks[1].bytes)
	}
}

func TestShortQueueReleasesCapacity(t *testing.T) {
	eng := sim.New(4)
	cell := NewCell(eng, 1, 100, phy.Table64QAM, nil)
	cell.PerUserQueueBytes = 0
	sinks := [2]*collector{{}, {}}
	// User 0 has a tiny trickle; user 1 is full-buffer. User 1 should get
	// nearly the whole cell.
	for i := 0; i < 2; i++ {
		ue := NewUE(eng, i+1, uint16(61+i))
		ue.AddCell(cell, phy.NewStaticChannel(-85, phy.Table64QAM, nil))
		ue.SetCarrierAggregation(false)
		ue.SetDefaultHandler(sinks[i])
		ue.Start()
		n := 40000
		if i == 0 {
			n = 100
		}
		for k := 0; k < n; k++ {
			ue.HandlePacket(0, &netsim.Packet{FlowID: i, Seq: uint64(k), Size: netsim.MSS})
		}
	}
	eng.RunUntil(time.Second)
	if float64(sinks[1].bytes)*8/1e6 < 100 {
		t.Fatalf("full-buffer user got only %.1f Mbit with an idle competitor",
			float64(sinks[1].bytes)*8/1e6)
	}
}

func TestWaterFill(t *testing.T) {
	cases := []struct {
		wants    []int
		capacity int
		want     []int
	}{
		{[]int{10, 10}, 10, []int{5, 5}},
		{[]int{2, 10}, 10, []int{2, 8}},
		{[]int{1, 1, 1}, 25, []int{1, 1, 1}},
		{[]int{100}, 25, []int{25}},
		{[]int{0, 10}, 10, []int{0, 10}},
		{[]int{}, 10, []int{}},
		{[]int{3, 3, 3}, 2, nil}, // fewer RBGs than users: one each, rotating
	}
	for i, c := range cases {
		got := WaterFill(c.wants, c.capacity, 0)
		if c.want == nil {
			sum := 0
			for _, g := range got {
				sum += g
			}
			if sum != c.capacity {
				t.Fatalf("case %d: distributed %d, want %d", i, sum, c.capacity)
			}
			continue
		}
		for j := range c.want {
			if got[j] != c.want[j] {
				t.Fatalf("case %d: got %v, want %v", i, got, c.want)
			}
		}
	}
}

func TestWaterFillNeverExceedsCapacity(t *testing.T) {
	for rot := 0; rot < 7; rot++ {
		for _, cap := range []int{0, 1, 5, 25, 100} {
			got := WaterFill([]int{7, 3, 9, 1, 12}, cap, rot)
			sum := 0
			for i, g := range got {
				sum += g
				if g > []int{7, 3, 9, 1, 12}[i] {
					t.Fatalf("over-grant: %v", got)
				}
			}
			if sum > cap {
				t.Fatalf("cap %d rot %d: granted %d", cap, rot, sum)
			}
		}
	}
}

func TestHARQRetransmissionDelay(t *testing.T) {
	eng := sim.New(5)
	ue, cell, sink := newTestUE(eng, 100, -85)
	// Fail exactly the first transport block once.
	cell.ErrorModel = func(rnti uint16, seq uint64, attempt, bits int, ber float64) bool {
		return seq == 0 && attempt == 0
	}
	fillQueue(ue, 200)
	eng.RunUntil(100 * time.Millisecond)
	if len(sink.times) == 0 {
		t.Fatal("nothing delivered")
	}
	// TB 0 is sent in subframe 1 (t=1ms), fails, retransmits at subframe
	// 9, delivered at 10ms. All of TB 1..8's packets are buffered behind
	// it and released at the same instant (Figure 3).
	first := sink.times[0]
	if first != 10*time.Millisecond {
		t.Fatalf("first release at %v, want 10ms (8ms HARQ + 1ms tx + 1ms orig)", first)
	}
	// Several TBs must be released at exactly the same time (the
	// reordering buffer flush).
	flush := 0
	for _, at := range sink.times {
		if at == first {
			flush++
		}
	}
	if flush < 2 {
		t.Fatalf("no reordering-buffer flush: only %d packets at %v", flush, first)
	}
}

func TestHARQMaxRetransmissionsLoss(t *testing.T) {
	eng := sim.New(6)
	ue, cell, sink := newTestUE(eng, 100, -85)
	cell.ErrorModel = func(rnti uint16, seq uint64, attempt, bits int, ber float64) bool {
		return seq == 0 // TB 0 always fails
	}
	fillQueue(ue, 200)
	eng.RunUntil(200 * time.Millisecond)
	if ue.LostPackets == 0 {
		t.Fatal("no packets lost after exhausting HARQ retransmissions")
	}
	if cell.LostTBs != 1 {
		t.Fatalf("LostTBs = %d, want 1", cell.LostTBs)
	}
	// Subsequent packets must still be delivered (buffer released).
	if len(sink.packets) == 0 {
		t.Fatal("reordering buffer never released after permanent loss")
	}
	// Loss is declared after original + 3 retx: subframe 1 + 3*8, delivery
	// event at +1ms => 26ms.
	if sink.times[0] != 26*time.Millisecond {
		t.Fatalf("post-loss release at %v, want 26ms", sink.times[0])
	}
}

func TestInOrderDeliveryWithinCell(t *testing.T) {
	eng := sim.New(7)
	ue, cell, sink := newTestUE(eng, 100, -98)
	// Natural random errors at -98 dBm with big TBs.
	_ = cell
	fillQueue(ue, 5000)
	eng.RunUntil(time.Second)
	var last uint64
	for i, p := range sink.packets {
		if i > 0 && p.Seq < last {
			t.Fatalf("out-of-order release: seq %d after %d", p.Seq, last)
		}
		last = p.Seq
	}
}

func TestControlGrantsVisibleAndFirst(t *testing.T) {
	eng := sim.New(8)
	src := &stubControl{grants: []ControlGrant{{RNTI: 5000, RBGs: 1}}}
	cell := NewCell(eng, 1, 100, phy.Table64QAM, src)
	var reports []*SubframeReport
	cell.AttachMonitor(func(rep *SubframeReport) { reports = append(reports, rep) })
	eng.RunUntil(10 * time.Millisecond)
	if len(reports) != 10 {
		t.Fatalf("reports = %d, want 10", len(reports))
	}
	for _, rep := range reports {
		if len(rep.Allocs) != 1 {
			t.Fatalf("allocs = %d, want 1 control grant", len(rep.Allocs))
		}
		a := rep.Allocs[0]
		if !a.Control || a.RNTI != 5000 || a.PRBs != 4 {
			t.Fatalf("control alloc = %+v", a)
		}
		if rep.IdlePRBs() != 96 {
			t.Fatalf("idle PRBs = %d, want 96", rep.IdlePRBs())
		}
	}
	if cell.ControlPRBs != 40 {
		t.Fatalf("ControlPRBs = %d, want 40", cell.ControlPRBs)
	}
}

type stubControl struct{ grants []ControlGrant }

func (s *stubControl) Tick(subframe int, rng *rand.Rand) []ControlGrant {
	return s.grants
}

func TestDetachUser(t *testing.T) {
	eng := sim.New(9)
	ue, cell, sink := newTestUE(eng, 100, -85)
	fillQueue(ue, 100)
	eng.RunUntil(5 * time.Millisecond)
	cell.DetachUser(61)
	before := len(sink.packets)
	eng.RunUntil(50 * time.Millisecond)
	// In-flight TBs may still deliver, but no new scheduling happens.
	if cell.UserQueueBits(61) != 0 {
		t.Fatal("queue must report 0 after detach")
	}
	if len(sink.packets) > before+200 {
		t.Fatal("detached user kept being scheduled")
	}
}

func TestEnqueueUnknownRNTI(t *testing.T) {
	eng := sim.New(10)
	cell := NewCell(eng, 1, 100, phy.Table64QAM, nil)
	if cell.Enqueue(99, &netsim.Packet{Size: 100}) {
		t.Fatal("enqueue to unknown RNTI must fail")
	}
}

func TestDuplicateRNTIPanics(t *testing.T) {
	eng := sim.New(11)
	cell := NewCell(eng, 1, 100, phy.Table64QAM, nil)
	ue := NewUE(eng, 1, 61)
	ue.AddCell(cell, phy.NewStaticChannel(-85, phy.Table64QAM, nil))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate RNTI did not panic")
		}
	}()
	ue2 := NewUE(eng, 2, 61)
	ue2.AddCell(cell, phy.NewStaticChannel(-85, phy.Table64QAM, nil))
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, int) {
		eng := sim.New(42)
		ue, cell, sink := newTestUE(eng, 100, -98)
		fillQueue(ue, 5000)
		eng.RunUntil(500 * time.Millisecond)
		return cell.ErrorTBs, sink.bytes
	}
	e1, b1 := run()
	e2, b2 := run()
	if e1 != e2 || b1 != b2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", e1, b1, e2, b2)
	}
}

func TestPRBsInRBGSpanLastGroup(t *testing.T) {
	eng := sim.New(12)
	cell := NewCell(eng, 1, 50, phy.Table64QAM, nil) // P=3, 17 RBGs, last has 2
	if got := cell.prbsInRBGSpan(0, 17); got != 50 {
		t.Fatalf("full span = %d PRBs, want 50", got)
	}
	if got := cell.prbsInRBGSpan(16, 1); got != 2 {
		t.Fatalf("last RBG = %d PRBs, want 2", got)
	}
	if got := cell.prbsInRBGSpan(0, 0); got != 0 {
		t.Fatalf("empty span = %d", got)
	}
}

func TestErrorRateMatchesModel(t *testing.T) {
	eng := sim.New(13)
	ue, cell, _ := newTestUE(eng, 100, -98)
	fillQueue(ue, 60000)
	eng.RunUntil(3 * time.Second)
	if cell.TotalTBs < 1000 {
		t.Fatalf("too few TBs: %d", cell.TotalTBs)
	}
	got := float64(cell.ErrorTBs) / float64(cell.TotalTBs)
	// Full cell at -98 dBm: CQI ~10, 1227.. compute loosely: TB ~ tens of
	// kbit at 2.5e-6 BER gives error rates of roughly 5-30%.
	if got < 0.02 || got > 0.4 {
		t.Fatalf("TB error rate %.3f outside plausible band", got)
	}
}

func TestPerUserQueueCap(t *testing.T) {
	eng := sim.New(14)
	cell := NewCell(eng, 1, 100, phy.Table64QAM, nil)
	if cell.PerUserQueueBytes != DefaultPerUserQueueBytes {
		t.Fatalf("default cap = %d", cell.PerUserQueueBytes)
	}
	ue := NewUE(eng, 1, 61)
	ue.AddCell(cell, phy.NewStaticChannel(-85, phy.Table64QAM, nil))
	ue.SetCarrierAggregation(false)
	ue.SetDefaultHandler(&netsim.Sink{})
	ue.Start()
	// Prefill far beyond the cap: the excess must be dropped at enqueue.
	for i := 0; i < 5000; i++ {
		ue.HandlePacket(0, &netsim.Packet{FlowID: 1, Seq: uint64(i), Size: netsim.MSS})
	}
	if cell.QueueDropped == 0 {
		t.Fatal("no drops beyond the per-user queue cap")
	}
	if got := cell.UserQueueBits(61) / 8; got > DefaultPerUserQueueBytes {
		t.Fatalf("queued %d bytes exceeds cap", got)
	}
}
