package fluid

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"pbecc/internal/phy"
	"pbecc/internal/trace"
)

// onTime is the exact time a (rate, on, off, phase) envelope is on in
// [0, T]: the continuous-time reference a per-packet on/off source
// (netsim.CrossTraffic under harness.scheduleOnOff) offers load over.
func onTime(on, off, phase, T time.Duration) time.Duration {
	if T <= phase {
		return 0
	}
	t := T - phase
	cycle := on + off
	active := time.Duration(t/cycle) * on
	if rem := t % cycle; rem < on {
		active += rem
	} else {
		active += on
	}
	return active
}

func testMCS() phy.MCS {
	return phy.MCS{CQI: 11, Table: phy.Table64QAM, Streams: 1}
}

// drawSessions draws n sessions exactly the way the metro family's churn
// population is drawn: Figure 11(b) rates (two PRBs' worth) and
// SessionOnOff cycles, phase uniform over the cycle.
func drawSessions(n int, rng *rand.Rand) []Session {
	ss := make([]Session, n)
	for i := range ss {
		rate := trace.SampleUserRate(rng) * 2e6
		on, off := trace.SessionOnOff(rng)
		ss[i] = Session{
			RNTI:    uint16(1000 + i),
			MCS:     testMCS(),
			RateBps: rate,
			On:      on,
			Off:     off,
			Phase:   time.Duration(rng.Int63n(int64(on + off))),
		}
	}
	return ss
}

// TestCellProcessCalibration is the fluid-tier calibration property: the
// long-run aggregate offered load of the envelope process (active flags
// re-evaluated only once per 40 ms window) must match the empirical mean
// of the same per-packet SessionOnOff/SampleUserRate churn - computed
// here in closed form as sum(rate x exact on-time) - within 2% at a
// fixed seed.
func TestCellProcessCalibration(t *testing.T) {
	const T = 60 * time.Second
	rng := rand.New(rand.NewSource(77))
	ss := drawSessions(256, rng)

	var want float64
	for _, s := range ss {
		want += s.RateBps * onTime(s.On, s.Off, s.Phase, T).Seconds()
	}

	p := NewCellProcess(ss, 0, 0) // default window, uncapped backlog
	// One Demand call at T walks every window boundary, accruing each
	// segment under the flags that were live during it.
	p.Demand(T)
	got := p.Stats().OfferedBits
	if err := math.Abs(got-want) / want; err > 0.02 {
		t.Fatalf("windowed offered load %.4g vs per-packet churn mean %.4g: error %.2f%% > 2%%",
			got, want, 100*err)
	}
	if p.Stats().EnvelopeUpdates != uint64(T/DefaultWindow)+1 {
		t.Fatalf("envelope updates = %d, want %d", p.Stats().EnvelopeUpdates, uint64(T/DefaultWindow)+1)
	}
}

// TestModeledCalibration applies the same 2% calibration bound to the
// compact modeled tier, against the analytic on-time of its own
// millisecond-quantized session parameters.
func TestModeledCalibration(t *testing.T) {
	const T = 60 * time.Second
	m := DrawModeled(64, 16, rand.New(rand.NewSource(99)), 0)

	var want float64
	for _, s := range m.sessions {
		on := time.Duration(s.onMs) * time.Millisecond
		off := time.Duration(s.offMs) * time.Millisecond
		phase := time.Duration(s.phaseMs) * time.Millisecond
		want += float64(s.rateBps) * onTime(on, off, phase, T).Seconds()
	}

	ch := m.Chunks(1)[0]
	for now := m.Window; now <= T; now += m.Window {
		ch.Advance(now)
	}
	got := m.Stats().OfferedBits
	if err := math.Abs(got-want) / want; err > 0.02 {
		t.Fatalf("modeled offered load %.4g vs churn mean %.4g: error %.2f%% > 2%%",
			got, want, 100*err)
	}
}

// TestModeledChunkPartitionInvariance: the modeled population's
// accounting must not depend on how many chunks (shards) advance it.
// Identical partitions must agree exactly; different widths only regroup
// float sums, so they agree to rounding.
func TestModeledChunkPartitionInvariance(t *testing.T) {
	const T = 4 * time.Second
	m := DrawModeled(64, 16, rand.New(rand.NewSource(5)), 0)
	run := func(n int) Stats {
		chunks := m.Chunks(n)
		if len(chunks) != n {
			t.Fatalf("Chunks(%d) yielded %d chunks", n, len(chunks))
		}
		cells := 0
		for _, ch := range chunks {
			for now := m.Window; now <= T; now += m.Window {
				ch.Advance(now)
			}
			cells += ch.cells
		}
		if cells != m.Cells {
			t.Fatalf("partition covers %d cells, want %d", cells, m.Cells)
		}
		return m.Stats()
	}
	base := run(1)
	again := run(1)
	if base != again {
		t.Fatalf("same partition disagrees: %+v vs %+v", base, again)
	}
	for _, n := range []int{5, 8, 64} {
		s := run(n)
		if s.SessionOnWindows != base.SessionOnWindows || s.EnvelopeUpdates != base.EnvelopeUpdates {
			t.Fatalf("n=%d integer stats differ: %+v vs %+v", n, s, base)
		}
		if rel := math.Abs(s.OfferedBits-base.OfferedBits) / base.OfferedBits; rel > 1e-12 {
			t.Fatalf("n=%d offered bits differ by %.3g relative", n, rel)
		}
	}
}

// TestQuantumGate: a session below one packet quantum of backlog must
// not demand (its PDCCH duty cycle should mimic a packet source's), and
// Serve must drain exactly what was granted.
func TestQuantumGate(t *testing.T) {
	ss := []Session{{RNTI: 70, MCS: testMCS(), RateBps: 1e6, On: time.Hour, Off: time.Millisecond}}
	p := NewCellProcess(ss, 0, 0)
	// 1 Mbit/s x 10 ms = 10000 bits < QuantumBits (12000).
	if d := p.Demand(10 * time.Millisecond); len(d) != 0 {
		t.Fatalf("demand below quantum: %+v", d)
	}
	// By 16 ms the backlog passes the quantum.
	d := p.Demand(16 * time.Millisecond)
	if len(d) != 1 || d[0].RNTI != 70 || d[0].Bits < QuantumBits {
		t.Fatalf("demand = %+v, want one entry >= quantum", d)
	}
	p.Serve(0, d[0].Bits)
	if got := p.Stats().ServedBits; got != float64(d[0].Bits) {
		t.Fatalf("served %v, want %v", got, d[0].Bits)
	}
	if d := p.Demand(16 * time.Millisecond); len(d) != 0 {
		t.Fatalf("backlog not drained: %+v", d)
	}
}

// TestBacklogCap: a capped session drops excess offered load like a full
// per-user RLC queue, and the drop is accounted, not silently lost.
func TestBacklogCap(t *testing.T) {
	ss := []Session{{RNTI: 70, MCS: testMCS(), RateBps: 100e6, On: time.Hour, Off: time.Millisecond}}
	p := NewCellProcess(ss, 0, 50000)
	d := p.Demand(time.Second) // offered 100 Mbit, cap 50 kbit
	if len(d) != 1 || d[0].Bits != 50000 {
		t.Fatalf("demand = %+v, want one 50000-bit entry", d)
	}
	st := p.Stats()
	if st.OfferedBits < 99e6 {
		t.Fatalf("offered accounting lost to the cap: %v", st.OfferedBits)
	}
	if want := st.OfferedBits - 50000; math.Abs(st.DroppedBits-want) > 1 {
		t.Fatalf("dropped = %v, want %v", st.DroppedBits, want)
	}
}

// TestSessionPhase: a session is off before its phase delay and cycles
// on-first afterwards, matching harness.scheduleOnOff's semantics.
func TestSessionPhase(t *testing.T) {
	s := Session{On: 30 * time.Millisecond, Off: 70 * time.Millisecond, Phase: 50 * time.Millisecond}
	cases := []struct {
		t    time.Duration
		want bool
	}{
		{0, false},
		{49 * time.Millisecond, false},
		{50 * time.Millisecond, true},
		{79 * time.Millisecond, true},
		{80 * time.Millisecond, false},
		{149 * time.Millisecond, false},
		{150 * time.Millisecond, true},
	}
	for _, c := range cases {
		if got := s.activeAt(c.t); got != c.want {
			t.Errorf("activeAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}
