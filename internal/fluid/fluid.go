// Package fluid is the hybrid-fidelity background-traffic tier: it
// models churning background populations as aggregate per-cell rate
// envelopes instead of per-packet flows, so simulation event volume
// scales with the *measured* flows rather than with the population.
//
// Two tiers with different fidelity/cost points:
//
//   - CellProcess binds virtual background sessions to a real lte/nr
//     cell through the lte.BackgroundSource hook. Sessions accrue
//     offered bits continuously while their on/off envelope says they
//     are active, enter the cell's water-fill alongside packet users
//     once at least one packet quantum is backlogged, and appear in the
//     per-slot control-channel report under their own RNTI and MCS - so
//     the PBE-CC monitor decodes the same competing load it would see
//     from packet users, while no packet, queue, HARQ process or
//     delivery event ever exists for them. The on/off envelope is
//     re-evaluated once per monitor smoothing window (core.DefaultWindow
//     subframes, 40 ms), not per packet: between updates the envelope is
//     a constant rate.
//
//   - Modeled is the nation-scale tier: fluid-only cells with no
//     packet-level counterpart at all. Their populations advance one
//     window at a time on shard-local tickers - O(sessions) work per
//     40 ms window instead of O(packets) events - which is what lets a
//     scenario model 64k+ cells and a million users in CI-feasible
//     wall-clock.
//
// Session parameters are drawn from the paper's measured user
// populations: per-user physical rates from trace.SampleUserRate
// (Figure 11(b)) and session on/off cycles from trace.SessionOnOff
// (Figure 7-style short-session dominance). All draws happen at
// build/setup time from a scenario-seeded source, so a fluid population
// is a pure function of its seed and results stay byte-identical for
// any worker or shard width.
package fluid

import (
	"math/rand"
	"time"

	"pbecc/internal/core"
	"pbecc/internal/lte"
	"pbecc/internal/netsim"
	"pbecc/internal/obs"
	"pbecc/internal/phy"
	"pbecc/internal/trace"
)

// DefaultWindow is the envelope update cadence: the PBE monitor's
// smoothing window (40 subframes at 1 ms), so the background load PBE
// measures moves on exactly the timescale its estimator smooths over.
const DefaultWindow = core.DefaultWindow * time.Millisecond

// QuantumBits is the packetization quantum: a session joins the
// water-fill only once a full MSS-sized packet's worth of bits is
// backlogged, mirroring the duty cycle a packet-level source with the
// same rate would show on the control channel.
const QuantumBits = netsim.MSS * 8

// Metrics (deterministic order-independent sums; see internal/obs).
var (
	mEnvelopeUpdates = obs.NewCounter("fluid.envelope_updates")
	mOfferedBits     = obs.NewCounter("fluid.offered_bits")
	mServedBits      = obs.NewCounter("fluid.served_bits")
	mSessionWindows  = obs.NewCounter("fluid.session_on_windows")
)

// Session is one background user's deterministic rate envelope on a real
// cell: an exponential on/off cycle (clamped by trace.SessionOnOff) at a
// fixed offered rate, starting after a phase delay. RNTI and MCS are
// what the cell's control channel shows while the session holds grants.
type Session struct {
	RNTI    uint16
	MCS     phy.MCS
	RateBps float64
	On, Off time.Duration
	Phase   time.Duration
}

// activeAt reports whether the session's envelope is on at virtual time
// t: off before Phase, then cycling on-first with period On+Off.
func (s *Session) activeAt(t time.Duration) bool {
	if t < s.Phase {
		return false
	}
	cycle := s.On + s.Off
	if cycle <= 0 {
		return true
	}
	return (t-s.Phase)%cycle < s.On
}

// Stats aggregates a scenario's fluid tier: population size and the
// offered/served bit accounting of every envelope.
type Stats struct {
	// Sessions and Cells count the modeled background population:
	// cell-bound sessions plus the modeled-only tier.
	Sessions int
	Cells    int

	// OfferedBits is the load the population generated (rate x on-time);
	// ServedBits the part real cells actually granted capacity for;
	// DroppedBits the backlog discarded at the per-session cap (the fluid
	// analogue of a full RLC queue). Modeled-only cells have no
	// scheduler, so their offered bits are never "served".
	OfferedBits float64
	ServedBits  float64
	DroppedBits float64

	// EnvelopeUpdates counts window-boundary envelope re-evaluations;
	// SessionOnWindows counts (session, window) pairs that were on.
	EnvelopeUpdates  uint64
	SessionOnWindows uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Sessions += other.Sessions
	s.Cells += other.Cells
	s.OfferedBits += other.OfferedBits
	s.ServedBits += other.ServedBits
	s.DroppedBits += other.DroppedBits
	s.EnvelopeUpdates += other.EnvelopeUpdates
	s.SessionOnWindows += other.SessionOnWindows
}

// OfferedMbps returns the population's mean offered rate over a run of
// the given duration, in Mbit/s.
func (s *Stats) OfferedMbps(dur time.Duration) float64 {
	if dur <= 0 {
		return 0
	}
	return s.OfferedBits / dur.Seconds() / 1e6
}

// CellProcess is the per-cell fluid background process bound to a real
// cell: it implements lte.BackgroundSource. Not safe for concurrent use;
// like the cell it feeds, it lives on one shard's event loop.
type CellProcess struct {
	window     time.Duration
	maxBacklog float64

	sessions []Session
	active   []bool
	backlog  []float64

	last       time.Duration // accrued up to this virtual time
	nextUpdate time.Duration

	demand []lte.BackgroundDemand
	idx    []int // demand index -> session index

	stats Stats
}

// NewCellProcess builds the process for one cell. window is the envelope
// update cadence (0 = DefaultWindow); maxBacklogBits caps each session's
// backlog the way a finite per-user RLC queue caps a packet user (0 =
// uncapped).
func NewCellProcess(sessions []Session, window time.Duration, maxBacklogBits float64) *CellProcess {
	if window <= 0 {
		window = DefaultWindow
	}
	p := &CellProcess{
		window:     window,
		maxBacklog: maxBacklogBits,
		sessions:   sessions,
		active:     make([]bool, len(sessions)),
		backlog:    make([]float64, len(sessions)),
	}
	p.stats.Sessions = len(sessions)
	p.stats.Cells = 1
	return p
}

// accrue advances offered-bit accumulation to virtual time t under the
// current envelope flags.
func (p *CellProcess) accrue(t time.Duration) {
	dt := (t - p.last).Seconds()
	if dt <= 0 {
		return
	}
	for i := range p.sessions {
		if !p.active[i] {
			continue
		}
		bits := p.sessions[i].RateBps * dt
		p.stats.OfferedBits += bits
		p.backlog[i] += bits
		if p.maxBacklog > 0 && p.backlog[i] > p.maxBacklog {
			p.stats.DroppedBits += p.backlog[i] - p.maxBacklog
			p.backlog[i] = p.maxBacklog
		}
	}
	p.last = t
}

// Demand implements lte.BackgroundSource: it advances the envelope
// through any window boundaries up to now, accrues offered bits, and
// returns the sessions holding at least one packet quantum of backlog.
func (p *CellProcess) Demand(now time.Duration) []lte.BackgroundDemand {
	for now >= p.nextUpdate {
		p.accrue(p.nextUpdate)
		for i := range p.sessions {
			on := p.sessions[i].activeAt(p.nextUpdate)
			p.active[i] = on
			if on {
				p.stats.SessionOnWindows++
				mSessionWindows.Inc()
			}
		}
		p.stats.EnvelopeUpdates++
		mEnvelopeUpdates.Inc()
		p.nextUpdate += p.window
	}
	p.accrue(now)

	p.demand = p.demand[:0]
	p.idx = p.idx[:0]
	for i := range p.sessions {
		if p.backlog[i] < QuantumBits {
			continue
		}
		p.demand = append(p.demand, lte.BackgroundDemand{
			RNTI: p.sessions[i].RNTI,
			MCS:  p.sessions[i].MCS,
			Bits: int(p.backlog[i]),
		})
		p.idx = append(p.idx, i)
	}
	return p.demand
}

// Serve implements lte.BackgroundSource: the cell granted capacity for
// the i-th demand entry; drain the session's backlog by up to bits.
func (p *CellProcess) Serve(i int, bits int) {
	si := p.idx[i]
	served := float64(bits)
	if served > p.backlog[si] {
		served = p.backlog[si]
	}
	p.backlog[si] -= served
	p.stats.ServedBits += served
	mServedBits.Add(uint64(served))
}

// Stats returns the process's accounting so far.
func (p *CellProcess) Stats() Stats { return p.stats }

// modeledSession is the compact (16-byte) per-session state of the
// modeled tier: a million sessions fit in ~16 MB.
type modeledSession struct {
	rateBps float32
	onMs    uint32
	offMs   uint32
	phaseMs uint32
}

func (m *modeledSession) activeAtMs(tMs int64) bool {
	if tMs < int64(m.phaseMs) {
		return false
	}
	cycle := int64(m.onMs) + int64(m.offMs)
	if cycle <= 0 {
		return true
	}
	return (tMs-int64(m.phaseMs))%cycle < int64(m.onMs)
}

// Modeled is the nation-scale fluid-only tier: a population of
// background cells whose aggregate rate processes advance one window at
// a time with no per-slot scheduling at all. Split it into per-shard
// chunks with Chunks and drive each chunk from its shard's engine.
type Modeled struct {
	Window       time.Duration
	Cells        int
	UsersPerCell int

	sessions []modeledSession
	chunks   []*ModeledChunk
}

// DrawModeled draws a modeled population of cells x perCell sessions
// from the paper's user-rate and session-churn distributions. Rates are
// two PRBs' worth of trace.SampleUserRate, matching the packet-level
// churn population of the metro family; phases are uniform over each
// session's cycle so the population starts in steady state. The draw
// order is fixed, so the population is a pure function of rng's seed.
func DrawModeled(cells, perCell int, rng *rand.Rand, window time.Duration) *Modeled {
	if window <= 0 {
		window = DefaultWindow
	}
	m := &Modeled{Window: window, Cells: cells, UsersPerCell: perCell}
	m.sessions = make([]modeledSession, cells*perCell)
	for i := range m.sessions {
		rate := trace.SampleUserRate(rng) * 2e6
		on, off := trace.SessionOnOff(rng)
		phase := time.Duration(rng.Int63n(int64(on + off)))
		m.sessions[i] = modeledSession{
			rateBps: float32(rate),
			onMs:    uint32(on.Milliseconds()),
			offMs:   uint32(off.Milliseconds()),
			phaseMs: uint32(phase.Milliseconds()),
		}
	}
	return m
}

// Chunks partitions the population into n per-shard chunks (cell
// boundaries are respected, so one cell's sessions never straddle two
// chunks). The partition depends only on (population, n); n is the
// scenario's shard count, itself a pure function of the topology, so
// chunk contents never depend on how many shards advance concurrently.
func (m *Modeled) Chunks(n int) []*ModeledChunk {
	if n < 1 {
		n = 1
	}
	if n > m.Cells {
		n = m.Cells
	}
	m.chunks = make([]*ModeledChunk, 0, n)
	per := m.UsersPerCell
	for c := 0; c < n; c++ {
		loCell := m.Cells * c / n
		hiCell := m.Cells * (c + 1) / n
		m.chunks = append(m.chunks, &ModeledChunk{
			window:   m.Window,
			cells:    hiCell - loCell,
			sessions: m.sessions[loCell*per : hiCell*per],
		})
	}
	return m.chunks
}

// Stats sums every chunk's accounting in chunk order (deterministic
// float summation). Call it after the run; chunks advance on their own
// shards' event loops.
func (m *Modeled) Stats() Stats {
	s := Stats{Sessions: len(m.sessions), Cells: m.Cells}
	for _, ch := range m.chunks {
		s.OfferedBits += ch.offeredBits
		s.EnvelopeUpdates += ch.windows
		s.SessionOnWindows += ch.onWindows
	}
	return s
}

// ModeledChunk is the slice of a modeled population owned by one shard.
// Advance is not safe for concurrent use; schedule it on the owning
// shard's engine.
type ModeledChunk struct {
	window   time.Duration
	cells    int
	sessions []modeledSession

	offeredBits float64
	windows     uint64
	onWindows   uint64
}

// Advance accounts one envelope window ending at virtual time now: every
// session active at the window's start offered rate x window bits.
// Schedule it with engine.Every(window, ...).
func (ch *ModeledChunk) Advance(now time.Duration) {
	startMs := (now - ch.window).Milliseconds()
	winSec := ch.window.Seconds()
	var offered float64
	var on uint64
	for i := range ch.sessions {
		if ch.sessions[i].activeAtMs(startMs) {
			offered += float64(ch.sessions[i].rateBps) * winSec
			on++
		}
	}
	ch.offeredBits += offered
	ch.windows += uint64(ch.cells)
	ch.onWindows += on
	mEnvelopeUpdates.Add(uint64(ch.cells))
	mOfferedBits.Add(uint64(offered))
	mSessionWindows.Add(on)
}
