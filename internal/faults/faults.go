// Package faults is the deterministic measurement-fault injection layer:
// it sits between the cellular cells and the PBE physical-layer monitor
// and perturbs what the monitor observes - never what the network does.
// Measurement-based congestion control must be judged under systematic
// measurement faults, not just clean channels (Zhu et al.,
// arXiv:2308.03350); CapacityNoise covers white error, this package
// covers the structured failure modes a real PDCCH decoder exhibits.
//
// Four composable axes, each an intensity in [0, 1]:
//
//   - Stale: the decoder occasionally freezes and replays its last
//     successful decode for a hold window (a real blind decoder misses
//     DCI bursts and apps read cached state). The monitor ingests
//     out-of-date allocations while the cell moves on.
//   - Miss: cell detection is unreliable - an attach (initial camp,
//     carrier activation, post-handover re-camp) is delayed by a random
//     interval scaled by the intensity, so the monitor runs blind on a
//     carrier that is already scheduling the UE.
//   - Handover: forced detach/attach storms - every burst throws away
//     the monitor's sliding windows exactly as a real handover does,
//     and the re-attach is itself subject to the Miss axis.
//   - OnOff: an adversarial square-wave competitor whose half-period
//     matches the monitor's smoothing window, the worst case for a
//     windowed estimator (assembled at scenario level by the harness;
//     OnOffHalfPeriod is exported for that).
//
// Determinism: the injector draws only from its own rand stream, seeded
// from (scenario seed, UE RNTI), and schedules only on the UE's shard
// engine. Enabling a fault axis changes the simulation it perturbs, but
// any given configuration is byte-identical at every worker and shard
// width, and all-axes-off is byte-identical to a build without the
// package wired in at all.
package faults

import (
	"fmt"
	"math/rand"
	"time"

	"pbecc/internal/core"
	"pbecc/internal/lte"
	"pbecc/internal/obs"
	"pbecc/internal/sim"
)

var (
	mStaleWindows   = obs.NewCounter("faults.stale_windows")
	mStaleSubframes = obs.NewCounter("faults.stale_subframes")
	mMissDelays     = obs.NewCounter("faults.miss_delays")
	mHandoverBursts = obs.NewCounter("faults.handover_bursts")
	mOnOffFlows     = obs.NewCounter("faults.onoff_flows")
)

// Injection series (40 ms windows; tid 0): one sample per injected fault
// event, so a window's Count is its injection volume. The harness emits
// the OnOff competitor's on-transitions into the same signal.
var seriesInject = obs.Series("fault.inject")

// CountOnOffFlow records one adversarial on-off competitor stood up by
// the harness (the axis lives at scenario level, not in the injector).
func CountOnOffFlow() { mOnOffFlows.Inc() }

// Spec selects the fault axes and their intensities. The zero value is
// the clean channel.
type Spec struct {
	Stale    float64 `json:"stale,omitempty"`
	Miss     float64 `json:"miss,omitempty"`
	Handover float64 `json:"handover,omitempty"`
	OnOff    float64 `json:"onoff,omitempty"`
}

// Axes names the fault axes in canonical order (the sweep's vocabulary).
func Axes() []string { return []string{"stale", "miss", "handover", "onoff"} }

// MonitorAxis reports whether the named axis perturbs the monitor's view
// of the cells. Only monitor-consuming schemes can feel those; the onoff
// axis is ordinary cross-traffic that every scheme contends with.
func MonitorAxis(axis string) bool { return axis != "onoff" }

// Any reports whether any axis is active.
func (s Spec) Any() bool { return s.Stale > 0 || s.Miss > 0 || s.Handover > 0 || s.OnOff > 0 }

// MonitorAxes reports whether any axis needs an Injector between the
// cells and the monitor (OnOff does not: it is ordinary cross-traffic).
func (s Spec) MonitorAxes() bool { return s.Stale > 0 || s.Miss > 0 || s.Handover > 0 }

// Validate rejects intensities outside [0, 1].
func (s Spec) Validate() error {
	for _, a := range []struct {
		name string
		v    float64
	}{{"stale", s.Stale}, {"miss", s.Miss}, {"handover", s.Handover}, {"onoff", s.OnOff}} {
		if a.v < 0 || a.v > 1 {
			return fmt.Errorf("fault axis %s intensity %v outside [0, 1]", a.name, a.v)
		}
	}
	return nil
}

// Set assigns one named axis (the sweep's string-keyed interface).
func (s *Spec) Set(axis string, level float64) error {
	switch axis {
	case "stale":
		s.Stale = level
	case "miss":
		s.Miss = level
	case "handover":
		s.Handover = level
	case "onoff":
		s.OnOff = level
	default:
		return fmt.Errorf("unknown fault axis %q (valid: %v)", axis, Axes())
	}
	return nil
}

// Level reads one named axis.
func (s Spec) Level(axis string) float64 {
	switch axis {
	case "stale":
		return s.Stale
	case "miss":
		return s.Miss
	case "handover":
		return s.Handover
	case "onoff":
		return s.OnOff
	}
	return 0
}

// Tuning constants. Hold lengths and periods are chosen against the
// monitor's 40 ms smoothing window: long enough to corrupt a window,
// short enough that several faults land per second of simulation.
const (
	// StaleHoldSubframes is how many scheduling intervals one stale
	// window replays the held decode.
	StaleHoldSubframes = 12
	// staleEntryProb scales the per-subframe probability of entering a
	// stale window at intensity 1 (expected duty cycle at full
	// intensity: 12 stale per ~20 fresh subframes).
	staleEntryProb = 0.05
	// missMaxDelay bounds the attach delay at intensity 1.
	missMaxDelay = 2 * time.Second
	// handoverGap is the detached interval of one storm burst.
	handoverGap = 50 * time.Millisecond
	// handoverMinPeriod floors the burst period at intensity 1.
	handoverMinPeriod = 300 * time.Millisecond

	// OnOffHalfPeriod is the adversarial competitor's on (and off)
	// phase: one monitor smoothing window, so the estimator's view of
	// idle PRBs is maximally wrong in both phases.
	OnOffHalfPeriod = 40 * time.Millisecond
)

// Injector perturbs one monitor's view of its cells. The harness routes
// every attach, detach and control feed through it; with no axes active
// it is never constructed and the clean path is untouched.
type Injector struct {
	eng  *sim.Engine
	mon  *core.Monitor
	spec Spec
	rng  *rand.Rand

	// attached is the harness's desired cell set (what the monitor
	// would track without faults); gen guards delayed attaches against
	// later detaches and storms.
	attached map[int]core.CellInfo
	order    []int
	gen      map[int]int
}

// New wires an injector for one UE's monitor. All scheduling happens on
// eng (the UE's shard engine); the fault stream is seeded from the
// scenario seed and the UE's RNTI so it is independent of the engine's
// own draw order.
func New(eng *sim.Engine, mon *core.Monitor, spec Spec, seed int64, rnti uint16) *Injector {
	in := &Injector{
		eng:      eng,
		mon:      mon,
		spec:     spec,
		rng:      rand.New(rand.NewSource(seed*1000003 + int64(rnti)*7919 + 42)),
		attached: map[int]core.CellInfo{},
		gen:      map[int]int{},
	}
	if spec.Handover > 0 {
		in.scheduleStorm()
	}
	return in
}

// AttachCell registers a carrier the harness wants monitored. Under the
// Miss axis the actual monitor attach may be delayed; a detach (or a
// handover burst) before the delay expires cancels it.
func (in *Injector) AttachCell(info core.CellInfo) {
	if _, ok := in.attached[info.ID]; !ok {
		in.order = append(in.order, info.ID)
	}
	in.attached[info.ID] = info
	in.attach(info)
}

// attach performs one (possibly delayed) monitor attach attempt.
func (in *Injector) attach(info core.CellInfo) {
	in.gen[info.ID]++
	g := in.gen[info.ID]
	if in.spec.Miss > 0 && in.rng.Float64() < in.spec.Miss {
		delay := time.Duration((0.25 + 0.75*in.rng.Float64()) * in.spec.Miss * float64(missMaxDelay))
		mMissDelays.Inc()
		in.instant("faults.miss", info.ID)
		in.eng.Schedule(delay, func() {
			if in.gen[info.ID] != g {
				return
			}
			if _, ok := in.attached[info.ID]; ok {
				in.mon.AttachCell(info)
			}
		})
		return
	}
	in.mon.AttachCell(info)
}

// DetachCell removes a carrier from the desired set and the monitor,
// cancelling any pending delayed attach.
func (in *Injector) DetachCell(id int) {
	if _, ok := in.attached[id]; !ok {
		return
	}
	delete(in.attached, id)
	for i, v := range in.order {
		if v == id {
			in.order = append(in.order[:i], in.order[i+1:]...)
			break
		}
	}
	in.gen[id]++
	in.mon.DetachCell(id)
}

// scheduleStorm self-schedules the next handover burst: period shrinks
// with intensity, jittered from the injector's own stream so bursts do
// not phase-lock with the scenario's traffic cadence.
func (in *Injector) scheduleStorm() {
	base := time.Duration(float64(4*time.Second) * (1.05 - in.spec.Handover))
	if base < handoverMinPeriod {
		base = handoverMinPeriod
	}
	next := time.Duration(float64(base) * (0.75 + 0.5*in.rng.Float64()))
	in.eng.Schedule(next, func() {
		in.storm()
		in.scheduleStorm()
	})
}

// storm detaches every desired cell from the monitor and re-attaches
// after handoverGap, discarding the sliding windows exactly as a real
// handover re-camp does. The re-attach goes through the Miss axis, so
// the two compose.
func (in *Injector) storm() {
	if len(in.order) == 0 {
		return
	}
	mHandoverBursts.Inc()
	in.instant("faults.handover", 0)
	for _, id := range append([]int(nil), in.order...) {
		id := id
		in.gen[id]++
		g := in.gen[id]
		in.mon.DetachCell(id)
		in.eng.Schedule(handoverGap, func() {
			if in.gen[id] != g {
				return
			}
			if cur, ok := in.attached[id]; ok {
				in.attach(cur)
			}
		})
	}
}

// WrapFeed interposes the Stale axis on one cell's control feed: with no
// stale intensity it returns next unchanged. Each stale window replays
// the last successfully decoded report (content frozen, subframe clock
// still ticking) for StaleHoldSubframes intervals.
func (in *Injector) WrapFeed(next lte.Monitor) lte.Monitor {
	if in.spec.Stale <= 0 {
		return next
	}
	p := staleEntryProb * in.spec.Stale
	var held *lte.SubframeReport
	left := 0
	return func(rep *lte.SubframeReport) {
		if left > 0 && held != nil {
			left--
			mStaleSubframes.Inc()
			replay := *held
			replay.Subframe = rep.Subframe
			next(&replay)
			return
		}
		if in.rng.Float64() < p {
			left = StaleHoldSubframes
			mStaleWindows.Inc()
			in.instant("faults.stale", rep.CellID)
		}
		// Cells reuse the report struct across subframes: deep-copy the
		// grants so the held snapshot does not mutate underneath us.
		cp := *rep
		cp.Allocs = append([]lte.Alloc(nil), rep.Allocs...)
		held = &cp
		next(rep)
	}
}

// MarkInjection records one fault-injection event on eng's series. The
// harness calls it for the OnOff competitor's on-transitions, which are
// assembled at scenario build time rather than through an Injector.
func MarkInjection(eng *sim.Engine) {
	eng.SeriesBuffer().Track(seriesInject, 0).Sample(eng.Now(), 1)
}

// instant marks a fault on the run's trace when tracing is on, so
// Perfetto shows injections aligned with the cc rate tracks, and on the
// run's "fault.inject" series (one sample per injection; a window's
// Count is its injection volume) - the shading and recovery analytics
// read the series.
func (in *Injector) instant(name string, tid int) {
	if b := in.eng.ObsBuffer(); b != nil {
		b.Instant(name, "faults", in.eng.Now(), tid)
	}
	in.eng.SeriesBuffer().Track(seriesInject, 0).Sample(in.eng.Now(), 1)
}
