package faults

import (
	"testing"
	"time"

	"pbecc/internal/core"
	"pbecc/internal/lte"
	"pbecc/internal/phy"
	"pbecc/internal/sim"
)

func cellInfo(id int) core.CellInfo {
	mcs := phy.MCS{CQI: 10, Table: phy.Table64QAM, Streams: 1}
	return core.CellInfo{ID: id, NPRB: 100,
		Rate: func() float64 { return mcs.BitsPerPRB() },
		BER:  func() float64 { return 1e-6 }}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{}).Validate(); err != nil {
		t.Fatalf("zero spec invalid: %v", err)
	}
	if err := (Spec{Stale: 1, Miss: 0.5, Handover: 0.1, OnOff: 1}).Validate(); err != nil {
		t.Fatalf("full spec invalid: %v", err)
	}
	if err := (Spec{Miss: 1.5}).Validate(); err == nil {
		t.Fatal("intensity above 1 accepted")
	}
	if err := (Spec{Handover: -0.1}).Validate(); err == nil {
		t.Fatal("negative intensity accepted")
	}
}

func TestSpecSetLevelRoundTrip(t *testing.T) {
	var s Spec
	for i, axis := range Axes() {
		lv := 0.1 * float64(i+1)
		if err := s.Set(axis, lv); err != nil {
			t.Fatalf("Set(%q): %v", axis, err)
		}
		if got := s.Level(axis); got != lv {
			t.Fatalf("Level(%q) = %v, want %v", axis, got, lv)
		}
	}
	if err := s.Set("bogus", 1); err == nil {
		t.Fatal("unknown axis accepted")
	}
}

// TestStaleHoldsLastDecode: once a stale window opens, the wrapped feed
// must deliver the held grant pattern while the real cell has moved on,
// then resume fresh decodes.
func TestStaleHoldsLastDecode(t *testing.T) {
	eng := sim.New(1)
	mon := core.NewMonitor(61)
	in := New(eng, mon, Spec{Stale: 1}, 99, 61)

	var got []int // PRBs of RNTI 7 as seen downstream
	feed := in.WrapFeed(func(rep *lte.SubframeReport) {
		prbs := 0
		for _, a := range rep.Allocs {
			if a.RNTI == 7 {
				prbs = a.PRBs
			}
		}
		got = append(got, prbs)
	})
	mcs := phy.MCS{CQI: 10, Table: phy.Table64QAM, Streams: 1}
	rep := &lte.SubframeReport{CellID: 1, NPRB: 100}
	for i := 0; i < 400; i++ {
		rep.Subframe = i
		rep.Allocs = []lte.Alloc{{RNTI: 7, PRBs: i % 97, MCS: mcs}}
		feed(rep)
	}
	if len(got) != 400 {
		t.Fatalf("downstream saw %d reports, want 400", len(got))
	}
	stale := 0
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] { // replayed hold (fresh values all differ)
			stale++
		}
	}
	if stale == 0 {
		t.Fatal("full-intensity stale axis never replayed a decode")
	}
	if stale == len(got)-1 {
		t.Fatal("stale axis never resumed fresh decodes")
	}
}

// TestStaleOffIsIdentity: zero intensity must return the feed unchanged
// (pointer equality - the clean path has no wrapper at all).
func TestStaleOffIsIdentity(t *testing.T) {
	eng := sim.New(1)
	mon := core.NewMonitor(61)
	in := New(eng, mon, Spec{Miss: 1}, 99, 61)
	calls := 0
	next := lte.Monitor(func(*lte.SubframeReport) { calls++ })
	feed := in.WrapFeed(next)
	feed(&lte.SubframeReport{CellID: 1, NPRB: 100})
	if calls != 1 {
		t.Fatal("wrapped feed did not forward")
	}
}

// TestMissDelaysAttach: at full Miss intensity the monitor must not see
// the cell immediately, but must see it before the max delay elapses.
func TestMissDelaysAttach(t *testing.T) {
	eng := sim.New(1)
	mon := core.NewMonitor(61)
	in := New(eng, mon, Spec{Miss: 1}, 99, 61)
	in.AttachCell(cellInfo(1))
	if len(mon.ActiveCellIDs()) != 0 {
		t.Fatal("attach was not delayed at full Miss intensity")
	}
	eng.RunUntil(missMaxDelay + time.Millisecond)
	if len(mon.ActiveCellIDs()) != 1 {
		t.Fatal("delayed attach never landed")
	}
}

// TestDetachCancelsPendingAttach: a detach racing a delayed attach wins.
func TestDetachCancelsPendingAttach(t *testing.T) {
	eng := sim.New(1)
	mon := core.NewMonitor(61)
	in := New(eng, mon, Spec{Miss: 1}, 99, 61)
	in.AttachCell(cellInfo(1))
	in.DetachCell(1)
	eng.RunUntil(missMaxDelay + time.Millisecond)
	if len(mon.ActiveCellIDs()) != 0 {
		t.Fatal("cancelled attach landed after detach")
	}
}

// TestHandoverStormResetsWindows: bursts must empty and repopulate the
// monitor's cell set, and the window restart must actually discard the
// accumulated samples (capacity drops to the pre-fill value).
func TestHandoverStormResetsWindows(t *testing.T) {
	eng := sim.New(1)
	mon := core.NewMonitor(61)
	in := New(eng, mon, Spec{Handover: 1}, 99, 61)
	in.AttachCell(cellInfo(1))
	if len(mon.ActiveCellIDs()) != 1 {
		t.Fatal("clean attach did not land")
	}
	mcs := phy.MCS{CQI: 10, Table: phy.Table64QAM, Streams: 1}
	rep := &lte.SubframeReport{CellID: 1, NPRB: 100,
		Allocs: []lte.Alloc{{RNTI: 61, PRBs: 50, MCS: mcs}}}
	detached, reattached := 0, 0
	wasAttached := true
	eng.Every(time.Millisecond, func() {
		attached := len(mon.ActiveCellIDs()) == 1
		if !attached {
			detached++
		} else if !wasAttached {
			reattached++
		}
		wasAttached = attached
		if attached {
			rep.Subframe++
			mon.OnSubframe(rep)
		}
	})
	eng.RunUntil(4 * time.Second)
	if detached == 0 {
		t.Fatal("full-intensity handover storm never detached the cell")
	}
	if reattached == 0 {
		t.Fatal("storm never re-attached the cell")
	}
}

// TestInjectorDeterminism: two injectors with the same seed must produce
// the same fault sequence; a different seed must diverge.
func TestInjectorDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		eng := sim.New(1)
		mon := core.NewMonitor(61)
		in := New(eng, mon, Spec{Stale: 0.7}, seed, 61)
		var pattern []int
		feed := in.WrapFeed(func(rep *lte.SubframeReport) {
			pattern = append(pattern, rep.Allocs[0].PRBs)
		})
		mcs := phy.MCS{CQI: 10, Table: phy.Table64QAM, Streams: 1}
		rep := &lte.SubframeReport{CellID: 1, NPRB: 100}
		for i := 0; i < 500; i++ {
			rep.Subframe = i
			rep.Allocs = []lte.Alloc{{RNTI: 7, PRBs: i % 89, MCS: mcs}}
			feed(rep)
		}
		return pattern
	}
	a, b := run(5), run(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at subframe %d", i)
		}
	}
	c := run(6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}
