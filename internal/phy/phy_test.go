package phy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestCQIFromSINRMonotone(t *testing.T) {
	for _, table := range []CQITable{Table64QAM, Table256QAM} {
		prev := 0
		for sinr := -10.0; sinr <= 35; sinr += 0.25 {
			cqi := CQIFromSINR(sinr, table)
			if cqi < prev {
				t.Fatalf("CQI not monotone in SINR at %v dB (table %d): %d < %d", sinr, table, cqi, prev)
			}
			prev = cqi
		}
		if prev != 15 {
			t.Fatalf("max CQI at 35 dB = %d, want 15", prev)
		}
	}
}

func TestCQIFromSINROutOfRange(t *testing.T) {
	if cqi := CQIFromSINR(-20, Table64QAM); cqi != 0 {
		t.Fatalf("CQI at -20 dB = %d, want 0", cqi)
	}
}

func TestEfficiencyBounds(t *testing.T) {
	if Efficiency(0, Table64QAM) != 0 || Efficiency(16, Table64QAM) != 0 {
		t.Fatal("efficiency outside 1..15 must be 0")
	}
	if got := Efficiency(15, Table64QAM); got != 5.5547 {
		t.Fatalf("64QAM CQI15 efficiency = %v, want 5.5547", got)
	}
	if got := Efficiency(15, Table256QAM); got != 7.4063 {
		t.Fatalf("256QAM CQI15 efficiency = %v, want 7.4063", got)
	}
}

func TestEfficiencyMonotoneInCQI(t *testing.T) {
	for _, table := range []CQITable{Table64QAM, Table256QAM} {
		for cqi := 2; cqi <= 15; cqi++ {
			if Efficiency(cqi, table) <= Efficiency(cqi-1, table) {
				t.Fatalf("efficiency not increasing at CQI %d table %d", cqi, table)
			}
		}
	}
}

// TestMaxPhysicalRate checks the paper's calibration point: the maximum
// physical data rate is about 1.8 Mbit/s/PRB (Figure 11b).
func TestMaxPhysicalRate(t *testing.T) {
	m := MCS{CQI: 15, Table: Table256QAM, Streams: 2}
	got := MbitPerSecPerPRB(m.BitsPerPRB())
	if got < 1.7 || got > 1.9 {
		t.Fatalf("max rate = %.3f Mbit/s/PRB, want ~1.8", got)
	}
}

func TestMCSFromSINRStreams(t *testing.T) {
	if m := MCSFromSINR(10, Table64QAM); m.Streams != 1 {
		t.Fatalf("streams at 10 dB = %d, want 1", m.Streams)
	}
	if m := MCSFromSINR(25, Table64QAM); m.Streams != 2 {
		t.Fatalf("streams at 25 dB = %d, want 2", m.Streams)
	}
}

func TestMCSValid(t *testing.T) {
	if (MCS{CQI: 0, Table: Table64QAM, Streams: 1}).Valid() {
		t.Fatal("CQI 0 must be invalid")
	}
	if !(MCS{CQI: 7, Table: Table64QAM, Streams: 1}).Valid() {
		t.Fatal("CQI 7 must be valid")
	}
}

func TestBitsPerPRBZeroStreamsClamped(t *testing.T) {
	a := MCS{CQI: 7, Table: Table64QAM, Streams: 0}.BitsPerPRB()
	b := MCS{CQI: 7, Table: Table64QAM, Streams: 1}.BitsPerPRB()
	if a != b {
		t.Fatalf("streams=0 not clamped to 1: %v vs %v", a, b)
	}
}

func TestSINRFromRSSICalibration(t *testing.T) {
	if got := SINRFromRSSI(-85); math.Abs(got-22.5) > 1e-9 {
		t.Fatalf("SINR(-85) = %v, want 22.5", got)
	}
	if got := SINRFromRSSI(-105); math.Abs(got-4.5) > 1e-9 {
		t.Fatalf("SINR(-105) = %v, want 4.5", got)
	}
}

func TestBERAnchors(t *testing.T) {
	cases := []struct{ rssi, want float64 }{
		{-80, 1e-6}, {-85, 1e-6}, {-98, 2.5e-6}, {-113, 5e-6}, {-120, 5e-6},
	}
	for _, c := range cases {
		if got := BERFromRSSI(c.rssi); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("BER(%v) = %v, want %v", c.rssi, got, c.want)
		}
	}
	// Interpolation must be strictly monotone between anchors.
	prev := BERFromRSSI(-85)
	for rssi := -86.0; rssi >= -113; rssi-- {
		got := BERFromRSSI(rssi)
		if got < prev {
			t.Fatalf("BER not monotone at %v dBm", rssi)
		}
		prev = got
	}
}

// TestTBErrorRatePaperPoints verifies the Figure 6(b) curve: at p=5e-6 and
// L=70 kbit the error rate is about 0.30.
func TestTBErrorRatePaperPoints(t *testing.T) {
	got := TBErrorRate(5e-6, 70000)
	want := 1 - math.Pow(1-5e-6, 70000)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("TBErrorRate = %v, want %v", got, want)
	}
	if got < 0.25 || got > 0.35 {
		t.Fatalf("TBErrorRate(5e-6, 70kbit) = %v, want ~0.30 per Figure 6b", got)
	}
}

func TestTBErrorRateEdges(t *testing.T) {
	if TBErrorRate(1e-6, 0) != 0 {
		t.Fatal("zero-size TB must have zero error rate")
	}
	if TBErrorRate(0, 1000) != 0 {
		t.Fatal("zero BER must have zero error rate")
	}
	if TBErrorRate(1, 10) != 1 {
		t.Fatal("BER=1 must give error rate 1")
	}
}

func TestTBErrorRateMonotoneInSize(t *testing.T) {
	f := func(a, b uint16) bool {
		la, lb := int(a), int(b)
		if la > lb {
			la, lb = lb, la
		}
		return TBErrorRate(3e-6, la) <= TBErrorRate(3e-6, lb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEqn5RoundTrip property-tests that TransportFromPhysical inverts
// PhysicalFromTransport.
func TestEqn5RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		ct := rng.Float64() * 180000 // up to 180 kbit/subframe = 180 Mbit/s
		ber := 1e-6 + rng.Float64()*4e-6
		cp := PhysicalFromTransport(ct, ber)
		back := TransportFromPhysical(cp, ber)
		if math.Abs(back-ct) > 1+1e-3*ct {
			t.Fatalf("round trip ct=%v ber=%v -> cp=%v -> %v", ct, ber, cp, back)
		}
	}
}

func TestTransportFromPhysicalBelowPhysical(t *testing.T) {
	for _, cp := range []float64{0, 100, 10000, 100000, 180000} {
		ct := TransportFromPhysical(cp, 5e-6)
		if ct > cp {
			t.Fatalf("goodput %v exceeds physical capacity %v", ct, cp)
		}
		if cp > 0 && ct <= 0 {
			t.Fatalf("goodput non-positive for cp=%v", cp)
		}
	}
}

// TestOverheadFraction reproduces the shape of Figure 6(a): total overhead
// (retransmission + protocol) grows with offered load and stays in the
// 6-16% band for the paper's loads.
func TestOverheadFraction(t *testing.T) {
	prev := 0.0
	for _, loadMbit := range []float64{5, 10, 20, 30, 40} {
		ct := loadMbit * 1e6 / 1000 // bits per subframe
		cp := PhysicalFromTransport(ct, 5e-6)
		overhead := (cp - ct) / cp
		if overhead < prev {
			t.Fatalf("overhead not increasing with load at %v Mbit/s", loadMbit)
		}
		if overhead < 0.05 || overhead > 0.25 {
			t.Fatalf("overhead at %v Mbit/s = %v, outside plausible band", loadMbit, overhead)
		}
		prev = overhead
	}
}

func TestTranslationTableMatchesDirect(t *testing.T) {
	tab := NewTranslationTable(2.5e-6, 200000, 500)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		cp := rng.Float64() * 200000
		got := tab.Transport(cp)
		want := TransportFromPhysical(cp, 2.5e-6)
		if math.Abs(got-want) > 1+0.002*want {
			t.Fatalf("table lookup cp=%v: got %v want %v", cp, got, want)
		}
	}
	if tab.BER() != 2.5e-6 {
		t.Fatalf("BER() = %v", tab.BER())
	}
}

func TestTranslationTableBeyondGrid(t *testing.T) {
	tab := NewTranslationTable(1e-6, 10000, 500)
	got := tab.Transport(50000)
	want := TransportFromPhysical(50000, 1e-6)
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("beyond-grid lookup: got %v want %v", got, want)
	}
	if tab.Transport(-5) != 0 {
		t.Fatal("negative capacity must yield 0")
	}
}

func TestFadingZeroWithoutRNG(t *testing.T) {
	f := NewFading(3, 50*time.Millisecond, nil)
	for i := 0; i < 10; i++ {
		if f.Step(time.Millisecond) != 0 {
			t.Fatal("nil-rng fading must stay at 0")
		}
	}
}

func TestFadingStationary(t *testing.T) {
	f := NewFading(3, 50*time.Millisecond, rand.New(rand.NewSource(1)))
	var sum, sumSq float64
	n := 200000
	for i := 0; i < n; i++ {
		v := f.Step(time.Millisecond)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.3 {
		t.Fatalf("fading mean = %v, want ~0", mean)
	}
	if std < 2 || std > 4 {
		t.Fatalf("fading std = %v, want ~3", std)
	}
}

func TestFadingOffsetDoesNotAdvance(t *testing.T) {
	f := NewFading(3, 50*time.Millisecond, rand.New(rand.NewSource(2)))
	f.Step(time.Millisecond)
	a := f.Offset()
	b := f.Offset()
	if a != b {
		t.Fatal("Offset must not advance the process")
	}
}

func TestTrajectoryInterpolation(t *testing.T) {
	tr := PaperMobilityTrajectory()
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, -85},
		{5 * time.Second, -85},
		{13 * time.Second, -85},
		{19500 * time.Millisecond, -95},
		{26 * time.Second, -105},
		{28 * time.Second, -95},
		{35 * time.Second, -85},
		{100 * time.Second, -85},
	}
	for _, c := range cases {
		if got := tr.At(c.at); math.Abs(got-c.want) > 0.01 {
			t.Fatalf("trajectory at %v = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestTrajectoryEmpty(t *testing.T) {
	var tr Trajectory
	if got := tr.At(time.Second); got != -85 {
		t.Fatalf("empty trajectory = %v, want default -85", got)
	}
}

func TestStaticChannel(t *testing.T) {
	c := NewStaticChannel(-85, Table256QAM, nil)
	sinr := c.Step(0, time.Millisecond)
	if math.Abs(sinr-22.5) > 1e-9 {
		t.Fatalf("static channel SINR = %v, want 22.5", sinr)
	}
	if c.RSSI() != -85 {
		t.Fatalf("RSSI = %v", c.RSSI())
	}
	if !c.MCS().Valid() {
		t.Fatal("MCS at -85 dBm must be valid")
	}
	if c.BER() != 1e-6 {
		t.Fatalf("BER = %v, want 1e-6", c.BER())
	}
}

func TestMobileChannelFollowsTrajectory(t *testing.T) {
	c := NewMobileChannel(PaperMobilityTrajectory(), Table64QAM, nil)
	c.Step(0, time.Millisecond)
	strong := c.MCS().BitsPerPRB()
	c.Step(26*time.Second, time.Millisecond)
	weak := c.MCS().BitsPerPRB()
	if weak >= strong {
		t.Fatalf("rate at -105 dBm (%v) must be below rate at -85 dBm (%v)", weak, strong)
	}
	if c.SINR() != SINRFromRSSI(-105) {
		t.Fatalf("SINR = %v, want %v", c.SINR(), SINRFromRSSI(-105))
	}
}

func BenchmarkTransportFromPhysical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		TransportFromPhysical(60000, 2.5e-6)
	}
}

func BenchmarkTranslationTableLookup(b *testing.B) {
	tab := NewTranslationTable(2.5e-6, 200000, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Transport(float64(i%200) * 1000)
	}
}
