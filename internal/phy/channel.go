package phy

import (
	"math"
	"math/rand"
	"time"
)

// Fading is a first-order Gauss-Markov process describing slow channel
// variation around a mean, in dB. Successive samples at interval dt are
// correlated with coefficient exp(-dt/tau), where tau is the coherence time.
type Fading struct {
	SigmaDB   float64       // standard deviation of the dB offset
	Coherence time.Duration // correlation time constant
	state     float64
	rng       *rand.Rand
}

// NewFading returns a fading process with the given deviation and coherence
// time, using rng for noise. A nil rng yields a process that always returns
// zero offset (useful for deterministic tests).
func NewFading(sigmaDB float64, coherence time.Duration, rng *rand.Rand) *Fading {
	return &Fading{SigmaDB: sigmaDB, Coherence: coherence, rng: rng}
}

// Step advances the process by dt and returns the new dB offset.
func (f *Fading) Step(dt time.Duration) float64 {
	if f.rng == nil || f.SigmaDB == 0 {
		return 0
	}
	tau := f.Coherence
	if tau <= 0 {
		tau = 50 * time.Millisecond
	}
	rho := math.Exp(-float64(dt) / float64(tau))
	f.state = f.state*rho + f.rng.NormFloat64()*f.SigmaDB*math.Sqrt(1-rho*rho)
	return f.state
}

// Offset returns the current dB offset without advancing the process.
func (f *Fading) Offset() float64 { return f.state }

// TrajectorySegment linearly interpolates RSSI between two instants.
type TrajectorySegment struct {
	Start, End time.Duration
	FromDBm    float64
	ToDBm      float64
}

// Trajectory is a piecewise-linear RSSI-versus-time path, used to model
// client mobility. Outside all segments the nearest endpoint value holds.
type Trajectory []TrajectorySegment

// At returns the RSSI in dBm at virtual time t.
func (tr Trajectory) At(t time.Duration) float64 {
	if len(tr) == 0 {
		return -85
	}
	if t <= tr[0].Start {
		return tr[0].FromDBm
	}
	for _, s := range tr {
		if t >= s.Start && t < s.End {
			frac := float64(t-s.Start) / float64(s.End-s.Start)
			return s.FromDBm + frac*(s.ToDBm-s.FromDBm)
		}
	}
	return tr[len(tr)-1].ToDBm
}

// PaperMobilityTrajectory reproduces the experiment of §6.3.2: hold at
// -85 dBm for 13 s, move to -105 dBm over the next 13 s, return to -85 dBm
// in 4 s, and hold for the final 10 s (40 s total).
func PaperMobilityTrajectory() Trajectory {
	return Trajectory{
		{Start: 0, End: 13 * time.Second, FromDBm: -85, ToDBm: -85},
		{Start: 13 * time.Second, End: 26 * time.Second, FromDBm: -85, ToDBm: -105},
		{Start: 26 * time.Second, End: 30 * time.Second, FromDBm: -105, ToDBm: -85},
		{Start: 30 * time.Second, End: 40 * time.Second, FromDBm: -85, ToDBm: -85},
	}
}

// Channel produces the per-subframe radio state of one user on one cell:
// SINR (with fading), the MCS the scheduler would select, and the BER that
// drives transport-block errors.
type Channel struct {
	Table      CQITable
	trajectory Trajectory
	staticRSSI float64
	fading     *Fading
	lastRSSI   float64
	lastSINR   float64
}

// NewStaticChannel returns a channel pinned at a fixed RSSI with optional
// fading.
func NewStaticChannel(rssiDBm float64, table CQITable, fading *Fading) *Channel {
	return &Channel{Table: table, staticRSSI: rssiDBm, fading: fading, lastRSSI: rssiDBm}
}

// NewMobileChannel returns a channel following an RSSI trajectory with
// optional fading.
func NewMobileChannel(tr Trajectory, table CQITable, fading *Fading) *Channel {
	c := &Channel{Table: table, trajectory: tr, fading: fading}
	c.lastRSSI = tr.At(0)
	return c
}

// Step advances the channel to virtual time t (called once per subframe)
// and returns the effective SINR in dB.
func (c *Channel) Step(t, dt time.Duration) float64 {
	rssi := c.staticRSSI
	if c.trajectory != nil {
		rssi = c.trajectory.At(t)
	}
	c.lastRSSI = rssi
	offset := 0.0
	if c.fading != nil {
		offset = c.fading.Step(dt)
	}
	c.lastSINR = SINRFromRSSI(rssi) + offset
	return c.lastSINR
}

// RSSI returns the (pre-fading) RSSI at the last Step, in dBm.
func (c *Channel) RSSI() float64 { return c.lastRSSI }

// SINR returns the effective SINR at the last Step, in dB.
func (c *Channel) SINR() float64 { return c.lastSINR }

// MCS returns the modulation and coding scheme for the last Step.
func (c *Channel) MCS() MCS { return MCSFromSINR(c.lastSINR, c.Table) }

// BER returns the fitted bit error rate for the last Step.
func (c *Channel) BER() float64 { return BERFromRSSI(c.lastRSSI) }
