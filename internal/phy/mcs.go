// Package phy models the LTE/5G-NR physical layer quantities PBE-CC
// depends on: the SINR → CQI → spectral-efficiency chain that determines the
// wireless physical data rate R_w (bits per PRB), the i.i.d.-bit-error
// transport-block error model of the paper's Figure 6(b), slow fading, and
// RSSI trajectories for mobility experiments.
//
// Calibration follows the paper: a 20 MHz cell has 100 PRBs and the maximum
// achievable physical rate is 1.8 Mbit/s/PRB (two spatial streams of 256-QAM),
// matching Figure 11(b).
package phy

import "math"

// DataREsPerPRB is the number of resource elements per PRB pair (one
// subframe) usable for data after control channel and reference-signal
// overhead: 12 subcarriers x 14 symbols = 168 REs, minus roughly 3 symbols
// of control region and cell reference signals.
const DataREsPerPRB = 120

// PRB widths of standard LTE channel bandwidths.
const (
	PRBs5MHz  = 25
	PRBs10MHz = 50
	PRBs15MHz = 75
	PRBs20MHz = 100
)

// cqiEff64 is 3GPP TS 36.213 Table 7.2.3-1 (up to 64-QAM): spectral
// efficiency in bits per resource element, indexed by CQI 1..15.
var cqiEff64 = [16]float64{0,
	0.1523, 0.2344, 0.3770, 0.6016, 0.8770,
	1.1758, 1.4766, 1.9141, 2.4063, 2.7305,
	3.3223, 3.9023, 4.5234, 5.1152, 5.5547,
}

// cqiEff256 is 3GPP TS 36.213 Table 7.2.3-2 (up to 256-QAM).
var cqiEff256 = [16]float64{0,
	0.1523, 0.3770, 0.8770, 1.4766, 1.9141,
	2.4063, 2.7305, 3.3223, 3.9023, 4.5234,
	5.1152, 5.5547, 6.2266, 6.9141, 7.4063,
}

// sinrThresh64 gives the minimum SINR (dB) at which CQI index i (1..15) of
// the 64-QAM table is reported, from standard link-level curves.
var sinrThresh64 = [16]float64{math.Inf(-1),
	-6.7, -4.7, -2.3, 0.2, 2.4,
	4.3, 5.9, 8.1, 10.3, 11.7,
	14.1, 16.3, 18.7, 21.0, 22.7,
}

// sinrThresh256 stretches the thresholds to cover the 256-QAM entries.
var sinrThresh256 = [16]float64{math.Inf(-1),
	-6.7, -2.3, 2.4, 5.9, 8.1,
	10.3, 11.7, 14.1, 16.3, 18.7,
	21.0, 22.7, 24.2, 25.9, 27.5,
}

// CQITable selects which CQI/efficiency table a cell uses.
type CQITable int

// Supported CQI tables.
const (
	Table64QAM  CQITable = 1 // TS 36.213 Table 7.2.3-1
	Table256QAM CQITable = 2 // TS 36.213 Table 7.2.3-2
)

// CQIFromSINR maps a wideband SINR in dB to the reported CQI (0..15) under
// the given table. CQI 0 means out of range (no transmission possible).
func CQIFromSINR(sinrDB float64, table CQITable) int {
	thr := &sinrThresh64
	if table == Table256QAM {
		thr = &sinrThresh256
	}
	cqi := 0
	for i := 1; i <= 15; i++ {
		if sinrDB >= thr[i] {
			cqi = i
		}
	}
	return cqi
}

// Efficiency returns the spectral efficiency in bits per resource element
// for the given CQI (1..15) under the given table. CQI 0 yields 0.
func Efficiency(cqi int, table CQITable) float64 {
	if cqi <= 0 || cqi > 15 {
		return 0
	}
	if table == Table256QAM {
		return cqiEff256[cqi]
	}
	return cqiEff64[cqi]
}

// MCS captures the wireless physical rate of one user on one cell: the CQI
// bucket the scheduler selected, the table in use, and the number of spatial
// streams (rank).
type MCS struct {
	CQI     int
	Table   CQITable
	Streams int
}

// BitsPerPRB returns the paper's R_w: wireless physical data rate in bits
// carried by one PRB over one subframe (1 ms).
func (m MCS) BitsPerPRB() float64 {
	s := m.Streams
	if s < 1 {
		s = 1
	}
	return Efficiency(m.CQI, m.Table) * DataREsPerPRB * float64(s)
}

// Valid reports whether the MCS supports any transmission.
func (m MCS) Valid() bool { return m.CQI >= 1 && m.CQI <= 15 }

// MCSFromSINR picks the MCS for a user at the given SINR: the reported CQI
// and, when the SINR supports it, a second spatial stream (rank 2 requires
// roughly 16 dB of SINR headroom in deployed networks).
func MCSFromSINR(sinrDB float64, table CQITable) MCS {
	streams := 1
	if sinrDB >= 16 {
		streams = 2
	}
	return MCS{CQI: CQIFromSINR(sinrDB, table), Table: table, Streams: streams}
}

// SINRFromRSSI converts a received signal strength (dBm) into a wideband
// SINR estimate (dB). The affine calibration places the paper's strong
// location (-85 dBm) at 22.5 dB (max 64-QAM CQI) and its weak location
// (-105 dBm) at 4.5 dB.
func SINRFromRSSI(rssiDBm float64) float64 {
	return (rssiDBm + 110) * 0.9
}

// MbitPerSecPerPRB converts R_w in bits/PRB/subframe to the Mbit/s/PRB unit
// of the paper's Figure 11(b) (1000 subframes per second).
func MbitPerSecPerPRB(bitsPerPRB float64) float64 {
	return bitsPerPRB * 1000 / 1e6
}
