package phy

import "time"

// 5G NR flexible numerology (3GPP TS 38.211 §4.3): the subcarrier spacing
// is 15 kHz * 2^µ and a slot always spans 14 OFDM symbols, so slots shrink
// as µ grows: 1 ms at µ=0, 0.5 ms at µ=1, 0.25 ms at µ=2, 0.125 ms at µ=3.
// Sub-6 GHz deployments use µ=0/1 (µ=2 in some bands); mmWave (FR2) uses
// µ=3. Because every slot carries 14 symbols, the per-PRB-per-slot resource
// count matches the LTE per-PRB-per-subframe count, and MCS.BitsPerPRB
// gives bits per PRB per *slot* for NR cells.

// NRMaxMu is the largest numerology the simulator models (120 kHz, FR2).
const NRMaxMu = 3

// NRSlotsPerSubframe returns 2^µ, the number of NR slots in one 1 ms
// subframe. µ outside 0..NRMaxMu is clamped.
func NRSlotsPerSubframe(mu int) int {
	return 1 << clampMu(mu)
}

// NRSlotDuration returns the slot length of numerology µ: 1 ms / 2^µ.
func NRSlotDuration(mu int) time.Duration {
	return time.Millisecond / time.Duration(NRSlotsPerSubframe(mu))
}

// NRSlotsPerSecond returns the slot rate of numerology µ (1000 * 2^µ).
func NRSlotsPerSecond(mu int) float64 {
	return 1000 * float64(NRSlotsPerSubframe(mu))
}

func clampMu(mu int) int {
	if mu < 0 {
		return 0
	}
	if mu > NRMaxMu {
		return NRMaxMu
	}
	return mu
}

// nrCarrierPRBs is the maximum transmission bandwidth configuration N_RB of
// 3GPP TS 38.101-1 Table 5.3.2-1 (FR1) and TS 38.101-2 Table 5.3.2-1 (FR2):
// PRBs per carrier indexed by [µ][bandwidth MHz]. Zero means the combination
// is not defined by the standard.
var nrCarrierPRBs = [NRMaxMu + 1]map[int]int{
	0: {5: 25, 10: 52, 15: 79, 20: 106, 25: 133, 40: 216, 50: 270},
	1: {5: 11, 10: 24, 15: 38, 20: 51, 25: 65, 40: 106, 50: 133, 60: 162, 80: 217, 100: 273},
	2: {10: 11, 15: 18, 20: 24, 25: 31, 40: 51, 50: 65, 60: 79, 80: 107, 100: 135},
	3: {50: 32, 100: 66, 200: 132, 400: 264},
}

// NRCarrierPRBs returns the PRB count of an NR carrier with the given
// numerology and channel bandwidth in MHz, or 0 if 3GPP does not define the
// combination. The workhorse sub-6 configuration is µ=1 at 100 MHz
// (273 PRBs); the mmWave profile is µ=3 at 100-400 MHz.
func NRCarrierPRBs(mu, bandwidthMHz int) int {
	if mu < 0 || mu > NRMaxMu {
		return 0
	}
	return nrCarrierPRBs[mu][bandwidthMHz]
}

// NRCellRateBps returns the peak physical rate of an NR carrier in bits per
// second for a given per-slot MCS: bitsPerPRB * NPRB * slots/sec. It is the
// NR analogue of R_w * P_cell * 1000 for LTE.
func NRCellRateBps(m MCS, mu, nprb int) float64 {
	return m.BitsPerPRB() * float64(nprb) * NRSlotsPerSecond(mu)
}
