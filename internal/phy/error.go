package phy

import "math"

// The paper models transport-block errors with independent, identically
// distributed bit errors: a TB of L bits decodes incorrectly with
// probability 1-(1-p)^L, where p is the bit error rate. Figure 6(b) fits
// p between 1e-6 and 5e-6 depending on signal strength (-98 dBm and
// -113 dBm locations).

// berAnchor is a (RSSI dBm, BER) calibration point.
type berAnchor struct {
	rssi float64
	ber  float64
}

// berAnchors are taken directly from the labels of Figure 6: strong signal
// approaches the 1e-6 floor, the -98 dBm location sits near 2.5e-6, and the
// -113 dBm location near 5e-6. Interpolation is linear in p between anchors
// and clamped outside.
var berAnchors = []berAnchor{
	{-85, 1e-6},
	{-98, 2.5e-6},
	{-113, 5e-6},
}

// BERFromRSSI returns the fitted bit error rate for a given received signal
// strength in dBm.
func BERFromRSSI(rssiDBm float64) float64 {
	a := berAnchors
	if rssiDBm >= a[0].rssi {
		return a[0].ber
	}
	if rssiDBm <= a[len(a)-1].rssi {
		return a[len(a)-1].ber
	}
	for i := 1; i < len(a); i++ {
		if rssiDBm > a[i].rssi {
			frac := (a[i-1].rssi - rssiDBm) / (a[i-1].rssi - a[i].rssi)
			return a[i-1].ber + frac*(a[i].ber-a[i-1].ber)
		}
	}
	return a[len(a)-1].ber
}

// TBErrorRate returns the probability that a transport block of sizeBits
// bits is received in error, 1-(1-p)^L, computed in log space for numerical
// stability at small p and large L.
func TBErrorRate(ber float64, sizeBits int) float64 {
	if sizeBits <= 0 || ber <= 0 {
		return 0
	}
	if ber >= 1 {
		return 1
	}
	return -math.Expm1(float64(sizeBits) * math.Log1p(-ber))
}

// ProtocolOverhead is the fraction of physical-layer capacity consumed by
// constant protocol headers (PDCP/RLC/MAC), measured by the paper as 6.8%.
const ProtocolOverhead = 0.068

// TransportFromPhysical solves the paper's Eqn. 5 for the transport-layer
// goodput C_t given a physical-layer capacity C_p (both in bits per
// subframe) and the bit error rate p:
//
//	C_p = C_t + C_t*(1-(1-p)^L) + gamma*C_p,  L = C_t (bits in one subframe)
//
// The equation is solved by bisection on C_t in [0, C_p].
func TransportFromPhysical(cp float64, ber float64) float64 {
	if cp <= 0 {
		return 0
	}
	budget := cp * (1 - ProtocolOverhead)
	lo, hi := 0.0, budget
	for i := 0; i < 60 && hi-lo > 1e-9*budget; i++ {
		ct := (lo + hi) / 2
		need := ct * (1 + TBErrorRate(ber, int(ct)))
		if need > budget {
			hi = ct
		} else {
			lo = ct
		}
	}
	return (lo + hi) / 2
}

// TransportFromPhysicalCBG solves Eqn 5 for a 5G NR cell, where HARQ
// retransmits fixed-size code-block groups rather than whole transport
// blocks: the per-group error probability is constant, so
// C_p = C_t*(1+p_cbg) + gamma*C_p has a closed form. Using the paper's
// whole-TB form on NR would grossly overestimate retransmission overhead,
// since NR transport blocks reach hundreds of kilobits per subframe.
func TransportFromPhysicalCBG(cp, ber float64, cbgBits int) float64 {
	if cp <= 0 {
		return 0
	}
	return cp * (1 - ProtocolOverhead) / (1 + TBErrorRate(ber, cbgBits))
}

// PhysicalFromTransport computes the physical capacity needed to carry a
// transport goodput C_t at bit error rate p (the forward direction of
// Eqn. 5). It is the exact inverse of TransportFromPhysical.
func PhysicalFromTransport(ct float64, ber float64) float64 {
	if ct <= 0 {
		return 0
	}
	return ct * (1 + TBErrorRate(ber, int(ct))) / (1 - ProtocolOverhead)
}

// TranslationTable precomputes the Eqn. 5 transformation on a capacity grid,
// mirroring the lookup table the paper uses to avoid solving the equation on
// the datapath. Lookups interpolate linearly between grid points.
type TranslationTable struct {
	ber  float64
	step float64
	ct   []float64 // ct[i] = TransportFromPhysical(i*step, ber)
}

// NewTranslationTable builds a table for capacities up to maxBitsPerSubframe
// with the given grid step (both in bits per subframe).
func NewTranslationTable(ber, maxBitsPerSubframe, step float64) *TranslationTable {
	if step <= 0 {
		step = 1000
	}
	n := int(maxBitsPerSubframe/step) + 2
	t := &TranslationTable{ber: ber, step: step, ct: make([]float64, n)}
	for i := range t.ct {
		t.ct[i] = TransportFromPhysical(float64(i)*step, ber)
	}
	return t
}

// BER returns the bit error rate the table was built for.
func (t *TranslationTable) BER() float64 { return t.ber }

// Transport looks up the transport goodput for a physical capacity cp in
// bits per subframe, interpolating between grid points and falling back to
// direct solving beyond the grid.
func (t *TranslationTable) Transport(cp float64) float64 {
	if cp <= 0 {
		return 0
	}
	pos := cp / t.step
	i := int(pos)
	if i+1 >= len(t.ct) {
		return TransportFromPhysical(cp, t.ber)
	}
	frac := pos - float64(i)
	return t.ct[i] + frac*(t.ct[i+1]-t.ct[i])
}
