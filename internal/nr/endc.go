package nr

import (
	"time"

	"pbecc/internal/lte"
	"pbecc/internal/netsim"
	"pbecc/internal/phy"
	"pbecc/internal/sim"
)

// EN-DC secondary-cell-group policy constants, mirroring the LTE
// carrier-aggregation dynamics of the paper's Figure 2: the NR leg
// activates after roughly 100 ms of sustained demand on the LTE anchor and
// deactivates once the offered load fits comfortably in the anchor alone.
const (
	scgDecisionWindow  = 100 // subframes observed before activation
	scgActivateFrac    = 0.8 // fraction of window that must show demand
	scgOccupancyFrac   = 0.6 // anchor PRB share that signals demand
	scgBacklogBits     = 12000
	scgActivateHoldoff = 150 * time.Millisecond
	scgDeactWindow     = 500 // subframes for the deactivation decision
	scgDeactFrac       = 0.6 // load must fit in this fraction of the anchor
	scgDeactHoldoff    = 500 * time.Millisecond
)

// ENDC is a non-standalone (EN-DC, 3GPP option 3) dual-connectivity UE: an
// LTE anchor carries the connection and, under sustained demand, the
// network activates an NR secondary cell group whose capacity is
// aggregated with the anchor's. Downlink packets are split across the two
// RATs by estimated drain time, each leg reorders its own HARQ-delayed
// transport blocks, and released packets merge into per-flow receivers.
type ENDC struct {
	eng  *sim.Engine
	ID   int
	RNTI uint16

	anchor *lte.UE
	nrLeg  *UE
	nrCell *Cell

	flows       map[int]netsim.Handler
	defaultFlow netsim.Handler

	nrActive bool
	enabled  bool

	onSecondaryChange []func(active bool)

	// SCG decision state, sampled on the anchor's subframe clock.
	demandRing []bool
	demandIdx  int
	demandFill int
	servedRing []int
	servedIdx  int
	servedFill int
	servedSum  int64
	lastChange time.Duration
	ticker     *sim.Ticker

	// Counters.
	Activations   uint64
	Deactivations uint64
}

// NewENDC builds a dual-connectivity UE from an LTE anchor and one NR
// secondary cell. The anchor must already be attached to its LTE cells;
// the EN-DC UE takes over its flow routing (packets released by either leg
// merge through the EN-DC flow table). The NR leg attaches immediately but
// stays inactive until demand activates it.
func NewENDC(eng *sim.Engine, id int, rnti uint16, anchor *lte.UE, nrCell *Cell, nrCh *phy.Channel) *ENDC {
	e := &ENDC{
		eng:        eng,
		ID:         id,
		RNTI:       rnti,
		anchor:     anchor,
		nrCell:     nrCell,
		enabled:    true,
		flows:      make(map[int]netsim.Handler),
		demandRing: make([]bool, scgDecisionWindow),
		servedRing: make([]int, scgDeactWindow),
	}
	e.nrLeg = NewUE(eng, id, rnti)
	e.nrLeg.AddCell(nrCell, nrCh)
	merge := netsim.HandlerFunc(func(now time.Duration, p *netsim.Packet) { e.route(now, p) })
	anchor.SetDefaultHandler(merge)
	e.nrLeg.SetDefaultHandler(merge)
	return e
}

// AnchorUE returns the LTE anchor leg.
func (e *ENDC) AnchorUE() *lte.UE { return e.anchor }

// NRCell returns the secondary NR carrier.
func (e *ENDC) NRCell() *Cell { return e.nrCell }

// NRActive reports whether the NR secondary cell group is active.
func (e *ENDC) NRActive() bool { return e.nrActive }

// SetDualConnectivity enables or disables NR secondary activation
// (disabled models an LTE-only data plan on a 5G phone).
func (e *ENDC) SetDualConnectivity(on bool) { e.enabled = on }

// OnSecondaryChange registers a callback fired when the NR leg activates
// or deactivates (PBE-CC's monitor attaches or detaches the NR cell on
// this event, restarting its ramp as in §4.1).
func (e *ENDC) OnSecondaryChange(fn func(active bool)) {
	e.onSecondaryChange = append(e.onSecondaryChange, fn)
}

// RegisterFlow routes released packets with the given flow ID to h.
func (e *ENDC) RegisterFlow(flowID int, h netsim.Handler) { e.flows[flowID] = h }

// SetDefaultHandler routes packets of unregistered flows.
func (e *ENDC) SetDefaultHandler(h netsim.Handler) { e.defaultFlow = h }

// Start begins the anchor's carrier-aggregation bookkeeping and the EN-DC
// secondary-activation policy on the subframe clock.
func (e *ENDC) Start() {
	e.anchor.Start()
	if e.ticker == nil {
		e.ticker = e.eng.Every(time.Millisecond, e.tick)
	}
}

// Stop halts both legs' tickers.
func (e *ENDC) Stop() {
	e.anchor.Stop()
	if e.ticker != nil {
		e.ticker.Stop()
		e.ticker = nil
	}
}

// Delivered returns the packets released in order across both legs.
func (e *ENDC) Delivered() uint64 { return e.anchor.Delivered + e.nrLeg.Delivered }

// LostPackets returns the packets lost after HARQ exhaustion on either leg.
func (e *ENDC) LostPackets() uint64 { return e.anchor.LostPackets + e.nrLeg.LostPackets }

// HandlePacket dispatches an arriving downlink packet: to the anchor while
// the NR leg is inactive, otherwise to the leg with the smaller estimated
// drain time (the network's bearer split across RATs). Drain times compare
// in wall-clock seconds, which makes the split numerology-agnostic.
func (e *ENDC) HandlePacket(now time.Duration, p *netsim.Packet) {
	if !e.nrActive {
		e.anchor.HandlePacket(now, p)
		return
	}
	anchorRate := e.anchorRateBps()
	nrRate := e.nrCell.UserRateBps(e.RNTI)
	if nrRate <= 0 {
		e.anchor.HandlePacket(now, p)
		return
	}
	if anchorRate <= 0 {
		e.nrLeg.HandlePacket(now, p)
		return
	}
	anchorDrain := float64(e.anchorQueueBits()) / anchorRate
	nrDrain := float64(e.nrCell.UserQueueBits(e.RNTI)) / nrRate
	if nrDrain < anchorDrain {
		e.nrLeg.HandlePacket(now, p)
		return
	}
	e.anchor.HandlePacket(now, p)
}

// anchorRateBps sums the anchor's active-cell rates in bits per second.
func (e *ENDC) anchorRateBps() float64 {
	var rate float64
	for _, c := range e.anchor.ActiveCells() {
		rate += c.UserRate(e.RNTI) * float64(c.NPRB) * 1000
	}
	return rate
}

// anchorQueueBits sums the bits queued for this UE across the anchor's
// active cells.
func (e *ENDC) anchorQueueBits() int {
	bits := 0
	for _, c := range e.anchor.ActiveCells() {
		bits += c.UserQueueBits(e.RNTI)
	}
	return bits
}

func (e *ENDC) route(now time.Duration, p *netsim.Packet) {
	h := e.flows[p.FlowID]
	if h == nil {
		h = e.defaultFlow
	}
	if h != nil {
		h.HandlePacket(now, p)
	}
}

// tick runs once per subframe, sampling anchor demand and total served
// load for the secondary-activation policy.
func (e *ENDC) tick() {
	queued := e.anchorQueueBits()
	userPRBs := 0
	totalPRBs := 0
	served := 0
	for _, c := range e.anchor.ActiveCells() {
		userPRBs += c.LastUserPRBs(e.RNTI)
		totalPRBs += c.NPRB
		served += c.LastUserServedBits(e.RNTI)
	}
	if e.nrActive {
		// The NR cell schedules 2^µ slots per subframe; LastUserServedBits
		// covers only the latest slot, so scale it to a per-subframe
		// estimate for the deactivation decision.
		served += e.nrCell.LastUserServedBits(e.RNTI) * e.nrCell.SlotsPerSubframe()
	}
	demand := queued >= scgBacklogBits ||
		float64(userPRBs) >= scgOccupancyFrac*float64(totalPRBs)
	e.demandRing[e.demandIdx] = demand
	e.demandIdx = (e.demandIdx + 1) % len(e.demandRing)
	if e.demandFill < len(e.demandRing) {
		e.demandFill++
	}
	e.servedSum += int64(served) - int64(e.servedRing[e.servedIdx])
	e.servedRing[e.servedIdx] = served
	e.servedIdx = (e.servedIdx + 1) % len(e.servedRing)
	if e.servedFill < len(e.servedRing) {
		e.servedFill++
	}
	if !e.enabled {
		return
	}
	now := e.eng.Now()

	// Activation: sustained demand on the anchor over the decision window.
	if !e.nrActive && e.demandFill == len(e.demandRing) &&
		now-e.lastChange >= scgActivateHoldoff {
		cnt := 0
		for _, d := range e.demandRing {
			if d {
				cnt++
			}
		}
		if float64(cnt) >= scgActivateFrac*float64(len(e.demandRing)) {
			e.setNRActive(now, true)
			return
		}
	}

	// Deactivation: the served load of the last window would fit
	// comfortably in the anchor alone.
	if e.nrActive && e.servedFill == len(e.servedRing) &&
		now-e.lastChange >= scgDeactHoldoff {
		anchorCap := e.anchorRateBps() / 1000 * float64(len(e.servedRing))
		if float64(e.servedSum) <= scgDeactFrac*anchorCap {
			e.setNRActive(now, false)
		}
	}
}

func (e *ENDC) setNRActive(now time.Duration, active bool) {
	e.nrActive = active
	e.lastChange = now
	if active {
		e.Activations++
	} else {
		e.Deactivations++
	}
	for i := range e.demandRing {
		e.demandRing[i] = false
	}
	e.demandFill = 0
	for i := range e.servedRing {
		e.servedRing[i] = 0
	}
	e.servedSum = 0
	e.servedFill = 0
	for _, fn := range e.onSecondaryChange {
		fn(active)
	}
}
