// Package nr is a slot-accurate simulator of the 5G New Radio MAC layer:
// cells with flexible numerology (subcarrier spacing 15 kHz * 2^µ, so slots
// of 1/0.5/0.25/0.125 ms), wide sub-6 and mmWave carriers, 256-QAM by
// default, per-slot PDCCH emission in the same report format the LTE cells
// use (so the PBE-CC monitor consumes both RATs), HARQ retransmission a
// fixed number of slots after an erroneous transport block, and an EN-DC
// dual-connectivity UE that aggregates an LTE anchor with an NR secondary
// cell (the non-standalone deployment the paper's 5G discussion targets).
//
// The scheduler policy matches the LTE cell - control-plane users first,
// HARQ retransmissions second, water-filling over backlogged data users -
// so cross-RAT comparisons isolate the effect of the numerology, not of a
// different scheduler.
package nr

import (
	"math/rand"
	"time"

	"pbecc/internal/lte"
	"pbecc/internal/netsim"
	"pbecc/internal/phy"
	"pbecc/internal/sim"
)

// HARQ parameters: NR uses asynchronous HARQ with a typical round-trip of
// a few slots; we keep the LTE count of eight scheduling intervals, which
// in wall time shrinks with the numerology (8 slots = 1 ms at µ=3),
// matching NR's lower retransmission latency.
const (
	HARQDelaySlots     = 8
	MaxRetransmissions = 3
)

// CodeBlockBits is the maximum code block size of the NR LDPC coder
// (3GPP TS 38.212 §5.2.2). NR transport blocks are far larger than LTE's,
// so whole-TB retransmission would waste a large fraction of the carrier;
// instead the receiver acknowledges code-block groups and only failed
// groups are retransmitted, in a proportionally smaller grant.
const CodeBlockBits = 8448

// DefaultPerUserQueueBytes caps one user's downlink queue at an NR cell.
// NR base stations provision deeper RLC buffers than LTE in proportion to
// carrier rate (roughly 100 ms at 500 Mbit/s).
const DefaultPerUserQueueBytes = 6_000_000

// TBSink receives completed transport blocks from a cell. ok=false marks a
// block lost after exhausting HARQ retransmissions; its packets never
// arrive but the sink must advance its reordering state.
type TBSink interface {
	DeliverTB(cellID int, seq uint64, packets []*netsim.Packet, ok bool)
}

// Config describes one NR carrier.
type Config struct {
	ID int
	Mu int // numerology µ: 0..3 (slot = 1 ms / 2^µ)

	// NPRB is the carrier width in PRBs. When zero it is derived from
	// BandwidthMHz via the 3GPP transmission-bandwidth tables.
	NPRB         int
	BandwidthMHz int

	// Table selects the CQI table; zero means 256-QAM, the NR default.
	Table phy.CQITable

	// Control produces per-slot control-plane grants (nil = quiet cell).
	// The lte.ControlSource interface is reused with the slot index in
	// place of the subframe index.
	Control lte.ControlSource

	// PerUserQueueBytes caps each user's downlink queue; zero selects
	// DefaultPerUserQueueBytes, negative means unbounded.
	PerUserQueueBytes int
}

// Cell is one NR component carrier: a slot-clocked scheduler with per-user
// queues, HARQ, and per-slot control-channel emission.
type Cell struct {
	eng *sim.Engine

	ID    int
	Mu    int
	NPRB  int
	Table phy.CQITable

	control    lte.ControlSource
	background lte.BackgroundSource
	users      []*cellUser
	byRNTI     map[uint16]*cellUser
	monitors   []lte.Monitor

	slot        int
	spf         int // slots per subframe, 2^µ
	slotDur     time.Duration
	pendingRetx map[int][]*transportBlock
	rng         *rand.Rand
	ticker      *sim.Ticker
	pool        *netsim.PacketPool

	rbgSize int

	// Per-slot scratch, reused across ticks exactly like the LTE cell's
	// (DESIGN.md section 12): reused report + Allocs, water-fill inputs,
	// transport-block free list, and the coalesced TB-delivery queue
	// drained by one pre-bound event per slot.
	rep          *lte.SubframeReport
	blUsers      []*cellUser
	wants        []int
	wf           lte.WaterFiller
	tbFree       []*transportBlock
	deliveries   []tbDelivery
	deliverArmed bool
	deliverFn    func()

	perUserQueueBytes int

	// ErrorModel, when non-nil, replaces random transport-block error
	// sampling (deterministic tests and blockage studies).
	ErrorModel func(rnti uint16, tbSeq uint64, attempt int, bits int, ber float64) bool

	// Counters.
	TotalTBs     uint64
	ErrorTBs     uint64
	LostTBs      uint64
	DataPRBs     uint64
	RetxPRBs     uint64
	ControlPRBs  uint64
	FluidPRBs    uint64 // PRBs granted to fluid background users
	QueueDropped uint64
}

type cellUser struct {
	rnti uint16
	sink TBSink
	ch   *phy.Channel

	// queue is indexed from qHead (head-index dequeue with amortized
	// compaction, retained capacity).
	queue      []*netsim.Packet
	qHead      int
	headSent   int
	queuedBits int
	nextTB     uint64

	lastPRBs       int
	lastServedBits int
}

type transportBlock struct {
	user      *cellUser
	seq       uint64
	rbgs      int
	prbs      int
	bits      int
	completed []*netsim.Packet
	attempts  int
	mcs       phy.MCS

	// Code-block-group HARQ state: total groups in the original block and
	// the groups still outstanding (failed in every attempt so far).
	cbTotal       int
	cbOutstanding int
}

// tbDelivery is one entry of the cell's coalesced delivery queue; see
// the LTE cell's twin for the ordering argument.
type tbDelivery struct {
	sink TBSink
	seq  uint64
	pkts []*netsim.Packet
	ok   bool
}

// NewCell creates an NR cell from the config and starts its slot ticker on
// the engine. It panics if the carrier width cannot be determined.
func NewCell(eng *sim.Engine, cfg Config) *Cell {
	nprb := cfg.NPRB
	if nprb == 0 {
		nprb = phy.NRCarrierPRBs(cfg.Mu, cfg.BandwidthMHz)
	}
	if nprb <= 0 {
		panic("nr: cell needs NPRB or a defined µ/bandwidth combination")
	}
	table := cfg.Table
	if table == 0 {
		table = phy.Table256QAM
	}
	c := &Cell{
		eng:         eng,
		ID:          cfg.ID,
		Mu:          cfg.Mu,
		NPRB:        nprb,
		Table:       table,
		control:     cfg.Control,
		byRNTI:      make(map[uint16]*cellUser),
		pendingRetx: make(map[int][]*transportBlock),
		rng:         eng.Rand(),
		spf:         phy.NRSlotsPerSubframe(cfg.Mu),
		slotDur:     phy.NRSlotDuration(cfg.Mu),
	}
	switch {
	case cfg.PerUserQueueBytes > 0:
		c.perUserQueueBytes = cfg.PerUserQueueBytes
	case cfg.PerUserQueueBytes == 0:
		c.perUserQueueBytes = DefaultPerUserQueueBytes
	}
	c.rbgSize = rbgSizeFor(nprb)
	c.pool = netsim.PoolOf(eng)
	c.rep = &lte.SubframeReport{CellID: c.ID, NPRB: c.NPRB}
	c.deliverFn = c.deliverPending
	c.ticker = eng.Every(c.slotDur, c.tick)
	return c
}

// ControlGrantPRBs is the downlink footprint of one control-grant unit.
// The control-traffic populations in package trace are calibrated in
// 20 MHz LTE RBGs of four PRBs; NR carries such small allocations with
// resource-allocation type 1 (contiguous PRBs, no RBG rounding), so one
// grant unit occupies four PRBs here too and the paper's Ta/Pa filter
// thresholds keep their meaning on NR cells despite the 16-PRB RBGs.
const ControlGrantPRBs = 4

// rbgSizeFor returns the nominal RBG size P of 3GPP TS 38.214
// Table 5.1.2.2.1-1 (configuration 1).
func rbgSizeFor(nprb int) int {
	switch {
	case nprb <= 36:
		return 2
	case nprb <= 72:
		return 4
	case nprb <= 144:
		return 8
	default:
		return 16
	}
}

// Stop halts the cell's slot ticker.
func (c *Cell) Stop() { c.ticker.Stop() }

// Slot returns the index of the last processed slot.
func (c *Cell) Slot() int { return c.slot }

// SlotDuration returns the slot length of the cell's numerology.
func (c *Cell) SlotDuration() time.Duration { return c.slotDur }

// SlotsPerSubframe returns 2^µ.
func (c *Cell) SlotsPerSubframe() int { return phy.NRSlotsPerSubframe(c.Mu) }

// AttachMonitor registers a control-channel monitor; monitors run in
// registration order after each slot is scheduled. The report's Subframe
// field carries the slot index.
func (c *Cell) AttachMonitor(m lte.Monitor) { c.monitors = append(c.monitors, m) }

// SetBackground attaches the cell's fluid background-traffic source (see
// lte.BackgroundSource); virtual users join the per-slot water-fill like
// packet users but generate no packet events.
func (c *Cell) SetBackground(b lte.BackgroundSource) { c.background = b }

// AttachUser connects a transport-block sink to this cell under the given
// RNTI with the given radio channel.
func (c *Cell) AttachUser(sink TBSink, rnti uint16, ch *phy.Channel) {
	if _, dup := c.byRNTI[rnti]; dup {
		panic("nr: duplicate RNTI on cell")
	}
	u := &cellUser{rnti: rnti, sink: sink, ch: ch}
	c.users = append(c.users, u)
	c.byRNTI[rnti] = u
}

// DetachUser removes a user; queued packets are dropped (and released:
// the cell was their last owner).
func (c *Cell) DetachUser(rnti uint16) {
	u, ok := c.byRNTI[rnti]
	if !ok {
		return
	}
	delete(c.byRNTI, rnti)
	for i, v := range c.users {
		if v == u {
			c.users = append(c.users[:i], c.users[i+1:]...)
			break
		}
	}
	c.pool.ReleaseAll(u.queue[u.qHead:])
	u.queue = u.queue[:0]
	u.qHead, u.headSent, u.queuedBits = 0, 0, 0
}

// Enqueue adds a downlink packet to the user's queue at this cell. It
// reports false if the RNTI is not attached or the queue is full; on
// either false path the packet is dropped and released (the cell is its
// last owner).
func (c *Cell) Enqueue(rnti uint16, p *netsim.Packet) bool {
	u, ok := c.byRNTI[rnti]
	if !ok {
		c.pool.Release(p)
		return false
	}
	if c.perUserQueueBytes > 0 && u.queuedBits/8+p.Size > c.perUserQueueBytes {
		c.QueueDropped++
		c.pool.Release(p)
		return false
	}
	u.queue = append(u.queue, p)
	u.queuedBits += p.Size * 8
	return true
}

// UserQueueBits returns the bits waiting in a user's queue.
func (c *Cell) UserQueueBits(rnti uint16) int {
	if u, ok := c.byRNTI[rnti]; ok {
		return u.queuedBits
	}
	return 0
}

// UserRate returns the user's current physical rate in bits per PRB per
// slot.
func (c *Cell) UserRate(rnti uint16) float64 {
	if u, ok := c.byRNTI[rnti]; ok {
		return u.ch.MCS().BitsPerPRB()
	}
	return 0
}

// UserRateBps returns the rate the user would see alone on the whole
// carrier, in bits per second.
func (c *Cell) UserRateBps(rnti uint16) float64 {
	return c.UserRate(rnti) * float64(c.NPRB) * phy.NRSlotsPerSecond(c.Mu)
}

// LastUserPRBs returns the PRBs granted to the user in the last slot.
func (c *Cell) LastUserPRBs(rnti uint16) int {
	if u, ok := c.byRNTI[rnti]; ok {
		return u.lastPRBs
	}
	return 0
}

// LastUserServedBits returns the payload bits served to the user in the
// last slot.
func (c *Cell) LastUserServedBits(rnti uint16) int {
	if u, ok := c.byRNTI[rnti]; ok {
		return u.lastServedBits
	}
	return 0
}

// tick runs one slot: advance channels, serve control users, serve HARQ
// retransmissions, water-fill the remaining RBGs over backlogged users,
// sample code-block-group errors, and publish the control channel.
//
// The cursor tracks PRBs rather than RBGs: control grants use the
// PRB-granular resource-allocation type 1, while HARQ and data grants use
// RBG-granular type 0 over the remaining PRBs (the last grant absorbs the
// partial RBG at the band edge).
func (c *Cell) tick() {
	now := c.eng.Now()
	c.slot++
	for _, u := range c.users {
		u.ch.Step(now, c.slotDur)
		u.lastPRBs = 0
		u.lastServedBits = 0
	}

	// Reused across slots; monitor consumers copy what they keep.
	rep := c.rep
	rep.Subframe = c.slot
	rep.Allocs = rep.Allocs[:0]
	cursorPRB := 0
	prbLeft := c.NPRB

	// 1. Control-plane users first, on subframe boundaries so the per-ms
	// signaling load matches the LTE calibration of package trace at any
	// numerology.
	if c.control != nil && (c.slot-1)%c.spf == 0 {
		subframe := 1 + (c.slot-1)/c.spf
		for _, g := range c.control.Tick(subframe, c.rng) {
			prbs := g.RBGs * ControlGrantPRBs
			if prbs > prbLeft {
				prbs = prbLeft
			}
			if prbs == 0 {
				break
			}
			mcs := phy.MCS{CQI: 5, Table: c.Table, Streams: 1}
			rep.Allocs = append(rep.Allocs, lte.Alloc{
				RNTI: g.RNTI, FirstRBG: cursorPRB / c.rbgSize,
				NumRBGs: (prbs + c.rbgSize - 1) / c.rbgSize, PRBs: prbs,
				MCS: mcs, TBBits: int(float64(prbs) * mcs.BitsPerPRB()),
				NDI: true, Control: true,
			})
			c.ControlPRBs += uint64(prbs)
			cursorPRB += prbs
			prbLeft -= prbs
		}
	}

	// allocPRBs converts an RBG-granular grant into PRBs, capped at the
	// carrier edge.
	allocPRBs := func(nRBG int) int {
		prbs := nRBG * c.rbgSize
		if prbs > prbLeft {
			prbs = prbLeft
		}
		return prbs
	}
	rbgLeft := (prbLeft + c.rbgSize - 1) / c.rbgSize

	// 2. HARQ retransmissions scheduled for this slot.
	if due := c.pendingRetx[c.slot]; len(due) > 0 {
		delete(c.pendingRetx, c.slot)
		for i, tb := range due {
			if _, attached := c.byRNTI[tb.user.rnti]; !attached {
				continue
			}
			if tb.rbgs > rbgLeft {
				// Slot exhausted: postpone the rest by one slot.
				c.pendingRetx[c.slot+1] = append(c.pendingRetx[c.slot+1], due[i:]...)
				break
			}
			prbs := allocPRBs(tb.rbgs)
			rep.Allocs = append(rep.Allocs, lte.Alloc{
				RNTI: tb.user.rnti, FirstRBG: cursorPRB / c.rbgSize,
				NumRBGs: tb.rbgs, PRBs: prbs,
				MCS: tb.mcs, TBBits: tb.bits, NDI: false,
			})
			c.RetxPRBs += uint64(prbs)
			tb.user.lastPRBs += prbs
			cursorPRB += prbs
			prbLeft -= prbs
			rbgLeft -= tb.rbgs
			c.transmit(tb)
		}
	}

	// 3. Water-fill the remaining RBGs over backlogged data users, reusing
	// the LTE fairness policy. The service order rotates with the slot
	// index so the capped grant at the band edge does not always fall on
	// the same user. Fluid background users (virtual aggregate sessions,
	// see SetBackground) join the same water-fill after the packet users.
	blUsers := c.blUsers[:0]
	wants := c.wants[:0]
	for k := range c.users {
		u := c.users[(k+c.slot)%len(c.users)]
		if u.queuedBits <= 0 || !u.ch.MCS().Valid() {
			continue
		}
		perRBG := u.ch.MCS().BitsPerPRB() * float64(c.rbgSize)
		w := int(float64(u.queuedBits)/perRBG) + 1
		blUsers = append(blUsers, u)
		wants = append(wants, w)
	}
	var bg []lte.BackgroundDemand
	if c.background != nil {
		bg = c.background.Demand(now)
		for i := range bg {
			perRBG := bg[i].MCS.BitsPerPRB() * float64(c.rbgSize)
			wants = append(wants, int(float64(bg[i].Bits)/perRBG)+1)
		}
	}
	c.blUsers, c.wants = blUsers, wants
	grants := c.wf.Fill(wants, rbgLeft, c.slot)
	for i, u := range blUsers {
		n := grants[i]
		if n == 0 {
			continue
		}
		prbs := allocPRBs(n)
		if prbs == 0 {
			continue
		}
		mcs := u.ch.MCS()
		bits := int(float64(prbs) * mcs.BitsPerPRB())
		tb := c.buildTB(u, n, prbs, bits, mcs)
		rep.Allocs = append(rep.Allocs, lte.Alloc{
			RNTI: u.rnti, FirstRBG: cursorPRB / c.rbgSize,
			NumRBGs: n, PRBs: prbs,
			MCS: mcs, TBBits: bits, NDI: true,
		})
		c.DataPRBs += uint64(prbs)
		u.lastPRBs += prbs
		cursorPRB += prbs
		prbLeft -= prbs
		rbgLeft -= n
		c.transmit(tb)
	}
	for i := range bg {
		n := grants[len(blUsers)+i]
		if n == 0 {
			continue
		}
		prbs := allocPRBs(n)
		if prbs == 0 {
			continue
		}
		bits := int(float64(prbs) * bg[i].MCS.BitsPerPRB())
		rep.Allocs = append(rep.Allocs, lte.Alloc{
			RNTI: bg[i].RNTI, FirstRBG: cursorPRB / c.rbgSize,
			NumRBGs: n, PRBs: prbs,
			MCS: bg[i].MCS, TBBits: bits, NDI: true,
		})
		c.FluidPRBs += uint64(prbs)
		cursorPRB += prbs
		prbLeft -= prbs
		rbgLeft -= n
		c.background.Serve(i, bits)
	}

	for _, m := range c.monitors {
		m(rep)
	}
}

// buildTB drains up to the allocated bits from the user's queue into a new
// transport block.
func (c *Cell) buildTB(u *cellUser, rbgs, prbs, bits int, mcs phy.MCS) *transportBlock {
	var tb *transportBlock
	if n := len(c.tbFree); n > 0 {
		tb = c.tbFree[n-1]
		c.tbFree[n-1] = nil
		c.tbFree = c.tbFree[:n-1]
	} else {
		tb = &transportBlock{}
	}
	tb.user, tb.seq, tb.rbgs, tb.prbs, tb.bits, tb.mcs = u, u.nextTB, rbgs, prbs, bits, mcs
	u.nextTB++
	capBytes := bits / 8
	served := 0
	for capBytes > 0 && u.qHead < len(u.queue) {
		head := u.queue[u.qHead]
		rem := head.Size - u.headSent
		take := rem
		if take > capBytes {
			take = capBytes
		}
		u.headSent += take
		capBytes -= take
		served += take
		if u.headSent == head.Size {
			tb.completed = append(tb.completed, head)
			u.queue[u.qHead] = nil
			u.qHead++
			u.headSent = 0
		}
	}
	if u.qHead == len(u.queue) {
		u.queue = u.queue[:0]
		u.qHead = 0
	} else if u.qHead > 32 && u.qHead*2 >= len(u.queue) {
		n := copy(u.queue, u.queue[u.qHead:])
		for i := n; i < len(u.queue); i++ {
			u.queue[i] = nil
		}
		u.queue = u.queue[:n]
		u.qHead = 0
	}
	u.queuedBits -= served * 8
	u.lastServedBits += served * 8
	return tb
}

// transmit samples the error process of one attempt per outstanding
// code-block group and schedules either in-order delivery at the next slot
// boundary or a HARQ retransmission HARQDelaySlots later, carrying only
// the failed groups in a proportionally smaller grant. After the maximum
// number of retransmissions the block is declared lost and the sink's
// reordering state advances without its packets.
func (c *Cell) transmit(tb *transportBlock) {
	c.TotalTBs++
	sink := tb.user.sink
	if tb.attempts == 0 {
		tb.cbTotal = (tb.bits + CodeBlockBits - 1) / CodeBlockBits
		if tb.cbTotal < 1 {
			tb.cbTotal = 1
		}
		tb.cbOutstanding = tb.cbTotal
	}
	failed := 0
	if c.ErrorModel != nil {
		// Deterministic override keeps whole-TB semantics for tests.
		if c.ErrorModel(tb.user.rnti, tb.seq, tb.attempts, tb.bits, tb.user.ch.BER()) {
			failed = tb.cbOutstanding
		}
	} else {
		pcb := phy.TBErrorRate(tb.user.ch.BER(), CodeBlockBits)
		for i := 0; i < tb.cbOutstanding; i++ {
			if c.rng.Float64() < pcb {
				failed++
			}
		}
	}
	if failed == 0 {
		c.queueDelivery(sink, tb, true)
		return
	}
	c.ErrorTBs++
	tb.attempts++
	if tb.attempts > MaxRetransmissions {
		c.LostTBs++
		c.queueDelivery(sink, tb, false)
		return
	}
	// Shrink the retransmission grant to the failed groups' share of the
	// original allocation.
	tb.cbOutstanding = failed
	retxRBGs := (tb.rbgs*failed + tb.cbTotal - 1) / tb.cbTotal
	if retxRBGs < 1 {
		retxRBGs = 1
	}
	tb.rbgs = retxRBGs
	tb.bits = failed * CodeBlockBits
	retxAt := c.slot + HARQDelaySlots
	c.pendingRetx[retxAt] = append(c.pendingRetx[retxAt], tb)
}

// queueDelivery appends the block's outcome to the coalesced delivery
// queue and recycles the block struct; one pre-bound event per slot
// drains the queue in transmit order (see the LTE cell's twin).
func (c *Cell) queueDelivery(sink TBSink, tb *transportBlock, ok bool) {
	c.deliveries = append(c.deliveries, tbDelivery{sink: sink, seq: tb.seq, pkts: tb.completed, ok: ok})
	if !c.deliverArmed {
		c.deliverArmed = true
		c.eng.Schedule(c.slotDur, c.deliverFn)
	}
	*tb = transportBlock{}
	c.tbFree = append(c.tbFree, tb)
}

// deliverPending hands every queued transport-block outcome to its sink.
func (c *Cell) deliverPending() {
	c.deliverArmed = false
	ds := c.deliveries
	for i := range ds {
		d := &ds[i]
		d.sink.DeliverTB(c.ID, d.seq, d.pkts, d.ok)
		*d = tbDelivery{}
	}
	c.deliveries = ds[:0]
}

// BlockageTrajectory builds the abrupt mmWave blockage profile: the RSSI
// holds at base dBm, collapses by depth dB over a 10 ms edge at start, and
// recovers at end. A blocked mmWave beam loses tens of dB within
// milliseconds when a body or vehicle crosses the path; depth around 30 dB
// reproduces the capacity collapse the paper's 5G discussion anticipates.
func BlockageTrajectory(base, depth float64, start, end time.Duration) phy.Trajectory {
	const edge = 10 * time.Millisecond
	return phy.Trajectory{
		{Start: 0, End: start, FromDBm: base, ToDBm: base},
		{Start: start, End: start + edge, FromDBm: base, ToDBm: base - depth},
		{Start: start + edge, End: end, FromDBm: base - depth, ToDBm: base - depth},
		{Start: end, End: end + edge, FromDBm: base - depth, ToDBm: base},
	}
}
