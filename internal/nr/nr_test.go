package nr

import (
	"math"
	"testing"
	"time"

	"pbecc/internal/core"
	"pbecc/internal/lte"
	"pbecc/internal/netsim"
	"pbecc/internal/phy"
	"pbecc/internal/sim"
)

func TestNumerologyTables(t *testing.T) {
	cases := []struct {
		mu    int
		slots int
		dur   time.Duration
	}{
		{0, 1, time.Millisecond},
		{1, 2, 500 * time.Microsecond},
		{2, 4, 250 * time.Microsecond},
		{3, 8, 125 * time.Microsecond},
	}
	for _, c := range cases {
		if got := phy.NRSlotsPerSubframe(c.mu); got != c.slots {
			t.Errorf("µ=%d slots/subframe = %d, want %d", c.mu, got, c.slots)
		}
		if got := phy.NRSlotDuration(c.mu); got != c.dur {
			t.Errorf("µ=%d slot duration = %v, want %v", c.mu, got, c.dur)
		}
	}
	// Spot-check the 3GPP carrier tables.
	if got := phy.NRCarrierPRBs(1, 100); got != 273 {
		t.Errorf("µ=1 100MHz PRBs = %d, want 273", got)
	}
	if got := phy.NRCarrierPRBs(0, 20); got != 106 {
		t.Errorf("µ=0 20MHz PRBs = %d, want 106", got)
	}
	if got := phy.NRCarrierPRBs(3, 100); got != 66 {
		t.Errorf("µ=3 100MHz PRBs = %d, want 66", got)
	}
	if got := phy.NRCarrierPRBs(0, 100); got != 0 {
		t.Errorf("µ=0 100MHz should be undefined, got %d", got)
	}
}

// TestSlotClock verifies the cell ticks 2^µ times per millisecond.
func TestSlotClock(t *testing.T) {
	for mu := 0; mu <= phy.NRMaxMu; mu++ {
		eng := sim.New(1)
		cell := NewCell(eng, Config{ID: 1, Mu: mu, BandwidthMHz: 50})
		eng.RunUntil(10 * time.Millisecond)
		want := 10 * phy.NRSlotsPerSubframe(mu)
		if cell.Slot() != want {
			t.Errorf("µ=%d: %d slots in 10 ms, want %d", mu, cell.Slot(), want)
		}
	}
}

// TestCellThroughput checks the served rate of a saturated single user
// against the analytic carrier rate across numerologies.
func TestCellThroughput(t *testing.T) {
	for _, c := range []struct {
		mu int
		bw int
	}{{0, 20}, {1, 100}, {3, 100}} {
		eng := sim.New(2)
		cell := NewCell(eng, Config{ID: 1, Mu: c.mu, BandwidthMHz: c.bw})
		ue := NewUE(eng, 1, 61)
		ch := phy.NewStaticChannel(-85, cell.Table, nil)
		ue.AddCell(cell, ch)
		sink := &netsim.Sink{}
		ue.SetDefaultHandler(sink)

		// Keep the queue saturated from a generous fixed-rate source.
		ch.Step(0, time.Millisecond)
		want := phy.NRCellRateBps(ch.MCS(), c.mu, cell.NPRB)
		src := netsim.NewCrossTraffic(eng, ue, want*1.5, 1)
		src.Start()
		eng.RunUntil(time.Second)

		got := float64(sink.Bytes) * 8
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("µ=%d %dMHz: served %.1f Mbit/s, want %.1f Mbit/s",
				c.mu, c.bw, got/1e6, want/1e6)
		}
	}
}

// TestHARQReordering injects one transport-block error and checks the 8-slot
// retransmission delay and in-order release.
func TestHARQReordering(t *testing.T) {
	eng := sim.New(3)
	cell := NewCell(eng, Config{ID: 1, Mu: 1, BandwidthMHz: 100})
	cell.ErrorModel = func(rnti uint16, seq uint64, attempt, bits int, ber float64) bool {
		return seq == 2 && attempt == 0
	}
	ue := NewUE(eng, 1, 61)
	ue.AddCell(cell, phy.NewStaticChannel(-85, cell.Table, nil))
	var lastSeq uint64
	inOrder := true
	var releases []time.Duration
	ue.SetDefaultHandler(netsim.HandlerFunc(func(now time.Duration, p *netsim.Packet) {
		if p.Seq < lastSeq {
			inOrder = false
		}
		lastSeq = p.Seq
		releases = append(releases, now)
	}))
	for i := 0; i < 2000; i++ {
		ue.HandlePacket(0, &netsim.Packet{FlowID: 1, Seq: uint64(i), Size: netsim.MSS})
	}
	eng.RunUntil(20 * time.Millisecond)
	if !inOrder {
		t.Fatal("packets released out of order across a HARQ retransmission")
	}
	if cell.ErrorTBs != 1 {
		t.Fatalf("ErrorTBs = %d, want 1", cell.ErrorTBs)
	}
	// The retransmission lands HARQDelaySlots after the error; at µ=1 that
	// is 4 ms, so some release gap must be about that long.
	slot := cell.SlotDuration()
	wantGap := time.Duration(HARQDelaySlots) * slot
	found := false
	for i := 1; i < len(releases); i++ {
		gap := releases[i] - releases[i-1]
		if gap >= wantGap-slot && gap <= wantGap+2*slot {
			found = true
		}
	}
	if !found {
		t.Fatalf("no ~%v HARQ release gap found", wantGap)
	}
}

// TestWaterFillFairness verifies two saturated users split the carrier.
func TestWaterFillFairness(t *testing.T) {
	eng := sim.New(4)
	cell := NewCell(eng, Config{ID: 1, Mu: 1, BandwidthMHz: 100})
	mk := func(id int, rnti uint16) *netsim.Sink {
		ue := NewUE(eng, id, rnti)
		ue.AddCell(cell, phy.NewStaticChannel(-90, cell.Table, nil))
		s := &netsim.Sink{}
		ue.SetDefaultHandler(s)
		src := netsim.NewCrossTraffic(eng, ue, 600e6, id)
		src.Start()
		return s
	}
	s1, s2 := mk(1, 61), mk(2, 62)
	eng.RunUntil(time.Second)
	b1, b2 := float64(s1.Bytes), float64(s2.Bytes)
	if b1 == 0 || b2 == 0 {
		t.Fatal("a user was starved")
	}
	if ratio := b1 / b2; ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("unfair split: %.0f vs %.0f bytes (ratio %.2f)", b1, b2, ratio)
	}
}

// TestBlockageCollapse drives an mmWave channel through a blockage window
// and checks the served rate collapses and recovers.
func TestBlockageCollapse(t *testing.T) {
	eng := sim.New(5)
	cell := NewCell(eng, Config{ID: 1, Mu: 3, BandwidthMHz: 100})
	tr := BlockageTrajectory(-80, 35, 400*time.Millisecond, 800*time.Millisecond)
	ue := NewUE(eng, 1, 61)
	ue.AddCell(cell, phy.NewMobileChannel(tr, cell.Table, nil))
	var before, during, after float64
	ue.SetDefaultHandler(netsim.HandlerFunc(func(now time.Duration, p *netsim.Packet) {
		switch {
		case now < 400*time.Millisecond:
			before += float64(p.Size)
		case now < 800*time.Millisecond:
			during += float64(p.Size)
		default:
			after += float64(p.Size)
		}
	}))
	src := netsim.NewCrossTraffic(eng, ue, 900e6, 1)
	src.Start()
	eng.RunUntil(1200 * time.Millisecond)
	// Equal 400 ms spans: blockage must cut the served rate by >10x. The
	// UE queue keeps at most a few ms of backlog (drops beyond the cap),
	// so the during-phase bytes cannot hide pre-blockage spillover.
	if during*10 > before {
		t.Fatalf("blockage did not collapse capacity: before=%.0f during=%.0f", before, during)
	}
	if after < before/2 {
		t.Fatalf("capacity did not recover: before=%.0f after=%.0f", before, after)
	}
}

// TestENDCActivatesAndAggregates runs an EN-DC UE under a load exceeding
// the LTE anchor and checks the NR leg activates and carries traffic.
func TestENDCActivatesAndAggregates(t *testing.T) {
	eng := sim.New(6)
	anchorCell := lte.NewCell(eng, 1, 100, phy.Table64QAM, nil)
	nrCell := NewCell(eng, Config{ID: 101, Mu: 1, BandwidthMHz: 100})

	anchor := lte.NewUE(eng, 1, 61)
	anchor.AddCell(anchorCell, phy.NewStaticChannel(-90, phy.Table64QAM, nil))
	anchor.SetCarrierAggregation(false)
	endc := NewENDC(eng, 1, 61, anchor, nrCell, phy.NewStaticChannel(-90, nrCell.Table, nil))
	sink := &netsim.Sink{}
	endc.SetDefaultHandler(sink)
	endc.Start()

	// 150 Mbit/s offered load: far beyond the ~60 Mbit/s LTE anchor.
	src := netsim.NewCrossTraffic(eng, endc, 150e6, 1)
	src.Start()
	eng.RunUntil(3 * time.Second)

	if endc.Activations == 0 {
		t.Fatal("EN-DC never activated the NR secondary cell")
	}
	if !endc.NRActive() {
		t.Fatal("NR leg inactive at end of saturated run")
	}
	if endc.nrLeg.Delivered == 0 {
		t.Fatal("NR leg carried no packets after activation")
	}
	got := float64(sink.Bytes) * 8 / 3 // bits per second over 3 s
	anchorOnly := anchorCell.UserRate(61) * 100 * 1000
	if got < anchorOnly*1.3 {
		t.Fatalf("aggregate rate %.1f Mbit/s not clearly above anchor-only %.1f Mbit/s",
			got/1e6, anchorOnly/1e6)
	}
}

// TestENDCDeactivates drops the offered load and checks the NR leg turns
// off again.
func TestENDCDeactivates(t *testing.T) {
	eng := sim.New(7)
	anchorCell := lte.NewCell(eng, 1, 100, phy.Table64QAM, nil)
	nrCell := NewCell(eng, Config{ID: 101, Mu: 1, BandwidthMHz: 100})
	anchor := lte.NewUE(eng, 1, 61)
	anchor.AddCell(anchorCell, phy.NewStaticChannel(-90, phy.Table64QAM, nil))
	anchor.SetCarrierAggregation(false)
	endc := NewENDC(eng, 1, 61, anchor, nrCell, phy.NewStaticChannel(-90, nrCell.Table, nil))
	endc.SetDefaultHandler(&netsim.Sink{})
	endc.Start()

	high := netsim.NewCrossTraffic(eng, endc, 150e6, 1)
	low := netsim.NewCrossTraffic(eng, endc, 5e6, 1)
	eng.At(0, high.Start)
	eng.At(2*time.Second, high.Stop)
	eng.At(2*time.Second, low.Start)
	eng.RunUntil(5 * time.Second)

	if endc.Activations == 0 {
		t.Fatal("never activated")
	}
	if endc.Deactivations == 0 || endc.NRActive() {
		t.Fatalf("NR leg did not deactivate after load drop (deact=%d active=%v)",
			endc.Deactivations, endc.NRActive())
	}
}

// TestMonitorAcrossRATs feeds one LTE cell and one NR µ=1 cell into a
// single monitor and checks the per-ms aggregation accounts for the slot
// clocks: an idle NR cell contributes spf times its per-slot capacity.
func TestMonitorAcrossRATs(t *testing.T) {
	eng := sim.New(8)
	lteCell := lte.NewCell(eng, 1, 100, phy.Table64QAM, nil)
	nrCell := NewCell(eng, Config{ID: 101, Mu: 1, BandwidthMHz: 100})

	lteCh := phy.NewStaticChannel(-85, phy.Table64QAM, nil)
	nrCh := phy.NewStaticChannel(-85, nrCell.Table, nil)
	lteUE := lte.NewUE(eng, 1, 61)
	lteUE.AddCell(lteCell, lteCh)
	lteUE.SetCarrierAggregation(false)
	nrUE := NewUE(eng, 1, 61)
	nrUE.AddCell(nrCell, nrCh)

	mon := core.NewMonitor(61)
	mon.AttachCell(core.CellInfo{ID: 1, NPRB: 100,
		Rate: func() float64 { return lteCh.MCS().BitsPerPRB() },
		BER:  func() float64 { return lteCh.BER() }})
	mon.AttachCell(core.CellInfo{ID: 101, NPRB: nrCell.NPRB,
		SlotsPerSubframe: nrCell.SlotsPerSubframe(),
		CBGBits:          CodeBlockBits,
		Rate:             func() float64 { return nrCh.MCS().BitsPerPRB() },
		BER:              func() float64 { return nrCh.BER() }})
	lteCell.AttachMonitor(mon.OnSubframe)
	nrCell.AttachMonitor(mon.OnSubframe)

	eng.RunUntil(200 * time.Millisecond)

	// Both cells are idle, so per-slot capacity is R_w * NPRB (N=1).
	lteWant := lteCh.MCS().BitsPerPRB() * 100
	nrWantSlot := nrCh.MCS().BitsPerPRB() * float64(nrCell.NPRB)
	if got := mon.CellCapacity(1); math.Abs(got-lteWant) > 1 {
		t.Fatalf("LTE per-slot capacity = %.1f, want %.1f", got, lteWant)
	}
	if got := mon.CellCapacity(101); math.Abs(got-nrWantSlot) > 1 {
		t.Fatalf("NR per-slot capacity = %.1f, want %.1f", got, nrWantSlot)
	}
	if got := mon.CellCapacityPerMs(101); math.Abs(got-2*nrWantSlot) > 1 {
		t.Fatalf("NR per-ms capacity = %.1f, want %.1f (2 slots/subframe)", got, 2*nrWantSlot)
	}
	// The aggregate must translate each cell's per-ms capacity via Eqn 5:
	// the whole-TB form for LTE, the code-block-group form for NR.
	want := phy.TransportFromPhysical(lteWant, lteCh.BER()) +
		phy.TransportFromPhysicalCBG(2*nrWantSlot, nrCh.BER(), CodeBlockBits)
	if got := mon.CapacityBits(); math.Abs(got-want) > 1 {
		t.Fatalf("CapacityBits = %.1f, want %.1f", got, want)
	}
	// Fair share equals capacity on idle cells.
	if got := mon.FairShareBits(); math.Abs(got-want) > 1 {
		t.Fatalf("FairShareBits = %.1f, want %.1f", got, want)
	}
}

// TestMonitorWindowSpansSameWallClock checks that the NR cell's ring is
// scaled so a µ=3 cell's window covers the same wall time as an LTE cell's.
func TestMonitorWindowSpansSameWallClock(t *testing.T) {
	eng := sim.New(9)
	nrCell := NewCell(eng, Config{ID: 101, Mu: 3, BandwidthMHz: 100})
	nrCh := phy.NewStaticChannel(-85, nrCell.Table, nil)
	nrUE := NewUE(eng, 1, 61)
	nrUE.AddCell(nrCell, nrCh)
	nrUE.SetDefaultHandler(&netsim.Sink{})

	mon := core.NewMonitor(61)
	mon.AttachCell(core.CellInfo{ID: 101, NPRB: nrCell.NPRB,
		SlotsPerSubframe: nrCell.SlotsPerSubframe(),
		Rate:             func() float64 { return nrCh.MCS().BitsPerPRB() }})
	nrCell.AttachMonitor(mon.OnSubframe)

	// A competitor active only in the first 20 ms: with a 40 ms window the
	// monitor must still see it at t=50 ms and forget it by t=70 ms.
	comp := NewUE(eng, 2, 62)
	comp.AddCell(nrCell, phy.NewStaticChannel(-85, nrCell.Table, nil))
	comp.SetDefaultHandler(&netsim.Sink{})
	src := netsim.NewCrossTraffic(eng, comp, 400e6, 2)
	eng.At(0, src.Start)
	eng.At(20*time.Millisecond, src.Stop)

	eng.RunUntil(50 * time.Millisecond)
	if mon.DetectedUsers(101) == 0 {
		t.Fatal("competitor not visible 30 ms after it stopped (window too short)")
	}
	eng.RunUntil(70 * time.Millisecond)
	if mon.DetectedUsers(101) != 0 {
		t.Fatal("competitor still visible 50 ms after it stopped (window too long)")
	}
}
