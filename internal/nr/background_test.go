package nr

import (
	"testing"
	"time"

	"pbecc/internal/lte"
	"pbecc/internal/phy"
	"pbecc/internal/sim"
)

type stubBG struct {
	bits   int
	served int
}

func (s *stubBG) Demand(now time.Duration) []lte.BackgroundDemand {
	if s.bits <= 0 {
		return nil
	}
	return []lte.BackgroundDemand{{
		RNTI: 900,
		MCS:  phy.MCS{CQI: 11, Table: phy.Table256QAM, Streams: 1},
		Bits: s.bits,
	}}
}

func (s *stubBG) Serve(i int, bits int) { s.served += bits }

// TestBackgroundAppearsInNRReports: a virtual background user on an NR
// cell gets PRB-granular data grants every slot, visible on the control
// channel under its own RNTI, with the grant served through Serve.
func TestBackgroundAppearsInNRReports(t *testing.T) {
	eng := sim.New(1)
	cell := NewCell(eng, Config{ID: 1, Mu: 1, BandwidthMHz: 100})
	bg := &stubBG{bits: 1 << 30}
	cell.SetBackground(bg)
	bgPRBs, bgAllocs := 0, 0
	cell.AttachMonitor(func(rep *lte.SubframeReport) {
		for _, a := range rep.Allocs {
			if a.RNTI != 900 {
				continue
			}
			bgAllocs++
			bgPRBs += a.PRBs
			if !a.NDI || a.Control {
				t.Fatalf("background alloc must look like a fresh data grant: %+v", a)
			}
		}
	})
	eng.RunUntil(20 * time.Millisecond)
	// µ=1: two slots per subframe, 273 PRBs per slot, sole user.
	slots := 20 * cell.SlotsPerSubframe()
	if bgAllocs != slots || bgPRBs != slots*cell.NPRB {
		t.Fatalf("background got %d allocs / %d PRBs in %d slots, want %d / %d",
			bgAllocs, bgPRBs, slots, slots, slots*cell.NPRB)
	}
	if cell.FluidPRBs != uint64(bgPRBs) {
		t.Fatalf("FluidPRBs = %d, want %d", cell.FluidPRBs, bgPRBs)
	}
	if bg.served <= 0 {
		t.Fatal("Serve was never called")
	}
}

// TestNRNilBackgroundUnchanged: no source, no fluid accounting.
func TestNRNilBackgroundUnchanged(t *testing.T) {
	eng := sim.New(1)
	cell := NewCell(eng, Config{ID: 1, Mu: 1, BandwidthMHz: 100})
	eng.RunUntil(10 * time.Millisecond)
	if cell.FluidPRBs != 0 {
		t.Fatalf("FluidPRBs = %d on a cell with no background source", cell.FluidPRBs)
	}
}
