package nr

import (
	"time"

	"pbecc/internal/netsim"
	"pbecc/internal/phy"
	"pbecc/internal/sim"
)

// UE is a standalone-mode 5G device: it dispatches arriving downlink
// packets across its NR carriers, reorders HARQ-delayed transport blocks
// per cell, and releases packets in order to per-flow receivers. Unlike
// the LTE UE it runs no carrier-(de)activation policy - NR carriers are
// semi-statically configured; dynamic secondary activation is the EN-DC
// UE's job.
type UE struct {
	eng  *sim.Engine
	ID   int
	RNTI uint16

	cells    []*Cell
	channels []*phy.Channel
	pool     *netsim.PacketPool

	flows       map[int]netsim.Handler
	defaultFlow netsim.Handler

	reorder map[int]*reorderState

	// Counters.
	LostPackets uint64
	Delivered   uint64
}

type reorderState struct {
	next    uint64
	pending map[uint64]tbArrival
}

type tbArrival struct {
	packets []*netsim.Packet
	ok      bool
}

// NewUE creates an NR UE; add carriers with AddCell.
func NewUE(eng *sim.Engine, id int, rnti uint16) *UE {
	return &UE{
		eng:     eng,
		ID:      id,
		RNTI:    rnti,
		pool:    netsim.PoolOf(eng),
		flows:   make(map[int]netsim.Handler),
		reorder: make(map[int]*reorderState),
	}
}

// AddCell attaches the UE to an NR carrier with the given radio channel.
func (u *UE) AddCell(c *Cell, ch *phy.Channel) {
	if c.eng != u.eng {
		// Same invariant as the LTE leg: a device is pinned to the shard
		// of its cells, and only netsim links may cross shards.
		panic("nr: UE and cell live on different engines (shard boundary)")
	}
	c.AttachUser(u, u.RNTI, ch)
	u.cells = append(u.cells, c)
	u.channels = append(u.channels, ch)
	u.reorder[c.ID] = &reorderState{pending: make(map[uint64]tbArrival)}
}

// Cells returns the attached carriers. The returned slice must not be
// modified.
func (u *UE) Cells() []*Cell { return u.cells }

// RegisterFlow routes released packets with the given flow ID to h.
func (u *UE) RegisterFlow(flowID int, h netsim.Handler) { u.flows[flowID] = h }

// SetDefaultHandler routes packets of unregistered flows.
func (u *UE) SetDefaultHandler(h netsim.Handler) { u.defaultFlow = h }

// Start exists for interface parity with the LTE UE; the NR UE needs no
// per-slot bookkeeping of its own.
func (u *UE) Start() {}

// Stop is the counterpart of Start.
func (u *UE) Stop() {}

// HandlePacket dispatches an arriving downlink packet to the carrier with
// the smallest estimated drain time, comparing cells of different
// numerologies in wall-clock seconds.
func (u *UE) HandlePacket(now time.Duration, p *netsim.Packet) {
	best := -1
	bestDrain := 0.0
	for i, c := range u.cells {
		rate := c.UserRateBps(u.RNTI)
		if rate <= 0 {
			continue
		}
		drain := float64(c.UserQueueBits(u.RNTI)) / rate
		if best < 0 || drain < bestDrain {
			best, bestDrain = i, drain
		}
	}
	if best < 0 {
		best = 0
	}
	u.cells[best].Enqueue(u.RNTI, p)
}

// DeliverTB implements TBSink: it receives one transport block's completed
// packets from a cell (ok=false marks a block lost after exhausting HARQ
// retransmissions) and releases packets in per-cell order.
func (u *UE) DeliverTB(cellID int, seq uint64, packets []*netsim.Packet, ok bool) {
	st := u.reorder[cellID]
	if st == nil {
		return
	}
	st.pending[seq] = tbArrival{packets: packets, ok: ok}
	for {
		a, exists := st.pending[st.next]
		if !exists {
			return
		}
		delete(st.pending, st.next)
		st.next++
		for _, p := range a.packets {
			if !a.ok {
				// Lost after exhausting HARQ: the packets never reach a
				// flow handler, so the reorder buffer is their last owner.
				u.LostPackets++
				u.pool.Release(p)
				continue
			}
			u.Delivered++
			u.route(p)
		}
	}
}

func (u *UE) route(p *netsim.Packet) {
	h := u.flows[p.FlowID]
	if h == nil {
		h = u.defaultFlow
	}
	if h != nil {
		h.HandlePacket(u.eng.Now(), p)
		return
	}
	u.pool.Release(p) // no handler: dropped at the UE
}
