package core

import (
	"math"
	"testing"
	"time"

	"pbecc/internal/cc"
	"pbecc/internal/lte"
	"pbecc/internal/phy"
)

// --- Wire format ---

func TestRateWireRoundTrip(t *testing.T) {
	for _, bps := range []float64{1e6, 12e6, 55e6, 180e6} {
		got := DecodeRate(EncodeRate(bps))
		if math.Abs(got-bps)/bps > 0.01 {
			t.Fatalf("wire round trip %.0f -> %.0f (>1%% error)", bps, got)
		}
	}
}

func TestRateWireZero(t *testing.T) {
	if EncodeRate(0) != 0 || DecodeRate(0) != 0 {
		t.Fatal("zero must encode to zero")
	}
	if EncodeRate(-5) != 0 {
		t.Fatal("negative rate must encode to zero")
	}
}

func TestRateWireExtremes(t *testing.T) {
	// Extremely slow rates saturate the 32-bit interval.
	if EncodeRate(1e-6) != math.MaxUint32 {
		t.Fatal("slow rate must clamp to max interval")
	}
	// Extremely fast rates clamp to a 1 microsecond interval (12 Gbit/s).
	if EncodeRate(1e15) != 1 {
		t.Fatal("fast rate must clamp to 1us interval")
	}
}

// --- Detector (§4.2.2) ---

func TestDetectorThreshold(t *testing.T) {
	d := NewDetector()
	d.Observe(0, 40*time.Millisecond, 10)
	want := 40*time.Millisecond + RetxAllowance + JitterAllowance
	if d.Threshold() != want {
		t.Fatalf("threshold = %v, want %v", d.Threshold(), want)
	}
}

func TestDetectorSwitchesAfterNpkt(t *testing.T) {
	d := NewDetector()
	d.Observe(0, 40*time.Millisecond, 5)
	// HARQ-sized excursions below D_th never switch.
	for i := 0; i < 100; i++ {
		if d.Observe(time.Duration(i)*time.Millisecond, 60*time.Millisecond, 5) {
			t.Fatal("switched below threshold")
		}
	}
	// Sustained delay above D_th switches after npkt packets.
	n := 0
	for i := 0; i < 20; i++ {
		n++
		if d.Observe(time.Second+time.Duration(i)*time.Millisecond, 90*time.Millisecond, 5) {
			break
		}
	}
	if !d.InternetBottleneck() {
		t.Fatal("never switched to Internet-bottleneck state")
	}
	if n != 5 {
		t.Fatalf("switched after %d packets, want 5 (Npkt)", n)
	}
	// And back after npkt in-band packets.
	for i := 0; i < 5; i++ {
		d.Observe(2*time.Second+time.Duration(i)*time.Millisecond, 45*time.Millisecond, 5)
	}
	if d.InternetBottleneck() {
		t.Fatal("never switched back to wireless state")
	}
	if d.Transitions != 2 {
		t.Fatalf("transitions = %d, want 2", d.Transitions)
	}
}

func TestDetectorNpktFloor(t *testing.T) {
	d := NewDetector()
	d.Observe(0, 10*time.Millisecond, 0)
	// npkt clamps to 3: two outliers must not switch.
	d.Observe(time.Millisecond, 200*time.Millisecond, 0)
	if d.Observe(2*time.Millisecond, 200*time.Millisecond, 0) {
		t.Fatal("switched after 2 packets despite floor of 3")
	}
}

// --- Monitor (Eqns 1-5, Figure 5/7 logic) ---

func report(cellID, nprb int, allocs ...lte.Alloc) *lte.SubframeReport {
	return &lte.SubframeReport{CellID: cellID, Subframe: 0, NPRB: nprb, Allocs: allocs}
}

func alloc(rnti uint16, prbs, cqi int) lte.Alloc {
	return lte.Alloc{RNTI: rnti, PRBs: prbs,
		MCS: phy.MCS{CQI: cqi, Table: phy.Table64QAM, Streams: 1}, NDI: true}
}

func newTestMonitor() *Monitor {
	m := NewMonitor(61)
	m.AttachCell(CellInfo{
		ID: 1, NPRB: 100,
		Rate: func() float64 { return 400 },
		BER:  func() float64 { return 1e-6 },
	})
	return m
}

func TestMonitorIdleCellFairShare(t *testing.T) {
	m := newTestMonitor()
	for i := 0; i < 40; i++ {
		m.OnSubframe(report(1, 100))
	}
	// Alone on an idle 100-PRB cell at 400 bits/PRB: C_f physical =
	// 40000 bits/subframe; translated downward by overhead.
	cf := m.CellFairShare(1)
	if cf != 40000 {
		t.Fatalf("physical fair share = %v, want 40000", cf)
	}
	ct := m.FairShareBits()
	if ct >= cf || ct < 0.85*cf {
		t.Fatalf("translated fair share = %v, want a bit under %v", ct, cf)
	}
	if m.ActiveUsers(1) != 1 {
		t.Fatalf("N = %d, want 1 (self)", m.ActiveUsers(1))
	}
}

func TestMonitorNoiseHook(t *testing.T) {
	m := newTestMonitor()
	for i := 0; i < 40; i++ {
		m.OnSubframe(report(1, 100))
	}
	clean := m.CapacityBits()
	cleanFS := m.FairShareBits()
	m.Noise = func(v float64) float64 { return v * 1.5 }
	if got := m.CapacityBits(); math.Abs(got-1.5*clean) > 1e-9 {
		t.Fatalf("noisy CapacityBits = %v, want %v", got, 1.5*clean)
	}
	if got := m.FairShareBits(); math.Abs(got-1.5*cleanFS) > 1e-9 {
		t.Fatalf("noisy FairShareBits = %v, want %v", got, 1.5*cleanFS)
	}
	m.Noise = func(v float64) float64 { return -1 }
	if got := m.CapacityBits(); got != 0 {
		t.Fatalf("negative noise output not clamped: %v", got)
	}
	m.Noise = nil
	if got := m.CapacityBits(); math.Abs(got-clean) > 1e-9 {
		t.Fatalf("CapacityBits after clearing Noise = %v, want %v", got, clean)
	}
}

func TestMonitorCapacityTracksOwnAllocation(t *testing.T) {
	m := newTestMonitor()
	// I hold 60 PRBs at CQI 11 (398.7 bits/PRB), 40 idle, nobody else.
	for i := 0; i < 40; i++ {
		m.OnSubframe(report(1, 100, alloc(61, 60, 11)))
	}
	// Eqn 3: R_w*(P_a + P_idle/N) = R_w*(60+40/1) = R_w*100.
	rw := phy.MCS{CQI: 11, Table: phy.Table64QAM, Streams: 1}.BitsPerPRB()
	want := rw * 100
	if got := m.CellCapacity(1); math.Abs(got-want) > 1 {
		t.Fatalf("C_p = %v, want %v", got, want)
	}
}

func TestMonitorCompetitorHalvesShare(t *testing.T) {
	m := newTestMonitor()
	// A real competitor: active many subframes with many PRBs.
	for i := 0; i < 40; i++ {
		m.OnSubframe(report(1, 100, alloc(61, 50, 11), alloc(62, 50, 11)))
	}
	if n := m.ActiveUsers(1); n != 2 {
		t.Fatalf("N = %d, want 2", n)
	}
	// Eqn 3: my 50 PRBs + 0 idle: C_p = R_w*50.
	rw := phy.MCS{CQI: 11, Table: phy.Table64QAM, Streams: 1}.BitsPerPRB()
	if got := m.CellCapacity(1); math.Abs(got-rw*50) > 1 {
		t.Fatalf("C_p with competitor = %v, want %v", got, rw*50)
	}
}

func TestMonitorIdleSharedByN(t *testing.T) {
	m := newTestMonitor()
	// Competitor holds 40, I hold 20, 40 idle: C_p = R_w*(20 + 40/2).
	for i := 0; i < 40; i++ {
		m.OnSubframe(report(1, 100, alloc(61, 20, 11), alloc(62, 40, 11)))
	}
	rw := phy.MCS{CQI: 11, Table: phy.Table64QAM, Streams: 1}.BitsPerPRB()
	want := rw * (20 + 40.0/2)
	if got := m.CellCapacity(1); math.Abs(got-want) > 1 {
		t.Fatalf("C_p = %v, want %v", got, want)
	}
}

func TestMonitorFiltersControlTraffic(t *testing.T) {
	m := newTestMonitor()
	// Control users: 4 PRBs for 1 subframe each, a new RNTI every
	// subframe (the Figure 7 population).
	for i := 0; i < 40; i++ {
		m.OnSubframe(report(1, 100,
			alloc(61, 50, 11),
			alloc(uint16(1000+i), 4, 5)))
	}
	if n := m.ActiveUsers(1); n != 1 {
		t.Fatalf("N = %d, want 1 (control users filtered)", n)
	}
	if d := m.DetectedUsers(1); d != 40 {
		t.Fatalf("detected users = %d, want 40 before filtering", d)
	}
	// Ablation: without the filter N explodes, shrinking the fair share.
	m.UseFilter = false
	if n := m.ActiveUsers(1); n != 41 {
		t.Fatalf("unfiltered N = %d, want 41", n)
	}
}

func TestMonitorFilterKeepsPersistentSmallUser(t *testing.T) {
	m := newTestMonitor()
	// A user with 4 PRBs every subframe: Ta=40 > 1 but Pa = 4 is NOT > 4,
	// so it is still filtered (the paper's strict thresholds).
	for i := 0; i < 40; i++ {
		m.OnSubframe(report(1, 100, alloc(61, 50, 11), alloc(77, 4, 5)))
	}
	if n := m.ActiveUsers(1); n != 1 {
		t.Fatalf("N = %d, want 1 (Pa=4 filtered)", n)
	}
	// 5 PRBs for 2+ subframes passes.
	m2 := newTestMonitor()
	for i := 0; i < 40; i++ {
		m2.OnSubframe(report(1, 100, alloc(61, 50, 11), alloc(77, 5, 5)))
	}
	if n := m2.ActiveUsers(1); n != 2 {
		t.Fatalf("N = %d, want 2 (5-PRB persistent user kept)", n)
	}
}

func TestMonitorWindowEviction(t *testing.T) {
	m := newTestMonitor()
	for i := 0; i < 40; i++ {
		m.OnSubframe(report(1, 100, alloc(61, 50, 11), alloc(62, 50, 11)))
	}
	if m.ActiveUsers(1) != 2 {
		t.Fatal("competitor not seen")
	}
	// Competitor leaves; within one window the count must return to 1.
	for i := 0; i < 40; i++ {
		m.OnSubframe(report(1, 100, alloc(61, 100, 11)))
	}
	if n := m.ActiveUsers(1); n != 1 {
		t.Fatalf("N after eviction = %d, want 1", n)
	}
}

func TestMonitorMultiCellSums(t *testing.T) {
	m := newTestMonitor()
	m.AttachCell(CellInfo{ID: 2, NPRB: 50,
		Rate: func() float64 { return 400 },
		BER:  func() float64 { return 1e-6 }})
	for i := 0; i < 40; i++ {
		m.OnSubframe(report(1, 100, alloc(61, 100, 11)))
		m.OnSubframe(report(2, 50, alloc(61, 50, 11)))
	}
	one := m.CellCapacity(1)
	two := m.CellCapacity(2)
	if one <= 0 || two <= 0 {
		t.Fatal("per-cell capacities must be positive")
	}
	total := m.CapacityBits()
	sum := phy.TransportFromPhysical(one, 1e-6) + phy.TransportFromPhysical(two, 1e-6)
	if math.Abs(total-sum) > 1 {
		t.Fatalf("CapacityBits = %v, want %v", total, sum)
	}
}

func TestMonitorDetachCell(t *testing.T) {
	m := newTestMonitor()
	m.AttachCell(CellInfo{ID: 2, NPRB: 50, Rate: func() float64 { return 400 }})
	m.DetachCell(2)
	if len(m.ActiveCellIDs()) != 1 || m.ActiveCellIDs()[0] != 1 {
		t.Fatalf("active cells after detach = %v", m.ActiveCellIDs())
	}
	if m.CellCapacity(2) != 0 {
		t.Fatal("detached cell must report zero capacity")
	}
}

func TestMonitorReattachResetsWindow(t *testing.T) {
	m := newTestMonitor()
	for i := 0; i < 40; i++ {
		m.OnSubframe(report(1, 100, alloc(61, 50, 11), alloc(62, 50, 11)))
	}
	m.AttachCell(CellInfo{ID: 1, NPRB: 100, Rate: func() float64 { return 400 }})
	if m.DetectedUsers(1) != 0 {
		t.Fatal("reattach must reset the window (§4.1 restart)")
	}
}

// --- Sender mode machine ---

func ackWith(now time.Duration, rate float64, internet bool) cc.AckSample {
	return cc.AckSample{
		Now: now, RTT: 40 * time.Millisecond, SRTT: 40 * time.Millisecond,
		AckedBytes: 1500, DeliveryRate: 20e6,
		FeedbackRate: rate, InternetBottleneck: internet,
	}
}

func TestSenderRampsToTarget(t *testing.T) {
	s := NewSender()
	s.OnAck(ackWith(0, 40e6, false))
	early := s.PacingRate()
	if early >= 40e6*0.5 {
		t.Fatalf("pacing right after first feedback = %v, want ramping from low", early)
	}
	// After 3 RTTs (120 ms) the ramp must complete.
	s.OnAck(ackWith(130*time.Millisecond, 40e6, false))
	if got := s.PacingRate(); math.Abs(got-40e6) > 1e5 {
		t.Fatalf("pacing after ramp = %v, want 40e6", got)
	}
}

func TestSenderRampMonotone(t *testing.T) {
	s := NewSender()
	s.OnAck(ackWith(0, 40e6, false))
	prev := -1.0
	for ms := 0; ms <= 140; ms += 5 {
		s.OnAck(ackWith(time.Duration(ms)*time.Millisecond, 40e6, false))
		r := s.PacingRate()
		if r < prev {
			t.Fatalf("ramp not monotone at %dms: %v < %v", ms, r, prev)
		}
		prev = r
	}
}

func TestSenderQuenchImmediate(t *testing.T) {
	s := NewSender()
	s.OnAck(ackWith(0, 40e6, false))
	s.OnAck(ackWith(200*time.Millisecond, 40e6, false))
	// Capacity collapse: a competitor arrived.
	s.OnAck(ackWith(201*time.Millisecond, 20e6, false))
	if got := s.PacingRate(); got > 20e6+1 {
		t.Fatalf("pacing after quench = %v, want <= 20e6 immediately", got)
	}
}

func TestSenderReRampsOnJump(t *testing.T) {
	s := NewSender()
	s.OnAck(ackWith(0, 20e6, false))
	s.OnAck(ackWith(200*time.Millisecond, 20e6, false))
	// A secondary carrier activates: capacity doubles. The sender must
	// approach the new fair share linearly, not jump (§4.1).
	s.OnAck(ackWith(201*time.Millisecond, 40e6, false))
	r := s.PacingRate()
	if r > 25e6 {
		t.Fatalf("pacing right after jump = %v, want near 20e6 (ramping)", r)
	}
	s.OnAck(ackWith(400*time.Millisecond, 40e6, false))
	if got := s.PacingRate(); math.Abs(got-40e6) > 1e5 {
		t.Fatalf("pacing after re-ramp = %v, want 40e6", got)
	}
}

func TestSenderDrainThenInternet(t *testing.T) {
	s := NewSender()
	s.OnAck(ackWith(0, 40e6, false))
	s.OnAck(ackWith(100*time.Millisecond, 40e6, false))
	if s.Mode() != ModeWireless {
		t.Fatal("must start wireless")
	}
	// Internet bottleneck detected: one-RTprop drain at 0.5*BtlBw.
	s.OnAck(ackWith(200*time.Millisecond, 30e6, true))
	if s.Mode() != ModeDrain {
		t.Fatalf("mode = %v, want drain", s.Mode())
	}
	if got := s.PacingRate(); math.Abs(got-10e6) > 1e5 {
		t.Fatalf("drain pacing = %v, want 0.5*BtlBw = 10e6", got)
	}
	// After one RTprop the sender enters the cellular-tailored BBR.
	s.OnAck(ackWith(250*time.Millisecond, 30e6, true))
	if s.Mode() != ModeInternet {
		t.Fatalf("mode = %v, want internet", s.Mode())
	}
	if s.DrainEntries != 1 || s.InternetEntries != 1 {
		t.Fatalf("counters = %d/%d", s.DrainEntries, s.InternetEntries)
	}
}

func TestSenderInternetProbeCappedByCf(t *testing.T) {
	s := NewSender()
	s.OnAck(ackWith(0, 40e6, false))
	s.OnAck(ackWith(100*time.Millisecond, 40e6, false))
	s.OnAck(ackWith(200*time.Millisecond, 15e6, true))
	s.OnAck(ackWith(260*time.Millisecond, 15e6, true))
	if s.Mode() != ModeInternet {
		t.Skip("internet mode not reached")
	}
	// Walk through the gain cycle; whenever the pacing gain exceeds 1,
	// the probe rate must respect Eqn 7's C_f cap.
	for ms := 260; ms < 1500; ms += 5 {
		s.OnAck(ackWith(time.Duration(ms)*time.Millisecond, 15e6, true))
		if s.PacingRate() > 15e6+1 {
			t.Fatalf("probe rate %v exceeds C_f cap 15e6", s.PacingRate())
		}
	}
}

func TestSenderSwitchBackToWireless(t *testing.T) {
	s := NewSender()
	s.OnAck(ackWith(0, 40e6, false))
	s.OnAck(ackWith(100*time.Millisecond, 40e6, false))
	s.OnAck(ackWith(200*time.Millisecond, 30e6, true))
	s.OnAck(ackWith(260*time.Millisecond, 30e6, true))
	s.OnAck(ackWith(400*time.Millisecond, 40e6, false))
	if s.Mode() != ModeWireless {
		t.Fatalf("mode = %v, want wireless after state bit clears", s.Mode())
	}
}

func TestSenderDrainAbortsIfStateClears(t *testing.T) {
	s := NewSender()
	s.OnAck(ackWith(0, 40e6, false))
	s.OnAck(ackWith(200*time.Millisecond, 30e6, true))
	if s.Mode() != ModeDrain {
		t.Fatal("want drain")
	}
	s.OnAck(ackWith(210*time.Millisecond, 40e6, false))
	if s.Mode() != ModeWireless {
		t.Fatalf("mode = %v, want wireless (drain aborted)", s.Mode())
	}
}

func TestSenderCWNDTracksBDP(t *testing.T) {
	s := NewSender()
	s.OnAck(ackWith(0, 40e6, false))
	s.OnAck(ackWith(200*time.Millisecond, 40e6, false))
	// BDP at 40 Mbit/s x (40+10) ms = 250 kB; cwnd = 1.25*BDP + 4 MSS.
	want := 250000 + 250000/4 + 4*1500
	got := s.CWND()
	if math.Abs(float64(got-want)) > 0.05*float64(want) {
		t.Fatalf("cwnd = %d, want ~%d", got, want)
	}
}

func TestSenderMisreportGuard(t *testing.T) {
	s := NewSender()
	s.MisreportGuard = 2
	// Delivery rate says 20 Mbit/s; a malicious receiver reports 500.
	s.OnAck(ackWith(0, 500e6, false))
	s.OnAck(ackWith(200*time.Millisecond, 500e6, false))
	if got := s.Target(); got > 2*20e6+1 {
		t.Fatalf("guarded target = %v, want <= 40e6", got)
	}
}

func TestSenderNoFeedbackStaysQuiet(t *testing.T) {
	s := NewSender()
	a := ackWith(0, 0, false)
	s.OnAck(a)
	if s.PacingRate() != 0 {
		t.Fatal("pacing without feedback must be 0 (unpaced, window-limited)")
	}
	if s.CWND() != cc.InitialCwnd {
		t.Fatalf("cwnd = %d, want initial", s.CWND())
	}
}

func TestModeString(t *testing.T) {
	if ModeWireless.String() != "wireless" || ModeDrain.String() != "drain" ||
		ModeInternet.String() != "internet" || Mode(9).String() != "?" {
		t.Fatal("mode strings")
	}
}

func TestClientInternetFraction(t *testing.T) {
	m := newTestMonitor()
	for i := 0; i < 40; i++ {
		m.OnSubframe(report(1, 100, alloc(61, 100, 11)))
	}
	c := NewClient(m)
	// Half the time below threshold, half far above.
	now := time.Duration(0)
	for i := 0; i < 200; i++ {
		now += time.Millisecond
		c.Feedback(now, 30*time.Millisecond, 1500)
	}
	for i := 0; i < 200; i++ {
		now += time.Millisecond
		c.Feedback(now, 300*time.Millisecond, 1500)
	}
	frac := c.InternetFraction()
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("internet fraction = %v, want ~0.5", frac)
	}
}

func TestClientFeedbackQuantized(t *testing.T) {
	m := newTestMonitor()
	for i := 0; i < 40; i++ {
		m.OnSubframe(report(1, 100, alloc(61, 100, 11)))
	}
	c := NewClient(m)
	rate, btl := c.Feedback(time.Millisecond, 30*time.Millisecond, 1500)
	if btl {
		t.Fatal("fresh connection must start in wireless state")
	}
	if rate <= 0 {
		t.Fatal("no feedback rate")
	}
	if rate != QuantizeRate(rate) {
		t.Fatal("feedback not quantized through the wire format")
	}
}
