package core

import "math"

// The paper's prototype describes the fed-back capacity as "an interval in
// milliseconds between sending two 1500-byte packets" represented as a
// 32-bit integer (§5). This implementation keeps the 32-bit packet-interval
// representation at microsecond resolution so that rates above 12 Mbit/s
// remain representable with sub-percent error.

// feedbackMSS is the reference packet size of the interval encoding.
const feedbackMSS = 1500

// EncodeRate converts a rate in bits/sec into the 32-bit feedback word:
// the interval in microseconds between consecutive 1500-byte packets.
// Zero encodes "no feedback".
func EncodeRate(bps float64) uint32 {
	if bps <= 0 {
		return 0
	}
	us := math.Round(feedbackMSS * 8 / bps * 1e6)
	if us < 1 {
		us = 1
	}
	if us > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(us)
}

// DecodeRate converts a feedback word back into bits/sec.
func DecodeRate(w uint32) float64 {
	if w == 0 {
		return 0
	}
	return feedbackMSS * 8 / (float64(w) / 1e6)
}

// QuantizeRate round-trips a rate through the wire representation,
// yielding exactly the value the sender will decode.
func QuantizeRate(bps float64) float64 { return DecodeRate(EncodeRate(bps)) }
