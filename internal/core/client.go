package core

import (
	"time"

	"pbecc/internal/cc"
	"pbecc/internal/netsim"
)

// Bottleneck-state detection constants of §4.2.2: the switching threshold
// is D_th = D_prop + 3*8 ms (three HARQ retransmissions) + 3 ms (jitter,
// the 94.1th percentile of measured jitter).
const (
	RetxAllowance   = 24 * time.Millisecond
	JitterAllowance = 3 * time.Millisecond
	DpropWindow     = 10 * time.Second
	// NpktSubframes is Eqn 6's horizon: the threshold on consecutive
	// out-of-band packets is the number of packets sent in six subframes
	// at the current rate.
	NpktSubframes = 6
)

// Detector tracks one-way delay at the receiver and decides which state
// the connection is in: wireless bottleneck (false) or Internet bottleneck
// (true).
type Detector struct {
	dprop cc.WindowedMin

	internet   bool
	aboveCount int
	belowCount int

	// Transitions counts state switches (instrumentation).
	Transitions int
}

// NewDetector returns a detector with the paper's 10-second D_prop window.
func NewDetector() *Detector {
	return &Detector{dprop: cc.WindowedMin{Window: DpropWindow}}
}

// Dprop returns the current propagation-delay estimate.
func (d *Detector) Dprop() time.Duration { return time.Duration(d.dprop.Get()) }

// Threshold returns D_th.
func (d *Detector) Threshold() time.Duration {
	return d.Dprop() + RetxAllowance + JitterAllowance
}

// InternetBottleneck returns the current state.
func (d *Detector) InternetBottleneck() bool { return d.internet }

// Observe folds in one packet's one-way delay; npkt is the Eqn 6
// consecutive-packet threshold at the current rate. It returns the state
// after this packet.
func (d *Detector) Observe(now time.Duration, owd time.Duration, npkt int) bool {
	d.dprop.Update(now, float64(owd))
	if npkt < 3 {
		npkt = 3
	}
	th := d.Threshold()
	if owd > th {
		d.aboveCount++
		d.belowCount = 0
	} else {
		d.belowCount++
		d.aboveCount = 0
	}
	if !d.internet && d.aboveCount >= npkt {
		d.internet = true
		d.Transitions++
		d.aboveCount = 0
	} else if d.internet && d.belowCount >= npkt {
		d.internet = false
		d.Transitions++
		d.belowCount = 0
	}
	return d.internet
}

// Client is the PBE-CC mobile-side module: it combines the capacity
// monitor with the bottleneck detector and produces the per-ACK feedback
// (§5). It implements cc.FeedbackSource.
type Client struct {
	Monitor  *Monitor
	Detector *Detector

	// InternetTime accumulates time spent in the Internet-bottleneck
	// state, and lastObserve the previous observation instant; together
	// they reproduce the §6.3.1 state-residency statistic.
	InternetTime time.Duration
	TotalTime    time.Duration
	lastObserve  time.Duration
}

// NewClient wires a client around a monitor.
func NewClient(mon *Monitor) *Client {
	return &Client{Monitor: mon, Detector: NewDetector()}
}

// Feedback implements cc.FeedbackSource: called per received data packet,
// it returns the quantized capacity feedback in bits/sec and the
// bottleneck-state bit.
func (c *Client) Feedback(now time.Duration, owd time.Duration, dataBytes int) (float64, bool) {
	ct := c.Monitor.CapacityBits() // bits per subframe
	npkt := int(NpktSubframes * ct / (8 * netsim.MSS))
	internet := c.Detector.Observe(now, owd, npkt)

	if c.lastObserve > 0 {
		dt := now - c.lastObserve
		c.TotalTime += dt
		if internet {
			c.InternetTime += dt
		}
	}
	c.lastObserve = now

	rate := ct
	if internet {
		// In the Internet-bottleneck state the mobile feeds back the
		// fair-share capacity C_f, the cap of Eqn 7.
		rate = c.Monitor.FairShareBits()
	} else if cf := c.Monitor.FairShareBits(); cf > rate {
		// Wireless state: never settle below the Eqn 2 fair share. Eqn 3
		// alone has a stable fixed point below the fair share when an
		// always-backlogged competitor absorbs every subframe in which
		// this user's paced queue momentarily drains; the base station's
		// fairness policy grants P_cell/N to any user that offers that
		// load (§4.1, §4.3), so C_f is a sound lower bound.
		rate = cf
	}
	return QuantizeRate(BitsPerSubframeToBps(rate)), internet
}

// InternetFraction returns the fraction of observed time spent in the
// Internet-bottleneck state (the §6.3.1 statistic: 18% busy, 4% idle).
func (c *Client) InternetFraction() float64 {
	if c.TotalTime <= 0 {
		return 0
	}
	return float64(c.InternetTime) / float64(c.TotalTime)
}
