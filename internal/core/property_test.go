package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"pbecc/internal/lte"
	"pbecc/internal/phy"
)

// TestMonitorCapacityBounds property-tests Eqn 3's output against its
// physical bounds: for any random report stream, 0 <= C_p <= R_wmax *
// P_cell, and N >= 1.
func TestMonitorCapacityBounds(t *testing.T) {
	const nprb = 100
	maxRate := phy.MCS{CQI: 15, Table: phy.Table256QAM, Streams: 2}.BitsPerPRB()
	f := func(seed int64, nSubframes uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMonitor(61)
		m.AttachCell(CellInfo{ID: 1, NPRB: nprb,
			Rate: func() float64 { return 400 },
			BER:  func() float64 { return 2e-6 }})
		for sf := 0; sf < int(nSubframes)+1; sf++ {
			rep := &lte.SubframeReport{CellID: 1, Subframe: sf, NPRB: nprb}
			remaining := nprb
			for u := 0; u < rng.Intn(6) && remaining > 0; u++ {
				prbs := 1 + rng.Intn(remaining)
				remaining -= prbs
				rnti := uint16(61 + rng.Intn(5))
				rep.Allocs = append(rep.Allocs, lte.Alloc{
					RNTI: rnti, PRBs: prbs,
					MCS: phy.MCS{CQI: 1 + rng.Intn(15), Table: phy.Table64QAM,
						Streams: 1 + rng.Intn(2)},
					NDI: rng.Intn(2) == 0,
				})
			}
			m.OnSubframe(rep)
		}
		cp := m.CellCapacity(1)
		if cp < 0 || cp > maxRate*nprb {
			return false
		}
		if m.ActiveUsers(1) < 1 {
			return false
		}
		ct := m.CapacityBits()
		return ct >= 0 && ct <= cp+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestDetectorNeverFlipsEarly property-tests the Eqn 6 guard: fewer than
// npkt consecutive out-of-band packets never switch state.
func TestDetectorNeverFlipsEarly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDetector()
		npkt := 4 + rng.Intn(8)
		d.Observe(0, 30*time.Millisecond, npkt)
		now := time.Duration(0)
		for i := 0; i < 200; i++ {
			now += time.Millisecond
			// Runs of high delay strictly shorter than npkt.
			runLen := rng.Intn(npkt)
			for k := 0; k < runLen; k++ {
				now += time.Millisecond
				if d.Observe(now, 200*time.Millisecond, npkt) {
					return false
				}
			}
			if d.Observe(now+time.Millisecond, 31*time.Millisecond, npkt) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestWireMonotone property-tests that the feedback quantization
// preserves rate ordering (a faster rate never decodes below a slower
// one beyond quantization granularity).
func TestWireMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		ra := 1e3 + float64(a%1000000)*1e3 // 1 kbit/s .. 1 Gbit/s
		rb := 1e3 + float64(b%1000000)*1e3
		if ra > rb {
			ra, rb = rb, ra
		}
		qa, qb := QuantizeRate(ra), QuantizeRate(rb)
		return qa <= qb*1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSenderModeNeverInvalid drives the sender with random feedback and
// checks the mode machine stays in its three states with sane rates.
func TestSenderModeNeverInvalid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSender()
		now := time.Duration(0)
		for i := 0; i < 500; i++ {
			now += time.Duration(1+rng.Intn(10)) * time.Millisecond
			a := ackWith(now, float64(1+rng.Intn(100))*1e6, rng.Intn(4) == 0)
			s.OnAck(a)
			if s.Mode() != ModeWireless && s.Mode() != ModeDrain && s.Mode() != ModeInternet {
				return false
			}
			if s.PacingRate() < 0 {
				return false
			}
			if s.CWND() < 1500 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
