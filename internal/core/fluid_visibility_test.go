// The fluid background tier claims PBE-CC cannot tell a fluid session
// from a packet user: both surface as data grants on the control
// channel. This file pins that contract end to end - a real LTE cell, a
// fluid.CellProcess as its background source, and a Monitor decoding the
// cell's reports - from an external test package because fluid imports
// core for the window constant.
package core_test

import (
	"testing"
	"time"

	"pbecc/internal/core"
	"pbecc/internal/fluid"
	"pbecc/internal/lte"
	"pbecc/internal/phy"
	"pbecc/internal/sim"
)

func newVisibilityMonitor(cell *lte.Cell) *core.Monitor {
	mon := core.NewMonitor(61)
	mcs := phy.MCS{CQI: 11, Table: phy.Table64QAM, Streams: 1}
	mon.AttachCell(core.CellInfo{
		ID:   cell.ID,
		NPRB: cell.NPRB,
		Rate: func() float64 { return mcs.BitsPerPRB() },
		BER:  func() float64 { return 0 },
	})
	cell.AttachMonitor(mon.OnSubframe)
	return mon
}

// TestMonitorCountsFluidCompetitor: an always-on fluid session must pass
// the monitor's control-traffic filter and register as a competing user,
// halving the idle share the monitor hands its own flow (Eqn 3's N).
func TestMonitorCountsFluidCompetitor(t *testing.T) {
	eng := sim.New(1)
	cell := lte.NewCell(eng, 1, 100, phy.Table64QAM, nil)
	mon := newVisibilityMonitor(cell)

	session := fluid.Session{
		RNTI:    900,
		MCS:     phy.MCS{CQI: 11, Table: phy.Table64QAM, Streams: 1},
		RateBps: 200e6, // saturates the cell: backlogged every window
		On:      time.Hour,
		Off:     time.Millisecond,
	}
	cell.SetBackground(fluid.NewCellProcess([]fluid.Session{session}, 0, 0))

	eng.RunUntil(100 * time.Millisecond)
	if n := mon.ActiveUsers(1); n != 2 {
		t.Fatalf("ActiveUsers = %d, want 2 (self + fluid session)", n)
	}
	// The fluid session holds essentially the whole cell, so the
	// monitor's fair share is half the idle capacity - far below the
	// empty-cell estimate.
	idle := 100 * session.MCS.BitsPerPRB()
	if fs := mon.CellFairShare(1); fs > idle*0.55 {
		t.Fatalf("fair share %v did not drop under fluid contention (idle estimate %v)", fs, idle)
	}
}

// TestMonitorIgnoresIdleFluidSession: a fluid session in its off phase
// generates no grants, so the monitor must keep treating the cell as
// idle - the envelope's silence is as visible as its load.
func TestMonitorIgnoresIdleFluidSession(t *testing.T) {
	eng := sim.New(1)
	cell := lte.NewCell(eng, 1, 100, phy.Table64QAM, nil)
	mon := newVisibilityMonitor(cell)

	session := fluid.Session{
		RNTI:    900,
		MCS:     phy.MCS{CQI: 11, Table: phy.Table64QAM, Streams: 1},
		RateBps: 200e6,
		On:      time.Millisecond,
		Off:     time.Hour,
		Phase:   time.Second, // never starts within the run
	}
	cell.SetBackground(fluid.NewCellProcess([]fluid.Session{session}, 0, 0))

	eng.RunUntil(100 * time.Millisecond)
	if n := mon.ActiveUsers(1); n != 1 {
		t.Fatalf("ActiveUsers = %d, want 1 (self only)", n)
	}
}
