package core_test

import (
	"testing"
	"time"

	"pbecc/internal/core"
	"pbecc/internal/lte"
	"pbecc/internal/netsim"
	"pbecc/internal/pdcch"
	"pbecc/internal/phy"
	"pbecc/internal/sim"
)

// TestFullDecodePipelineWithFusion exercises the complete receive chain
// of the paper's Figure 10(a): two cells each encode their subframe's
// DCIs onto a PDCCH region; per-cell blind decoders recover the messages;
// the message-fusion stage aligns them by subframe; and the capacity
// monitor consumes the fused stream. The capacity estimate must match a
// monitor fed directly from scheduler structs.
func TestFullDecodePipelineWithFusion(t *testing.T) {
	eng := sim.New(77)
	cellA := lte.NewCell(eng, 1, 100, phy.Table64QAM, nil)
	cellB := lte.NewCell(eng, 2, 50, phy.Table64QAM, nil)

	ue := lte.NewUE(eng, 1, 61)
	chA := phy.NewStaticChannel(-91, phy.Table64QAM, nil)
	chB := phy.NewStaticChannel(-95, phy.Table64QAM, nil)
	ue.AddCell(cellA, chA)
	ue.AddCell(cellB, chB)
	ue.SetCarrierAggregation(false)
	ue.SetDefaultHandler(&netsim.Sink{})
	ue.Start()

	mkMon := func() *core.Monitor {
		m := core.NewMonitor(61)
		m.AttachCell(core.CellInfo{ID: 1, NPRB: 100,
			Rate: func() float64 { return chA.MCS().BitsPerPRB() },
			BER:  func() float64 { return chA.BER() }})
		m.AttachCell(core.CellInfo{ID: 2, NPRB: 50,
			Rate: func() float64 { return chB.MCS().BitsPerPRB() },
			BER:  func() float64 { return chB.BER() }})
		return m
	}
	oracle := mkMon()
	decoded := mkMon()

	fusion := pdcch.NewFusion(1, 2)
	decA := pdcch.NewDecoder(0)
	decB := pdcch.NewDecoder(0)
	reports := map[int]map[int]*lte.SubframeReport{1: {}, 2: {}} // cell -> sf -> decoded rep

	feed := func(cell *lte.Cell, dec *pdcch.Decoder) lte.Monitor {
		return func(rep *lte.SubframeReport) {
			oracle.OnSubframe(rep)
			region := lte.EncodeReport(rep, 3)
			if region == nil {
				t.Errorf("cell %d subframe %d: control region overflow", rep.CellID, rep.Subframe)
				return
			}
			got := lte.DecodeReport(region, rep.CellID, cell.Table, dec)
			reports[rep.CellID][rep.Subframe] = got
			var msgs []pdcch.Decoded
			for range got.Allocs {
				msgs = append(msgs, pdcch.Decoded{})
			}
			for _, fs := range fusion.Push(pdcch.CellMessages{
				CellID: rep.CellID, Subframe: rep.Subframe, Messages: msgs,
			}) {
				// Fusion releases a subframe only when every cell
				// reported it; feed the stored decoded reports in cell
				// order, as the real message-fusion module would.
				for _, cm := range fs.Cells {
					decoded.OnSubframe(reports[cm.CellID][fs.Subframe])
				}
			}
		}
	}
	cellA.AttachMonitor(feed(cellA, decA))
	cellB.AttachMonitor(feed(cellB, decB))

	// Load both cells through the UE dispatcher... the UE only uses the
	// primary when CA is off, so enqueue to cellB directly as well.
	src := netsim.NewCrossTraffic(eng, ue, 20e6, 1)
	src.Start()
	eng.Every(time.Millisecond, func() {
		cellB.Enqueue(61, &netsim.Packet{FlowID: 2, Seq: 0, Size: 1200, SentAt: eng.Now()})
	})
	eng.RunUntil(200 * time.Millisecond)

	if fusion.PendingSubframes() > 1 {
		t.Fatalf("fusion stalled with %d pending subframes", fusion.PendingSubframes())
	}
	co := oracle.CapacityBits()
	cd := decoded.CapacityBits()
	if co <= 0 {
		t.Fatal("oracle capacity is zero")
	}
	diff := (co - cd) / co
	if diff < 0 {
		diff = -diff
	}
	// The decoded monitor lags the oracle by at most one subframe of
	// window content; the estimates must agree within 5%.
	if diff > 0.05 {
		t.Fatalf("capacity mismatch: oracle %.0f vs decoded %.0f (%.1f%%)", co, cd, 100*diff)
	}
}
