package core

import (
	"time"

	"pbecc/internal/cc"
	"pbecc/internal/cc/bbr"
	"pbecc/internal/netsim"
)

// Mode is the PBE-CC sender's operating mode.
type Mode int

// Sender modes: tracking the fed-back wireless capacity, draining the
// Internet-bottleneck queue at half BtlBw for one RTprop, or running the
// cellular-tailored BBR.
const (
	ModeWireless Mode = iota
	ModeDrain
	ModeInternet
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeWireless:
		return "wireless"
	case ModeDrain:
		return "drain"
	case ModeInternet:
		return "internet"
	}
	return "?"
}

// rampRTTs is the linear-increase duration of §4.1: the sender approaches
// the fair share over three round-trip times.
const rampRTTs = 3

// harqCwndAllowance widens the BDP window so HARQ-delayed packets (held up
// to ~8 ms in the reordering buffer) do not stall the pipe.
const harqCwndAllowance = 10 * time.Millisecond

// Sender is the PBE-CC congestion controller (implements cc.Controller).
type Sender struct {
	mode Mode

	target    float64 // fed-back capacity, bits/sec
	rampFrom  float64
	rampStart time.Duration

	cfCap    float64 // fair-share cap C_f fed back in Internet state
	drainEnd time.Duration

	now    time.Duration
	srtt   time.Duration
	rtProp cc.WindowedMin
	btlBw  cc.WindowedMax

	bbr *bbr.BBR

	// MisreportGuard, when positive, caps the fed-back rate at this
	// multiple of the measured delivery rate - the server-side defence
	// against malicious capacity reports sketched in §7. Zero disables
	// the guard.
	MisreportGuard float64

	// SkipDrain (ablation) enters the Internet-bottleneck mode without
	// the one-RTprop 0.5*BtlBw drain phase of §4.2.3.
	SkipDrain bool

	// NoRamp (ablation) jumps straight to the fed-back fair share
	// instead of §4.1's three-RTT linear increase.
	NoRamp bool

	// Counters (instrumentation).
	DrainEntries    uint64
	InternetEntries uint64
}

// NewSender returns a PBE-CC sender controller.
func NewSender() *Sender {
	s := &Sender{bbr: bbr.New()}
	s.rtProp.Window = 10 * time.Second
	s.btlBw.Window = 2500 * time.Millisecond
	return s
}

// Name implements cc.Controller.
func (s *Sender) Name() string { return "pbe" }

// Mode returns the current operating mode.
func (s *Sender) Mode() Mode { return s.mode }

// Target returns the current feedback-driven target rate in bits/sec.
func (s *Sender) Target() float64 { return s.target }

// RTprop returns the sender's propagation-delay estimate.
func (s *Sender) RTprop() time.Duration {
	if v := s.rtProp.Get(); v > 0 {
		return time.Duration(v)
	}
	if s.srtt > 0 {
		return s.srtt
	}
	return 40 * time.Millisecond
}

// OnSent implements cc.Controller.
func (s *Sender) OnSent(now time.Duration, seq uint64, bytes, inflight int) {
	s.now = now
	s.bbr.OnSent(now, seq, bytes, inflight)
}

// OnLoss implements cc.Controller: like BBR, PBE-CC reacts to loss only
// through its rate estimators.
func (s *Sender) OnLoss(l cc.LossSample) {
	s.now = l.Now
	s.bbr.OnLoss(l)
}

// OnAck implements cc.Controller: update the shared estimators, keep the
// embedded BBR warm, and run the mode transitions of §4.2.2-4.2.3.
func (s *Sender) OnAck(a cc.AckSample) {
	s.now = a.Now
	s.srtt = a.SRTT
	if a.RTT > 0 {
		s.rtProp.Update(a.Now, float64(a.RTT))
	}
	if a.DeliveryRate > 0 {
		s.btlBw.Update(a.Now, a.DeliveryRate)
	}
	s.bbr.OnAck(a)

	if a.FeedbackRate <= 0 {
		return // not a PBE receiver; stay in wireless tracking
	}
	switch s.mode {
	case ModeWireless:
		if a.InternetBottleneck {
			s.cfCap = a.FeedbackRate
			if s.SkipDrain {
				s.mode = ModeInternet
				s.InternetEntries++
				s.bbr.ForceProbeBW(a.Now)
				return
			}
			// Queue detected inside the Internet: drain at 0.5*BtlBw for
			// one RTprop before competing (§4.2.3).
			s.mode = ModeDrain
			s.drainEnd = a.Now + s.RTprop()
			s.DrainEntries++
			return
		}
		s.setTarget(a.Now, a.FeedbackRate)
	case ModeDrain:
		s.cfCap = a.FeedbackRate
		if !a.InternetBottleneck {
			// The queue resolved itself before the drain completed.
			s.mode = ModeWireless
			s.setTarget(a.Now, a.FeedbackRate)
			return
		}
		if a.Now >= s.drainEnd {
			s.mode = ModeInternet
			s.InternetEntries++
			s.bbr.ForceProbeBW(a.Now)
		}
	case ModeInternet:
		s.cfCap = a.FeedbackRate
		if !a.InternetBottleneck {
			// Npkt consecutive in-band packets observed at the mobile:
			// re-enter wireless tracking (§4.2.3).
			s.mode = ModeWireless
			s.setTarget(a.Now, a.FeedbackRate)
		}
	}
}

// setTarget applies fed-back capacity. Upward jumps (new flows finishing,
// carriers activating) ramp linearly over three RTTs from the current
// rate, re-running the §4.1 fair-share approach so competing users have
// time to react; decreases apply immediately (rapid quench).
func (s *Sender) setTarget(now time.Duration, rate float64) {
	if s.MisreportGuard > 0 {
		if bw := s.btlBw.Get(); bw > 0 && rate > s.MisreportGuard*bw {
			rate = s.MisreportGuard * bw
		}
	}
	switch {
	case s.NoRamp:
		s.rampFrom = rate
	case s.target == 0:
		// Connection start: linear increase from (near) zero.
		s.rampFrom = rate / 16
		s.rampStart = now
	case rate > s.target*1.2:
		s.rampFrom = s.wirelessRate()
		s.rampStart = now
	case rate >= s.target:
		// Small increase: fold into the ongoing ramp target.
	default:
		// Decrease: quench immediately, cancel any ramp.
		s.rampFrom = rate
	}
	s.target = rate
}

// wirelessRate returns the (possibly still ramping) wireless-mode pacing
// rate.
func (s *Sender) wirelessRate() float64 {
	if s.target <= 0 {
		return 0
	}
	if s.rampFrom >= s.target {
		return s.target
	}
	dur := rampRTTs * s.srtt
	if dur < 30*time.Millisecond {
		dur = 30 * time.Millisecond
	}
	el := s.now - s.rampStart
	if el >= dur {
		return s.target
	}
	f := float64(el) / float64(dur)
	return s.rampFrom + (s.target-s.rampFrom)*f
}

// PacingRate implements cc.Controller.
func (s *Sender) PacingRate() float64 {
	switch s.mode {
	case ModeWireless:
		return s.wirelessRate()
	case ModeDrain:
		if bw := s.btlBw.Get(); bw > 0 {
			return bw / 2
		}
		return s.target / 2
	default: // ModeInternet
		r := s.bbr.PacingRate()
		// Eqn 7 caps the probing rate at min{1.25*BtlBw, C_f}; this
		// implementation applies the C_f ceiling to the whole
		// Internet-mode rate, which subsumes the probe cap and keeps the
		// sender strictly less aggressive than BBR (§4.3).
		if s.cfCap > 0 && r > s.cfCap {
			r = s.cfCap
		}
		return r
	}
}

// CWND implements cc.Controller: in wireless mode the window caps inflight
// at the BDP of the fed-back capacity (plus HARQ allowance), the
// mechanism that keeps queues empty even when feedback is delayed (§4).
func (s *Sender) CWND() int {
	switch s.mode {
	case ModeWireless:
		rate := s.wirelessRate()
		if rate <= 0 {
			return cc.InitialCwnd
		}
		w := cc.BDPBytes(rate, s.RTprop()+harqCwndAllowance)
		w += w / 4
		w += 4 * netsim.MSS
		if w < cc.MinCwnd {
			w = cc.MinCwnd
		}
		return w
	case ModeDrain:
		w := cc.BDPBytes(s.PacingRate(), s.RTprop()) + 4*netsim.MSS
		if w < cc.MinCwnd {
			w = cc.MinCwnd
		}
		return w
	default:
		return s.bbr.CWND()
	}
}
