// Package core implements PBE-CC, the paper's contribution: congestion
// control driven by physical-layer bandwidth measurements taken at the
// mobile endpoint.
//
// Three pieces cooperate:
//
//   - Monitor consumes every cell's per-subframe control information
//     (decoded from the PDCCH) and maintains the capacity estimates of
//     §4.2.1: the fair-share capacity C_f (Eqns 1-2), the available
//     capacity C_p (Eqns 3-4), and the physical-to-transport translation
//     of Eqn 5 with the measured protocol overhead.
//   - Client sits at the receiver: it estimates one-way propagation delay,
//     detects wireless-versus-Internet bottleneck transitions (§4.2.2,
//     Eqn 6), and stamps every ACK with the quantized capacity feedback
//     and the bottleneck-state bit (§5).
//   - Sender paces at the fed-back capacity with a BDP-capped window,
//     ramps linearly to the fair share over three RTTs at connection
//     start (§4.1), and switches to a cellular-tailored BBR when the
//     bottleneck moves into the Internet (§4.2.3).
package core

import (
	"pbecc/internal/lte"
	"pbecc/internal/phy"
)

// Filter thresholds of §4.2.1: users active for at most FilterMinSubframes
// subframes or with at most FilterMinPRBs average PRBs are control-plane
// chatter and are excluded from the fair-share user count N.
const (
	FilterMinSubframes = 1
	FilterMinPRBs      = 4.0
)

// DefaultWindow is the averaging window in subframes for Eqn 3's
// smoothing, "the most recent RTprop subframes" (40 for a 40 ms RTT).
const DefaultWindow = 40

// CellInfo describes one component carrier the monitor decodes.
type CellInfo struct {
	ID   int
	NPRB int
	// SlotsPerSubframe is the cell's scheduling-slot rate relative to the
	// 1 ms LTE subframe: 1 for LTE (and when left zero), 2^µ for a 5G NR
	// cell with numerology µ. The monitor scales each cell's sliding
	// window to cover the same wall-clock span regardless of slot clock,
	// and converts per-slot capacity to the common bits-per-millisecond
	// unit when aggregating across RATs.
	SlotsPerSubframe int
	// CBGBits, when positive, switches the Eqn 5 translation to NR
	// code-block-group retransmission with this group size. Zero keeps the
	// paper's whole-transport-block model (LTE).
	CBGBits int
	// Rate returns the UE's current physical data rate on this cell in
	// bits per PRB per slot (from its own CQI feedback), used before any
	// own allocation appears in the window.
	Rate func() float64
	// BER returns the current bit error rate estimate used by the Eqn 5
	// translation.
	BER func() float64
}

// Monitor tracks per-cell control information over a sliding window and
// produces PBE-CC's capacity estimates. It is not safe for concurrent
// use: in an unsharded scenario everything runs on one event loop, and
// in a sharded one the harness pins the monitor - like the device and
// flows it serves - to the shard of its cells, so every cell feed,
// attach/detach and client read stays on that shard's loop. A monitor
// must never be attached to cells on different shards (the lte/nr
// layers enforce the matching invariant for devices).
type Monitor struct {
	RNTI   uint16
	Window int

	// UseFilter can be disabled for the ablation study of the §4.2.1
	// control-traffic filter.
	UseFilter bool

	// Noise, when non-nil, perturbs the aggregate capacity estimates the
	// monitor reports: CapacityBits and FairShareBits return
	// max(0, Noise(v)). It models imperfect physical-layer measurement
	// (PDCCH decode errors, CQI quantization) and drives the sweep
	// runner's measurement-robustness axis (Zhu et al.'s methodology for
	// measurement-based congestion control).
	Noise func(bits float64) float64

	cells map[int]*cellTrack
	order []int

	// lastCapacity is the value the most recent CapacityBits call
	// returned. The accuracy probe reads it through LastCapacityBits
	// instead of calling CapacityBits itself: a fresh call would draw
	// from the Noise hook's RNG and perturb the simulation it observes.
	lastCapacity float64
}

// cellTrack is the sliding window of one cell. The ring holds one sample
// per scheduling slot; its length is Window * SlotsPerSubframe so every
// cell's window spans the same wall-clock time.
type cellTrack struct {
	info CellInfo
	spf  int // slots per subframe (1 for LTE, 2^µ for NR)
	ring []subframeSample
	next int
	fill int

	// Window sums, maintained incrementally.
	sumMyPRBs   int
	sumIdlePRBs int
	sumMyRate   float64
	myRateN     int

	users map[uint16]*userTrack
	seen  map[uint16]int // per-ingest scratch, cleared each OnSubframe
}

type subframeSample struct {
	myPRBs int
	myRate float64
	idle   int
	allocs []userAlloc
}

type userAlloc struct {
	rnti uint16
	prbs int
}

// userTrack accumulates one RNTI's activity within the window.
type userTrack struct {
	subframes int
	prbs      int
}

// NewMonitor returns a monitor for the given UE RNTI with the default
// 40-subframe smoothing window.
func NewMonitor(rnti uint16) *Monitor {
	return &Monitor{
		RNTI:      rnti,
		Window:    DefaultWindow,
		UseFilter: true,
		cells:     make(map[int]*cellTrack),
	}
}

// AttachCell starts monitoring a component carrier. Attaching an
// already-attached cell resets its window (the §4.1 restart when carriers
// are activated).
func (m *Monitor) AttachCell(info CellInfo) {
	if _, ok := m.cells[info.ID]; !ok {
		m.order = append(m.order, info.ID)
	}
	spf := info.SlotsPerSubframe
	if spf < 1 {
		spf = 1
	}
	m.cells[info.ID] = &cellTrack{
		info:  info,
		spf:   spf,
		ring:  make([]subframeSample, m.Window*spf),
		users: make(map[uint16]*userTrack),
		seen:  make(map[uint16]int),
	}
}

// DetachCell stops monitoring a carrier (deactivation).
func (m *Monitor) DetachCell(id int) {
	if _, ok := m.cells[id]; !ok {
		return
	}
	delete(m.cells, id)
	for i, v := range m.order {
		if v == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

// ActiveCellIDs returns the monitored cell IDs in attachment order.
func (m *Monitor) ActiveCellIDs() []int { return m.order }

// OnSubframe ingests one scheduling interval of a cell's control
// information - a 1 ms subframe for LTE, one slot for NR (the NR cell
// emits one report per slot with the slot index in the Subframe field).
// It has the signature of lte.Monitor so it can be attached to either
// cell type directly.
func (m *Monitor) OnSubframe(rep *lte.SubframeReport) {
	ct, ok := m.cells[rep.CellID]
	if !ok {
		return
	}
	// Evict the sample leaving the window.
	if ct.fill == len(ct.ring) {
		old := &ct.ring[ct.next]
		ct.sumMyPRBs -= old.myPRBs
		ct.sumIdlePRBs -= old.idle
		if old.myPRBs > 0 {
			ct.sumMyRate -= old.myRate
			ct.myRateN--
		}
		for _, ua := range old.allocs {
			u := ct.users[ua.rnti]
			u.subframes--
			u.prbs -= ua.prbs
			if u.subframes == 0 {
				delete(ct.users, ua.rnti)
			}
		}
	}

	// The evicted slot is the one being overwritten, so its allocs
	// capacity can be reused for the incoming sample. Per-user PRB sums
	// are order-independent, so ranging the scratch map is safe.
	s := subframeSample{idle: rep.IdlePRBs(), allocs: ct.ring[ct.next].allocs[:0]}
	seen := ct.seen
	clear(seen)
	for i := range rep.Allocs {
		a := &rep.Allocs[i]
		if a.RNTI == m.RNTI {
			s.myPRBs += a.PRBs
			s.myRate = a.MCS.BitsPerPRB()
			continue
		}
		seen[a.RNTI] += a.PRBs
	}
	for rnti, prbs := range seen {
		s.allocs = append(s.allocs, userAlloc{rnti: rnti, prbs: prbs})
	}
	// Insert.
	if s.myPRBs > 0 {
		ct.sumMyRate += s.myRate
		ct.myRateN++
	}
	ct.sumMyPRBs += s.myPRBs
	ct.sumIdlePRBs += s.idle
	for _, ua := range s.allocs {
		u := ct.users[ua.rnti]
		if u == nil {
			u = &userTrack{}
			ct.users[ua.rnti] = u
		}
		u.subframes++
		u.prbs += ua.prbs
	}
	ct.ring[ct.next] = s
	ct.next = (ct.next + 1) % len(ct.ring)
	if ct.fill < len(ct.ring) {
		ct.fill++
	}
}

// activeUsers returns N for one cell: the filtered competing users plus
// the mobile itself (§4.2.1). With the filter disabled every observed
// user counts (the ablation).
func (ct *cellTrack) activeUsers(useFilter bool) int {
	n := 1 // self
	for _, u := range ct.users {
		if !useFilter {
			n++
			continue
		}
		avgPRBs := float64(u.prbs) / float64(u.subframes)
		if u.subframes > FilterMinSubframes && avgPRBs > FilterMinPRBs {
			n++
		}
	}
	return n
}

// DetectedUsers returns the number of distinct users seen in the cell's
// window before filtering (for the Figure 7 reproduction), not counting
// the mobile itself.
func (m *Monitor) DetectedUsers(cellID int) int {
	if ct, ok := m.cells[cellID]; ok {
		return len(ct.users)
	}
	return 0
}

// ActiveUsers returns N for a cell after filtering, including self.
func (m *Monitor) ActiveUsers(cellID int) int {
	if ct, ok := m.cells[cellID]; ok {
		return ct.activeUsers(m.UseFilter)
	}
	return 0
}

// rw returns the smoothed physical rate R_w in bits per PRB.
func (ct *cellTrack) rw() float64 {
	if ct.myRateN > 0 {
		return ct.sumMyRate / float64(ct.myRateN)
	}
	if ct.info.Rate != nil {
		return ct.info.Rate()
	}
	return 0
}

// CellCapacity returns one cell's contribution to Eqn 3 in physical bits
// per scheduling slot: R_w * (P_a + P_idle/N). For LTE a slot is the 1 ms
// subframe; for NR it is the numerology's slot, so capacities of cells
// with different slot clocks are not directly comparable - use
// CellCapacityPerMs or CapacityBits for cross-RAT aggregation.
func (m *Monitor) CellCapacity(cellID int) float64 {
	ct, ok := m.cells[cellID]
	if !ok || ct.fill == 0 {
		return 0
	}
	w := float64(ct.fill)
	pa := float64(ct.sumMyPRBs) / w
	idle := float64(ct.sumIdlePRBs) / w
	n := float64(ct.activeUsers(m.UseFilter))
	return ct.rw() * (pa + idle/n)
}

// CellFairShare returns one cell's contribution to Eqn 2 in physical bits
// per scheduling slot: R_w * P_cell/N.
func (m *Monitor) CellFairShare(cellID int) float64 {
	ct, ok := m.cells[cellID]
	if !ok {
		return 0
	}
	n := float64(ct.activeUsers(m.UseFilter))
	return ct.rw() * float64(ct.info.NPRB) / n
}

// CellCapacityPerMs returns one cell's Eqn 3 capacity normalized to the
// common bits-per-millisecond unit: per-slot capacity times the cell's
// slot rate. This is the cross-RAT generalization of the paper's
// per-subframe accounting - an LTE cell contributes its per-subframe
// capacity unchanged, an NR µ=1 cell contributes twice its per-slot
// capacity, and so on.
func (m *Monitor) CellCapacityPerMs(cellID int) float64 {
	ct, ok := m.cells[cellID]
	if !ok {
		return 0
	}
	return m.CellCapacity(cellID) * float64(ct.spf)
}

// CellFairSharePerMs returns one cell's Eqn 2 fair share in bits per
// millisecond.
func (m *Monitor) CellFairSharePerMs(cellID int) float64 {
	ct, ok := m.cells[cellID]
	if !ok {
		return 0
	}
	return m.CellFairShare(cellID) * float64(ct.spf)
}

// CapacityBits returns C_t: the Eqn 3 available capacity summed over the
// aggregated cells (normalized across slot clocks) and translated to
// transport-layer goodput through Eqn 5, in bits per millisecond.
func (m *Monitor) CapacityBits() float64 {
	var total float64
	for _, id := range m.order {
		total += m.translate(id, m.CellCapacityPerMs(id))
	}
	m.lastCapacity = m.noisy(total)
	return m.lastCapacity
}

// LastCapacityBits returns the most recent CapacityBits result without
// recomputing it. It never draws from the Noise hook, so observers (the
// measurement-accuracy probe) can read the estimate the transport
// actually acted on without perturbing the RNG stream.
func (m *Monitor) LastCapacityBits() float64 { return m.lastCapacity }

// FairShareBits returns C_f of Eqn 2 summed over the aggregated cells and
// translated to transport-layer bits per millisecond.
func (m *Monitor) FairShareBits() float64 {
	var total float64
	for _, id := range m.order {
		total += m.translate(id, m.CellFairSharePerMs(id))
	}
	return m.noisy(total)
}

// noisy applies the measurement-noise hook, clamped at zero (a capacity
// estimate can be arbitrarily wrong but never negative).
func (m *Monitor) noisy(v float64) float64 {
	if m.Noise == nil {
		return v
	}
	if v = m.Noise(v); v < 0 {
		return 0
	}
	return v
}

// translate applies the Eqn 5 physical-to-transport translation with the
// cell's retransmission granularity.
func (m *Monitor) translate(id int, cp float64) float64 {
	if ct := m.cells[id]; ct != nil && ct.info.CBGBits > 0 {
		return phy.TransportFromPhysicalCBG(cp, m.cellBER(id), ct.info.CBGBits)
	}
	return phy.TransportFromPhysical(cp, m.cellBER(id))
}

func (m *Monitor) cellBER(id int) float64 {
	ct := m.cells[id]
	if ct.info.BER != nil {
		return ct.info.BER()
	}
	return 1e-6
}

// BitsPerSubframeToBps converts the paper's bits-per-subframe capacity
// unit to bits per second (1000 subframes per second).
func BitsPerSubframeToBps(v float64) float64 { return v * 1000 }
