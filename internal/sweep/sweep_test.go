package sweep

import (
	"bytes"
	"testing"
)

func testSpec() *Spec {
	return &Spec{
		Name:        "test",
		Experiments: []string{"steady", "competition"},
		Schemes:     []string{"pbe", "bbr"},
		Seeds:       []int64{1, 2},
		DurationMs:  400,
	}
}

func TestJobsExpansionOrderAndCount(t *testing.T) {
	s := &Spec{
		Experiments: []string{"steady", "competition", "multiflow"},
		Schemes:     []string{"pbe", "bbr"},
		Seeds:       []int64{1, 2, 3, 4},
		RATs:        []string{"lte", "nr"},
		NoiseLevels: []float64{0, 0.1},
	}
	jobs, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// pbe crosses both noise levels; bbr ignores the monitor, so its
	// noise axis collapses to the noise-free point.
	if want := 3 * 2 * (2 + 1) * 4; len(jobs) != want {
		t.Fatalf("expanded %d jobs, want %d", len(jobs), want)
	}
	for _, j := range jobs {
		if j.Scheme == "bbr" && j.Noise != 0 {
			t.Fatalf("noise axis not collapsed for bbr: %+v", j)
		}
	}
	for i, j := range jobs {
		if j.Index != i {
			t.Fatalf("job %d carries index %d", i, j.Index)
		}
	}
	// Innermost axis is the seed: the first jobs differ only by seed.
	if jobs[0].Seed != 1 || jobs[1].Seed != 2 || jobs[0].Experiment != jobs[3].Experiment {
		t.Fatalf("expansion order drifted: %+v %+v", jobs[0], jobs[1])
	}
	// Expansion is deterministic.
	again, _ := s.Jobs()
	for i := range jobs {
		if jobs[i] != again[i] {
			t.Fatalf("job %d differs between expansions", i)
		}
	}
}

func TestJobsValidatesUpfront(t *testing.T) {
	bad := &Spec{Experiments: []string{"nosuch"}, Schemes: []string{"pbe"}, Seeds: []int64{1}}
	if _, err := bad.Jobs(); err == nil {
		t.Fatal("unknown family passed validation")
	}
	bad = &Spec{Experiments: []string{"steady"}, Schemes: []string{"nosuch"}, Seeds: []int64{1}}
	if _, err := bad.Jobs(); err == nil {
		t.Fatal("unknown scheme passed validation")
	}
	empty := &Spec{}
	if _, err := empty.Jobs(); err == nil {
		t.Fatal("empty spec passed validation")
	}
	zeroSeed := &Spec{Experiments: []string{"steady"}, Schemes: []string{"pbe"}, Seeds: []int64{0}}
	if _, err := zeroSeed.Jobs(); err == nil {
		t.Fatal("seed 0 passed validation (would run a mislabeled default-seed job)")
	}
	cellsOnMobility := &Spec{Experiments: []string{"mobility"}, Schemes: []string{"pbe"},
		Seeds: []int64{1}, CellCounts: []int{2}}
	if _, err := cellsOnMobility.Jobs(); err == nil {
		t.Fatal("cell_counts accepted for a family that ignores them")
	}
}

// TestParallelismDoesNotChangeBytes is the core determinism contract: the
// same spec run serially and with eight workers must serialize to
// byte-identical JSON.
func TestParallelismDoesNotChangeBytes(t *testing.T) {
	spec := testSpec()
	serial, err := Run(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WriteResult(&a, serial); err != nil {
		t.Fatal(err)
	}
	if err := WriteResult(&b, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("workers=1 and workers=8 produced different bytes:\n%s\nvs\n%s",
			a.String(), b.String())
	}
	if len(serial.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(serial.Rows))
	}
	for _, r := range serial.Rows {
		if r.TputMbps <= 0 {
			t.Fatalf("job %+v measured no throughput", r)
		}
	}
}

func TestSummarizeGroups(t *testing.T) {
	rows := []Row{
		{Experiment: "steady", RAT: "lte", Scheme: "pbe", Seed: 1, TputMbps: 10, DelayP95Ms: 20, Utilization: 0.1},
		{Experiment: "steady", RAT: "lte", Scheme: "pbe", Seed: 2, TputMbps: 30, DelayP95Ms: 40, Utilization: 0.3},
		{Experiment: "steady", RAT: "lte", Scheme: "bbr", Seed: 1, TputMbps: 5, DelayP95Ms: 50, Utilization: 0.05},
	}
	sums := Summarize(rows)
	if len(sums) != 2 {
		t.Fatalf("groups = %d, want 2", len(sums))
	}
	// Sorted by key: steady/lte/bbr before steady/lte/pbe.
	if sums[0].Scheme != "bbr" || sums[1].Scheme != "pbe" {
		t.Fatalf("group order: %s, %s", sums[0].Key(), sums[1].Key())
	}
	if sums[1].Jobs != 2 || sums[1].Tput.Mean != 20 {
		t.Fatalf("pbe group: jobs=%d mean=%v", sums[1].Jobs, sums[1].Tput.Mean)
	}
}

func TestDiffFlagsRegressions(t *testing.T) {
	base := &Result{Summaries: []Summary{{
		Experiment: "steady", RAT: "lte", Scheme: "pbe", Jobs: 2,
		Tput:        Metric{Mean: 100},
		DelayP95:    Metric{P50: 50},
		Utilization: Metric{Mean: 0.5},
	}}}
	cur := &Result{Summaries: []Summary{{
		Experiment: "steady", RAT: "lte", Scheme: "pbe", Jobs: 2,
		Tput:        Metric{Mean: 80},  // 20% worse
		DelayP95:    Metric{P50: 45},   // 10% better
		Utilization: Metric{Mean: 0.5}, // unchanged
	}}}
	deltas, err := Diff(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 3 {
		t.Fatalf("deltas = %d, want 3", len(deltas))
	}
	byMetric := map[string]Delta{}
	for _, d := range deltas {
		byMetric[d.Metric] = d
	}
	if got := byMetric["tput_mbps.mean"].RegressPct; got != 20 {
		t.Fatalf("tput regression = %v, want 20", got)
	}
	if got := byMetric["delay_p95_ms.p50"].RegressPct; got != -10 {
		t.Fatalf("delay regression = %v, want -10 (improvement)", got)
	}
	if got := byMetric["utilization.mean"].RegressPct; got != 0 {
		t.Fatalf("utilization regression = %v, want 0", got)
	}
	if got := WorstRegression(deltas); got != 20 {
		t.Fatalf("worst = %v, want 20", got)
	}
}

func TestDiffRejectsMismatchedGroups(t *testing.T) {
	base := &Result{Summaries: []Summary{
		{Experiment: "steady", RAT: "lte", Scheme: "pbe"},
	}}
	cur := &Result{Summaries: []Summary{
		{Experiment: "steady", RAT: "lte", Scheme: "bbr"},
	}}
	if _, err := Diff(base, cur); err == nil {
		t.Fatal("mismatched groups not rejected")
	}
	if _, err := Diff(cur, base); err == nil {
		t.Fatal("mismatched groups not rejected in reverse")
	}
}

func TestDiffRejectsMismatchedSpecs(t *testing.T) {
	summaries := []Summary{{Experiment: "steady", RAT: "lte", Scheme: "pbe"}}
	base := &Result{
		Spec:      Spec{Name: "old", Experiments: []string{"steady"}, Schemes: []string{"pbe"}, Seeds: []int64{1, 2}, DurationMs: 1000},
		Summaries: summaries,
	}
	cur := &Result{
		Spec:      Spec{Name: "new", Experiments: []string{"steady"}, Schemes: []string{"pbe"}, Seeds: []int64{1, 2}, DurationMs: 4000},
		Summaries: summaries,
	}
	if _, err := Diff(base, cur); err == nil {
		t.Fatal("differing duration_ms not rejected despite identical group keys")
	}
	// A rename alone must stay comparable.
	cur.Spec.DurationMs = base.Spec.DurationMs
	if _, err := Diff(base, cur); err != nil {
		t.Fatalf("rename-only spec difference rejected: %v", err)
	}
}

func TestSpecHashNameInsensitiveAxisSensitive(t *testing.T) {
	a := Spec{Name: "a", Experiments: []string{"steady"}, Schemes: []string{"pbe"}, Seeds: []int64{1}, DurationMs: 1000}
	b := a
	b.Name = "renamed"
	if SpecHash(a) != SpecHash(b) {
		t.Fatal("rename changed the spec hash")
	}
	b.DurationMs = 2000
	if SpecHash(a) == SpecHash(b) {
		t.Fatal("differing duration_ms hashed identically")
	}
}

func TestSmokeSpecSatisfiesGate(t *testing.T) {
	jobs, err := Smoke().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance floor: >= 24 jobs from >= 2 algorithms x >= 3
	// experiments x >= 4 seeds.
	if len(jobs) < 24 {
		t.Fatalf("smoke sweep has %d jobs, want >= 24", len(jobs))
	}
	schemes, exps, seeds := map[string]bool{}, map[string]bool{}, map[int64]bool{}
	for _, j := range jobs {
		schemes[j.Scheme] = true
		exps[j.Experiment] = true
		seeds[j.Seed] = true
	}
	if len(schemes) < 2 || len(exps) < 3 || len(seeds) < 4 {
		t.Fatalf("smoke axes: %d schemes, %d experiments, %d seeds",
			len(schemes), len(exps), len(seeds))
	}
}

func TestFrameMetricsSurfaceInMediaRows(t *testing.T) {
	spec := &Spec{
		Name:        "rtc-test",
		Experiments: []string{"rtc"},
		Schemes:     []string{"gcc"},
		Seeds:       []int64{1},
		DurationMs:  600,
	}
	res, err := Run(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	if r.Frames == 0 {
		t.Fatal("rtc row carries no frame count")
	}
	if r.FrameP95Ms <= 0 {
		t.Fatalf("rtc row frame p95 = %v", r.FrameP95Ms)
	}
	if len(res.Summaries) != 1 || res.Summaries[0].Frame == nil {
		t.Fatal("rtc summary carries no frame distributions")
	}
}

func TestBulkRowsCarryNoFrameMetrics(t *testing.T) {
	res, err := Run(&Spec{
		Name: "bulk", Experiments: []string{"steady"}, Schemes: []string{"bbr"},
		Seeds: []int64{1}, DurationMs: 400,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].Frames != 0 || res.Summaries[0].Frame != nil {
		t.Fatal("bulk job grew frame metrics")
	}
}

func TestDiffTracksFrameDelay(t *testing.T) {
	mk := func(p95 float64) *Result {
		return &Result{Summaries: []Summary{{
			Experiment: "rtc", RAT: "lte", Scheme: "gcc", Jobs: 1,
			Tput: Metric{Mean: 5}, DelayP95: Metric{P50: 30}, Utilization: Metric{Mean: 0.1},
			Frame: &FrameSummary{P95Ms: Metric{P50: p95}},
		}}}
	}
	deltas, err := Diff(mk(100), mk(120))
	if err != nil {
		t.Fatal(err)
	}
	byMetric := map[string]Delta{}
	for _, d := range deltas {
		byMetric[d.Metric] = d
	}
	d, ok := byMetric["frame_p95_ms.p50"]
	if !ok {
		t.Fatal("frame delay not tracked for a media group")
	}
	if d.RegressPct != 20 {
		t.Fatalf("frame p95 regression = %v, want 20", d.RegressPct)
	}
}

func TestDiffRejectsFramePresenceMismatch(t *testing.T) {
	withFrame := &Result{Summaries: []Summary{{
		Experiment: "rtc", RAT: "lte", Scheme: "gcc",
		Frame: &FrameSummary{},
	}}}
	withoutFrame := &Result{Summaries: []Summary{{
		Experiment: "rtc", RAT: "lte", Scheme: "gcc",
	}}}
	if _, err := Diff(withFrame, withoutFrame); err == nil {
		t.Fatal("frame metrics vanishing from a group not rejected")
	}
	if _, err := Diff(withoutFrame, withFrame); err == nil {
		t.Fatal("frame metrics appearing in a group not rejected")
	}
}

// TestSFUSweepDeterminism runs the heaviest new family through the
// worker-pool determinism contract: a 32-subscriber fan-out must still
// serialize byte-identically for any worker count.
func TestSFUSweepDeterminism(t *testing.T) {
	spec := &Spec{
		Name:        "sfu-test",
		Experiments: []string{"sfu"},
		Schemes:     []string{"gcc"},
		Seeds:       []int64{1, 2},
		RATs:        []string{"lte", "nr"},
		DurationMs:  500,
	}
	serial, err := Run(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WriteResult(&a, serial); err != nil {
		t.Fatal(err)
	}
	if err := WriteResult(&b, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("sfu sweep bytes differ between workers=1 and workers=8")
	}
	for _, r := range serial.Rows {
		if r.Frames == 0 {
			t.Fatalf("sfu job %+v released no frames", r)
		}
	}
}
