package sweep

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"pbecc/internal/stats"
)

// Bench is one benchmark's measured cost per operation, parsed from
// `go test -bench -benchmem` output. NsPerOp is machine-dependent;
// BytesPerOp and AllocsPerOp are deterministic properties of the code, so
// they can be gated against a committed baseline across machines. A
// negative BytesPerOp/AllocsPerOp means the line carried no -benchmem
// columns.
type Bench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchLine matches "BenchmarkName-8   123456   95.3 ns/op [...]". The
// -N GOMAXPROCS suffix is stripped from the name so results stay
// comparable across differently-sized machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// ParseBench reads `go test -bench` output and returns the benchmarks it
// found, keyed by name (without the GOMAXPROCS suffix). Non-benchmark
// lines (PASS, ok, goos, log noise) are ignored. A duplicate name - two
// packages declaring the same benchmark, or -count > 1 - is an error,
// because silently keeping one run would make the diff depend on output
// order.
func ParseBench(r io.Reader) (map[string]Bench, error) {
	out := map[string]Bench{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		b := Bench{Name: m[1], BytesPerOp: -1, AllocsPerOp: -1}
		if _, dup := out[b.Name]; dup {
			return nil, fmt.Errorf("duplicate benchmark %s (ran with -count > 1?)", b.Name)
		}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q", b.Name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if b.NsPerOp == 0 {
			return nil, fmt.Errorf("benchmark %s has no ns/op column", b.Name)
		}
		out[b.Name] = b
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return out, nil
}

// DiffBench compares two parsed benchmark sets and returns one Delta per
// metric per benchmark present in both, in name order (all three metrics
// are lower-better). Benchmarks on only one side are an error unless
// allowMissing is set, which tolerates them - the mode used when
// comparing against an older base ref that predates a new benchmark.
func DiffBench(base, cur map[string]Bench, allowMissing bool) ([]Delta, error) {
	names := make([]string, 0, len(cur))
	for name := range cur {
		if _, ok := base[name]; !ok {
			if allowMissing {
				continue
			}
			return nil, fmt.Errorf("benchmark %s missing from baseline (regenerate it)", name)
		}
		names = append(names, name)
	}
	if !allowMissing {
		for name := range base {
			if _, ok := cur[name]; !ok {
				return nil, fmt.Errorf("benchmark %s missing from current run", name)
			}
		}
	}
	sort.Strings(names)
	var deltas []Delta
	for _, name := range names {
		b, c := base[name], cur[name]
		add := func(metric string, bv, cv float64) {
			d := Delta{Group: name, Metric: metric, Base: bv, Cur: cv}
			d.RegressPct = stats.Round2(regressPct(bv, cv, false))
			deltas = append(deltas, d)
		}
		add("ns/op", b.NsPerOp, c.NsPerOp)
		if b.BytesPerOp >= 0 && c.BytesPerOp >= 0 {
			add("B/op", b.BytesPerOp, c.BytesPerOp)
		}
		if b.AllocsPerOp >= 0 && c.AllocsPerOp >= 0 {
			add("allocs/op", b.AllocsPerOp, c.AllocsPerOp)
		}
	}
	return deltas, nil
}

// ExceededBench filters bench deltas down to gate violations. The two
// budgets are percentages; a negative budget disables that gate. nsBudget
// governs ns/op (meaningful only when base and current ran on the same
// machine); allocBudget governs the deterministic B/op and allocs/op.
func ExceededBench(deltas []Delta, nsBudget, allocBudget float64) []Delta {
	var bad []Delta
	for _, d := range deltas {
		budget := allocBudget
		if d.Metric == "ns/op" {
			budget = nsBudget
		}
		if budget >= 0 && d.RegressPct > budget {
			bad = append(bad, d)
		}
	}
	return bad
}
