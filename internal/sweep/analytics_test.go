package sweep

import (
	"math"
	"testing"
)

// flat returns n copies of v.
func flat(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// TestConvergenceExactOnSyntheticStep pins the metric's definition on a
// noiseless input: capacity doubles at window 10, the flow crosses the
// 70% line at window 15, so convergence is exactly 5 windows = 200 ms.
func TestConvergenceExactOnSyntheticStep(t *testing.T) {
	truth := append(flat(10, 50), flat(20, 100)...)
	rate := append(flat(10, 45), flat(20, 50)...) // tracking the old capacity
	for w := 15; w < 30; w++ {
		rate[w] = 95
	}
	tr := &Trajectory{Rate: rate, Truth: truth}
	if s := tr.StepWin(); s != 10 {
		t.Fatalf("StepWin = %d, want 10", s)
	}
	if c := tr.ConvergenceMs(); c != 200 {
		t.Fatalf("ConvergenceMs = %.0f, want 200 (5 windows after the step)", c)
	}
}

// TestConvergenceFromFlowStart: on a steady channel no window pair
// qualifies as a step, so the ramp is measured from window 0 - a linear
// climb crosses 70% of a flat 100 at window 6 (rate 70), i.e. 240 ms.
func TestConvergenceFromFlowStart(t *testing.T) {
	truth := flat(30, 100)
	rate := make([]float64, 30)
	for w := range rate {
		rate[w] = 10 * float64(w+1)
		if rate[w] > 100 {
			rate[w] = 100
		}
	}
	tr := &Trajectory{Rate: rate, Truth: truth}
	if s := tr.StepWin(); s != 0 {
		t.Fatalf("StepWin = %d on a steady channel, want 0", s)
	}
	if c := tr.ConvergenceMs(); c != 240 {
		t.Fatalf("ConvergenceMs = %.0f, want 240", c)
	}
}

// TestConvergenceNeverScoresRemainingSpan: a flow stuck at half capacity
// scores the whole remaining span rather than an undefined sentinel, so
// the baseline diff stays monotone (slower is strictly worse).
func TestConvergenceNeverScoresRemainingSpan(t *testing.T) {
	tr := &Trajectory{Rate: flat(25, 50), Truth: flat(25, 100)}
	if c := tr.ConvergenceMs(); c != 25*40 {
		t.Fatalf("ConvergenceMs = %.0f, want %d", c, 25*40)
	}
}

// TestTrackingLagFindsShiftedCopy: the rate is an exact 3-window-delayed
// copy of a varying truth signal, so the correlation peak - and the
// reported lag - must sit at exactly 120 ms.
func TestTrackingLagFindsShiftedCopy(t *testing.T) {
	const n, shift = 64, 3
	truth := make([]float64, n)
	for w := range truth {
		truth[w] = 60 + 30*math.Sin(float64(w)/2.5) + 10*math.Sin(float64(w)/7)
	}
	rate := make([]float64, n)
	for w := range rate {
		if w >= shift {
			rate[w] = truth[w-shift]
		} else {
			rate[w] = truth[0]
		}
	}
	tr := &Trajectory{Rate: rate, Truth: truth}
	if lag := tr.TrackingLagMs(); lag != shift*40 {
		t.Fatalf("TrackingLagMs = %.0f, want %d", lag, shift*40)
	}
	// A perfect zero-lag tracker must report zero, not a tie broken high.
	tr0 := &Trajectory{Rate: truth, Truth: truth}
	if lag := tr0.TrackingLagMs(); lag != 0 {
		t.Fatalf("TrackingLagMs = %.0f for an exact copy, want 0", lag)
	}
}

// TestRecoverMsEpisode: one fault episode at windows 20-22, rate crushed
// until window 27 and back above 90% of the pre-fault mean from window
// 28 - recovery is exactly 8 windows = 320 ms.
func TestRecoverMsEpisode(t *testing.T) {
	rate := flat(35, 100)
	for w := 20; w < 28; w++ {
		rate[w] = 10
	}
	tr := &Trajectory{Rate: rate, Truth: flat(35, 120), FaultWins: []int{20, 21, 22}}
	if r := tr.RecoverMs(); r != 320 {
		t.Fatalf("RecoverMs = %.0f, want 320", r)
	}
}

// TestEstErrAUCIntegratesDuration: a constant 10% error over 25 windows
// integrates to 10% x 1 second = 10 percent-seconds; halving the span
// halves the area.
func TestEstErrAUCIntegratesDuration(t *testing.T) {
	tr := &Trajectory{Est: flat(25, 90), Truth: flat(25, 100)}
	if a := tr.EstErrAUC(); math.Abs(a-10) > 1e-9 {
		t.Fatalf("EstErrAUC = %.3f, want 10", a)
	}
	half := &Trajectory{Est: flat(25, 90), Truth: append(flat(12, 100), flat(13, 0)...)}
	ha := half.EstErrAUC()
	if math.Abs(ha-4.8) > 1e-9 {
		t.Fatalf("EstErrAUC over 12 windows = %.3f, want 4.8", ha)
	}
}

// TestAnalyticsSentinels: every metric reports -1 on trajectories it is
// undefined for, never a fake zero (zero is an excellent real score).
func TestAnalyticsSentinels(t *testing.T) {
	empty := &Trajectory{}
	if c := empty.ConvergenceMs(); c != -1 {
		t.Fatalf("ConvergenceMs on empty = %.0f, want -1", c)
	}
	if l := empty.TrackingLagMs(); l != -1 {
		t.Fatalf("TrackingLagMs on empty = %.0f, want -1", l)
	}
	if a := empty.EstErrAUC(); a != -1 {
		t.Fatalf("EstErrAUC on empty = %.0f, want -1", a)
	}
	if r := empty.RecoverMs(); r != -1 {
		t.Fatalf("RecoverMs on empty = %.0f, want -1", r)
	}
	// Rate but no truth: nothing to converge to.
	noTruth := &Trajectory{Rate: flat(20, 50), Truth: flat(20, 0)}
	if c := noTruth.ConvergenceMs(); c != -1 {
		t.Fatalf("ConvergenceMs without truth = %.0f, want -1", c)
	}
	// Faults but no pre-fault traffic: no recovery reference.
	noRef := &Trajectory{Rate: flat(20, 0), FaultWins: []int{5}}
	if r := noRef.RecoverMs(); r != -1 {
		t.Fatalf("RecoverMs without reference = %.0f, want -1", r)
	}
}
