package sweep

import (
	"bytes"
	"testing"
)

// scorecardTestSpec is a cut-down scorecard matrix: one media family, a
// monitor scheme and an end-to-end scheme, one monitor-only axis and the
// everyone-feels-it onoff axis.
func scorecardTestSpec() *Spec {
	return &Spec{
		Name:        "scorecard-test",
		Experiments: []string{"rtc"},
		Schemes:     []string{"pbertc", "gcc"},
		Seeds:       []int64{1},
		FaultAxes:   []string{"stale", "onoff"},
		FaultLevels: []float64{1},
		DurationMs:  300,
	}
}

func TestJobsFaultAxisExpansion(t *testing.T) {
	s := &Spec{
		Experiments: []string{"rtc"},
		Schemes:     []string{"pbe", "cubic"},
		Seeds:       []int64{1, 2},
		FaultAxes:   []string{"stale", "miss", "handover", "onoff"},
		FaultLevels: []float64{1},
		DurationMs:  300,
	}
	jobs, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// pbe crosses the clean point plus all four axes; cubic never reads
	// the monitor, so its monitor axes collapse and only onoff remains.
	if want := (5 + 2) * 2; len(jobs) != want {
		t.Fatalf("expanded %d jobs, want %d", len(jobs), want)
	}
	for _, j := range jobs {
		if j.Scheme == "cubic" && j.FaultAxis != "" && j.FaultAxis != "onoff" {
			t.Fatalf("monitor fault axis not collapsed for cubic: %+v", j)
		}
		if (j.FaultAxis == "") != (j.FaultLevel == 0) {
			t.Fatalf("axis/level mismatch: %+v", j)
		}
	}
}

func TestJobsRejectBadFaultAxes(t *testing.T) {
	bad := &Spec{Experiments: []string{"rtc"}, Schemes: []string{"pbe"}, Seeds: []int64{1},
		FaultAxes: []string{"nosuch"}}
	if _, err := bad.Jobs(); err == nil {
		t.Fatal("unknown fault axis passed validation")
	}
	bad = &Spec{Experiments: []string{"rtc"}, Schemes: []string{"pbe"}, Seeds: []int64{1},
		FaultAxes: []string{"stale"}, FaultLevels: []float64{0}}
	if _, err := bad.Jobs(); err == nil {
		t.Fatal("zero fault level passed validation (duplicate clean point)")
	}
	bad = &Spec{Experiments: []string{"rtc"}, Schemes: []string{"pbe"}, Seeds: []int64{1},
		FaultAxes: []string{"stale"}, FaultLevels: []float64{1.5}}
	if _, err := bad.Jobs(); err == nil {
		t.Fatal("fault level above 1 passed validation")
	}
}

// TestScorecardBytesStableAcrossWorkers is the scorecard's determinism
// contract: the ranked JSON must be byte-identical for any worker count.
func TestScorecardBytesStableAcrossWorkers(t *testing.T) {
	serial, err := RunScorecard(scorecardTestSpec(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunScorecard(scorecardTestSpec(), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WriteScorecard(&a, serial); err != nil {
		t.Fatal(err)
	}
	if err := WriteScorecard(&b, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("workers=1 and workers=8 scorecards differ:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestScorecardBytesStableAcrossShards: the -shards flag may only change
// wall-clock time, never the scorecard bytes.
func TestScorecardBytesStableAcrossShards(t *testing.T) {
	one := scorecardTestSpec()
	one.Shards = 1
	four := scorecardTestSpec()
	four.Shards = 4
	s1, err := RunScorecard(one, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := RunScorecard(four, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Shards is json:"-", so the bytes compare across the whole card.
	var a, b bytes.Buffer
	if err := WriteScorecard(&a, s1); err != nil {
		t.Fatal(err)
	}
	if err := WriteScorecard(&b, s4); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("shards=1 and shards=4 scorecards differ:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestScorecardShape(t *testing.T) {
	sc, err := RunScorecard(scorecardTestSpec(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Schemes) != 2 {
		t.Fatalf("scorecard has %d schemes, want 2", len(sc.Schemes))
	}
	for i := 1; i < len(sc.Schemes); i++ {
		if sc.Schemes[i].RobustnessPct < sc.Schemes[i-1].RobustnessPct {
			t.Fatalf("ranking not ascending: %v then %v",
				sc.Schemes[i-1].RobustnessPct, sc.Schemes[i].RobustnessPct)
		}
	}
	byScheme := map[string]SchemeScore{}
	for _, s := range sc.Schemes {
		byScheme[s.Scheme] = s
		if s.CleanTputMbps <= 0 {
			t.Fatalf("%s clean baseline carried no traffic", s.Scheme)
		}
		if len(s.Axes) != 2 { // stale@1, onoff@1
			t.Fatalf("%s has %d axis points, want 2", s.Scheme, len(s.Axes))
		}
	}
	for _, p := range byScheme["gcc"].Axes {
		if p.Axis == "stale" && !p.Unaffected {
			t.Fatal("gcc marked affected by a monitor-only fault")
		}
		if p.Axis == "onoff" && p.Unaffected {
			t.Fatal("gcc marked unaffected by the onoff competitor")
		}
	}
	for _, p := range byScheme["pbertc"].Axes {
		if p.Unaffected {
			t.Fatalf("pbertc marked unaffected by %s", p.Axis)
		}
	}
}

func TestBuildScorecardRejectsCleanOnlyResult(t *testing.T) {
	res, err := Run(&Spec{Name: "clean", Experiments: []string{"rtc"},
		Schemes: []string{"gcc"}, Seeds: []int64{1}, DurationMs: 300}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildScorecard(res); err == nil {
		t.Fatal("scorecard built from a sweep with no fault axes")
	}
}

func TestDiffScorecardGate(t *testing.T) {
	base, err := RunScorecard(scorecardTestSpec(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	deltas, err := DiffScorecard(base, base)
	if err != nil {
		t.Fatal(err)
	}
	if got := WorstRegression(deltas); got != 0 {
		t.Fatalf("self-diff worst regression = %v, want 0", got)
	}
	// A scheme getting less robust must surface as a positive delta in
	// percentage points.
	worse := *base
	worse.Schemes = append([]SchemeScore(nil), base.Schemes...)
	worse.Schemes[0].RobustnessPct += 7
	deltas, err = DiffScorecard(base, &worse)
	if err != nil {
		t.Fatal(err)
	}
	if got := WorstRegression(deltas); got != 7 {
		t.Fatalf("worst regression = %v, want 7", got)
	}
	// A different matrix must not diff quietly.
	other := *base
	other.Spec.Seeds = []int64{9}
	if _, err := DiffScorecard(base, &other); err == nil {
		t.Fatal("mismatched specs diffed without error")
	}
}
