package sweep

import (
	"strings"
	"testing"
)

const benchOut = `goos: linux
goarch: amd64
pkg: pbecc/internal/sim
BenchmarkEngineSteady-8   	     100	  11000000 ns/op	  524288 B/op	    1024 allocs/op
BenchmarkClusterMetro-8   	      10	 101000000 ns/op	 1048576 B/op	    4096 allocs/op
BenchmarkNoMem-8          	    5000	    200000 ns/op
PASS
ok  	pbecc/internal/sim	2.345s
`

func TestParseBench(t *testing.T) {
	b, err := ParseBench(strings.NewReader(benchOut))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(b))
	}
	// GOMAXPROCS suffix must be stripped so -8 and -16 runs compare.
	es, ok := b["BenchmarkEngineSteady"]
	if !ok {
		t.Fatalf("missing BenchmarkEngineSteady (suffix not stripped?): %v", b)
	}
	if es.NsPerOp != 11000000 || es.BytesPerOp != 524288 || es.AllocsPerOp != 1024 {
		t.Fatalf("EngineSteady = %+v", es)
	}
	// A line without -benchmem columns keeps ns/op and flags the rest absent.
	nm := b["BenchmarkNoMem"]
	if nm.NsPerOp != 200000 || nm.BytesPerOp >= 0 || nm.AllocsPerOp >= 0 {
		t.Fatalf("NoMem = %+v, want ns only", nm)
	}
}

func TestParseBenchErrors(t *testing.T) {
	cases := map[string]string{
		"no benchmarks": "goos: linux\nPASS\n",
		"duplicate name": "BenchmarkX-8 10 5 ns/op\n" +
			"BenchmarkX-16 10 6 ns/op\n",
		"missing ns/op": "BenchmarkX-8 10 99 B/op\n",
	}
	for name, in := range cases {
		if _, err := ParseBench(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ParseBench accepted bad input", name)
		}
	}
}

func TestDiffBenchAndGate(t *testing.T) {
	base := map[string]Bench{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10},
	}
	cur := map[string]Bench{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 150, BytesPerOp: 1000, AllocsPerOp: 12},
	}
	deltas, err := DiffBench(base, cur, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3 (ns, B, allocs): %+v", len(deltas), deltas)
	}

	// Default posture: ns/op gate disabled (budget < 0), allocs gated at 10%.
	bad := ExceededBench(deltas, -1, 10)
	if len(bad) != 1 || bad[0].Metric != "allocs/op" {
		t.Fatalf("ns gate off: violations = %+v, want only allocs/op", bad)
	}
	// Same-machine mode: ns/op +50% must now trip too.
	bad = ExceededBench(deltas, 10, 10)
	if len(bad) != 2 {
		t.Fatalf("ns gate on: violations = %+v, want ns/op and allocs/op", bad)
	}
}

func TestDiffBenchMissing(t *testing.T) {
	base := map[string]Bench{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 100, BytesPerOp: -1, AllocsPerOp: -1},
	}
	cur := map[string]Bench{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 100, BytesPerOp: -1, AllocsPerOp: -1},
		"BenchmarkB": {Name: "BenchmarkB", NsPerOp: 50, BytesPerOp: -1, AllocsPerOp: -1},
	}
	if _, err := DiffBench(base, cur, false); err == nil {
		t.Fatal("one-sided benchmark accepted without -allow-missing")
	}
	deltas, err := DiffBench(base, cur, true)
	if err != nil {
		t.Fatal(err)
	}
	// Only the common benchmark contributes; no -benchmem columns -> ns only.
	if len(deltas) != 1 || deltas[0].Metric != "ns/op" {
		t.Fatalf("allow-missing deltas = %+v, want one ns/op delta", deltas)
	}
}
