package sweep

import (
	"testing"
	"time"
)

// TestNationSmokeSpec pins the CI nation slice's shape: it expands
// without error, stays small enough for the PR gate, and every job runs
// the nation family (which is always fluid).
func TestNationSmokeSpec(t *testing.T) {
	spec := NationSmoke()
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("nation smoke expands to %d jobs, want 4", len(jobs))
	}
	for _, j := range jobs {
		if j.Experiment != "nation" {
			t.Fatalf("job %d runs %q", j.Index, j.Experiment)
		}
	}
}

// TestFluidSpecPlumbing: the spec-level fluid switch must reach the
// harness params of every job, and a fluid nation row must surface the
// population's size and offered load.
func TestFluidSpecPlumbing(t *testing.T) {
	spec := &Spec{
		Name:        "t",
		Experiments: []string{"metro"},
		Schemes:     []string{"gcc"},
		Seeds:       []int64{1},
		CellCounts:  []int{2},
		Fluid:       true,
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if p := jobs[0].params(spec); !p.FluidBackground {
		t.Fatal("spec.Fluid did not reach Params.FluidBackground")
	}

	nspec := NationSmoke()
	nspec.DurationMs = int(100 * time.Millisecond / time.Millisecond)
	nspec.RATs = nspec.RATs[:1]
	nspec.Schemes = nspec.Schemes[:1]
	res, err := Run(nspec, 1)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row.FluidSessions < 1_000_000 {
		t.Fatalf("nation row models %d fluid sessions, want >= 1M", row.FluidSessions)
	}
	if row.FluidOfferedMbps <= 0 {
		t.Fatalf("nation row offered %v Mbit/s of fluid load", row.FluidOfferedMbps)
	}
}

// TestFluidOffRowsUnchanged: a non-fluid spec must keep its rows free of
// fluid fields, so committed packet baselines never churn.
func TestFluidOffRowsUnchanged(t *testing.T) {
	spec := &Spec{
		Name:        "t",
		Experiments: []string{"metro"},
		Schemes:     []string{"gcc"},
		Seeds:       []int64{1},
		CellCounts:  []int{2},
		DurationMs:  100,
	}
	res, err := Run(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r := res.Rows[0]; r.FluidSessions != 0 || r.FluidOfferedMbps != 0 {
		t.Fatalf("packet row carries fluid fields: %+v", r)
	}
}
