package sweep

import (
	"math"

	"pbecc/internal/obs"
)

// Trajectory analytics: the time-domain half of the sweep's evaluation.
// The paper's central claims are trajectory claims - PBE-CC converges to
// new wireless capacity in about one RTT and tracks it tightly thereafter
// (Figs. 6-9) - which end-of-run scalars cannot capture: a scheme could
// converge ten times slower with the same mean throughput. The analytics
// below reduce a job's recorded series (see internal/obs series layer) to
// four scalars that the baseline diff gates exactly like throughput.
//
// Everything works on the common 40 ms window grid (obs.SeriesWindow),
// indexed from window 0 = run start. The rate trajectory is derived from
// the "cc.ack_bits" series - acked bits per window over the window length
// - because it is defined for every scheme: pure-window schemes like
// cubic report no pacing rate, but every scheme delivers bytes.

// windowSec is obs.SeriesWindow in seconds, the grid step of every
// trajectory.
const windowSec = float64(obs.SeriesWindow) / 1e9

const (
	// convFrac defines "converged": the first window that delivers at
	// least this fraction of that window's measured capacity. The test is
	// against the moving truth, not a flat plateau - a capacity-tracking
	// scheme's delivery fluctuates exactly as much as the channel does,
	// and a flat band would reward the low-pass filtering of a standing
	// queue (bufferbloat) over genuine tracking. 0.7 sits safely under
	// the ~0.85 per-window utilization the well-behaved schemes sustain,
	// so per-window variance does not un-converge them, while slow-start
	// and AIMD ramps sit well below it for their whole climb.
	convFrac = 0.7

	// stepRefWin/stepJumpFrac define a detectable capacity step: the mean
	// truth over 8 windows (320 ms) moves by at least 60%. The thresholds
	// are deliberately coarse - fading on a nominally steady channel
	// produces 40% multi-window swings, while the steps worth measuring
	// from (blockage, handover, a synthetic test step) at least halve or
	// double the capacity.
	stepRefWin   = 8
	stepJumpFrac = 0.6

	// maxLagWin bounds the tracking-lag search to 32 windows (1.28 s):
	// beyond that, "lag" is indistinguishable from not tracking at all.
	maxLagWin = 32

	// recoverRefWin/recoverFrac/recoverHold define fault recovery: back to
	// recoverFrac of the mean rate over the recoverRefWin windows before
	// the injection, held for recoverHold consecutive windows.
	recoverRefWin = 5
	recoverFrac   = 0.9
	recoverHold   = 2
)

// Trajectory is one job's measured-flow trajectories on the 40 ms window
// grid: index w covers virtual time [w*40ms, (w+1)*40ms). Zero means "no
// data in that window" (e.g. truth before the first scheduling slot).
// Fields are exported so the synthetic-input tests can construct known
// shapes directly.
type Trajectory struct {
	Rate  []float64 // achieved delivery rate, Mbit/s (acked bits / window)
	Truth []float64 // oracle capacity, Mbit/s (window mean)
	Est   []float64 // transport's capacity estimate, Mbit/s (monitor schemes)

	// FaultWins lists the window indices containing at least one injected
	// fault, sorted and deduplicated.
	FaultWins []int
}

// BuildTrajectory reduces a run's recorded series to the measured flow's
// trajectory: flowID keys the cc sender's tracks, ueID the capacity
// tracks (the probe and truth oracle sample per UE).
func BuildTrajectory(rec *obs.SeriesRecorder, flowID, ueID int) *Trajectory {
	if rec == nil {
		return &Trajectory{}
	}
	rate := rec.TrackPoints("cc.ack_bits", flowID)
	truth := rec.TrackPoints("monitor.truth", ueID)
	est := rec.TrackPoints("monitor.est", ueID)
	var n int64
	for _, pts := range [][]obs.SeriesPoint{rate, truth, est} {
		for _, p := range pts {
			if p.Win+1 > n {
				n = p.Win + 1
			}
		}
	}
	t := &Trajectory{
		Rate:  make([]float64, n),
		Truth: make([]float64, n),
		Est:   make([]float64, n),
	}
	for _, p := range rate {
		t.Rate[p.Win] = p.Sum() / windowSec / 1e6
	}
	for _, p := range truth {
		t.Truth[p.Win] = p.Mean
	}
	for _, p := range est {
		t.Est[p.Win] = p.Mean
	}
	last := -1
	for _, p := range rec.TrackPoints("fault.inject", 0) {
		if w := int(p.Win); w < int(n) && w != last {
			t.FaultWins = append(t.FaultWins, w)
			last = w
		}
	}
	return t
}

// StepWin locates the capacity step the convergence metric measures from:
// the window where the mean truth over the stepRefWin windows after it
// differs most from the mean over the stepRefWin windows before it, if
// that sustained jump is at least stepJumpFrac; otherwise window 0 - on a
// steady channel the flow's start is the step, and convergence time is
// the ramp to capacity. The windowed means matter: per-window capacity
// fluctuates up to ±30% on a steady channel, so an adjacent-window jump
// test fires on noise and "detects" a step mid-run where the flow is
// already converged.
func (t *Trajectory) StepWin() int {
	best, bestJump := 0, 0.0
	for w := stepRefWin; w+stepRefWin <= len(t.Truth); w++ {
		var pre, post float64
		ok := true
		for i := w - stepRefWin; i < w; i++ {
			if t.Truth[i] <= 0 {
				ok = false
				break
			}
			pre += t.Truth[i]
		}
		for i := w; ok && i < w+stepRefWin; i++ {
			if t.Truth[i] <= 0 {
				ok = false
				break
			}
			post += t.Truth[i]
		}
		if !ok || pre <= 0 {
			continue
		}
		if jump := math.Abs(post-pre) / pre; jump > bestJump {
			best, bestJump = w, jump
		}
	}
	if bestJump < stepJumpFrac {
		return 0
	}
	return best
}

// ConvergenceMs returns the time from the capacity step until the flow
// first delivers convFrac of that window's measured capacity, in
// milliseconds - exact to one window on synthetic steps, and the direct
// analogue of the paper's Fig. 6 ramp measurements (time from a capacity
// change until the flow is operating at the new capacity). Windows with
// no truth sample are skipped (capacity is only defined once the cell has
// scheduled). A flow that never gets there scores the run's remaining
// span (the natural worst case, so the baseline diff stays monotone); -1
// means the metric is undefined (no rate trajectory, e.g. a media
// measured flow, or no truth trajectory to converge to).
func (t *Trajectory) ConvergenceMs() float64 {
	n := len(t.Rate)
	if len(t.Truth) < n {
		n = len(t.Truth)
	}
	s := t.StepWin()
	if !t.hasRate() {
		return -1
	}
	anyTruth := false
	for w := s; w < n; w++ {
		if t.Truth[w] <= 0 {
			continue
		}
		anyTruth = true
		if t.Rate[w] >= convFrac*t.Truth[w] {
			return float64(w-s) * windowSec * 1000
		}
	}
	if !anyTruth {
		return -1
	}
	return float64(n-s) * windowSec * 1000
}

// TrackingLagMs returns the lag (ms) at which the rate trajectory best
// correlates with the truth trajectory: the argmax over lags 0..32
// windows of the Pearson correlation between truth[w] and rate[w+k],
// smallest lag on ties. -1 when undefined (fewer than 4 common windows,
// or either trajectory constant at every candidate lag).
func (t *Trajectory) TrackingLagMs() float64 {
	n := len(t.Rate)
	if len(t.Truth) < n {
		n = len(t.Truth)
	}
	if n < 4 || !t.hasRate() {
		return -1
	}
	maxLag := maxLagWin
	if maxLag > n/2 {
		maxLag = n / 2
	}
	bestLag, bestCorr := -1, math.Inf(-1)
	for k := 0; k <= maxLag; k++ {
		m := n - k
		var mx, my float64
		for w := 0; w < m; w++ {
			mx += t.Truth[w]
			my += t.Rate[w+k]
		}
		mx /= float64(m)
		my /= float64(m)
		var sxy, sxx, syy float64
		for w := 0; w < m; w++ {
			dx, dy := t.Truth[w]-mx, t.Rate[w+k]-my
			sxy += dx * dy
			sxx += dx * dx
			syy += dy * dy
		}
		if sxx == 0 || syy == 0 {
			continue
		}
		if corr := sxy / math.Sqrt(sxx*syy); corr > bestCorr {
			bestCorr, bestLag = corr, k
		}
	}
	if bestLag < 0 {
		return -1
	}
	return float64(bestLag) * windowSec * 1000
}

// EstErrAUC integrates the relative estimation error over the run: the
// sum over windows (where both estimate and truth exist) of
// |est-truth|/truth × 100 × 40 ms, in percent-seconds. Unlike the probe's
// mean error it weights sustained error by its duration - a 10-second
// 10%-off stretch scores ten times a 1-second one. -1 when the estimate
// trajectory is empty (non-monitor schemes).
func (t *Trajectory) EstErrAUC() float64 {
	n := len(t.Est)
	if len(t.Truth) < n {
		n = len(t.Truth)
	}
	auc, any := 0.0, false
	for w := 0; w < n; w++ {
		if t.Est[w] > 0 && t.Truth[w] > 0 {
			any = true
			auc += math.Abs(t.Est[w]-t.Truth[w]) / t.Truth[w] * 100 * windowSec
		}
	}
	if !any {
		return -1
	}
	return auc
}

// RecoverMs returns the mean time to recover across fault episodes: for
// each run of consecutive fault windows, the time from its first window
// until the rate is back to 90% of its pre-fault reference (the mean over
// up to 5 windows before the injection) for two consecutive windows. An
// episode that never recovers scores the run's remaining span. -1 when no
// episode is measurable (no faults recorded, or no pre-fault baseline).
func (t *Trajectory) RecoverMs() float64 {
	n := len(t.Rate)
	sum, cnt := 0.0, 0
	prev := -10
	for _, f := range t.FaultWins {
		episodeStart := f != prev+1
		prev = f
		if !episodeStart || f >= n {
			continue
		}
		ref, refN := 0.0, 0
		for w := f - recoverRefWin; w < f; w++ {
			if w >= 0 {
				ref += t.Rate[w]
				refN++
			}
		}
		if refN == 0 || ref <= 0 {
			continue
		}
		ref /= float64(refN)
		rec := float64(n-f) * windowSec * 1000
		for w := f; w+recoverHold <= n; w++ {
			held := true
			for i := w; i < w+recoverHold; i++ {
				if t.Rate[i] < recoverFrac*ref {
					held = false
					break
				}
			}
			if held {
				rec = float64(w-f) * windowSec * 1000
				break
			}
		}
		sum += rec
		cnt++
	}
	if cnt == 0 {
		return -1
	}
	return sum / float64(cnt)
}

// hasRate reports whether any window delivered bytes - the guard that
// distinguishes "no trajectory recorded" (media measured flows, which do
// not run the cc sender pump) from a genuinely idle flow.
func (t *Trajectory) hasRate() bool {
	for _, v := range t.Rate {
		if v > 0 {
			return true
		}
	}
	return false
}
