package sweep

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"pbecc/internal/stats"
)

// Delta is one tracked metric compared between a baseline and a current
// result. RegressPct is signed so that positive means worse: for
// higher-is-better metrics it is the percentage lost versus the baseline,
// for lower-is-better metrics the percentage gained.
type Delta struct {
	Group      string  `json:"group"` // summary key: experiment/rat/scheme
	Metric     string  `json:"metric"`
	Base       float64 `json:"base"`
	Cur        float64 `json:"cur"`
	RegressPct float64 `json:"regress_pct"`
}

// trackedMetric is one gate-relevant scalar per summary group.
type trackedMetric struct {
	name         string
	get          func(*Summary) float64
	higherBetter bool
}

func trackedMetrics() []trackedMetric {
	return []trackedMetric{
		{"tput_mbps.mean", func(s *Summary) float64 { return s.Tput.Mean }, true},
		{"delay_p95_ms.p50", func(s *Summary) float64 { return s.DelayP95.P50 }, false},
		{"utilization.mean", func(s *Summary) float64 { return s.Utilization.Mean }, true},
	}
}

// Diff compares the summary groups present in both results and returns one
// delta per tracked metric, in group order. Groups present on only one
// side are reported as errors: a silently shrinking baseline would let
// regressions hide. The two results must come from the same spec (name
// aside) — identical group keys can hide different seeds, durations or
// noise levels, which shift every distribution.
func Diff(base, cur *Result) ([]Delta, error) {
	if err := checkSameSpec(base.Spec, cur.Spec); err != nil {
		return nil, err
	}
	bi := map[string]*Summary{}
	for i := range base.Summaries {
		bi[base.Summaries[i].Key()] = &base.Summaries[i]
	}
	var deltas []Delta
	seen := map[string]bool{}
	for i := range cur.Summaries {
		cs := &cur.Summaries[i]
		k := cs.Key()
		seen[k] = true
		bs, ok := bi[k]
		if !ok {
			return nil, fmt.Errorf("group %s missing from baseline (regenerate it)", k)
		}
		for _, m := range trackedMetrics() {
			d := Delta{Group: k, Metric: m.name, Base: m.get(bs), Cur: m.get(cs)}
			d.RegressPct = stats.Round2(regressPct(d.Base, d.Cur, m.higherBetter))
			deltas = append(deltas, d)
		}
		// Frame-level QoE is tracked for media groups; a group changing
		// sides (media <-> bulk) means the baseline is stale.
		if (bs.Frame == nil) != (cs.Frame == nil) {
			return nil, fmt.Errorf("group %s has frame metrics on only one side (regenerate the baseline)", k)
		}
		if bs.Frame != nil {
			d := Delta{Group: k, Metric: "frame_p95_ms.p50",
				Base: bs.Frame.P95Ms.P50, Cur: cs.Frame.P95Ms.P50}
			d.RegressPct = stats.Round2(regressPct(d.Base, d.Cur, false))
			deltas = append(deltas, d)
		}
		// Measurement accuracy is tracked for PBE groups: a growing mean
		// estimation error regresses the scheme's core premise even when
		// throughput holds.
		if (bs.PBEErr == nil) != (cs.PBEErr == nil) {
			return nil, fmt.Errorf("group %s has pbe_err_pct on only one side (regenerate the baseline)", k)
		}
		if bs.PBEErr != nil {
			d := Delta{Group: k, Metric: "pbe_err_pct.mean",
				Base: bs.PBEErr.Mean, Cur: cs.PBEErr.Mean}
			d.RegressPct = stats.Round2(regressPct(d.Base, d.Cur, false))
			deltas = append(deltas, d)
		}
		// Trajectory analytics regress like throughput: a scheme that
		// converges or recovers slower, or lags the capacity signal
		// further, fails the gate even when its mean throughput holds.
		trajPairs := []struct {
			name      string
			base, cur *Metric
		}{
			{"conv_ms.mean", bs.Conv, cs.Conv},
			{"track_lag_ms.mean", bs.TrackLag, cs.TrackLag},
			{"recover_ms.mean", bs.Recover, cs.Recover},
		}
		for _, p := range trajPairs {
			if (p.base == nil) != (p.cur == nil) {
				return nil, fmt.Errorf("group %s has %s on only one side (regenerate the baseline)", k, p.name)
			}
			if p.base == nil {
				continue
			}
			d := Delta{Group: k, Metric: p.name, Base: p.base.Mean, Cur: p.cur.Mean}
			d.RegressPct = stats.Round2(regressPct(d.Base, d.Cur, false))
			deltas = append(deltas, d)
		}
	}
	for k := range bi {
		if !seen[k] {
			return nil, fmt.Errorf("group %s missing from current result", k)
		}
	}
	return deltas, nil
}

// SpecHash returns the sha256 of the spec's canonical JSON encoding with
// the cosmetic Name field excluded - the same identity checkSameSpec
// compares structurally. pbesweep stamps it into the -obs snapshot
// header so a stale .obs.json cannot be diffed against a snapshot from a
// different matrix.
func SpecHash(s Spec) string {
	s.Name = ""
	j, _ := json.Marshal(s)
	return fmt.Sprintf("%x", sha256.Sum256(j))
}

// checkSameSpec errors unless the two specs describe the same matrix. The
// cosmetic Name field is excluded so a renamed baseline stays comparable.
func checkSameSpec(base, cur Spec) error {
	base.Name, cur.Name = "", ""
	bj, _ := json.Marshal(base)
	cj, _ := json.Marshal(cur)
	if string(bj) != string(cj) {
		return fmt.Errorf("results come from different sweep specs (regenerate the baseline):\n  baseline: %s\n  current:  %s", bj, cj)
	}
	return nil
}

// regressPct returns how much worse cur is than base, in percent of base.
// A zero or vanishing baseline cannot be expressed as a percentage: the
// metric counts as regressed only if the current value is also worse in
// absolute terms by any amount (reported as 100%).
func regressPct(base, cur float64, higherBetter bool) float64 {
	const eps = 1e-9
	if base < eps {
		if !higherBetter && cur > eps {
			return 100
		}
		return 0
	}
	if higherBetter {
		return (base - cur) / base * 100
	}
	return (cur - base) / base * 100
}

// WorstRegression returns the largest RegressPct across deltas (0 for an
// empty slice).
func WorstRegression(deltas []Delta) float64 {
	worst := 0.0
	for _, d := range deltas {
		if d.RegressPct > worst {
			worst = d.RegressPct
		}
	}
	return worst
}

// ReadResult loads a sweep result file written by WriteResult.
func ReadResult(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// WriteResult writes the result as indented JSON. The encoding is
// deterministic (fixed field order, two-decimal rounding), so files from
// identical code and spec are byte-identical.
func WriteResult(w io.Writer, r *Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// FprintDeltas renders deltas as an aligned table with the worst line
// last, for the CI log.
func FprintDeltas(w io.Writer, deltas []Delta) {
	for _, d := range deltas {
		mark := ""
		if d.RegressPct > 0 {
			mark = " worse"
		} else if d.RegressPct < 0 {
			mark = " better"
		}
		fmt.Fprintf(w, "%-40s %-20s base=%10.2f cur=%10.2f %+7.2f%%%s\n",
			d.Group, d.Metric, d.Base, d.Cur, d.RegressPct, mark)
	}
	fmt.Fprintf(w, "worst regression: %.2f%%\n", WorstRegression(deltas))
}
