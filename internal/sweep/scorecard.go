// Scorecard: the robustness ranking built on top of a fault-axis sweep.
// For every scheme it measures a clean-channel QoE baseline, then the
// normalized degradation under each structured measurement-fault axis
// (internal/faults) at each intensity, and ranks the schemes by mean
// degradation. The question it answers is the one Zhu et al.
// (arXiv:2308.03350) raise about measurement-based congestion control:
// how much of the physical-layer schemes' clean-channel advantage
// survives when the measurements themselves are systematically wrong?
//
// Every number is derived from rounded Row values through fixed-order
// arithmetic, so a scorecard is byte-identical for any worker or shard
// count and can be committed as a CI baseline (BENCH_scorecard_baseline
// .json) and diffed with DiffScorecard.

package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"pbecc/internal/faults"
	"pbecc/internal/harness"
	"pbecc/internal/stats"
)

// ScorecardSpec is the built-in robustness matrix: the frame-level rtc
// family (the paper's latency-sensitive workload, where degradation is
// visible as freezes and late frames, not just lost throughput) crossed
// with the physical-layer schemes, their end-to-end baselines, every
// fault axis at two intensities, and two seeds.
func ScorecardSpec() *Spec {
	return &Spec{
		Name:        "scorecard",
		Experiments: []string{"rtc"},
		Schemes:     []string{"pbertc", "gcc", "pbe", "cubic", "bbr"},
		Seeds:       []int64{1, 2},
		FaultAxes:   faults.Axes(),
		FaultLevels: []float64{0.5, 1},
		DurationMs:  2000,
	}
}

// AxisScore is one scheme's degradation under one (axis, level) point,
// versus its own clean-channel baseline. Drop/inflation values are
// signed percentages (negative = the fault accidentally helped);
// FreezeGrowthPct is added freeze time as a percentage of the run
// duration. Degradation folds the three into [0, 100] (see degradation).
type AxisScore struct {
	Axis  string  `json:"axis"`
	Level float64 `json:"level"`

	TputDropPct     float64 `json:"tput_drop_pct"`
	FrameP95InflPct float64 `json:"frame_p95_infl_pct"`
	FreezeGrowthPct float64 `json:"freeze_growth_pct"`
	DegradationPct  float64 `json:"degradation_pct"`

	// Unaffected marks a point the sweep never ran because the fault
	// cannot reach the scheme (monitor faults against a scheme that
	// never reads the monitor): the clean baseline is reused and the
	// degradation is zero by construction.
	Unaffected bool `json:"unaffected,omitempty"`
}

// SchemeScore is one scheme's full scorecard line: the clean-channel
// baseline, the per-axis degradations, and the robustness rank metric.
type SchemeScore struct {
	Scheme string `json:"scheme"`

	CleanTputMbps   float64 `json:"clean_tput_mbps"`
	CleanFrameP95Ms float64 `json:"clean_frame_p95_ms"`
	CleanFreezeMs   float64 `json:"clean_freeze_ms"`
	CleanLatePct    float64 `json:"clean_late_pct"`

	// PBEErrPct is the mean capacity-estimation error across the faulted
	// jobs, for monitor-consuming schemes (omitted otherwise): the
	// mechanism column - how wrong the estimate was - next to the
	// outcome columns.
	PBEErrPct float64 `json:"pbe_err_pct,omitempty"`

	Axes []AxisScore `json:"axes"`

	// RobustnessPct is the mean DegradationPct across every fault point
	// (lower = more robust); the ranking key.
	RobustnessPct float64 `json:"robustness_pct"`
}

// Scorecard is the ranked result: Schemes sorted most robust first.
type Scorecard struct {
	Spec    Spec          `json:"spec"`
	Schemes []SchemeScore `json:"schemes"`
}

// RunScorecard expands and executes the spec, then folds the rows into
// the ranked scorecard.
func RunScorecard(spec *Spec, workers int, progress func(done, total int)) (*Scorecard, error) {
	res, err := RunProgress(spec, workers, progress)
	if err != nil {
		return nil, err
	}
	return BuildScorecard(res)
}

// pointAcc accumulates the rows of one (scheme, axis, level) cell across
// experiments, RATs, cells, noise levels and seeds.
type pointAcc struct {
	tput, frameP95, freeze, late, pbeErr stats.Series
}

func (a *pointAcc) add(r Row) {
	a.tput.Add(r.TputMbps)
	a.frameP95.Add(r.FrameP95Ms)
	a.freeze.Add(r.FreezeMs)
	a.late.Add(r.LateFramePct)
	a.pbeErr.Add(r.PBEErrPct)
}

// BuildScorecard folds a completed fault-axis sweep into the ranked
// scorecard. The result must come from a spec with FaultAxes set (the
// clean points alone rank nothing).
func BuildScorecard(res *Result) (*Scorecard, error) {
	spec := res.Spec
	if len(spec.FaultAxes) == 0 {
		return nil, fmt.Errorf("result %q has no fault axes; a scorecard needs a spec with fault_axes", spec.Name)
	}
	levels := spec.FaultLevels
	if len(levels) == 0 {
		levels = []float64{1}
	}
	durMs := float64(spec.DurationMs)
	if durMs <= 0 {
		durMs = 4000 // the media families' default duration
	}
	accs := map[faultPoint]map[string]*pointAcc{} // point -> scheme -> acc
	for _, r := range res.Rows {
		fp := faultPoint{r.FaultAxis, r.FaultLevel}
		if accs[fp] == nil {
			accs[fp] = map[string]*pointAcc{}
		}
		a := accs[fp][r.Scheme]
		if a == nil {
			a = &pointAcc{}
			accs[fp][r.Scheme] = a
		}
		a.add(r)
	}
	var scores []SchemeScore
	for _, scheme := range spec.Schemes {
		clean := accs[faultPoint{}][scheme]
		if clean == nil {
			return nil, fmt.Errorf("scheme %q has no clean rows in result %q", scheme, spec.Name)
		}
		sc := SchemeScore{
			Scheme:          scheme,
			CleanTputMbps:   stats.Round2(clean.tput.Mean()),
			CleanFrameP95Ms: stats.Round2(clean.frameP95.Mean()),
			CleanFreezeMs:   stats.Round2(clean.freeze.Mean()),
			CleanLatePct:    stats.Round2(clean.late.Mean()),
		}
		var faultedErr stats.Series
		var degSum float64
		for _, ax := range spec.FaultAxes {
			for _, lv := range levels {
				point := AxisScore{Axis: ax, Level: lv}
				if a := accs[faultPoint{ax, lv}][scheme]; a != nil {
					point.TputDropPct = stats.Round2(regressPct(clean.tput.Mean(), a.tput.Mean(), true))
					point.FrameP95InflPct = stats.Round2(regressPct(clean.frameP95.Mean(), a.frameP95.Mean(), false))
					point.FreezeGrowthPct = stats.Round2(100 * (a.freeze.Mean() - clean.freeze.Mean()) / durMs)
					point.DegradationPct = degradation(point)
					if harness.SchemeUsesMonitor(scheme) {
						faultedErr.Add(a.pbeErr.Mean())
					}
				} else {
					point.Unaffected = true
				}
				degSum += point.DegradationPct
				sc.Axes = append(sc.Axes, point)
			}
		}
		sc.RobustnessPct = stats.Round2(degSum / float64(len(sc.Axes)))
		if harness.SchemeUsesMonitor(scheme) {
			sc.PBEErrPct = stats.Round2(faultedErr.Mean())
		}
		scores = append(scores, sc)
	}
	sort.SliceStable(scores, func(i, j int) bool {
		if scores[i].RobustnessPct != scores[j].RobustnessPct {
			return scores[i].RobustnessPct < scores[j].RobustnessPct
		}
		return scores[i].Scheme < scores[j].Scheme
	})
	return &Scorecard{Spec: spec, Schemes: scores}, nil
}

// degradation folds one fault point's signed deltas into a [0, 100]
// composite: 40% weight on lost throughput, 30% on frame-delay
// inflation (capped at a doubling), 30% on added freeze share.
// Improvements clamp to zero - a fault that happens to help on one axis
// must not buy back degradation on another.
func degradation(p AxisScore) float64 {
	clamp01 := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	return stats.Round2(100 * (0.4*clamp01(p.TputDropPct/100) +
		0.3*clamp01(p.FrameP95InflPct/100) +
		0.3*clamp01(p.FreezeGrowthPct/100)))
}

// WriteScorecard writes the scorecard as indented JSON; like sweep
// results the encoding is deterministic, so identical code and spec give
// byte-identical files.
func WriteScorecard(w io.Writer, sc *Scorecard) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sc)
}

// ReadScorecard loads a scorecard file written by WriteScorecard.
func ReadScorecard(path string) (*Scorecard, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc := &Scorecard{}
	if err := json.Unmarshal(data, sc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// FprintScorecard renders the ranked table for humans: one line per
// scheme, most robust first, then the per-axis breakdown.
func FprintScorecard(w io.Writer, sc *Scorecard) {
	fmt.Fprintf(w, "robustness scorecard %q: mean QoE degradation under measurement faults (lower = more robust)\n", sc.Spec.Name)
	fmt.Fprintf(w, "%-4s %-8s %12s %14s %14s %12s %10s\n",
		"rank", "scheme", "degrade%", "clean_tput", "clean_p95ms", "freeze_ms", "est_err%")
	for i, s := range sc.Schemes {
		errCol := "-"
		if harness.SchemeUsesMonitor(s.Scheme) {
			errCol = fmt.Sprintf("%.2f", s.PBEErrPct)
		}
		fmt.Fprintf(w, "%-4d %-8s %12.2f %14.2f %14.2f %12.2f %10s\n",
			i+1, s.Scheme, s.RobustnessPct, s.CleanTputMbps, s.CleanFrameP95Ms, s.CleanFreezeMs, errCol)
	}
	fmt.Fprintln(w, "per-axis degradation ('-' = fault cannot reach the scheme; clean baseline reused):")
	for _, s := range sc.Schemes {
		fmt.Fprintf(w, "  %-8s", s.Scheme)
		for _, p := range s.Axes {
			if p.Unaffected {
				fmt.Fprintf(w, " %s@%v=-", p.Axis, p.Level)
				continue
			}
			fmt.Fprintf(w, " %s@%v=%.2f", p.Axis, p.Level, p.DegradationPct)
		}
		fmt.Fprintln(w)
	}
}

// DiffScorecard compares a committed baseline scorecard against a fresh
// run from the same spec: one delta per scheme for the robustness rank
// metric (RegressPct = percentage-point increase in mean degradation)
// and one for the clean-channel throughput it is normalized against.
func DiffScorecard(base, cur *Scorecard) ([]Delta, error) {
	if err := checkSameSpec(base.Spec, cur.Spec); err != nil {
		return nil, err
	}
	bi := map[string]*SchemeScore{}
	for i := range base.Schemes {
		bi[base.Schemes[i].Scheme] = &base.Schemes[i]
	}
	var deltas []Delta
	for i := range cur.Schemes {
		cs := &cur.Schemes[i]
		bs, ok := bi[cs.Scheme]
		if !ok {
			return nil, fmt.Errorf("scheme %s missing from baseline scorecard (regenerate it)", cs.Scheme)
		}
		deltas = append(deltas,
			Delta{Group: "scorecard/" + cs.Scheme, Metric: "robustness_pct",
				Base: bs.RobustnessPct, Cur: cs.RobustnessPct,
				RegressPct: stats.Round2(cs.RobustnessPct - bs.RobustnessPct)},
			Delta{Group: "scorecard/" + cs.Scheme, Metric: "clean_tput_mbps",
				Base: bs.CleanTputMbps, Cur: cs.CleanTputMbps,
				RegressPct: stats.Round2(regressPct(bs.CleanTputMbps, cs.CleanTputMbps, true))})
	}
	if len(cur.Schemes) != len(base.Schemes) {
		return nil, fmt.Errorf("baseline has %d schemes, current %d (regenerate the baseline)",
			len(base.Schemes), len(cur.Schemes))
	}
	return deltas, nil
}
