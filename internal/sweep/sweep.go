// Package sweep expands a declarative scenario matrix - algorithms ×
// scenario families × seeds × cell counts/RATs × measurement-noise levels,
// the evaluation surface of the paper's Figs. 8-13 - into independent
// jobs, executes them across a bounded worker pool, and aggregates the
// per-job rows into machine-readable summaries.
//
// Every job runs on its own seeded sim.Engine, so each row is a pure
// function of its job key: the aggregated output is bit-identical
// regardless of worker count or completion order. That property is what
// lets CI diff a sweep against a committed baseline (see Diff) and treat
// any byte difference as a real behaviour change.
package sweep

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"pbecc/internal/faults"
	"pbecc/internal/harness"
	"pbecc/internal/stats"
)

// Spec is the declarative sweep matrix. Every combination of the axes is
// one job; omitted axes collapse to a single default value.
type Spec struct {
	Name        string    `json:"name"`
	Experiments []string  `json:"experiments"`            // scenario family IDs (harness.Families)
	Schemes     []string  `json:"schemes"`                // congestion-control algorithms
	Seeds       []int64   `json:"seeds"`                  // engine seeds
	RATs        []string  `json:"rats,omitempty"`         // "lte"/"nr"; default ["lte"]
	CellCounts  []int     `json:"cell_counts,omitempty"`  // 0 = family default
	NoiseLevels []float64 `json:"noise_levels,omitempty"` // capacity-noise std fractions; default [0]
	Busy        bool      `json:"busy,omitempty"`         // busy-cell variant of every scenario
	DurationMs  int       `json:"duration_ms,omitempty"`  // 0 = family default

	// FaultAxes selects structured measurement-fault axes (faults.Axes
	// vocabulary). Each listed axis expands into one job per fault level
	// alongside the always-present clean point, one axis at a time - the
	// scorecard attributes degradation per axis, so axes are never
	// combined within a job. Monitor-only axes (stale/miss/handover)
	// collapse away for schemes that never read the monitor; the onoff
	// competitor applies to every scheme.
	FaultAxes   []string  `json:"fault_axes,omitempty"`
	FaultLevels []float64 `json:"fault_levels,omitempty"` // intensities in (0, 1]; default [1]

	// Fluid converts each family's churning background population to the
	// fluid tier (harness.Params.FluidBackground). It is part of the
	// serialized spec - a fluid row measures a materially different
	// workload than a packet row - but is not a matrix axis: a spec is
	// either fluid or not. The nation family is always fluid regardless.
	Fluid bool `json:"fluid,omitempty"`

	// Shards bounds how many shards of a sharded scenario (the metro
	// family) advance concurrently inside each job. It is deliberately
	// neither a matrix axis nor part of the serialized spec: results are
	// byte-identical for every value (so sweeping it would only run
	// duplicate jobs, and keeping it out of the result file is what lets
	// CI byte-compare a -shards 1 run against a -shards 4 run). Set it
	// with pbesweep's -shards flag.
	Shards int `json:"-"`
}

// Job is one expanded cell of the matrix.
type Job struct {
	Index      int     `json:"-"`
	Experiment string  `json:"experiment"`
	RAT        string  `json:"rat"`
	Scheme     string  `json:"scheme"`
	Cells      int     `json:"cells,omitempty"`
	Noise      float64 `json:"noise,omitempty"`
	FaultAxis  string  `json:"fault_axis,omitempty"` // "" = clean channel
	FaultLevel float64 `json:"fault_level,omitempty"`
	Seed       int64   `json:"seed"`
}

func (j Job) params(spec *Spec) harness.Params {
	p := harness.Params{
		Seed:          j.Seed,
		Duration:      time.Duration(spec.DurationMs) * time.Millisecond,
		Cells:         j.Cells,
		RAT:           j.RAT,
		Busy:          spec.Busy,
		CapacityNoise: j.Noise,
		Shards:        spec.Shards,

		FluidBackground: spec.Fluid,
	}
	if j.FaultAxis != "" {
		if err := p.SetFaultAxis(j.FaultAxis, j.FaultLevel); err != nil {
			// Jobs() validated every axis name before expanding.
			panic(fmt.Sprintf("sweep: job %d carries invalid fault axis: %v", j.Index, err))
		}
	}
	return p
}

// faultPoint is one cell of a scheme's fault axis: the zero value is the
// clean channel.
type faultPoint struct {
	axis  string
	level float64
}

// faultPoints expands the spec's fault axes for one scheme: always the
// clean point first, then one point per (applicable axis, level). Monitor
// faults cannot reach a scheme that never reads the monitor, so those
// axes collapse away instead of running duplicate clean jobs (the
// scorecard reuses the clean point for them).
func (s *Spec) faultPoints(scheme string) []faultPoint {
	points := []faultPoint{{}}
	levels := s.FaultLevels
	if len(levels) == 0 {
		levels = []float64{1}
	}
	for _, ax := range s.FaultAxes {
		if faults.MonitorAxis(ax) && !harness.SchemeUsesMonitor(scheme) {
			continue
		}
		for _, lv := range levels {
			points = append(points, faultPoint{ax, lv})
		}
	}
	return points
}

// Jobs expands the matrix in a fixed documented order (experiment, RAT,
// scheme, cells, noise, fault point, seed - outermost to innermost) and
// validates every distinct combination against the harness registry
// before any job runs. Schemes that do not consume the monitor's capacity
// feed ignore measurement noise and monitor-fault axes, so for them those
// axes collapse to their clean points instead of running duplicate jobs.
func (s *Spec) Jobs() ([]Job, error) {
	if len(s.Experiments) == 0 || len(s.Schemes) == 0 || len(s.Seeds) == 0 {
		return nil, fmt.Errorf("sweep spec needs experiments, schemes and seeds (got %d/%d/%d)",
			len(s.Experiments), len(s.Schemes), len(s.Seeds))
	}
	for _, seed := range s.Seeds {
		if seed == 0 {
			return nil, fmt.Errorf("seed 0 is reserved for family defaults; use any non-zero seed")
		}
	}
	for _, ax := range s.FaultAxes {
		if err := new(faults.Spec).Set(ax, 0); err != nil {
			return nil, err
		}
	}
	for _, lv := range s.FaultLevels {
		if lv <= 0 || lv > 1 {
			return nil, fmt.Errorf("fault level %v outside (0, 1] (zero is the implicit clean point)", lv)
		}
	}
	rats := s.RATs
	if len(rats) == 0 {
		rats = []string{harness.RATLTE}
	}
	cellCounts := s.CellCounts
	if len(cellCounts) == 0 {
		cellCounts = []int{0}
	}
	noises := s.NoiseLevels
	if len(noises) == 0 {
		noises = []float64{0}
	}
	// Validity depends only on (experiment, scheme, RAT, cells), not on
	// seed, noise or fault point: validate each distinct combination once.
	validated := map[string]bool{}
	var jobs []Job
	for _, exp := range s.Experiments {
		for _, rat := range rats {
			for _, scheme := range s.Schemes {
				noiseAxis := noises
				if !harness.SchemeUsesMonitor(scheme) {
					noiseAxis = []float64{0}
				}
				faultAxis := s.faultPoints(scheme)
				for _, cells := range cellCounts {
					for _, noise := range noiseAxis {
						for _, fp := range faultAxis {
							for _, seed := range s.Seeds {
								j := Job{Index: len(jobs), Experiment: exp, RAT: rat,
									Scheme: scheme, Cells: cells, Noise: noise,
									FaultAxis: fp.axis, FaultLevel: fp.level, Seed: seed}
								key := fmt.Sprintf("%s|%s|%s|%d", exp, rat, scheme, cells)
								if !validated[key] {
									if _, err := harness.BuildScenario(exp, scheme, j.params(s)); err != nil {
										return nil, fmt.Errorf("job %d: %w", j.Index, err)
									}
									validated[key] = true
								}
								jobs = append(jobs, j)
							}
						}
					}
				}
			}
		}
	}
	return jobs, nil
}

// Row is one job's measured result. Metrics are rounded to two decimals so
// result files stay stable and diffable.
type Row struct {
	Experiment string  `json:"experiment"`
	RAT        string  `json:"rat"`
	Scheme     string  `json:"scheme"`
	Cells      int     `json:"cells,omitempty"`
	Noise      float64 `json:"noise,omitempty"`
	FaultAxis  string  `json:"fault_axis,omitempty"`
	FaultLevel float64 `json:"fault_level,omitempty"`
	Seed       int64   `json:"seed"`

	TputMbps    float64 `json:"tput_mbps"`
	DelayP50Ms  float64 `json:"delay_p50_ms"`
	DelayP95Ms  float64 `json:"delay_p95_ms"`
	Utilization float64 `json:"utilization"` // achieved / nominal peak capacity
	LossPct     float64 `json:"loss_pct"`
	CATriggered bool    `json:"ca_triggered,omitempty"`

	// Frame-level QoE metrics, present for media jobs (the rtc and sfu
	// families): released-frame count, p50/p95 capture-to-play delay,
	// accumulated freeze time, and the share of frames that missed their
	// deadline or never played.
	Frames       int     `json:"frames,omitempty"`
	FrameP50Ms   float64 `json:"frame_p50_ms,omitempty"`
	FrameP95Ms   float64 `json:"frame_p95_ms,omitempty"`
	FreezeMs     float64 `json:"freeze_ms,omitempty"`
	LateFramePct float64 `json:"late_frame_pct,omitempty"`

	// PBEErrPct is the measured flow's mean absolute capacity-estimation
	// error versus the harness's fault- and noise-free oracle monitor, in
	// percent (monitor-consuming schemes only; see
	// harness.FlowResult.PBEErrPct).
	PBEErrPct float64 `json:"pbe_err_pct,omitempty"`

	// Trajectory analytics (see analytics.go), derived from the job's
	// recorded series. ConvMs, TrackLagMs and RecoverMs carry -1 when
	// undefined (media measured flows have no cc sender pump; RecoverMs
	// needs a fault axis and a measurable pre-fault baseline) - a zero
	// would be a real, excellent score, so absence must be explicit.
	// EstAUC appears for monitor-consuming schemes only.
	ConvMs     float64 `json:"conv_ms"`
	TrackLagMs float64 `json:"track_lag_ms"`
	RecoverMs  float64 `json:"recover_ms"`
	EstAUC     float64 `json:"est_err_auc,omitempty"`

	// Fluid-tier accounting, present when the job ran a fluid background
	// population: its size and mean offered load (Mbit/s).
	FluidSessions    int     `json:"fluid_sessions,omitempty"`
	FluidOfferedMbps float64 `json:"fluid_offered_mbps,omitempty"`
}

// Metric is the distribution of one metric across a summary group's jobs.
type Metric struct {
	Mean float64 `json:"mean"`
	P10  float64 `json:"p10"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
}

func metricOf(s *stats.Series) Metric {
	return Metric{
		Mean: stats.Round2(s.Mean()),
		P10:  stats.Round2(s.Percentile(10)),
		P50:  stats.Round2(s.Percentile(50)),
		P90:  stats.Round2(s.Percentile(90)),
	}
}

// Summary aggregates every row of one (experiment, RAT, scheme, fault
// point) group: the unit the CI regression gate tracks. Clean and faulted
// rows summarize separately - mixing them would let a fault-axis change
// masquerade as (or mask) a clean-path regression.
type Summary struct {
	Experiment  string  `json:"experiment"`
	RAT         string  `json:"rat"`
	Scheme      string  `json:"scheme"`
	FaultAxis   string  `json:"fault_axis,omitempty"`
	FaultLevel  float64 `json:"fault_level,omitempty"`
	Jobs        int     `json:"jobs"`
	Tput        Metric  `json:"tput_mbps"`
	DelayP95    Metric  `json:"delay_p95_ms"`
	Utilization Metric  `json:"utilization"`

	// Frame holds the frame-level distributions for media groups (nil
	// for bulk groups).
	Frame *FrameSummary `json:"frame,omitempty"`

	// PBEErr holds the capacity-estimation-error distribution for
	// monitor-consuming groups (nil for every other scheme). Presence is
	// keyed on the scheme, not on the data, so it is deterministic across
	// runs.
	PBEErr *Metric `json:"pbe_err_pct,omitempty"`

	// Conv/TrackLag hold the trajectory distributions for groups whose
	// measured flow has a rate trajectory (bulk flows; nil for media
	// groups, whose rows carry the -1 sentinel). Recover appears for
	// fault groups with measurable recovery episodes.
	Conv     *Metric `json:"conv_ms,omitempty"`
	TrackLag *Metric `json:"track_lag_ms,omitempty"`
	Recover  *Metric `json:"recover_ms,omitempty"`
}

// FrameSummary is the frame-level half of a media group's summary.
type FrameSummary struct {
	P95Ms    Metric `json:"p95_ms"`    // per-job p95 capture-to-play delay
	FreezeMs Metric `json:"freeze_ms"` // per-job accumulated freeze time
	LatePct  Metric `json:"late_pct"`  // per-job late/lost frame share
}

// Key identifies a summary group across result files.
func (s *Summary) Key() string {
	k := s.Experiment + "/" + s.RAT + "/" + s.Scheme
	if s.FaultAxis != "" {
		k += fmt.Sprintf("/%s@%v", s.FaultAxis, s.FaultLevel)
	}
	return k
}

// Result is a completed sweep: the spec it ran, one row per job in
// expansion order, and the per-group summaries.
type Result struct {
	Spec      Spec      `json:"spec"`
	Rows      []Row     `json:"rows"`
	Summaries []Summary `json:"summaries"`
}

// Run expands the spec and executes every job across at most workers
// goroutines (default GOMAXPROCS). Rows land at their job's index, so the
// result is identical for any worker count.
func Run(spec *Spec, workers int) (*Result, error) {
	return RunProgress(spec, workers, nil)
}

// RunProgress is Run with a completion callback: progress(done, total) is
// invoked once per finished job, from worker goroutines but never
// concurrently (an internal lock serializes calls), with done strictly
// increasing. Progress reporting observes the sweep and cannot affect
// it - rows still land at their job's index.
func RunProgress(spec *Spec, workers int, progress func(done, total int)) (*Result, error) {
	jobs, err := spec.Jobs()
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	rows := make([]Row, len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				rows[i] = runJob(spec, jobs[i])
				if progress != nil {
					mu.Lock()
					done++
					progress(done, len(jobs))
					mu.Unlock()
				}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return &Result{Spec: *spec, Rows: rows, Summaries: Summarize(rows)}, nil
}

// runJob executes one job on a private engine and measures the first flow,
// which every scenario family reserves for the scheme under test.
func runJob(spec *Spec, j Job) Row {
	sc, err := harness.BuildScenario(j.Experiment, j.Scheme, j.params(spec))
	if err != nil {
		// Jobs() validated this combination already.
		panic(fmt.Sprintf("sweep: job %d became unbuildable: %v", j.Index, err))
	}
	// Series recording is unconditional: rows are byte-identical with the
	// series layer on or off (the determinism tests pin this), so keeping
	// it on means the trajectory fields exist for every row and the -obs
	// determinism gate still holds.
	sc.Series = true
	res := harness.Run(sc)
	f := res.Flows[0]
	row := Row{
		Experiment: j.Experiment, RAT: j.RAT, Scheme: j.Scheme,
		Cells: j.Cells, Noise: j.Noise,
		FaultAxis: j.FaultAxis, FaultLevel: j.FaultLevel, Seed: j.Seed,
		TputMbps:    stats.Round2(f.AvgTputMbps),
		DelayP50Ms:  stats.Round2(f.Delay.Percentile(50)),
		DelayP95Ms:  stats.Round2(f.Delay.Percentile(95)),
		CATriggered: res.CATriggered,
	}
	if nominal := sc.NominalCapacityMbps(); nominal > 0 {
		row.Utilization = stats.Round2(f.AvgTputMbps / nominal)
	}
	if total := f.Received + f.Lost; total > 0 {
		row.LossPct = stats.Round2(100 * float64(f.Lost) / float64(total))
	}
	if fr := f.Frames; fr != nil {
		row.Frames = int(fr.Released)
		row.FrameP50Ms = stats.Round2(fr.Delay.Percentile(50))
		row.FrameP95Ms = stats.Round2(fr.Delay.Percentile(95))
		row.FreezeMs = stats.Round2(float64(fr.FreezeTime.Microseconds()) / 1000)
		row.LateFramePct = stats.Round2(fr.LatePct())
	}
	if harness.SchemeUsesMonitor(j.Scheme) {
		row.PBEErrPct = stats.Round2(f.PBEErrPct)
	}
	if res.Fluid != nil {
		row.FluidSessions = res.Fluid.Sessions
		row.FluidOfferedMbps = stats.Round2(res.Fluid.OfferedMbps(sc.Duration))
	}
	traj := BuildTrajectory(res.Series, sc.Flows[0].ID, sc.Flows[0].UE)
	row.ConvMs = stats.Round2(traj.ConvergenceMs())
	row.TrackLagMs = stats.Round2(traj.TrackingLagMs())
	row.RecoverMs = -1
	if j.FaultAxis != "" {
		if rec := traj.RecoverMs(); rec >= 0 {
			row.RecoverMs = stats.Round2(rec)
		}
	}
	if harness.SchemeUsesMonitor(j.Scheme) {
		if auc := traj.EstErrAUC(); auc >= 0 {
			row.EstAUC = stats.Round2(auc)
		}
	}
	return row
}

// Summarize groups rows by (experiment, RAT, scheme, fault point) and
// computes each group's metric distributions, sorted by group key.
func Summarize(rows []Row) []Summary {
	type acc struct {
		tput, p95, util        stats.Series
		frameP95, freeze, late stats.Series
		pbeErr                 stats.Series
		conv, lag, recover     stats.Series
		jobs                   int
		media                  bool
	}
	groups := map[string]*acc{}
	meta := map[string]Summary{}
	for _, r := range rows {
		s := Summary{Experiment: r.Experiment, RAT: r.RAT, Scheme: r.Scheme,
			FaultAxis: r.FaultAxis, FaultLevel: r.FaultLevel}
		k := s.Key()
		a := groups[k]
		if a == nil {
			a = &acc{}
			groups[k] = a
			meta[k] = s
		}
		a.jobs++
		a.tput.Add(r.TputMbps)
		a.p95.Add(r.DelayP95Ms)
		a.util.Add(r.Utilization)
		// A media row always has Frames > 0 or (having played nothing)
		// LateFramePct = 100; bulk rows have both at zero. Delay and
		// freeze distributions take only rows that released frames - a
		// collapsed job's zeros are not good scores and must not drag
		// the gate-tracked p95 down - while the late share counts every
		// media job, so the collapse itself registers as 100% late.
		if r.Frames > 0 || r.LateFramePct > 0 {
			a.media = true
			a.late.Add(r.LateFramePct)
		}
		if r.Frames > 0 {
			a.frameP95.Add(r.FrameP95Ms)
			a.freeze.Add(r.FreezeMs)
		}
		if harness.SchemeUsesMonitor(r.Scheme) {
			a.pbeErr.Add(r.PBEErrPct)
		}
		// Trajectory metrics aggregate only defined rows (-1 is the
		// "no rate trajectory" sentinel); which rows are defined is a
		// pure function of the spec, so presence stays deterministic.
		if r.ConvMs >= 0 {
			a.conv.Add(r.ConvMs)
		}
		if r.TrackLagMs >= 0 {
			a.lag.Add(r.TrackLagMs)
		}
		if r.RecoverMs >= 0 {
			a.recover.Add(r.RecoverMs)
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Summary, 0, len(keys))
	for _, k := range keys {
		a := groups[k]
		s := meta[k]
		s.Jobs = a.jobs
		s.Tput = metricOf(&a.tput)
		s.DelayP95 = metricOf(&a.p95)
		s.Utilization = metricOf(&a.util)
		if a.media {
			s.Frame = &FrameSummary{
				P95Ms:    metricOf(&a.frameP95),
				FreezeMs: metricOf(&a.freeze),
				LatePct:  metricOf(&a.late),
			}
		}
		if harness.SchemeUsesMonitor(s.Scheme) {
			m := metricOf(&a.pbeErr)
			s.PBEErr = &m
		}
		if a.conv.Len() > 0 {
			m := metricOf(&a.conv)
			s.Conv = &m
		}
		if a.lag.Len() > 0 {
			m := metricOf(&a.lag)
			s.TrackLag = &m
		}
		if a.recover.Len() > 0 {
			m := metricOf(&a.recover)
			s.Recover = &m
		}
		out = append(out, s)
	}
	return out
}

// Smoke returns the built-in CI smoke sweep: small enough for a PR gate,
// wide enough to cross every axis (three algorithms including the GCC
// real-time baseline, five families including the frame-level rtc call
// and the 32-subscriber SFU fan-out, four seeds, both RATs, one noisy
// level).
func Smoke() *Spec {
	return &Spec{
		Name:        "smoke",
		Experiments: []string{"steady", "competition", "multiflow", "rtc", "sfu"},
		Schemes:     []string{"pbe", "bbr", "gcc"},
		Seeds:       []int64{1, 2, 3, 4},
		RATs:        []string{harness.RATLTE, harness.RATNR},
		NoiseLevels: []float64{0, 0.1},
		DurationMs:  1000,
	}
}

// TrajSmoke returns the trajectory CI slice: every scheme, both RATs, on
// the steady step scenario (the flow start is the capacity step), two
// seconds per job - long enough that slow-start ramps and tracking lags
// land well inside the run. Its baseline commits the paper's qualitative
// convergence ranking: pbe and pbertc reach capacity faster than the
// end-to-end schemes, and the diff gate fails CI if that ordering decays
// into a regression.
func TrajSmoke() *Spec {
	return &Spec{
		Name:        "traj",
		Experiments: []string{"steady"},
		Schemes:     append([]string(nil), harness.Schemes...),
		Seeds:       []int64{1, 2},
		RATs:        []string{harness.RATLTE, harness.RATNR},
		DurationMs:  2000,
	}
}

// MetroSmoke returns the city-scale CI slice: a cut-down metro (8 cells,
// 128 UEs, half a second) small enough to run twice per PR, wide enough
// to cross both RATs and the sharded engine's cross-shard SFU path. CI
// runs it at -shards 1 and -shards 4 and byte-compares, then diffs the
// -shards 4 result against the committed BENCH_metro_baseline.json.
func MetroSmoke() *Spec {
	return &Spec{
		Name:        "metro-smoke",
		Experiments: []string{"metro"},
		Schemes:     []string{"pbe", "gcc"},
		Seeds:       []int64{1, 2},
		RATs:        []string{harness.RATLTE, harness.RATNR},
		CellCounts:  []int{8},
		DurationMs:  500,
	}
}

// NationSmoke returns the nation-scale CI slice: a 4-cell packet
// foreground over the full 65536-cell / 1M-user fluid-modeled tier, a
// quarter second per job. CI runs it at -shards 1 and -shards 8 and
// byte-compares (shard-width determinism over the fluid chunk
// partition), then diffs against the committed BENCH_nation_baseline.json.
func NationSmoke() *Spec {
	return &Spec{
		Name:        "nation-smoke",
		Experiments: []string{"nation"},
		Schemes:     []string{"pbe", "gcc"},
		Seeds:       []int64{1},
		RATs:        []string{harness.RATLTE, harness.RATNR},
		CellCounts:  []int{4},
		DurationMs:  250,
	}
}
