// Package pbecc is a from-scratch Go reproduction of "PBE-CC: Congestion
// Control via Endpoint-Centric, Physical-Layer Bandwidth Measurements"
// (Xie, Yi, Jamieson; SIGCOMM 2020).
//
// The paper's contribution - a congestion controller whose mobile client
// decodes the cellular control channel to measure available capacity per
// scheduling interval - lives in internal/core. Everything it depends on
// is built in this module as well: a subframe-accurate LTE MAC simulator
// with carrier aggregation and HARQ (internal/lte), a slot-accurate 5G NR
// MAC with flexible numerology, mmWave carriers, code-block-group HARQ
// and EN-DC dual connectivity (internal/nr), a PDCCH blind decoder with
// real channel coding (internal/pdcch), PHY-layer rate/error models and
// the NR numerology tables (internal/phy), a discrete-event engine
// (internal/sim), a wired-network model (internal/netsim), seven baseline
// congestion-control algorithms (internal/cc/...), workload generators
// calibrated to the paper's measurements (internal/trace), and the
// experiment harness regenerating every table and figure of the
// evaluation plus the nr-* 5G scenarios (internal/harness).
//
// The benchmarks in bench_test.go regenerate each experiment; the
// cmd/pbebench tool prints the full row/series output (or JSON with
// -json). See README.md, DESIGN.md and EXPERIMENTS.md.
package pbecc
