// Command pbebench regenerates the paper's tables and figures, plus the
// 5G NR experiments added on top of the paper's LTE evaluation.
//
// Usage:
//
//	pbebench -exp table1           # one experiment
//	pbebench -exp all              # everything
//	pbebench -exp fig12 -quick     # reduced grid for a fast look
//	pbebench -exp nr-blockage      # 5G NR mmWave blockage scenario
//	pbebench -list                 # show available experiment ids
//	pbebench -list -json           # ids as JSON
//	pbebench -exp nr-tput -json    # machine-readable tables
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pbecc/internal/harness"
	"pbecc/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list)")
	quick := flag.Bool("quick", false, "reduced durations and location grid")
	list := flag.Bool("list", false, "list experiment ids")
	jsonOut := flag.Bool("json", false, "emit JSON instead of text tables")
	prof := obs.RegisterProfileFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fatal(err)
		}
	}()

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	if *list {
		if *jsonOut {
			type entry struct {
				ID    string `json:"id"`
				Title string `json:"title"`
			}
			var out []entry
			for _, e := range harness.Experiments() {
				out = append(out, entry{e.ID, e.Title})
			}
			if err := enc.Encode(out); err != nil {
				fatal(err)
			}
			return
		}
		for _, e := range harness.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	var collected []harness.Table
	run := func(e harness.Experiment) {
		tables := e.Run(*quick)
		if *jsonOut {
			collected = append(collected, tables...)
			return
		}
		fmt.Printf("--- running %s (%s) ---\n", e.ID, e.Title)
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
	}

	// Resolve the experiment before running anything, so an unknown ID
	// fails fast with a non-zero exit in every output mode (-json
	// included) and lists what would have been valid.
	var matched []harness.Experiment
	for _, e := range harness.Experiments() {
		if *exp == "all" || e.ID == *exp {
			matched = append(matched, e)
		}
	}
	if len(matched) == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; valid ids:\n", *exp)
		for _, e := range harness.Experiments() {
			fmt.Fprintf(os.Stderr, "  %s\n", e.ID)
		}
		os.Exit(2)
	}
	for _, e := range matched {
		run(e)
	}
	if *jsonOut {
		if err := enc.Encode(collected); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
