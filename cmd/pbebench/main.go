// Command pbebench regenerates the paper's tables and figures.
//
// Usage:
//
//	pbebench -exp table1           # one experiment
//	pbebench -exp all              # everything
//	pbebench -exp fig12 -quick     # reduced grid for a fast look
//	pbebench -list                 # show available experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"pbecc/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list)")
	quick := flag.Bool("quick", false, "reduced durations and location grid")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	run := func(e harness.Experiment) {
		fmt.Printf("--- running %s (%s) ---\n", e.ID, e.Title)
		for _, t := range e.Run(*quick) {
			t.Fprint(os.Stdout)
		}
	}

	if *exp == "all" {
		for _, e := range harness.Experiments() {
			run(e)
		}
		return
	}
	for _, e := range harness.Experiments() {
		if e.ID == *exp {
			run(e)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *exp)
	os.Exit(1)
}
