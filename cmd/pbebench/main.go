// Command pbebench regenerates the paper's tables and figures, plus the
// 5G NR experiments added on top of the paper's LTE evaluation.
//
// Usage:
//
//	pbebench -exp table1           # one experiment
//	pbebench -exp all              # everything
//	pbebench -exp fig12 -quick     # reduced grid for a fast look
//	pbebench -exp nr-blockage      # 5G NR mmWave blockage scenario
//	pbebench -list                 # show available experiment ids
//	pbebench -list -json           # ids as JSON
//	pbebench -exp nr-tput -json    # machine-readable tables + run cost
//
// The -json mode emits one object per experiment: its tables plus the
// run's memory cost (heap allocations and bytes for the run, process
// peak RSS after it), so BENCH artifacts track the perf trajectory of
// each experiment, not just the micro baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"pbecc/internal/harness"
	"pbecc/internal/obs"
)

// expResult is one experiment's -json entry.
type expResult struct {
	ID     string          `json:"id"`
	Title  string          `json:"title"`
	Tables []harness.Table `json:"tables"`
	// AllocsPerOp and AllocBytesPerOp are the heap allocation count and
	// bytes of one run of the experiment (runtime.MemStats deltas).
	AllocsPerOp     uint64 `json:"allocs_per_op"`
	AllocBytesPerOp uint64 `json:"alloc_bytes_per_op"`
	// PeakRSSKB is the process high-water resident set (VmHWM) in kB
	// after the run; 0 where the kernel does not expose it. It is
	// cumulative across the process, so in an -exp all run each entry's
	// value reflects the largest experiment so far.
	PeakRSSKB uint64 `json:"peak_rss_kb"`
}

// peakRSSKB reads the process's peak resident set size from
// /proc/self/status (Linux); other platforms report 0.
func peakRSSKB() uint64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		v, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return v
	}
	return 0
}

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list)")
	quick := flag.Bool("quick", false, "reduced durations and location grid")
	list := flag.Bool("list", false, "list experiment ids")
	jsonOut := flag.Bool("json", false, "emit JSON instead of text tables")
	prof := obs.RegisterProfileFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fatal(err)
		}
	}()

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	if *list {
		if *jsonOut {
			type entry struct {
				ID    string `json:"id"`
				Title string `json:"title"`
			}
			var out []entry
			for _, e := range harness.Experiments() {
				out = append(out, entry{e.ID, e.Title})
			}
			if err := enc.Encode(out); err != nil {
				fatal(err)
			}
			return
		}
		for _, e := range harness.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	var collected []expResult
	run := func(e harness.Experiment) {
		var before, after runtime.MemStats
		if *jsonOut {
			runtime.ReadMemStats(&before)
		}
		tables := e.Run(*quick)
		if *jsonOut {
			runtime.ReadMemStats(&after)
			collected = append(collected, expResult{
				ID:              e.ID,
				Title:           e.Title,
				Tables:          tables,
				AllocsPerOp:     after.Mallocs - before.Mallocs,
				AllocBytesPerOp: after.TotalAlloc - before.TotalAlloc,
				PeakRSSKB:       peakRSSKB(),
			})
			return
		}
		fmt.Printf("--- running %s (%s) ---\n", e.ID, e.Title)
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
	}

	// Resolve the experiment before running anything, so an unknown ID
	// fails fast with a non-zero exit in every output mode (-json
	// included) and lists what would have been valid.
	var matched []harness.Experiment
	for _, e := range harness.Experiments() {
		if *exp == "all" || e.ID == *exp {
			matched = append(matched, e)
		}
	}
	if len(matched) == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; valid ids:\n", *exp)
		for _, e := range harness.Experiments() {
			fmt.Fprintf(os.Stderr, "  %s\n", e.ID)
		}
		os.Exit(2)
	}
	for _, e := range matched {
		run(e)
	}
	if *jsonOut {
		if err := enc.Encode(collected); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
