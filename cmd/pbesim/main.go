// Command pbesim runs a single end-to-end scenario and prints a summary:
// one flow of the chosen scheme over a configurable cellular path.
//
// Example:
//
//	pbesim -scheme pbe -duration 10s -rssi -93 -cells 2 -busy
//	pbesim -scheme bbr -internet-rate 10e6
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pbecc/internal/harness"
	"pbecc/internal/obs"
	"pbecc/internal/phy"
	"pbecc/internal/trace"
)

func main() {
	scheme := flag.String("scheme", "pbe", "congestion control scheme")
	dur := flag.Duration("duration", 8*time.Second, "simulated duration")
	rssi := flag.Float64("rssi", -93, "signal strength in dBm")
	cells := flag.Int("cells", 1, "configured component carriers (1-3)")
	busy := flag.Bool("busy", false, "busy cell (control chatter + background users)")
	rtt := flag.Duration("rtt", 40*time.Millisecond, "server-tower round-trip propagation")
	internetRate := flag.Float64("internet-rate", 0, "Internet bottleneck rate in bits/s (0 = none)")
	seed := flag.Int64("seed", 1, "simulation seed")
	mobile := flag.Bool("mobility", false, "use the paper's -85/-105 dBm trajectory")
	series := flag.String("series", "", "write the run's time-series CSV to this file ('-' = stdout)")
	seriesFilter := flag.String("series-filter", "", "comma-separated signal names to keep in the -series CSV (default: all)")
	flag.Parse()

	ok := false
	for _, s := range harness.Schemes {
		if s == *scheme {
			ok = true
			break
		}
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "pbesim: unknown scheme %q\nregistered schemes:\n", *scheme)
		for _, s := range harness.Schemes {
			fmt.Fprintf(os.Stderr, "  %s\n", s)
		}
		os.Exit(2)
	}
	filter := parseSeriesFilter(*seriesFilter, *series != "")

	loc := harness.Location{
		Index: int(*seed), Name: "cli", Indoor: true,
		CCs: *cells, Busy: *busy, RSSI: *rssi,
	}
	sc := harness.LocationScenario(loc, *scheme, *dur)
	sc.Seed = *seed
	sc.Flows[0].RTTBase = *rtt
	if *internetRate > 0 {
		sc.Flows[0].InternetRate = *internetRate
		sc.Flows[0].InternetQueue = 1 << 18
	}
	if *mobile {
		sc.UEs[0].Trajectory = phy.PaperMobilityTrajectory()
	}
	if *busy {
		sc.Cells[0].Control = trace.Busy()
	}
	if *series != "" {
		sc.Series = true
	}

	r := harness.Run(sc)
	if *series != "" {
		if err := writeSeries(*series, r, filter); err != nil {
			fmt.Fprintln(os.Stderr, "pbesim:", err)
			os.Exit(2)
		}
	}
	f := r.Flows[0]
	fmt.Printf("scheme          %s\n", f.Scheme)
	fmt.Printf("duration        %v (seed %d)\n", *dur, *seed)
	fmt.Printf("avg throughput  %.2f Mbit/s\n", f.AvgTputMbps)
	fmt.Printf("tput p10/50/90  %.1f / %.1f / %.1f Mbit/s\n",
		f.Tput.Percentile(10), f.Tput.Percentile(50), f.Tput.Percentile(90))
	fmt.Printf("delay avg       %.1f ms\n", f.Delay.Mean())
	fmt.Printf("delay p50/95    %.1f / %.1f ms\n",
		f.Delay.Percentile(50), f.Delay.Percentile(95))
	fmt.Printf("packets         %d acked, %d lost\n", f.Received, f.Lost)
	if f.Scheme == "pbe" {
		fmt.Printf("internet state  %.1f%% of time\n", 100*f.InternetFrac)
	}
	if harness.SchemeUsesMonitor(f.Scheme) {
		fmt.Printf("capacity error  %.1f%% mean abs (vs noise-free oracle)\n", f.PBEErrPct)
	}
	fmt.Printf("CA triggered    %v\n", r.CATriggered)
}

// parseSeriesFilter validates the -series-filter value against the
// registered signal names, exiting 2 with the valid names on a typo -
// the same UX as an unknown -scheme, and for the same reason: a typo'd
// signal silently filtering everything away looks like an empty run.
func parseSeriesFilter(spec string, haveSeries bool) []string {
	if spec == "" {
		return nil
	}
	if !haveSeries {
		fmt.Fprintln(os.Stderr, "pbesim: -series-filter requires -series <file>")
		os.Exit(2)
	}
	valid := map[string]bool{}
	for _, n := range obs.SeriesNames() {
		valid[n] = true
	}
	var names []string
	for _, n := range strings.Split(spec, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if !valid[n] {
			fmt.Fprintf(os.Stderr, "pbesim: unknown series %q in -series-filter\nregistered series:\n", n)
			for _, s := range obs.SeriesNames() {
				fmt.Fprintf(os.Stderr, "  %s\n", s)
			}
			os.Exit(2)
		}
		names = append(names, n)
	}
	return names
}

// writeSeries dumps the run's recorded series as CSV.
func writeSeries(path string, r *harness.Result, names []string) error {
	if r.Series == nil {
		return fmt.Errorf("run produced no series recorder")
	}
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return r.Series.WriteCSVFiltered(w, names)
}
