// Command pdcchdump exercises the blind control-channel decoder the way
// OWL does on live cells: it synthesizes subframes with scheduled users,
// encodes their DCI messages onto a PDCCH control region, corrupts the
// region with channel noise, blind-decodes every candidate location, and
// prints the recovered allocation map next to the ground truth.
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"pbecc/internal/pdcch"
)

func main() {
	subframes := flag.Int("subframes", 10, "number of subframes to synthesize")
	nprb := flag.Int("nprb", 100, "cell bandwidth in PRBs")
	users := flag.Int("users", 4, "scheduled users per subframe")
	sigma := flag.Float64("noise", 0.2, "AWGN sigma per component (0 = clean)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	bw := pdcch.Bandwidth{NPRB: *nprb}
	dec := pdcch.NewDecoder(*sigma)

	var placed, decoded, correct int
	for sf := 0; sf < *subframes; sf++ {
		region := pdcch.NewRegion(bw, 3, sf)
		truth := map[uint16]pdcch.DCI{}
		cursor := 0
		for u := 0; u < *users; u++ {
			rnti := uint16(61 + rng.Intn(200))
			if _, dup := truth[rnti]; dup {
				continue
			}
			n := 2 + rng.Intn(6)
			if cursor+n > bw.NumRBGs() {
				break
			}
			d := pdcch.DCI{
				RNTI:      rnti,
				Format:    pdcch.Format1,
				RBGBitmap: pdcch.ContiguousRBGBitmap(cursor, n),
				MCS:       uint8(1 + rng.Intn(15)),
				NDI:       rng.Intn(8) != 0,
			}
			cursor += n
			if region.Place(&d, 4) {
				truth[d.RNTI] = d
				placed++
			}
		}
		region.AddNoise(*sigma, rng)

		results := dec.Decode(region)
		fmt.Printf("subframe %d: %d messages placed, %d decoded\n", sf, len(truth), len(results))
		for _, r := range results {
			decoded++
			want, known := truth[r.DCI.RNTI]
			status := "UNEXPECTED"
			if known {
				if want == r.DCI {
					status = "ok"
					correct++
				} else {
					status = "FIELD-MISMATCH"
				}
			}
			fmt.Printf("  rnti=%5d fmt=%-2s prbs=%3d mcs=%2d ndi=%-5v al=%d cce=%-3d reenc-err=%-3d %s\n",
				r.DCI.RNTI, r.DCI.Format, r.DCI.AllocatedPRBs(bw), r.DCI.MCS, r.DCI.NDI,
				r.Candidate.Level, r.Candidate.FirstCCE, r.ReencodeErrors, status)
		}
	}
	fmt.Printf("\ntotal: placed=%d decoded=%d exact=%d (%.1f%% recovery)\n",
		placed, decoded, correct, 100*float64(correct)/float64(max(placed, 1)))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
