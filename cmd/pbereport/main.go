// Command pbereport renders one scenario into a paper-style figure: per
// scheme, the oracle capacity, the transport's capacity estimate and the
// achieved delivery rate over virtual time on the common 40 ms window
// grid, with injected-fault windows shaded - the visual analogue of the
// source paper's Figs. 6-9, and the first artifact that lets a human
// compare this reproduction's trajectories against the paper's. Panels
// are annotated with the sweep's trajectory analytics (convergence time,
// tracking lag), so the figure and the CI gate describe the same
// numbers.
//
// Usage:
//
//	pbereport -schemes pbe,cubic -out report.svg
//	pbereport -family rtc -schemes pbertc,gcc -fault-handover 0.5 -out f.svg -csv f.csv
//
// The SVG is hand-rolled with fixed-precision coordinates and no
// timestamps, so the bytes are a pure function of the scenario: CI
// renders the committed docs/ example twice and byte-compares
// (report-det gate).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"time"

	"pbecc/internal/harness"
	"pbecc/internal/sweep"
)

func main() {
	family := flag.String("family", "steady", "scenario family (see pbesweep -list)")
	schemes := flag.String("schemes", "pbe,cubic", "comma-separated schemes, one panel each")
	rat := flag.String("rat", harness.RATLTE, "radio access technology: lte or nr")
	seed := flag.Int64("seed", 1, "simulation seed")
	dur := flag.Duration("duration", 4*time.Second, "simulated duration")
	fStale := flag.Float64("fault-stale", 0, "stale PDCCH decode fault intensity in [0, 1]")
	fMiss := flag.Float64("fault-miss", 0, "missed cell-detection fault intensity in [0, 1]")
	fHandover := flag.Float64("fault-handover", 0, "handover-storm fault intensity in [0, 1]")
	fOnOff := flag.Float64("fault-onoff", 0, "adversarial on-off competitor intensity in [0, 1]")
	out := flag.String("out", "-", "SVG file ('-' = stdout)")
	csvOut := flag.String("csv", "", "also write the plotted trajectories as CSV to this file")
	flag.Parse()

	var panels []panel
	for _, scheme := range strings.Split(*schemes, ",") {
		scheme = strings.TrimSpace(scheme)
		if scheme == "" {
			continue
		}
		sc, err := harness.BuildScenario(*family, scheme, harness.Params{
			Seed: *seed, Duration: *dur, RAT: *rat,
			FaultStale: *fStale, FaultMiss: *fMiss,
			FaultHandover: *fHandover, FaultOnOff: *fOnOff,
		})
		if err != nil {
			fatal(err)
		}
		sc.Series = true
		res := harness.Run(sc)
		if res.Series == nil {
			fatal(fmt.Errorf("scenario produced no series recorder"))
		}
		tr := sweep.BuildTrajectory(res.Series, sc.Flows[0].ID, sc.Flows[0].UE)
		if len(tr.Rate) == 0 {
			fatal(fmt.Errorf("scheme %s recorded no trajectory", scheme))
		}
		panels = append(panels, panel{scheme: scheme, traj: tr})
	}
	if len(panels) == 0 {
		fatal(fmt.Errorf("no schemes given"))
	}

	title := fmt.Sprintf("%s/%s seed %d", *family, *rat, *seed)
	if err := writeTo(*out, func(w io.Writer) error { return renderSVG(w, title, panels) }); err != nil {
		fatal(err)
	}
	if *csvOut != "" {
		if err := writeTo(*csvOut, func(w io.Writer) error { return renderCSV(w, panels) }); err != nil {
			fatal(err)
		}
	}
}

type panel struct {
	scheme string
	traj   *sweep.Trajectory
}

// Fixed figure geometry, in SVG user units.
const (
	plotW   = 720.0
	plotH   = 130.0
	marginL = 64.0
	marginR = 16.0
	marginT = 34.0
	gapV    = 34.0
	footerH = 26.0
)

// fmtF renders a coordinate with fixed two-decimal precision:
// deterministic bytes, and precise enough at figure scale.
func fmtF(v float64) string { return fmt.Sprintf("%.2f", v) }

// polyline renders one trajectory as an SVG polyline, skipping windows
// with no data (zero) so gaps stay gaps instead of plunging to the axis.
func polyline(bw *bufio.Writer, vals []float64, n int, x0, y0, yMax float64, style string) {
	var pts []string
	flush := func() {
		if len(pts) > 1 {
			fmt.Fprintf(bw, "<polyline points=%q style=%q fill=\"none\"/>\n",
				strings.Join(pts, " "), style)
		}
		pts = pts[:0]
	}
	for w := 0; w < n && w < len(vals); w++ {
		if vals[w] <= 0 {
			flush()
			continue
		}
		x := x0 + plotW*(float64(w)+0.5)/float64(n)
		y := y0 + plotH - plotH*vals[w]/yMax
		pts = append(pts, fmtF(x)+","+fmtF(y))
	}
	flush()
}

// niceCeil rounds up to 1/2/5 x 10^k, the usual axis-limit ladder.
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 2, 5, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

func renderSVG(w io.Writer, title string, panels []panel) error {
	n := 0
	for _, p := range panels {
		if len(p.traj.Rate) > n {
			n = len(p.traj.Rate)
		}
	}
	width := marginL + plotW + marginR
	height := marginT + float64(len(panels))*(plotH+gapV) + footerH
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%s\" height=\"%s\" viewBox=\"0 0 %s %s\" font-family=\"sans-serif\" font-size=\"11\">\n",
		fmtF(width), fmtF(height), fmtF(width), fmtF(height))
	fmt.Fprintf(bw, "<rect width=\"100%%\" height=\"100%%\" fill=\"white\"/>\n")
	fmt.Fprintf(bw, "<text x=%q y=\"18\" font-size=\"13\">capacity / estimate / delivered rate — %s</text>\n", fmtF(marginL), title)
	// Legend, top right.
	lx := marginL + plotW - 300
	for _, item := range []struct{ label, style string }{
		{"capacity (oracle)", "stroke:#9aa0a6;stroke-width:1.5"},
		{"estimate", "stroke:#1a73e8;stroke-width:1.2;stroke-dasharray:4 3"},
		{"delivered", "stroke:#d93025;stroke-width:1.5"},
	} {
		fmt.Fprintf(bw, "<line x1=%q y1=\"14\" x2=%q y2=\"14\" style=%q/>\n", fmtF(lx), fmtF(lx+22), item.style)
		fmt.Fprintf(bw, "<text x=%q y=\"18\" font-size=\"10\">%s</text>\n", fmtF(lx+26), item.label)
		lx += float64(12*len(item.label))/2 + 50
	}

	for i, p := range panels {
		tr := p.traj
		y0 := marginT + float64(i)*(plotH+gapV)
		yMax := 0.0
		for _, series := range [][]float64{tr.Truth, tr.Est, tr.Rate} {
			for _, v := range series {
				if v > yMax {
					yMax = v
				}
			}
		}
		yMax = niceCeil(yMax * 1.05)

		// Fault-window shading first, under everything.
		for _, fw := range tr.FaultWins {
			if fw >= n {
				continue
			}
			x := marginL + plotW*float64(fw)/float64(n)
			fmt.Fprintf(bw, "<rect x=%q y=%q width=%q height=%q fill=\"#fce8e6\"/>\n",
				fmtF(x), fmtF(y0), fmtF(plotW/float64(n)), fmtF(plotH))
		}
		// Frame, y ticks and labels.
		fmt.Fprintf(bw, "<rect x=%q y=%q width=%q height=%q fill=\"none\" stroke=\"#444\" stroke-width=\"0.8\"/>\n",
			fmtF(marginL), fmtF(y0), fmtF(plotW), fmtF(plotH))
		for _, frac := range []float64{0, 0.5, 1} {
			yv := yMax * frac
			y := y0 + plotH - plotH*frac
			fmt.Fprintf(bw, "<line x1=%q y1=%q x2=%q y2=%q stroke=\"#ddd\" stroke-width=\"0.5\"/>\n",
				fmtF(marginL), fmtF(y), fmtF(marginL+plotW), fmtF(y))
			fmt.Fprintf(bw, "<text x=%q y=%q text-anchor=\"end\" font-size=\"9\">%s</text>\n",
				fmtF(marginL-6), fmtF(y+3), fmtF(yv))
		}
		fmt.Fprintf(bw, "<text x=\"14\" y=%q transform=\"rotate(-90 14 %s)\" text-anchor=\"middle\" font-size=\"9\">Mbit/s</text>\n",
			fmtF(y0+plotH/2), fmtF(y0+plotH/2))

		polyline(bw, tr.Truth, n, marginL, y0, yMax, "stroke:#9aa0a6;stroke-width:1.5")
		polyline(bw, tr.Est, n, marginL, y0, yMax, "stroke:#1a73e8;stroke-width:1.2;stroke-dasharray:4 3")
		polyline(bw, tr.Rate, n, marginL, y0, yMax, "stroke:#d93025;stroke-width:1.5")

		// Panel label with the gated analytics.
		label := p.scheme
		if c := tr.ConvergenceMs(); c >= 0 {
			label += fmt.Sprintf("  conv %s ms", fmtF(c))
		}
		if l := tr.TrackingLagMs(); l >= 0 {
			label += fmt.Sprintf("  lag %s ms", fmtF(l))
		}
		fmt.Fprintf(bw, "<text x=%q y=%q font-size=\"11\" font-weight=\"bold\">%s</text>\n",
			fmtF(marginL+6), fmtF(y0-6), label)
	}

	// Shared x axis on the last panel.
	yAxis := marginT + float64(len(panels))*(plotH+gapV) - gapV
	totalSec := float64(n) * 0.04
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		x := marginL + plotW*frac
		fmt.Fprintf(bw, "<text x=%q y=%q text-anchor=\"middle\" font-size=\"9\">%s</text>\n",
			fmtF(x), fmtF(yAxis+14), fmtF(totalSec*frac))
	}
	fmt.Fprintf(bw, "<text x=%q y=%q text-anchor=\"middle\" font-size=\"10\">time (s)</text>\n",
		fmtF(marginL+plotW/2), fmtF(yAxis+26))
	fmt.Fprintf(bw, "</svg>\n")
	return bw.Flush()
}

// renderCSV writes the plotted trajectories: one row per window, one
// rate/truth/est column triple per scheme, empty cells where a window
// has no data.
func renderCSV(w io.Writer, panels []panel) error {
	n := 0
	for _, p := range panels {
		if len(p.traj.Rate) > n {
			n = len(p.traj.Rate)
		}
	}
	bw := bufio.NewWriter(w)
	bw.WriteString("t_ms")
	for _, p := range panels {
		fmt.Fprintf(bw, ",%s.rate_mbps,%s.truth_mbps,%s.est_mbps", p.scheme, p.scheme, p.scheme)
	}
	bw.WriteString("\n")
	cell := func(vals []float64, w int) string {
		if w < len(vals) && vals[w] > 0 {
			return fmtF(vals[w])
		}
		return ""
	}
	for win := 0; win < n; win++ {
		fmt.Fprintf(bw, "%d", win*40)
		for _, p := range panels {
			fmt.Fprintf(bw, ",%s,%s,%s",
				cell(p.traj.Rate, win), cell(p.traj.Truth, win), cell(p.traj.Est, win))
		}
		bw.WriteString("\n")
	}
	return bw.Flush()
}

func writeTo(path string, render func(io.Writer) error) error {
	if path == "-" {
		return render(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pbereport:", err)
	os.Exit(2)
}
